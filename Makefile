.PHONY: all build test bench ci clean

all: build

build:
	dune build

test:
	dune runtest

# full benchmark sweep with machine-readable timings
bench:
	dune exec bench/main.exe -- --json BENCH_engines.json

# what a CI job runs: build, full test suite, a bench smoke run
# (e2 = naive vs semi-naive transitive closure) to catch perf-path
# breakage, an interning smoke step (the interned engines must still
# derive the known TC fact counts, and the CLI must report intern
# counters), a trace smoke step (emit a JSONL trace and validate it
# against the schema with datalog-trace-check), and a parallel smoke
# step: run the same program at -j 4, check the output is byte-identical
# to the sequential run and carries the expected fact count, and run the
# cross-jobs determinism property suite. The FO smoke step answers a
# negation query through the safe-range compiler and checks that the
# compiled path (not a fallback) produced it. The demand smoke step
# answers a point query twice through the demand compiler and checks
# that plans were compiled and the repeat was a cache hit. The explain
# smoke step runs --explain on a demand TC query and checks the
# annotated tree shows a join operator with an actual rows-out figure.
# The shard smoke step runs the sharded (default) parallel path at -j 4,
# checks byte-identity against the sequential output, and greps the
# stats for par.exchanged_tuples — proof the exchange, not the old
# global merge, carried the cross-shard traffic. The serve smoke step
# starts a resident server on a Unix-domain socket, asserts a batch and
# checks the new derived fact is queryable, retracts it and checks the
# view shrank back (DRed), greps serve.requests out of the stats op,
# and shuts the server down cleanly (the built binary is invoked
# directly so the background server never contends for the dune lock).
# The provenance smoke step answers the TC query under --annot why and
# greps a full provenance polynomial — the facts must come from -f (a
# real EDB) because inline program facts are empty-body rules whose
# annotation is the empty product 1.
# The bench-diff step
# compares the freshly regenerated e2 rows against the committed
# BENCH_engines.json and GATES: rows from a different machine shape are
# auto-excluded via each row's meta (jobs/cores), and the threshold is
# generous (500%) because this catches order-of-magnitude perf-path
# breakage, not noise — the box's wall-clock variance is large.
ci:
	dune build
	dune runtest
	dune exec bench/main.exe -- e2 --json _ci_bench.json
	grep -q '"case": "random-300x900".*"engine": "seminaive".*"facts": 79230' _ci_bench.json
	grep -q '"case": "chain-160".*"engine": "seminaive".*"facts": 12720' _ci_bench.json
	dune exec -- datalog-bench-diff BENCH_engines.json _ci_bench.json --threshold 500
	rm -f _ci_bench.json
	printf 'T(X, Y) :- G(X, Y).\nT(X, Y) :- G(X, Z), T(Z, Y).\nG(a, b). G(b, c). G(c, d).\n' > _ci_tc.dl
	dune exec -- datalog-unchained run -s seminaive _ci_tc.dl --stats | grep -q 'intern.values'
	dune exec -- datalog-unchained run -s seminaive _ci_tc.dl --trace _ci_tc.jsonl > /dev/null
	dune exec -- datalog-trace-check _ci_tc.jsonl
	dune exec -- datalog-unchained run -s seminaive _ci_tc.dl > _ci_seq.out
	dune exec -- datalog-unchained run -s seminaive -j 4 _ci_tc.dl > _ci_par.out
	cmp _ci_seq.out _ci_par.out
	grep -c '^T(' _ci_par.out | grep -qx 6
	dune exec -- datalog-unchained run -s stratified -j 4 _ci_tc.dl --stats | grep -q 'par.domains.*4'
	dune exec -- datalog-unchained run -s seminaive -j 4 _ci_tc.dl --stats | grep -q 'par.exchanged_tuples'
	dune exec test/test_main.exe -- test parallel
	printf 'G(a, b). G(b, c). G(c, d).\n' > _ci_fo.facts
	dune exec -- datalog-unchained fo -f _ci_fo.facts 'G(X, Y) & !G(Y, d)' --stats | grep -q 'fo.plan.compiled'
	dune exec -- datalog-unchained query _ci_tc.dl -q 'T(a, Y)' -q 'T(a, d)' --demand --stats > _ci_demand.out
	grep -q 'demand.plan.compiled' _ci_demand.out
	grep -q 'demand.cache.hits *1' _ci_demand.out
	dune exec -- datalog-unchained query _ci_tc.dl -q 'T(a, Y)' --demand --explain > _ci_explain.out
	grep -qE 'join\[[0-9]+=[0-9]+\].* rows_out=[0-9]+' _ci_explain.out
	printf 'T(X, Y) :- G(X, Y).\nT(X, Y) :- G(X, Z), T(Z, Y).\n' > _ci_srv.dl
	printf 'G(a, b). G(b, c).\n' > _ci_srv.facts
	_build/install/default/bin/datalog-unchained serve _ci_srv.dl -f _ci_srv.facts --socket _ci_srv.sock > _ci_srv.out 2>&1 & \
	for _ in $$(seq 1 200); do [ -S _ci_srv.sock ] && break; sleep 0.05; done; \
	client() { _build/install/default/bin/datalog-unchained client --socket _ci_srv.sock "$$@"; }; \
	client assert 'G(c, d).' | grep -q 'added 1' && \
	client query 'T(a, Y)' | grep -q 'T(a, d).' && \
	client retract 'G(c, d).' | grep -q 'removed 1, overdeleted' && \
	test -z "$$(client query 'T(a, d)')" && \
	client stats | grep -q 'serve.requests' && \
	client shutdown | grep -q 'server stopped' && \
	wait && grep -q 'listening on' _ci_srv.out
	dune exec -- datalog-unchained run _ci_srv.dl -f _ci_srv.facts -a T --annot why | grep -Fq 'T(a, c). % G(a, b)*G(b, c)'
	rm -f _ci_tc.dl _ci_tc.jsonl _ci_seq.out _ci_par.out _ci_fo.facts _ci_demand.out _ci_explain.out \
	  _ci_srv.dl _ci_srv.facts _ci_srv.sock _ci_srv.out

clean:
	dune clean
