.PHONY: all build test bench ci clean

all: build

build:
	dune build

test:
	dune runtest

# full benchmark sweep with machine-readable timings
bench:
	dune exec bench/main.exe -- --json BENCH_engines.json

# what a CI job runs: build, full test suite, and a bench smoke run
# (e2 = naive vs semi-naive transitive closure) to catch perf-path breakage
ci:
	dune build
	dune runtest
	dune exec bench/main.exe -- e2 --json /dev/null

clean:
	dune clean
