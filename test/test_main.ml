let () =
  Alcotest.run "datalog-unchained"
    [
      ("relational", Test_relational.suite);
      ("intern", Test_intern.suite);
      ("algebra-fo", Test_algebra_fo.suite);
      ("parser", Test_parser.suite);
      ("ast", Test_ast.suite);
      ("stratify", Test_stratify.suite);
      ("matcher", Test_matcher.suite);
      ("aggregate", Test_aggregate.suite);
      ("engines-smoke", Test_engines_smoke.suite);
      ("engines-deep", Test_engines_deep.suite);
      ("nondet", Test_nondet.suite);
      ("production", Test_production.suite);
      ("while", Test_while.suite);
      ("turing", Test_turing.suite);
      ("fp-logic", Test_fp_logic.suite);
      ("choice-active", Test_choice_active.suite);
      ("distributed", Test_distributed.suite);
      ("trees-ontology", Test_trees_ontology.suite);
      ("observe", Test_observe.suite);
      ("properties", Test_properties.suite);
      ("demand", Test_demand.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("properties-sec6", Test_properties2.suite);
      ("parallel", Test_parallel.suite);
      ("serve", Test_serve.suite);
      ("semiring", Test_semiring.suite);
      ("counting", Test_counting.suite);
    ]
