(* The observability layer (lib/observe): span nesting and ordering,
   counter aggregation, the per-round metrics engines report through it,
   and the machine-readable JSONL trace schema. *)
open Relational
open Helpers
module T = Observe.Trace

(* --- spans: nesting, ordering, close fields ------------------------- *)

let test_span_nesting () =
  let sink, recorded = T.memory_sink () in
  let ctx = T.make ~sinks:[ sink ] () in
  T.open_span ctx ~kind:"run" "outer";
  T.open_span ctx ~kind:"round" "0";
  T.close_span ctx ~fields:[ T.fint "delta" 3 ] ();
  T.open_span ctx ~kind:"round" "1";
  T.close_span ctx ~fields:[ T.fint "delta" 0 ] ();
  T.close_span ctx ();
  T.finish ctx;
  match recorded () with
  | [
   T.Opened (outer, _);
   T.Opened (r0, _);
   T.Closed (r0', _, f0);
   T.Opened (r1, _);
   T.Closed (r1', _, f1);
   T.Closed (outer', _, _);
   T.Finished _;
  ] ->
      Alcotest.(check int) "root sid" 1 outer.T.sid;
      Alcotest.(check int) "root has no parent" 0 outer.T.parent;
      Alcotest.(check int) "round 0 nests under run" outer.T.sid r0.T.parent;
      Alcotest.(check int) "round 1 nests under run" outer.T.sid r1.T.parent;
      Alcotest.(check bool) "sids increase" true (r1.T.sid > r0.T.sid);
      Alcotest.(check int) "close matches open (r0)" r0.T.sid r0'.T.sid;
      Alcotest.(check int) "close matches open (r1)" r1.T.sid r1'.T.sid;
      Alcotest.(check int) "run closes last" outer.T.sid outer'.T.sid;
      Alcotest.(check bool) "close fields carried" true
        (f0 = [ T.fint "delta" 3 ] && f1 = [ T.fint "delta" 0 ])
  | events ->
      Alcotest.failf "unexpected event stream (%d events)" (List.length events)

let test_finish_closes_abandoned_spans () =
  (* an engine bailing out with an exception must still yield a balanced
     stream: finish closes whatever is left open, innermost first *)
  let sink, recorded = T.memory_sink () in
  let ctx = T.make ~sinks:[ sink ] () in
  T.open_span ctx ~kind:"run" "outer";
  T.open_span ctx ~kind:"round" "0";
  T.finish ctx;
  let closes =
    List.filter_map
      (function T.Closed (s, _, _) -> Some s.T.name | _ -> None)
      (recorded ())
  in
  Alcotest.(check (list string)) "innermost closed first" [ "0"; "outer" ]
    closes

let test_unbalanced_close_ignored () =
  let ctx = T.make () in
  T.close_span ctx ();
  (* no open span: must not raise *)
  T.open_span ctx ~kind:"run" "r";
  T.close_span ctx ();
  T.close_span ctx ();
  T.finish ctx;
  let aggs = T.span_aggregates ctx in
  Alcotest.(check int) "exactly one closed span" 1
    (List.fold_left (fun acc (_, n, _) -> acc + n) 0 aggs)

let test_null_ctx_inert () =
  Alcotest.(check bool) "null is disabled" false (T.enabled T.null);
  T.open_span T.null ~kind:"run" "r";
  T.add T.null "c" 5;
  T.close_span T.null ();
  T.finish T.null;
  Alcotest.(check int) "null accumulates nothing" 0 (T.counter T.null "c");
  Alcotest.(check bool) "null retains nothing" true
    (T.retained_spans T.null = [])

(* --- counters: accumulation, gauges, sorted dump --------------------- *)

let test_counter_aggregation () =
  let ctx = T.make () in
  T.add ctx "b.count" 3;
  T.incr ctx "b.count";
  T.add ctx "a.count" 2;
  T.gauge_max ctx "z.max" 4;
  T.gauge_max ctx "z.max" 9;
  T.gauge_max ctx "z.max" 7;
  T.finish ctx;
  Alcotest.(check int) "absent counter reads 0" 0 (T.counter ctx "nope");
  Alcotest.(check int) "add + incr accumulate" 4 (T.counter ctx "b.count");
  Alcotest.(check int) "gauge keeps the max" 9 (T.counter ctx "z.max");
  Alcotest.(check (list (pair string int)))
    "counters sorted by name"
    [ ("a.count", 2); ("b.count", 4); ("z.max", 9) ]
    (T.counters ctx)

let test_finish_reaches_sink () =
  let sink, recorded = T.memory_sink () in
  let ctx = T.make ~sinks:[ sink ] () in
  T.add ctx "k" 7;
  T.finish ctx;
  match List.rev (recorded ()) with
  | T.Finished (counters, _) :: _ ->
      Alcotest.(check (list (pair string int))) "final dump" [ ("k", 7) ]
        counters
  | _ -> Alcotest.fail "finish did not reach the sink"

(* --- histograms: buckets, percentiles, cross-domain merge ------------- *)

let dist name ctx =
  match T.histogram ctx name with
  | Some d -> d
  | None -> Alcotest.failf "histogram %s missing" name

let test_hist_single_value_exact () =
  let ctx = T.make () in
  T.observe_ns ctx "h" 7;
  let d = dist "h" ctx in
  (* values below 16 ns land in exact unit buckets *)
  Alcotest.(check int) "n" 1 d.T.n;
  Alcotest.(check int) "p50 exact" 7 d.T.p50;
  Alcotest.(check int) "p99 exact" 7 d.T.p99;
  Alcotest.(check int) "max" 7 d.T.max_ns;
  Alcotest.(check int) "sum" 7 d.T.sum_ns

let test_hist_bucket_boundaries () =
  (* powers of two are bucket lower bounds, so they report exactly;
     arbitrary values under-report by at most 12.5% (8 sub-buckets per
     octave) and are clamped by the observed max *)
  let ctx = T.make () in
  T.observe_ns ctx "pow2" 1024;
  Alcotest.(check int) "power of two is a bucket floor" 1024
    (dist "pow2" ctx).T.p50;
  let ctx2 = T.make () in
  T.observe_ns ctx2 "v" 1000;
  let p = (dist "v" ctx2).T.p50 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %d within 12.5%% below 1000" p)
    true
    (p <= 1000 && float_of_int p >= 0.875 *. 1000.);
  (* negative durations (clock went backwards) clamp to 0, not crash *)
  let ctx3 = T.make () in
  T.observe_ns ctx3 "neg" (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (dist "neg" ctx3).T.max_ns

let test_hist_percentiles_monotone () =
  let ctx = T.make () in
  let vmax = ref 0 and vsum = ref 0 in
  for i = 1 to 1000 do
    let v = i * i * 37 in
    vmax := max !vmax v;
    vsum := !vsum + v;
    T.observe_ns ctx "h" v
  done;
  let d = dist "h" ctx in
  Alcotest.(check int) "n" 1000 d.T.n;
  Alcotest.(check int) "max exact" !vmax d.T.max_ns;
  Alcotest.(check int) "sum exact" !vsum d.T.sum_ns;
  Alcotest.(check bool) "p50 <= p90 <= p99 <= max" true
    (d.T.p50 <= d.T.p90 && d.T.p90 <= d.T.p99 && d.T.p99 <= d.T.max_ns)

let test_hist_empty () =
  let ctx = T.make () in
  Alcotest.(check bool) "unrecorded histogram is absent" true
    (T.histogram ctx "nope" = None);
  Alcotest.(check bool) "no histograms dumped" true (T.histograms ctx = [])

let test_hist_merge_across_ctxs () =
  (* the cross-domain story: each worker records into its own context and
     the barrier merges them — merged count must be the sum of per-domain
     counts, max the overall max, sum the total *)
  let dst = T.make () in
  let per_worker = [ 3; 5; 7; 11 ] in
  List.iteri
    (fun w k ->
      let src = T.make () in
      for i = 1 to k do
        T.observe_ns src "par.task" ((1 + w) * 1000 * i)
      done;
      T.merge_counters dst src)
    per_worker;
  let d = dist "par.task" dst in
  Alcotest.(check int) "merged count is the sum" (3 + 5 + 7 + 11) d.T.n;
  Alcotest.(check int) "merged max" (4 * 1000 * 11) d.T.max_ns;
  Alcotest.(check int) "merged sum"
    (List.fold_left ( + ) 0
       (List.concat
          (List.mapi
             (fun w k -> List.init k (fun i -> (1 + w) * 1000 * (i + 1)))
             per_worker)))
    d.T.sum_ns;
  Alcotest.(check bool) "merged p99 <= max" true (d.T.p99 <= d.T.max_ns)

let test_hist_reaches_sink () =
  let sink, recorded = T.memory_sink () in
  let ctx = T.make ~sinks:[ sink ] () in
  T.observe_ns ctx "h" 42;
  T.finish ctx;
  match List.rev (recorded ()) with
  | T.Finished (_, hists) :: _ -> (
      match List.assoc_opt "h" hists with
      | Some d -> Alcotest.(check int) "histogram reaches the sink" 1 d.T.n
      | None -> Alcotest.fail "histogram missing from the summary")
  | _ -> Alcotest.fail "finish did not reach the sink"

let test_par_task_histogram_j4 () =
  (* engine-level: a parallel semi-naive run at -j 4 samples one
     [par.task] latency per fired task, pooled across worker domains at
     the barrier merge — the histogram count must equal the [par.tasks]
     counter summed over the same workers *)
  Parallel.Pool.set_jobs 4;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs 1) @@ fun () ->
  let ctx = T.make () in
  ignore (Datalog.Seminaive.eval ~trace:ctx tc_program (Graph_gen.chain 12));
  T.finish ctx;
  let tasks = T.counter ctx "par.tasks" in
  Alcotest.(check bool) "parallel path fired tasks" true (tasks > 0);
  Alcotest.(check int) "par.task samples = par.tasks counter" tasks
    (dist "par.task" ctx).T.n

(* --- engine metrics: semi-naive rounds on a chain --------------------- *)

(* On a chain of n nodes (n-1 edges), semi-naive TC applies Γ exactly n
   times: round 0 derives the n-1 edges, each later round the paths one
   hop longer, and the last round derives nothing, proving the fixpoint.
   The per-round delta close-fields must shrink monotonically to 0. *)
let test_seminaive_chain_rounds () =
  let n = 6 in
  let sink, recorded = T.memory_sink () in
  let ctx = T.make ~sinks:[ sink ] () in
  let res = Datalog.Seminaive.eval ~trace:ctx tc_program (Graph_gen.chain n) in
  T.finish ctx;
  let deltas =
    List.filter_map
      (function
        | T.Closed (s, _, fields) when s.T.kind = "round" ->
            (match List.assoc_opt "delta" fields with
            | Some (T.Int d) -> Some d
            | _ -> Alcotest.failf "round %s closed without a delta" s.T.name)
        | _ -> None)
      (recorded ())
  in
  Alcotest.(check int) "exactly n rounds" n (List.length deltas);
  Alcotest.(check int) "fixpoint.rounds counter agrees" n
    (T.counter ctx "fixpoint.rounds");
  Alcotest.(check int) "rounds = stages + 1" (res.Datalog.Seminaive.stages + 1)
    n;
  Alcotest.(check (list int))
    "deltas shrink monotonically to 0"
    (List.init n (fun i -> n - 1 - i))
    deltas;
  Alcotest.(check int) "delta_max is the first delta" (n - 1)
    (T.counter ctx "fixpoint.delta_max")

let test_rule_firings_counted () =
  let ctx = T.make () in
  ignore
    (Datalog.Seminaive.eval ~trace:ctx tc_program (Graph_gen.chain 4));
  T.finish ctx;
  (* chain n0->n1->n2->n3: base rule fires 3x, recursive rule 3x (paths of
     length 2 and 3) *)
  Alcotest.(check int) "base rule firings" 3
    (T.counter ctx "rule_firings.r0:T");
  Alcotest.(check int) "recursive rule firings" 3
    (T.counter ctx "rule_firings.r1:T")

(* --- JSONL trace schema across the engines ---------------------------- *)

(* Run an engine under a jsonl sink wrapped in a run span, then check
   every emitted line against the documented schema via
   Report.validate_line — the golden guarantee behind --trace. *)
let jsonl_run name f =
  let buf = Buffer.create 256 in
  let sink =
    Observe.Report.jsonl_sink ~write:(fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
  in
  let ctx = T.make ~sinks:[ sink ] () in
  T.open_span ctx ~kind:"run" name;
  f ctx;
  T.close_span ctx ();
  T.finish ctx;
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  if List.length lines < 3 then
    Alcotest.failf "%s: trace too short (%d lines)" name (List.length lines);
  List.iter
    (fun line ->
      match Observe.Report.validate_line line with
      | Ok _ -> ()
      | Error msg ->
          Alcotest.failf "%s: invalid trace line (%s): %s" name msg line)
    lines;
  (* the summary line closes every stream *)
  match Observe.Report.validate_line (List.nth lines (List.length lines - 1)) with
  | Ok "summary" -> ()
  | Ok other -> Alcotest.failf "%s: stream ends with %s, not summary" name other
  | Error msg -> Alcotest.failf "%s: bad final line: %s" name msg

let win_program = prog "win(X) :- moves(X, Y), !win(Y)."

let comp_tc_program =
  prog
    {|
    T(X, Y) :- G(X, Y).
    T(X, Y) :- G(X, Z), T(Z, Y).
    CT(X, Y) :- !T(X, Y).
  |}

let test_trace_schema_all_engines () =
  let tc_input = Instance.set "G" (pairs [ ("a", "b"); ("b", "c") ]) Instance.empty in
  let cyc = facts "moves(a, b). moves(b, a)." in
  let engines =
    [
      ("naive", fun trace -> ignore (Datalog.Naive.eval ~trace tc_program tc_input));
      ( "seminaive",
        fun trace -> ignore (Datalog.Seminaive.eval ~trace tc_program tc_input) );
      ( "stratified",
        fun trace ->
          ignore (Datalog.Stratified.eval ~trace comp_tc_program tc_input) );
      ( "semipositive",
        fun trace ->
          ignore
            (Datalog.Semipositive.eval ~trace
               (prog "NG(X, Y) :- adom(X), adom(Y), !G(X, Y). adom(X) :- G(X, Y). adom(Y) :- G(X, Y).")
               tc_input) );
      ( "wellfounded",
        fun trace -> ignore (Datalog.Wellfounded.eval ~trace win_program cyc) );
      ( "stable",
        fun trace -> ignore (Datalog.Stable.models ~trace win_program cyc) );
      ( "inflationary",
        fun trace -> ignore (Datalog.Inflationary.eval ~trace tc_program tc_input) );
      ( "noninflationary",
        fun trace ->
          ignore (Datalog.Noninflationary.run ~trace tc_program tc_input) );
      ( "invent",
        fun trace ->
          ignore
            (Datalog.Invent.run ~trace (prog "tag(X, N) :- item(X).")
               (facts "item(a). item(b).")) );
      ( "magic",
        fun trace ->
          ignore
            (Datalog.Magic.answer ~trace tc_program tc_input
               (Datalog.Ast.atom "T" [ Datalog.Ast.sym "a"; Datalog.Ast.var "Y" ])) );
      ( "aggregate",
        fun trace ->
          let body =
            (Datalog.Parser.parse_rule "agg__probe :- order(C, I)").Datalog.Ast.body
          in
          ignore
            (Datalog.Aggregate.eval ~trace
               [
                 {
                   Datalog.Aggregate.rules = [];
                   aggregates =
                     [
                       {
                         Datalog.Aggregate.pred = "per_cust";
                         group_by = [ "C" ];
                         func = Datalog.Aggregate.Count;
                         body;
                       };
                     ];
                 };
               ]
               (facts "order(alice, widget). order(bob, gizmo).")) );
      ( "production",
        fun trace ->
          ignore
            (Datalog.Production.run ~trace
               (prog "done(X) :- todo(X), !done(X).")
               (facts "todo(a). todo(b).")) );
      ( "choice",
        fun trace ->
          ignore
            (Nondet.Choice.eval ~seed:3 ~trace
               [
                 {
                   Nondet.Choice.rule =
                     Datalog.Parser.parse_rule "T(X, Y) :- G(X, Y).";
                   choices = [];
                 };
               ]
               tc_input) );
      ( "chase",
        fun trace ->
          ignore
            (Ontology.Chase.chase ~trace
               [
                 Datalog.Parser.parse_rule "worksIn(E, D) :- emp(E).";
                 Datalog.Parser.parse_rule "hasManager(D, M) :- worksIn(E, D).";
               ]
               (facts "emp(e0). emp(e1).")) );
    ]
  in
  List.iter (fun (name, f) -> jsonl_run name f) engines

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "finish closes abandoned spans" `Quick
      test_finish_closes_abandoned_spans;
    Alcotest.test_case "unbalanced close is ignored" `Quick
      test_unbalanced_close_ignored;
    Alcotest.test_case "null context is inert" `Quick test_null_ctx_inert;
    Alcotest.test_case "counter aggregation" `Quick test_counter_aggregation;
    Alcotest.test_case "finish reaches the sink" `Quick test_finish_reaches_sink;
    Alcotest.test_case "histogram: single value exact" `Quick
      test_hist_single_value_exact;
    Alcotest.test_case "histogram: bucket boundaries" `Quick
      test_hist_bucket_boundaries;
    Alcotest.test_case "histogram: percentiles monotone" `Quick
      test_hist_percentiles_monotone;
    Alcotest.test_case "histogram: empty" `Quick test_hist_empty;
    Alcotest.test_case "histogram: cross-domain merge" `Quick
      test_hist_merge_across_ctxs;
    Alcotest.test_case "histogram: reaches the sink" `Quick
      test_hist_reaches_sink;
    Alcotest.test_case "histogram: par.task at -j 4" `Quick
      test_par_task_histogram_j4;
    Alcotest.test_case "semi-naive chain: n rounds, shrinking deltas" `Quick
      test_seminaive_chain_rounds;
    Alcotest.test_case "rule firings counted" `Quick test_rule_firings_counted;
    Alcotest.test_case "JSONL schema across engines" `Quick
      test_trace_schema_all_engines;
  ]
