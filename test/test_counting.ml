(* Counting-based incremental maintenance: the Engine under
   [~maintenance:Counting] against the recompute-from-scratch oracle,
   the support-count invariant ([audit_counts] must stay empty), and
   the adversarial cycle cases where counts alone under-delete and the
   well-foundedness verification has to step in. *)
open Relational
open Helpers
module Q = QCheck
module E = Server.Engine

let count = 100

let prop name arb f =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name arb f)

let atom = Datalog.Parser.parse_atom

let check_audit eng msg =
  match E.audit_counts eng with
  | [] -> ()
  | (p, tup, stored, actual) :: _ ->
      Alcotest.failf "%s: count(%s%s) = %d, recount says %d" msg p
        (Tuple.to_string tup) stored actual

(* --- unit: exact deltas on the diamond ----------------------------------- *)

let test_diamond_retract () =
  (* T(a, d) has two derivations; retracting one support decrements it
     to 1 and deletes only {G(b, d), T(b, d)} — no over-deletion *)
  let eng =
    E.create ~maintenance:E.Counting tc_program
      (facts "G(a, b). G(b, d). G(a, c). G(c, d).")
  in
  check_audit eng "after create";
  let removed, deleted, kept = E.retract_facts eng (facts "G(b, d).") in
  Alcotest.(check int) "removed" 1 removed;
  Alcotest.(check int) "deleted exactly the zero-support facts" 2 deleted;
  Alcotest.(check int) "T(a, d) verified and kept" 1 kept;
  check_rel "T(a, d) survives via c"
    (pairs [ ("a", "b"); ("a", "c"); ("a", "d") ])
    (E.query eng (atom "T(a, Y)"));
  check_audit eng "after retract"

let test_assert_maintains_counts () =
  let eng = E.create ~maintenance:E.Counting tc_program (facts "G(a, b).") in
  ignore (E.assert_facts eng (facts "G(b, c). G(c, d)."));
  check_audit eng "after assert";
  (* duplicate assert adds base support to an already-derived fact *)
  ignore (E.assert_facts eng (facts "T(a, c)."));
  check_audit eng "after asserting a derived fact";
  let removed, deleted, _ = E.retract_facts eng (facts "T(a, c).") in
  Alcotest.(check int) "base support withdrawn" 1 removed;
  Alcotest.(check int) "still derived, nothing deleted" 0 deleted;
  check_audit eng "after retracting the base copy"

(* --- unit: cycles — where counts alone under-delete ---------------------- *)

let test_cycle_garbage_collected () =
  (* a ⇄ b keeps every TC fact's count positive after G(b, a) goes —
     the confirmation fixpoint must detect the unfounded cluster *)
  let eng =
    E.create ~maintenance:E.Counting tc_program
      (facts "G(a, b). G(b, a). G(e, a).")
  in
  ignore (E.retract_facts eng (facts "G(b, a)."));
  let oracle =
    (Datalog.Seminaive.eval tc_program (facts "G(a, b). G(e, a)."))
      .Datalog.Seminaive.instance
  in
  Alcotest.check instance "cycle garbage gone" oracle (E.instance eng);
  check_audit eng "after cycle retraction"

let test_self_loop () =
  let eng =
    E.create ~maintenance:E.Counting tc_program (facts "G(a, a). G(a, b).")
  in
  ignore (E.retract_facts eng (facts "G(a, a)."));
  let oracle =
    (Datalog.Seminaive.eval tc_program (facts "G(a, b)."))
      .Datalog.Seminaive.instance
  in
  Alcotest.check instance "self-loop retracted" oracle (E.instance eng);
  check_audit eng "after self-loop retraction"

let test_dense_tc_single_edge () =
  (* complete graph: every fact supports every other — the worst case
     for cycle detection. Deleting one edge must keep the closure of
     the remaining complete-minus-one graph, which is still total *)
  let g = Graph_gen.complete 6 in
  let eng = E.create ~maintenance:E.Counting tc_program g in
  let e01 =
    Instance.add_fact "G"
      (Tuple.of_list [ Graph_gen.vertex 0; Graph_gen.vertex 1 ])
      Instance.empty
  in
  ignore (E.retract_facts eng e01);
  let oracle =
    (Datalog.Seminaive.eval tc_program (Instance.diff g e01))
      .Datalog.Seminaive.instance
  in
  Alcotest.check instance "dense TC maintained" oracle (E.instance eng);
  check_audit eng "after dense retraction"

(* --- property: random schedules, Counting ≡ recompute ≡ DRed ------------- *)

(* The scenario generator is shared with the serve suite: sampled
   sub-programs over g/2 and e/1 with chained idb predicates, plus a
   random assert/retract schedule hitting present and absent facts. *)
let prop_counting_matches_recompute (p, inst0, ops) =
  let eng = E.create ~maintenance:E.Counting p inst0 in
  let edb = ref inst0 in
  List.for_all
    (fun op ->
      let pred, tup = Test_serve.op_batch op in
      let batch = Instance.add_fact pred tup Instance.empty in
      (match op with
      | Test_serve.Assert_g _ | Test_serve.Assert_e _ ->
          edb := Instance.add_fact pred tup !edb;
          ignore (E.assert_facts eng batch)
      | Test_serve.Retract_g _ | Test_serve.Retract_e _ ->
          if Instance.mem_fact pred tup !edb then
            edb := Instance.remove_fact pred tup !edb;
          ignore (E.retract_facts eng batch));
      let oracle = (Datalog.Seminaive.eval p !edb).Datalog.Seminaive.instance in
      let got = E.instance eng in
      Instance.equal got oracle
      && String.equal (Instance.to_string got) (Instance.to_string oracle)
      && (match E.audit_counts eng with [] -> true | _ -> false))
    ops

(* Counting and DRed are different algorithms for the same function:
   drive both engines through one schedule and require identical
   states at every step. *)
let prop_counting_agrees_with_dred (p, inst0, ops) =
  let c = E.create ~maintenance:E.Counting p inst0 in
  let d = E.create ~maintenance:E.Dred p inst0 in
  List.for_all
    (fun op ->
      let pred, tup = Test_serve.op_batch op in
      let batch = Instance.add_fact pred tup Instance.empty in
      (match op with
      | Test_serve.Assert_g _ | Test_serve.Assert_e _ ->
          ignore (E.assert_facts c batch);
          ignore (E.assert_facts d batch)
      | Test_serve.Retract_g _ | Test_serve.Retract_e _ ->
          ignore (E.retract_facts c batch);
          ignore (E.retract_facts d batch));
      Instance.equal (E.instance c) (E.instance d)
      && Instance.equal (E.edb c) (E.edb d))
    ops

let suite =
  [
    Alcotest.test_case "diamond: decrement, no over-deletion" `Quick
      test_diamond_retract;
    Alcotest.test_case "assert maintains counts" `Quick
      test_assert_maintains_counts;
    Alcotest.test_case "cycle garbage collected" `Quick
      test_cycle_garbage_collected;
    Alcotest.test_case "self-loop" `Quick test_self_loop;
    Alcotest.test_case "dense TC, single-edge retraction" `Quick
      test_dense_tc_single_edge;
    prop "random schedules ≡ recompute-from-scratch (+ audit)"
      Test_serve.scenario_arb prop_counting_matches_recompute;
    prop "counting ≡ DRed on random schedules" Test_serve.scenario_arb
      prop_counting_agrees_with_dred;
  ]
