(* The resident serve engine: incremental view maintenance (semi-naive
   insertion + DRed retraction) checked against the
   recompute-from-scratch oracle — the same discipline as the parallel
   and safe-range suites — plus the query paths and the wire protocol. *)
open Relational
open Helpers
module Q = QCheck
module E = Server.Engine
module P = Server.Protocol

let count = 100

let prop name arb f =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name arb f)

let atom = Datalog.Parser.parse_atom

(* --- unit: assert / retract / query on transitive closure --------------- *)

let test_assert_retract_roundtrip () =
  let eng = E.create tc_program (facts "G(a, b). G(b, c).") in
  let q s = E.query eng (atom s) in
  check_rel "initial" (pairs [ ("a", "b"); ("a", "c") ]) (q "T(a, Y)");
  let added, derived, _ = E.assert_facts eng (facts "G(c, d).") in
  Alcotest.(check int) "added" 1 added;
  Alcotest.(check int) "derived" 3 derived;
  check_rel "after assert"
    (pairs [ ("a", "b"); ("a", "c"); ("a", "d") ])
    (q "T(a, Y)");
  let added, derived, _ = E.assert_facts eng (facts "G(c, d).") in
  Alcotest.(check int) "duplicate assert adds nothing" 0 added;
  Alcotest.(check int) "duplicate assert derives nothing" 0 derived;
  let removed, overdeleted, rederived = E.retract_facts eng (facts "G(a, b).") in
  Alcotest.(check int) "removed" 1 removed;
  Alcotest.(check int) "overdeleted" 4 overdeleted;
  Alcotest.(check int) "rederived" 0 rederived;
  check_rel "a-cone gone" Relation.empty (q "T(a, Y)");
  check_rel "b-cone intact" (pairs [ ("b", "c"); ("b", "d") ]) (q "T(b, Y)");
  let removed, _, _ = E.retract_facts eng (facts "G(a, b).") in
  Alcotest.(check int) "retracting an absent fact is a no-op" 0 removed

let test_rederivation_diamond () =
  (* a→b→d and a→c→d: retracting one support of T(a, d) must not lose
     it — DRed over-deletes the cone, then re-derivation restores it *)
  let eng = E.create tc_program (facts "G(a, b). G(b, d). G(a, c). G(c, d).") in
  let removed, overdeleted, rederived =
    E.retract_facts eng (facts "G(b, d).")
  in
  Alcotest.(check int) "removed" 1 removed;
  Alcotest.(check bool) "over-deletion reached T(a, d)" true (overdeleted >= 2);
  Alcotest.(check bool) "re-derivation restored it" true (rederived >= 1);
  check_rel "T(a, d) survives via c"
    (pairs [ ("a", "b"); ("a", "c"); ("a", "d") ])
    (E.query eng (atom "T(a, Y)"))

let test_retract_base_of_derivable () =
  (* a base fact that is also rule-derivable loses only its base
     support: the derived copy survives the retraction *)
  let eng = E.create tc_program (facts "G(a, b). G(b, c). T(a, c).") in
  let removed, _, rederived = E.retract_facts eng (facts "T(a, c).") in
  Alcotest.(check int) "removed from the base instance" 1 removed;
  Alcotest.(check bool) "rederived from G" true (rederived >= 1);
  Alcotest.(check bool) "gone from the base instance" false
    (Instance.mem_fact "T" (t [ v "a"; v "c" ]) (E.edb eng));
  check_rel "still derived"
    (pairs [ ("a", "b"); ("a", "c") ])
    (E.query eng (atom "T(a, Y)"))

let test_retract_readd () =
  let eng = E.create tc_program (facts "G(a, b). G(b, c).") in
  ignore (E.retract_facts eng (facts "G(b, c)."));
  ignore (E.assert_facts eng (facts "G(b, c)."));
  check_rel "restored"
    (pairs [ ("a", "b"); ("a", "c") ])
    (E.query eng (atom "T(a, Y)"))

let test_query_paths_agree () =
  let eng = E.create tc_program (facts "G(a, b). G(b, c). G(c, a).") in
  ignore (E.assert_facts eng (facts "G(c, d)."));
  ignore (E.retract_facts eng (facts "G(c, a)."));
  List.iter
    (fun qs ->
      let q = atom qs in
      let m = E.query eng ~via:E.Materialized q in
      check_rel ("demand agrees on " ^ qs) m (E.query eng ~via:E.Demand q);
      check_rel ("magic agrees on " ^ qs) m (E.query eng ~via:E.Magic q))
    [ "T(a, Y)"; "T(X, d)"; "T(X, X)"; "T(X, Y)" ]

let test_requires_datalog () =
  match E.create (prog "p(X) :- e(X), !q(X).") Instance.empty with
  | exception Datalog.Ast.Check_error _ -> ()
  | _ -> Alcotest.fail "negation must be rejected at create"

(* --- the wire protocol --------------------------------------------------- *)

let test_protocol_roundtrip () =
  List.iter
    (fun r ->
      match P.parse_request (P.encode_request r) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    [
      P.Assert "G(a, b). G(b, c).";
      P.Retract "G(\"quoted \\\"x\\\"\", b).";
      P.Query { atom = "T(a, Y)"; via = "demand" };
      P.Stats;
      P.Shutdown;
    ]

let test_handle_errors () =
  let eng = E.create tc_program (facts "G(a, b).") in
  let bad line =
    let resp, keep = Server.Daemon.handle eng line in
    Alcotest.(check bool) ("keeps serving after " ^ line) true keep;
    match P.parse_response resp with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a protocol error for %s" line
  in
  bad "this is not json";
  bad {|{"op":"frobnicate"}|};
  bad {|{"op":"assert"}|};
  bad {|{"op":"assert","facts":"G(a"}|};
  bad {|{"op":"assert","facts":"G(a)."}|};
  bad {|{"op":"query","atom":"T(a, Y)","via":"warp"}|};
  bad {|{"op":"query","atom":"T("}|};
  (* the engine survived all of it *)
  let resp, keep = Server.Daemon.handle eng {|{"op":"query","atom":"T(a, Y)"}|} in
  Alcotest.(check bool) "alive" true keep;
  match P.parse_response resp with
  | Ok j -> (
      match Observe.Json.member "count" j with
      | Some (Observe.Json.Int 1) -> ()
      | _ -> Alcotest.fail "expected one answer")
  | Error e -> Alcotest.fail e

(* --- property: random schedules vs recompute-from-scratch ---------------- *)

(* Same rule pool as the demand suite: closures over edb g/2, e/1 with
   idb t, s, d (binary) and p (unary). *)
let rule_pool =
  [|
    "t(X, Y) :- g(X, Y).";
    "t(X, Y) :- t(X, Z), g(Z, Y).";
    "s(X, Y) :- g(X, Y).";
    "s(X, Y) :- g(X, Z), s(Z, Y).";
    "d(X, Y) :- t(X, Y).";
    "d(X, Z) :- d(X, Y), d(Y, Z).";
    "p(X) :- t(X, X).";
    "p(Y) :- g(X, Y), p(X).";
    "p(X) :- e(X).";
  |]

type op =
  | Assert_g of int * int
  | Retract_g of int * int
  | Assert_e of int
  | Retract_e of int

let pp_op = function
  | Assert_g (i, j) -> Printf.sprintf "+g(%d,%d)" i j
  | Retract_g (i, j) -> Printf.sprintf "-g(%d,%d)" i j
  | Assert_e i -> Printf.sprintf "+e(%d)" i
  | Retract_e i -> Printf.sprintf "-e(%d)" i

(* A scenario: a sampled sub-program, a small random instance, and a
   schedule of assert/retract ops over a slightly larger vertex space —
   so retractions hit present and absent facts, and asserts duplicate
   existing facts now and then. *)
let scenario_gen =
  Q.Gen.(
    let* mask = list_repeat (Array.length rule_pool) bool in
    let chosen =
      List.concat
        (List.mapi (fun i k -> if k then [ rule_pool.(i) ] else []) mask)
    in
    let* n = 1 -- 6 in
    let* edges = 0 -- 10 in
    let* seed = 0 -- 10_000 in
    let g = Graph_gen.random ~name:"g" ~seed n edges in
    let* ne = 0 -- n in
    let inst =
      Instance.set "e"
        (Relation.of_rows (List.init ne (fun i -> [ Graph_gen.vertex i ])))
        g
    in
    let op_gen =
      frequency
        [
          (3, map2 (fun i j -> Assert_g (i, j)) (0 -- (n + 1)) (0 -- (n + 1)));
          (3, map2 (fun i j -> Retract_g (i, j)) (0 -- (n + 1)) (0 -- (n + 1)));
          (1, map (fun i -> Assert_e i) (0 -- (n + 1)));
          (1, map (fun i -> Retract_e i) (0 -- (n + 1)));
        ]
    in
    let* nops = 1 -- 12 in
    let* ops = list_repeat nops op_gen in
    return (prog (String.concat "\n" chosen), inst, ops))

let scenario_arb =
  Q.make
    ~print:(fun (p, i, ops) ->
      Printf.sprintf "program:\n%s\ninstance:\n%s\nschedule: %s"
        (Datalog.Pretty.program_to_string p)
        (Instance.to_string i)
        (String.concat " " (List.map pp_op ops)))
    scenario_gen

let op_batch = function
  | Assert_g (i, j) | Retract_g (i, j) ->
      ("g", Tuple.of_list [ Graph_gen.vertex i; Graph_gen.vertex j ])
  | Assert_e i | Retract_e i -> ("e", Tuple.of_list [ Graph_gen.vertex i ])

(* After every op the engine's materialization must be byte-identical to
   re-running semi-naive evaluation from scratch on the oracle's EDB. *)
let prop_schedule_matches_recompute (p, inst0, ops) =
  let eng = E.create p inst0 in
  let edb = ref inst0 in
  List.for_all
    (fun op ->
      let pred, tup = op_batch op in
      let batch = Instance.add_fact pred tup Instance.empty in
      (match op with
      | Assert_g _ | Assert_e _ ->
          edb := Instance.add_fact pred tup !edb;
          ignore (E.assert_facts eng batch)
      | Retract_g _ | Retract_e _ ->
          if Instance.mem_fact pred tup !edb then
            edb := Instance.remove_fact pred tup !edb;
          ignore (E.retract_facts eng batch));
      let oracle = (Datalog.Seminaive.eval p !edb).Datalog.Seminaive.instance in
      let got = E.instance eng in
      Instance.equal got oracle
      && String.equal (Instance.to_string got) (Instance.to_string oracle))
    ops

(* The engine's base instance must track exactly the oracle EDB, whatever
   mix of present/absent facts the schedule retracts. *)
let prop_edb_tracks_schedule (p, inst0, ops) =
  let eng = E.create p inst0 in
  let edb = ref inst0 in
  List.iter
    (fun op ->
      let pred, tup = op_batch op in
      let batch = Instance.add_fact pred tup Instance.empty in
      match op with
      | Assert_g _ | Assert_e _ ->
          edb := Instance.add_fact pred tup !edb;
          ignore (E.assert_facts eng batch)
      | Retract_g _ | Retract_e _ ->
          if Instance.mem_fact pred tup !edb then
            edb := Instance.remove_fact pred tup !edb;
          ignore (E.retract_facts eng batch))
    ops;
  Instance.equal (E.edb eng) !edb

let suite =
  [
    Alcotest.test_case "assert/retract roundtrip" `Quick
      test_assert_retract_roundtrip;
    Alcotest.test_case "DRed rederivation (diamond)" `Quick
      test_rederivation_diamond;
    Alcotest.test_case "retract base fact with derived support" `Quick
      test_retract_base_of_derivable;
    Alcotest.test_case "retract then re-add" `Quick test_retract_readd;
    Alcotest.test_case "query paths agree" `Quick test_query_paths_agree;
    Alcotest.test_case "non-Datalog rejected" `Quick test_requires_datalog;
    Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "malformed requests don't kill the engine" `Quick
      test_handle_errors;
    prop "random schedules ≡ recompute-from-scratch" scenario_arb
      prop_schedule_matches_recompute;
    prop "base instance tracks the schedule" scenario_arb
      prop_edb_tracks_schedule;
  ]
