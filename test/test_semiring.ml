(* Semiring-annotated evaluation: the law battery per instance, the
   annotated algebra operators, and the Annot_eval fixpoint against
   independent oracles — path counting for Count, Floyd–Warshall
   min-plus for MinPlus, and the untouched Boolean engines for Bool
   (byte-identical, the no-regression contract). *)
open Relational
open Helpers
module Q = QCheck
module S = Semiring
module AE = Datalog.Annot_eval

let count = 200

let prop name arb f =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name arb f)

(* --- value generators per instance -------------------------------------- *)

let gen_bool = Q.Gen.map (fun b -> S.B b) Q.Gen.bool

let gen_count =
  Q.Gen.(
    frequency [ (6, map (fun n -> S.C n) (0 -- 9)); (1, return (S.C S.omega)) ])

let gen_minplus =
  Q.Gen.(
    frequency
      [
        (6, map (fun n -> S.W n) (-9 -- 9));
        (1, return (S.W S.minplus_zero));
        (1, return (S.W S.minplus_bottom));
      ])

(* [why] is private: build values the way the evaluator does, from
   base-fact atoms combined with ⊗ (monomials) and ⊕ (polynomials) *)
let gen_why =
  let sr = S.get S.Why in
  Q.Gen.(
    let atom =
      map
        (fun (i, j) ->
          S.of_edb S.Why ~pred:"G"
            (Tuple.of_list [ Graph_gen.vertex i; Graph_gen.vertex j ]))
        (pair (0 -- 3) (0 -- 3))
    in
    let mono =
      map
        (List.fold_left sr.S.times sr.S.one)
        (list_size (1 -- 2) atom)
    in
    frequency
      [
        (1, return sr.S.zero);
        (6, map (List.fold_left sr.S.plus sr.S.zero) (list_size (1 -- 2) mono));
      ])

(* --- the law battery ----------------------------------------------------- *)

let law_tests name tag gen =
  let sr = S.get tag in
  let ( ++ ) = sr.S.plus and ( ** ) = sr.S.times in
  let eq = S.equal_v in
  let pr = S.to_string in
  let a1 = Q.make ~print:pr gen in
  let a2 =
    Q.make ~print:(fun (a, b) -> pr a ^ ", " ^ pr b) Q.Gen.(pair gen gen)
  in
  let a3 =
    Q.make
      ~print:(fun (a, b, c) -> String.concat ", " [ pr a; pr b; pr c ])
      Q.Gen.(triple gen gen gen)
  in
  [
    prop (name ^ ": ⊕ commutative") a2 (fun (a, b) -> eq (a ++ b) (b ++ a));
    prop (name ^ ": ⊕ associative") a3 (fun (a, b, c) ->
        eq (a ++ b ++ c) (a ++ (b ++ c)));
    prop (name ^ ": ⊗ commutative") a2 (fun (a, b) -> eq (a ** b) (b ** a));
    (* ** is right-associative in OCaml, so parenthesize the left fold *)
    prop (name ^ ": ⊗ associative") a3 (fun (a, b, c) ->
        eq ((a ** b) ** c) (a ** (b ** c)));
    prop (name ^ ": 0 is ⊕-identity") a1 (fun a -> eq (a ++ sr.S.zero) a);
    prop (name ^ ": 1 is ⊗-identity") a1 (fun a -> eq (a ** sr.S.one) a);
    prop (name ^ ": 0 annihilates ⊗") a1 (fun a ->
        eq (a ** sr.S.zero) sr.S.zero);
    prop (name ^ ": ⊗ distributes over ⊕") a3 (fun (a, b, c) ->
        eq (a ** (b ++ c)) ((a ** b) ++ (a ** c)));
  ]
  @ (if S.is_idempotent tag then
       [ prop (name ^ ": ⊕ idempotent") a1 (fun a -> eq (a ++ a) a) ]
     else [])
  (* Why's top only marks truncation — it is a prefix bound, not an
     absorbing element, so the absorption law is checked elsewhere *)
  @
  if tag <> S.Why then
    [
      prop (name ^ ": top absorbs ⊕") a1 (fun a ->
          eq (S.top tag ++ a) (S.top tag));
    ]
  else []

let test_mixed_instances_rejected () =
  let sr = S.get S.Count in
  (match sr.S.plus (S.C 1) (S.B true) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mixed ⊕ must be rejected");
  match sr.S.times (S.C 1) (S.W 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mixed ⊗ must be rejected"

(* --- annotated algebra operators ---------------------------------------- *)

let csr = S.get S.Count

let annotated_of rows =
  Annotated.of_relation csr
    (Relation.of_rows (List.map (fun (r, _) -> r) rows))
    (fun tup ->
      let _, n =
        List.find (fun (r, _) -> Tuple.equal (Tuple.of_list r) tup) rows
      in
      S.C n)

let check_ann msg r tup expected =
  Alcotest.(check bool)
    msg true
    (S.equal_v (Annotated.annotation csr r (Tuple.of_list tup)) expected)

let test_annotated_project_aggregates () =
  let r =
    annotated_of [ ([ v "a"; v "b" ], 2); ([ v "a"; v "c" ], 3) ]
  in
  let p = Annotated.project csr [ 0 ] r in
  check_rel "support" (unary [ "a" ]) p.Annotated.rel;
  check_ann "π ⊕-aggregates" p [ v "a" ] (S.C 5)

let test_annotated_join_multiplies () =
  let l = annotated_of [ ([ v "a"; v "b" ], 2) ] in
  let r = annotated_of [ ([ v "b"; v "c" ], 3) ] in
  let j = Annotated.join csr [ (1, 0) ] l r in
  check_ann "⋈ ⊗-combines" j [ v "a"; v "b"; v "b"; v "c" ] (S.C 6)

let test_annotated_union_adds () =
  let l = annotated_of [ ([ v "a"; v "b" ], 2) ] in
  let r = annotated_of [ ([ v "a"; v "b" ], 3); ([ v "b"; v "c" ], 1) ] in
  let u = Annotated.union csr l r in
  check_ann "∪ ⊕-combines" u [ v "a"; v "b" ] (S.C 5);
  check_ann "∪ keeps singletons" u [ v "b"; v "c" ] (S.C 1)

let test_annotated_eval_count () =
  let inst = facts "G(a, b). G(a, b)." in
  (* σ-free: a union of the same scan ⊕-doubles every tuple *)
  let e = Algebra.Union (Algebra.Rel "G", Algebra.Rel "G") in
  let r = Annotated.eval csr ~leaf:(fun _ _ -> S.C 1) inst e in
  check_ann "1 ⊕ 1" r [ v "a"; v "b" ] (S.C 2)

let test_annotated_eval_unsupported () =
  let inst = facts "G(a, b)." in
  let e = Algebra.Diff (Algebra.Rel "G", Algebra.Rel "G") in
  (match Annotated.eval csr ~leaf:(fun _ _ -> S.C 1) inst e with
  | exception Annotated.Unsupported _ -> ()
  | _ -> Alcotest.fail "difference under Count must be Unsupported");
  (* under Bool the same expression delegates to the set evaluator *)
  let b = Annotated.eval (S.get S.Bool) ~leaf:(fun _ _ -> S.B true) inst e in
  check_rel "Bool delegates" Relation.empty b.Annotated.rel

(* --- Annot_eval vs oracles ----------------------------------------------- *)

let graph_gen =
  Q.Gen.(
    let* n = 1 -- 6 in
    let* m = 0 -- 12 in
    let* seed = 0 -- 10_000 in
    return (n, m, seed))

let graph_arb =
  Q.make
    ~print:(fun (n, m, seed) -> Printf.sprintf "n=%d m=%d seed=%d" n m seed)
    graph_gen

(* Count on an acyclic graph is the number of G-paths: each derivation
   tree of the linear TC program peels exactly one first edge, so trees
   and paths are in bijection. Oracle: memoized path counting. *)
let prop_count_is_path_count (n, m, seed) =
  let g = Graph_gen.random_dag ~seed n m in
  let r = AE.run S.Count tc_program g in
  let succs = Hashtbl.create 16 in
  Relation.iter
    (fun tup -> Hashtbl.add succs (Tuple.id tup 0) (Tuple.id tup 1))
    (Instance.find "G" g);
  let memo = Hashtbl.create 64 in
  let rec paths x y =
    match Hashtbl.find_opt memo (x, y) with
    | Some c -> c
    | None ->
        let c =
          List.fold_left
            (fun acc z -> acc + (if z = y then 1 else 0) + paths z y)
            0 (Hashtbl.find_all succs x)
        in
        Hashtbl.add memo (x, y) c;
        c
  in
  Relation.for_all
    (fun tup ->
      S.equal_v
        (AE.annotation r "T" tup)
        (S.C (paths (Tuple.id tup 0) (Tuple.id tup 1))))
    (Instance.find "T" r.AE.instance)

let sp_program =
  prog {|
    T(X, Y) :- E(X, Y, W).
    T(X, Z) :- E(X, Y, W), T(Y, Z).
  |}

let wgraph_gen =
  Q.Gen.(
    let* n = 2 -- 6 in
    let* m = 1 -- 12 in
    let* edges =
      list_repeat m (triple (0 -- (n - 1)) (0 -- (n - 1)) (1 -- 9))
    in
    return (n, edges))

let wgraph_arb =
  Q.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat " "
           (List.map (fun (i, j, w) -> Printf.sprintf "%d-%d:%d" i j w) edges)))
    wgraph_gen

(* MinPlus on weighted TC is single-pair shortest path: oracle is
   Floyd–Warshall over the min-plus matrix (weights are positive, so
   walks never beat paths and the closure converges). *)
let prop_minplus_is_shortest_path (n, edges) =
  let inst =
    Instance.set "E"
      (Relation.of_rows
         (List.map
            (fun (x, y, w) ->
              [ Graph_gen.vertex x; Graph_gen.vertex y; Value.Int w ])
            edges))
      Instance.empty
  in
  let r = AE.run S.MinPlus sp_program inst in
  let inf = max_int / 2 in
  let dist = Array.make_matrix n n inf in
  List.iter
    (fun (x, y, w) -> dist.(x).(y) <- min dist.(x).(y) w)
    edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if dist.(i).(k) + dist.(k).(j) < dist.(i).(j) then
          dist.(i).(j) <- dist.(i).(k) + dist.(k).(j)
      done
    done
  done;
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let tup = Tuple.of_list [ Graph_gen.vertex i; Graph_gen.vertex j ] in
      let got = AE.annotation r "T" tup in
      let want = if dist.(i).(j) = inf then S.W S.minplus_zero else S.W dist.(i).(j) in
      if not (S.equal_v got want) then ok := false
    done
  done;
  !ok

(* The Boolean path is the untouched engines: same instance, printed
   byte for byte — across the sequential reference and semi-naive. *)
let prop_bool_byte_identical (n, m, seed) =
  let g = Graph_gen.random ~seed n m in
  let r = AE.run S.Bool tc_program g in
  let semi = (Datalog.Seminaive.eval tc_program g).Datalog.Seminaive.instance in
  let naive = (Datalog.Naive.eval tc_program g).Datalog.Naive.instance in
  Instance.equal r.AE.instance semi
  && Instance.equal r.AE.instance naive
  && String.equal (Instance.to_string r.AE.instance) (Instance.to_string semi)

(* --- unit: the shapes from the paper ------------------------------------- *)

let annot_str r pred tup = S.to_string (AE.annotation r pred tup)

let test_why_diamond () =
  let r =
    AE.run S.Why tc_program (facts "G(a, b). G(b, d). G(a, c). G(c, d).")
  in
  Alcotest.(check string)
    "two monomials" "G(a, b)*G(b, d) + G(a, c)*G(c, d)"
    (annot_str r "T" (t [ v "a"; v "d" ]));
  Alcotest.(check string)
    "base edge is its own label" "G(a, b)"
    (annot_str r "T" (t [ v "a"; v "b" ]))

let test_count_diamond () =
  let r =
    AE.run S.Count tc_program (facts "G(a, b). G(b, d). G(a, c). G(c, d).")
  in
  Alcotest.(check string) "two trees" "2" (annot_str r "T" (t [ v "a"; v "d" ]))

let test_count_cycle_is_inf () =
  let r = AE.run S.Count tc_program (facts "G(a, b). G(b, a). G(e, a).") in
  List.iter
    (fun (x, y) ->
      Alcotest.(check string)
        (Printf.sprintf "T(%s, %s)" x y)
        "inf"
        (annot_str r "T" (t [ v x; v y ])))
    [ ("a", "a"); ("a", "b"); ("e", "b") ];
  Alcotest.(check int) "all six infinite" 6 r.AE.stats.AE.infinite

let test_negation_unsupported () =
  match AE.run S.Count (prog "p(X) :- e(X), !q(X).") Instance.empty with
  | exception AE.Unsupported _ -> ()
  | _ -> Alcotest.fail "negation must be Unsupported"

let suite =
  law_tests "bool" S.Bool gen_bool
  @ law_tests "count" S.Count gen_count
  @ law_tests "minplus" S.MinPlus gen_minplus
  @ law_tests "why" S.Why gen_why
  @ [
      Alcotest.test_case "mixed instances rejected" `Quick
        test_mixed_instances_rejected;
      Alcotest.test_case "annotated π ⊕-aggregates" `Quick
        test_annotated_project_aggregates;
      Alcotest.test_case "annotated ⋈ ⊗-combines" `Quick
        test_annotated_join_multiplies;
      Alcotest.test_case "annotated ∪ ⊕-combines" `Quick
        test_annotated_union_adds;
      Alcotest.test_case "annotated eval (Count)" `Quick
        test_annotated_eval_count;
      Alcotest.test_case "non-monotone ops Unsupported" `Quick
        test_annotated_eval_unsupported;
      Alcotest.test_case "why diamond polynomial" `Quick test_why_diamond;
      Alcotest.test_case "count diamond = 2" `Quick test_count_diamond;
      Alcotest.test_case "count cycle = inf" `Quick test_count_cycle_is_inf;
      Alcotest.test_case "negation Unsupported" `Quick
        test_negation_unsupported;
      prop "count ≡ path-count oracle (random DAGs)" graph_arb
        prop_count_is_path_count;
      prop "minplus ≡ Floyd–Warshall oracle (random weighted graphs)"
        wgraph_arb prop_minplus_is_shortest_path;
      prop "bool ≡ set engines, byte-identical" graph_arb
        prop_bool_byte_identical;
    ]
