(* Distributed Datalog (netlog): located facts, schedules, and the CALM
   confluence observation (§6 of the paper). *)
open Relational
open Helpers
module N = Distributed.Netlog

let lrule ?(location = N.Local) src =
  { N.location; rule = Datalog.Parser.parse_rule src }

(* a 3-peer chain computing distributed transitive closure: each peer
   owns some edges; derived reach facts are routed to the peer owning the
   source node (encoded here by sending everything to a coordinator) *)
let tc_network =
  {
    N.peers = [ "p1"; "p2"; "coord" ];
    programs =
      [
        ( "p1",
          [
            lrule ~location:(N.At_peer "coord") "reach(X, Y) :- edge(X, Y).";
          ] );
        ( "p2",
          [
            lrule ~location:(N.At_peer "coord") "reach(X, Y) :- edge(X, Y).";
          ] );
        ( "coord",
          [ lrule "reach(X, Y) :- reach(X, Z), reach(Z, Y)." ] );
      ];
    stores =
      [
        ("p1", facts "edge(a, b). edge(b, c).");
        ("p2", facts "edge(c, d). edge(d, e).");
      ];
  }

let test_distributed_tc () =
  let out = N.run tc_network in
  Alcotest.(check bool) "quiescent" true out.N.quiescent;
  let reach = Instance.find "reach" (N.store out "coord") in
  let all_edges =
    Relation.union
      (Instance.find "edge" (facts "edge(a,b). edge(b,c). edge(c,d). edge(d,e)."))
      Relation.empty
  in
  check_rel "distributed TC" (Graph_gen.reference_tc all_edges) reach;
  Alcotest.(check bool) "messages flowed" true (out.N.messages >= 4)

let test_monotone_confluent () =
  (* CALM, positive direction: negation-free network converges to the
     same state under every schedule *)
  Alcotest.(check bool) "confluent" true (N.confluent tc_network)

let test_nonmonotone_schedule_dependent () =
  (* two peers race to set a flag; each blocks on the other's flag via
     negation — the outcome depends on who is activated first *)
  let racing =
    {
      N.peers = [ "a"; "b" ];
      programs =
        [
          ( "a",
            [
              lrule ~location:(N.At_peer "b") "blocked(a2) :- start(X), !blocked(b2).";
            ] );
          ( "b",
            [
              lrule ~location:(N.At_peer "a") "blocked(b2) :- start(X), !blocked(a2).";
            ] );
        ];
      stores = [ ("a", facts "start(go)."); ("b", facts "start(go).") ];
    }
  in
  (* under round-robin, a fires first and blocks b... both can still fire
     in the same round before messages land; what matters here is that
     SOME schedules disagree *)
  let outcomes =
    List.sort_uniq Instance.compare
      (List.map
         (fun s -> N.global (N.run ~schedule:s racing))
         [ N.Round_robin; N.Random_sched 1; N.Random_sched 2;
           N.Random_sched 3; N.Random_sched 4; N.Random_sched 5;
           N.Random_sched 6 ])
  in
  Alcotest.(check bool) "schedule-dependent" true (List.length outcomes >= 2);
  Alcotest.(check bool) "confluence check fails" false (N.confluent racing)

let test_variable_location_routing () =
  (* Webdamlog-style routing: deliver each fact to the peer named in the
     data *)
  let router =
    {
      N.peers = [ "hub"; "alice"; "bob" ];
      programs =
        [
          ("hub", [ lrule ~location:(N.At_var "P") "msg(M) :- outbox(P, M)." ]);
        ];
      stores =
        [ ("hub", facts "outbox(alice, hello). outbox(bob, hi). outbox(alice, bye).") ];
    }
  in
  let out = N.run router in
  check_rel "alice got hers" (unary [ "bye"; "hello" ])
    (Instance.find "msg" (N.store out "alice"));
  check_rel "bob got his" (unary [ "hi" ])
    (Instance.find "msg" (N.store out "bob"))

let test_network_validation () =
  (match
     N.check
       {
         N.peers = [ "a" ];
         programs = [ ("zz", [ lrule "p(X) :- q(X)." ]) ];
         stores = [];
       }
   with
  | exception N.Bad_network _ -> ()
  | _ -> Alcotest.fail "unknown program peer");
  (match
     N.check
       {
         N.peers = [ "a" ];
         programs = [ ("a", [ lrule ~location:(N.At_peer "zz") "p(X) :- q(X)." ]) ];
         stores = [];
       }
   with
  | exception N.Bad_network _ -> ()
  | _ -> Alcotest.fail "unknown target peer");
  match
    N.check
      {
        N.peers = [ "a" ];
        programs = [ ("a", [ lrule ~location:(N.At_var "Z") "p(X) :- q(X)." ]) ];
        stores = [];
      }
  with
  | exception N.Bad_network _ -> ()
  | _ -> Alcotest.fail "location var must occur in body"

let test_bulk_matches_scheduled () =
  (* the bulk-synchronous evaluator reaches the same final stores as the
     scheduled run — CALM in action: monotone, so the schedule is
     irrelevant and none is needed *)
  let sched = N.run tc_network in
  let bulk = N.run_bulk tc_network in
  Alcotest.(check bool) "bulk quiescent" true bulk.N.quiescent;
  List.iter
    (fun peer ->
      Alcotest.(check bool)
        (Printf.sprintf "store %s agrees" peer)
        true
        (Instance.equal (N.store sched peer) (N.store bulk peer)))
    tc_network.N.peers;
  Alcotest.(check bool) "messages flowed" true (bulk.N.messages >= 4);
  Alcotest.(check bool)
    "supersteps bounded" true
    (bulk.N.rounds >= 1 && bulk.N.rounds <= 10)

let test_bulk_rejects_negation () =
  let negated =
    {
      N.peers = [ "a" ];
      programs = [ ("a", [ lrule "p(X) :- q(X), !r(X)." ]) ];
      stores = [ ("a", facts "q(v).") ];
    }
  in
  match N.run_bulk negated with
  | exception N.Bad_network _ -> ()
  | _ -> Alcotest.fail "run_bulk accepted a non-monotone network"

let test_bulk_parallel_identical () =
  (* peers sharded across pool workers: final stores byte-identical to
     the single-domain bulk run at every job count *)
  let render out =
    String.concat "\n---\n"
      (List.map
         (fun p -> Instance.to_string (N.store out p))
         tc_network.N.peers)
  in
  let baseline = render (N.run_bulk tc_network) in
  List.iter
    (fun j ->
      Parallel.Pool.set_jobs j;
      Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs 1) @@ fun () ->
      Alcotest.(check string)
        (Printf.sprintf "bulk at -j %d" j)
        baseline
        (render (N.run_bulk tc_network)))
    [ 2; 4 ]

let test_fuel () =
  (* a two-peer ping-pong that generates fresh work forever cannot exist
     without invention — facts saturate, so every network quiesces; the
     fuel path is still exercised by a tiny budget *)
  let out = N.run ~max_rounds:1 tc_network in
  Alcotest.(check bool) "not quiescent under tiny fuel" false out.N.quiescent

let suite =
  [
    Alcotest.test_case "distributed TC" `Quick test_distributed_tc;
    Alcotest.test_case "CALM: monotone => confluent" `Quick
      test_monotone_confluent;
    Alcotest.test_case "negation => schedule-dependent" `Quick
      test_nonmonotone_schedule_dependent;
    Alcotest.test_case "variable-location routing" `Quick
      test_variable_location_routing;
    Alcotest.test_case "network validation" `Quick test_network_validation;
    Alcotest.test_case "bulk supersteps match scheduled run" `Quick
      test_bulk_matches_scheduled;
    Alcotest.test_case "bulk rejects negation" `Quick
      test_bulk_rejects_negation;
    Alcotest.test_case "bulk parallel is deterministic" `Quick
      test_bulk_parallel_identical;
    Alcotest.test_case "fuel bound" `Quick test_fuel;
  ]
