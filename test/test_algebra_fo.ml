(* Relational algebra and the FO evaluator. *)
open Relational
open Helpers

let inst = facts "G(a,b). G(b,c). G(c,c). P(a). P(c)."

let schema = Schema.of_list [ Schema.rel "G" 2; Schema.rel "P" 1 ]

(* --- algebra ------------------------------------------------------------ *)

let test_project () =
  check_rel "project col 0" (unary [ "a"; "b"; "c" ])
    (Algebra.eval inst (Algebra.Project ([ 0 ], Algebra.Rel "G")))

let test_select () =
  check_rel "select self-loop"
    (pairs [ ("c", "c") ])
    (Algebra.eval inst
       (Algebra.Select (Algebra.Col_eq_col (0, 1), Algebra.Rel "G")));
  check_rel "select by constant"
    (pairs [ ("a", "b") ])
    (Algebra.eval inst
       (Algebra.Select (Algebra.Col_eq_const (0, v "a"), Algebra.Rel "G")))

let test_join () =
  (* G ⋈ G on col1 = col0: paths of length two *)
  let joined =
    Algebra.eval inst (Algebra.Join ([ (1, 0) ], Algebra.Rel "G", Algebra.Rel "G"))
  in
  let paths = Relation.map (fun t -> Tuple.project t [ 0; 3 ]) joined in
  check_rel "two-step paths"
    (pairs [ ("a", "c"); ("b", "c"); ("c", "c") ])
    paths

let test_product_union_diff_inter () =
  let p = Instance.find "P" inst in
  let prod = Algebra.eval inst (Algebra.Product (Algebra.Rel "P", Algebra.Rel "P")) in
  Alcotest.(check int) "product size" (Relation.cardinal p * Relation.cardinal p)
    (Relation.cardinal prod);
  check_rel "union"
    (unary [ "a"; "c" ])
    (Algebra.eval inst (Algebra.Union (Algebra.Rel "P", Algebra.Rel "P")));
  check_rel "diff empty" Relation.empty
    (Algebra.eval inst (Algebra.Diff (Algebra.Rel "P", Algebra.Rel "P")));
  check_rel "inter"
    (unary [ "a"; "c" ])
    (Algebra.eval inst (Algebra.Inter (Algebra.Rel "P", Algebra.Rel "P")))

let test_algebra_type_errors () =
  (match Algebra.arity schema (Algebra.Project ([ 5 ], Algebra.Rel "G")) with
  | exception Algebra.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error");
  (match Algebra.arity schema (Algebra.Union (Algebra.Rel "G", Algebra.Rel "P")) with
  | exception Algebra.Type_error _ -> ()
  | _ -> Alcotest.fail "expected arity error");
  (match Algebra.arity schema (Algebra.Rel "missing") with
  | exception Algebra.Type_error _ -> ()
  | _ -> Alcotest.fail "expected unknown relation");
  Alcotest.(check int) "join arity" 4
    (Algebra.arity schema (Algebra.Join ([ (1, 0) ], Algebra.Rel "G", Algebra.Rel "G")))

let test_algebra_conditions () =
  let t1 = t [ v "a"; v "b" ] in
  Alcotest.(check bool) "not" true
    (Algebra.holds_cond (Algebra.Not (Algebra.Col_eq_col (0, 1))) t1);
  Alcotest.(check bool) "and/or" true
    (Algebra.holds_cond
       (Algebra.Or
          ( Algebra.And (Algebra.Col_eq_col (0, 1), Algebra.True),
            Algebra.Col_eq_const (1, v "b") ))
       t1);
  Alcotest.(check bool) "lt under value order" true
    (Algebra.holds_cond (Algebra.Col_lt_col (0, 1)) t1)

(* --- FO ------------------------------------------------------------------ *)

let test_fo_atoms_and_bool () =
  Alcotest.(check bool) "sentence: some self loop" true
    (Fo.sentence inst
       (Fo.Exists ([ "x" ], Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "x" ]))));
  Alcotest.(check bool) "sentence: all P have G-successor" true
    (Fo.sentence inst
       (Fo.Forall
          ( [ "x" ],
            Fo.Implies
              ( Fo.Atom ("P", [ Fo.Var "x" ]),
                Fo.Exists ([ "y" ], Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "y" ]))
              ) )))

let test_fo_eval_difference () =
  (* P(x) ∧ ¬∃y G(y, x): elements of P with no predecessor *)
  let f =
    Fo.And
      ( Fo.Atom ("P", [ Fo.Var "x" ]),
        Fo.Not (Fo.Exists ([ "y" ], Fo.Atom ("G", [ Fo.Var "y"; Fo.Var "x" ])))
      )
  in
  check_rel "no-predecessor P" (unary [ "a" ]) (Fo.eval inst f [ "x" ])

let test_fo_eval_extra_columns () =
  (* extra output columns range over the active domain *)
  let f = Fo.Atom ("P", [ Fo.Var "x" ]) in
  let r = Fo.eval inst f [ "x"; "z" ] in
  Alcotest.(check int) "P x adom" (2 * 3) (Relation.cardinal r)

let test_fo_eval_requires_free_vars () =
  match Fo.eval inst (Fo.Atom ("P", [ Fo.Var "x" ])) [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_fo_sentence_rejects_free () =
  match Fo.sentence inst (Fo.Atom ("P", [ Fo.Var "x" ])) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_fo_constants_extend_domain () =
  (* z = d for a constant d outside the instance: satisfiable because the
     formula's constants join the domain *)
  let f = Fo.Eq (Fo.Var "z", Fo.Cst (v "d")) in
  check_rel "constant joins domain" (unary [ "d" ]) (Fo.eval inst f [ "z" ])

let test_fo_free_vars_order () =
  let f =
    Fo.And
      ( Fo.Atom ("G", [ Fo.Var "b"; Fo.Var "a" ]),
        Fo.Exists ([ "c" ], Fo.Atom ("G", [ Fo.Var "c"; Fo.Var "a" ])) )
  in
  Alcotest.(check (list string)) "first occurrence order" [ "b"; "a" ]
    (Fo.free_vars f)

let test_fo_de_morgan () =
  (* ¬(φ ∨ ψ) ≡ ¬φ ∧ ¬ψ over all valuations *)
  let phi = Fo.Atom ("P", [ Fo.Var "x" ]) in
  let psi = Fo.Exists ([ "y" ], Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "y" ])) in
  let lhs = Fo.Not (Fo.Or (phi, psi)) in
  let rhs = Fo.And (Fo.Not phi, Fo.Not psi) in
  check_rel "de morgan" (Fo.eval inst lhs [ "x" ]) (Fo.eval inst rhs [ "x" ])

(* --- the safe-range compiler --------------------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_semijoin_antijoin () =
  check_rel "semijoin: G restricted to P-targets"
    (pairs [ ("b", "c"); ("c", "c") ])
    (Algebra.eval inst
       (Algebra.Semijoin ([ (1, 0) ], Algebra.Rel "G", Algebra.Rel "P")));
  check_rel "antijoin: G minus P-targets"
    (pairs [ ("a", "b") ])
    (Algebra.eval inst
       (Algebra.Antijoin ([ (1, 0) ], Algebra.Rel "G", Algebra.Rel "P")));
  (* the empty pair list gates on the right side being (non)empty *)
  check_rel "nullary semijoin keeps all"
    (Instance.find "G" inst)
    (Algebra.eval inst (Algebra.Semijoin ([], Algebra.Rel "G", Algebra.Rel "P")));
  check_rel "nullary antijoin drops all" Relation.empty
    (Algebra.eval inst (Algebra.Antijoin ([], Algebra.Rel "G", Algebra.Rel "P")))

let test_adom_complement () =
  check_rel "adom leaf" (unary [ "a"; "b"; "c" ]) (Algebra.eval inst Algebra.Adom);
  check_rel "unary complement" (unary [ "b" ])
    (Algebra.eval inst (Algebra.Complement (1, Algebra.Adom, Algebra.Rel "P")));
  Alcotest.(check int) "binary complement size" ((3 * 3) - 3)
    (Relation.cardinal
       (Algebra.eval inst (Algebra.Complement (2, Algebra.Adom, Algebra.Rel "G"))));
  Alcotest.(check int) "adom arity" 1 (Algebra.arity schema Algebra.Adom);
  Alcotest.(check int) "complement arity" 2
    (Algebra.arity schema (Algebra.Complement (2, Algebra.Adom, Algebra.Rel "G")))

let test_type_error_names_subexpression () =
  match Algebra.arity schema (Algebra.Project ([ 5 ], Algebra.Rel "G")) with
  | exception Algebra.Type_error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message names the expression: %s" msg)
        true
        (contains ~sub:" in " msg && contains ~sub:"G" msg)
  | _ -> Alcotest.fail "expected type error"

let test_compiled_equals_naive () =
  let x = Fo.Var "x" and y = Fo.Var "y" in
  let cases =
    [
      Fo.Atom ("G", [ x; y ]);
      Fo.And (Fo.Atom ("G", [ x; y ]), Fo.Not (Fo.Atom ("P", [ y ])));
      Fo.Not (Fo.Or (Fo.Atom ("G", [ x; y ]), Fo.Atom ("G", [ y; x ])));
      Fo.Implies (Fo.Atom ("P", [ x ]), Fo.Atom ("G", [ x; y ]));
      Fo.Forall
        ([ "z" ], Fo.Implies (Fo.Atom ("P", [ Fo.Var "z" ]), Fo.Eq (x, y)));
      Fo.And (Fo.Eq (x, Fo.Cst (v "q")), Fo.Not (Fo.Eq (x, y)));
      Fo.Exists ([ "z" ], Fo.And (Fo.Atom ("G", [ x; Fo.Var "z" ]), Fo.Eq (x, y)));
    ]
  in
  List.iteri
    (fun k f ->
      check_rel
        (Printf.sprintf "case %d" k)
        (Fo.eval_naive inst f [ "x"; "y" ])
        (Fo.eval inst f [ "x"; "y" ]))
    cases

let test_full_free_var_list () =
  let f =
    Fo.And
      ( Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "y" ]),
        Fo.Atom ("P", [ Fo.Var "z" ]) )
  in
  match Fo.eval inst f [ "x" ] with
  | exception Invalid_argument msg ->
      Alcotest.(check string) "lists every missing variable"
        "Fo.eval: free variables y, z not in output list" msg
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_plan_counters () =
  let trace = Observe.Trace.make () in
  (* a formula no other test compiles: the unique constant forces a cache
     miss on the first call, and only the first *)
  let f =
    Fo.And
      ( Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "y" ]),
        Fo.Exists
          ( [ "z" ],
            Fo.And
              ( Fo.Atom ("G", [ Fo.Var "y"; Fo.Var "z" ]),
                Fo.Not (Fo.Eq (Fo.Var "z", Fo.Cst (v "counter-probe"))) ) ) )
  in
  ignore (Fo.eval ~trace inst f [ "x"; "y" ]);
  Alcotest.(check int) "one compilation" 1
    (Observe.Trace.counter trace "fo.plan.compiled");
  Alcotest.(check bool) "joins probed" true
    (Observe.Trace.counter trace "ra.join.probes" > 0);
  ignore (Fo.eval ~trace inst f [ "x"; "y" ]);
  Alcotest.(check int) "second run hits the memo" 1
    (Observe.Trace.counter trace "fo.plan.compiled");
  (* an unsafe equality pays bounded per-variable domain expansion *)
  let unsafe = Fo.Eq (Fo.Var "x", Fo.Cst (v "fallback-probe")) in
  let trace2 = Observe.Trace.make () in
  ignore (Fo.eval ~trace:trace2 inst unsafe [ "x"; "w" ]);
  Alcotest.(check bool) "fallback vars counted" true
    (Observe.Trace.counter trace2 "fo.plan.fallback_vars" > 0)

let test_shared_collectors () =
  (* the hashtable-backed collector dedups and preserves first-occurrence
     order, honoring the bound stack handed to [note] *)
  let got =
    Fo.collect_free_vars (fun note ->
        note [] "b";
        note [ "a" ] "a";
        note [] "c";
        note [] "b";
        note [ "c" ] "a")
  in
  Alcotest.(check (list string)) "dedup, order, binding" [ "b"; "c"; "a" ] got;
  Alcotest.(check (list string))
    "free_vars goes through the collector" [ "b"; "a" ]
    (Fo.free_vars
       (Fo.And
          ( Fo.Atom ("G", [ Fo.Var "b"; Fo.Var "a" ]),
            Fo.Exists ([ "b" ], Fo.Atom ("P", [ Fo.Var "b" ])) )))

let test_arity_mismatch_plan () =
  (* a plan compiled against one arity stays correct when the instance
     disagrees: such atoms are uniformly false under naive semantics *)
  let f =
    Fo.Or
      ( Fo.Atom ("P", [ Fo.Var "x"; Fo.Var "x" ]),
        Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "x" ]) )
  in
  check_rel "mismatched atom is false"
    (Fo.eval_naive inst f [ "x" ])
    (Fo.eval inst f [ "x" ]);
  check_rel "self-loops only" (unary [ "c" ]) (Fo.eval inst f [ "x" ])

(* algebra and FO agree on a joint query: π0(σ(G ⋈ G)) vs ∃-formula *)
let test_algebra_fo_agree () =
  let via_algebra =
    Algebra.eval inst
      (Algebra.Project
         ([ 0 ], Algebra.Join ([ (1, 0) ], Algebra.Rel "G", Algebra.Rel "G")))
  in
  let via_fo =
    Fo.eval inst
      (Fo.Exists
         ( [ "y"; "z" ],
           Fo.And
             ( Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "y" ]),
               Fo.Atom ("G", [ Fo.Var "y"; Fo.Var "z" ]) ) ))
      [ "x" ]
  in
  check_rel "algebra = calculus" via_algebra via_fo

let suite =
  [
    Alcotest.test_case "projection" `Quick test_project;
    Alcotest.test_case "selection" `Quick test_select;
    Alcotest.test_case "equijoin" `Quick test_join;
    Alcotest.test_case "product/union/diff/inter" `Quick
      test_product_union_diff_inter;
    Alcotest.test_case "algebra type errors" `Quick test_algebra_type_errors;
    Alcotest.test_case "selection conditions" `Quick test_algebra_conditions;
    Alcotest.test_case "FO sentences" `Quick test_fo_atoms_and_bool;
    Alcotest.test_case "FO difference query" `Quick test_fo_eval_difference;
    Alcotest.test_case "FO extra output columns" `Quick
      test_fo_eval_extra_columns;
    Alcotest.test_case "FO eval var coverage" `Quick
      test_fo_eval_requires_free_vars;
    Alcotest.test_case "FO sentence closedness" `Quick
      test_fo_sentence_rejects_free;
    Alcotest.test_case "FO constants extend domain" `Quick
      test_fo_constants_extend_domain;
    Alcotest.test_case "FO free-variable order" `Quick test_fo_free_vars_order;
    Alcotest.test_case "FO De Morgan" `Quick test_fo_de_morgan;
    Alcotest.test_case "algebra = calculus on a join query" `Quick
      test_algebra_fo_agree;
    Alcotest.test_case "semijoin/antijoin" `Quick test_semijoin_antijoin;
    Alcotest.test_case "adom leaf and complement" `Quick test_adom_complement;
    Alcotest.test_case "Type_error names the sub-expression" `Quick
      test_type_error_names_subexpression;
    Alcotest.test_case "compiled = naive evaluator" `Quick
      test_compiled_equals_naive;
    Alcotest.test_case "all missing free variables reported" `Quick
      test_full_free_var_list;
    Alcotest.test_case "plan counters and memoization" `Quick
      test_plan_counters;
    Alcotest.test_case "shared syntax collectors" `Quick test_shared_collectors;
    Alcotest.test_case "plans survive arity mismatches" `Quick
      test_arity_mismatch_plan;
  ]
