(* Tests for the domain pool and the parallel evaluation paths.

   The contract under test is strong: for every engine and every job
   count, the computed instances must be byte-identical to a sequential
   run. Trace counters are explicitly NOT part of that contract (e.g.
   [fixpoint.tuples_derived] may double-count across workers before the
   merge dedup), so these tests compare instances only. *)

open Relational
open Helpers

(* Run [f] with the global pool sized to [j] jobs, restoring the
   single-job (sequential) configuration afterwards even on failure. *)
let with_jobs j f =
  Parallel.Pool.set_jobs j;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs 1) f

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                      *)
(* ------------------------------------------------------------------ *)

let test_pool_acquire_size () =
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "acquire returned None at jobs=4"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              Alcotest.(check int) "pool size" 4 (Parallel.Pool.size pool)))

let test_pool_sequential_no_acquire () =
  (* jobs defaults to 1 in tests; there is no pool to acquire. *)
  Alcotest.(check int) "jobs" 1 (Parallel.Pool.jobs ());
  match Parallel.Pool.acquire () with
  | None -> ()
  | Some pool ->
      Parallel.Pool.release pool;
      Alcotest.fail "acquire returned a pool at jobs=1"

let test_pool_nested_acquire () =
  (* The global pool is exclusive: a nested fixpoint running inside a
     worker must see it busy and fall back to sequential evaluation. *)
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "outer acquire failed"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              (match Parallel.Pool.acquire () with
              | None -> ()
              | Some p2 ->
                  Parallel.Pool.release p2;
                  Alcotest.fail "nested acquire succeeded");
              (* released pools can be re-acquired *)
              ());
          match Parallel.Pool.acquire () with
          | None -> Alcotest.fail "re-acquire after release failed"
          | Some p3 -> Parallel.Pool.release p3)

let test_pool_run_covers_workers () =
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "acquire failed"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              let n = Parallel.Pool.size pool in
              let hits = Array.make n 0 in
              Parallel.Pool.run pool (fun w -> hits.(w) <- hits.(w) + 1);
              Array.iteri
                (fun w h ->
                  Alcotest.(check int)
                    (Printf.sprintf "worker %d ran once" w)
                    1 h)
                hits;
              (* a second job on the same pool works too *)
              let total = Atomic.make 0 in
              Parallel.Pool.run pool (fun _ -> Atomic.incr total);
              Alcotest.(check int) "second job" n (Atomic.get total)))

let test_pool_exception_propagates () =
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "acquire failed"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              (match
                 Parallel.Pool.run pool (fun w ->
                     if w = 2 then failwith "boom")
               with
              | () -> Alcotest.fail "expected the worker exception"
              | exception Failure msg ->
                  Alcotest.(check string) "message" "boom" msg);
              (* the pool survives a failed job *)
              let total = Atomic.make 0 in
              Parallel.Pool.run pool (fun _ -> Atomic.incr total);
              Alcotest.(check int)
                "pool usable after failure" 4 (Atomic.get total)))

let test_set_jobs_rejects_nonpositive () =
  match Parallel.Pool.set_jobs 0 with
  | () -> Alcotest.fail "set_jobs 0 should raise"
  | exception Invalid_argument _ -> ()

let test_pool_fallback_count () =
  (* A busy acquire is counted, not silent. *)
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "outer acquire failed"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              let before = Parallel.Pool.fallback_count () in
              (match Parallel.Pool.acquire () with
              | None -> ()
              | Some p2 ->
                  Parallel.Pool.release p2;
                  Alcotest.fail "nested acquire succeeded");
              Alcotest.(check int)
                "fallback counted" (before + 1)
                (Parallel.Pool.fallback_count ())))

let test_run_phases_barrier () =
  (* Phase 2 on every worker must observe phase 1's writes from ALL
     workers — the inter-phase barrier is what makes that safe. *)
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "acquire failed"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              let n = Parallel.Pool.size pool in
              let marks = Array.make n false in
              let seen_all = Array.make n false in
              Parallel.Pool.run_phases pool
                [|
                  (fun w -> marks.(w) <- true);
                  (fun w -> seen_all.(w) <- Array.for_all Fun.id marks);
                |];
              Array.iteri
                (fun w ok ->
                  Alcotest.(check bool)
                    (Printf.sprintf "worker %d saw all phase-1 writes" w)
                    true ok)
                seen_all))

let test_run_phases_exception () =
  (* One worker failing in phase 1 must not deadlock the siblings at the
     barrier, and the exception must reach the caller. *)
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "acquire failed"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              let phase2 = Atomic.make 0 in
              (match
                 Parallel.Pool.run_phases pool
                   [|
                     (fun w -> if w = 1 then failwith "phase boom");
                     (fun _ -> Atomic.incr phase2);
                   |]
               with
              | () -> Alcotest.fail "expected the worker exception"
              | exception Failure msg ->
                  Alcotest.(check string) "message" "phase boom" msg);
              (* the failing worker skips its remaining phases; the
                 other three still ran phase 2 *)
              Alcotest.(check int) "siblings finished" 3 (Atomic.get phase2);
              (* the pool survives *)
              let total = Atomic.make 0 in
              Parallel.Pool.run pool (fun _ -> Atomic.incr total);
              Alcotest.(check int) "pool usable" 4 (Atomic.get total)))

(* ------------------------------------------------------------------ *)
(* Exchange mechanics                                                  *)
(* ------------------------------------------------------------------ *)

let tup l = Tuple.of_list (List.map Value.sym l)

let test_exchange_post_drain () =
  let ex = Parallel.Exchange.create 3 in
  Alcotest.(check bool) "first post" true
    (Parallel.Exchange.post ex ~src:0 ~dst:1 "P" (tup [ "a" ]));
  Alcotest.(check bool) "per-edge duplicate dropped" false
    (Parallel.Exchange.post ex ~src:0 ~dst:1 "P" (tup [ "a" ]));
  Alcotest.(check bool) "same fact, other edge" true
    (Parallel.Exchange.post ex ~src:2 ~dst:1 "P" (tup [ "a" ]));
  Alcotest.(check bool) "other pred, same edge" true
    (Parallel.Exchange.post ex ~src:0 ~dst:1 "Q" (tup [ "a" ]));
  Alcotest.(check int) "total posted" 3 (Parallel.Exchange.total_posted ex);
  let got = ref [] in
  Parallel.Exchange.drain ex ~dst:1 (fun ~src ~pred tuples ->
      got := (src, pred, List.length tuples) :: !got);
  (* sources ascending; within a source, preds in first-post order *)
  Alcotest.(check (list (triple int string int)))
    "drain order" [ (0, "P", 1); (0, "Q", 1); (2, "P", 1) ] (List.rev !got);
  (* buffers empty after a drain, but the per-edge memory persists *)
  let n = ref 0 in
  Parallel.Exchange.drain ex ~dst:1 (fun ~src:_ ~pred:_ _ -> incr n);
  Alcotest.(check int) "drained empty" 0 !n;
  Alcotest.(check bool) "duplicate still dropped after drain" false
    (Parallel.Exchange.post ex ~src:0 ~dst:1 "P" (tup [ "a" ]));
  Alcotest.(check int) "total unchanged" 3
    (Parallel.Exchange.total_posted ex)

(* ------------------------------------------------------------------ *)
(* Cross-engine determinism across job counts                          *)
(* ------------------------------------------------------------------ *)

let job_counts = [ 1; 2; 4; 8 ]

(* Render an engine's full output as a string at each job count and
   assert byte-identity with the sequential run. *)
let check_deterministic name render =
  let baseline = render () in
  List.iter
    (fun j ->
      let out = with_jobs j render in
      Alcotest.(check string)
        (Printf.sprintf "%s at -j %d matches sequential" name j)
        baseline out)
    job_counts

(* Stratified program with negation on top of recursion: vertices not
   reaching [bad] via T. *)
let comp_program =
  prog
    {|
      T(X, Y) :- G(X, Y).
      T(X, Y) :- G(X, Z), T(Z, Y).
      Safe(X) :- V(X), !T(X, "n3").
    |}

(* Two independent recursive SCCs plus a consumer: exercises the
   stratified wave planner (T1 and T2 are parallel groups, C a later
   wave). *)
let wave_program =
  prog
    {|
      T1(X, Y) :- G(X, Y).
      T1(X, Y) :- G(X, Z), T1(Z, Y).
      T2(X, Y) :- H(X, Y).
      T2(X, Y) :- H(X, Z), T2(Z, Y).
      C(X, Y) :- T1(X, Z), T2(Z, Y).
    |}

(* Win positions of the pebble game: the canonical well-founded test. *)
let win_program =
  prog {|
      Win(X) :- Moves(X, Y), !Win(Y).
    |}

let with_vertices inst =
  (* V(x) for every vertex mentioned by G, so comp_program can guard
     negation with a positive atom. *)
  let g = Instance.find "G" inst in
  let vs =
    Relation.fold
      (fun tup acc ->
        match Tuple.to_list tup with
        | [ a; b ] -> a :: b :: acc
        | _ -> acc)
      g []
  in
  let v_rel = Relation.of_rows (List.map (fun x -> [ x ]) vs) in
  Instance.set "V" v_rel inst

let test_determinism_tc () =
  List.iter
    (fun seed ->
      let inst = Graph_gen.random ~seed 40 100 in
      check_deterministic
        (Printf.sprintf "naive tc seed=%d" seed)
        (fun () -> Instance.to_string (Datalog.Naive.eval tc_program inst).instance);
      check_deterministic
        (Printf.sprintf "seminaive tc seed=%d" seed)
        (fun () ->
          Instance.to_string (Datalog.Seminaive.eval tc_program inst).instance))
    [ 7; 21; 42 ]

let test_determinism_stratified () =
  List.iter
    (fun seed ->
      let inst = with_vertices (Graph_gen.random ~seed 30 70) in
      check_deterministic
        (Printf.sprintf "stratified comp seed=%d" seed)
        (fun () ->
          Instance.to_string (Datalog.Stratified.eval comp_program inst).instance))
    [ 3; 11 ]

let test_determinism_waves () =
  (* Distinct edge relations so the two TCs are genuinely independent. *)
  let g = Graph_gen.random ~seed:5 25 60 in
  let h = Graph_gen.random ~name:"H" ~seed:6 25 60 in
  let inst = Instance.union g h in
  check_deterministic "stratified waves" (fun () ->
      Instance.to_string (Datalog.Stratified.eval wave_program inst).instance)

let test_determinism_wellfounded () =
  List.iter
    (fun seed ->
      let inst = Graph_gen.random ~name:"Moves" ~seed 20 40 in
      check_deterministic
        (Printf.sprintf "wellfounded win seed=%d" seed)
        (fun () ->
          let r = Datalog.Wellfounded.eval win_program inst in
          Instance.to_string r.true_facts ^ "\n---\n"
          ^ Instance.to_string r.possible))
    [ 9; 17 ]

(* ------------------------------------------------------------------ *)
(* Sharded vs merge strategies                                         *)
(* ------------------------------------------------------------------ *)

let with_strategy s f =
  let saved = Datalog.Eval_util.par_strategy () in
  Datalog.Eval_util.set_par_strategy s;
  Fun.protect ~finally:(fun () -> Datalog.Eval_util.set_par_strategy saved) f

let test_strategy_equivalence () =
  (* Both parallel strategies must print byte-identical instances to the
     sequential run, for every engine, at every job count. *)
  let tc_inst = Graph_gen.random ~seed:42 40 100 in
  let comp_inst = with_vertices (Graph_gen.random ~seed:11 30 70) in
  let win_inst = Graph_gen.random ~name:"Moves" ~seed:17 20 40 in
  let renders =
    [
      ( "seminaive tc",
        fun () ->
          Instance.to_string (Datalog.Seminaive.eval tc_program tc_inst).instance
      );
      ( "stratified comp",
        fun () ->
          Instance.to_string
            (Datalog.Stratified.eval comp_program comp_inst).instance );
      ( "wellfounded win",
        fun () ->
          let r = Datalog.Wellfounded.eval win_program win_inst in
          Instance.to_string r.true_facts ^ "\n---\n"
          ^ Instance.to_string r.possible );
    ]
  in
  List.iter
    (fun (name, render) ->
      let baseline = render () in
      List.iter
        (fun (sname, strat) ->
          with_strategy strat (fun () ->
              List.iter
                (fun j ->
                  let out = with_jobs j render in
                  Alcotest.(check string)
                    (Printf.sprintf "%s: %s at -j %d matches sequential" name
                       sname j)
                    baseline out)
                [ 2; 4 ]))
        [ ("merge", Datalog.Eval_util.Merge); ("shard", Datalog.Eval_util.Sharded) ])
    renders

let test_fallback_traced () =
  (* With the pool held, a parallel-eligible run falls back to
     sequential AND says so in the trace. *)
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "outer acquire failed"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              let inst = Graph_gen.random ~seed:7 20 50 in
              let seq =
                Instance.to_string
                  (Datalog.Seminaive.eval tc_program inst).instance
              in
              let trace = Observe.Trace.make ~sinks:[] () in
              let r = Datalog.Seminaive.eval ~trace tc_program inst in
              Alcotest.(check string)
                "fallback run matches" seq
                (Instance.to_string r.instance);
              Alcotest.(check bool)
                "par.pool.fallbacks counted" true
                (Observe.Trace.counter trace "par.pool.fallbacks" >= 1)))

let test_shard_skew_hub () =
  (* A star graph: every derived T tuple keys on the hub, so one shard
     owns all the fresh work and the skew gauge pegs at 100 * jobs. *)
  let inst =
    Instance.of_list
      [
        ( "G",
          List.init 50 (fun i ->
              [ Value.sym "hub"; Value.sym (Printf.sprintf "spoke%d" i) ]) );
      ]
  in
  let seq =
    Instance.to_string (Datalog.Seminaive.eval tc_program inst).instance
  in
  with_jobs 4 (fun () ->
      let trace = Observe.Trace.make ~sinks:[] () in
      let r = Datalog.Seminaive.eval ~trace tc_program inst in
      Alcotest.(check string)
        "hub graph matches sequential" seq
        (Instance.to_string r.instance);
      let skew = Observe.Trace.counter trace "par.shard_skew" in
      Alcotest.(check bool)
        (Printf.sprintf "par.shard_skew reported (got %d)" skew)
        true
        (skew >= 300 && skew <= 400))

(* ------------------------------------------------------------------ *)
(* Intern-table stress                                                 *)
(* ------------------------------------------------------------------ *)

let test_intern_stress () =
  (* Many domains race to first-intern the same fresh constants; every
     domain must observe the same id for the same value, and of_id must
     round-trip. 8 domains = 7 spawned + the current one. *)
  let rounds = 20 and per_round = 200 and ndom = 8 in
  for round = 0 to rounds - 1 do
    let values =
      Array.init per_round (fun k ->
          Value.sym (Printf.sprintf "par_stress_%d_%d" round k))
    in
    let ids = Array.make_matrix ndom per_round (-1) in
    let work d () =
      Array.iteri (fun k v -> ids.(d).(k) <- Value.Intern.id v) values
    in
    let domains =
      List.init (ndom - 1) (fun i -> Domain.spawn (work (i + 1)))
    in
    work 0 ();
    List.iter Domain.join domains;
    for d = 1 to ndom - 1 do
      Alcotest.(check (array int))
        (Printf.sprintf "round %d: domain %d ids agree" round d)
        ids.(0) ids.(d)
    done;
    Array.iteri
      (fun k id ->
        Alcotest.check value
          (Printf.sprintf "round %d: of_id roundtrip %d" round k)
          values.(k)
          (Value.Intern.of_id id))
      ids.(0);
    let distinct = List.sort_uniq compare (Array.to_list ids.(0)) in
    Alcotest.(check int)
      (Printf.sprintf "round %d: ids distinct" round)
      per_round (List.length distinct)
  done

let suite =
  [
    Alcotest.test_case "pool acquire size" `Quick test_pool_acquire_size;
    Alcotest.test_case "no pool at jobs=1" `Quick
      test_pool_sequential_no_acquire;
    Alcotest.test_case "nested acquire falls back" `Quick
      test_pool_nested_acquire;
    Alcotest.test_case "run covers all workers" `Quick
      test_pool_run_covers_workers;
    Alcotest.test_case "worker exception propagates" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "set_jobs rejects 0" `Quick
      test_set_jobs_rejects_nonpositive;
    Alcotest.test_case "busy acquire is counted" `Quick
      test_pool_fallback_count;
    Alcotest.test_case "run_phases: barrier between phases" `Quick
      test_run_phases_barrier;
    Alcotest.test_case "run_phases: exception propagates" `Quick
      test_run_phases_exception;
    Alcotest.test_case "exchange: post/dedup/drain" `Quick
      test_exchange_post_drain;
    Alcotest.test_case "determinism: tc naive+seminaive" `Quick
      test_determinism_tc;
    Alcotest.test_case "determinism: stratified negation" `Quick
      test_determinism_stratified;
    Alcotest.test_case "determinism: stratified waves" `Quick
      test_determinism_waves;
    Alcotest.test_case "determinism: well-founded" `Quick
      test_determinism_wellfounded;
    Alcotest.test_case "strategies: shard == merge == sequential" `Quick
      test_strategy_equivalence;
    Alcotest.test_case "held pool: traced fallback" `Quick
      test_fallback_traced;
    Alcotest.test_case "hub graph: shard skew reported" `Quick
      test_shard_skew_hub;
    Alcotest.test_case "intern table stress (8 domains)" `Quick
      test_intern_stress;
  ]
