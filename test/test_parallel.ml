(* Tests for the domain pool and the parallel evaluation paths.

   The contract under test is strong: for every engine and every job
   count, the computed instances must be byte-identical to a sequential
   run. Trace counters are explicitly NOT part of that contract (e.g.
   [fixpoint.tuples_derived] may double-count across workers before the
   merge dedup), so these tests compare instances only. *)

open Relational
open Helpers

(* Run [f] with the global pool sized to [j] jobs, restoring the
   single-job (sequential) configuration afterwards even on failure. *)
let with_jobs j f =
  Parallel.Pool.set_jobs j;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs 1) f

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                      *)
(* ------------------------------------------------------------------ *)

let test_pool_acquire_size () =
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "acquire returned None at jobs=4"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              Alcotest.(check int) "pool size" 4 (Parallel.Pool.size pool)))

let test_pool_sequential_no_acquire () =
  (* jobs defaults to 1 in tests; there is no pool to acquire. *)
  Alcotest.(check int) "jobs" 1 (Parallel.Pool.jobs ());
  match Parallel.Pool.acquire () with
  | None -> ()
  | Some pool ->
      Parallel.Pool.release pool;
      Alcotest.fail "acquire returned a pool at jobs=1"

let test_pool_nested_acquire () =
  (* The global pool is exclusive: a nested fixpoint running inside a
     worker must see it busy and fall back to sequential evaluation. *)
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "outer acquire failed"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              (match Parallel.Pool.acquire () with
              | None -> ()
              | Some p2 ->
                  Parallel.Pool.release p2;
                  Alcotest.fail "nested acquire succeeded");
              (* released pools can be re-acquired *)
              ());
          match Parallel.Pool.acquire () with
          | None -> Alcotest.fail "re-acquire after release failed"
          | Some p3 -> Parallel.Pool.release p3)

let test_pool_run_covers_workers () =
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "acquire failed"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              let n = Parallel.Pool.size pool in
              let hits = Array.make n 0 in
              Parallel.Pool.run pool (fun w -> hits.(w) <- hits.(w) + 1);
              Array.iteri
                (fun w h ->
                  Alcotest.(check int)
                    (Printf.sprintf "worker %d ran once" w)
                    1 h)
                hits;
              (* a second job on the same pool works too *)
              let total = Atomic.make 0 in
              Parallel.Pool.run pool (fun _ -> Atomic.incr total);
              Alcotest.(check int) "second job" n (Atomic.get total)))

let test_pool_exception_propagates () =
  with_jobs 4 (fun () ->
      match Parallel.Pool.acquire () with
      | None -> Alcotest.fail "acquire failed"
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              (match
                 Parallel.Pool.run pool (fun w ->
                     if w = 2 then failwith "boom")
               with
              | () -> Alcotest.fail "expected the worker exception"
              | exception Failure msg ->
                  Alcotest.(check string) "message" "boom" msg);
              (* the pool survives a failed job *)
              let total = Atomic.make 0 in
              Parallel.Pool.run pool (fun _ -> Atomic.incr total);
              Alcotest.(check int)
                "pool usable after failure" 4 (Atomic.get total)))

let test_set_jobs_rejects_nonpositive () =
  match Parallel.Pool.set_jobs 0 with
  | () -> Alcotest.fail "set_jobs 0 should raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Cross-engine determinism across job counts                          *)
(* ------------------------------------------------------------------ *)

let job_counts = [ 1; 2; 4; 8 ]

(* Render an engine's full output as a string at each job count and
   assert byte-identity with the sequential run. *)
let check_deterministic name render =
  let baseline = render () in
  List.iter
    (fun j ->
      let out = with_jobs j render in
      Alcotest.(check string)
        (Printf.sprintf "%s at -j %d matches sequential" name j)
        baseline out)
    job_counts

(* Stratified program with negation on top of recursion: vertices not
   reaching [bad] via T. *)
let comp_program =
  prog
    {|
      T(X, Y) :- G(X, Y).
      T(X, Y) :- G(X, Z), T(Z, Y).
      Safe(X) :- V(X), !T(X, "n3").
    |}

(* Two independent recursive SCCs plus a consumer: exercises the
   stratified wave planner (T1 and T2 are parallel groups, C a later
   wave). *)
let wave_program =
  prog
    {|
      T1(X, Y) :- G(X, Y).
      T1(X, Y) :- G(X, Z), T1(Z, Y).
      T2(X, Y) :- H(X, Y).
      T2(X, Y) :- H(X, Z), T2(Z, Y).
      C(X, Y) :- T1(X, Z), T2(Z, Y).
    |}

(* Win positions of the pebble game: the canonical well-founded test. *)
let win_program =
  prog {|
      Win(X) :- Moves(X, Y), !Win(Y).
    |}

let with_vertices inst =
  (* V(x) for every vertex mentioned by G, so comp_program can guard
     negation with a positive atom. *)
  let g = Instance.find "G" inst in
  let vs =
    Relation.fold
      (fun tup acc ->
        match Tuple.to_list tup with
        | [ a; b ] -> a :: b :: acc
        | _ -> acc)
      g []
  in
  let v_rel = Relation.of_rows (List.map (fun x -> [ x ]) vs) in
  Instance.set "V" v_rel inst

let test_determinism_tc () =
  List.iter
    (fun seed ->
      let inst = Graph_gen.random ~seed 40 100 in
      check_deterministic
        (Printf.sprintf "naive tc seed=%d" seed)
        (fun () -> Instance.to_string (Datalog.Naive.eval tc_program inst).instance);
      check_deterministic
        (Printf.sprintf "seminaive tc seed=%d" seed)
        (fun () ->
          Instance.to_string (Datalog.Seminaive.eval tc_program inst).instance))
    [ 7; 21; 42 ]

let test_determinism_stratified () =
  List.iter
    (fun seed ->
      let inst = with_vertices (Graph_gen.random ~seed 30 70) in
      check_deterministic
        (Printf.sprintf "stratified comp seed=%d" seed)
        (fun () ->
          Instance.to_string (Datalog.Stratified.eval comp_program inst).instance))
    [ 3; 11 ]

let test_determinism_waves () =
  (* Distinct edge relations so the two TCs are genuinely independent. *)
  let g = Graph_gen.random ~seed:5 25 60 in
  let h = Graph_gen.random ~name:"H" ~seed:6 25 60 in
  let inst = Instance.union g h in
  check_deterministic "stratified waves" (fun () ->
      Instance.to_string (Datalog.Stratified.eval wave_program inst).instance)

let test_determinism_wellfounded () =
  List.iter
    (fun seed ->
      let inst = Graph_gen.random ~name:"Moves" ~seed 20 40 in
      check_deterministic
        (Printf.sprintf "wellfounded win seed=%d" seed)
        (fun () ->
          let r = Datalog.Wellfounded.eval win_program inst in
          Instance.to_string r.true_facts ^ "\n---\n"
          ^ Instance.to_string r.possible))
    [ 9; 17 ]

(* ------------------------------------------------------------------ *)
(* Intern-table stress                                                 *)
(* ------------------------------------------------------------------ *)

let test_intern_stress () =
  (* Many domains race to first-intern the same fresh constants; every
     domain must observe the same id for the same value, and of_id must
     round-trip. 8 domains = 7 spawned + the current one. *)
  let rounds = 20 and per_round = 200 and ndom = 8 in
  for round = 0 to rounds - 1 do
    let values =
      Array.init per_round (fun k ->
          Value.sym (Printf.sprintf "par_stress_%d_%d" round k))
    in
    let ids = Array.make_matrix ndom per_round (-1) in
    let work d () =
      Array.iteri (fun k v -> ids.(d).(k) <- Value.Intern.id v) values
    in
    let domains =
      List.init (ndom - 1) (fun i -> Domain.spawn (work (i + 1)))
    in
    work 0 ();
    List.iter Domain.join domains;
    for d = 1 to ndom - 1 do
      Alcotest.(check (array int))
        (Printf.sprintf "round %d: domain %d ids agree" round d)
        ids.(0) ids.(d)
    done;
    Array.iteri
      (fun k id ->
        Alcotest.check value
          (Printf.sprintf "round %d: of_id roundtrip %d" round k)
          values.(k)
          (Value.Intern.of_id id))
      ids.(0);
    let distinct = List.sort_uniq compare (Array.to_list ids.(0)) in
    Alcotest.(check int)
      (Printf.sprintf "round %d: ids distinct" round)
      per_round (List.length distinct)
  done

let suite =
  [
    Alcotest.test_case "pool acquire size" `Quick test_pool_acquire_size;
    Alcotest.test_case "no pool at jobs=1" `Quick
      test_pool_sequential_no_acquire;
    Alcotest.test_case "nested acquire falls back" `Quick
      test_pool_nested_acquire;
    Alcotest.test_case "run covers all workers" `Quick
      test_pool_run_covers_workers;
    Alcotest.test_case "worker exception propagates" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "set_jobs rejects 0" `Quick
      test_set_jobs_rejects_nonpositive;
    Alcotest.test_case "determinism: tc naive+seminaive" `Quick
      test_determinism_tc;
    Alcotest.test_case "determinism: stratified negation" `Quick
      test_determinism_stratified;
    Alcotest.test_case "determinism: stratified waves" `Quick
      test_determinism_waves;
    Alcotest.test_case "determinism: well-founded" `Quick
      test_determinism_wellfounded;
    Alcotest.test_case "intern table stress (8 domains)" `Quick
      test_intern_stress;
  ]
