(* Stratified aggregation (§6's LogiQL/BigDatalog line). *)
open Relational
open Helpers
module Agg = Datalog.Aggregate

let orders =
  facts
    {|
      order(alice, widget, 3).
      order(alice, gizmo, 2).
      order(bob, widget, 5).
      order(carol, gizmo, 1).
      price(widget, 10).
      price(gizmo, 7).
    |}

let blits src =
  (Datalog.Parser.parse_rule ("agg__probe :- " ^ src)).Datalog.Ast.body

let test_count () =
  let layers =
    [
      {
        Agg.rules = [];
        aggregates =
          [
            {
              Agg.pred = "orders_per_cust";
              group_by = [ "C" ];
              func = Agg.Count;
              body = blits "order(C, I, N)";
            };
          ];
      };
    ]
  in
  let r = Agg.answer layers orders "orders_per_cust" in
  check_rel "counts"
    (Relation.of_rows
       [ [ v "alice"; i 2 ]; [ v "bob"; i 1 ]; [ v "carol"; i 1 ] ])
    r

let test_sum_min_max () =
  let mk func pred col =
    {
      Agg.rules = [];
      aggregates =
        [ { Agg.pred; group_by = [ "I" ]; func; body = blits col } ];
    }
  in
  let sums =
    Agg.answer [ mk (Agg.Sum "N") "total" "order(C, I, N)" ] orders "total"
  in
  check_rel "sums"
    (Relation.of_rows [ [ v "widget"; i 8 ]; [ v "gizmo"; i 3 ] ])
    sums;
  let mins =
    Agg.answer [ mk (Agg.Min "N") "least" "order(C, I, N)" ] orders "least"
  in
  check_rel "mins"
    (Relation.of_rows [ [ v "widget"; i 3 ]; [ v "gizmo"; i 1 ] ])
    mins;
  let maxs =
    Agg.answer [ mk (Agg.Max "N") "most" "order(C, I, N)" ] orders "most"
  in
  check_rel "maxs"
    (Relation.of_rows [ [ v "widget"; i 5 ]; [ v "gizmo"; i 2 ] ])
    maxs

let test_layered_recursion_then_aggregate () =
  (* layer 1: compute reachability; layer 2: count reachable nodes per
     source — aggregation over a recursive result *)
  let layers =
    [
      {
        Agg.rules =
          prog "T(X,Y) :- G(X,Y). T(X,Y) :- G(X,Z), T(Z,Y).";
        aggregates =
          [
            {
              Agg.pred = "reach_count";
              group_by = [ "X" ];
              func = Agg.Count;
              body = blits "T(X, Y)";
            };
          ];
      };
    ]
  in
  let inst = Graph_gen.chain 5 in
  let r = Agg.answer layers inst "reach_count" in
  (* n0 reaches 4, n1 3, n2 2, n3 1 *)
  check_rel "reach counts"
    (Relation.of_rows
       [
         [ v "n0"; i 4 ]; [ v "n1"; i 3 ]; [ v "n2"; i 2 ]; [ v "n3"; i 1 ];
       ])
    r

let test_aggregate_feeds_next_layer () =
  (* layer 1 computes counts; layer 2's rules read them *)
  let layers =
    [
      {
        Agg.rules = [];
        aggregates =
          [
            {
              Agg.pred = "cnt";
              group_by = [ "C" ];
              func = Agg.Count;
              body = blits "order(C, I, N)";
            };
          ];
      };
      {
        Agg.rules = prog "multi(C) :- cnt(C, 2).";
        aggregates = [];
      };
    ]
  in
  check_rel "multi-item customers" (unary [ "alice" ])
    (Agg.answer layers orders "multi")

let test_agg_with_negation_body () =
  (* count orders for items with no price listing *)
  let layers =
    [
      {
        Agg.rules = prog "priced(I) :- price(I, P).";
        aggregates =
          [
            {
              Agg.pred = "unpriced_orders";
              group_by = [];
              func = Agg.Count;
              body = blits "order(C, I, N), !priced(I)";
            };
          ];
      };
    ]
  in
  (* all items are priced: empty group -> no fact (SQL GROUP BY shape) *)
  check_rel "no unpriced" Relation.empty
    (Agg.answer layers orders "unpriced_orders")

let test_sum_requires_ints () =
  let layers =
    [
      {
        Agg.rules = [];
        aggregates =
          [
            {
              Agg.pred = "bad";
              group_by = [];
              func = Agg.Sum "I";
              body = blits "order(C, I, N)";
            };
          ];
      };
    ]
  in
  match Agg.eval layers orders with
  | exception Agg.Agg_error _ -> ()
  | _ -> Alcotest.fail "expected Agg_error"

let test_sum_overflow () =
  let sum_layer =
    [
      {
        Agg.rules = [];
        aggregates =
          [
            {
              Agg.pred = "total";
              group_by = [];
              func = Agg.Sum "X";
              body = blits "n(X)";
            };
          ];
      };
    ]
  in
  let inst rows = Instance.of_list [ ("n", rows) ] in
  (* max_int + 1 wraps silently in native ints — must raise instead *)
  (match Agg.eval sum_layer (inst [ [ i max_int ]; [ i 1 ] ]) with
  | exception Agg.Agg_error _ -> ()
  | _ -> Alcotest.fail "expected Agg_error on positive overflow");
  (match Agg.eval sum_layer (inst [ [ i min_int ]; [ i (-1) ] ]) with
  | exception Agg.Agg_error _ -> ()
  | _ -> Alcotest.fail "expected Agg_error on negative overflow");
  (* mixed signs can't overflow: max_int + (-1) is fine *)
  check_rel "no spurious overflow"
    (Relation.of_rows [ [ i (max_int - 1) ] ])
    (Agg.answer sum_layer (inst [ [ i max_int ]; [ i (-1) ] ]) "total")

let test_unbound_agg_var () =
  let layers =
    [
      {
        Agg.rules = [];
        aggregates =
          [
            {
              Agg.pred = "bad";
              group_by = [ "Z" ];
              func = Agg.Count;
              body = blits "order(C, I, N)";
            };
          ];
      };
    ]
  in
  match Agg.eval layers orders with
  | exception Datalog.Ast.Check_error _ -> ()
  | _ -> Alcotest.fail "expected Check_error for unbound group-by"

let suite =
  [
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "sum/min/max" `Quick test_sum_min_max;
    Alcotest.test_case "recursion then aggregation" `Quick
      test_layered_recursion_then_aggregate;
    Alcotest.test_case "aggregates feed later layers" `Quick
      test_aggregate_feeds_next_layer;
    Alcotest.test_case "negation in aggregate bodies" `Quick
      test_agg_with_negation_body;
    Alcotest.test_case "sum type error" `Quick test_sum_requires_ints;
    Alcotest.test_case "sum overflow detected" `Quick test_sum_overflow;
    Alcotest.test_case "unbound group-by rejected" `Quick
      test_unbound_agg_var;
  ]
