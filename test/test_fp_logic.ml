(* Fixpoint logics FO+IFP / FO+PFP (+W) — §5.2 of the paper. *)
open Relational
open Helpers
module Fp = Fixpoint_logic.Fp

let g x y = Fp.Atom ("G", [ Fp.Var x; Fp.Var y ])

(* TC via IFP: [IFP_{T,(x,y)} G(x,y) ∨ ∃z (G(x,z) ∧ T(z,y))](u, v) *)
let tc_formula =
  Fp.ifp ~rel:"T" ~vars:[ "x"; "y" ]
    (Fp.Or
       ( g "x" "y",
         Fp.Exists
           ( [ "z" ],
             Fp.And (g "x" "z", Fp.Atom ("T", [ Fp.Var "z"; Fp.Var "y" ])) ) ))
    [ Fp.Var "u"; Fp.Var "v" ]

let test_ifp_tc () =
  List.iter
    (fun seed ->
      let inst = Graph_gen.random ~seed 7 12 in
      let expected = Graph_gen.reference_tc (Instance.find "G" inst) in
      let got = Fp.eval inst tc_formula [ "u"; "v" ] in
      check_rel (Printf.sprintf "IFP TC seed %d" seed) expected got)
    [ 1; 2; 3 ]

let test_ifp_equals_inflationary_datalog () =
  (* Theorem 4.2's convergence, on the logic side *)
  let inst = Graph_gen.chain 5 in
  let datalog =
    Datalog.Seminaive.answer
      (prog "T(X,Y) :- G(X,Y). T(X,Y) :- G(X,Z), T(Z,Y).")
      inst "T"
  in
  check_rel "logic = rules" datalog (Fp.eval inst tc_formula [ "u"; "v" ])

let test_pfp_converging () =
  (* PFP of an inflationary-style body converges to the same fixpoint *)
  let f =
    Fp.pfp ~rel:"T" ~vars:[ "x"; "y" ]
      (Fp.Or
         ( Fp.Atom ("T", [ Fp.Var "x"; Fp.Var "y" ]),
           Fp.Or
             ( g "x" "y",
               Fp.Exists
                 ( [ "z" ],
                   Fp.And (g "x" "z", Fp.Atom ("T", [ Fp.Var "z"; Fp.Var "y" ]))
                 ) ) ))
      [ Fp.Var "u"; Fp.Var "v" ]
  in
  let inst = Graph_gen.chain 4 in
  check_rel "PFP converges to TC"
    (Graph_gen.reference_tc (Instance.find "G" inst))
    (Fp.eval inst f [ "u"; "v" ])

let test_pfp_flipflop_undefined () =
  (* J' = complement of J flip-flops: PFP undefined *)
  let f =
    Fp.pfp ~rel:"R" ~vars:[ "x" ]
      (Fp.And
         ( Fp.Atom ("e", [ Fp.Var "x" ]),
           Fp.Not (Fp.Atom ("R", [ Fp.Var "x" ])) ))
      [ Fp.Var "u" ]
  in
  let inst = facts "e(a). e(b)." in
  match Fp.eval inst f [ "u" ] with
  | exception Fp.Undefined _ -> ()
  | _ -> Alcotest.fail "expected Undefined"

let test_nested_fixpoints () =
  (* nodes on a cycle: x with T(x,x), where T is an inner IFP *)
  let on_cycle =
    Fp.ifp ~rel:"T" ~vars:[ "x"; "y" ]
      (Fp.Or
         ( g "x" "y",
           Fp.Exists
             ( [ "z" ],
               Fp.And (g "x" "z", Fp.Atom ("T", [ Fp.Var "z"; Fp.Var "y" ])) )
         ))
      [ Fp.Var "u"; Fp.Var "u" ]
  in
  let inst = facts "G(a,b). G(b,a). G(b,c)." in
  check_rel "cycle members" (unary [ "a"; "b" ])
    (Fp.eval inst on_cycle [ "u" ])

let test_free_vars () =
  Alcotest.(check (list string)) "tc formula" [ "u"; "v" ]
    (Fp.free_vars tc_formula);
  let w = Fp.Witness ([ "x" ], Fp.Atom ("e", [ Fp.Var "x" ])) in
  Alcotest.(check (list string)) "witness vars stay free" [ "x" ]
    (Fp.free_vars w)

let test_witness_selects_one () =
  let w = Fp.Witness ([ "x" ], Fp.Atom ("e", [ Fp.Var "x" ])) in
  let inst = facts "e(a). e(b). e(c)." in
  let r = Fp.eval inst w [ "x" ] in
  Alcotest.(check int) "one selected" 1 (Relation.cardinal r);
  (* deterministic under a fixed policy *)
  let r2 = Fp.eval inst w [ "x" ] in
  check_rel "deterministic" r r2;
  (* different seeds can pick different witnesses; all outcomes = 3 *)
  let outs = Fp.outcomes inst w [ "x" ] in
  Alcotest.(check int) "three possible outcomes" 3 (List.length outs)

let test_witness_per_parameter () =
  (* W y G(x,y): one successor chosen per x *)
  let w = Fp.Witness ([ "y" ], g "x" "y") in
  let inst = facts "G(a,b). G(a,c). G(d,e)." in
  let r = Fp.eval ~policy:(Fp.seeded_policy 5) inst w [ "x"; "y" ] in
  Alcotest.(check int) "one row per source" 2 (Relation.cardinal r);
  let outs = Fp.outcomes inst w [ "x"; "y" ] in
  (* two choices for a, one for d *)
  Alcotest.(check int) "2x1 outcomes" 2 (List.length outs)

let test_witness_unsatisfiable () =
  let w = Fp.Witness ([ "x" ], Fp.Atom ("empty", [ Fp.Var "x" ])) in
  let inst = facts "e(a)." in
  check_rel "no witness" Relation.empty (Fp.eval inst w [ "x" ])

let test_witness_inside_ifp () =
  (* a nondeterministic chain: start at the chosen root, then follow G —
     FO+IFP+W: the reachable set depends on the witness *)
  let f =
    Fp.ifp ~rel:"S" ~vars:[ "x" ]
      (Fp.Or
         ( Fp.Witness ([ "x" ], Fp.Atom ("root", [ Fp.Var "x" ])),
           Fp.Exists
             ( [ "z" ],
               Fp.And (Fp.Atom ("S", [ Fp.Var "z" ]), g "z" "x") ) ))
      [ Fp.Var "u" ]
  in
  let inst = facts "root(a). root(c). G(a,b). G(c,d)." in
  let outs = Fp.outcomes inst f [ "u" ] in
  Alcotest.(check int) "two outcomes" 2 (List.length outs);
  let sets =
    List.map
      (fun r -> List.map Value.to_string (Relation.values r))
      outs
    |> List.sort compare
  in
  Alcotest.(check (list (list string)))
    "reachable sets"
    [ [ "a"; "b" ]; [ "c"; "d" ] ]
    sets

let test_arity_errors () =
  let bad =
    Fp.ifp ~rel:"T" ~vars:[ "x"; "y" ] (g "x" "y") [ Fp.Var "u" ]
  in
  match Fp.eval (facts "G(a,b).") bad [ "u" ] with
  | exception Fp.Type_error _ -> ()
  | _ -> Alcotest.fail "expected Type_error"

(* --- the compiled path ----------------------------------------------------- *)

let test_compiled_equals_naive_fp () =
  (* the semi-naive fragment (TC), a non-monotone body (rec under ¬ —
     full-recompute iteration), and a converging PFP *)
  let nonmono =
    Fp.ifp ~rel:"T" ~vars:[ "x"; "y" ]
      (Fp.Or
         ( g "x" "y",
           Fp.And
             ( g "y" "x",
               Fp.Not (Fp.Atom ("T", [ Fp.Var "x"; Fp.Var "x" ])) ) ))
      [ Fp.Var "u"; Fp.Var "v" ]
  in
  let pfp_tc =
    Fp.pfp ~rel:"T" ~vars:[ "x"; "y" ]
      (Fp.Or
         ( Fp.Atom ("T", [ Fp.Var "x"; Fp.Var "y" ]),
           Fp.Or
             ( g "x" "y",
               Fp.Exists
                 ( [ "z" ],
                   Fp.And (g "x" "z", Fp.Atom ("T", [ Fp.Var "z"; Fp.Var "y" ]))
                 ) ) ))
      [ Fp.Var "u"; Fp.Var "v" ]
  in
  List.iter
    (fun seed ->
      let inst = Graph_gen.random ~seed 6 10 in
      List.iteri
        (fun k f ->
          check_rel
            (Printf.sprintf "seed %d case %d" seed k)
            (Fp.eval_naive inst f [ "u"; "v" ])
            (Fp.eval inst f [ "u"; "v" ]))
        [ tc_formula; nonmono; pfp_tc ])
    [ 11; 12; 13 ]

let test_fp_rounds_counter () =
  let trace = Observe.Trace.make () in
  let inst = Graph_gen.chain 5 in
  ignore (Fp.eval ~trace inst tc_formula [ "u"; "v" ]);
  Alcotest.(check bool) "rounds counted" true
    (Observe.Trace.counter trace "fp.rounds" >= 3);
  Alcotest.(check int) "no fallback" 0
    (Observe.Trace.counter trace "fp.fallback")

let test_fp_fallback_counter () =
  let trace = Observe.Trace.make () in
  let w = Fp.Witness ([ "x" ], Fp.Atom ("e", [ Fp.Var "x" ])) in
  let inst = facts "e(a). e(b)." in
  let r = Fp.eval ~trace inst w [ "x" ] in
  Alcotest.(check int) "witness forces the naive path" 1
    (Observe.Trace.counter trace "fp.fallback");
  check_rel "fallback result = naive" (Fp.eval_naive inst w [ "x" ]) r

let test_parameterized_fixpoint_falls_back () =
  (* reachable-from-p: the body's free parameter p makes the fixpoint
     per-valuation — the compiled path must detect it and agree anyway *)
  let f =
    Fp.ifp ~rel:"R" ~vars:[ "x" ]
      (Fp.Or
         ( Fp.Eq (Fp.Var "x", Fp.Var "p"),
           Fp.Exists
             ( [ "z" ],
               Fp.And (Fp.Atom ("R", [ Fp.Var "z" ]), g "z" "x") ) ))
      [ Fp.Var "u" ]
  in
  let inst = facts "G(a,b). G(b,c). G(d,d)." in
  let trace = Observe.Trace.make () in
  check_rel "parameterized reachability"
    (Fp.eval_naive inst f [ "u"; "p" ])
    (Fp.eval ~trace inst f [ "u"; "p" ]);
  Alcotest.(check int) "fell back" 1
    (Observe.Trace.counter trace "fp.fallback")

let test_fp_full_free_var_list () =
  match Fp.eval (facts "G(a,b).") tc_formula [] with
  | exception Invalid_argument msg ->
      Alcotest.(check string) "lists every missing variable"
        "Fp.eval: free variables u, v not in output list" msg
  | _ -> Alcotest.fail "expected Invalid_argument"

let suite =
  [
    Alcotest.test_case "IFP computes TC" `Quick test_ifp_tc;
    Alcotest.test_case "IFP = inflationary Datalog (Thm 4.2)" `Quick
      test_ifp_equals_inflationary_datalog;
    Alcotest.test_case "PFP converges on inflationary bodies" `Quick
      test_pfp_converging;
    Alcotest.test_case "PFP flip-flop undefined" `Quick
      test_pfp_flipflop_undefined;
    Alcotest.test_case "nested fixpoints" `Quick test_nested_fixpoints;
    Alcotest.test_case "free variables" `Quick test_free_vars;
    Alcotest.test_case "W selects one witness" `Quick test_witness_selects_one;
    Alcotest.test_case "W selects per parameter" `Quick
      test_witness_per_parameter;
    Alcotest.test_case "W with no candidates" `Quick
      test_witness_unsatisfiable;
    Alcotest.test_case "W inside IFP (FO+IFP+W)" `Quick
      test_witness_inside_ifp;
    Alcotest.test_case "fixpoint arity errors" `Quick test_arity_errors;
    Alcotest.test_case "compiled = naive (IFP/PFP, non-monotone)" `Quick
      test_compiled_equals_naive_fp;
    Alcotest.test_case "fp.rounds counter" `Quick test_fp_rounds_counter;
    Alcotest.test_case "witness falls back to naive" `Quick
      test_fp_fallback_counter;
    Alcotest.test_case "parameterized fixpoint falls back" `Quick
      test_parameterized_fixpoint_falls_back;
    Alcotest.test_case "all missing free variables reported" `Quick
      test_fp_full_free_var_list;
  ]
