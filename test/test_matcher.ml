(* The matcher: index-backed rule instantiation — the shared workhorse. *)
open Relational
open Helpers
module M = Datalog.Matcher
module Ast = Datalog.Ast

let inst = facts "G(a,b). G(b,c). G(a,c). P(a). P(b)."
let db () = M.Db.of_instance inst

let rule src = Datalog.Parser.parse_rule src
let run ?delta ?dom ?neg_db src = M.run ?delta ?dom ?neg_db (M.prepare (rule src)) (db ())

let test_db_lookup () =
  let d = db () in
  Alcotest.(check int) "all tuples" 3 (List.length (M.Db.lookup d "G" []));
  Alcotest.(check int) "bound first col" 2
    (List.length (M.Db.lookup d "G" [ (0, v "a") ]));
  Alcotest.(check int) "bound both" 1
    (List.length (M.Db.lookup d "G" [ (0, v "a"); (1, v "c") ]));
  Alcotest.(check int) "missing pred" 0 (List.length (M.Db.lookup d "Z" []));
  Alcotest.(check bool) "mem" true (M.Db.mem d "P" (t [ v "a" ]))

let test_join_count () =
  (* G(X,Y), G(Y,Z): paths of length 2: a-b-c only *)
  let substs = run "p(X, Z) :- G(X, Y), G(Y, Z)." in
  Alcotest.(check int) "one 2-path" 1 (List.length substs)

let test_repeated_variable () =
  let substs = run "p(X) :- G(X, X)." in
  Alcotest.(check int) "no self loops" 0 (List.length substs);
  let inst2 = facts "G(a,a). G(a,b)." in
  let substs2 =
    M.run (M.prepare (rule "p(X) :- G(X, X).")) (M.Db.of_instance inst2)
  in
  Alcotest.(check int) "one self loop" 1 (List.length substs2)

let test_constants_in_atoms () =
  let substs = run "p(Y) :- G(a, Y)." in
  Alcotest.(check int) "two successors of a" 2 (List.length substs)

let test_negative_filter () =
  let substs = run "p(X, Y) :- G(X, Y), !P(Y)." in
  (* G pairs whose target is not in P = (b,c) and (a,c) *)
  Alcotest.(check int) "two" 2 (List.length substs)

let test_equality_filters () =
  let substs = run "p(X, Y) :- G(X, Y), X != Y." in
  Alcotest.(check int) "all edges distinct-ended" 3 (List.length substs);
  let substs2 = run "p(X) :- P(X), X = a." in
  Alcotest.(check int) "pinned by equality" 1 (List.length substs2)

let test_domain_variable () =
  (* Y occurs only in a negative literal: ranges over the domain *)
  let dom = List.map v [ "a"; "b"; "c" ] in
  let substs = run ~dom "p(Y) :- P(a), !P(Y)." in
  (* Y in {a,b,c} with P(Y) false: only c *)
  Alcotest.(check int) "one" 1 (List.length substs);
  Alcotest.(check bool) "it is c" true
    (List.for_all (fun s -> List.assoc "Y" s = v "c") substs)

let test_domain_requires_dom () =
  match run "p(Y) :- P(a), !P(Y)." with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument without ~dom"

let test_delta_restriction () =
  let delta = Relation.of_rows [ [ v "a"; v "b" ] ] in
  let substs = run ~delta:("G", delta) "p(X, Z) :- G(X, Y), G(Y, Z)." in
  (* occurrences: first G in delta: (a,b) ∘ G(b,·) = (a,b,c);
     second G in delta: G(·,a)=none. => 1 *)
  Alcotest.(check int) "delta join" 1 (List.length substs);
  let no_delta = run ~delta:("P", Relation.of_rows [ [ v "a" ] ])
      "p(X, Z) :- G(X, Y), G(Y, Z)." in
  Alcotest.(check int) "delta on absent pred" 0 (List.length no_delta)

let test_neg_db_gl_primitive () =
  (* negation checked against a different instance *)
  let neg_db = M.Db.of_instance (facts "P(a). P(b). P(c).") in
  let substs = run ~neg_db "p(X, Y) :- G(X, Y), !P(Y)." in
  Alcotest.(check int) "all targets blocked" 0 (List.length substs);
  let neg_db2 = M.Db.of_instance Instance.empty in
  let substs2 = run ~neg_db:neg_db2 "p(X, Y) :- G(X, Y), !P(Y)." in
  Alcotest.(check int) "nothing blocked" 3 (List.length substs2)

let test_forall () =
  (* X such that every G-successor of X is in P *)
  let dom = List.map v [ "a"; "b"; "c" ] in
  let substs =
    run ~dom "ans(X) :- forall Y : P(X), !G(X, Y)."
  in
  (* X ∈ P with no successors at all: b has successor c... G(b,c) exists so
     b fails; a has successors so fails. -> none *)
  Alcotest.(check int) "none" 0 (List.length substs);
  let substs2 =
    M.run ~dom:(List.map v [ "a"; "b" ])
      (M.prepare (rule "ans(X) :- forall Y : P(X), !G(Y, X)."))
      (M.Db.of_instance (facts "P(a). P(b). G(b,b)."))
  in
  (* X with no incoming edges from anywhere: a *)
  Alcotest.(check int) "only a" 1 (List.length substs2)

let test_dedup () =
  (* two derivations of the same binding produce one substitution *)
  let substs = run "p(X) :- G(X, Y)." in
  (* X=a twice (via b and c), X=b once → dedup on (X,Y) pairs: 3; but the
     head var set is X,Y both in rule vars so no collapse... use explicit
     projection-like rule *)
  Alcotest.(check int) "three edges" 3 (List.length substs)

let test_instantiate_heads () =
  let r = rule "p(X), !q(X) :- P(X)." in
  let bottom, facts = M.instantiate_heads [ ("X", v "a") ] r.Ast.head in
  Alcotest.(check bool) "no bottom" false bottom;
  Alcotest.(check int) "two facts" 2 (List.length facts);
  let r2 = rule "bottom :- P(X)." in
  let bottom2, facts2 = M.instantiate_heads [ ("X", v "a") ] r2.Ast.head in
  Alcotest.(check bool) "bottom" true bottom2;
  Alcotest.(check int) "no facts" 0 (List.length facts2)

let test_satisfies () =
  let d = db () in
  Alcotest.(check bool) "positive ok" true
    (M.satisfies d [ ("X", v "a") ]
       [ Ast.BPos (Ast.atom "P" [ Ast.var "X" ]) ]);
  Alcotest.(check bool) "negation ok" true
    (M.satisfies d [ ("X", v "c") ]
       [ Ast.BNeg (Ast.atom "P" [ Ast.var "X" ]) ]);
  match M.satisfies d [] [ Ast.BPos (Ast.atom "P" [ Ast.var "X" ]) ] with
  | exception Ast.Check_error _ -> ()
  | _ -> Alcotest.fail "unbound variable should raise"

let test_remove_purges_pending () =
  (* regression: a fact sitting in the lazy pending buffer must not be
     resurrected by a later absorb-triggered flush after being removed *)
  let d = M.Db.of_instance (facts "G(a,b).") in
  M.Db.absorb_new d "G" [ t [ v "x"; v "y" ] ];
  Alcotest.(check bool) "pending fact visible" true
    (M.Db.mem d "G" (t [ v "x"; v "y" ]));
  Alcotest.(check bool) "remove reports present" true
    (M.Db.remove d "G" (t [ v "x"; v "y" ]));
  (* this absorb flushes the pending buffer; a stale entry would come back *)
  M.Db.absorb_new d "G" [ t [ v "p"; v "q" ] ];
  Alcotest.(check bool) "not resurrected (mem)" false
    (M.Db.mem d "G" (t [ v "x"; v "y" ]));
  Alcotest.(check int) "not resurrected (relation)" 2
    (Relation.cardinal (M.Db.relation d "G"));
  Alcotest.(check int) "not resurrected (lookup)" 0
    (List.length (M.Db.lookup d "G" [ (0, v "x") ]));
  Alcotest.(check bool) "remove of absent fact" false
    (M.Db.remove d "G" (t [ v "x"; v "y" ]))

let test_remove_then_absorb_indexed () =
  (* same resurrection check with memoized indexes and membership sets
     already built before the pending fact arrives *)
  let d = db () in
  ignore (M.Db.lookup d "G" [ (0, v "a") ]);
  Alcotest.(check bool) "warm mem" true (M.Db.mem d "G" (t [ v "a"; v "b" ]));
  M.Db.absorb_new d "G" [ t [ v "c"; v "d" ] ];
  Alcotest.(check int) "index sees pending" 1
    (List.length (M.Db.lookup d "G" [ (0, v "c") ]));
  Alcotest.(check bool) "remove pending" true
    (M.Db.remove d "G" (t [ v "c"; v "d" ]));
  M.Db.absorb_new d "G" [ t [ v "c"; v "e" ] ];
  Alcotest.(check int) "index purged" 0
    (List.length (M.Db.lookup d "G" [ (1, v "d") ]));
  Alcotest.(check bool) "membership purged" false
    (M.Db.mem d "G" (t [ v "c"; v "d" ]));
  Alcotest.(check int) "relation holds original 3 + 1 absorbed" 4
    (Relation.cardinal (M.Db.relation d "G"))

let suite =
  [
    Alcotest.test_case "Db lookup and indexes" `Quick test_db_lookup;
    Alcotest.test_case "join" `Quick test_join_count;
    Alcotest.test_case "repeated variables" `Quick test_repeated_variable;
    Alcotest.test_case "constants in atoms" `Quick test_constants_in_atoms;
    Alcotest.test_case "negative filters" `Quick test_negative_filter;
    Alcotest.test_case "(in)equality filters" `Quick test_equality_filters;
    Alcotest.test_case "domain-bound variables" `Quick test_domain_variable;
    Alcotest.test_case "domain variables need ~dom" `Quick
      test_domain_requires_dom;
    Alcotest.test_case "delta restriction" `Quick test_delta_restriction;
    Alcotest.test_case "neg_db (GL primitive)" `Quick test_neg_db_gl_primitive;
    Alcotest.test_case "forall bodies" `Quick test_forall;
    Alcotest.test_case "substitution dedup" `Quick test_dedup;
    Alcotest.test_case "head instantiation" `Quick test_instantiate_heads;
    Alcotest.test_case "satisfies" `Quick test_satisfies;
    Alcotest.test_case "remove purges the pending buffer" `Quick
      test_remove_purges_pending;
    Alcotest.test_case "remove-then-absorb with warm indexes" `Quick
      test_remove_then_absorb_indexed;
  ]
