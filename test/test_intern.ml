(* Interning layer: round-trips, id stability, order agreement, and
   cross-engine agreement of the interned backend against the
   Floyd–Warshall oracle on random graphs. *)
open Relational
open Helpers
module Q = QCheck

(* values over every constructor, [New] included: the intern table must
   be total over the domain, not just over parseable constants *)
let value_gen =
  Q.Gen.(
    oneof
      [
        map (fun n -> Value.Int n) (-50 -- 50);
        map (fun s -> Value.Str s) (string_size ~gen:printable (0 -- 6));
        map (fun n -> Value.Sym (Printf.sprintf "s%d" n)) (0 -- 40);
        map (fun n -> Value.New n) (0 -- 40);
      ])

let value_arb = Q.make ~print:Value.to_string value_gen

let pair_arb =
  Q.make
    ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)" (Value.to_string a) (Value.to_string b))
    Q.Gen.(pair value_gen value_gen)

let count = 200
let prop name arb f = QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name arb f)

let prop_roundtrip =
  prop "of_id (id v) = v for every constructor" value_arb (fun v ->
      Value.equal (Value.Intern.of_id (Value.Intern.id v)) v)

let prop_id_stable =
  prop "id is idempotent and injective" pair_arb (fun (a, b) ->
      Value.Intern.id a = Value.Intern.id a
      && Value.equal a b = (Value.Intern.id a = Value.Intern.id b))

let prop_compare_ids =
  prop "compare_ids agrees with Value.compare" pair_arb (fun (a, b) ->
      let c = Value.compare a b in
      let ci = Value.Intern.compare_ids (Value.Intern.id a) (Value.Intern.id b) in
      (c = 0) = (ci = 0) && (c < 0) = (ci < 0))

let prop_tuple_consistent =
  prop "tuple equality/hash/compare track values" pair_arb (fun (a, b) ->
      let t1 = Tuple.of_list [ a; b ] and t2 = Tuple.of_list [ a; b ] in
      Tuple.equal t1 t2
      && Tuple.hash t1 = Tuple.hash t2
      && Tuple.compare t1 t2 = 0
      && List.for_all2 Value.equal (Tuple.to_list t1) [ a; b ])

(* graphs a bit larger than the generic property suite's, over both sym
   and int vertices, to exercise the hash-trie relation at depth *)
let graph_gen =
  Q.Gen.(
    let* n = 2 -- 14 in
    let* m = 0 -- (3 * n) in
    let* seed = 0 -- 10_000 in
    let* ints = bool in
    return (Graph_gen.random ~ints ~seed n m, n, m, seed, ints))

let graph_arb =
  Q.make
    ~print:(fun (i, n, m, seed, ints) ->
      Printf.sprintf "graph(n=%d, m=%d, seed=%d, ints=%b):\n%s" n m seed ints
        (Instance.to_string i))
    graph_gen

let prop_engines_vs_oracle =
  prop "naive = semi-naive = Floyd–Warshall on the interned backend"
    graph_arb (fun (i, _, _, _, _) ->
      let n = Datalog.Naive.answer tc_program i "T" in
      let s = Datalog.Seminaive.answer tc_program i "T" in
      let oracle = Graph_gen.reference_tc (Instance.find "G" i) in
      Relation.equal n s && Relation.equal s oracle
      (* byte-identical printing, not just set equality: the sorted view
         must present both results in the same order *)
      && String.equal (Relation.to_string n) (Relation.to_string oracle))

let test_constructors_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.check value "round-trip" v
        (Value.Intern.of_id (Value.Intern.id v)))
    [
      Value.Int 0;
      Value.Int (-7);
      Value.Int max_int;
      Value.Str "";
      Value.Str "alice";
      Value.Sym "a";
      Value.New 0;
      Value.New 42;
    ]

let test_bad_id () =
  Alcotest.check_raises "unallocated id"
    (Invalid_argument
       (Printf.sprintf "Value.Intern.of_id: unknown id %d" max_int))
    (fun () -> ignore (Value.Intern.of_id max_int))

let suite =
  [
    Alcotest.test_case "every constructor round-trips" `Quick
      test_constructors_roundtrip;
    Alcotest.test_case "of_id rejects unallocated ids" `Quick test_bad_id;
    prop_roundtrip;
    prop_id_stable;
    prop_compare_ids;
    prop_tuple_consistent;
    prop_engines_vs_oracle;
  ]
