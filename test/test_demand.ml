(* The demand-driven compiler: three-engine agreement (demand ≡ magic ≡
   filtered semi-naive) on random programs × random queries, the
   subsumptive cache, and memo-table eviction. *)
open Relational
open Helpers
module Q = QCheck

let count = 100

let prop name arb f = QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name arb f)

(* Random positive programs over edb g/2, e/1 with idb t, s, d (binary)
   and p (unary): left/right/doubly recursive closures, a diagonal
   selection, a projection chained through recursion. *)
let rule_pool =
  [|
    "t(X, Y) :- g(X, Y).";
    "t(X, Y) :- t(X, Z), g(Z, Y).";
    "s(X, Y) :- g(X, Y).";
    "s(X, Y) :- g(X, Z), s(Z, Y).";
    "d(X, Y) :- t(X, Y).";
    "d(X, Z) :- d(X, Y), d(Y, Z).";
    "p(X) :- t(X, X).";
    "p(Y) :- g(X, Y), p(X).";
    "p(X) :- e(X).";
  |]

let arities = [ ("t", 2); ("s", 2); ("d", 2); ("p", 1) ]

(* One scenario: a sampled sub-program, a small random instance, and a
   query atom mixing constants (sometimes outside the graph), variables,
   and repeated variables. *)
let scenario_gen =
  Q.Gen.(
    let* mask = list_repeat (Array.length rule_pool) bool in
    let chosen =
      List.concat (List.mapi (fun i k -> if k then [ rule_pool.(i) ] else []) mask)
    in
    let* n = 1 -- 6 in
    let* edges = 0 -- 10 in
    let* seed = 0 -- 10_000 in
    let g = Graph_gen.random ~name:"g" ~seed n edges in
    let* ne = 0 -- n in
    let inst =
      Instance.set "e"
        (Relation.of_rows (List.init ne (fun i -> [ Graph_gen.vertex i ])))
        g
    in
    let p = prog (String.concat "\n" chosen) in
    let idb = Datalog.Ast.idb p in
    let queryable = List.filter (fun (q, _) -> List.mem q idb) arities in
    match queryable with
    | [] -> return (p, inst, None)
    | _ ->
        let* pred, arity = oneofl queryable in
        let* args =
          list_repeat arity
            (frequency
               [
                 (2, map (fun x -> Datalog.Ast.var x) (oneofl [ "X"; "Y" ]));
                 ( 1,
                   map
                     (fun i -> Datalog.Ast.cst (Graph_gen.vertex i))
                     (0 -- (n + 1)) );
               ])
        in
        return (p, inst, Some (Datalog.Ast.atom pred args)))

let scenario_arb =
  Q.make
    ~print:(fun (p, i, q) ->
      Printf.sprintf "program:\n%s\ninstance:\n%s\nquery: %s"
        (Datalog.Pretty.program_to_string p)
        (Instance.to_string i)
        (match q with
        | None -> "<none>"
        | Some q -> Datalog.Pretty.rule_to_string (Datalog.Ast.rule q [])))
    scenario_gen

(* Does a tuple of the query predicate's full relation satisfy the query
   atom — equal constants, consistent (possibly repeated) variables? *)
let matches_query (q : Datalog.Ast.atom) tup =
  let seen = Hashtbl.create 4 in
  let rec go i = function
    | [] -> true
    | Datalog.Ast.Cst c :: rest ->
        Value.equal c (Tuple.get tup i) && go (i + 1) rest
    | Datalog.Ast.Var x :: rest ->
        (match Hashtbl.find_opt seen x with
        | Some v0 -> Value.equal v0 (Tuple.get tup i)
        | None ->
            Hashtbl.add seen x (Tuple.get tup i);
            true)
        && go (i + 1) rest
  in
  go 0 q.Datalog.Ast.args

let oracle p inst (q : Datalog.Ast.atom) =
  Relation.filter (matches_query q)
    (Datalog.Seminaive.answer p inst q.Datalog.Ast.pred)

let bytes_of rel = Format.asprintf "%a" Relation.pp rel

(* demand ≡ Magic.answer ≡ filtered unrewritten semi-naive, byte for
   byte (PR 4/5 oracle discipline) *)
let prop_three_engines_agree =
  prop "demand = magic = filtered semi-naive" scenario_arb (fun (p, i, q) ->
      Q.assume (q <> None);
      let q = Option.get q in
      let expected = bytes_of (oracle p i q) in
      String.equal expected (bytes_of (Datalog.Demand.answer p i q))
      && String.equal expected (bytes_of (Datalog.Magic.answer p i q)))

(* a shared cache across random queries of one scenario never changes
   answers (subsumption serving = recomputation) *)
let prop_cache_transparent =
  prop "cached answers = fresh answers" scenario_arb (fun (p, i, q) ->
      Q.assume (q <> None);
      let q = Option.get q in
      let cache = Datalog.Demand.Cache.create () in
      (* all-free first, so the specific query is served by subsumption *)
      let free_args =
        List.mapi
          (fun j _ -> Datalog.Ast.var (Printf.sprintf "F%d" j))
          q.Datalog.Ast.args
      in
      let qfree = Datalog.Ast.atom q.Datalog.Ast.pred free_args in
      ignore (Datalog.Demand.answer ~cache p i qfree);
      String.equal
        (bytes_of (oracle p i q))
        (bytes_of (Datalog.Demand.answer ~cache p i q)))

(* --- subsumption: tc(a, ?) then tc(a, b) hits the cache ----------------- *)

let test_subsumption_hit () =
  let p = tc_program in
  let inst = Graph_gen.chain 6 in
  let trace = Observe.Trace.make ~sinks:[] () in
  let cache = Datalog.Demand.Cache.create () in
  let q pred args = Datalog.Ast.atom pred args in
  let a = Graph_gen.vertex 0 and b = Graph_gen.vertex 3 in
  let first =
    Datalog.Demand.answer ~trace ~cache p inst
      (q "T" [ Datalog.Ast.cst a; Datalog.Ast.var "Y" ])
  in
  Alcotest.(check int) "miss recorded" 1
    (Observe.Trace.counter trace "demand.cache.misses");
  let point =
    Datalog.Demand.answer ~trace ~cache p inst
      (q "T" [ Datalog.Ast.cst a; Datalog.Ast.cst b ])
  in
  Alcotest.(check int) "point query served from cache" 1
    (Observe.Trace.counter trace "demand.cache.hits");
  check_rel "point answer" (Relation.of_rows [ [ a; b ] ]) point;
  let again =
    Datalog.Demand.answer ~trace ~cache p inst
      (q "T" [ Datalog.Ast.cst a; Datalog.Ast.var "Z" ])
  in
  Alcotest.(check int) "repeat hits too" 2
    (Observe.Trace.counter trace "demand.cache.hits");
  Alcotest.(check string) "identical tuples" (bytes_of first) (bytes_of again)

(* --- eviction ------------------------------------------------------------ *)

let test_eviction () =
  let p = tc_program in
  let inst = Graph_gen.chain 8 in
  let trace = Observe.Trace.make ~sinks:[] () in
  let cache = Datalog.Demand.Cache.create ~plan_cap:1 ~answer_cap:2 () in
  let point i =
    Datalog.Ast.atom "T" [ Datalog.Ast.cst (Graph_gen.vertex i); Datalog.Ast.var "Y" ]
  in
  (* four distinct demand patterns against answer_cap = 2 *)
  List.iter
    (fun i -> ignore (Datalog.Demand.answer ~trace ~cache p inst (point i)))
    [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "answer entries evicted" true
    (Observe.Trace.counter trace "demand.evictions" >= 2);
  (* a second adornment against plan_cap = 1 evicts the first plan set *)
  ignore
    (Datalog.Demand.answer ~trace ~cache p inst
       (Datalog.Ast.atom "T" [ Datalog.Ast.var "X"; Datalog.Ast.var "Y" ]));
  let evictions = Observe.Trace.counter trace "demand.evictions" in
  Alcotest.(check bool) "plan entry evicted" true (evictions >= 3);
  (* evicted patterns still answer correctly (recomputed, not stale) *)
  check_rel "re-query after eviction"
    (oracle p inst (point 0))
    (Datalog.Demand.answer ~trace ~cache p inst (point 0))

let test_cache_flush_on_new_instance () =
  let p = tc_program in
  let cache = Datalog.Demand.Cache.create () in
  let q =
    Datalog.Ast.atom "T" [ Datalog.Ast.cst (Graph_gen.vertex 0); Datalog.Ast.var "Y" ]
  in
  let short = Graph_gen.chain 3 and long = Graph_gen.chain 5 in
  let r1 = Datalog.Demand.answer ~cache p short q in
  let r2 = Datalog.Demand.answer ~cache p long q in
  check_rel "first instance" (oracle p short q) r1;
  check_rel "second instance not served stale" (oracle p long q) r2

let suite =
  [
    prop_three_engines_agree;
    prop_cache_transparent;
    Alcotest.test_case "subsumption: tc(a,?) then tc(a,b) hits" `Quick
      test_subsumption_hit;
    Alcotest.test_case "LRU eviction of plans and answers" `Quick test_eviction;
    Alcotest.test_case "cache flushes on instance change" `Quick
      test_cache_flush_on_new_instance;
  ]
