(* Relational substrate: values, tuples, relations, schemas, instances,
   order adjunction, graph generators. *)
open Relational
open Helpers

(* --- values ------------------------------------------------------------ *)

let test_value_order () =
  Alcotest.(check bool) "ints before strings" true
    (Value.compare (Value.Int 99) (Value.Str "a") < 0);
  Alcotest.(check bool) "strings before syms" true
    (Value.compare (Value.Str "z") (Value.Sym "a") < 0);
  Alcotest.(check bool) "syms before invented" true
    (Value.compare (Value.Sym "zzz") (Value.New 0) < 0);
  Alcotest.(check int) "same int equal" 0
    (Value.compare (Value.Int 5) (Value.Int 5))

let test_value_parse_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.check value "roundtrip" v (Value.parse (Value.to_string v)))
    [ Value.Int 42; Value.Int (-7); Value.Str "hello world"; Value.Sym "abc" ]

let test_value_parse_reject () =
  let reject s =
    match Value.parse s with
    | w ->
        Alcotest.failf "parse %S: expected Invalid_argument, got %s" s
          (Value.to_string w)
    | exception Invalid_argument _ -> ()
  in
  reject "";
  (* a leading quote commits to a string literal: trailing garbage after
     the closing quote must not be silently dropped *)
  reject {|"ab"cd|};
  reject {|"ab|};
  reject {|"|};
  reject {|"a"b"|};
  (* escaped inner quotes still parse to the full string *)
  Alcotest.check value "escaped quote" (Value.Str "a\"b")
    (Value.parse {|"a\"b"|});
  Alcotest.check value "escaped newline" (Value.Str "a\nb")
    (Value.parse {|"a\nb"|})

let test_parse_facts_bad_string_literal () =
  match Instance.parse_facts {|P("ab"cd).|} with
  | _ -> Alcotest.fail "expected parse_facts to fail on \"ab\"cd"
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the line (%s)" msg)
        true
        (String.length msg >= 12 && String.equal (String.sub msg 0 12) "facts line 1")

let test_value_gen_distinct () =
  let g = Value.Gen.create () in
  let a = Value.Gen.fresh g and b = Value.Gen.fresh g in
  Alcotest.(check bool) "distinct" false (Value.equal a b);
  Alcotest.(check bool) "invented" true
    (Value.is_invented a && Value.is_invented b);
  Alcotest.(check int) "count" 2 (Value.Gen.count g);
  (* independent generators may collide with each other but not internally *)
  let g2 = Value.Gen.create () in
  Alcotest.(check bool) "fresh from fresh gen is invented" true
    (Value.is_invented (Value.Gen.fresh g2))

(* --- tuples ------------------------------------------------------------ *)

let test_tuple_ops () =
  let t1 = t [ v "a"; v "b"; v "c" ] in
  Alcotest.(check int) "arity" 3 (Tuple.arity t1);
  Alcotest.check value "get" (v "b") (Tuple.get t1 1);
  Alcotest.check tuple "project" (t [ v "c"; v "a" ]) (Tuple.project t1 [ 2; 0 ]);
  Alcotest.check tuple "concat"
    (t [ v "a"; v "b"; v "c"; v "a" ])
    (Tuple.concat t1 (t [ v "a" ]));
  Alcotest.check tuple "rename"
    (t [ v "c"; v "b"; v "a" ])
    (Tuple.rename t1 [| 2; 1; 0 |])

let test_tuple_out_of_bounds () =
  let t1 = t [ v "a" ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Tuple.get: index 3 out of bounds (arity 1)") (fun () ->
      ignore (Tuple.get t1 3))

let test_tuple_immutable () =
  let arr = [| v "a" |] in
  let t1 = Tuple.make arr in
  arr.(0) <- v "b";
  Alcotest.check value "copy on make" (v "a") (Tuple.get t1 0)

let test_tuple_compare_arities () =
  Alcotest.(check bool) "shorter first" true
    (Tuple.compare (t [ v "z" ]) (t [ v "a"; v "a" ]) < 0)

(* --- relations ---------------------------------------------------------- *)

let test_relation_set_ops () =
  let r1 = pairs [ ("a", "b"); ("b", "c") ] in
  let r2 = pairs [ ("b", "c"); ("c", "d") ] in
  check_rel "union" (pairs [ ("a", "b"); ("b", "c"); ("c", "d") ])
    (Relation.union r1 r2);
  check_rel "inter" (pairs [ ("b", "c") ]) (Relation.inter r1 r2);
  check_rel "diff" (pairs [ ("a", "b") ]) (Relation.diff r1 r2);
  Alcotest.(check bool) "subset" true
    (Relation.subset (pairs [ ("a", "b") ]) r1);
  Alcotest.(check bool) "not subset" false (Relation.subset r2 r1)

let test_relation_arity_enforced () =
  let r = unary [ "a" ] in
  Alcotest.check_raises "mixed arity"
    (Invalid_argument
       "Relation: arity mismatch (relation has arity 1, tuple has 2)")
    (fun () -> ignore (Relation.add (t [ v "x"; v "y" ]) r))

let test_relation_values () =
  let r = pairs [ ("b", "a"); ("c", "a") ] in
  Alcotest.(check (list string))
    "active domain sorted"
    [ "a"; "b"; "c" ]
    (List.map Value.to_string (Relation.values r))

(* --- schema ------------------------------------------------------------- *)

let test_schema_basics () =
  let s = Schema.of_list [ Schema.rel "G" 2; Schema.rel "P" 1 ] in
  Alcotest.(check int) "arity_of" 2 (Schema.arity_of "G" s);
  Alcotest.(check bool) "mem" true (Schema.mem "P" s);
  Alcotest.(check (list string)) "names" [ "G"; "P" ] (Schema.names s)

let test_schema_conflict () =
  let s = Schema.of_list [ Schema.rel "G" 2 ] in
  Alcotest.check_raises "redeclare"
    (Invalid_argument "Schema.add: relation G redeclared with arity 3 (was 2)")
    (fun () -> ignore (Schema.add (Schema.rel "G" 3) s))

let test_schema_attrs () =
  let r = Schema.rel_attrs "emp" [ "name"; "dept" ] in
  Alcotest.(check int) "attr index" 1 (Schema.attr_index r "dept");
  Alcotest.check_raises "unknown attr"
    (Invalid_argument "Schema.attr_index: relation emp has no attribute salary")
    (fun () -> ignore (Schema.attr_index r "salary"));
  Alcotest.check_raises "unknown relation"
    (Invalid_argument "Schema.arity_of: unknown relation nope")
    (fun () ->
      ignore (Schema.arity_of "nope" (Schema.of_list [ Schema.rel "G" 2 ])));
  Alcotest.check_raises "no named attributes"
    (Invalid_argument
       "Schema.attr_index: relation G declares no attribute names (looking up \
        x)")
    (fun () -> ignore (Schema.attr_index (Schema.rel "G" 2) "x"))

(* --- instances ----------------------------------------------------------- *)

let test_instance_ops () =
  let i = facts "G(a,b). G(b,c). P(a)." in
  Alcotest.(check int) "total" 3 (Instance.total_facts i);
  Alcotest.(check (list string)) "names" [ "G"; "P" ] (Instance.names i);
  let dropped = Instance.drop [ "P" ] i in
  Alcotest.(check int) "after drop" 2 (Instance.total_facts dropped);
  let restricted = Instance.restrict [ "P" ] i in
  Alcotest.(check int) "after restrict" 1 (Instance.total_facts restricted);
  Alcotest.(check bool) "subset" true (Instance.subset restricted i);
  Alcotest.(check (list string))
    "adom" [ "a"; "b"; "c" ]
    (List.map Value.to_string (Instance.adom i))

let test_instance_diff_union () =
  let a = facts "G(a,b). P(a)." and b = facts "G(a,b). Q(z)." in
  Alcotest.check instance "union"
    (facts "G(a,b). P(a). Q(z).")
    (Instance.union a b);
  Alcotest.check instance "diff" (facts "P(a).") (Instance.diff a b)

let test_instance_parse_errors () =
  List.iter
    (fun (src, frag) ->
      match Instance.parse_facts src with
      | exception Failure msg ->
          if
            not
              (String.length msg >= String.length frag
              && String.sub msg 0 (String.length frag) = frag)
          then Alcotest.failf "wrong error %S for %S" msg src
      | _ -> Alcotest.failf "expected failure for %S" src)
    [
      ("justtext.", "facts line 1: expected pred(args)");
      ("p(a.", "facts line 1");
      ("p(a,).", "facts line 1");
    ]

let test_instance_parse_comments_and_strings () =
  let i =
    facts
      {|
        % comment
        p("dotted. string"). // another
        q(1). q(-3).
      |}
  in
  Alcotest.(check int) "three facts" 3 (Instance.total_facts i);
  Alcotest.(check bool) "string fact" true
    (Instance.mem_fact "p" (t [ Value.Str "dotted. string" ]) i)

let test_instance_comment_markers_in_strings () =
  (* regression: '%' or '//' inside a quoted string must not start a
     comment — stripping has to be string-aware *)
  let i =
    facts
      {|
        p("50%"). % real comment
        q("http://example.org/x"). // real comment
        r("100% // of it").
      |}
  in
  Alcotest.(check int) "three facts" 3 (Instance.total_facts i);
  Alcotest.(check bool) "percent kept" true
    (Instance.mem_fact "p" (t [ Value.Str "50%" ]) i);
  Alcotest.(check bool) "slashes kept" true
    (Instance.mem_fact "q" (t [ Value.Str "http://example.org/x" ]) i);
  Alcotest.(check bool) "both kept" true
    (Instance.mem_fact "r" (t [ Value.Str "100% // of it" ]) i)

let test_instance_pp_roundtrip () =
  let i = facts "G(a, b). P(\"x y\"). Q(3)." in
  Alcotest.check instance "pp/parse roundtrip" i
    (Instance.parse_facts (Instance.to_string i))

let test_instance_map_values () =
  let i = facts "G(a,b)." in
  let f = function Value.Sym s -> Value.Sym (s ^ s) | v -> v in
  Alcotest.check instance "renamed" (facts "G(aa,bb).")
    (Instance.map_values f i)

(* --- order --------------------------------------------------------------- *)

let test_order_adjoin () =
  let i = facts "P(b). P(a). P(c)." in
  let o = Order.adjoin i in
  Alcotest.(check bool) "valid order" true (Order.is_ordered o);
  Alcotest.(check int) "succ size" 2
    (Relation.cardinal (Instance.find "succ" o));
  Alcotest.(check int) "lt size" 3 (Relation.cardinal (Instance.find "lt" o));
  Alcotest.(check bool) "first is a" true
    (Instance.mem_fact "first" (t [ v "a" ]) o);
  Alcotest.(check bool) "last is c" true
    (Instance.mem_fact "last" (t [ v "c" ]) o)

let test_order_empty () =
  let o = Order.adjoin Instance.empty in
  Alcotest.(check bool) "empty ordered" true (Order.is_ordered o);
  Alcotest.(check int) "no facts" 0 (Instance.total_facts o)

let test_order_invalid_detected () =
  (* a broken successor relation: two successors for one element *)
  let bad =
    facts "succ(a,b). succ(a,c). first(a). last(c). P(a). P(b). P(c)."
  in
  Alcotest.(check bool) "broken succ rejected" false (Order.is_ordered bad)

(* --- generators ------------------------------------------------------------ *)

let test_graph_gen_shapes () =
  let count name i = Relation.cardinal (Instance.find name i) in
  Alcotest.(check int) "chain edges" 9 (count "G" (Graph_gen.chain 10));
  Alcotest.(check int) "cycle edges" 10 (count "G" (Graph_gen.cycle 10));
  Alcotest.(check int) "complete edges" 20 (count "G" (Graph_gen.complete 5));
  Alcotest.(check int) "grid edges" 24 (count "G" (Graph_gen.grid 4 4));
  Alcotest.(check int) "two-cycles edges" 8 (count "G" (Graph_gen.two_cycles 4));
  Alcotest.(check int) "tree edges" 6 (count "G" (Graph_gen.binary_tree 3));
  Alcotest.(check int) "random edge count" 30
    (count "G" (Graph_gen.random ~seed:1 20 30))

let test_graph_gen_deterministic () =
  Alcotest.check instance "same seed, same graph"
    (Graph_gen.random ~seed:9 12 20)
    (Graph_gen.random ~seed:9 12 20)

let test_random_dag_acyclic () =
  let i = Graph_gen.random_dag ~seed:4 15 30 in
  let tc = Graph_gen.reference_tc (Instance.find "G" i) in
  Alcotest.(check bool) "no self-loop in TC" false
    (Relation.exists
       (fun tp -> Value.equal (Tuple.get tp 0) (Tuple.get tp 1))
       tc)

let test_reference_tc () =
  let edges = pairs [ ("a", "b"); ("b", "c") ] in
  check_rel "floyd-warshall"
    (pairs [ ("a", "b"); ("b", "c"); ("a", "c") ])
    (Graph_gen.reference_tc edges)

let suite =
  [
    Alcotest.test_case "value order" `Quick test_value_order;
    Alcotest.test_case "value parse roundtrip" `Quick
      test_value_parse_roundtrip;
    Alcotest.test_case "invented values distinct" `Quick
      test_value_gen_distinct;
    Alcotest.test_case "tuple operations" `Quick test_tuple_ops;
    Alcotest.test_case "tuple bounds check" `Quick test_tuple_out_of_bounds;
    Alcotest.test_case "tuple immutability" `Quick test_tuple_immutable;
    Alcotest.test_case "tuple arity order" `Quick test_tuple_compare_arities;
    Alcotest.test_case "relation set ops" `Quick test_relation_set_ops;
    Alcotest.test_case "relation arity enforced" `Quick
      test_relation_arity_enforced;
    Alcotest.test_case "relation active domain" `Quick test_relation_values;
    Alcotest.test_case "schema basics" `Quick test_schema_basics;
    Alcotest.test_case "schema conflicts rejected" `Quick test_schema_conflict;
    Alcotest.test_case "schema named attributes" `Quick test_schema_attrs;
    Alcotest.test_case "instance operations" `Quick test_instance_ops;
    Alcotest.test_case "instance diff/union" `Quick test_instance_diff_union;
    Alcotest.test_case "fact parse errors" `Quick test_instance_parse_errors;
    Alcotest.test_case "fact parse: comments/strings" `Quick
      test_instance_parse_comments_and_strings;
    Alcotest.test_case "fact parse: comment markers inside strings" `Quick
      test_instance_comment_markers_in_strings;
    Alcotest.test_case "instance pp roundtrip" `Quick
      test_instance_pp_roundtrip;
    Alcotest.test_case "instance map_values" `Quick test_instance_map_values;
    Alcotest.test_case "order adjunction" `Quick test_order_adjoin;
    Alcotest.test_case "order on empty instance" `Quick test_order_empty;
    Alcotest.test_case "broken order detected" `Quick
      test_order_invalid_detected;
    Alcotest.test_case "generator shapes" `Quick test_graph_gen_shapes;
    Alcotest.test_case "generator determinism" `Quick
      test_graph_gen_deterministic;
    Alcotest.test_case "random DAG is acyclic" `Quick test_random_dag_acyclic;
    Alcotest.test_case "reference TC oracle" `Quick test_reference_tc;
  ]
