(* Property-based tests (qcheck): cross-engine agreement, semantic
   invariants, genericity, round-trips — on randomly generated programs
   and instances. *)
open Relational
open Helpers
module Q = QCheck

(* ------------------------------------------------------------------ *)
(* generators                                                          *)
(* ------------------------------------------------------------------ *)

let small_graph_gen =
  Q.Gen.(
    let* n = 2 -- 8 in
    let* m = 0 -- (n * 2) in
    let* seed = 0 -- 10_000 in
    return (Graph_gen.random ~seed n m, n, m, seed))

let graph_arb =
  Q.make
    ~print:(fun (i, n, m, seed) ->
      Printf.sprintf "graph(n=%d, m=%d, seed=%d):\n%s" n m seed
        (Instance.to_string i))
    small_graph_gen

(* random positive Datalog programs over a fixed schema:
   edb e/1, g/2; idb p/1, q/2. Rules are built from a safe template pool,
   sampled; this generates recursion, mutual recursion, projections. *)
let rule_pool =
  [
    "p(X) :- e(X).";
    "p(X) :- g(X, Y).";
    "p(Y) :- g(X, Y), p(X).";
    "q(X, Y) :- g(X, Y).";
    "q(X, Y) :- g(X, Z), q(Z, Y).";
    "q(X, Y) :- q(X, Z), q(Z, Y).";
    "p(X) :- q(X, X).";
    "q(X, X) :- e(X).";
    "q(X, Y) :- g(Y, X).";
    "p(X) :- q(X, Y), e(Y).";
  ]

(* rules with safe negation for stratified-program generation; negation
   only on earlier-defined predicates *)
let neg_rule_pool =
  [
    "r(X) :- e(X), !p(X).";
    "r(X) :- g(X, Y), !q(X, Y).";
    "s(X) :- e(X), !r(X).";
    "s(X) :- p(X), !r(X).";
    "r(X) :- p(X), e(X).";
  ]

let program_gen pool =
  Q.Gen.(
    let* k = 1 -- List.length pool in
    let* idx = list_size (return k) (0 -- (List.length pool - 1)) in
    let rules =
      List.sort_uniq compare idx
      |> List.map (fun i -> List.nth pool i)
    in
    return (prog (String.concat "\n" rules)))

let inst_gen =
  Q.Gen.(
    let* n = 1 -- 6 in
    let* edges = 0 -- 10 in
    let* seed = 0 -- 10_000 in
    let g = Graph_gen.random ~name:"g" ~seed n edges in
    let* ne = 0 -- n in
    let es = List.init ne (fun i -> [ Graph_gen.vertex i ]) in
    return (Instance.set "e" (Relation.of_rows es) g))

let prog_inst_arb pool =
  Q.make
    ~print:(fun (p, i) ->
      Printf.sprintf "program:\n%s\ninstance:\n%s"
        (Datalog.Pretty.program_to_string p)
        (Instance.to_string i))
    Q.Gen.(
      let* p = program_gen pool in
      let* i = inst_gen in
      return (p, i))

let count = 100

let prop name arb f = QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* properties                                                          *)
(* ------------------------------------------------------------------ *)

(* naive = semi-naive = inflationary on positive programs (minimum model
   and inflationary fixpoint coincide for Datalog, §4.1) *)
let prop_engines_agree_positive =
  prop "naive = semi-naive = inflationary (positive programs)"
    (prog_inst_arb rule_pool) (fun (p, i) ->
      let n = (Datalog.Naive.eval p i).Datalog.Naive.instance in
      let s = (Datalog.Seminaive.eval p i).Datalog.Seminaive.instance in
      let f = (Datalog.Inflationary.eval p i).Datalog.Inflationary.instance in
      Instance.equal n s && Instance.equal n f)

(* TC engines agree with the Floyd–Warshall oracle *)
let prop_tc_oracle =
  prop "TC = Floyd–Warshall oracle" graph_arb (fun (i, _, _, _) ->
      let tc =
        prog "T(X,Y) :- G(X,Y). T(X,Y) :- G(X,Z), T(Z,Y)."
      in
      Relation.equal
        (Datalog.Seminaive.answer tc i "T")
        (Graph_gen.reference_tc (Instance.find "G" i)))

(* minimum model is a fixpoint: re-running adds nothing *)
let prop_fixpoint_idempotent =
  prop "evaluation is idempotent" (prog_inst_arb rule_pool) (fun (p, i) ->
      let once = (Datalog.Seminaive.eval p i).Datalog.Seminaive.instance in
      let twice = (Datalog.Seminaive.eval p once).Datalog.Seminaive.instance in
      Instance.equal once twice)

(* monotonicity of positive programs: more input facts, more output *)
let prop_positive_monotone =
  prop "positive programs are monotone" (prog_inst_arb rule_pool)
    (fun (p, i) ->
      let bigger =
        Instance.add_fact "g"
          (t [ v "extra1"; v "extra2" ])
          i
      in
      Instance.subset
        ((Datalog.Seminaive.eval p i).Datalog.Seminaive.instance)
        ((Datalog.Seminaive.eval p bigger).Datalog.Seminaive.instance))

(* the delta engine must agree with naive evaluation on rules that stress
   its compiled plans: repeated variables inside one atom, constants in
   body atoms, and bodies with several positive occurrences of the same
   recursive (delta) predicate — each occurrence needs its own delta
   pass, and dedup across passes must not lose substitutions *)
let delta_stress_pool =
  [
    "loop(X) :- g(X, X).";
    "p(X) :- g(X, Y), g(Y, X).";
    "t(X, Y) :- g(X, Y).";
    "t(X, Z) :- t(X, Y), t(Y, Z).";
    "p2(X, Z) :- t(X, Y), t(Y, Z).";
    "c(Y) :- g(n0, Y).";
    "c(Y) :- t(Y, n1).";
    "d(X) :- t(X, X).";
    "d2(X) :- t(n0, X), g(X, X).";
    "tri(X) :- g(X, Y), g(Y, Z), g(Z, X).";
  ]

let prop_seminaive_stress_agree =
  prop "naive = semi-naive (repeated vars, constants, multi-delta bodies)"
    (prog_inst_arb delta_stress_pool) (fun (p, i) ->
      let n = (Datalog.Naive.eval p i).Datalog.Naive.instance in
      let s = (Datalog.Seminaive.eval p i).Datalog.Seminaive.instance in
      Instance.equal n s)

(* stratified programs: stratified = well-founded 2-valued = total *)
let strat_pool = rule_pool @ neg_rule_pool

let prop_stratified_equals_wellfounded =
  prop "stratified = well-founded on stratifiable programs"
    (prog_inst_arb strat_pool) (fun (p, i) ->
      Q.assume (Datalog.Stratify.is_stratifiable p);
      let s = (Datalog.Stratified.eval p i).Datalog.Stratified.instance in
      let w = Datalog.Wellfounded.eval p i in
      Datalog.Wellfounded.is_total w
      && Instance.equal s w.Datalog.Wellfounded.true_facts)

(* stratified programs have exactly one stable model, equal to the
   stratified semantics *)
let prop_stratified_unique_stable =
  prop "stratifiable => unique stable model" (prog_inst_arb strat_pool)
    (fun (p, i) ->
      Q.assume (Datalog.Stratify.is_stratifiable p);
      match Datalog.Stable.models p i with
      | [ m ] ->
          Instance.equal m
            (Datalog.Stratified.eval p i).Datalog.Stratified.instance
      | _ -> false)

(* well-founded invariants: true ⊆ possible; every stable model is
   sandwiched between them *)
let prop_wf_sandwich =
  prop "wf true ⊆ stable ⊆ wf possible" (prog_inst_arb strat_pool)
    (fun (p, i) ->
      let w = Datalog.Wellfounded.eval p i in
      Instance.subset w.Datalog.Wellfounded.true_facts
        w.Datalog.Wellfounded.possible
      && List.for_all
           (fun m ->
             Instance.subset w.Datalog.Wellfounded.true_facts m
             && Instance.subset m w.Datalog.Wellfounded.possible)
           (Datalog.Stable.models p i))

(* genericity: engines commute with renamings of the domain (the paper's
   §2 genericity condition; constants of the program fixed — our pools are
   constant-free) *)
let prop_genericity =
  prop "genericity: evaluation commutes with renaming"
    (prog_inst_arb strat_pool) (fun (p, i) ->
      Q.assume (Datalog.Stratify.is_stratifiable p);
      let rename = function
        | Value.Sym s -> Value.Sym ("zz_" ^ s)
        | other -> other
      in
      let lhs =
        Instance.map_values rename
          (Datalog.Stratified.eval p i).Datalog.Stratified.instance
      in
      let rhs =
        (Datalog.Stratified.eval p (Instance.map_values rename i))
          .Datalog.Stratified.instance
      in
      Instance.equal lhs rhs)

(* inflationary strategies agree (delta optimization is exact) *)
let prop_inflationary_strategies =
  prop "inflationary: naive loop = delta loop" (prog_inst_arb strat_pool)
    (fun (p, i) ->
      let a =
        (Datalog.Inflationary.eval ~strategy:Datalog.Inflationary.Naive_loop p i)
          .Datalog.Inflationary.instance
      in
      let b =
        (Datalog.Inflationary.eval ~strategy:Datalog.Inflationary.Delta_loop p i)
          .Datalog.Inflationary.instance
      in
      Instance.equal a b)

(* inflationary trace is an increasing chain ending in the fixpoint *)
let prop_inflationary_trace_monotone =
  prop "inflationary trace is an inflationary chain"
    (prog_inst_arb strat_pool) (fun (p, i) ->
      let trace = Datalog.Inflationary.trace p i in
      let rec mono = function
        | a :: (b :: _ as rest) -> Instance.subset a b && mono rest
        | _ -> true
      in
      mono trace
      &&
      let last = List.nth trace (List.length trace - 1) in
      Instance.equal last
        (Datalog.Inflationary.eval p i).Datalog.Inflationary.instance)

(* magic sets = full evaluation on the query predicate *)
let prop_magic_sound_complete =
  prop "magic = full evaluation on point queries" graph_arb
    (fun (i, n, _, _) ->
      Q.assume (n > 0);
      let tcp = prog "T(X,Y) :- G(X,Y). T(X,Y) :- T(X,Z), G(Z,Y)." in
      let src = Graph_gen.vertex 0 in
      let query =
        Datalog.Ast.atom "T" [ Datalog.Ast.cst src; Datalog.Ast.var "Y" ]
      in
      let full =
        Relation.filter
          (fun t -> Value.equal (Tuple.get t 0) src)
          (Datalog.Seminaive.answer tcp i "T")
      in
      Relation.equal full (Datalog.Magic.answer tcp i query))

(* FO compilation = direct FO evaluation *)
let fo_formula_pool =
  [
    (Fo.Atom ("g", [ Fo.Var "x"; Fo.Var "y" ]), [ "x"; "y" ]);
    ( Fo.And
        ( Fo.Atom ("e", [ Fo.Var "x" ]),
          Fo.Not (Fo.Exists ([ "y" ], Fo.Atom ("g", [ Fo.Var "x"; Fo.Var "y" ])))
        ),
      [ "x" ] );
    ( Fo.Forall
        ( [ "y" ],
          Fo.Implies
            ( Fo.Atom ("g", [ Fo.Var "y"; Fo.Var "x" ]),
              Fo.Atom ("e", [ Fo.Var "y" ]) ) ),
      [ "x" ] );
    ( Fo.Or
        ( Fo.Atom ("e", [ Fo.Var "x" ]),
          Fo.Exists ([ "y" ], Fo.Atom ("g", [ Fo.Var "y"; Fo.Var "x" ])) ),
      [ "x" ] );
    (Fo.Eq (Fo.Var "x", Fo.Var "y"), [ "x"; "y" ]);
  ]

let fo_arb =
  Q.make
    ~print:(fun ((f, vars), i) ->
      Format.asprintf "%a over %s (vars %s)" Fo.pp f (Instance.to_string i)
        (String.concat "," vars))
    Q.Gen.(
      let* fi = 0 -- (List.length fo_formula_pool - 1) in
      let* i = inst_gen in
      return (List.nth fo_formula_pool fi, i))

let prop_fo_compile =
  prop "FO compilation = direct evaluation" fo_arb (fun ((f, vars), i) ->
      let sources = [ ("g", 2); ("e", 1) ] in
      (* align domains: direct eval must use the same active domain the
         compiled adom predicate computes (source columns + constants) *)
      let direct = Fo.eval i f vars in
      let compiled = While_lang.Fo_compile.answer ~sources f vars i in
      Relation.equal direct compiled)

(* random FO formulas: the safe-range compiled evaluator must agree with
   the naive active-domain enumerator on every formula — safe or not
   (unsafe subformulas take the bounded per-variable expansion) *)
let fo_rand_gen =
  Q.Gen.(
    let var = oneofl [ "x"; "y"; "z" ] in
    let term =
      frequency
        [
          (4, map (fun x -> Fo.Var x) var);
          (1, map (fun c -> Fo.Cst (v c)) (oneofl [ "n0"; "n1"; "zz" ]));
        ]
    in
    let base =
      frequency
        [
          (3, map2 (fun a b -> Fo.Atom ("g", [ a; b ])) term term);
          (2, map (fun a -> Fo.Atom ("e", [ a ])) term);
          (2, map2 (fun a b -> Fo.Eq (a, b)) term term);
          (1, oneofl [ Fo.True; Fo.False ]);
        ]
    in
    fix
      (fun self depth ->
        if depth = 0 then base
        else
          frequency
            [
              (2, base);
              (1, map (fun f -> Fo.Not f) (self (depth - 1)));
              (2, map2 (fun a b -> Fo.And (a, b)) (self (depth - 1)) (self (depth - 1)));
              (2, map2 (fun a b -> Fo.Or (a, b)) (self (depth - 1)) (self (depth - 1)));
              (1, map2 (fun a b -> Fo.Implies (a, b)) (self (depth - 1)) (self (depth - 1)));
              (1, map2 (fun x f -> Fo.Exists ([ x ], f)) var (self (depth - 1)));
              (1, map2 (fun x f -> Fo.Forall ([ x ], f)) var (self (depth - 1)));
            ])
      3)

let fo_rand_arb =
  Q.make
    ~print:(fun (f, i) ->
      Format.asprintf "%a over %s" Fo.pp f (Instance.to_string i))
    Q.Gen.(
      let* f = fo_rand_gen in
      let* i = inst_gen in
      return (f, i))

let prop_fo_compiled_equals_naive =
  prop "FO compiled plan = naive enumerator (random formulas)" fo_rand_arb
    (fun (f, i) ->
      let vars = Fo.free_vars f in
      Relation.equal (Fo.eval_naive i f vars) (Fo.eval i f vars))

(* Thm 4.5-style engine-vs-logic agreement at non-toy size: IFP-TC on
   random 300-vertex graphs matches the inflationary Datalog engine byte
   for byte *)
let test_ifp_tc_matches_inflationary_large () =
  let module Fp = Fixpoint_logic.Fp in
  let tc_formula =
    Fp.ifp ~rel:"T" ~vars:[ "x"; "y" ]
      (Fp.Or
         ( Fp.Atom ("G", [ Fp.Var "x"; Fp.Var "y" ]),
           Fp.Exists
             ( [ "z" ],
               Fp.And
                 ( Fp.Atom ("G", [ Fp.Var "x"; Fp.Var "z" ]),
                   Fp.Atom ("T", [ Fp.Var "z"; Fp.Var "y" ]) ) ) ))
      [ Fp.Var "u"; Fp.Var "v" ]
  in
  List.iter
    (fun seed ->
      let inst = Graph_gen.random ~seed 300 900 in
      let logic = Fp.eval inst tc_formula [ "u"; "v" ] in
      let rules =
        Instance.find "T"
          (Datalog.Inflationary.eval tc_program inst)
            .Datalog.Inflationary.instance
      in
      Alcotest.(check string)
        (Printf.sprintf "seed %d byte-identical" seed)
        (Format.asprintf "%a" Relation.pp rules)
        (Format.asprintf "%a" Relation.pp logic))
    [ 21; 22 ]

(* pretty-print / parse round-trip on generated programs *)
let prop_pretty_roundtrip =
  prop "pretty/parse roundtrip" (prog_inst_arb strat_pool) (fun (p, _) ->
      Datalog.Parser.parse_program (Datalog.Pretty.program_to_string p) = p)

(* nondeterministic random walks always land in the enumerated effect *)
let prop_nd_walks_in_effect =
  prop "random walks land in the effect"
    (Q.make
       ~print:(fun (i, seed) ->
         Printf.sprintf "seed %d on %s" seed (Instance.to_string i))
       Q.Gen.(
         let* k = 1 -- 3 in
         let* seed = 0 -- 1000 in
         return (Graph_gen.two_cycles k, seed)))
    (fun (i, seed) ->
      let p = prog "!G(X, Y) :- G(X, Y), G(Y, X)." in
      match Nondet.Nd_eval.run ~seed p i with
      | Nondet.Nd_eval.Terminal { instance; _ } ->
          List.exists (Instance.equal instance)
            (Nondet.Enumerate.terminals p i)
      | _ -> false)

(* instance parse/pp roundtrip *)
let prop_instance_roundtrip =
  prop "instance pp/parse roundtrip" graph_arb (fun (i, _, _, _) ->
      Instance.equal i (Instance.parse_facts (Instance.to_string i)))

let suite =
  [
    prop_engines_agree_positive;
    prop_tc_oracle;
    prop_fixpoint_idempotent;
    prop_positive_monotone;
    prop_seminaive_stress_agree;
    prop_stratified_equals_wellfounded;
    prop_stratified_unique_stable;
    prop_wf_sandwich;
    prop_genericity;
    prop_inflationary_strategies;
    prop_inflationary_trace_monotone;
    prop_magic_sound_complete;
    prop_fo_compile;
    prop_fo_compiled_equals_naive;
    Alcotest.test_case "IFP-TC = inflationary engine at n=300" `Quick
      test_ifp_tc_matches_inflationary_large;
    prop_pretty_roundtrip;
    prop_nd_walks_in_effect;
    prop_instance_roundtrip;
  ]
