Query answering: ?- directives, -q command-line atoms, and the
demand-driven compiler.

  $ cat > tc.dl <<'EOF'
  > T(X, Y) :- G(X, Y).
  > T(X, Y) :- T(X, Z), G(Z, Y).
  > EOF
  $ cat > g.facts <<'EOF'
  > G(a, b). G(b, c). G(c, d). G(x, y).
  > EOF

A query atom on the command line, no directive needed:

  $ datalog-unchained query tc.dl -f g.facts -q 'T(a, Y)'
  T(a, b).
  T(a, c).
  T(a, d).

The ?- directive path still works, and -q atoms append to it:

  $ cat > directed.dl <<'EOF'
  > T(X, Y) :- G(X, Y).
  > T(X, Y) :- T(X, Z), G(Z, Y).
  > ?- T(b, Y).
  > EOF
  $ datalog-unchained query directed.dl -f g.facts
  T(b, c).
  T(b, d).
  $ datalog-unchained query directed.dl -f g.facts -q 'T(x, Y)'
  T(b, c).
  T(b, d).
  T(x, y).

No query at all is an error, exit status 2:

  $ datalog-unchained query tc.dl -f g.facts
  no query: pass -q ATOM or add a ?- directive to the program
  [2]

So is an unparsable atom or a non-idb predicate:

  $ datalog-unchained query tc.dl -f g.facts -q 'T(a,'
  query 'T(a,': parse error: expected a term, found end of input
  [2]
  $ datalog-unchained query tc.dl -f g.facts -q 'G(a, Y)'
  Magic.rewrite: G is not an idb predicate
  [2]

A repeated variable constrains the answer (the diagonal of T is empty
on an acyclic graph):

  $ datalog-unchained query tc.dl -f g.facts -q 'T(X, X)'

--demand lowers the magic-rewritten program to algebra plans; answers
are identical:

  $ datalog-unchained query tc.dl -f g.facts -q 'T(a, Y)' --demand
  T(a, b).
  T(a, c).
  T(a, d).

Under --stats the demand counters show the pipeline at work: one
compiled plan set, a cache miss for the first pattern, and a hit for
the subsumed repeat T(a, c) — served from the cache, no new rounds:

  $ datalog-unchained query tc.dl -f g.facts -q 'T(a, Y)' -q 'T(a, c)' \
  >   --demand --stats | sed -E 's/[0-9]+\.[0-9]+ ms/_ ms/g'
  T(a, b).
  T(a, c).
  T(a, d).
  T(a, c).
  == run report ==
  spans:
    run      demand                         _ ms
  counters:
    demand.cache.hits                                   1
    demand.cache.misses                                 1
    demand.plan.compiled                                3
    demand.rounds                                       4
    demand.tuples_derived                               3
    fo.plan.compiled                                    7
    fo.plan.fallback_vars                               0
    intern.hits                                         7
    intern.values                                       6
    ra.join.probes                                     19
  histograms:
    span.run                            1 samples  p50=_ ms p90=_ ms p99=_ ms max=_ ms

run --demand answers the all-free query for the -a predicate without
materializing anything else:

  $ datalog-unchained run tc.dl -f g.facts -a T --demand
  T(a, b).
  T(a, c).
  T(a, d).
  T(b, c).
  T(b, d).
  T(c, d).
  T(x, y).
  $ datalog-unchained run tc.dl -f g.facts --demand
  --demand requires --answer PRED
  [2]
  $ datalog-unchained run tc.dl -f g.facts -a G --demand
  --demand: G is not an idb predicate
  [2]
  $ datalog-unchained run -s naive tc.dl -f g.facts -a T --demand
  --demand only supports the default seminaive semantics
  [2]

--explain renders every compiled (rule, adornment) plan as an annotated
tree after the answers: per-operator rows-out, execution counts,
selectivity, and self/total wall time (normalized here), plus the
demand-cache breakdown. The rows-out figures are consistent with the
three answers: the base full plan emits T(a, b), the delta plan the two
longer paths:

  $ datalog-unchained query tc.dl -f g.facts -q 'T(a, Y)' --demand \
  >   --explain | sed -E 's/[0-9]+\.[0-9]+ ms/_ ms/g'
  T(a, b).
  T(a, c).
  T(a, d).
  % explain T(a, Y)
  % plan T__bf [full]
  project[0,2] rows_out=1 rows_in=5 execs=1 sel=0.20 self=_ ms total=_ ms
    join[0=0]
      scan[m__T__bf] rows_out=1 rows_in=0 execs=1 self=_ ms total=_ ms
      scan[G] arity=2 rows_out=4 rows_in=0 execs=1 self=_ ms total=_ ms
  % plan T__bf [delta:m__T__bf]
  project[0,2]
    join[0=0]
      scan[demand$delta] rows=0
      scan[G] arity=2 rows=4
  % plan m__T__bf [full]
  scan[m__T__bf] rows_out=1 rows_in=0 execs=1 self=_ ms total=_ ms
  % plan m__T__bf [delta:m__T__bf]
  scan[demand$delta] rows=0
  % plan T__bf [full]
  project[0,2] rows_out=0 rows_in=4 execs=1 sel=0.00 self=_ ms total=_ ms
    project[0,1,3]
      join[1=0]
        project[0,2] rows_out=0 rows_in=1 execs=1 sel=0.00 self=_ ms total=_ ms
          join[0=0]
            scan[m__T__bf] rows_out=1 rows_in=0 execs=1 self=_ ms total=_ ms
            scan[T__bf] rows_out=0 rows_in=0 execs=1 self=_ ms total=_ ms
        scan[G] arity=2 rows_out=4 rows_in=0 execs=1 self=_ ms total=_ ms
  % plan T__bf [delta:m__T__bf]
  project[0,2]
    project[0,1,3]
      join[1=0]
        project[0,2]
          join[0=0]
            scan[demand$delta] rows=0
            scan[T__bf] rows=0
        scan[G] arity=2 rows=4
  % plan T__bf [delta:T__bf]
  project[0,2] rows_out=2 rows_in=15 execs=3 sel=0.13 self=_ ms total=_ ms
    project[0,1,3]
      join[1=0]
        semijoin[0=0] rows_out=3 rows_in=6 execs=3 sel=0.50 self=_ ms total=_ ms
          scan[demand$delta] rows_out=3 rows_in=0 execs=3 self=_ ms total=_ ms
          scan[m__T__bf] rows_out=3 rows_in=0 execs=3 self=_ ms total=_ ms
        scan[G] arity=2 rows_out=12 rows_in=0 execs=3 self=_ ms total=_ ms
  % demand cache: 0 answer hit(s), 1 miss(es); 3 plan(s) compiled, 1 plan memo hit(s)

Plans never executed (the demand delta seeds were empty by round one)
print cold: structure and static shape only, no row counts.

--explain needs the plan stack, so it requires --demand here:

  $ datalog-unchained query tc.dl -f g.facts -q 'T(a, Y)' --explain
  --explain requires --demand on this subcommand
  [2]
  $ datalog-unchained run tc.dl -f g.facts -a T --explain
  --explain requires --demand on this subcommand
  [2]

Annotated queries (--annot): the query filters the annotated fixpoint,
facts keep their annotation comments.

  $ datalog-unchained query tc.dl -f g.facts -q 'T(a, Y)' --annot why
  T(a, b). % G(a, b)
  T(a, c). % G(a, b)*G(b, c)
  T(a, d). % G(a, b)*G(b, c)*G(c, d)
  $ datalog-unchained query tc.dl -f g.facts -q 'T(a, Y)' --annot count
  T(a, b). % 1
  T(a, c). % 1
  T(a, d). % 1

Unknown semirings exit 2 with the valid list, and --demand has no
annotated plans:

  $ datalog-unchained query tc.dl -f g.facts -q 'T(a, Y)' --annot froboz
  --annot: unknown annotation 'froboz' (valid: bool, count, minplus, why)
  [2]
  $ datalog-unchained query tc.dl -f g.facts -q 'T(a, Y)' --annot why --demand
  --annot is incompatible with --demand
  [2]
