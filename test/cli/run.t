The CLI end to end: programs from the paper through every subcommand.

  $ cat > tc.dl <<'EOF'
  > T(X, Y) :- G(X, Y).
  > T(X, Y) :- G(X, Z), T(Z, Y).
  > EOF
  $ cat > g.facts <<'EOF'
  > G(a, b). G(b, c).
  > EOF

Semi-naive evaluation, answer restricted to one predicate:

  $ datalog-unchained run -s seminaive tc.dl -f g.facts -a T
  T(a, b).
  T(a, c).
  T(b, c).

Naive agrees:

  $ datalog-unchained run -s naive tc.dl -f g.facts -a T
  T(a, b).
  T(a, c).
  T(b, c).

Parallel evaluation prints the same answer byte for byte:

  $ datalog-unchained run -s seminaive -j 2 tc.dl -f g.facts -a T
  T(a, b).
  T(a, c).
  T(b, c).

  $ datalog-unchained run -s seminaive -j 0 tc.dl -f g.facts -a T
  jobs must be >= 1
  [2]

The win game (Example 3.2) under well-founded semantics:

  $ cat > win.dl <<'EOF'
  > win(X) :- moves(X, Y), !win(Y).
  > EOF
  $ cat > moves.facts <<'EOF'
  > moves(b,c). moves(c,a). moves(a,b). moves(a,d).
  > moves(d,e). moves(d,f). moves(f,g).
  > EOF
  $ datalog-unchained run -s wellfounded win.dl -f moves.facts -a win
  % true facts:
  win(d).
  win(f).
  % unknown facts:
  win(a).
  win(b).
  win(c).

Stratification printing, and the rejection of the win program:

  $ cat > comp.dl <<'EOF'
  > T(X, Y) :- G(X, Y).
  > T(X, Y) :- G(X, Z), T(Z, Y).
  > CT(X, Y) :- !T(X, Y).
  > EOF
  $ datalog-unchained stratify comp.dl
  % stratum 0:
  T(X, Y) :- G(X, Y).
  T(X, Y) :- G(X, Z), T(Z, Y).
  % stratum 1:
  CT(X, Y) :- !T(X, Y).
  $ datalog-unchained stratify win.dl
  not stratifiable: not stratifiable: win depends negatively on win inside a recursive component
  [1]

Fragment checking:

  $ datalog-unchained check -l datalog tc.dl
  ok
  $ datalog-unchained check -l datalog comp.dl
  invalid: rule with head CT: pure Datalog forbids body negation
  [1]
  $ datalog-unchained check -l datalog-neg comp.dl
  ok

The flip-flop program diverges under Datalog with retractions:

  $ cat > flip.dl <<'EOF'
  > T(0) :- T(1).
  > !T(1) :- T(1).
  > T(1) :- T(0).
  > !T(0) :- T(0).
  > EOF
  $ cat > t0.facts <<'EOF'
  > T(0).
  > EOF
  $ datalog-unchained run -s noninflationary flip.dl -f t0.facts
  % diverges: cycle of period 2 entered at stage 0

Nondeterministic orientation: the whole effect relation of one 2-cycle:

  $ cat > orient.dl <<'EOF'
  > !G(X, Y) :- G(X, Y), G(Y, X).
  > EOF
  $ cat > cyc.facts <<'EOF'
  > G(a, b). G(b, a).
  > EOF
  $ datalog-unchained nondet -m enumerate orient.dl -f cyc.facts
  % 2 terminal instance(s), 3 states explored
  % outcome 1:
  G(a, b).
  % outcome 2:
  G(b, a).
  $ datalog-unchained nondet -m cert orient.dl -f cyc.facts
  

Magic-set query answering via the ?- directive:

  $ cat > query.dl <<'EOF'
  > T(X, Y) :- G(X, Y).
  > T(X, Y) :- T(X, Z), G(Z, Y).
  > ?- T(a, Y).
  > EOF
  $ datalog-unchained query query.dl -f g.facts
  T(a, b).
  T(a, c).

Dependency graph in dot format:

  $ datalog-unchained deps comp.dl
  digraph deps {
    "CT";
    "G";
    "T";
    "G" -> "T";
    "T" -> "CT" [style=dashed,label="¬"];
    "T" -> "T";
  }

Evaluation on an ordered database (Theorem 4.7 experiments):

  $ cat > parity.dl <<'EOF'
  > odd(X) :- first(X).
  > even(X) :- odd(Y), succ(Y, X).
  > odd(X) :- even(Y), succ(Y, X).
  > is_even() :- last(X), even(X).
  > EOF
  $ cat > four.facts <<'EOF'
  > P(e1). P(e2). P(e3). P(e4).
  > EOF
  $ datalog-unchained run --ordered parity.dl -f four.facts -a is_even
  is_even().

Parse errors carry positions:

  $ cat > broken.dl <<'EOF'
  > p(X :- q(X).
  > EOF
  $ datalog-unchained run broken.dl
  broken.dl:1: parse error: expected ), found :-
  [2]

Semiring-annotated evaluation (--annot): every fact carries its
annotation as a trailing comment.

Why-provenance polynomials over base-fact labels:

  $ datalog-unchained run tc.dl -f g.facts -a T --annot why
  T(a, b). % G(a, b)
  T(a, c). % G(a, b)*G(b, c)
  T(b, c). % G(b, c)

Derivation counts; a support cycle has infinitely many derivation
trees, so everything on or downstream of it is inf:

  $ cat > cyc.facts <<'EOF'
  > G(a, b). G(b, a). G(e, a).
  > EOF
  $ datalog-unchained run tc.dl -f cyc.facts -a T --annot count
  T(a, a). % inf
  T(a, b). % inf
  T(b, a). % inf
  T(b, b). % inf
  T(e, a). % inf
  T(e, b). % inf

Min-plus (tropical): the last integer column of a base fact is its
weight, and a fact's annotation is its cheapest derivation — shortest
path on the weighted graph (a->c directly costs 10, via b costs 5):

  $ cat > spath.dl <<'EOF'
  > T(X, Y) :- E(X, Y, W).
  > T(X, Z) :- E(X, Y, W), T(Y, Z).
  > EOF
  $ cat > ew.facts <<'EOF'
  > E(a, b, 2). E(b, c, 3). E(a, c, 10).
  > EOF
  $ datalog-unchained run spath.dl -f ew.facts -a T --annot minplus
  T(a, b). % 2
  T(a, c). % 5
  T(b, c). % 3

Boolean is the plain set semantics, annotated true:

  $ datalog-unchained run tc.dl -f g.facts -a T --annot bool
  T(a, b). % true
  T(a, c). % true
  T(b, c). % true

An unknown semiring exits 2 and lists the valid ones:

  $ datalog-unchained run tc.dl -f g.facts --annot tropical
  --annot: unknown annotation 'tropical' (valid: bool, count, minplus, why)
  [2]

Annotations need the positive fragment — negation is refused:

  $ datalog-unchained run comp.dl -f g.facts --annot count
  --annot count needs the positive Datalog fragment: rule with head CT: pure Datalog forbids body negation
  [2]
