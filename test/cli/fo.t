The fo subcommand: first-order queries over a facts file, answered
through the safe-range compiler.

  $ cat > g.facts <<'EOF'
  > G(a, b). G(b, c). G(c, d).
  > EOF

A conjunctive query (composition of G with itself):

  $ datalog-unchained fo -f g.facts 'exists Z (G(X, Z) & G(Z, Y))'
  ans(a, c).
  ans(b, d).

The naive reference oracle agrees byte for byte:

  $ datalog-unchained fo -f g.facts --naive 'exists Z (G(X, Z) & G(Z, Y))'
  ans(a, c).
  ans(b, d).

Safe negation compiles to an antijoin; constants extend the domain:

  $ datalog-unchained fo -f g.facts 'G(X, Y) & !G(Y, d)'
  ans(a, b).
  ans(c, d).
  $ datalog-unchained fo -f g.facts 'G(X, Y) & Y != b'
  ans(b, c).
  ans(c, d).

Closed formulas print a verdict:

  $ datalog-unchained fo -f g.facts 'forall X (forall Y (G(X, Y) -> exists Z (G(Y, Z) | G(Z, Y))))'
  true
  $ datalog-unchained fo -f g.facts 'exists X (G(X, X))'
  false

Output columns can be reordered and padded with a domain column:

  $ datalog-unchained fo -f g.facts --vars 'Y,X' 'G(X, Y) & X = a'
  ans(b, a).

--stats confirms the compiled path ran:

  $ datalog-unchained fo -f g.facts 'G(X, Y)' --stats | grep -c 'fo.plan.compiled'
  1

Missing free variables are all reported:

  $ datalog-unchained fo -f g.facts --vars 'X' 'G(X, Y) & G(Y, Z)'
  Fo.eval: free variables Y, Z not in output list
  [2]

Parse errors exit cleanly:

  $ datalog-unchained fo -f g.facts 'G(X, '
  query: expected a term
  [2]
