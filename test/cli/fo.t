The fo subcommand: first-order queries over a facts file, answered
through the safe-range compiler.

  $ cat > g.facts <<'EOF'
  > G(a, b). G(b, c). G(c, d).
  > EOF

A conjunctive query (composition of G with itself):

  $ datalog-unchained fo -f g.facts 'exists Z (G(X, Z) & G(Z, Y))'
  ans(a, c).
  ans(b, d).

The naive reference oracle agrees byte for byte:

  $ datalog-unchained fo -f g.facts --naive 'exists Z (G(X, Z) & G(Z, Y))'
  ans(a, c).
  ans(b, d).

Safe negation compiles to an antijoin; constants extend the domain:

  $ datalog-unchained fo -f g.facts 'G(X, Y) & !G(Y, d)'
  ans(a, b).
  ans(c, d).
  $ datalog-unchained fo -f g.facts 'G(X, Y) & Y != b'
  ans(b, c).
  ans(c, d).

Closed formulas print a verdict:

  $ datalog-unchained fo -f g.facts 'forall X (forall Y (G(X, Y) -> exists Z (G(Y, Z) | G(Z, Y))))'
  true
  $ datalog-unchained fo -f g.facts 'exists X (G(X, X))'
  false

Output columns can be reordered and padded with a domain column:

  $ datalog-unchained fo -f g.facts --vars 'Y,X' 'G(X, Y) & X = a'
  ans(b, a).

--stats confirms the compiled path ran:

  $ datalog-unchained fo -f g.facts 'G(X, Y)' --stats | grep -c 'fo.plan.compiled'
  1

Missing free variables are all reported:

  $ datalog-unchained fo -f g.facts --vars 'X' 'G(X, Y) & G(Y, Z)'
  Fo.eval: free variables Y, Z not in output list
  [2]

Parse errors exit cleanly:

  $ datalog-unchained fo -f g.facts 'G(X, '
  query: expected a term
  [2]

--explain prints the compiled plan as an annotated tree: the executed
operators carry rows-out, execution counts, selectivity and self/total
time; operators fused into their parent's loop (the projection feeding
the join's probe side) print structure only. It needs the compiled
path:

  $ datalog-unchained fo -f g.facts 'exists Z (G(X, Z) & G(Z, Y))' \
  >   --explain | sed -E 's/[0-9]+\.[0-9]+ ms/_ ms/g'
  ans(a, c).
  ans(b, d).
  % explain
  project[0,2] arity=2 rows_out=2 rows_in=6 execs=1 sel=0.33 self=_ ms total=_ ms
    project[0,1,3] arity=3
      join[1=0] arity=4
        scan[G] arity=2 rows_out=3 rows_in=0 execs=1 self=_ ms total=_ ms
        scan[G] arity=2 rows_out=3 rows_in=0 execs=1 self=_ ms total=_ ms
  $ datalog-unchained fo -f g.facts --naive 'G(X, Y)' --explain
  --explain needs the compiled path (drop --naive)
  [2]
