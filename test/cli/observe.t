Observability surface: --stats run reports and --trace JSONL traces.

  $ cat > tc.dl <<'EOF'
  > T(X, Y) :- G(X, Y).
  > T(X, Y) :- G(X, Z), T(Z, Y).
  > EOF
  $ cat > g.facts <<'EOF'
  > G(a, b). G(b, c). G(c, d).
  > EOF

--stats prints the run report after the answer; timings vary run to run,
so they are normalized here:

  $ datalog-unchained run -s seminaive tc.dl -f g.facts -a T --stats \
  >   | sed -E 's/[0-9]+\.[0-9]+ ms/_ ms/g'
  T(a, b).
  T(a, c).
  T(a, d).
  T(b, c).
  T(b, d).
  T(c, d).
  == run report ==
  spans:
    run      seminaive                      _ ms
  span totals:
    round                           4 spans         _ ms
  counters:
    db.index_builds                                     2
    db.index_memo_hits                                  7
    db.inserts                                          6
    fixpoint.delta_max                                  3
    fixpoint.delta_total                                6
    fixpoint.rounds                                     4
    fixpoint.tuples_derived                             6
    intern.hits                                         2
    intern.values                                       4
    matcher.candidates                                 18
    matcher.runs                                        5
    matcher.substs                                      6
    matcher.substs_max                                  3
    rule_firings.r0:T                                   3
    rule_firings.r1:T                                   3
  histograms:
    span.round                          4 samples  p50=_ ms p90=_ ms p99=_ ms max=_ ms
    span.run                            1 samples  p50=_ ms p90=_ ms p99=_ ms max=_ ms
  index hit/build ratio: 7/2 (77.8% hits)
  join selectivity: 6/18 (33.3% of scanned tuples)

--trace writes a schema-valid JSON-lines file: one run span, one round
span per Γ application, and a final counter summary:

  $ datalog-unchained run -s seminaive tc.dl -f g.facts --trace tc.jsonl \
  >   > /dev/null
  $ datalog-trace-check tc.jsonl
  ok: 11 lines (span_open 5, span_close 5, event 0, summary 1)

The well-founded engine nests its rounds under alternating-fixpoint
phase spans (over.k / under.k):

  $ cat > win.dl <<'EOF'
  > win(X) :- moves(X, Y), !win(Y).
  > EOF
  $ cat > moves.facts <<'EOF'
  > moves(b,c). moves(c,a). moves(a,b).
  > EOF
  $ datalog-unchained run -s wellfounded win.dl -f moves.facts \
  >   --trace wf.jsonl > /dev/null
  $ datalog-trace-check wf.jsonl
  ok: 13 lines (span_open 6, span_close 6, event 0, summary 1)
  $ grep -c '"kind":"phase"' wf.jsonl
  4

Magic-set query answering records the rewrite as an event:

  $ cat > query.dl <<'EOF'
  > T(X, Y) :- G(X, Y).
  > T(X, Y) :- T(X, Z), G(Z, Y).
  > ?- T(a, Y).
  > EOF
  $ datalog-unchained query query.dl -f g.facts --trace q.jsonl > /dev/null
  $ datalog-trace-check q.jsonl
  ok: 12 lines (span_open 5, span_close 5, event 1, summary 1)
  $ grep '"type":"event"' q.jsonl
  {"type":"event","span":1,"name":"magic.rewrite","fields":{"query_pred":"T__bf","rules":3}}

A nondet walk is traced through the same flags:

  $ cat > orient.dl <<'EOF'
  > !G(X, Y) :- G(X, Y), G(Y, X).
  > EOF
  $ cat > cyc.facts <<'EOF'
  > G(a, b). G(b, a).
  > EOF
  $ datalog-unchained nondet -m walk orient.dl -f cyc.facts \
  >   --trace nd.jsonl > /dev/null
  $ datalog-trace-check nd.jsonl
  ok: 3 lines (span_open 1, span_close 1, event 0, summary 1)

An unwritable --trace path is a clear error, not an exception trace:

  $ datalog-unchained run tc.dl -f g.facts --trace /nonexistent/x.jsonl
  cannot open trace file: /nonexistent/x.jsonl: No such file or directory
  [2]

Without the flags, output is unchanged (no instrumentation):

  $ datalog-unchained run -s seminaive tc.dl -f g.facts -a T
  T(a, b).
  T(a, c).
  T(a, d).
  T(b, c).
  T(b, d).
  T(c, d).
