The resident server: assert/retract/query over a Unix-domain socket.

  $ cat > tc.dl <<'EOF'
  > T(X, Y) :- G(X, Y).
  > T(X, Y) :- G(X, Z), T(Z, Y).
  > EOF
  $ cat > g.facts <<'EOF'
  > G(a, b). G(b, c).
  > EOF

Start the server in the background and wait for the socket:

  $ datalog-unchained serve tc.dl -f g.facts --socket s.sock > server.out 2>&1 &
  $ SERVER_PID=$!
  $ for _ in $(seq 1 200); do [ -S s.sock ] && break; sleep 0.05; done

Point queries against the materialized fixpoint:

  $ datalog-unchained client --socket s.sock query 'T(a, Y)'
  T(a, b).
  T(a, c).

Assert a batch: the new edge and everything derived from it:

  $ datalog-unchained client --socket s.sock assert 'G(c, d).'
  % added 1, derived 3 (4 stage(s))
  $ datalog-unchained client --socket s.sock query 'T(a, Y)'
  T(a, b).
  T(a, c).
  T(a, d).

Asserting a duplicate is a no-op:

  $ datalog-unchained client --socket s.sock assert 'G(c, d).'
  % added 0, derived 0 (0 stage(s))

Retract: DRed over-deletes the cone, then re-derives survivors:

  $ datalog-unchained client --socket s.sock retract 'G(a, b).'
  % removed 1, overdeleted 4, rederived 0
  $ datalog-unchained client --socket s.sock query 'T(a, Y)'
  $ datalog-unchained client --socket s.sock query 'T(b, Y)'
  T(b, c).
  T(b, d).

The demand-driven query paths answer from the same state:

  $ datalog-unchained client --socket s.sock query --via demand 'T(b, Y)'
  T(b, c).
  T(b, d).
  $ datalog-unchained client --socket s.sock query --via magic 'T(b, Y)'
  T(b, c).
  T(b, d).

Malformed requests are protocol errors, not server crashes:

  $ datalog-unchained client --socket s.sock query 'T('
  error: parse error at line 1: expected a term, found end of input
  [1]
  $ datalog-unchained client --socket s.sock assert 'G(a).'
  error: G has arity 2, batch fact has arity 1
  [1]

The server is still up and serving; stats count every request:

  $ datalog-unchained client --socket s.sock stats | grep -o 'serve\.requests'
  serve.requests
  $ datalog-unchained client --socket s.sock stats | grep -c 'serve\.errors'
  1

Clean shutdown removes the socket:

  $ datalog-unchained client --socket s.sock shutdown
  % server stopped
  $ wait $SERVER_PID
  $ [ -S s.sock ] && echo still-there || echo gone
  gone
  $ cat server.out
  listening on s.sock

A client without a server reports the failure:

  $ datalog-unchained client --socket s.sock query 'T(a, Y)'
  error: cannot reach server at s.sock: No such file or directory
  [1]

A missing payload is a usage error:

  $ datalog-unchained client --socket s.sock assert
  client: missing facts argument
  [2]

Counting maintenance (--annot count): retraction deletes exactly the
facts whose support count reaches zero — no over-delete/re-derive
churn. The client's retract line reports deleted and verified-kept
counts in the same positions:

  $ datalog-unchained serve tc.dl -f g.facts --socket c.sock --annot count > server2.out 2>&1 &
  $ SERVER_PID=$!
  $ for _ in $(seq 1 200); do [ -S c.sock ] && break; sleep 0.05; done
  $ datalog-unchained client --socket c.sock assert 'G(c, d).'
  % added 1, derived 3 (4 stage(s))
  $ datalog-unchained client --socket c.sock retract 'G(a, b).'
  % removed 1, overdeleted 4, rederived 0
  $ datalog-unchained client --socket c.sock query 'T(b, Y)'
  T(b, c).
  T(b, d).
  $ datalog-unchained client --socket c.sock query 'T(a, Y)'
  $ datalog-unchained client --socket c.sock stats | grep -c 'counting\.batches'
  1
  $ datalog-unchained client --socket c.sock shutdown
  % server stopped
  $ wait $SERVER_PID

The other semirings have no incremental maintenance story:

  $ datalog-unchained serve tc.dl -f g.facts --socket w.sock --annot why
  serve supports --annot bool (delete-and-rederive) or count (counting maintenance) only
  [2]
