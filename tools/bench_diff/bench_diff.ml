(* datalog-bench-diff: compare two BENCH_engines.json files and flag
   per-case wall-time regressions beyond a threshold.

   Accepts both shapes the repo produces:
   - the flat array written by `bench/main.exe ... --json FILE`
     ([{experiment, case, engine, wall_ms, ...}, ...]), and
   - the committed sectioned object ({"before": {"label", "rows": [...]},
     "after": {...}, ...}) — every object member with a "rows" array
     contributes its rows.

   Rows are keyed by (experiment, case, engine, annot) — "annot" is the
   optional semiring-annotation field the e22 rows carry ("" when
   absent), so a case's bool/count/minplus variants diff independently.
   When a key repeats, the LAST occurrence wins (the committed file's
   "after" section supersedes "before"). Rows may carry a "meta" object ({"jobs": J, "cores": C},
   written by bench --json); when both sides have meta and the machine
   shape differs (different core count or job setting), the pair is
   flagged "machine-diff" and excluded from regression accounting —
   sweeps from different machines are not comparable wall-clock. Exit 0
   when no regression exceeds the threshold, 1 when one does, 2 on
   usage/parse errors. *)

module Json = Observe.Json

let usage () =
  prerr_endline
    "usage: datalog-bench-diff OLD.json NEW.json [--threshold PCT]";
  exit 2

let num = function
  | Some (Json.Float f) -> f
  | Some (Json.Int n) -> float_of_int n
  | _ -> nan

let str k j = match Json.member k j with Some (Json.Str s) -> s | _ -> ""

(* (jobs, cores) from a row's "meta" object, if present *)
let meta_of j =
  match Json.member "meta" j with
  | Some (Json.Obj _ as m) -> (
      match (Json.member "jobs" m, Json.member "cores" m) with
      | Some (Json.Int jobs), Some (Json.Int cores) -> Some (jobs, cores)
      | _ -> None)
  | _ -> None

(* Every row object anywhere in the value: a flat array of rows, or any
   object member carrying a "rows" array. *)
let rec rows_of (j : Json.t) : Json.t list =
  match j with
  | Json.List l ->
      List.filter
        (fun r -> match r with Json.Obj _ -> true | _ -> false)
        l
  | Json.Obj members ->
      List.concat_map
        (fun (_, v) ->
          match v with
          | Json.Obj _ -> (
              match Json.member "rows" v with
              | Some (Json.List _ as rs) -> rows_of rs
              | _ -> [])
          | _ -> [])
        members
  | _ -> []

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "cannot open %s: %s\n" path msg;
      exit 2
  in
  let s = really_input_string ic (in_channel_length ic) in
  close_in_noerr ic;
  match Json.parse s with
  | Error msg ->
      Printf.eprintf "%s: invalid JSON: %s\n" path msg;
      exit 2
  | Ok j ->
      let tbl = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun r ->
          let key =
            (str "experiment" r, str "case" r, str "engine" r, str "annot" r)
          in
          let ms = num (Json.member "wall_ms" r) in
          if not (Float.is_nan ms) then (
            if not (Hashtbl.mem tbl key) then order := key :: !order;
            Hashtbl.replace tbl key (ms, meta_of r)))
        (rows_of j);
      (tbl, List.rev !order)

let () =
  let old_path, new_path, threshold =
    match Sys.argv with
    | [| _; a; b |] -> (a, b, 5.0)
    | [| _; a; b; "--threshold"; t |] -> (
        match float_of_string_opt t with
        | Some pct when pct >= 0. -> (a, b, pct)
        | _ -> usage ())
    | _ -> usage ()
  in
  let old_tbl, _ = load old_path in
  let new_tbl, new_order = load new_path in
  let regressions = ref 0 in
  let compared = ref 0 in
  Printf.printf "%-12s %-24s %-20s %10s %10s %8s\n" "experiment" "case"
    "engine" "old ms" "new ms" "delta";
  List.iter
    (fun ((exp_, case_, engine, annot) as key) ->
      let engine =
        if annot = "" then engine else engine ^ "#" ^ annot
      in
      let new_ms, new_meta = Hashtbl.find new_tbl key in
      match Hashtbl.find_opt old_tbl key with
      | None ->
          Printf.printf "%-12s %-24s %-20s %10s %10.3f %8s\n" exp_ case_
            engine "-" new_ms "new"
      | Some (old_ms, old_meta) ->
          let machine_diff =
            match (old_meta, new_meta) with
            | Some m1, Some m2 -> m1 <> m2
            | _ -> false
          in
          let pct =
            if old_ms > 0. then 100. *. (new_ms -. old_ms) /. old_ms else 0.
          in
          let flag =
            if machine_diff then "  machine-diff"
            else if pct > threshold then (
              incr regressions;
              "  REGRESSION")
            else ""
          in
          if not machine_diff then incr compared;
          Printf.printf "%-12s %-24s %-20s %10.3f %10.3f %+7.1f%%%s\n" exp_
            case_ engine old_ms new_ms pct flag)
    new_order;
  Hashtbl.iter
    (fun ((exp_, case_, engine, annot) as key) (old_ms, _) ->
      let engine = if annot = "" then engine else engine ^ "#" ^ annot in
      if not (Hashtbl.mem new_tbl key) then
        Printf.printf "%-12s %-24s %-20s %10.3f %10s %8s\n" exp_ case_ engine
          old_ms "-" "gone")
    old_tbl;
  Printf.printf "compared %d case(s), %d regression(s) beyond +%.1f%%\n"
    !compared !regressions threshold;
  if !regressions > 0 then exit 1
