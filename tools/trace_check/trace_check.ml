(* datalog-trace-check: validate a JSON-lines trace produced by
   datalog-unchained --trace against the schema in Observe.Report.
   Reads the named file, or stdin when the argument is "-". Prints a
   deterministic per-type tally on success; on the first invalid line,
   reports its line number and exits 2. *)

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: datalog-trace-check TRACE.jsonl|-";
        exit 2
  in
  let ic =
    if String.equal path "-" then stdin
    else
      try open_in path
      with Sys_error msg ->
        Printf.eprintf "cannot open trace file: %s\n" msg;
        exit 2
  in
  let counts = Hashtbl.create 8 in
  let total = ref 0 in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then (
         match Observe.Report.validate_line line with
         | Ok ty ->
             incr total;
             Hashtbl.replace counts ty
               (1 + (try Hashtbl.find counts ty with Not_found -> 0))
         | Error msg ->
             Printf.eprintf "%s:%d: %s\n" path !lineno msg;
             exit 2)
     done
   with End_of_file -> close_in_noerr ic);
  let tally ty =
    Printf.sprintf "%s %d"
      ty
      (try Hashtbl.find counts ty with Not_found -> 0)
  in
  Printf.printf "ok: %d lines (%s)\n" !total
    (String.concat ", "
       (List.map tally [ "span_open"; "span_close"; "event"; "summary" ]))
