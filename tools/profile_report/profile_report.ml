(* datalog-profile-report: fold a JSON-lines trace (datalog-unchained
   --trace) into a span call-tree with per-span self/total wall time,
   plus the top-k spans by self time. Reads the named file, or stdin
   when the argument is "-". Self time is a span's duration minus the
   durations of its direct children, so the tree answers "where did the
   time actually go" rather than "what was on the stack". *)

module Json = Observe.Json

type span = {
  id : int;
  parent : int;
  kind : string;
  name : string;
  mutable dur_ms : float; (* from span_close; 0 if the trace lost it *)
  mutable child_ms : float;
}

let num = function
  | Some (Json.Float f) -> f
  | Some (Json.Int n) -> float_of_int n
  | _ -> 0.

let int_mem k j = match Json.member k j with Some (Json.Int n) -> n | _ -> 0

let str_mem k j =
  match Json.member k j with Some (Json.Str s) -> s | _ -> ""

let usage () =
  prerr_endline "usage: datalog-profile-report TRACE.jsonl|- [-k N]";
  exit 2

let () =
  let path, topk =
    match Sys.argv with
    | [| _; p |] -> (p, 10)
    | [| _; p; "-k"; n |] -> (
        match int_of_string_opt n with Some k when k > 0 -> (p, k) | _ -> usage ())
    | _ -> usage ()
  in
  let ic =
    if String.equal path "-" then stdin
    else
      try open_in path
      with Sys_error msg ->
        Printf.eprintf "cannot open trace file: %s\n" msg;
        exit 2
  in
  let spans : (int, span) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] (* span ids in open order *) in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         match Json.parse line with
         | Error msg ->
             Printf.eprintf "%s:%d: invalid JSON: %s\n" path !lineno msg;
             exit 2
         | Ok j -> (
             match Json.member "type" j with
             | Some (Json.Str "span_open") ->
                 let id = int_mem "id" j in
                 Hashtbl.replace spans id
                   {
                     id;
                     parent = int_mem "parent" j;
                     kind = str_mem "kind" j;
                     name = str_mem "name" j;
                     dur_ms = 0.;
                     child_ms = 0.;
                   };
                 order := id :: !order
             | Some (Json.Str "span_close") -> (
                 match Hashtbl.find_opt spans (int_mem "id" j) with
                 | Some sp -> sp.dur_ms <- num (Json.member "dur_ms" j)
                 | None -> ())
             | _ -> ())
     done
   with End_of_file -> if not (String.equal path "-") then close_in_noerr ic);
  let order = List.rev !order in
  (* children, in open order, and per-span child time for self = total − children *)
  let children : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let child_list p =
    match Hashtbl.find_opt children p with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add children p l;
        l
  in
  List.iter
    (fun id ->
      let sp = Hashtbl.find spans id in
      let l = child_list sp.parent in
      l := id :: !l;
      match Hashtbl.find_opt spans sp.parent with
      | Some up -> up.child_ms <- up.child_ms +. sp.dur_ms
      | None -> ())
    order;
  let self sp = Float.max 0. (sp.dur_ms -. sp.child_ms) in
  if order = [] then print_endline "no spans in trace"
  else begin
    print_endline "span tree (total / self ms):";
    let rec walk indent id =
      let sp = Hashtbl.find spans id in
      Printf.printf "%s%-8s %-24s %10.2f ms %10.2f ms\n"
        (String.make (2 * indent) ' ')
        sp.kind sp.name sp.dur_ms (self sp);
      List.iter (walk (indent + 1)) (List.rev !(child_list id))
    in
    (* roots: spans whose parent never opened in this trace (parent 0) *)
    List.iter
      (fun id ->
        let sp = Hashtbl.find spans id in
        if not (Hashtbl.mem spans sp.parent) then walk 0 id)
      order;
    let ranked =
      List.sort
        (fun a b ->
          let c =
            compare
              (self (Hashtbl.find spans b))
              (self (Hashtbl.find spans a))
          in
          if c <> 0 then c else compare a b)
        order
    in
    Printf.printf "hot spans (top %d by self time):\n" topk;
    List.iteri
      (fun i id ->
        if i < topk then
          let sp = Hashtbl.find spans id in
          Printf.printf "  %2d. %-8s %-24s self=%.2f ms total=%.2f ms\n"
            (i + 1) sp.kind sp.name (self sp) sp.dur_ms)
      ranked
  end
