(* datalog-unchained: command-line front end for the whole language
   family. *)
open Relational
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program path =
  try Datalog.Parser.parse (read_file path) with
  | Datalog.Parser.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: parse error: %s\n" path line msg;
      exit 2
  | Datalog.Lexer.Lex_error (line, msg) ->
      Printf.eprintf "%s:%d: lex error: %s\n" path line msg;
      exit 2

let load_facts = function
  | None -> Instance.empty
  | Some path -> (
      try Instance.parse_facts (read_file path) with
      | Failure msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 2)

let print_instance inst = Format.printf "%a@." Instance.pp inst

let print_answer inst = function
  | None -> print_instance inst
  | Some pred ->
      Relation.iter
        (fun t ->
          Format.printf "%a@." Datalog.Pretty.pp_fact (pred, t))
        (Instance.find pred inst)

(* --- arguments ---------------------------------------------------------- *)

let program_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROGRAM" ~doc:"Datalog program file (.dl)")

let facts_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "facts"; "f" ] ~docv:"FILE" ~doc:"EDB facts file")

let answer_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "answer"; "a" ] ~docv:"PRED"
        ~doc:"Print only this predicate's relation")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed")

let annot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "annot" ] ~docv:"SEMIRING"
        ~doc:
          "Annotate every fact over a commutative semiring: $(b,bool) (the \
           plain set semantics), $(b,count) (number of derivation trees; \
           $(b,inf) for facts on or fed by a derivation cycle), \
           $(b,minplus) (weight of the cheapest derivation; the last \
           integer column of a base fact is its weight), $(b,why) \
           (why-provenance polynomials over base-fact labels). Output \
           facts carry their annotation as a trailing '%' comment. \
           Requires the positive Datalog fragment")

(* plain-string validation so an unknown semiring exits 2 with the list
   of valid names (Arg.enum would exit 124) *)
let parse_annot = function
  | None -> None
  | Some s -> (
      match Semiring.of_string s with
      | Ok tag -> Some tag
      | Error msg ->
          Printf.eprintf "--annot: %s\n" msg;
          exit 2)

let print_annotated r pred rel =
  Relation.iter
    (fun t ->
      Format.printf "%a %% %s@." Datalog.Pretty.pp_fact (pred, t)
        (Semiring.to_string (Datalog.Annot_eval.annotation r pred t)))
    rel

let print_annot_answer (r : Datalog.Annot_eval.t) = function
  | Some pred ->
      print_annotated r pred (Instance.find pred r.Datalog.Annot_eval.instance)
  | None ->
      Instance.fold
        (fun pred rel () -> print_annotated r pred rel)
        r.Datalog.Annot_eval.instance ()

(* point-query match against a stored relation: constants filter their
   positions, repeated variables force equal ids (same shape as the
   server's materialized lookup) *)
let atom_matches (q : Datalog.Ast.atom) tup =
  Tuple.arity tup = List.length q.Datalog.Ast.args
  &&
  let env : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let ok = ref true in
  List.iteri
    (fun i arg ->
      match arg with
      | Datalog.Ast.Cst v ->
          if not (Value.equal v (Tuple.get tup i)) then ok := false
      | Datalog.Ast.Var x -> (
          match Hashtbl.find_opt env x with
          | Some j -> if Tuple.id tup i <> Tuple.id tup j then ok := false
          | None -> Hashtbl.add env x i))
    q.Datalog.Ast.args;
  !ok

let order_arg =
  Arg.(
    value & flag
    & info [ "ordered" ]
        ~doc:"Adjoin succ/lt/first/last order relations over the active \
              domain before evaluation (Theorem 4.7/4.8 experiments)")

let semantics_conv =
  Arg.enum
    [
      ("naive", `Naive);
      ("seminaive", `Seminaive);
      ("stratified", `Stratified);
      ("semipositive", `Semipositive);
      ("inflationary", `Inflationary);
      ("noninflationary", `Noninflationary);
      ("wellfounded", `Wellfounded);
      ("stable", `Stable);
      ("invent", `Invent);
    ]

let semantics_arg =
  Arg.(
    value
    & opt semantics_conv `Seminaive
    & info [ "semantics"; "s" ] ~docv:"SEM"
        ~doc:
          "Evaluation semantics: $(b,naive), $(b,seminaive), \
           $(b,stratified), $(b,semipositive), $(b,inflationary), \
           $(b,noninflationary), $(b,wellfounded), $(b,stable), \
           $(b,invent)")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Evaluate with $(docv) parallel domains: per-round rule \
           instantiations (and independent strata) are partitioned across \
           a fixed domain pool. Results are identical to sequential \
           evaluation; $(docv) = 1 (the default) runs the sequential \
           engine unchanged")

let set_jobs jobs =
  if jobs < 1 then (
    Printf.eprintf "jobs must be >= 1\n";
    exit 2);
  Parallel.Pool.set_jobs jobs

(* --- observability ------------------------------------------------------ *)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "After evaluation, print a run report to stdout: span hierarchy \
           with timings, per-round delta sizes, rule firing counts and \
           index/join ratios")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSON-lines trace of the run to $(docv) (span_open / \
           span_close / event / summary lines; see lib/observe)")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "After the answers, print the compiled plan(s) as an annotated \
           operator tree: per executed operator, rows in/out, execution \
           count, selectivity and self/total wall time. With $(b,--demand), \
           one tree per (rule, adornment) plan of the magic-rewritten \
           program plus the demand cache hit/miss breakdown")

(* Build the trace context the flags ask for, run [f] inside a "run" span,
   then flush: the JSONL file is closed even on exceptions, and the stats
   report prints only after a completed run. [force] creates an enabled
   context even without --stats/--trace (the --explain paths read
   counters from it) but prints nothing extra. *)
let with_observability ~name ?(force = false) stats trace_path f =
  if (not stats) && (not force) && trace_path = None then f Observe.Trace.null
  else
    let oc, sinks =
      match trace_path with
      | None -> (None, [])
      | Some path -> (
          try
            let oc = open_out path in
            ( Some oc,
              [
                Observe.Report.jsonl_sink ~write:(fun line ->
                    output_string oc line;
                    output_char oc '\n');
              ] )
          with Sys_error msg ->
            Printf.eprintf "cannot open trace file: %s\n" msg;
            exit 2)
    in
    let ctx = Observe.Trace.make ~sinks () in
    Fun.protect
      ~finally:(fun () -> Option.iter close_out_noerr oc)
      (fun () ->
        Observe.Trace.open_span ctx ~kind:"run" name;
        let r = f ctx in
        Observe.Trace.close_span ctx ();
        (* intern table health: distinct values interned by the process
           (parsing included) and how many [Intern.id] calls resolved to an
           existing entry — the sharing the dense-id representation buys *)
        Observe.Trace.add ctx "intern.values" (Value.Intern.size ());
        Observe.Trace.add ctx "intern.hits" (Value.Intern.hits ());
        Observe.Trace.finish ctx;
        if stats then Format.printf "%a" Observe.Report.pp_summary ctx;
        r)

(* --- run ---------------------------------------------------------------- *)

let semantics_name = function
  | `Naive -> "naive"
  | `Seminaive -> "seminaive"
  | `Stratified -> "stratified"
  | `Semipositive -> "semipositive"
  | `Inflationary -> "inflationary"
  | `Noninflationary -> "noninflationary"
  | `Wellfounded -> "wellfounded"
  | `Stable -> "stable"
  | `Invent -> "invent"

(* --explain (demand): per (rule, adornment) plan of the magic-rewritten
   program, the annotated operator tree, then the cache breakdown read
   back from the trace counters. [Demand.plans] returns the memoized
   plans the preceding [answer] calls executed, so the profile recorded
   there annotates exactly these trees. *)
let print_demand_explain ~trace ~cache ~profile p inst qs =
  List.iter
    (fun q ->
      Format.printf "%% explain %a@." Datalog.Pretty.pp_atom q;
      List.iter
        (fun pi ->
          Format.printf "%% plan %s [%s]@." pi.Datalog.Demand.pi_head
            pi.Datalog.Demand.pi_role;
          print_string
            (Explain.text ~inst ~profile
               (Fo.plan_expr pi.Datalog.Demand.pi_plan)))
        (Datalog.Demand.plans ~trace ~cache p q))
    qs;
  let c name = Observe.Trace.counter trace name in
  Format.printf
    "%% demand cache: %d answer hit(s), %d miss(es); %d plan(s) compiled, %d \
     plan memo hit(s)@."
    (c "demand.cache.hits") (c "demand.cache.misses")
    (c "demand.plan.compiled") (c "demand.plan.hits")

(* [run --demand -a PRED] answers the all-free query PRED(X1, ..., Xk)
   through the demand pipeline instead of materializing the fixpoint —
   same output as [-s seminaive -a PRED] restricted to that predicate. *)
let run_demand p inst answer explain stats trace_path =
  let pred =
    match answer with
    | Some pred -> pred
    | None ->
        Printf.eprintf "--demand requires --answer PRED\n";
        exit 2
  in
  let arity =
    List.find_map
      (fun (r : Datalog.Ast.rule) ->
        match r.Datalog.Ast.head with
        | [ Datalog.Ast.HPos h ] when h.Datalog.Ast.pred = pred ->
            Some (List.length h.Datalog.Ast.args)
        | _ -> None)
      p
  in
  match arity with
  | None ->
      Printf.eprintf "--demand: %s is not an idb predicate\n" pred;
      exit 2
  | Some k -> (
      let query =
        Datalog.Ast.atom pred
          (List.init k (fun i -> Datalog.Ast.var (Printf.sprintf "X%d" i)))
      in
      try
        with_observability ~name:"demand" ~force:explain stats trace_path
          (fun trace ->
            let cache = Datalog.Demand.Cache.create () in
            let profile =
              if explain then Some (Algebra.profile ()) else None
            in
            let rel =
              Datalog.Demand.answer ~trace ~cache ?profile p inst query
            in
            Relation.iter
              (fun t -> Format.printf "%a@." Datalog.Pretty.pp_fact (pred, t))
              rel;
            Option.iter
              (fun profile ->
                print_demand_explain ~trace ~cache ~profile p inst [ query ])
              profile)
      with Datalog.Ast.Check_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2)

let run_cmd =
  let run semantics program facts answer ordered demand annot explain stats
      trace_path jobs =
    set_jobs jobs;
    let annot = parse_annot annot in
    let { Datalog.Parser.program = p; _ } = load_program program in
    let inst = load_facts facts in
    let inst = if ordered then Order.adjoin inst else inst in
    if explain && not demand then (
      Printf.eprintf "--explain requires --demand on this subcommand\n";
      exit 2);
    match annot with
    | Some tag ->
        if demand then (
          Printf.eprintf "--annot is incompatible with --demand\n";
          exit 2);
        if semantics <> `Seminaive then (
          Printf.eprintf
            "--annot requires the default seminaive semantics\n";
          exit 2);
        with_observability ~name:"annot" stats trace_path (fun trace ->
            try print_annot_answer (Datalog.Annot_eval.run ~trace tag p inst) answer
            with Datalog.Annot_eval.Unsupported msg ->
              Printf.eprintf "%s\n" msg;
              exit 2)
    | None ->
    if demand then (
      if semantics <> `Seminaive then (
        Printf.eprintf "--demand only supports the default seminaive semantics\n";
        exit 2);
      run_demand p inst answer explain stats trace_path)
    else
    with_observability ~name:(semantics_name semantics) stats trace_path
      (fun trace ->
        match semantics with
        | `Naive ->
            print_answer (Datalog.Naive.eval ~trace p inst).Datalog.Naive.instance
              answer
        | `Seminaive ->
            print_answer
              (Datalog.Seminaive.eval ~trace p inst).Datalog.Seminaive.instance
              answer
        | `Stratified ->
            print_answer
              (Datalog.Stratified.eval ~trace p inst).Datalog.Stratified.instance
              answer
        | `Semipositive ->
            print_answer
              (Datalog.Semipositive.eval ~trace p inst)
                .Datalog.Semipositive.instance answer
        | `Inflationary ->
            print_answer
              (Datalog.Inflationary.eval ~trace p inst)
                .Datalog.Inflationary.instance answer
        | `Noninflationary -> (
            match Datalog.Noninflationary.run ~trace p inst with
            | Datalog.Noninflationary.Fixpoint { instance; stages } ->
                Format.printf "%% fixpoint after %d stages@." stages;
                print_answer instance answer
            | Datalog.Noninflationary.Diverged { period; entered; _ } ->
                Format.printf
                  "%% diverges: cycle of period %d entered at stage %d@." period
                  entered
            | Datalog.Noninflationary.Contradiction { pred; stage; _ } ->
                Format.printf "%% contradiction on %s at stage %d@." pred stage)
        | `Wellfounded ->
            let res = Datalog.Wellfounded.eval ~trace p inst in
            Format.printf "%% true facts:@.";
            print_answer res.Datalog.Wellfounded.true_facts answer;
            let unk = Datalog.Wellfounded.unknown res in
            if Instance.total_facts unk > 0 then (
              Format.printf "%% unknown facts:@.";
              print_answer unk answer)
        | `Stable ->
            let models = Datalog.Stable.models ~trace p inst in
            Format.printf "%% %d stable model(s)@." (List.length models);
            List.iteri
              (fun i m ->
                Format.printf "%% model %d:@." (i + 1);
                print_answer m answer)
              models
        | `Invent -> (
            match Datalog.Invent.run ~trace p inst with
            | Datalog.Invent.Fixpoint { instance; stages; invented } ->
                Format.printf
                  "%% fixpoint after %d stages, %d invented values@." stages
                  invented;
                print_answer instance answer
            | Datalog.Invent.Out_of_fuel { stages; _ } ->
                Format.printf "%% out of fuel after %d stages@." stages))
  in
  let demand_arg =
    Arg.(
      value & flag
      & info [ "demand" ]
          ~doc:
            "Answer the $(b,--answer) predicate demand-driven (magic sets \
             compiled to algebra plans) instead of materializing the full \
             fixpoint; requires $(b,-a) and the default seminaive \
             semantics")
  in
  let doc = "Evaluate a program under a chosen semantics" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ semantics_arg $ program_arg $ facts_arg $ answer_arg
      $ order_arg $ demand_arg $ annot_arg $ explain_arg $ stats_arg
      $ trace_arg $ jobs_arg)

(* --- nondet ------------------------------------------------------------- *)

let nondet_cmd =
  let mode_conv =
    Arg.enum
      [ ("walk", `Walk); ("enumerate", `Enumerate); ("poss", `Poss); ("cert", `Cert) ]
  in
  let mode_arg =
    Arg.(
      value & opt mode_conv `Walk
      & info [ "mode"; "m" ]
          ~doc:
            "$(b,walk) one random terminal instance, $(b,enumerate) the \
             whole effect relation, $(b,poss)/$(b,cert) the possibility / \
             certainty semantics")
  in
  let run mode program facts answer seed stats trace_path =
    let { Datalog.Parser.program = p; _ } = load_program program in
    Datalog.Ast.check_ndatalog_any p;
    let inst = load_facts facts in
    let name =
      match mode with
      | `Walk -> "nondet.walk"
      | `Enumerate -> "nondet.enumerate"
      | `Poss -> "nondet.poss"
      | `Cert -> "nondet.cert"
    in
    with_observability ~name stats trace_path (fun trace ->
        match mode with
        | `Walk -> (
            match Nondet.Nd_eval.run ~seed ~trace p inst with
            | Nondet.Nd_eval.Terminal { instance; steps } ->
                Format.printf "%% terminal after %d firings@." steps;
                print_answer instance answer
            | Nondet.Nd_eval.Abandoned { steps } ->
                Format.printf "%% abandoned (\xe2\x8a\xa5) after %d firings@."
                  steps
            | Nondet.Nd_eval.Out_of_fuel { steps; _ } ->
                Format.printf "%% out of fuel after %d firings@." steps)
        | `Enumerate ->
            let stats = Nondet.Enumerate.effect p inst in
            Format.printf "%% %d terminal instance(s), %d states explored@."
              (List.length stats.Nondet.Enumerate.terminals)
              stats.Nondet.Enumerate.explored;
            List.iteri
              (fun i j ->
                Format.printf "%% outcome %d:@." (i + 1);
                print_answer j answer)
              stats.Nondet.Enumerate.terminals
        | `Poss -> print_answer (Nondet.Posscert.poss p inst) answer
        | `Cert -> print_answer (Nondet.Posscert.cert p inst) answer)
  in
  let doc = "Evaluate a nondeterministic program (N-Datalog variants)" in
  Cmd.v (Cmd.info "nondet" ~doc)
    Term.(
      const run $ mode_arg $ program_arg $ facts_arg $ answer_arg $ seed_arg
      $ stats_arg $ trace_arg)

(* --- stratify / deps / check ------------------------------------------- *)

let stratify_cmd =
  let run program =
    let { Datalog.Parser.program = p; _ } = load_program program in
    match Datalog.Stratify.stratify p with
    | Error msg ->
        Format.printf "not stratifiable: %s@." msg;
        exit 1
    | Ok s ->
        List.iteri
          (fun i stratum ->
            if stratum <> [] then (
              Format.printf "%% stratum %d:@." i;
              List.iter
                (fun r -> Format.printf "%s@." (Datalog.Pretty.rule_to_string r))
                stratum))
          s.Datalog.Stratify.strata
  in
  let doc = "Print the stratification of a Datalog¬ program" in
  Cmd.v (Cmd.info "stratify" ~doc) Term.(const run $ program_arg)

let deps_cmd =
  let run program =
    let { Datalog.Parser.program = p; _ } = load_program program in
    Format.printf "%a@." Datalog.Depgraph.pp_dot p
  in
  let doc = "Print the predicate dependency graph in Graphviz format" in
  Cmd.v (Cmd.info "deps" ~doc) Term.(const run $ program_arg)

let check_cmd =
  let lang_conv =
    Arg.enum
      [
        ("datalog", `Datalog);
        ("datalog-neg", `Neg);
        ("datalog-negneg", `Negneg);
        ("datalog-new", `New);
        ("ndatalog", `Nd);
        ("ndatalog-bottom", `NdBottom);
        ("ndatalog-forall", `NdForall);
      ]
  in
  let lang_arg =
    Arg.(
      value & opt lang_conv `Neg
      & info [ "language"; "l" ] ~doc:"Fragment to validate against")
  in
  let run lang program =
    let { Datalog.Parser.program = p; _ } = load_program program in
    let check =
      match lang with
      | `Datalog -> Datalog.Ast.check_datalog
      | `Neg -> Datalog.Ast.check_datalog_neg
      | `Negneg -> Datalog.Ast.check_datalog_negneg
      | `New -> Datalog.Ast.check_invent
      | `Nd -> Datalog.Ast.check_ndatalog
      | `NdBottom -> Datalog.Ast.check_ndatalog_bottom
      | `NdForall -> Datalog.Ast.check_ndatalog_forall
    in
    match check p with
    | () -> Format.printf "ok@."
    | exception Datalog.Ast.Check_error msg ->
        Format.printf "invalid: %s@." msg;
        exit 1
  in
  let doc = "Validate a program against a language fragment" in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ lang_arg $ program_arg)

let parse_query_atom s =
  try Datalog.Parser.parse_atom s with
  | Datalog.Parser.Parse_error (_, msg) ->
      Printf.eprintf "query '%s': parse error: %s\n" s msg;
      exit 2
  | Datalog.Lexer.Lex_error (_, msg) ->
      Printf.eprintf "query '%s': lex error: %s\n" s msg;
      exit 2

let query_atom_arg =
  Arg.(
    value & opt_all string []
    & info [ "query"; "q" ] ~docv:"ATOM"
        ~doc:
          "Query atom, e.g. 'T(a, Y)' (repeatable; appended to the \
           program's ?- directives)")

let demand_arg =
  Arg.(
    value & flag
    & info [ "demand" ]
        ~doc:
          "Answer through the demand-driven compiler: the magic-rewritten \
           program is lowered to algebra plans seeded by the demand \
           relation, and answered patterns are kept in a subsumptive \
           cache ($(b,demand.*) counters under $(b,--stats))")

let query_cmd =
  let run program facts query_args demand annot explain stats trace_path jobs
      =
    set_jobs jobs;
    let annot = parse_annot annot in
    let { Datalog.Parser.program = p; queries } = load_program program in
    let inst = load_facts facts in
    if explain && not demand then (
      Printf.eprintf "--explain requires --demand on this subcommand\n";
      exit 2);
    match queries @ List.map parse_query_atom query_args with
    | [] ->
        Printf.eprintf
          "no query: pass -q ATOM or add a ?- directive to the program\n";
        exit 2
    | qs -> (
        match annot with
        | Some tag ->
            if demand then (
              Printf.eprintf "--annot is incompatible with --demand\n";
              exit 2);
            (* annotated answers come from the materialized annotated
               fixpoint: the stored relation filtered by the query's
               constants and repeated variables *)
            with_observability ~name:"annot" stats trace_path (fun trace ->
                try
                  let r = Datalog.Annot_eval.run ~trace tag p inst in
                  List.iter
                    (fun (q : Datalog.Ast.atom) ->
                      print_annotated r q.Datalog.Ast.pred
                        (Relation.filter (atom_matches q)
                           (Instance.find q.Datalog.Ast.pred
                              r.Datalog.Annot_eval.instance)))
                    qs
                with Datalog.Annot_eval.Unsupported msg ->
                  Printf.eprintf "%s\n" msg;
                  exit 2)
        | None -> (
        let print q rel =
          Relation.iter
            (fun t ->
              Format.printf "%a@." Datalog.Pretty.pp_fact
                (q.Datalog.Ast.pred, t))
            rel
        in
        try
          with_observability ~name:(if demand then "demand" else "magic")
            ~force:explain stats trace_path (fun trace ->
              if demand then (
                let cache = Datalog.Demand.Cache.create () in
                let profile =
                  if explain then Some (Algebra.profile ()) else None
                in
                List.iter
                  (fun q ->
                    print q
                      (Datalog.Demand.answer ~trace ~cache ?profile p inst q))
                  qs;
                Option.iter
                  (fun profile ->
                    print_demand_explain ~trace ~cache ~profile p inst qs)
                  profile)
              else
                let s = Datalog.Magic.session ~trace p inst in
                List.iter (fun q -> print q (Datalog.Magic.ask s q)) qs)
        with Datalog.Ast.Check_error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2))
  in
  let doc = "Answer queries with magic-set rewriting" in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run $ program_arg $ facts_arg $ query_atom_arg $ demand_arg
      $ annot_arg $ explain_arg $ stats_arg $ trace_arg $ jobs_arg)

(* --- fo ------------------------------------------------------------------ *)

let fo_cmd =
  let query_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "FO formula, e.g. 'exists Z (G(X, Z) & G(Z, Y))'. \
             Uppercase-initial identifiers are variables; connectives are \
             $(b,!) $(b,&) $(b,|) $(b,->) $(b,=) $(b,!=) $(b,exists) \
             $(b,forall) $(b,true) $(b,false)")
  in
  let vars_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "vars" ] ~docv:"X,Y"
          ~doc:
            "Output columns (comma-separated; default: the formula's free \
             variables in first-occurrence order)")
  in
  let naive_arg =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:
            "Evaluate with the naive active-domain enumerator instead of \
             the compiled algebra plan (reference oracle)")
  in
  let run query facts vars naive explain stats trace_path jobs =
    set_jobs jobs;
    let f =
      try Fo_parse.formula_of_string query
      with Fo_parse.Parse_error msg ->
        Printf.eprintf "query: %s\n" msg;
        exit 2
    in
    let inst = load_facts facts in
    let vars =
      match vars with
      | None -> Fo.free_vars f
      | Some s ->
          String.split_on_char ',' s |> List.map String.trim
          |> List.filter (fun v -> v <> "")
    in
    if explain && naive then (
      Printf.eprintf "--explain needs the compiled path (drop --naive)\n";
      exit 2);
    try
      with_observability ~name:"fo" ~force:explain stats trace_path
        (fun trace ->
          let profile = if explain then Some (Algebra.profile ()) else None in
          (match vars with
          | [] ->
              Format.printf "%b@."
                (if naive then Fo.sentence_naive inst f
                 else Fo.sentence ~trace ?profile inst f)
          | vs ->
              let r =
                if naive then Fo.eval_naive inst f vs
                else Fo.eval ~trace ?profile inst f vs
              in
              Relation.iter
                (fun t -> Format.printf "%a@." Datalog.Pretty.pp_fact ("ans", t))
                r);
          (* plans are memoized: recompiling returns the same physical
             plan the evaluation just profiled *)
          Option.iter
            (fun profile ->
              let plan = Fo.compile ~trace f vars in
              Format.printf "%% explain@.";
              print_string (Explain.text ~inst ~profile (Fo.plan_expr plan)))
            profile)
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let doc =
    "Answer a first-order (relational calculus) query over a facts file"
  in
  Cmd.v (Cmd.info "fo" ~doc)
    Term.(
      const run $ query_arg $ facts_arg $ vars_arg $ naive_arg $ explain_arg
      $ stats_arg $ trace_arg $ jobs_arg)

(* --- serve / client ----------------------------------------------------- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let serve_cmd =
  let run program facts socket annot stats trace_path =
    (* the resident server maintains a set (Boolean) materialization;
       [--annot count] selects counting maintenance for its write path,
       the other semirings have no incremental story and are refused *)
    let maintenance =
      match parse_annot annot with
      | None | Some Semiring.Bool -> Server.Engine.Dred
      | Some Semiring.Count -> Server.Engine.Counting
      | Some (Semiring.MinPlus | Semiring.Why) ->
          Printf.eprintf
            "serve supports --annot bool (delete-and-rederive) or count \
             (counting maintenance) only\n";
          exit 2
    in
    let { Datalog.Parser.program = p; _ } = load_program program in
    let inst = load_facts facts in
    (* force an enabled context even without --stats: the protocol's
       [stats] op reports these counters over the socket *)
    with_observability ~name:"serve" ~force:true stats trace_path
      (fun trace ->
        try
          let engine = Server.Engine.create ~trace ~maintenance p inst in
          Server.Daemon.serve ~trace ~socket engine
        with Datalog.Ast.Check_error msg ->
          Printf.eprintf "serve requires pure Datalog: %s\n" msg;
          exit 2)
  in
  let doc =
    "Run a resident server: materialize the program's fixpoint once, then \
     maintain it incrementally (semi-naive insertion, delete-and-rederive \
     or counting retraction — $(b,--annot count)) across line-JSON \
     requests on a Unix-domain socket. Requires pure Datalog. With \
     $(b,--stats), print the run report (request counters, per-command \
     latency histograms, fixpoint and maintenance counters) after \
     shutdown"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ program_arg $ facts_arg $ socket_arg $ annot_arg
      $ stats_arg $ trace_arg)

let client_cmd =
  let command_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("assert", `Assert);
                  ("retract", `Retract);
                  ("query", `Query);
                  ("stats", `Stats);
                  ("shutdown", `Shutdown);
                ]))
          None
      & info [] ~docv:"COMMAND"
          ~doc:"$(b,assert), $(b,retract), $(b,query), $(b,stats) or \
                $(b,shutdown)")
  in
  let payload_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"ARG"
          ~doc:"Facts text for assert/retract, query atom for query")
  in
  let via_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("materialized", "materialized");
               ("demand", "demand");
               ("magic", "magic");
             ])
          "materialized"
      & info [ "via" ] ~docv:"PATH"
          ~doc:
            "Query path: $(b,materialized) (indexed lookup on the \
             maintained fixpoint), $(b,demand) (demand compiler) or \
             $(b,magic) (magic-sets session)")
  in
  let run socket command payload via =
    let need what =
      match payload with
      | Some a -> a
      | None ->
          Printf.eprintf "client: missing %s argument\n" what;
          exit 2
    in
    let req =
      match command with
      | `Assert -> Server.Protocol.Assert (need "facts")
      | `Retract -> Server.Protocol.Retract (need "facts")
      | `Query -> Server.Protocol.Query { atom = need "query atom"; via }
      | `Stats -> Server.Protocol.Stats
      | `Shutdown -> Server.Protocol.Shutdown
    in
    match Server.Client.request ~socket req with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    | Ok j -> (
        let int_field name =
          match Observe.Json.member name j with
          | Some (Observe.Json.Int n) -> n
          | _ -> 0
        in
        match command with
        | `Assert ->
            Printf.printf "%% added %d, derived %d (%d stage(s))\n"
              (int_field "added") (int_field "derived") (int_field "stages")
        | `Retract ->
            Printf.printf "%% removed %d, overdeleted %d, rederived %d\n"
              (int_field "removed")
              (int_field "overdeleted")
              (int_field "rederived")
        | `Query -> (
            match Observe.Json.member "facts" j with
            | Some (Observe.Json.List fs) ->
                List.iter
                  (function
                    | Observe.Json.Str s -> print_endline s | _ -> ())
                  fs
            | _ -> ())
        | `Stats ->
            (match Observe.Json.member "counters" j with
            | Some (Observe.Json.Obj kvs) ->
                List.iter
                  (function
                    | k, Observe.Json.Int v -> Printf.printf "%s %d\n" k v
                    | _ -> ())
                  kvs
            | _ -> ());
            (match Observe.Json.member "histograms" j with
            | Some (Observe.Json.Obj kvs) ->
                List.iter
                  (fun (k, d) ->
                    let f name =
                      match Observe.Json.member name d with
                      | Some (Observe.Json.Int n) -> n
                      | _ -> 0
                    in
                    Printf.printf "%s n=%d p50_ns=%d p99_ns=%d\n" k (f "n")
                      (f "p50_ns") (f "p99_ns"))
                  kvs
            | _ -> ())
        | `Shutdown -> print_endline "% server stopped")
  in
  let doc =
    "Send one request to a resident $(b,serve) process and print the \
     response: derived/retraction deltas for updates, one fact per line \
     for queries, counter and histogram lines for stats"
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const run $ socket_arg $ command_arg $ payload_arg $ via_arg)

let main =
  let doc =
    "The Datalog Unchained language family: forward-chaining Datalog \
     engines (PODS 2021 Gems reproduction)"
  in
  Cmd.group (Cmd.info "datalog-unchained" ~version:"1.0.0" ~doc)
    [
      run_cmd;
      nondet_cmd;
      stratify_cmd;
      deps_cmd;
      check_cmd;
      query_cmd;
      fo_cmd;
      serve_cmd;
      client_cmd;
    ]

let () = exit (Cmd.eval main)
