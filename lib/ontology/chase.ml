open Relational
module Ast = Datalog.Ast
module Matcher = Datalog.Matcher

type tgd = Ast.rule

let check_error fmt =
  Format.kasprintf (fun s -> raise (Ast.Check_error s)) fmt

let check tgds =
  ignore (Ast.infer_schema tgds);
  List.iter
    (fun (r : Ast.rule) ->
      if r.Ast.forall <> [] then
        check_error "tgd with \xe2\x88\x80 quantifier";
      List.iter
        (function
          | Ast.HPos _ -> ()
          | _ -> check_error "tgd heads must be positive atoms")
        r.Ast.head;
      List.iter
        (function
          | Ast.BPos _ -> ()
          | _ -> check_error "tgd bodies must be positive atoms")
        r.Ast.body)
    tgds

let existential_vars = Ast.head_only_vars

let body_atoms (r : Ast.rule) =
  List.filter_map
    (function Ast.BPos a -> Some a | _ -> None)
    r.Ast.body

let head_atoms (r : Ast.rule) =
  List.filter_map Ast.atom_of_hlit r.Ast.head

let atom_vars (a : Ast.atom) =
  List.filter_map
    (function Ast.Var x -> Some x | Ast.Cst _ -> None)
    a.Ast.args

let is_linear tgds =
  List.for_all (fun r -> List.length (body_atoms r) = 1) tgds

let is_guarded tgds =
  List.for_all
    (fun r ->
      let bv = List.sort_uniq compare (Ast.body_vars r) in
      List.exists
        (fun a ->
          List.for_all (fun x -> List.mem x (atom_vars a)) bv)
        (body_atoms r))
    tgds

(* Weak acyclicity: position graph over (pred, index); normal edges from
   each universal variable's body positions to its head positions; special
   edges from each universal variable's body positions to every
   existential variable's head position in the same tgd (only when the
   universal variable also appears in the head, per the standard
   definition). Weakly acyclic iff no cycle goes through a special edge. *)
let weakly_acyclic tgds =
  let normal = Hashtbl.create 32 and special = Hashtbl.create 32 in
  let add tbl u v = Hashtbl.replace tbl (u, v) () in
  List.iter
    (fun r ->
      let ex = existential_vars r in
      let body_positions x =
        List.concat_map
          (fun (a : Ast.atom) ->
            List.filteri (fun _ _ -> true) a.Ast.args
            |> List.mapi (fun i t -> (i, t))
            |> List.filter_map (fun (i, t) ->
                   if t = Ast.Var x then Some (a.Ast.pred, i) else None))
          (body_atoms r)
      in
      let head_positions x =
        List.concat_map
          (fun (a : Ast.atom) ->
            List.mapi (fun i t -> (i, t)) a.Ast.args
            |> List.filter_map (fun (i, t) ->
                   if t = Ast.Var x then Some (a.Ast.pred, i) else None))
          (head_atoms r)
      in
      let universals =
        List.filter (fun x -> not (List.mem x ex)) (Ast.rule_vars r)
      in
      List.iter
        (fun x ->
          let bps = body_positions x in
          let hps = head_positions x in
          if hps <> [] then (
            List.iter (fun u -> List.iter (fun v -> add normal u v) hps) bps;
            (* special edges to every existential position *)
            List.iter
              (fun y ->
                List.iter
                  (fun u ->
                    List.iter (fun v -> add special u v) (head_positions y))
                  bps)
              ex))
        universals)
    tgds;
  (* cycle through a special edge: exists special u=>v with v ->* u *)
  let succs node =
    Hashtbl.fold
      (fun (u, v) () acc -> if u = node then v :: acc else acc)
      normal []
    @ Hashtbl.fold
        (fun (u, v) () acc -> if u = node then v :: acc else acc)
        special []
  in
  let reaches src dst =
    let seen = Hashtbl.create 16 in
    let rec go n =
      if n = dst then true
      else if Hashtbl.mem seen n then false
      else (
        Hashtbl.add seen n ();
        List.exists go (succs n))
    in
    go src
  in
  not
    (Hashtbl.fold
       (fun (u, v) () acc -> acc || reaches v u)
       special false)

type outcome =
  | Terminated of { instance : Instance.t; steps : int; nulls : int }
  | Out_of_fuel of { instance : Instance.t; steps : int; nulls : int }

(* Is the tgd's head satisfiable in [db] under the (body) match σ?
   I.e. does some extension of σ to the existential variables make every
   head atom a fact? Without existential variables the head is fully
   ground under σ, so plain membership tests suffice. *)
let head_satisfied db subst (r : Ast.rule) =
  if existential_vars r = [] then
    List.for_all
      (fun a ->
        let p, t = Ast.ground_atom subst a in
        Matcher.Db.mem db p t)
      (head_atoms r)
  else
  let substituted =
    List.map
      (fun (a : Ast.atom) ->
        {
          a with
          Ast.args =
            List.map
              (fun t ->
                match t with
                | Ast.Var x -> (
                    match List.assoc_opt x subst with
                    | Some v -> Ast.Cst v
                    | None -> t)
                | Ast.Cst _ -> t)
              a.Ast.args;
        })
      (head_atoms r)
  in
  let probe =
    {
      Ast.head = [ Ast.HPos (Ast.atom "sat__" []) ];
      body = List.map (fun a -> Ast.BPos a) substituted;
      forall = [];
    }
  in
  Matcher.run (Matcher.prepare probe) db <> []

let chase ?(max_steps = 10_000) ?(trace = Observe.Trace.null) tgds inst =
  check tgds;
  let tracing = Observe.Trace.enabled trace in
  let gen = Value.Gen.create () in
  let prepared = List.map (fun r -> (r, Matcher.prepare r)) tgds in
  let steps = ref 0 in
  (* one persistent database for the whole chase; firings insert into it
     and the indexes follow incrementally *)
  let db = Matcher.Db.of_instance ~trace inst in
  let pass_no = ref 0 in
  let rec pass () =
    if tracing then (
      Observe.Trace.open_span trace ~kind:"round" (string_of_int !pass_no);
      Stdlib.incr pass_no);
    (* snapshot this pass's triggers before applying any of them, so
       every rule matches against the pass-start state *)
    let triggers =
      List.map (fun ((r : Ast.rule), plan) -> (r, Matcher.run plan db)) prepared
    in
    let fired = ref false in
    let fired_count = ref 0 in
    let close_pass () =
      if tracing then (
        Observe.Trace.incr trace "fixpoint.rounds";
        Observe.Trace.add trace "chase.firings" !fired_count;
        Observe.Trace.close_span trace
          ~fields:[ Observe.Trace.fint "firings" !fired_count ]
          ())
    in
    (try
       List.iter
         (fun ((r : Ast.rule), substs) ->
           List.iter
             (fun subst ->
               (* recheck against the freshest state *)
               if not (head_satisfied db subst r) then (
                 if !steps >= max_steps then raise Exit;
                 incr steps;
                 fired := true;
                 Stdlib.incr fired_count;
                 let subst =
                   List.fold_left
                     (fun s y -> (y, Value.Gen.fresh gen) :: s)
                     subst (existential_vars r)
                 in
                 List.iter
                   (fun a ->
                     let p, t = Ast.ground_atom subst a in
                     ignore (Matcher.Db.insert db p t))
                   (head_atoms r)))
             substs)
         triggers
     with Exit ->
       close_pass ();
       raise Exit);
    close_pass ();
    if tracing then
      Observe.Trace.add trace "chase.nulls"
        (Value.Gen.count gen - Observe.Trace.counter trace "chase.nulls");
    if !fired then pass ()
  in
  match pass () with
  | () ->
      Terminated
        {
          instance = Matcher.Db.instance db;
          steps = !steps;
          nulls = Value.Gen.count gen;
        }
  | exception Exit ->
      Out_of_fuel
        {
          instance = Matcher.Db.instance db;
          steps = !steps;
          nulls = Value.Gen.count gen;
        }

type cq = { body : Ast.atom list; answer : string list }

let query_matches inst (atoms : Ast.atom list) answer =
  let probe =
    {
      Ast.head =
        [ Ast.HPos (Ast.atom "q__" (List.map (fun x -> Ast.Var x) answer)) ];
      body = List.map (fun a -> Ast.BPos a) atoms;
      forall = [];
    }
  in
  let db = Matcher.Db.of_instance inst in
  let substs = Matcher.run (Matcher.prepare probe) db in
  List.map
    (fun subst ->
      Tuple.of_list
        (List.map
           (fun x ->
             match List.assoc_opt x subst with
             | Some v -> v
             | None -> failwith "Chase: unbound answer variable")
           answer))
    substs

let run_chase ?max_steps ?trace tgds inst =
  match chase ?max_steps ?trace tgds inst with
  | Terminated { instance; _ } -> instance
  | Out_of_fuel { steps; _ } ->
      failwith
        (Printf.sprintf
           "Chase: no termination within %d steps (check weak acyclicity)"
           steps)

let certain_answers ?max_steps ?trace tgds inst q =
  let chased = run_chase ?max_steps ?trace tgds inst in
  let tuples = query_matches chased q.body q.answer in
  Relation.of_list
    (List.filter
       (fun t -> not (Tuple.exists Value.is_invented t))
       tuples)

let bcq ?max_steps tgds inst atoms =
  let chased = run_chase ?max_steps tgds inst in
  query_matches chased atoms [] <> []
