(** Datalog± — Datalog with existentially quantified rule heads, evaluated
    by the chase (§6 of the paper: "Datalog for ontologies", the
    Calì–Gottlob–Lukasiewicz family; also the engine room of the paper's
    Vadalog discussion).

    A {e tuple-generating dependency} (tgd) is written as an {!Ast.rule}
    with a (possibly multi-atom) positive head and positive body; head
    variables that do not occur in the body are the {e existential}
    variables — the same syntactic device as Datalog¬new's invention
    (§4.3), which is no accident: the chase materializes fresh {e nulls}
    exactly where Datalog¬new invents values.

    The {e restricted chase}: a trigger (tgd + body match) is applied only
    if its head cannot already be satisfied in the current instance; an
    application extends the match with fresh nulls for the existential
    variables and adds the head atoms. Termination is undecidable in
    general; {!weakly_acyclic} gives the standard sufficient condition,
    and the syntactic classes of Datalog± ({!is_linear}, {!is_guarded})
    are recognized.

    Certain answers to a conjunctive query are computed by chasing and
    keeping null-free answer tuples — sound and complete when the chase
    terminates. *)

open Relational

type tgd = Datalog.Ast.rule

(** [check tgds] validates: positive multi-atom heads, positive bodies, no
    ∀/⊥/(in)equalities; every body variable of a head atom occurs in the
    body. @raise Datalog.Ast.Check_error otherwise. *)
val check : tgd list -> unit

(** [existential_vars t] — the head-only variables. *)
val existential_vars : tgd -> string list

(** [is_linear tgds] — every body is a single atom. *)
val is_linear : tgd list -> bool

(** [is_guarded tgds] — every tgd has a body atom containing all body
    variables (linear ⊆ guarded). *)
val is_guarded : tgd list -> bool

(** [weakly_acyclic tgds] — no cycle through a "special" (existential)
    edge in the position dependency graph; guarantees chase
    termination in polynomially many steps. *)
val weakly_acyclic : tgd list -> bool

type outcome =
  | Terminated of {
      instance : Instance.t;  (** the chased instance, nulls included *)
      steps : int;  (** trigger applications *)
      nulls : int;  (** fresh nulls created *)
    }
  | Out_of_fuel of { instance : Instance.t; steps : int; nulls : int }

(** [chase ?max_steps tgds inst] runs the restricted chase (default fuel
    10_000 trigger applications). [trace] wraps each pass in a ["round"]
    span (close field [firings]) and counts [chase.firings],
    [chase.nulls] and [fixpoint.rounds]. *)
val chase :
  ?max_steps:int -> ?trace:Observe.Trace.ctx -> tgd list -> Instance.t -> outcome

(** A conjunctive query: positive atoms plus answer variables. *)
type cq = { body : Datalog.Ast.atom list; answer : string list }

(** [certain_answers ?max_steps tgds inst q] — chase, match [q], keep
    null-free tuples. @raise Failure if the chase runs out of fuel. *)
val certain_answers :
  ?max_steps:int ->
  ?trace:Observe.Trace.ctx ->
  tgd list ->
  Instance.t ->
  cq ->
  Relation.t

(** [bcq ?max_steps tgds inst atoms] — boolean query: is there a match of
    [atoms] (nulls allowed as witnesses)? *)
val bcq : ?max_steps:int -> tgd list -> Instance.t -> Datalog.Ast.atom list -> bool
