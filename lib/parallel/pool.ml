(* A fork–join barrier over a fixed set of domains. Helper domains park
   on [work_ready] between jobs; [run] publishes a closure under the
   mutex, bumps the generation counter so every helper sees exactly one
   wake-up per job, and the caller doubles as worker 0 so a pool of size
   n costs n-1 domains. *)

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable job : (int -> unit) option;
  mutable pending : int;
  mutable errors : (int * exn) list;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  (* in-job barrier (run_phases): classic counting barrier over the
     pool's mutex with its own condition variable and generation *)
  barrier : Condition.t;
  mutable bar_count : int;
  mutable bar_gen : int;
}

let size p = p.size

let worker_loop pool w =
  let gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.generation = !gen do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.stop then (
      running := false;
      Mutex.unlock pool.mutex)
    else begin
      gen := pool.generation;
      let job = Option.get pool.job in
      Mutex.unlock pool.mutex;
      let err = (try job w; None with e -> Some e) in
      Mutex.lock pool.mutex;
      (match err with
      | Some e -> pool.errors <- (w, e) :: pool.errors
      | None -> ());
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex
    end
  done

let create n =
  if n < 1 then invalid_arg "Parallel.Pool.create: size must be >= 1";
  let pool =
    {
      size = n;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      job = None;
      pending = 0;
      errors = [];
      stop = false;
      domains = [||];
      barrier = Condition.create ();
      bar_count = 0;
      bar_gen = 0;
    }
  in
  pool.domains <-
    Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let run pool f =
  if pool.size = 1 then f 0
  else begin
    Mutex.lock pool.mutex;
    pool.job <- Some f;
    pool.pending <- pool.size - 1;
    pool.errors <- [];
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    let caller_err = (try f 0; None with e -> Some e) in
    Mutex.lock pool.mutex;
    while pool.pending > 0 do
      Condition.wait pool.work_done pool.mutex
    done;
    pool.job <- None;
    let errs = pool.errors in
    pool.errors <- [];
    Mutex.unlock pool.mutex;
    match caller_err with
    | Some e -> raise e
    | None -> (
        match List.sort (fun (a, _) (b, _) -> Int.compare a b) errs with
        | (_, e) :: _ -> raise e
        | [] -> ())
  end

(* Barrier inside a job: every worker of the current [run] must call
   this the same number of times. All [size] workers (the caller
   included) park until the last one arrives, then the generation flips
   and everyone proceeds. The mutex doubles as the memory fence: writes
   made before the barrier are visible to every worker after it. *)
let barrier_wait pool =
  if pool.size > 1 then begin
    Mutex.lock pool.mutex;
    let gen = pool.bar_gen in
    pool.bar_count <- pool.bar_count + 1;
    if pool.bar_count = pool.size then begin
      pool.bar_count <- 0;
      pool.bar_gen <- gen + 1;
      Condition.broadcast pool.barrier
    end
    else
      while pool.bar_gen = gen do
        Condition.wait pool.barrier pool.mutex
      done;
    Mutex.unlock pool.mutex
  end

(* Phased job: every worker runs phase 0, hits a barrier, runs phase 1,
   and so on — the shard-exchange discipline (derive, then drain) in one
   fan-out instead of one [run] per phase. A worker that raises skips
   its remaining phases but still participates in every barrier, so its
   siblings never deadlock waiting for it; the exception resurfaces
   through [run]'s normal error path once the job completes. *)
let run_phases pool phases =
  match Array.length phases with
  | 0 -> ()
  | 1 -> run pool phases.(0)
  | nphases ->
      if pool.size = 1 then Array.iter (fun f -> f 0) phases
      else
        run pool (fun w ->
            let err = ref None in
            Array.iteri
              (fun i f ->
                (if Option.is_none !err then
                   try f w with e -> err := Some e);
                if i < nphases - 1 then barrier_wait pool)
              phases;
            match !err with Some e -> raise e | None -> ())

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

(* Process-global pool: sized once by the CLI, checked out per fixpoint.
   [in_use] is an atomic flag rather than a lock so a nested fixpoint
   (stratified wave -> semi-naive, well-founded -> semi-naive) observes
   "busy" and degrades to sequential instead of blocking. *)

let global : t option ref = ref None
let njobs = ref 1
let in_use = Atomic.make false

(* How many times [acquire] found the pool busy (a nested fixpoint
   degrading to sequential) — process-wide, so the degradation is
   observable instead of silent. *)
let fallbacks = Atomic.make 0
let fallback_count () = Atomic.get fallbacks

let shutdown_global () =
  match !global with
  | Some p ->
      global := None;
      shutdown p
  | None -> ()

let set_jobs n =
  if n < 1 then invalid_arg "Parallel.Pool.set_jobs: jobs must be >= 1";
  if Atomic.get in_use then
    invalid_arg "Parallel.Pool.set_jobs: pool is in use";
  shutdown_global ();
  njobs := n;
  if n > 1 then global := Some (create n)

let jobs () = !njobs

let acquire () =
  match !global with
  | None -> None
  | Some p ->
      if Atomic.compare_and_set in_use false true then Some p
      else (
        Atomic.incr fallbacks;
        None)

let release _p = Atomic.set in_use false
let () = at_exit shutdown_global
