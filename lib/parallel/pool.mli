(** A fixed pool of OCaml 5 domains for data-parallel evaluation.

    The engines use a {e fork–join at a barrier} discipline: the
    coordinator prepares a read-only snapshot, {!run} hands every worker
    the same closure (distinguished only by its worker index), and
    control returns to the coordinator once all workers finished. All
    mutation of shared engine state happens strictly between {!run}
    calls, on the coordinator.

    The pool is process-global and sized once per CLI invocation with
    {!set_jobs}; evaluation code borrows it through {!acquire} /
    {!release} so that nested fixpoints (a stratum evaluating inside a
    parallel wave, the well-founded alternation calling semi-naive) find
    the pool busy and silently fall back to sequential evaluation
    instead of deadlocking on a second barrier. *)

type t

(** [size p] is the number of workers, including the caller: [run p f]
    invokes [f w] for every [w] in [0 .. size p - 1]. *)
val size : t -> int

(** [run p f] executes [f 0 .. f (size p - 1)] concurrently — [f 0] on
    the calling domain, the rest on the pool's domains — and returns
    when every call finished. If one or more workers raised, the first
    exception (in worker order) is re-raised on the caller after the
    barrier. Not re-entrant: [f] must not call [run] on the same pool. *)
val run : t -> (int -> unit) -> unit

(** [run_phases p [|f; g; ...|]] is one fan-out running several phases
    separated by in-job barriers: every worker executes [f w], waits for
    all workers to finish phase 0, executes [g w], and so on. The
    barrier is a full memory fence (mutex-protected), so writes made by
    any worker in one phase are visible to every worker in the next —
    the derive/exchange discipline of the sharded fixpoint. A worker
    that raises skips its remaining phases but keeps meeting the
    barriers, so siblings don't deadlock; the first exception (in worker
    order) is re-raised on the caller, as with {!run}. *)
val run_phases : t -> (int -> unit) array -> unit

(** {1 Process-global pool}

    The CLI sets the job count once; evaluation code checks it out for
    the duration of a fixpoint. *)

(** [set_jobs n] declares that subsequent evaluations may use [n]
    workers ([n >= 1]; 1 means sequential). Replaces (and shuts down)
    any previously created pool. Raises [Invalid_argument] on [n < 1].
    Must not be called while the pool is {!acquire}d. *)
val set_jobs : int -> unit

(** [jobs ()] is the last value passed to {!set_jobs} (default 1). *)
val jobs : unit -> int

(** [acquire ()] checks out the global pool: [Some p] iff jobs > 1 and
    no other computation currently holds it. The caller must {!release}
    it (use [Fun.protect]). Callers finding [None] run sequentially. *)
val acquire : unit -> t option

(** [release p] returns the pool checked out by {!acquire}. *)
val release : t -> unit

(** [fallback_count ()] is the number of times {!acquire} found the pool
    busy since process start — each one is a nested fixpoint that
    degraded to sequential evaluation. Callers on the degraded path also
    report the trace counter [par.pool.fallbacks], so the degradation is
    visible per run, not just process-wide. *)
val fallback_count : unit -> int
