open Relational

(* An [n]×[n] grid of outboxes for batched cross-shard tuple routing.
   Cell (src, dst) is written only by the worker owning shard [src]
   (during a derive phase) and read only by the worker owning shard
   [dst] (during the following exchange phase); the pool barrier between
   the phases is the only synchronisation needed, so posting and
   draining touch no locks and no atomics. *)

module Key = struct
  type t = int array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec eq i =
      i >= Array.length a
      || (Array.unsafe_get a i = Array.unsafe_get b i && eq (i + 1))
    in
    eq 0

  let hash = Tuple.hash_ids
end

module Tbl = Hashtbl.Make (Key)

(* Per-cell state: tuple buffers per predicate (in first-post order, so
   draining is deterministic given the poster's derivation order), a
   per-predicate seen-set for duplicate suppression, and a cumulative
   post count. The seen-sets survive [drain] — a given (pred, tuple) is
   shipped on a given (src, dst) edge at most once over the exchange's
   lifetime, which is what keeps re-derivations in later rounds off the
   wire. *)
type cell = {
  mutable order : string list;  (* reversed first-post order *)
  bufs : (string, Tuple.t list ref * unit Tbl.t) Hashtbl.t;
  mutable count : int;
}

type t = { nshards : int; cells : cell array }

let create nshards =
  if nshards < 1 then invalid_arg "Parallel.Exchange.create: nshards >= 1";
  {
    nshards;
    cells =
      Array.init (nshards * nshards) (fun _ ->
          { order = []; bufs = Hashtbl.create 4; count = 0 });
  }

let shards t = t.nshards

let cell t ~src ~dst =
  if src < 0 || src >= t.nshards || dst < 0 || dst >= t.nshards then
    invalid_arg "Parallel.Exchange: shard out of range";
  t.cells.((src * t.nshards) + dst)

let post t ~src ~dst pred tup =
  let c = cell t ~src ~dst in
  let lst, seen =
    match Hashtbl.find_opt c.bufs pred with
    | Some s -> s
    | None ->
        let s = (ref [], Tbl.create 64) in
        Hashtbl.add c.bufs pred s;
        c.order <- pred :: c.order;
        s
  in
  let ids = Tuple.ids tup in
  if Tbl.mem seen ids then false
  else (
    Tbl.replace seen ids ();
    lst := tup :: !lst;
    c.count <- c.count + 1;
    true)

let drain t ~dst f =
  for src = 0 to t.nshards - 1 do
    let c = cell t ~src ~dst in
    List.iter
      (fun pred ->
        match Hashtbl.find_opt c.bufs pred with
        | None -> ()
        | Some (lst, _) ->
            (match !lst with [] -> () | ts -> f ~src ~pred (List.rev ts));
            lst := [])
      (List.rev c.order)
  done

let total_posted t = Array.fold_left (fun n c -> n + c.count) 0 t.cells
