(** Batched cross-shard tuple routing: an [n]×[n] grid of per-predicate
    outboxes, the communication half of the shard-owned fixpoint (and of
    the bulk-synchronous netlog evaluator, where peers are the shards).

    Ownership discipline (the reason this needs no locks): cell
    [(src, dst)] is written only by the worker owning shard [src] and
    read only by the worker owning shard [dst], in different phases of a
    {!Pool.run_phases} job — the phase barrier publishes the writes.
    Used sequentially (one caller playing every shard) it is just a
    deterministic routing table. *)

open Relational

type t

(** [create n] builds the exchange for [n] shards. *)
val create : int -> t

(** [shards t] is [n]. *)
val shards : t -> int

(** [post t ~src ~dst pred tup] enqueues [tup] for predicate [pred] on
    the [(src, dst)] edge. Returns [false] (and enqueues nothing) if the
    same fact was already posted on this edge at any point — per-edge
    duplicate suppression persists across {!drain}s, so a fact travels a
    given edge at most once over the exchange's lifetime. *)
val post : t -> src:int -> dst:int -> string -> Tuple.t -> bool

(** [drain t ~dst f] delivers every pending batch addressed to [dst]:
    sources in ascending order, predicates in first-post order, tuples
    in post order — deterministic given the posting order. Drained
    buffers are emptied (the duplicate-suppression memory is kept). *)
val drain :
  t -> dst:int -> (src:int -> pred:string -> Tuple.t list -> unit) -> unit

(** [total_posted t] is the cumulative number of accepted posts — the
    cross-shard tuple traffic, reported as [par.exchanged_tuples]. *)
val total_posted : t -> int
