(** Database instances: finite maps from relation names to relation
    instances.

    Absent relations are treated as empty, which matches the paper's
    convention that an instance over a schema assigns a (possibly empty)
    relation to every relation symbol. *)

type t

val empty : t

(** [find name i] is the relation bound to [name] ([Relation.empty] if
    unbound). *)
val find : string -> t -> Relation.t

(** [set name r i] binds relation [name] to [r] (replacing any previous
    binding). Binding an empty relation removes the entry. *)
val set : string -> Relation.t -> t -> t

(** [add_fact name tup i] inserts one tuple into relation [name].
    @raise Invalid_argument on arity mismatch with existing tuples. *)
val add_fact : string -> Tuple.t -> t -> t

(** [add_all name tups i] inserts a batch of tuples into relation [name]
    with a single bulk union.
    @raise Invalid_argument on arity mismatch with existing tuples. *)
val add_all : string -> Tuple.t list -> t -> t

(** [remove_fact name tup i] deletes one tuple (no-op if absent). *)
val remove_fact : string -> Tuple.t -> t -> t

(** [mem_fact name tup i] tests membership of a fact. *)
val mem_fact : string -> Tuple.t -> t -> bool

(** [of_list bindings] builds an instance from name/rows pairs. *)
val of_list : (string * Value.t list list) list -> t

(** [names i] lists the names of non-empty relations, sorted. *)
val names : t -> string list

(** [restrict names i] keeps only the listed relations. *)
val restrict : string list -> t -> t

(** [drop names i] removes the listed relations. *)
val drop : string list -> t -> t

(** [union a b] takes the per-relation union.
    @raise Invalid_argument on arity conflicts. *)
val union : t -> t -> t

(** [diff a b] takes the per-relation difference [a \ b]. *)
val diff : t -> t -> t

(** [subset a b]: every fact of [a] is a fact of [b]. *)
val subset : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

(** [total_facts i] counts facts across all relations. *)
val total_facts : t -> int

(** [adom i] is the active domain: every value occurring in some fact,
    sorted, without duplicates. Memoized per instance value (the same
    order-on-demand pattern as {!Relation}'s sorted view): the scan over
    all relations runs at most once per instance, and every mutation
    ({!set}, {!add_fact}, {!remove_fact}, ...) yields a fresh instance
    whose memo is recomputed on first use. *)
val adom : t -> Value.t list

(** [fold f i acc] folds over [(name, relation)] bindings in name order. *)
val fold : (string -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a

(** [map_values f i] applies a value renaming to every fact of every
    relation — the tool for mechanical genericity checks: a query [q] is
    generic iff [q (map_values f i) = map_values f (q i)] for bijective
    [f] fixing the query's constants. *)
val map_values : (Value.t -> Value.t) -> t -> t

(** [schema i] infers a schema from the non-empty relations. *)
val schema : t -> Schema.t

(** [pp] prints every relation as [name(v1, ..., vk).] fact lines, sorted —
    the same surface syntax {!parse_facts} reads. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [parse_facts text] reads fact lines of the form [pred(v, ...).]
    (trailing dot optional; [%] and [//] start comments; blank lines
    ignored). @raise Failure with a line number on malformed input. *)
val parse_facts : string -> t
