(* Semiring-annotated relations: a plain [Relation.t] (the support)
   plus a side-car map from interned-id vectors to annotation values.

   The side-car shape is the tentpole's zero-regression story: the trie,
   its memoized sorted views and every set engine stay byte-identical —
   Boolean evaluation never allocates or consults a map — while the
   annotated paths carry the same tuples with their values alongside.

   The operators mirror the positive fragment of {!Algebra}:
   union combines coinciding tuples with ⊕, join/product combine the
   matched operands with ⊗, and projection ⊕-aggregates the tuples that
   collapse onto one output row — the K-relation semantics of Green,
   Karvounarakis & Tannen carried over the interned core. These
   interpreters favor clarity over fusion: the annotated paths serve
   provenance queries and oracles, not the fixpoint hot loop. *)

module KTbl = Hashtbl.Make (struct
  type t = int array

  let equal (a : int array) b =
    let la = Array.length a in
    la = Array.length b
    &&
    let rec eq i =
      i = la || (Array.unsafe_get a i = Array.unsafe_get b i && eq (i + 1))
    in
    eq 0

  let hash = Tuple.hash_ids
end)

type map = Semiring.v KTbl.t

let create_map ?(size = 64) () : map = KTbl.create size
let set (m : map) ids v = KTbl.replace m ids v

let find (sr : Semiring.t) (m : map) ids =
  match KTbl.find_opt m ids with Some v -> v | None -> sr.Semiring.zero

(* m(ids) ← m(ids) ⊕ v *)
let combine (sr : Semiring.t) (m : map) ids v =
  match KTbl.find_opt m ids with
  | Some old -> KTbl.replace m ids (sr.Semiring.plus old v)
  | None -> KTbl.replace m ids v

let fold f (m : map) acc = KTbl.fold f m acc
let cardinal (m : map) = KTbl.length m

type rel = { rel : Relation.t; ann : map }

let annotation sr r tup = find sr r.ann (Tuple.ids tup)

let empty = { rel = Relation.empty; ann = KTbl.create 1 }

let of_relation (sr : Semiring.t) rel f =
  let ann = KTbl.create (max 16 (2 * Relation.cardinal rel)) in
  Relation.unordered_iter
    (fun t ->
      let v = f t in
      if not (Semiring.is_zero sr v) then KTbl.replace ann (Tuple.ids t) v)
    rel;
  (* zero-annotated tuples are absent by the K-relation definition *)
  let rel =
    if KTbl.length ann = Relation.cardinal rel then rel
    else Relation.filter (fun t -> KTbl.mem ann (Tuple.ids t)) rel
  in
  { rel; ann }

let union sr a b =
  let ann = KTbl.create (max 16 (cardinal a.ann + cardinal b.ann)) in
  KTbl.iter (fun ids v -> KTbl.replace ann ids v) a.ann;
  KTbl.iter (fun ids v -> combine sr ann ids v) b.ann;
  { rel = Relation.union a.rel b.rel; ann }

let select pred a =
  let rel = Relation.filter pred a.rel in
  if Relation.cardinal rel = Relation.cardinal a.rel then a
  else
    let ann = KTbl.create (max 16 (2 * Relation.cardinal rel)) in
    Relation.unordered_iter
      (fun t ->
        match KTbl.find_opt a.ann (Tuple.ids t) with
        | Some v -> KTbl.replace ann (Tuple.ids t) v
        | None -> ())
      rel;
    { rel; ann }

let project sr cols a =
  let cols = Array.of_list cols in
  let ann = KTbl.create (max 16 (2 * Relation.cardinal a.rel)) in
  Relation.unordered_iter
    (fun t ->
      let out = Array.map (fun c -> Tuple.id t c) cols in
      combine sr ann out (find sr a.ann (Tuple.ids t)))
    a.rel;
  let rel =
    Relation.of_distinct (KTbl.fold (fun ids _ acc -> Tuple.of_ids ids :: acc) ann [])
  in
  { rel; ann }

(* Hash join on [pairs], full-width output (left ++ right), annotations
   combined with ⊗. [Product] is the [pairs = []] case: every right
   tuple matches the one empty key. *)
let join sr pairs a b =
  match (Relation.arity a.rel, Relation.arity b.rel) with
  | None, _ | _, None -> empty
  | Some _, Some _ ->
      let lcols = Array.of_list (List.map fst pairs)
      and rcols = Array.of_list (List.map snd pairs) in
      let index : Tuple.t list KTbl.t = KTbl.create 64 in
      Relation.unordered_iter
        (fun t ->
          let k = Array.map (fun c -> Tuple.id t c) rcols in
          KTbl.replace index k
            (t :: (try KTbl.find index k with Not_found -> [])))
        b.rel;
      let out = ref [] in
      let ann = KTbl.create 64 in
      Relation.unordered_iter
        (fun lt ->
          let k = Array.map (fun c -> Tuple.id lt c) lcols in
          match KTbl.find_opt index k with
          | None -> ()
          | Some rts ->
              let lv = find sr a.ann (Tuple.ids lt) in
              List.iter
                (fun rt ->
                  let t = Tuple.concat lt rt in
                  out := t :: !out;
                  KTbl.replace ann (Tuple.ids t)
                    (sr.Semiring.times lv (find sr b.ann (Tuple.ids rt))))
                rts)
        a.rel;
      { rel = Relation.of_distinct !out; ann }

let product sr a b = join sr [] a b

(* Intersection = join over all columns projected back: coinciding
   tuples combine with ⊗. *)
let inter sr a b =
  let rel = Relation.inter a.rel b.rel in
  let ann = KTbl.create (max 16 (2 * Relation.cardinal rel)) in
  Relation.unordered_iter
    (fun t ->
      let ids = Tuple.ids t in
      KTbl.replace ann ids
        (sr.Semiring.times (find sr a.ann ids) (find sr b.ann ids)))
    rel;
  { rel; ann }

(* Semijoin is a support filter: surviving left tuples keep their own
   annotation (bag semantics — the right side contributes existence,
   not multiplicity). This matches how the demand compiler uses
   semijoins as guards. *)
let semijoin pairs a b =
  let lcols = Array.of_list (List.map fst pairs)
  and rcols = Array.of_list (List.map snd pairs) in
  let index : unit KTbl.t = KTbl.create 64 in
  Relation.unordered_iter
    (fun t -> KTbl.replace index (Array.map (fun c -> Tuple.id t c) rcols) ())
    b.rel;
  select (fun lt -> KTbl.mem index (Array.map (fun c -> Tuple.id lt c) lcols)) a

(* --- annotated evaluation of Algebra plans ------------------------- *)

exception Unsupported of string

(* The positive (monotone) fragment generalizes; the non-monotone
   operators have no K-relation semantics for an arbitrary semiring
   (difference needs additive inverses), so under a non-Boolean
   instance they raise — the explicit, tested boundary. Under [Bool]
   the whole expression delegates to the untouched set evaluator and
   every tuple is annotated [true]: the set semantics IS the Boolean
   instance, monomorphized. *)
let eval (sr : Semiring.t) ~leaf inst e =
  if sr.Semiring.tag = Semiring.Bool then
    of_relation sr (Algebra.eval inst e) (fun _ -> Semiring.B true)
  else
    let rec ev (e : Algebra.expr) =
      match e with
      | Algebra.Rel name ->
          let r = Instance.find name inst in
          of_relation sr r (leaf name)
      | Algebra.Const r -> of_relation sr r (fun _ -> sr.Semiring.one)
      | Algebra.Project (cols, e0) -> project sr cols (ev e0)
      | Algebra.Select (c, e0) -> select (Algebra.holds_cond c) (ev e0)
      | Algebra.Product (l, r) -> product sr (ev l) (ev r)
      | Algebra.Join (pairs, l, r) -> join sr pairs (ev l) (ev r)
      | Algebra.Union (l, r) -> union sr (ev l) (ev r)
      | Algebra.Inter (l, r) -> inter sr (ev l) (ev r)
      | Algebra.Semijoin (pairs, l, r) -> semijoin pairs (ev l) (ev r)
      | Algebra.Diff _ -> unsupported "difference"
      | Algebra.Antijoin _ -> unsupported "antijoin"
      | Algebra.Complement _ -> unsupported "complement"
      | Algebra.Adom -> unsupported "adom"
    and unsupported op =
      raise
        (Unsupported
           (Printf.sprintf
              "Annotated.eval: %s has no %s-semiring semantics (only the \
               positive fragment annotates; use --annot bool)"
              op
              (Semiring.name_of sr.Semiring.tag)))
    in
    ev e
