(** Constant tuples.

    A tuple is an immutable flat array of interned value ids (see
    {!Value.Intern}) carrying its precomputed hash. Positions play the
    role of attributes (the paper's named perspective is recovered by
    {!Schema} which maps attribute names to positions). Equality and
    hashing never walk the constants' structure; components are decoded
    back to {!Value.t} only on demand. *)

type t

(** [make vs] creates a tuple from an array of values, interning each
    component. Later mutation of [vs] does not affect the tuple. *)
val make : Value.t array -> t

(** [of_list vs] creates a tuple from a list of values. *)
val of_list : Value.t list -> t

val to_list : t -> Value.t list

(** [arity t] is the number of components. *)
val arity : t -> int

(** [get t i] is the [i]-th component (0-based), decoded.
    @raise Invalid_argument if [i] is out of bounds. *)
val get : t -> int -> Value.t

(** {1 Interned view} — the relational core's fast path. *)

(** [of_ids ids] builds a tuple directly from interned ids. The array is
    owned by the tuple afterwards; every entry must have been returned by
    {!Value.Intern.id}. *)
val of_ids : int array -> t

(** [ids t] is the underlying id array (not a copy; do not mutate). *)
val ids : t -> int array

(** [id t i] is the interned id of the [i]-th component.
    @raise Invalid_argument if [i] is out of bounds. *)
val id : t -> int -> int

(** [hash_ids ids] is the hash a tuple built from [ids] would carry —
    for probing hashed containers without constructing the tuple. *)
val hash_ids : int array -> int

(** [equal_ids t ids] tests component-wise id equality against a raw id
    array. *)
val equal_ids : t -> int array -> bool

(** Lexicographic {!Value.compare} order; tuples of different arities are
    ordered by arity first so that mixed sets behave sanely. *)
val compare : t -> t -> int

(** Component-wise id equality — O(arity) int compares, hash-gated. *)
val equal : t -> t -> bool

(** The precomputed hash (a field read). *)
val hash : t -> int

(** [project t cols] keeps components at positions [cols], in that order
    (repetition allowed). *)
val project : t -> int list -> t

(** [concat a b] juxtaposes two tuples. *)
val concat : t -> t -> t

(** [values t] decodes the components into a fresh array. *)
val values : t -> Value.t array

(** [exists p t] tests whether some component satisfies [p]. *)
val exists : (Value.t -> bool) -> t -> bool

(** [rename t perm] reorders: component [i] of the result is component
    [perm.(i)] of [t]. *)
val rename : t -> int array -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
