type t =
  | Int of int
  | Str of string
  | Sym of string
  | New of int

let rank = function Int _ -> 0 | Str _ -> 1 | Sym _ -> 2 | New _ -> 3

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y | Sym x, Sym y -> String.compare x y
  | New x, New y -> Int.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* Tag and payload are mixed directly — [Hashtbl.hash] on an immediate or
   a string allocates nothing, unlike the former [Hashtbl.hash (tag, v)]
   which boxed a tuple per call. *)
let hash = function
  | Int n -> (Hashtbl.hash n * 4) land max_int
  | Str s -> ((Hashtbl.hash s * 4) + 1) land max_int
  | Sym s -> ((Hashtbl.hash s * 4) + 2) land max_int
  | New n -> ((Hashtbl.hash n * 4) + 3) land max_int

let is_invented = function New _ -> true | _ -> false
let int n = Int n
let str s = Str s
let sym s = Sym s

let pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | Sym s -> Format.pp_print_string ppf s
  | New n -> Format.fprintf ppf "\xce\xbd%d" n

let to_string v = Format.asprintf "%a" pp v

let parse s =
  let n = String.length s in
  if n = 0 then invalid_arg "Value.parse: empty string"
  else if s.[0] = '"' then
    (* [%n] reports how much [%S] consumed: anything left over means the
       literal had trailing garbage (e.g. ["ab"cd]), which the former
       first/last-quote guard accepted and silently truncated to [ab]. *)
    match Scanf.sscanf_opt s "%S%n" (fun v k -> (v, k)) with
    | Some (v, k) when k = n -> Str v
    | Some _ | None ->
        invalid_arg
          (Printf.sprintf "Value.parse: malformed string literal %s" s)
  else
    match int_of_string_opt s with Some i -> Int i | None -> Sym s

module Intern = struct
  module H = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)

  (* One process-wide table: ids are dense, allocated in first-intern
     order, and never recycled, so an id is a stable proxy for its value
     for the lifetime of the process.

     Domain safety: the hash table (and hence every [id] call) is
     guarded by [lock]; readers never touch it. [of_id] is lock-free:
     the id -> value direction lives in a snapshot array published
     through the [rev] atomic, and a slot becomes visible only when
     [count] — written last, read first — covers it. Growing copies
     into a fresh array and publishes it via [rev] before the new slot
     is filled; since readers load [count] (acquire) before [rev], an
     id below the count they observed always lands in a live slot of
     whichever array they see. *)
  let lock = Mutex.create ()
  let tbl : int H.t = H.create 4096
  let rev = Atomic.make (Array.make 4096 (Int 0))
  let count = Atomic.make 0
  let hit_count = Atomic.make 0

  let id v =
    Mutex.lock lock;
    match H.find_opt tbl v with
    | Some i ->
        Atomic.incr hit_count;
        Mutex.unlock lock;
        i
    | None ->
        let i = Atomic.get count in
        let arr = Atomic.get rev in
        let arr =
          if i = Array.length arr then (
            let bigger = Array.make (2 * i) (Int 0) in
            Array.blit arr 0 bigger 0 i;
            Atomic.set rev bigger;
            bigger)
          else arr
        in
        arr.(i) <- v;
        H.add tbl v i;
        Atomic.set count (i + 1);
        Mutex.unlock lock;
        i

  let of_id i =
    if i < 0 || i >= Atomic.get count then
      invalid_arg (Printf.sprintf "Value.Intern.of_id: unknown id %d" i)
    else Array.unsafe_get (Atomic.get rev) i

  let compare_ids a b = if a = b then 0 else compare (of_id a) (of_id b)
  let size () = Atomic.get count
  let hits () = Atomic.get hit_count
end

module Gen = struct
  type t = int ref

  let create () = ref 0

  let fresh g =
    let v = New !g in
    incr g;
    v

  let count g = !g
end
