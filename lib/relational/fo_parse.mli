(** Surface syntax for FO queries (the CLI's [fo] subcommand).

    [formula_of_string "exists Z (G(X, Z) & G(Z, Y))"] parses the obvious
    formula. Identifiers starting with an uppercase letter or underscore
    are variables (the Datalog surface convention); other identifiers,
    integers and quoted strings are constants read by {!Value.parse}.
    Connectives: [!]/[not], [&]/[and], [|]/[or], [->] (right-associative),
    [=], [!=], [exists X, Y (...)], [forall X (...)], [true], [false]. *)

exception Parse_error of string

val formula_of_string : string -> Fo.formula
