type cond =
  | True
  | Col_eq_col of int * int
  | Col_eq_const of int * Value.t
  | Col_lt_col of int * int
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

type expr =
  | Rel of string
  | Const of Relation.t
  | Project of int list * expr
  | Select of cond * expr
  | Product of expr * expr
  | Join of (int * int) list * expr * expr
  | Union of expr * expr
  | Diff of expr * expr
  | Inter of expr * expr

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let rec cond_max_col = function
  | True -> -1
  | Col_eq_col (i, j) | Col_lt_col (i, j) -> max i j
  | Col_eq_const (i, _) -> i
  | Not c -> cond_max_col c
  | And (a, b) | Or (a, b) -> max (cond_max_col a) (cond_max_col b)

let rec arity schema e =
  match e with
  | Rel name -> (
      match Schema.find name schema with
      | Some r -> r.Schema.arity
      | None -> type_error "unknown relation %s" name)
  | Const r -> ( match Relation.arity r with Some a -> a | None -> 0)
  | Project (cols, e) ->
      let a = arity schema e in
      List.iter
        (fun c ->
          if c < 0 || c >= a then
            type_error "projection column %d out of range (arity %d)" c a)
        cols;
      List.length cols
  | Select (c, e) ->
      let a = arity schema e in
      if cond_max_col c >= a then
        type_error "selection column %d out of range (arity %d)"
          (cond_max_col c) a;
      a
  | Product (l, r) -> arity schema l + arity schema r
  | Join (pairs, l, r) ->
      let al = arity schema l and ar = arity schema r in
      List.iter
        (fun (i, j) ->
          if i < 0 || i >= al then
            type_error "join column %d out of left range (arity %d)" i al;
          if j < 0 || j >= ar then
            type_error "join column %d out of right range (arity %d)" j ar)
        pairs;
      al + ar
  | Union (l, r) | Diff (l, r) | Inter (l, r) ->
      let al = arity schema l and ar = arity schema r in
      if al <> ar then
        type_error "set operation on arities %d and %d" al ar;
      al

let rec holds_cond c t =
  match c with
  | True -> true
  | Col_eq_col (i, j) -> Value.equal (Tuple.get t i) (Tuple.get t j)
  | Col_eq_const (i, v) -> Value.equal (Tuple.get t i) v
  | Col_lt_col (i, j) -> Value.compare (Tuple.get t i) (Tuple.get t j) < 0
  | Not c -> not (holds_cond c t)
  | And (a, b) -> holds_cond a t && holds_cond b t
  | Or (a, b) -> holds_cond a t || holds_cond b t

(* Join keys are projected interned-id vectors: hashing and equality are
   flat int-array operations, never structural walks over values. *)
module KTbl = Hashtbl.Make (struct
  type t = int array

  let equal (a : int array) b =
    let la = Array.length a in
    la = Array.length b
    &&
    let rec eq i =
      i = la || (Array.unsafe_get a i = Array.unsafe_get b i && eq (i + 1))
    in
    eq 0

  let hash = Tuple.hash_ids
end)

(* Hash join on the given column pairs. *)
let equijoin pairs left right =
  let key cols t = Array.map (fun c -> Tuple.id t c) cols in
  let lcols = Array.of_list (List.map fst pairs)
  and rcols = Array.of_list (List.map snd pairs) in
  let index : Tuple.t list KTbl.t = KTbl.create 64 in
  Relation.unordered_iter
    (fun t ->
      let k = key rcols t in
      KTbl.replace index k (t :: (try KTbl.find index k with Not_found -> [])))
    right;
  Relation.unordered_fold
    (fun lt acc ->
      match KTbl.find_opt index (key lcols lt) with
      | None -> acc
      | Some rts ->
          List.fold_left
            (fun acc rt -> Relation.add (Tuple.concat lt rt) acc)
            acc rts)
    left Relation.empty

let rec eval inst e =
  match e with
  | Rel name -> Instance.find name inst
  | Const r -> r
  | Project (cols, e) ->
      let r = eval inst e in
      (match Relation.arity r with
      | Some a ->
          List.iter
            (fun c ->
              if c < 0 || c >= a then
                type_error "projection column %d out of range (arity %d)" c a)
            cols
      | None -> ());
      Relation.map (fun t -> Tuple.project t cols) r
  | Select (c, e) -> Relation.filter (holds_cond c) (eval inst e)
  | Product (l, r) ->
      let rl = eval inst l and rr = eval inst r in
      Relation.fold
        (fun lt acc ->
          Relation.fold
            (fun rt acc -> Relation.add (Tuple.concat lt rt) acc)
            rr acc)
        rl Relation.empty
  | Join (pairs, l, r) -> equijoin pairs (eval inst l) (eval inst r)
  | Union (l, r) -> Relation.union (eval inst l) (eval inst r)
  | Diff (l, r) -> Relation.diff (eval inst l) (eval inst r)
  | Inter (l, r) -> Relation.inter (eval inst l) (eval inst r)

let rec pp_cond ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Col_eq_col (i, j) -> Format.fprintf ppf "$%d = $%d" i j
  | Col_eq_const (i, v) -> Format.fprintf ppf "$%d = %a" i Value.pp v
  | Col_lt_col (i, j) -> Format.fprintf ppf "$%d < $%d" i j
  | Not c -> Format.fprintf ppf "\xc2\xac(%a)" pp_cond c
  | And (a, b) -> Format.fprintf ppf "(%a \xe2\x88\xa7 %a)" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf ppf "(%a \xe2\x88\xa8 %a)" pp_cond a pp_cond b

let rec pp ppf = function
  | Rel n -> Format.pp_print_string ppf n
  | Const r -> Format.fprintf ppf "const%a" Relation.pp r
  | Project (cols, e) ->
      Format.fprintf ppf "\xcf\x80[%a](%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Format.pp_print_int)
        cols pp e
  | Select (c, e) -> Format.fprintf ppf "\xcf\x83[%a](%a)" pp_cond c pp e
  | Product (l, r) -> Format.fprintf ppf "(%a \xc3\x97 %a)" pp l pp r
  | Join (pairs, l, r) ->
      Format.fprintf ppf "(%a \xe2\x8b\x88[%a] %a)" pp l
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           (fun ppf (i, j) -> Format.fprintf ppf "%d=%d" i j))
        pairs pp r
  | Union (l, r) -> Format.fprintf ppf "(%a \xe2\x88\xaa %a)" pp l pp r
  | Diff (l, r) -> Format.fprintf ppf "(%a \xe2\x88\x92 %a)" pp l pp r
  | Inter (l, r) -> Format.fprintf ppf "(%a \xe2\x88\xa9 %a)" pp l pp r
