type cond =
  | True
  | Col_eq_col of int * int
  | Col_eq_const of int * Value.t
  | Col_lt_col of int * int
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

type expr =
  | Rel of string
  | Const of Relation.t
  | Project of int list * expr
  | Select of cond * expr
  | Product of expr * expr
  | Join of (int * int) list * expr * expr
  | Union of expr * expr
  | Diff of expr * expr
  | Inter of expr * expr
  | Semijoin of (int * int) list * expr * expr
  | Antijoin of (int * int) list * expr * expr
  | Adom
  | Complement of int * expr * expr

exception Type_error of string

let rec pp_cond ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Col_eq_col (i, j) -> Format.fprintf ppf "$%d = $%d" i j
  | Col_eq_const (i, v) -> Format.fprintf ppf "$%d = %a" i Value.pp v
  | Col_lt_col (i, j) -> Format.fprintf ppf "$%d < $%d" i j
  | Not c -> Format.fprintf ppf "\xc2\xac(%a)" pp_cond c
  | And (a, b) -> Format.fprintf ppf "(%a \xe2\x88\xa7 %a)" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf ppf "(%a \xe2\x88\xa8 %a)" pp_cond a pp_cond b

let pp_pairs ppf pairs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
    (fun ppf (i, j) -> Format.fprintf ppf "%d=%d" i j)
    ppf pairs

let rec pp ppf = function
  | Rel n -> Format.pp_print_string ppf n
  | Const r -> Format.fprintf ppf "const%a" Relation.pp r
  | Project (cols, e) ->
      Format.fprintf ppf "\xcf\x80[%a](%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Format.pp_print_int)
        cols pp e
  | Select (c, e) -> Format.fprintf ppf "\xcf\x83[%a](%a)" pp_cond c pp e
  | Product (l, r) -> Format.fprintf ppf "(%a \xc3\x97 %a)" pp l pp r
  | Join (pairs, l, r) ->
      Format.fprintf ppf "(%a \xe2\x8b\x88[%a] %a)" pp l pp_pairs pairs pp r
  | Union (l, r) -> Format.fprintf ppf "(%a \xe2\x88\xaa %a)" pp l pp r
  | Diff (l, r) -> Format.fprintf ppf "(%a \xe2\x88\x92 %a)" pp l pp r
  | Inter (l, r) -> Format.fprintf ppf "(%a \xe2\x88\xa9 %a)" pp l pp r
  | Semijoin (pairs, l, r) ->
      Format.fprintf ppf "(%a \xe2\x8b\x89[%a] %a)" pp l pp_pairs pairs pp r
  | Antijoin (pairs, l, r) ->
      Format.fprintf ppf "(%a \xe2\x96\xb7[%a] %a)" pp l pp_pairs pairs pp r
  | Adom -> Format.pp_print_string ppf "adom"
  | Complement (k, dom, e) ->
      Format.fprintf ppf "\xe2\x88\x81%d[%a](%a)" k pp dom pp e

(* Every type error names the offending sub-expression, so a failure
   deep inside a compiled plan is attributable without a debugger. *)
let type_error e fmt =
  Format.kasprintf
    (fun s -> raise (Type_error (Format.asprintf "%s in %a" s pp e)))
    fmt

let rec cond_max_col = function
  | True -> -1
  | Col_eq_col (i, j) | Col_lt_col (i, j) -> max i j
  | Col_eq_const (i, _) -> i
  | Not c -> cond_max_col c
  | And (a, b) | Or (a, b) -> max (cond_max_col a) (cond_max_col b)

let check_pairs err pairs al ar =
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= al then
        err (Printf.sprintf "join column %d out of left range (arity %d)" i al);
      if j < 0 || j >= ar then
        err
          (Printf.sprintf "join column %d out of right range (arity %d)" j ar))
    pairs

let rec arity schema e =
  match e with
  | Rel name -> (
      match Schema.find name schema with
      | Some r -> r.Schema.arity
      | None -> type_error e "unknown relation %s" name)
  | Const r -> ( match Relation.arity r with Some a -> a | None -> 0)
  | Project (cols, e0) ->
      let a = arity schema e0 in
      List.iter
        (fun c ->
          if c < 0 || c >= a then
            type_error e "projection column %d out of range (arity %d)" c a)
        cols;
      List.length cols
  | Select (c, e0) ->
      let a = arity schema e0 in
      if cond_max_col c >= a then
        type_error e "selection column %d out of range (arity %d)"
          (cond_max_col c) a;
      a
  | Product (l, r) -> arity schema l + arity schema r
  | Join (pairs, l, r) ->
      let al = arity schema l and ar = arity schema r in
      check_pairs (fun s -> type_error e "%s" s) pairs al ar;
      al + ar
  | Semijoin (pairs, l, r) | Antijoin (pairs, l, r) ->
      let al = arity schema l and ar = arity schema r in
      check_pairs (fun s -> type_error e "%s" s) pairs al ar;
      al
  | Union (l, r) | Diff (l, r) | Inter (l, r) ->
      let al = arity schema l and ar = arity schema r in
      if al <> ar then type_error e "set operation on arities %d and %d" al ar;
      al
  | Adom -> 1
  | Complement (k, dome, e0) ->
      if k < 0 then type_error e "complement of negative arity %d" k;
      let ad = arity schema dome in
      if ad <> 1 && ad <> 0 then
        type_error e "complement domain has arity %d, expected 1" ad;
      let a0 = arity schema e0 in
      if a0 <> k then
        type_error e "complement of arity-%d operand at arity %d" a0 k;
      k

let rec holds_cond c t =
  match c with
  | True -> true
  | Col_eq_col (i, j) -> Value.equal (Tuple.get t i) (Tuple.get t j)
  | Col_eq_const (i, v) -> Value.equal (Tuple.get t i) v
  | Col_lt_col (i, j) -> Value.compare (Tuple.get t i) (Tuple.get t j) < 0
  | Not c -> not (holds_cond c t)
  | And (a, b) -> holds_cond a t && holds_cond b t
  | Or (a, b) -> holds_cond a t || holds_cond b t

(* Join keys are projected interned-id vectors: hashing and equality are
   flat int-array operations, never structural walks over values. *)
module KTbl = Hashtbl.Make (struct
  type t = int array

  let equal (a : int array) b =
    let la = Array.length a in
    la = Array.length b
    &&
    let rec eq i =
      i = la || (Array.unsafe_get a i = Array.unsafe_get b i && eq (i + 1))
    in
    eq 0

  let hash = Tuple.hash_ids
end)

let key cols t = Array.map (fun c -> Tuple.id t c) cols

(* Single-int keys for one- and two-column keys: interned ids are dense
   table indices far below 2^31, so a pair packs reversibly into one int
   on 64-bit hosts — no array allocation per probe or emitted tuple. *)
let can_pack = Sys.int_size >= 63
let pack2 a b = (a lsl 31) lor b
let unpack2_hi k = k lsr 31
let unpack2_lo k = k land 0x7FFFFFFF

module ITbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal

  let hash x =
    let h = x * 0x9E3779B1 in
    (h lxor (h lsr 29)) land max_int
end)

(* Deduplicating collector for bulk-built results: id arrays go through a
   hash set, the relation is constructed in one [of_distinct] pass. *)
let dedup_to_relation collect =
  let seen : unit KTbl.t = KTbl.create 256 in
  collect (fun ids -> KTbl.replace seen ids ());
  Relation.of_distinct
    (KTbl.fold (fun ids () acc -> Tuple.of_ids ids :: acc) seen [])

(* A deduplicated set of projected join outputs, represented by output
   arity. Probing answers membership without building a relation (see
   the complement fusion in [eval]). *)
type idset =
  | Packed1 of unit ITbl.t
  | Packed2 of unit ITbl.t
  | Keyed of unit KTbl.t

let idset_mem s ids =
  match s with
  | Packed1 t -> ITbl.mem t ids.(0)
  | Packed2 t -> ITbl.mem t (pack2 ids.(0) ids.(1))
  | Keyed t -> KTbl.mem t ids

let idset_tuples s =
  match s with
  | Packed1 t -> ITbl.fold (fun k () acc -> Tuple.of_ids [| k |] :: acc) t []
  | Packed2 t ->
      ITbl.fold
        (fun k () acc -> Tuple.of_ids [| unpack2_hi k; unpack2_lo k |] :: acc)
        t []
  | Keyed t -> KTbl.fold (fun ids () acc -> Tuple.of_ids ids :: acc) t []

(* Hash join on the given column pairs, indexing the smaller operand and
   probing with the larger. Single-column keys go through a plain int
   table. Builds the index once and returns an iterator over matching
   (left, right) tuple pairs. *)
let join_matches ~trace pairs left right =
  let lcols = Array.of_list (List.map fst pairs)
  and rcols = Array.of_list (List.map snd pairs) in
  let swap = Relation.cardinal left < Relation.cardinal right in
  let icols, pcols, indexed, probed =
    if swap then (lcols, rcols, left, right) else (rcols, lcols, right, left)
  in
  Observe.Trace.add trace "ra.join.probes" (Relation.cardinal probed);
  let find =
    if Array.length icols = 1 then (
      let c = icols.(0) and pc = pcols.(0) in
      let index : Tuple.t list ITbl.t = ITbl.create 64 in
      Relation.unordered_iter
        (fun t ->
          let k = Tuple.id t c in
          ITbl.replace index k
            (t :: (try ITbl.find index k with Not_found -> [])))
        indexed;
      fun pt -> try ITbl.find index (Tuple.id pt pc) with Not_found -> [])
    else (
      let index : Tuple.t list KTbl.t = KTbl.create 64 in
      Relation.unordered_iter
        (fun t ->
          let k = key icols t in
          KTbl.replace index k
            (t :: (try KTbl.find index k with Not_found -> [])))
        indexed;
      fun pt -> try KTbl.find index (key pcols pt) with Not_found -> [])
  in
  fun f ->
    Relation.unordered_iter
      (fun pt ->
        List.iter (fun it -> if swap then f it pt else f pt it) (find pt))
      probed

(* Dense-universe variant of [join_matches] for a single-pair join whose
   indexed keys all lie below [b]: the index is a plain array, one load
   per probe instead of a hash lookup. Returns [None] (caller falls back
   to the hash join) when a key escapes the universe. *)
let dense_join_matches ~trace ~b (lc, rc) left right =
  let swap = Relation.cardinal left < Relation.cardinal right in
  let ic, pc, indexed, probed =
    if swap then (lc, rc, left, right) else (rc, lc, right, left)
  in
  let ok = ref true in
  Relation.unordered_iter (fun t -> if Tuple.id t ic >= b then ok := false)
    indexed;
  if not !ok then None
  else begin
    let index = Array.make (max b 1) [] in
    Relation.unordered_iter
      (fun t ->
        let k = Tuple.id t ic in
        index.(k) <- t :: index.(k))
      indexed;
    Observe.Trace.add trace "ra.join.probes" (Relation.cardinal probed);
    Some
      (fun f ->
        Relation.unordered_iter
          (fun pt ->
            let k = Tuple.id pt pc in
            if k < b then
              List.iter (fun it -> if swap then f it pt else f pt it) index.(k))
          probed)
  end

(* Projection fused into the join's probe loop, deduplicated into an
   [idset]; [cols] indexes the concatenation of left and right. The
   full-width join result is never materialized, and for outputs of one
   or two columns neither are per-tuple key arrays. *)
let join_col ~al lt rt c =
  if c < al then Tuple.id lt c else Tuple.id rt (c - al)

let join_set ~trace ~al pairs cols left right =
  let each = join_matches ~trace pairs left right in
  let k = Array.length cols in
  let get = join_col ~al in
  if can_pack && k = 1 then (
    let s = ITbl.create 256 in
    let c0 = cols.(0) in
    each (fun lt rt -> ITbl.replace s (get lt rt c0) ());
    Packed1 s)
  else if can_pack && k = 2 then (
    let s = ITbl.create 256 in
    let c0 = cols.(0) and c1 = cols.(1) in
    each (fun lt rt -> ITbl.replace s (pack2 (get lt rt c0) (get lt rt c1)) ());
    Packed2 s)
  else (
    let s = KTbl.create 256 in
    each (fun lt rt -> KTbl.replace s (Array.map (get lt rt) cols) ());
    Keyed s)

let equijoin ?(trace = Observe.Trace.null) ?proj pairs left right =
  match proj with
  | None ->
      (* distinct (lt, rt) pairs concatenate to distinct tuples *)
      let each = join_matches ~trace pairs left right in
      let out = ref [] in
      each (fun lt rt -> out := Tuple.concat lt rt :: !out);
      Relation.of_distinct !out
  | Some cols ->
      let al = match Relation.arity left with Some a -> a | None -> 0 in
      Relation.of_distinct
        (idset_tuples (join_set ~trace ~al pairs cols left right))

(* Hash semi/antijoin: index the right side's key projection as a set,
   keep the left tuples that do (resp. do not) find a match. One- and
   two-column keys go through packed single-int tables, so the common
   demand-guard semijoins (bound positions of an adorned predicate)
   probe without allocating a key array per tuple. An empty pair list
   projects every right tuple onto the same empty key, so the semijoin
   degenerates into "left if right non-empty" — the compiled guard for
   quantifiers over variables absent from their body. *)
let semi ?(trace = Observe.Trace.null) ~anti pairs left right =
  let lcols = Array.of_list (List.map fst pairs)
  and rcols = Array.of_list (List.map snd pairs) in
  Observe.Trace.add trace "ra.join.probes" (Relation.cardinal left);
  if can_pack && Array.length rcols = 1 then (
    let rc = rcols.(0) and lc = lcols.(0) in
    let index : unit ITbl.t = ITbl.create 64 in
    Relation.unordered_iter (fun t -> ITbl.replace index (Tuple.id t rc) ()) right;
    Relation.filter (fun lt -> ITbl.mem index (Tuple.id lt lc) <> anti) left)
  else if can_pack && Array.length rcols = 2 then (
    let rc0 = rcols.(0) and rc1 = rcols.(1) in
    let lc0 = lcols.(0) and lc1 = lcols.(1) in
    let index : unit ITbl.t = ITbl.create 64 in
    Relation.unordered_iter
      (fun t -> ITbl.replace index (pack2 (Tuple.id t rc0) (Tuple.id t rc1)) ())
      right;
    Relation.filter
      (fun lt -> ITbl.mem index (pack2 (Tuple.id lt lc0) (Tuple.id lt lc1)) <> anti)
      left)
  else (
    let index : unit KTbl.t = KTbl.create 64 in
    Relation.unordered_iter (fun t -> KTbl.replace index (key rcols t) ()) right;
    Relation.filter (fun lt -> KTbl.mem index (key lcols lt) <> anti) left)

let adom_rel inst =
  Relation.of_distinct
    (List.map (fun v -> Tuple.of_list [ v ]) (Instance.adom inst))

(* [identity_pairs pairs k]: the pairs equate column i with column i for
   every i < k — the join key is the whole tuple on both sides, so semi-
   and antijoins of arity-k operands degenerate to set operations. *)
let identity_pairs pairs k =
  List.length pairs = k
  && List.for_all (fun (i, j) -> i = j) pairs
  && List.sort_uniq Int.compare (List.map fst pairs) = List.init k Fun.id

let dom_id_array dom =
  Array.of_list (Relation.fold (fun t acc -> Tuple.id t 0 :: acc) dom [])

(* Binary complements over a small id universe skip hash probing
   entirely: members mark a [b × b] bitset (a few KB — it stays in
   cache), candidates test one bit each. [mark] receives the setter;
   ids outside the universe can never be dom² candidates and are
   ignored. *)
let dense_bound = 4096

let complement2_bitset ~ids ~b ~mark =
  let bits = Bytes.make ((b * b) / 8 + 1) '\000' in
  let set x y =
    if x < b && y < b then (
      let i = (x * b) + y in
      Bytes.unsafe_set bits (i lsr 3)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get bits (i lsr 3)) lor (1 lsl (i land 7)))))
  in
  mark set;
  let out = ref [] in
  Array.iter
    (fun x ->
      Array.iter
        (fun y ->
          let i = (x * b) + y in
          if
            Char.code (Bytes.unsafe_get bits (i lsr 3)) land (1 lsl (i land 7))
            = 0
          then out := Tuple.of_ids [| x; y |] :: !out)
        ids)
    ids;
  Relation.of_distinct !out

(* dom^k minus a membership predicate, enumerated with a reusable id
   buffer and one probe per candidate — never materializing dom^k when
   the predicate already covers it. *)
let complement_probe k dom pred =
  let ids = dom_id_array dom in
  let n = Array.length ids in
  if k > 0 && n = 0 then Relation.empty
  else
    let buf = Array.make k 0 in
    let out = ref [] in
    let rec fill pos =
      if pos = k then (
        if not (pred buf) then out := Tuple.of_ids (Array.copy buf) :: !out)
      else
        for i = 0 to n - 1 do
          buf.(pos) <- ids.(i);
          fill (pos + 1)
        done
    in
    fill 0;
    Relation.of_distinct !out

(* Compose a chain of projections into a single column list over the
   first non-projection operand, validating each step. *)
let rec flatten_project orig cols e0 =
  match e0 with
  | Project (inner, e1) ->
      let n = List.length inner in
      List.iter
        (fun c ->
          if c < 0 || c >= n then
            type_error orig "projection column %d out of range (arity %d)" c n)
        cols;
      flatten_project orig (List.map (List.nth inner) cols) e1
  | _ -> (cols, e0)

let check_proj_cols orig cols a =
  List.iter
    (fun c ->
      if c < 0 || c >= a then
        type_error orig "projection column %d out of range (arity %d)" c a)
    cols

(* [e] as a (flattened) projection over a join with [k] output columns —
   the shape the complement fusion in [eval] evaluates without ever
   building the join's result relation. *)
let projected_join e k =
  match e with
  | Project (pcols, p0) -> (
      match flatten_project e pcols p0 with
      | cols, Join (pairs, l, r) when List.length cols = k ->
          Some (cols, pairs, l, r)
      | _ -> None)
  | _ -> None

(* --- per-operator profiles ------------------------------------------- *)

(* Profiles key on *physical* node identity: a memoized plan is a fixed
   tree, so [==] distinguishes occurrences that are structurally equal
   but sit at different plan positions, while a shared sub-expression
   (e.g. the compiler's one domain expression) accumulates across all
   its parents. [Hashtbl.hash] is structural but bounded, giving a
   stable bucket; [==] resolves collisions. *)
module NodeTbl = Hashtbl.Make (struct
  type t = expr

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type mstats = {
  mutable m_execs : int;
  mutable m_rows_in : int;
  mutable m_rows_out : int;
  mutable m_self : float;
  mutable m_total : float;
}

(* One frame per in-flight profiled node: accumulates the wall time and
   output rows of its *direct* children, so self = total − children and
   rows_in = rows produced into this node during its execution. Fused
   operators (a projection evaluated inside a join's probe loop, a
   complement probed against a join's dedup set) never execute as nodes,
   so their time and rows roll up into the fusing parent — the profile
   reports what actually ran. *)
type frame = { mutable f_child : float; mutable f_rows : int }

type profile = { nodes : mstats NodeTbl.t; mutable pstack : frame list }

type node_stats = {
  execs : int;
  rows_in : int;
  rows_out : int;
  self_ns : int;
  total_ns : int;
}

let profile () = { nodes = NodeTbl.create 64; pstack = [] }

let profile_stats p e =
  Option.map
    (fun m ->
      {
        execs = m.m_execs;
        rows_in = m.m_rows_in;
        rows_out = m.m_rows_out;
        self_ns = int_of_float (m.m_self *. 1e9);
        total_ns = int_of_float (m.m_total *. 1e9);
      })
    (NodeTbl.find_opt p.nodes e)

let eval ?(trace = Observe.Trace.null) ?profile:prof inst e =
  let rec ev e =
    match prof with
    | None -> ev_node e
    | Some p ->
        let fr = { f_child = 0.; f_rows = 0 } in
        let t0 = Observe.Trace.now () in
        p.pstack <- fr :: p.pstack;
        let r =
          try ev_node e
          with ex ->
            (match p.pstack with _ :: tl -> p.pstack <- tl | [] -> ());
            raise ex
        in
        let total = Observe.Trace.now () -. t0 in
        (match p.pstack with _ :: tl -> p.pstack <- tl | [] -> ());
        let rows = Relation.cardinal r in
        (match p.pstack with
        | parent :: _ ->
            parent.f_child <- parent.f_child +. total;
            parent.f_rows <- parent.f_rows + rows
        | [] -> ());
        let m =
          match NodeTbl.find_opt p.nodes e with
          | Some m -> m
          | None ->
              let m =
                {
                  m_execs = 0;
                  m_rows_in = 0;
                  m_rows_out = 0;
                  m_self = 0.;
                  m_total = 0.;
                }
              in
              NodeTbl.add p.nodes e m;
              m
        in
        m.m_execs <- m.m_execs + 1;
        m.m_rows_in <- m.m_rows_in + fr.f_rows;
        m.m_rows_out <- m.m_rows_out + rows;
        m.m_total <- m.m_total +. total;
        m.m_self <- m.m_self +. (total -. fr.f_child);
        r
  and ev_node e =
    match e with
    | Rel name -> Instance.find name inst
    | Const r -> r
    | Project (cols, e0) -> ev_project e cols e0
    | Select (c, e0) -> Relation.filter (holds_cond c) (ev e0)
    | Product (l, r) -> (
        let rl = ev l and rr = ev r in
        match (Relation.arity rl, Relation.arity rr) with
        | None, _ | _, None -> Relation.empty
        | Some 0, _ -> rr (* {()} × r = r *)
        | _, Some 0 -> rl
        | Some _, Some _ ->
            let out = ref [] in
            Relation.unordered_iter
              (fun lt ->
                Relation.unordered_iter
                  (fun rt -> out := Tuple.concat lt rt :: !out)
                  rr)
              rl;
            Relation.of_distinct !out)
    | Join (pairs, l, r) -> equijoin ~trace pairs (ev l) (ev r)
    | Semijoin (pairs, l, r) -> (
        let rl = ev l and rr = ev r in
        match (Relation.arity rl, Relation.arity rr) with
        | Some k, Some kr when kr = k && identity_pairs pairs k ->
            Relation.inter rl rr
        | _ -> semi ~trace ~anti:false pairs rl rr)
    | Antijoin (pairs, (Complement (k, dome, e0) as c), r)
      when identity_pairs pairs k -> (
        (* (dom^k − e) ▷ r over all columns is dom^k − (e ∪ r): one probe
           pass emitting only the surviving tuples, never the complement.
           When r is a projected join, the probe hits the join's dedup
           set directly and the join result relation is never built. *)
        let base = ev e0 in
        (match Relation.arity base with
        | Some a when a <> k ->
            type_error c "complement of arity-%d operand at arity %d" a k
        | _ -> ());
        match projected_join r k with
        | Some (cols, jpairs, jl, jr) -> (
            let rl = ev jl and rr = ev jr in
            match (Relation.arity rl, Relation.arity rr) with
            | Some al, Some ar -> (
                check_proj_cols r cols (al + ar);
                let dom = ev_dom c dome in
                let ids = dom_id_array dom in
                let b = Array.fold_left max (-1) ids + 1 in
                let cols = Array.of_list cols in
                if can_pack && k = 2 && b <= dense_bound then (
                  let c0 = cols.(0) and c1 = cols.(1) in
                  complement2_bitset ~ids ~b ~mark:(fun set ->
                      Relation.unordered_iter
                        (fun t -> set (Tuple.id t 0) (Tuple.id t 1))
                        base;
                      let each =
                        match jpairs with
                        | [ pair ] -> (
                            match dense_join_matches ~trace ~b pair rl rr with
                            | Some each -> each
                            | None -> join_matches ~trace jpairs rl rr)
                        | _ -> join_matches ~trace jpairs rl rr
                      in
                      each (fun lt rt ->
                          set (join_col ~al lt rt c0) (join_col ~al lt rt c1))))
                else
                  let set = join_set ~trace ~al jpairs cols rl rr in
                  complement_probe k dom (fun buf ->
                      Relation.mem_ids buf base || idset_mem set buf))
            | _ -> ev_complement c k dome base (* empty join *))
        | None -> (
            let rr = ev r in
            match Relation.arity rr with
            | None -> ev_complement c k dome base
            | Some a when a = k ->
                ev_complement_probe c k dome (fun buf ->
                    Relation.mem_ids buf base || Relation.mem_ids buf rr)
            | Some _ ->
                semi ~trace ~anti:true pairs (ev_complement c k dome base) rr))
    | Antijoin (pairs, l, r) -> (
        let rl = ev l and rr = ev r in
        match (Relation.arity rl, Relation.arity rr) with
        | Some k, Some kr when kr = k && identity_pairs pairs k ->
            Relation.diff rl rr
        | _ -> semi ~trace ~anti:true pairs rl rr)
    | Union (l, r) -> Relation.union (ev l) (ev r)
    | Diff (l, r) -> Relation.diff (ev l) (ev r)
    | Inter (l, r) -> Relation.inter (ev l) (ev r)
    | Adom -> adom_rel inst
    | Complement (k, dome, e0) -> ev_complement e k dome (ev e0)
  and ev_dom orig dome =
    let dom = ev dome in
    (match Relation.arity dom with
    | Some a when a <> 1 ->
        type_error orig "complement domain has arity %d, expected 1" a
    | _ -> ());
    dom
  and ev_complement_probe orig k dome pred =
    complement_probe k (ev_dom orig dome) pred
  and ev_complement orig k dome r =
    let dom = ev_dom orig dome in
    (match Relation.arity r with
    | Some a when a <> k ->
        type_error orig "complement of arity-%d operand at arity %d" a k
    | _ -> ());
    complement_probe k dom (fun buf -> Relation.mem_ids buf r)
  (* Projection, normalized before evaluation: chains compose into one
     column list, and a projection over a join runs fused inside the
     probe loop — the full-width join result is never built. *)
  and ev_project orig cols e0 =
    let cols, e0 = flatten_project orig cols e0 in
    match e0 with
    | Join (pairs, l, r) -> (
        let rl = ev l and rr = ev r in
        match (Relation.arity rl, Relation.arity rr) with
        | Some al, Some ar ->
            check_proj_cols orig cols (al + ar);
            equijoin ~trace ~proj:(Array.of_list cols) pairs rl rr
        | _ -> Relation.empty)
    | _ ->
        let r = ev e0 in
        (match Relation.arity r with
        | Some a ->
            check_proj_cols orig cols a;
            if cols = List.init a Fun.id then r (* identity *)
            else
              let cols = Array.of_list cols in
              dedup_to_relation (fun emit ->
                  Relation.unordered_iter
                    (fun t -> emit (Array.map (fun c -> Tuple.id t c) cols))
                    r)
        | None -> Relation.empty)
  in
  ev e
