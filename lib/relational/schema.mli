(** Relation and database schemas.

    The paper works with named attributes; positionally-indexed columns are
    equivalent and simpler to evaluate, so a relation schema here is a name,
    an arity, and (optionally) attribute names for display and name-based
    projection. A database schema is a finite set of relation schemas with
    distinct names. *)

type rel = {
  name : string;  (** relation symbol *)
  arity : int;  (** number of columns *)
  attrs : string array option;
      (** optional attribute names; when present, [Array.length = arity] *)
}

(** [rel name arity] makes an unnamed-attribute relation schema.
    @raise Invalid_argument if [arity < 0]. *)
val rel : string -> int -> rel

(** [rel_attrs name attrs] makes a schema with named attributes. *)
val rel_attrs : string -> string list -> rel

(** [attr_index r a] is the position of attribute [a].
    @raise Invalid_argument (naming the relation and attribute) if [r]
    has no such attribute or declares no attribute names. *)
val attr_index : rel -> string -> int

type t
(** A database schema: a finite map from relation names to their schemas. *)

val empty : t

(** [add r s] extends the schema.
    @raise Invalid_argument if a relation of the same name but different
    arity is already present (idempotent on identical re-addition). *)
val add : rel -> t -> t

val of_list : rel list -> t

(** [find name s] looks up a relation schema. *)
val find : string -> t -> rel option

val mem : string -> t -> bool
val names : t -> string list

(** [arity_of name s] is the declared arity.
    @raise Invalid_argument (naming the relation) for unknown
    relations. *)
val arity_of : string -> t -> int

val fold : (rel -> 'a -> 'a) -> t -> 'a -> 'a

(** [union a b] merges two schemas.
    @raise Invalid_argument on conflicting arities. *)
val union : t -> t -> t

val pp : Format.formatter -> t -> unit
