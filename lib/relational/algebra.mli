(** Relational algebra over positional columns.

    The paper's Section 2 recalls the algebra: projection, selection,
    renaming, join, difference, union. We use the positional (unnamed)
    perspective: columns are 0-based indices; renaming is a column
    permutation; the natural join is expressed as an equijoin on explicit
    column pairs followed by projection. These are the standard equivalences
    between the named and unnamed algebras.

    On top of the classical operators, the safe-range compiler
    ({!Fo.compile}) needs semijoin/antijoin, an active-domain leaf, and
    complement-within-domain; all joins execute as hash joins keyed on
    projected interned-id vectors. *)

(** Selection conditions: conjunctions/disjunctions of (in)equalities
    between columns and/or constants. *)
type cond =
  | True
  | Col_eq_col of int * int      (** σ_{i = j} *)
  | Col_eq_const of int * Value.t  (** σ_{i = c} *)
  | Col_lt_col of int * int      (** σ_{i < j} under {!Value.compare} *)
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

(** Algebra expressions. *)
type expr =
  | Rel of string                      (** database relation by name *)
  | Const of Relation.t                (** literal relation *)
  | Project of int list * expr         (** π: keep columns, in order *)
  | Select of cond * expr              (** σ *)
  | Product of expr * expr             (** × *)
  | Join of (int * int) list * expr * expr
      (** equijoin: pairs [(i, j)] equate column [i] of the left operand
          with column [j] of the right; result is the concatenation of the
          operand tuples (no columns dropped) *)
  | Union of expr * expr
  | Diff of expr * expr
  | Inter of expr * expr
  | Semijoin of (int * int) list * expr * expr
      (** ⋉: left tuples with at least one right match on the pairs. An
          empty pair list keeps the left operand iff the right is
          non-empty (every tuple matches on the empty key). *)
  | Antijoin of (int * int) list * expr * expr
      (** ▷: left tuples with no right match on the pairs — the compiled
          form of safe negation. An empty pair list keeps the left
          operand iff the right is empty. *)
  | Adom
      (** the unary active-domain relation of the evaluated instance
          (memoized per instance, see {!Instance.adom}) *)
  | Complement of int * expr * expr
      (** [Complement (k, dom, e)]: [dom^k] minus [e], where [dom] is a
          unary domain expression — negation bounded by active-domain
          expansion, [k] columns wide. [e] must have arity [k]. *)

exception Type_error of string

(** [arity schema e] computes the output arity, checking column references
    and operand compatibility. @raise Type_error on ill-typed expressions
    (unknown relation, column out of range, arity mismatch in set
    operations); the message names the offending sub-expression via
    {!pp}. *)
val arity : Schema.t -> expr -> int

(** {1 Per-operator profiles}

    A {!profile} accumulates, per plan node, how many times it executed
    and its row flow and wall time — the raw material of [EXPLAIN]
    (see {!Explain}). Nodes are identified {e physically} ([==]):
    a memoized plan is a fixed tree, so each operator occurrence keeps
    its own entry, while a sub-expression the compiler shares (e.g. one
    domain expression under several complements) accumulates across all
    its parents. Operators the evaluator fuses away — a projection run
    inside a join's probe loop, a complement probed against a join's
    dedup set — never execute as nodes and get no entry; their work
    rolls up into the fusing parent's self time. *)

type profile

(** Accumulated statistics of one plan node. [rows_in] sums the output
    rows of the node's direct (non-fused) children across executions;
    [rows_out] sums its own output cardinality. [self_ns] is wall time
    excluding profiled children, [total_ns] including them. *)
type node_stats = {
  execs : int;
  rows_in : int;
  rows_out : int;
  self_ns : int;
  total_ns : int;
}

(** [profile ()] is a fresh, empty profile. Pass the same profile to
    several {!eval} calls (the demand engine's many rule plans, a
    fixpoint's rounds) to aggregate across them. *)
val profile : unit -> profile

(** [profile_stats p e] is the accumulated stats of node [e] (physical
    identity), or [None] if it never executed under [p]. *)
val profile_stats : profile -> expr -> node_stats option

(** [eval ?trace ?profile inst e] evaluates [e] against [inst].
    Relations absent from [inst] are empty; in that case column
    references cannot be checked dynamically, so use {!arity} with a
    schema for static checking. When [trace] is enabled, every hash-join
    probe pass accumulates into the [ra.join.probes] counter. When
    [profile] is given, every evaluated node records row counts and
    wall time into it; when absent the instrumentation costs one branch
    per node.
    @raise Type_error on dynamically detected arity violations (message
    names the offending sub-expression). *)
val eval :
  ?trace:Observe.Trace.ctx -> ?profile:profile -> Instance.t -> expr ->
  Relation.t

(** [holds_cond c t] evaluates a condition on one tuple. *)
val holds_cond : cond -> Tuple.t -> bool

val pp : Format.formatter -> expr -> unit
val pp_cond : Format.formatter -> cond -> unit
