module SMap = Map.Make (String)
module VSet = Set.Make (Value)

(* An instance pairs the name -> relation map with a memoized active
   domain, the same order-on-demand view pattern as [Relation]'s sorted
   list: [adom_memo] is [None] until [adom] is first asked for, and every
   constructor/mutator produces a record with the memo reset. The memo
   write is a benign race under parallel evaluation — concurrent readers
   compute the same list and a single pointer store is atomic. *)
type t = { rels : Relation.t SMap.t; mutable adom_memo : Value.t list option }

let make rels = { rels; adom_memo = None }
let empty = { rels = SMap.empty; adom_memo = Some [] }

let find name i =
  match SMap.find_opt name i.rels with None -> Relation.empty | Some r -> r

let set name r i =
  make (if Relation.is_empty r then SMap.remove name i.rels
        else SMap.add name r i.rels)

let add_fact name tup i = set name (Relation.add tup (find name i)) i
let add_all name tups i = set name (Relation.add_all tups (find name i)) i
let remove_fact name tup i = set name (Relation.remove tup (find name i)) i
let mem_fact name tup i = Relation.mem tup (find name i)

let of_list bindings =
  List.fold_left
    (fun i (name, rows) ->
      set name (Relation.union (Relation.of_rows rows) (find name i)) i)
    empty bindings

let names i = List.map fst (SMap.bindings i.rels)

let restrict keep i =
  make (SMap.filter (fun name _ -> List.mem name keep) i.rels)

let drop names i =
  make (SMap.filter (fun name _ -> not (List.mem name names)) i.rels)

let union a b =
  make (SMap.union (fun _ ra rb -> Some (Relation.union ra rb)) a.rels b.rels)

let diff a b =
  make
    (SMap.filter_map
       (fun name ra ->
         let r = Relation.diff ra (find name b) in
         if Relation.is_empty r then None else Some r)
       a.rels)

let subset a b =
  SMap.for_all (fun name ra -> Relation.subset ra (find name b)) a.rels

let equal a b = SMap.equal Relation.equal a.rels b.rels
let compare a b = SMap.compare Relation.compare a.rels b.rels

let total_facts i =
  SMap.fold (fun _ r acc -> acc + Relation.cardinal r) i.rels 0

let adom i =
  match i.adom_memo with
  | Some vs -> vs
  | None ->
      let s =
        SMap.fold
          (fun _ r acc ->
            List.fold_left
              (fun acc v -> VSet.add v acc)
              acc (Relation.values r))
          i.rels VSet.empty
      in
      let vs = VSet.elements s in
      i.adom_memo <- Some vs;
      vs

let fold f i acc = SMap.fold f i.rels acc

let map_values f i =
  make
    (SMap.map
       (fun r ->
         Relation.map (fun t -> Tuple.make (Array.map f (Tuple.values t))) r)
       i.rels)

let schema i =
  SMap.fold
    (fun name r acc ->
      match Relation.arity r with
      | None -> acc
      | Some a -> Schema.add (Schema.rel name a) acc)
    i.rels Schema.empty

let pp ppf i =
  let first = ref true in
  SMap.iter
    (fun name r ->
      Relation.iter
        (fun t ->
          if !first then first := false else Format.fprintf ppf "@\n";
          Format.fprintf ppf "%s(%a)." name
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               Value.pp)
            (Tuple.to_list t))
        r)
    i.rels

let to_string i = Format.asprintf "%a" pp i

(* --- fact parsing ------------------------------------------------------ *)

let parse_one_fact lineno stmt i =
  let stmt = String.trim stmt in
  if stmt = "" then i
  else
    let fail msg = failwith (Printf.sprintf "facts line %d: %s" lineno msg) in
    match String.index_opt stmt '(' with
    | None -> fail (Printf.sprintf "expected pred(args), got %S" stmt)
    | Some lp ->
        if stmt.[String.length stmt - 1] <> ')' then
          fail "expected closing parenthesis";
        let name = String.trim (String.sub stmt 0 lp) in
        if name = "" then fail "empty predicate name";
        let inside = String.sub stmt (lp + 1) (String.length stmt - lp - 2) in
        let args =
          if String.trim inside = "" then []
          else
            String.split_on_char ',' inside
            |> List.map (fun s ->
                   let s = String.trim s in
                   if s = "" then fail "empty argument";
                   match Value.parse s with
                   | v -> v
                   | exception Invalid_argument msg -> fail msg)
        in
        add_fact name (Tuple.of_list args) i

(* Split the text into dot-terminated statements, respecting quoted
   strings: a '.' inside "..." does not terminate a fact, and a '%' or
   "//" inside "..." does not start a comment — comment detection shares
   the string-state scan instead of running per line up front. *)
let parse_facts text =
  let lines = String.split_on_char '\n' text in
  let buf = Buffer.create 64 in
  let inst = ref empty in
  let in_string = ref false in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let n = String.length line in
      let i = ref 0 in
      let in_comment = ref false in
      while (not !in_comment) && !i < n do
        let c = line.[!i] in
        if !in_string then (
          Buffer.add_char buf c;
          if c = '"' then in_string := false)
        else if c = '%' || (c = '/' && !i + 1 < n && line.[!i + 1] = '/') then
          in_comment := true
        else if c = '"' then (
          Buffer.add_char buf c;
          in_string := true)
        else if c = '.' then (
          inst := parse_one_fact lineno (Buffer.contents buf) !inst;
          Buffer.clear buf)
        else Buffer.add_char buf c;
        incr i
      done;
      Buffer.add_char buf ' ')
    lines;
  (if String.trim (Buffer.contents buf) <> "" then
     let n = List.length lines in
     inst := parse_one_fact n (Buffer.contents buf) !inst);
  !inst
