module SMap = Map.Make (String)
module VSet = Set.Make (Value)

type t = Relation.t SMap.t

let empty = SMap.empty

let find name i =
  match SMap.find_opt name i with None -> Relation.empty | Some r -> r

let set name r i =
  if Relation.is_empty r then SMap.remove name i else SMap.add name r i

let add_fact name tup i = set name (Relation.add tup (find name i)) i
let add_all name tups i = set name (Relation.add_all tups (find name i)) i
let remove_fact name tup i = set name (Relation.remove tup (find name i)) i
let mem_fact name tup i = Relation.mem tup (find name i)

let of_list bindings =
  List.fold_left
    (fun i (name, rows) ->
      set name (Relation.union (Relation.of_rows rows) (find name i)) i)
    empty bindings

let names i = List.map fst (SMap.bindings i)

let restrict keep i =
  SMap.filter (fun name _ -> List.mem name keep) i

let drop names i = SMap.filter (fun name _ -> not (List.mem name names)) i

let union a b =
  SMap.union (fun _ ra rb -> Some (Relation.union ra rb)) a b

let diff a b =
  SMap.filter_map
    (fun name ra ->
      let r = Relation.diff ra (find name b) in
      if Relation.is_empty r then None else Some r)
    a

let subset a b =
  SMap.for_all (fun name ra -> Relation.subset ra (find name b)) a

let equal a b = SMap.equal Relation.equal a b
let compare a b = SMap.compare Relation.compare a b
let total_facts i = SMap.fold (fun _ r acc -> acc + Relation.cardinal r) i 0

let adom i =
  let s =
    SMap.fold
      (fun _ r acc ->
        List.fold_left (fun acc v -> VSet.add v acc) acc (Relation.values r))
      i VSet.empty
  in
  VSet.elements s

let fold f i acc = SMap.fold f i acc

let map_values f i =
  SMap.map
    (fun r ->
      Relation.map
        (fun t -> Tuple.make (Array.map f (Tuple.values t)))
        r)
    i

let schema i =
  SMap.fold
    (fun name r acc ->
      match Relation.arity r with
      | None -> acc
      | Some a -> Schema.add (Schema.rel name a) acc)
    i Schema.empty

let pp ppf i =
  let first = ref true in
  SMap.iter
    (fun name r ->
      Relation.iter
        (fun t ->
          if !first then first := false else Format.fprintf ppf "@\n";
          Format.fprintf ppf "%s(%a)." name
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               Value.pp)
            (Tuple.to_list t))
        r)
    i

let to_string i = Format.asprintf "%a" pp i

(* --- fact parsing ------------------------------------------------------ *)

let parse_one_fact lineno stmt i =
  let stmt = String.trim stmt in
  if stmt = "" then i
  else
    let fail msg = failwith (Printf.sprintf "facts line %d: %s" lineno msg) in
    match String.index_opt stmt '(' with
    | None -> fail (Printf.sprintf "expected pred(args), got %S" stmt)
    | Some lp ->
        if stmt.[String.length stmt - 1] <> ')' then
          fail "expected closing parenthesis";
        let name = String.trim (String.sub stmt 0 lp) in
        if name = "" then fail "empty predicate name";
        let inside = String.sub stmt (lp + 1) (String.length stmt - lp - 2) in
        let args =
          if String.trim inside = "" then []
          else
            String.split_on_char ',' inside
            |> List.map (fun s ->
                   let s = String.trim s in
                   if s = "" then fail "empty argument";
                   match Value.parse s with
                   | v -> v
                   | exception Invalid_argument msg -> fail msg)
        in
        add_fact name (Tuple.of_list args) i

(* Split the text into dot-terminated statements, respecting quoted
   strings: a '.' inside "..." does not terminate a fact, and a '%' or
   "//" inside "..." does not start a comment — comment detection shares
   the string-state scan instead of running per line up front. *)
let parse_facts text =
  let lines = String.split_on_char '\n' text in
  let buf = Buffer.create 64 in
  let inst = ref empty in
  let in_string = ref false in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let n = String.length line in
      let i = ref 0 in
      let in_comment = ref false in
      while (not !in_comment) && !i < n do
        let c = line.[!i] in
        if !in_string then (
          Buffer.add_char buf c;
          if c = '"' then in_string := false)
        else if c = '%' || (c = '/' && !i + 1 < n && line.[!i + 1] = '/') then
          in_comment := true
        else if c = '"' then (
          Buffer.add_char buf c;
          in_string := true)
        else if c = '.' then (
          inst := parse_one_fact lineno (Buffer.contents buf) !inst;
          Buffer.clear buf)
        else Buffer.add_char buf c;
        incr i
      done;
      Buffer.add_char buf ' ')
    lines;
  (if String.trim (Buffer.contents buf) <> "" then
     let n = List.length lines in
     inst := parse_one_fact n (Buffer.contents buf) !inst);
  !inst
