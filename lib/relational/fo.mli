(** First-order logic over relational instances (relational calculus), with
    active-domain semantics.

    Quantifiers range over the active domain of the instance (optionally
    extended with extra constants), which is the standard domain-independent
    reading used throughout the paper. [eval] computes the set of satisfying
    valuations of a formula's free variables — i.e. the answer of a calculus
    query — and [sentence] decides a closed formula.

    Evaluation is by {e safe-range compilation} to {!Algebra} plans
    (Abiteboul–Hull–Vianu): ∃ becomes projection, ∧ becomes hash joins
    and selections, safe ¬ becomes antijoin, and any subformula outside
    the safe fragment falls back to bounded active-domain expansion {e per
    free variable} (counted by the [fo.plan.fallback_vars] metric), never
    for the whole formula. Plans are memoized per (formula, output
    columns, domain); the [fo.plan.compiled] counter ticks per actual
    compilation. The pre-compilation enumerators survive as
    [eval_naive] / [sentence_naive] reference oracles. *)

type term = Var of string | Cst of Value.t

type formula =
  | True
  | False
  | Atom of string * term list  (** [R(t1, ..., tk)] *)
  | Eq of term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of string list * formula
  | Forall of string list * formula

(** Conjunction / disjunction of a list ([True]/[False] when empty). *)
val conj : formula list -> formula

val disj : formula list -> formula

(** [free_vars f] lists the free variables, each once, in first-occurrence
    order. *)
val free_vars : formula -> string list

(** [constants f] lists the constants mentioned by [f]. *)
val constants : formula -> Value.t list

(** {1 Shared syntax collectors}

    The fixpoint logic re-uses the collectors behind {!free_vars} and
    {!constants} for its own formula type: the caller supplies a
    traversal that reports variable occurrences (with the enclosing
    bound-variable stack) resp. constants, and the accumulator — a
    hashtable-backed dedup preserving first-occurrence order, resp. a
    sorted constant set — lives here once. *)

val collect_free_vars :
  ((string list -> string -> unit) -> unit) -> string list

val collect_constants : ((Value.t -> unit) -> unit) -> Value.t list

type env = (string * Value.t) list

(** [holds ?dom inst env f] decides satisfaction of [f] under valuation
    [env], quantifiers ranging over [dom] (default: active domain of [inst]
    plus constants of [f]). This is the naive recursive evaluator — a
    single-valuation check has no plan to amortize.
    @raise Failure if a free variable of [f] is unbound by [env]. *)
val holds : ?dom:Value.t list -> Instance.t -> env -> formula -> bool

(** [eval ?trace ?dom inst f vars] computes the relation
    [{ (v(x))_{x in vars} | v valuates free_vars f into dom, f holds }]
    by compiling [f] to an algebra plan and executing it on [inst].
    [vars] must be a superset of [free_vars f] (extra variables range over
    the whole domain — the usual calculus convention is disallowed here:
    @raise Invalid_argument listing {e all} missing free variables).
    [profile] records per-operator statistics (see {!run_plan}); since
    plans are memoized, a subsequent {!compile} with the same arguments
    returns the same physical plan, whose tree the profile annotates. *)
val eval :
  ?trace:Observe.Trace.ctx ->
  ?profile:Algebra.profile ->
  ?dom:Value.t list ->
  Instance.t ->
  formula ->
  string list ->
  Relation.t

(** [eval_naive] — the pre-compilation active-domain enumerator
    ([dom^{|vars|}] candidate valuations, each checked with {!holds});
    kept as the reference oracle for the compiled path. *)
val eval_naive :
  ?dom:Value.t list -> Instance.t -> formula -> string list -> Relation.t

(** [sentence ?trace ?dom inst f] decides a closed formula through the
    compiled path (a nullary plan).
    @raise Invalid_argument listing all free variables if [f] is open. *)
val sentence :
  ?trace:Observe.Trace.ctx ->
  ?profile:Algebra.profile ->
  ?dom:Value.t list ->
  Instance.t ->
  formula ->
  bool

(** [sentence_naive] — reference oracle for {!sentence}. *)
val sentence_naive : ?dom:Value.t list -> Instance.t -> formula -> bool

(** {1 Plans}

    [compile] and [run_plan] expose the two phases of [eval] so callers
    evaluating one query against many instances (the while-language
    interpreter, the fixpoint iterations) pay compilation once. *)

type plan

(** [compile ?trace ?dom f vars] compiles [f] with output columns [vars].
    Memoized on [(f, vars, dom)]; [trace] counts [fo.plan.compiled] and
    [fo.plan.fallback_vars] on cache misses. The default-domain plan is
    instance-independent: the domain enters as an {!Algebra.Adom} leaf
    plus the formula's constants. *)
val compile :
  ?trace:Observe.Trace.ctx -> ?dom:Value.t list -> formula -> string list -> plan

(** [run_plan ?trace ?profile inst p] executes a compiled plan. An atom
    whose arity disagrees with the instance's relation is uniformly
    false under the naive semantics; such plans are transparently
    recompiled with the offending atoms replaced by [False]. [profile]
    is handed to {!Algebra.eval} to record per-operator row counts and
    wall time (see {!Explain}). *)
val run_plan :
  ?trace:Observe.Trace.ctx -> ?profile:Algebra.profile -> Instance.t ->
  plan -> Relation.t

(** The compiled algebra expression (inspection/debugging). *)
val plan_expr : plan -> Algebra.expr

(** Columns bound by bounded active-domain expansion during compilation. *)
val plan_fallback_vars : plan -> int

val pp : Format.formatter -> formula -> unit
