module A = Algebra
module Json = Observe.Json

let op_name = function
  | A.Rel _ -> "scan"
  | A.Const _ -> "const"
  | A.Project _ -> "project"
  | A.Select _ -> "select"
  | A.Product _ -> "product"
  | A.Join _ -> "join"
  | A.Union _ -> "union"
  | A.Diff _ -> "diff"
  | A.Inter _ -> "inter"
  | A.Semijoin _ -> "semijoin"
  | A.Antijoin _ -> "antijoin"
  | A.Adom -> "adom"
  | A.Complement _ -> "complement"

let pairs_str pairs =
  String.concat ","
    (List.map (fun (i, j) -> Printf.sprintf "%d=%d" i j) pairs)

let cols_str cols = String.concat "," (List.map string_of_int cols)

(* The operator's own argument — join keys, projection columns, the
   selection condition — never its operands. *)
let detail = function
  | A.Rel name -> Some name
  | A.Const r -> Some (Printf.sprintf "%d tuples" (Relation.cardinal r))
  | A.Project (cols, _) -> Some (cols_str cols)
  | A.Select (c, _) -> Some (Format.asprintf "%a" A.pp_cond c)
  | A.Product _ | A.Union _ | A.Diff _ | A.Inter _ | A.Adom -> None
  | A.Join (pairs, _, _) | A.Semijoin (pairs, _, _) | A.Antijoin (pairs, _, _)
    ->
      Some (pairs_str pairs)
  | A.Complement (k, _, _) -> Some (Printf.sprintf "arity %d" k)

let children = function
  | A.Rel _ | A.Const _ | A.Adom -> []
  | A.Project (_, e) | A.Select (_, e) -> [ e ]
  | A.Product (l, r)
  | A.Join (_, l, r)
  | A.Union (l, r)
  | A.Diff (l, r)
  | A.Inter (l, r)
  | A.Semijoin (_, l, r)
  | A.Antijoin (_, l, r)
  | A.Complement (_, l, r) ->
      [ l; r ]

(* Cold shape: output arity when the schema determines it, and for base
   scans the current cardinality of the stored relation. *)
let node_arity schema e =
  match schema with
  | None -> None
  | Some s -> ( try Some (A.arity s e) with A.Type_error _ -> None)

let scan_rows inst e =
  match (inst, e) with
  | Some inst, A.Rel name -> Some (Relation.cardinal (Instance.find name inst))
  | _ -> None

let ms_of_ns n = float_of_int n /. 1e6

let selectivity (st : A.node_stats) =
  if st.A.rows_in > 0 then
    Some (float_of_int st.A.rows_out /. float_of_int st.A.rows_in)
  else None

(* --- text rendering --------------------------------------------------- *)

let node_line buf ?inst ?profile ~schema ~indent e =
  Buffer.add_string buf (String.make (2 * indent) ' ');
  Buffer.add_string buf (op_name e);
  (match detail e with
  | Some d ->
      Buffer.add_char buf '[';
      Buffer.add_string buf d;
      Buffer.add_char buf ']'
  | None -> ());
  (match node_arity schema e with
  | Some a -> Buffer.add_string buf (Printf.sprintf " arity=%d" a)
  | None -> ());
  (match Option.bind profile (fun p -> A.profile_stats p e) with
  | Some st ->
      Buffer.add_string buf
        (Printf.sprintf " rows_out=%d rows_in=%d execs=%d" st.A.rows_out
           st.A.rows_in st.A.execs);
      (match selectivity st with
      | Some s -> Buffer.add_string buf (Printf.sprintf " sel=%.2f" s)
      | None -> ());
      Buffer.add_string buf
        (Printf.sprintf " self=%.2f ms total=%.2f ms" (ms_of_ns st.A.self_ns)
           (ms_of_ns st.A.total_ns))
  | None -> (
      (* cold: no execution recorded — report stored size where known *)
      match scan_rows inst e with
      | Some n -> Buffer.add_string buf (Printf.sprintf " rows=%d" n)
      | None -> ()));
  Buffer.add_char buf '\n'

let text ?inst ?profile e =
  let schema = Option.map Instance.schema inst in
  let buf = Buffer.create 256 in
  let rec go indent e =
    node_line buf ?inst ?profile ~schema ~indent e;
    List.iter (go (indent + 1)) (children e)
  in
  go 0 e;
  Buffer.contents buf

(* --- JSON rendering --------------------------------------------------- *)

let json ?inst ?profile e =
  let schema = Option.map Instance.schema inst in
  let rec go e =
    let base = [ ("op", Json.Str (op_name e)) ] in
    let base =
      match detail e with
      | Some d -> base @ [ ("detail", Json.Str d) ]
      | None -> base
    in
    let base =
      match node_arity schema e with
      | Some a -> base @ [ ("arity", Json.Int a) ]
      | None -> base
    in
    let base =
      match scan_rows inst e with
      | Some n -> base @ [ ("rows", Json.Int n) ]
      | None -> base
    in
    let base =
      match Option.bind profile (fun p -> A.profile_stats p e) with
      | Some st ->
          base
          @ [
              ( "profile",
                Json.Obj
                  ([
                     ("execs", Json.Int st.A.execs);
                     ("rows_in", Json.Int st.A.rows_in);
                     ("rows_out", Json.Int st.A.rows_out);
                     ("self_ns", Json.Int st.A.self_ns);
                     ("total_ns", Json.Int st.A.total_ns);
                   ]
                  @
                  match selectivity st with
                  | Some s -> [ ("selectivity", Json.Float s) ]
                  | None -> []) );
            ]
      | None -> base
    in
    match children e with
    | [] -> Json.Obj base
    | cs -> Json.Obj (base @ [ ("children", Json.List (List.map go cs)) ])
  in
  go e
