let vertex ?(ints = false) i =
  if ints then Value.Int i else Value.Sym (Printf.sprintf "n%d" i)

let edges_instance name rows = Instance.of_list [ (name, rows) ]

let chain ?(name = "G") ?ints n =
  let rows =
    List.init (max 0 (n - 1)) (fun i ->
        [ vertex ?ints i; vertex ?ints (i + 1) ])
  in
  edges_instance name rows

let cycle ?(name = "G") ?ints n =
  if n <= 0 then Instance.empty
  else
    let rows =
      List.init n (fun i -> [ vertex ?ints i; vertex ?ints ((i + 1) mod n) ])
    in
    edges_instance name rows

let complete ?(name = "G") ?ints n =
  let rows =
    List.concat
      (List.init n (fun i ->
           List.filter_map
             (fun j ->
               if i = j then None else Some [ vertex ?ints i; vertex ?ints j ])
             (List.init n Fun.id)))
  in
  edges_instance name rows

let grid ?(name = "G") ?ints w h =
  let id x y = (y * w) + x in
  let rows = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then
        rows := [ vertex ?ints (id x y); vertex ?ints (id (x + 1) y) ] :: !rows;
      if y + 1 < h then
        rows := [ vertex ?ints (id x y); vertex ?ints (id x (y + 1)) ] :: !rows
    done
  done;
  edges_instance name !rows

let random ?(name = "G") ?ints ~seed n m =
  let rng = Random.State.make [| seed |] in
  let seen = Hashtbl.create (2 * m) in
  let rows = ref [] in
  let attempts = ref 0 in
  let max_edges = n * (n - 1) in
  let target = min m max_edges in
  while Hashtbl.length seen < target && !attempts < 100 * (target + 1) do
    incr attempts;
    let i = Random.State.int rng n and j = Random.State.int rng n in
    if i <> j && not (Hashtbl.mem seen (i, j)) then (
      Hashtbl.add seen (i, j) ();
      rows := [ vertex ?ints i; vertex ?ints j ] :: !rows)
  done;
  edges_instance name !rows

let random_dag ?(name = "G") ?ints ~seed n m =
  let rng = Random.State.make [| seed |] in
  let seen = Hashtbl.create (2 * m) in
  let rows = ref [] in
  let attempts = ref 0 in
  let max_edges = n * (n - 1) / 2 in
  let target = min m max_edges in
  while Hashtbl.length seen < target && !attempts < 100 * (target + 1) do
    incr attempts;
    let i = Random.State.int rng n and j = Random.State.int rng n in
    let i, j = if i < j then (i, j) else (j, i) in
    if i <> j && not (Hashtbl.mem seen (i, j)) then (
      Hashtbl.add seen (i, j) ();
      rows := [ vertex ?ints i; vertex ?ints j ] :: !rows)
  done;
  edges_instance name !rows

let binary_tree ?(name = "G") ?ints depth =
  let rows = ref [] in
  let n = (1 lsl depth) - 1 in
  for i = 0 to n - 1 do
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    if l < n then rows := [ vertex ?ints i; vertex ?ints l ] :: !rows;
    if r < n then rows := [ vertex ?ints i; vertex ?ints r ] :: !rows
  done;
  edges_instance name !rows

let two_cycles ?(name = "G") k =
  let rows =
    List.concat
      (List.init k (fun i ->
           let a = Value.Sym (Printf.sprintf "a%d" i)
           and b = Value.Sym (Printf.sprintf "b%d" i) in
           [ [ a; b ]; [ b; a ] ]))
  in
  edges_instance name rows

let game_chain ?(name = "moves") n = chain ~name n

let paper_game ?(name = "moves") () =
  let v s = Value.Sym s in
  Instance.of_list
    [
      ( name,
        [
          [ v "b"; v "c" ];
          [ v "c"; v "a" ];
          [ v "a"; v "b" ];
          [ v "a"; v "d" ];
          [ v "d"; v "e" ];
          [ v "d"; v "f" ];
          [ v "f"; v "g" ];
        ] );
    ]

let reference_tc edges =
  let vs = Array.of_list (Relation.values edges) in
  let n = Array.length vs in
  (* vertex lookup keyed by interned id: int hashing, no structural walks *)
  let idx : (int, int) Hashtbl.t = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.add idx (Value.Intern.id v) i) vs;
  let reach = Array.make_matrix n n false in
  let vertex vid =
    match Hashtbl.find_opt idx vid with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf
             "Graph_gen.reference_tc: value %s is not a vertex of the edge \
              relation"
             (Value.to_string (Value.Intern.of_id vid)))
  in
  Relation.unordered_iter
    (fun t ->
      if Tuple.arity t = 2 then
        let i = vertex (Tuple.id t 0) and j = vertex (Tuple.id t 1) in
        reach.(i).(j) <- true)
    edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if reach.(i).(k) then
        for j = 0 to n - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  let ids = Array.map Value.Intern.id vs in
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if reach.(i).(j) then
        out := Tuple.of_ids [| ids.(i); ids.(j) |] :: !out
    done
  done;
  Relation.of_distinct !out
