(** Commutative semirings for annotated evaluation ("Revisiting
    Semiring Provenance for Datalog", arXiv 2202.10766): a fact's
    annotation combines alternative derivations with ⊕ and the body
    facts of one firing with ⊗.

    The Boolean set semantics never routes through this module — the
    existing engines {e are} the monomorphized Bool instance — so the
    hot path cannot regress; [Bool] exists here for cross-checking the
    annotated evaluator against them. *)

(** The four shipped instances. *)
type tag =
  | Bool  (** (bool, ∨, ∧) — set semantics *)
  | Count  (** (ℕ∞, +, ×) — derivation-tree multiplicities, ω-saturating *)
  | MinPlus  (** (ℕ∞, min, +) — tropical: lightest-derivation weight *)
  | Why  (** bounded why-provenance polynomials over base facts *)

(** Valid [--annot] spellings, in display order. *)
val names : string list

val name_of : tag -> string

(** [of_string s] parses an annotation name; [Error msg] carries the
    valid spellings for the CLI's exit-2 diagnostic. *)
val of_string : string -> (tag, string) result

(** Truncation bounds of the why-provenance polynomials. *)
val max_monomials : int

val max_factors : int

type why = private { monos : string list list; more : bool }
(** A bounded polynomial: monomials are duplicate-free sorted sets of
    base-fact labels, listed in (length, lex) order; [more] records
    that the bounds dropped monomials, so the list is a prefix of the
    true polynomial. *)

(** The universal annotation value. [C] saturates at {!omega}; [W]
    uses [max_int] as +∞ (no derivation) and [min_int] as −∞
    (diverging weight, e.g. a negative-weight cycle). *)
type v = B of bool | C of int | W of int | P of why

val omega : int
val minplus_zero : int
val minplus_bottom : int

(** One instance's operations. [plus]/[times]
    @raise Invalid_argument when handed values of another instance. *)
type t = {
  tag : tag;
  zero : v;
  one : v;
  plus : v -> v -> v;
  times : v -> v -> v;
}

val get : tag -> t

(** The absorbing value the stabilization check forces on facts still
    changing past the round bound (ω / −∞ / truncated-only). *)
val top : tag -> v

val equal_v : v -> v -> bool
val is_zero : t -> v -> bool

(** a ⊕ a = a: decides whether the annotation fixpoint may use the
    inflationary [old ⊕ new] update (Count may not — + double-counts). *)
val is_idempotent : tag -> bool

(** [label ~pred vals] renders a base fact as it appears inside
    why-provenance monomials: ["G(a, b)"]. *)
val label : pred:string -> Value.t list -> string

(** Base-fact annotation: [1] everywhere except MinPlus, which reads
    the fact's weight from its last column when it is an [Int] (rules
    thread weight columns as ordinary data), and Why, which introduces
    the fact's own variable. *)
val of_edb : tag -> pred:string -> Tuple.t -> v

val to_string : v -> string
val pp : Format.formatter -> v -> unit
