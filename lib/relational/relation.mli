(** Relation instances: finite sets of constant tuples of a fixed arity.

    Backed by a persistent hash trie keyed on the tuples' cached hashes
    (see {!Tuple}): membership, insertion and set algebra cost integer
    comparisons, never structural walks over values. Every observer that
    can leak an order — {!to_list}, {!elements}, {!fold}, {!iter},
    {!pp} — reads an order-on-demand sorted view ({!Tuple.compare}
    order, memoized per relation value), so printed output and
    enumeration order are identical to the former [Set.Make (Tuple)]
    representation.

    All operations enforce arity homogeneity: inserting a tuple of a
    different arity than the existing ones raises
    [Invalid_argument]. The empty relation is compatible with any arity. *)

type t

(** The empty relation. *)
val empty : t

(** [singleton t] contains exactly [t]. *)
val singleton : Tuple.t -> t

(** [of_list ts] builds a relation.
    @raise Invalid_argument on mixed arities. *)
val of_list : Tuple.t list -> t

(** [of_distinct ts] builds a relation from tuples the caller guarantees
    pairwise distinct (the semi-naive delta contract). Bulk-constructs
    the backing trie in one pass — O(n) allocation instead of one
    root-to-leaf path copy per insertion.
    @raise Invalid_argument on mixed arities. *)
val of_distinct : Tuple.t list -> t

(** [of_rows rows] builds a relation from value-list rows. *)
val of_rows : Value.t list list -> t

val to_list : t -> Tuple.t list

(** [add t r] inserts a tuple. @raise Invalid_argument on arity mismatch. *)
val add : Tuple.t -> t -> t

(** [add_all ts r] inserts all tuples of [ts] — one homogeneity sweep for
    the batch, then constant-time hash inserts.
    @raise Invalid_argument on arity mismatch. *)
val add_all : Tuple.t list -> t -> t

(** [remove t r] deletes a tuple (no-op if absent). *)
val remove : Tuple.t -> t -> t

val mem : Tuple.t -> t -> bool

(** [mem_ids ids r] is membership for the tuple an id array denotes,
    without constructing it — the fixpoint engines' duplicate probe. *)
val mem_ids : int array -> t -> bool
val cardinal : t -> int
val is_empty : t -> bool

(** [arity r] is [Some a] if [r] is non-empty with tuples of arity [a],
    [None] if empty. *)
val arity : t -> int option

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** [subset a b] tests whether every tuple of [a] is in [b]. *)
val subset : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit

(** [unordered_fold] / [unordered_iter] enumerate in unspecified (hash
    trie) order without forcing the sorted view — for internal
    order-insensitive consumers (index building, bulk absorption) on the
    hot path. Do not use where enumeration order can reach output. *)
val unordered_fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val unordered_iter : (Tuple.t -> unit) -> t -> unit
val filter : (Tuple.t -> bool) -> t -> t
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool

(** [map f r] applies a tuple transformer; the results must again be
    homogeneous. *)
val map : (Tuple.t -> Tuple.t) -> t -> t

val elements : t -> Tuple.t list
val choose_opt : t -> Tuple.t option

(** [values r] is the set of all values occurring in [r] (its active
    domain), as a sorted list without duplicates. *)
val values : t -> Value.t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
