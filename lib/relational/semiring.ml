(* Commutative semirings for annotated evaluation (PAPERS.md:
   "Revisiting Semiring Provenance for Datalog", arXiv 2202.10766).

   A Datalog fact is annotated with a value from a commutative semiring
   (K, ⊕, ⊗, 0, 1): alternative derivations combine with ⊕, the body
   facts of one rule firing combine with ⊗. Four instances ship:

   - [Bool]    — (bool, ∨, ∧): today's set semantics.
   - [Count]   — (ℕ∞, +, ×): derivation-tree multiplicities. Values
                 saturate to ω ([omega]) instead of overflowing; a fact
                 supported by a derivation cycle has infinitely many
                 trees and is ω by definition.
   - [MinPlus] — the tropical semiring (ℕ∞, min, +): the annotation of
                 a fact is the weight of its lightest derivation, which
                 on transitive closure over weighted edges is exactly
                 shortest-path distance (the paper's [closer] example).
                 [zero] is +∞ (no derivation); [bottom] (−∞) marks
                 facts whose weight diverges (a negative-weight cycle).
   - [Why]     — why-provenance: polynomials over the base facts,
                 truncated to at most [max_monomials] monomials of at
                 most [max_factors] base facts each (the [more] flag
                 records that the polynomial is a lower bound). Each
                 monomial is a *set* of base facts (x ⊗ x = x on
                 factors), so the polynomials form a finite — hence
                 terminating — domain.

   Annotation values are one universal type [v] rather than a functor
   parameter: the engines dispatch on the instance at run time (the CLI
   picks it from a flag), and the Boolean hot path does not route
   through this module at all — [--annot bool] runs the untouched set
   engines, which is the "monomorphized so it cannot regress" story. *)

type tag = Bool | Count | MinPlus | Why

let names = [ "bool"; "count"; "minplus"; "why" ]

let name_of = function
  | Bool -> "bool"
  | Count -> "count"
  | MinPlus -> "minplus"
  | Why -> "why"

let of_string = function
  | "bool" -> Ok Bool
  | "count" -> Ok Count
  | "minplus" -> Ok MinPlus
  | "why" -> Ok Why
  | s ->
      Error
        (Printf.sprintf "unknown annotation '%s' (valid: %s)" s
           (String.concat ", " names))

(* --- why-provenance polynomials ---------------------------------- *)

(* Bounds on the truncated polynomials. Generous enough that the law
   battery's small random values never truncate, small enough that a
   fact's annotation stays O(1) memory on real fixpoints. *)
let max_monomials = 12
let max_factors = 12

type why = { monos : string list list; more : bool }
(* invariant: each monomial is sorted and duplicate-free; [monos] is
   sorted by (length, then lexicographic) and duplicate-free; [more]
   records that monomials were dropped by the bounds, so the polynomial
   is a prefix of the true one under that order *)

let compare_mono (a : string list) (b : string list) =
  let c = Int.compare (List.length a) (List.length b) in
  if c <> 0 then c else Stdlib.compare a b

let truncate_monos monos =
  let rec take n = function
    | [] -> ([], false)
    | _ :: _ when n = 0 -> ([], true)
    | m :: rest ->
        let kept, dropped = take (n - 1) rest in
        (m :: kept, dropped)
  in
  take max_monomials monos

let why_zero = { monos = []; more = false }
let why_one = { monos = [ [] ]; more = false }
let why_is_zero w = w.monos = [] && not w.more

let why_plus a b =
  if why_is_zero a then b
  else if why_is_zero b then a
  else
    let merged = List.sort_uniq compare_mono (a.monos @ b.monos) in
    let kept, dropped = truncate_monos merged in
    { monos = kept; more = a.more || b.more || dropped }

let why_times a b =
  if why_is_zero a || why_is_zero b then why_zero
  else
    let oversize = ref false in
    let prods =
      List.concat_map
        (fun m1 ->
          List.filter_map
            (fun m2 ->
              let m = List.sort_uniq String.compare (m1 @ m2) in
              if List.length m > max_factors then (
                oversize := true;
                None)
              else Some m)
            b.monos)
        a.monos
    in
    let merged = List.sort_uniq compare_mono prods in
    let kept, dropped = truncate_monos merged in
    { monos = kept; more = a.more || b.more || !oversize || dropped }

let why_to_string { monos; more } =
  match (monos, more) with
  | [], false -> "0"
  | [], true -> "..."
  | _ ->
      let mono = function
        | [] -> "1"
        | fs -> String.concat "*" fs
      in
      String.concat " + " (List.map mono monos)
      ^ if more then " + ..." else ""

(* --- the universal annotation value ------------------------------- *)

type v = B of bool | C of int | W of int | P of why

let omega = max_int (* Count: ω, the saturation point *)
let minplus_zero = max_int (* MinPlus: +∞, no derivation *)
let minplus_bottom = min_int (* MinPlus: −∞, diverging weight *)

let count_plus a b =
  if a = omega || b = omega || a > omega - b then omega else a + b

let count_times a b =
  if a = 0 || b = 0 then 0
  else if a = omega || b = omega || a > omega / b then omega
  else a * b

let minplus_times a b =
  if a = minplus_zero || b = minplus_zero then minplus_zero
  else if a = minplus_bottom || b = minplus_bottom then minplus_bottom
  else a + b

type t = {
  tag : tag;
  zero : v;
  one : v;
  plus : v -> v -> v;
  times : v -> v -> v;
}

let type_err op = invalid_arg ("Semiring." ^ op ^ ": mixed instances")

let get = function
  | Bool ->
      {
        tag = Bool;
        zero = B false;
        one = B true;
        plus =
          (fun a b ->
            match (a, b) with B x, B y -> B (x || y) | _ -> type_err "plus");
        times =
          (fun a b ->
            match (a, b) with B x, B y -> B (x && y) | _ -> type_err "times");
      }
  | Count ->
      {
        tag = Count;
        zero = C 0;
        one = C 1;
        plus =
          (fun a b ->
            match (a, b) with
            | C x, C y -> C (count_plus x y)
            | _ -> type_err "plus");
        times =
          (fun a b ->
            match (a, b) with
            | C x, C y -> C (count_times x y)
            | _ -> type_err "times");
      }
  | MinPlus ->
      {
        tag = MinPlus;
        zero = W minplus_zero;
        one = W 0;
        plus =
          (fun a b ->
            match (a, b) with W x, W y -> W (min x y) | _ -> type_err "plus");
        times =
          (fun a b ->
            match (a, b) with
            | W x, W y -> W (minplus_times x y)
            | _ -> type_err "times");
      }
  | Why ->
      {
        tag = Why;
        zero = P why_zero;
        one = P why_one;
        plus =
          (fun a b ->
            match (a, b) with
            | P x, P y -> P (why_plus x y)
            | _ -> type_err "plus");
        times =
          (fun a b ->
            match (a, b) with
            | P x, P y -> P (why_times x y)
            | _ -> type_err "times");
      }

(* The absorbing "diverged" value the stabilization check forces on
   facts still changing past the round bound: once a fact is [top], no
   ⊕ can move it again (Count and MinPlus genuinely absorb; Bool's top
   is just [one]; Why marks the polynomial as truncated). *)
let top = function
  | Bool -> B true
  | Count -> C omega
  | MinPlus -> W minplus_bottom
  | Why -> P { monos = []; more = true }

let equal_v a b =
  match (a, b) with
  | B x, B y -> x = y
  | C x, C y -> x = y
  | W x, W y -> x = y
  | P x, P y -> x.more = y.more && x.monos = y.monos
  | _ -> false

let is_zero sr v = equal_v sr.zero v

(* [is_idempotent] decides the annotation fixpoint's update rule: an
   idempotent ⊕ (a ⊕ a = a) supports the inflationary "old ⊕ new"
   update; Count's + would double-count and recomputes each round. *)
let is_idempotent = function Bool | MinPlus | Why -> true | Count -> false

let label ~pred vals =
  Printf.sprintf "%s(%s)" pred
    (String.concat ", " (List.map Value.to_string vals))

(* Base-fact annotation. MinPlus reads the fact's weight from its last
   column when that column is an integer (the convention that keeps the
   parser and tuple layer unchanged: rules thread weight columns as
   ordinary data, e.g. [T(X, Y) :- E(X, Y, W).]); everything else is
   the ⊗-identity so unweighted facts cost nothing. *)
let of_edb tag ~pred tup =
  match tag with
  | Bool -> B true
  | Count -> C 1
  | MinPlus -> (
      let n = Tuple.arity tup in
      if n = 0 then W 0
      else
        match Tuple.get tup (n - 1) with Value.Int w -> W w | _ -> W 0)
  | Why -> P { monos = [ [ label ~pred (Tuple.to_list tup) ] ]; more = false }

let to_string = function
  | B b -> if b then "true" else "false"
  | C n -> if n = omega then "inf" else string_of_int n
  | W n ->
      if n = minplus_zero then "inf"
      else if n = minplus_bottom then "-inf"
      else string_of_int n
  | P w -> why_to_string w

let pp fmt v = Format.pp_print_string fmt (to_string v)
