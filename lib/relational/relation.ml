module TSet = Set.Make (Tuple)
module VSet = Set.Make (Value)

type t = TSet.t

let empty = TSet.empty
let singleton = TSet.singleton

let check_arity r t =
  match TSet.choose_opt r with
  | Some u when Tuple.arity u <> Tuple.arity t ->
      invalid_arg
        (Printf.sprintf
           "Relation: arity mismatch (relation has arity %d, tuple has %d)"
           (Tuple.arity u) (Tuple.arity t))
  | _ -> ()

let add t r =
  check_arity r t;
  TSet.add t r

let check_homogeneous ts =
  match ts with
  | [] | [ _ ] -> ()
  | t :: rest ->
      let a = Tuple.arity t in
      if List.exists (fun u -> Tuple.arity u <> a) rest then
        invalid_arg "Relation: arity mismatch"

(* fold-free bulk constructors: one homogeneity sweep, then a single
   balanced set build / union instead of per-tuple [add] *)
let of_list ts =
  check_homogeneous ts;
  TSet.of_list ts

let add_all ts r =
  match ts with
  | [] -> r
  | t :: _ ->
      check_homogeneous ts;
      check_arity r t;
      TSet.union (TSet.of_list ts) r

let of_rows rows = of_list (List.map Tuple.of_list rows)
let to_list = TSet.elements
let remove = TSet.remove
let mem = TSet.mem
let cardinal = TSet.cardinal
let is_empty = TSet.is_empty

let arity r =
  match TSet.choose_opt r with None -> None | Some t -> Some (Tuple.arity t)

let union a b =
  (match (TSet.choose_opt a, TSet.choose_opt b) with
  | Some x, Some y when Tuple.arity x <> Tuple.arity y ->
      invalid_arg "Relation.union: arity mismatch"
  | _ -> ());
  TSet.union a b

let inter = TSet.inter
let diff = TSet.diff
let subset = TSet.subset
let equal = TSet.equal
let compare = TSet.compare
let fold = TSet.fold
let iter = TSet.iter
let filter = TSet.filter
let exists = TSet.exists
let for_all = TSet.for_all
let map f r = fold (fun t acc -> add (f t) acc) r empty
let elements = TSet.elements
let choose_opt = TSet.choose_opt

let values r =
  let s =
    fold
      (fun t acc ->
        Array.fold_left (fun acc v -> VSet.add v acc) acc (Tuple.values t))
      r VSet.empty
  in
  VSet.elements s

let pp ppf r =
  Format.fprintf ppf "{@[<hov>%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Tuple.pp)
    (to_list r)

let to_string r = Format.asprintf "%a" pp r
