module VSet = Set.Make (Value)

(* Little-endian Patricia trie keyed by tuple hash (Okasaki & Gill).
   Canonical for a given key set, so structure never depends on insertion
   order; persistent, so [Instance] snapshots stay cheap. Each key maps
   to the (tiny) bucket of tuples sharing that hash. *)
module Imap = struct
  type 'a t =
    | Empty
    | Leaf of int * 'a
    | Branch of int * int * 'a t * 'a t
        (* Branch (prefix, mask, t0, t1): keys in [t0] have the mask bit
           clear; [prefix] is the keys' common low bits below the mask. *)

  let zero_bit k m = k land m = 0
  let mask k m = k land (m - 1)
  let match_prefix k p m = mask k m = p
  let lowest_bit x = x land -x
  let branching_bit p0 p1 = lowest_bit (p0 lxor p1)

  let join p0 t0 p1 t1 =
    let m = branching_bit p0 p1 in
    if zero_bit p0 m then Branch (mask p0 m, m, t0, t1)
    else Branch (mask p0 m, m, t1, t0)

  let rec find_opt k = function
    | Empty -> None
    | Leaf (j, x) -> if j = k then Some x else None
    | Branch (p, m, t0, t1) ->
        if not (match_prefix k p m) then None
        else if zero_bit k m then find_opt k t0
        else find_opt k t1

  let rec add k x = function
    | Empty -> Leaf (k, x)
    | Leaf (j, _) as t ->
        if j = k then Leaf (k, x) else join k (Leaf (k, x)) j t
    | Branch (p, m, t0, t1) as t ->
        if match_prefix k p m then
          if zero_bit k m then Branch (p, m, add k x t0, t1)
          else Branch (p, m, t0, add k x t1)
        else join k (Leaf (k, x)) p t

  let branch p m t0 t1 =
    match (t0, t1) with Empty, t | t, Empty -> t | _ -> Branch (p, m, t0, t1)

  let rec remove k = function
    | Empty -> Empty
    | Leaf (j, _) as t -> if j = k then Empty else t
    | Branch (p, m, t0, t1) as t ->
        if not (match_prefix k p m) then t
        else if zero_bit k m then branch p m (remove k t0) t1
        else branch p m t0 (remove k t1)

  let rec fold f t acc =
    match t with
    | Empty -> acc
    | Leaf (k, x) -> f k x acc
    | Branch (_, _, t0, t1) -> fold f t1 (fold f t0 acc)

  let rec add_with f k x = function
    | Empty -> Leaf (k, x)
    | Leaf (j, y) as t ->
        if j = k then Leaf (k, f x y) else join k (Leaf (k, x)) j t
    | Branch (p, m, t0, t1) as t ->
        if match_prefix k p m then
          if zero_bit k m then Branch (p, m, add_with f k x t0, t1)
          else Branch (p, m, t0, add_with f k x t1)
        else join k (Leaf (k, x)) p t

  (* Structural merge (Okasaki & Gill): disjoint subtrees are shared, not
     re-inserted leaf by leaf; [f] combines the two values at colliding
     keys (left argument from the left trie). *)
  let rec merge f s t =
    match (s, t) with
    | Empty, t -> t
    | s, Empty -> s
    | Leaf (k, x), t -> add_with f k x t
    | s, Leaf (k, x) -> add_with (fun a b -> f b a) k x s
    | Branch (p, m, s0, s1), Branch (q, n, t0, t1) ->
        if m = n && p = q then Branch (p, m, merge f s0 t0, merge f s1 t1)
        else if m < n && match_prefix q p m then
          if zero_bit q m then Branch (p, m, merge f s0 t, s1)
          else Branch (p, m, s0, merge f s1 t)
        else if m > n && match_prefix p q n then
          if zero_bit p n then Branch (q, n, merge f s t0, t1)
          else Branch (q, n, t0, merge f s t1)
        else join p s q t
end

type t = {
  buckets : Tuple.t list Imap.t;
  card : int;
  ar : int;  (** tuple arity; meaningful only when [card > 0] *)
  mutable sorted : Tuple.t list option;
      (** memoized order-on-demand view: every observer that can leak an
          order (printing, folds, element lists) reads the tuples in
          {!Tuple.compare} order, so output stays byte-identical to the
          former [Set.Make (Tuple)] backing *)
}

let empty = { buckets = Imap.Empty; card = 0; ar = 0; sorted = Some [] }

let check_homogeneous ts =
  match ts with
  | [] | [ _ ] -> ()
  | t :: rest ->
      let a = Tuple.arity t in
      if List.exists (fun u -> Tuple.arity u <> a) rest then
        invalid_arg "Relation: arity mismatch"

(* Bulk build from tuples known pairwise distinct: sort by hash to group
   collision buckets, then construct the (canonical, so identical to what
   repeated [add]s would produce) Patricia trie top-down by in-place
   partition on the branching bit — allocating exactly the final nodes
   instead of one root-to-leaf path copy per insertion. *)
(* Sort tuples by their cached hash through a parallel int-key array: the
   comparisons read a contiguous int array instead of chasing a pointer
   per element, which dominates bulk construction at scale. Hashes are
   avalanche-mixed (see {!Tuple.hash_ids}), so median-of-3 pivots face no
   adversarial orderings. *)
let sort_by_hash arr =
  let n = Array.length arr in
  let hs = Array.make n 0 in
  for i = 0 to n - 1 do
    hs.(i) <- Tuple.hash (Array.unsafe_get arr i)
  done;
  let swap i j =
    if i <> j then (
      let th = hs.(i) in
      hs.(i) <- hs.(j);
      hs.(j) <- th;
      let tt = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tt)
  in
  (* [lo, hi) *)
  let rec qs lo hi =
    if hi - lo <= 16 then
      for i = lo + 1 to hi - 1 do
        let h = hs.(i) and t = arr.(i) in
        let j = ref i in
        while !j > lo && hs.(!j - 1) > h do
          hs.(!j) <- hs.(!j - 1);
          arr.(!j) <- arr.(!j - 1);
          decr j
        done;
        hs.(!j) <- h;
        arr.(!j) <- t
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* median of three into position [lo] *)
      if hs.(mid) < hs.(lo) then swap mid lo;
      if hs.(hi - 1) < hs.(lo) then swap (hi - 1) lo;
      if hs.(hi - 1) < hs.(mid) then swap (hi - 1) mid;
      let p = hs.(mid) in
      let i = ref lo and j = ref (hi - 1) in
      while !i <= !j do
        while hs.(!i) < p do
          incr i
        done;
        while hs.(!j) > p do
          decr j
        done;
        if !i <= !j then (
          swap !i !j;
          incr i;
          decr j)
      done;
      qs lo (!j + 1);
      qs !i hi
    end
  in
  qs 0 n

let of_distinct ts =
  match ts with
  | [] -> empty
  | t0 :: _ ->
      check_homogeneous ts;
      let arr = Array.of_list ts in
      let n = Array.length arr in
      sort_by_hash arr;
      let keys = Array.make n 0 and buckets = Array.make n [] in
      let m = ref 0 in
      Array.iter
        (fun t ->
          let h = Tuple.hash t in
          if !m > 0 && keys.(!m - 1) = h then
            buckets.(!m - 1) <- t :: buckets.(!m - 1)
          else (
            keys.(!m) <- h;
            buckets.(!m) <- [ t ];
            incr m))
        arr;
      (* [lo, hi): at least one key, all agreeing below their lowest
         differing bit *)
      let rec build lo hi =
        if hi - lo = 1 then Imap.Leaf (keys.(lo), buckets.(lo))
        else
          let k0 = keys.(lo) in
          let d = ref 0 in
          for i = lo + 1 to hi - 1 do
            d := !d lor (keys.(i) lxor k0)
          done;
          let bm = Imap.lowest_bit !d in
          let i = ref lo and j = ref (hi - 1) in
          while !i < !j do
            if keys.(!i) land bm = 0 then incr i
            else if keys.(!j) land bm <> 0 then decr j
            else (
              let tk = keys.(!i) in
              keys.(!i) <- keys.(!j);
              keys.(!j) <- tk;
              let tb = buckets.(!i) in
              buckets.(!i) <- buckets.(!j);
              buckets.(!j) <- tb)
          done;
          let mid = if keys.(!i) land bm = 0 then !i + 1 else !i in
          Imap.Branch (Imap.mask k0 bm, bm, build lo mid, build mid hi)
      in
      { buckets = build 0 !m; card = n; ar = Tuple.arity t0; sorted = None }

let raw_fold f r acc =
  Imap.fold (fun _ bucket acc -> List.fold_left (fun a t -> f t a) acc bucket)
    r.buckets acc

let to_list r =
  match r.sorted with
  | Some l -> l
  | None ->
      let l = List.sort Tuple.compare (raw_fold (fun t l -> t :: l) r []) in
      r.sorted <- Some l;
      l

(* Rebuild from a list known to be sorted and duplicate-free: the sorted
   view comes for free. *)
let of_sorted _ar l =
  let r = of_distinct l in
  r.sorted <- Some l;
  r

let check_arity r t =
  if r.card > 0 && Tuple.arity t <> r.ar then
    invalid_arg
      (Printf.sprintf
         "Relation: arity mismatch (relation has arity %d, tuple has %d)" r.ar
         (Tuple.arity t))

let mem t r =
  match Imap.find_opt (Tuple.hash t) r.buckets with
  | None -> false
  | Some bucket -> List.exists (Tuple.equal t) bucket

let mem_ids ids r =
  match Imap.find_opt (Tuple.hash_ids ids) r.buckets with
  | None -> false
  | Some bucket -> List.exists (fun u -> Tuple.equal_ids u ids) bucket

let add t r =
  check_arity r t;
  let h = Tuple.hash t in
  let dup = ref false in
  let buckets =
    Imap.add_with
      (fun _new old ->
        if List.exists (Tuple.equal t) old then (
          dup := true;
          old)
        else t :: old)
      h [ t ] r.buckets
  in
  if !dup then r
  else { buckets; card = r.card + 1; ar = Tuple.arity t; sorted = None }

let singleton t = add t empty

let of_list ts =
  check_homogeneous ts;
  List.fold_left (fun r t -> add t r) empty ts

let add_all ts r =
  check_homogeneous ts;
  List.fold_left (fun r t -> add t r) r ts

let of_rows rows = of_list (List.map Tuple.of_list rows)

let remove t r =
  let h = Tuple.hash t in
  match Imap.find_opt h r.buckets with
  | None -> r
  | Some bucket ->
      if not (List.exists (Tuple.equal t) bucket) then r
      else
        let bucket' = List.filter (fun u -> not (Tuple.equal u t)) bucket in
        let buckets =
          if bucket' = [] then Imap.remove h r.buckets
          else Imap.add h bucket' r.buckets
        in
        { buckets; card = r.card - 1; ar = r.ar; sorted = None }

let cardinal r = r.card
let is_empty r = r.card = 0
let arity r = if r.card = 0 then None else Some r.ar

let subset a b =
  a.card <= b.card && raw_fold (fun t ok -> ok && mem t b) a true

let equal a b = a == b || (a.card = b.card && subset a b)

let union a b =
  if a.card > 0 && b.card > 0 && a.ar <> b.ar then
    invalid_arg "Relation.union: arity mismatch";
  if a.card = 0 then b
  else if b.card = 0 then a
  else
    (* structural trie merge: disjoint subtrees are shared wholesale;
       only hash-colliding buckets are combined element by element *)
    let dups = ref 0 in
    let merge_buckets ba bb =
      List.fold_left
        (fun acc t ->
          if List.exists (Tuple.equal t) bb then (
            incr dups;
            acc)
          else t :: acc)
        bb ba
    in
    let buckets = Imap.merge merge_buckets a.buckets b.buckets in
    { buckets; card = a.card + b.card - !dups; ar = a.ar; sorted = None }

let inter a b =
  if a.card = 0 || b.card = 0 then empty
  else
    let small, big = if a.card <= b.card then (a, b) else (b, a) in
    raw_fold (fun t r -> if mem t big then add t r else r) small empty

let diff a b =
  if a.card = 0 || b.card = 0 then a
  else raw_fold (fun t r -> if mem t b then r else add t r) a empty

(* Total order consistent with [equal]: lexicographic over the sorted
   element sequences, exactly the order [Set.Make(Tuple).compare]
   exposed. *)
let compare a b =
  if a == b then 0 else List.compare Tuple.compare (to_list a) (to_list b)

let fold f r acc = List.fold_left (fun acc t -> f t acc) acc (to_list r)
let iter f r = List.iter f (to_list r)
let unordered_fold = raw_fold
let unordered_iter f r = raw_fold (fun t () -> f t) r ()
let filter p r = of_sorted r.ar (List.filter p (to_list r))
let exists p r = List.exists p (to_list r)
let for_all p r = List.for_all p (to_list r)
let map f r = fold (fun t acc -> add (f t) acc) r empty
let elements = to_list

let choose_opt r =
  match r.sorted with
  | Some [] -> None
  | Some (t :: _) -> Some t
  | None ->
      (* minimum element, matching [Set.choose_opt], without forcing the
         full sorted view *)
      raw_fold
        (fun t best ->
          match best with
          | Some u when Tuple.compare u t <= 0 -> best
          | _ -> Some t)
        r None

let values r =
  let s =
    raw_fold
      (fun t acc ->
        Array.fold_left (fun acc v -> VSet.add v acc) acc (Tuple.values t))
      r VSet.empty
  in
  VSet.elements s

let pp ppf r =
  Format.fprintf ppf "{@[<hov>%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Tuple.pp)
    (to_list r)

let to_string r = Format.asprintf "%a" pp r
