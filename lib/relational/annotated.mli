(** Semiring-annotated relations: a {!Relation.t} support plus a
    side-car map from interned-id vectors to {!Semiring.v} values, and
    the K-relation operators over them (union ⊕, join/product ⊗,
    projection ⊕-aggregation).

    The side-car representation keeps the set core untouched: Boolean
    evaluation never sees these maps, so the hot path cannot regress.
    The annotated interpreters favor clarity over fusion — they serve
    provenance queries and test oracles, not the fixpoint loop (which
    goes through {!Datalog.Annot_eval}'s derivation-graph iteration). *)

type map
(** Mutable annotation map keyed by interned-id vectors. Tuples absent
    from the map are implicitly [zero]. *)

val create_map : ?size:int -> unit -> map
val set : map -> int array -> Semiring.v -> unit

(** [find sr m ids] is the annotation of [ids], or [sr.zero]. *)
val find : Semiring.t -> map -> int array -> Semiring.v

(** [combine sr m ids v]: [m(ids) ← m(ids) ⊕ v]. *)
val combine : Semiring.t -> map -> int array -> Semiring.v -> unit

val fold : (int array -> Semiring.v -> 'a -> 'a) -> map -> 'a -> 'a
val cardinal : map -> int

type rel = { rel : Relation.t; ann : map }
(** An annotated relation. Invariant maintained by the operators:
    every tuple of [rel] has a non-[zero] entry in [ann]. *)

val empty : rel

(** [annotation sr r t] is [t]'s annotation in [r] (or [sr.zero]). *)
val annotation : Semiring.t -> rel -> Tuple.t -> Semiring.v

(** [of_relation sr r f] annotates each tuple of [r] with [f t],
    dropping tuples annotated [zero]. *)
val of_relation : Semiring.t -> Relation.t -> (Tuple.t -> Semiring.v) -> rel

val union : Semiring.t -> rel -> rel -> rel
val select : (Tuple.t -> bool) -> rel -> rel

(** ⊕-aggregates the input tuples collapsing onto one output row. *)
val project : Semiring.t -> int list -> rel -> rel

(** Equijoin on column pairs, full-width output, annotations ⊗-combined.
    [product] is the empty-pairs case. *)
val join : Semiring.t -> (int * int) list -> rel -> rel -> rel

val product : Semiring.t -> rel -> rel -> rel

(** Coinciding tuples ⊗-combine. *)
val inter : Semiring.t -> rel -> rel -> rel

(** A support filter: survivors keep their left annotation (the right
    operand contributes existence, not multiplicity — the demand
    compiler's guard semantics). *)
val semijoin : (int * int) list -> rel -> rel -> rel

exception Unsupported of string

(** [eval sr ~leaf inst e] evaluates an {!Algebra} expression with
    annotations: base facts of relation [p] get [leaf p t]. Under
    [Bool] the whole expression delegates to {!Algebra.eval} (the set
    semantics {e is} the Boolean instance) and every tuple is [B true].
    @raise Unsupported when a non-monotone operator (difference,
    antijoin, complement, adom) appears under a non-Boolean instance —
    those need additive inverses no semiring here has. *)
val eval :
  Semiring.t ->
  leaf:(string -> Tuple.t -> Semiring.v) ->
  Instance.t ->
  Algebra.expr ->
  rel
