(* Recursive-descent parser for the FO query surface syntax used by the
   CLI. Grammar (loosest binding first):

     formula  ::= or_f ("->" formula)?          right-associative
     or_f     ::= and_f (("|" | "or") and_f)*
     and_f    ::= unary (("&" | "and") unary)*
     unary    ::= ("!" | "not") unary
                | ("exists" | "forall") var ("," var)* "(" formula ")"
                | primary
     primary  ::= "(" formula ")" | "true" | "false"
                | ident "(" terms ")"           atom
                | term ("=" | "!=") term
     term     ::= uppercase ident               variable
                | int / "string" / ident        constant (Value.parse)

   The variable convention follows the Datalog surface syntax: an
   identifier starting with an uppercase letter (or underscore) is a
   variable, everything else is a constant. *)

type token =
  | Ident of string
  | Str_lit of string
  | Int_lit of string
  | Lparen
  | Rparen
  | Comma
  | Bang
  | Bang_eq
  | Equal
  | Amp
  | Bar
  | Arrow
  | Eof

exception Parse_error of string

let error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (push Lparen; incr i)
    else if c = ')' then (push Rparen; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = '=' then (push Equal; incr i)
    else if c = '&' then (push Amp; incr i)
    else if c = '|' then (push Bar; incr i)
    else if c = '!' then
      if !i + 1 < n && s.[!i + 1] = '=' then (push Bang_eq; i := !i + 2)
      else (push Bang; incr i)
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '>' then
      (push Arrow; i := !i + 2)
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do incr j done;
      if !j >= n then error "unterminated string literal";
      push (Str_lit (String.sub s !i (!j - !i + 1)));
      i := !j + 1
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      if c = '-' && !j = !i + 1 then error "stray '-' (expected ->)";
      push (Int_lit (String.sub s !i (!j - !i)));
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      push (Ident (String.sub s !i (!j - !i)));
      i := !j
    end
    else error "unexpected character %C" c
  done;
  push Eof;
  List.rev !toks

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t what =
  if peek st = t then advance st else error "expected %s" what

let is_var name = name <> "" && (name.[0] = '_' || (name.[0] >= 'A' && name.[0] <= 'Z'))

let term_of st =
  match peek st with
  | Ident name ->
      advance st;
      if is_var name then Fo.Var name else Fo.Cst (Value.parse name)
  | Str_lit s ->
      advance st;
      Fo.Cst (Value.parse s)
  | Int_lit s ->
      advance st;
      Fo.Cst (Value.parse s)
  | _ -> error "expected a term"

let keyword = function
  | Ident ("exists" | "forall" | "not" | "and" | "or" | "true" | "false") ->
      true
  | _ -> false

let rec formula st =
  let lhs = or_f st in
  match peek st with
  | Arrow ->
      advance st;
      Fo.Implies (lhs, formula st)
  | _ -> lhs

and or_f st =
  let lhs = ref (and_f st) in
  let rec loop () =
    match peek st with
    | Bar | Ident "or" ->
        advance st;
        lhs := Fo.Or (!lhs, and_f st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and and_f st =
  let lhs = ref (unary st) in
  let rec loop () =
    match peek st with
    | Amp | Ident "and" ->
        advance st;
        lhs := Fo.And (!lhs, unary st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and unary st =
  match peek st with
  | Bang | Ident "not" ->
      advance st;
      Fo.Not (unary st)
  | Ident (("exists" | "forall") as q) ->
      advance st;
      let rec vars acc =
        match peek st with
        | Ident name when not (keyword (Ident name)) ->
            advance st;
            if not (is_var name) then
              error "quantified name %s must start with an uppercase letter"
                name;
            let acc = acc @ [ name ] in
            if peek st = Comma then (advance st; vars acc) else acc
        | _ -> error "expected a variable after %s" q
      in
      let xs = vars [] in
      expect st Lparen "'(' before quantified body";
      let body = formula st in
      expect st Rparen "')' after quantified body";
      if q = "exists" then Fo.Exists (xs, body) else Fo.Forall (xs, body)
  | _ -> primary st

and primary st =
  match peek st with
  | Lparen ->
      advance st;
      let f = formula st in
      expect st Rparen "')'";
      f
  | Ident "true" ->
      advance st;
      Fo.True
  | Ident "false" ->
      advance st;
      Fo.False
  | Ident name
    when (not (keyword (Ident name)))
         && (match st.toks with _ :: Lparen :: _ -> true | _ -> false) ->
      advance st;
      advance st;
      let rec args acc =
        match peek st with
        | Rparen ->
            advance st;
            acc
        | _ ->
            let t = term_of st in
            let acc = acc @ [ t ] in
            if peek st = Comma then (advance st; args acc)
            else (expect st Rparen "')' after atom arguments"; acc)
      in
      Fo.Atom (name, args [])
  | _ ->
      let a = term_of st in
      (match peek st with
      | Equal ->
          advance st;
          Fo.Eq (a, term_of st)
      | Bang_eq ->
          advance st;
          Fo.Not (Fo.Eq (a, term_of st))
      | _ -> error "expected '=' or '!=' after a term")

let formula_of_string s =
  let st = { toks = tokenize s } in
  let f = formula st in
  if peek st <> Eof then error "trailing input after formula";
  f
