(** Domain values.

    The paper assumes an infinite set [dom] of constants. We realize it as
    integers, strings and symbols, plus a distinguished countable supply of
    {e invented} values used by Datalog¬new (Section 4.3 of the paper):
    invented values are created during evaluation, are distinct from all
    input constants, and are never allowed in final answers of safe
    programs. *)

type t =
  | Int of int        (** integer constant *)
  | Str of string     (** string constant, e.g. ["alice"] *)
  | Sym of string     (** symbolic constant, e.g. [a], [b] in the paper *)
  | New of int        (** invented value #n (Datalog¬new only) *)

(** Total order on values. Invented values sort after all constants so that
    answers over the input domain are stable under invention. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Structural hash, allocation-free: tag and payload are mixed directly
    instead of boxing a [(tag, payload)] tuple per call. *)
val hash : t -> int

(** [is_invented v] is [true] iff [v] was created by value invention. *)
val is_invented : t -> bool

(** [int n], [str s], [sym s] are construction shorthands. *)
val int : int -> t

val str : string -> t
val sym : string -> t

(** Pretty-printer: symbols print bare, strings quoted, invented values as
    [ν42]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [parse s] reads a value back from its surface syntax: an integer literal,
    a quoted string, or a bare symbol. Inverse of [to_string] for
    non-invented values.
    @raise Invalid_argument on the empty string and on malformed string
    literals — an input starting with ['"'] must be a complete quoted
    literal with nothing after the closing quote (["ab"cd] is rejected,
    not truncated to [ab]). *)
val parse : string -> t

(** Process-wide value interning: every constant that enters the
    relational layer (through {!Tuple.make} and friends) is mapped to a
    dense integer id. Tuples store ids, so membership, join keys and
    deduplication reduce to machine-integer comparisons; the value itself
    is recovered with {!Intern.of_id} only at the boundaries
    (pretty-printing, substitutions handed back to engines).

    Ids are allocated in first-intern order and never recycled; they are
    {e not} ordered like values — use {!Intern.compare_ids} (or decode)
    whenever value order matters.

    The table is domain-safe: [id] serializes writers behind a mutex,
    while [of_id] / [compare_ids] / [size] are lock-free readers over an
    immutable snapshot array, so parallel evaluation workers can decode
    and compare freely while first-interns proceed. *)
module Intern : sig
  type value := t

  (** [id v] is the dense id of [v], interning it on first sight.
      Idempotent: equal values always receive the same id. *)
  val id : value -> int

  (** [of_id i] recovers the value interned as [i].
      @raise Invalid_argument on ids never returned by {!id}. *)
  val of_id : int -> value

  (** [compare_ids a b] orders two ids by {!Value.compare} on the values
      they denote (equal ids short-circuit without decoding). *)
  val compare_ids : int -> int -> int

  (** [size ()] is the number of distinct values interned so far. *)
  val size : unit -> int

  (** [hits ()] counts [id] calls that found an existing entry — the
      intern table's hit counter for the observability layer. *)
  val hits : unit -> int
end

(** A fresh-value source for Datalog¬new. Counters are independent; the
    engine threads one through a computation so invented values never
    collide with each other. Invented values are guaranteed distinct from
    all constants by construction (they live in their own branch of [t]). *)
module Gen : sig
  type value := t
  type t

  (** [create ()] is a fresh source starting at [ν0]. *)
  val create : unit -> t

  (** [fresh g] returns the next invented value. *)
  val fresh : t -> value

  (** [count g] is the number of values invented so far. *)
  val count : t -> int
end
