(* A tuple is a flat array of interned value ids plus its precomputed
   hash: equality is int-array comparison, hashing is a field read, and
   the constant's structure is only revisited when a component is decoded
   back to a [Value.t]. *)

type t = { ids : int array; h : int }

(* Avalanching mix (FxHash-style): interned ids are dense small ints, so
   a plain [h*31 + id] polynomial leaves almost all entropy in a few low
   bits' worth of range — 79k two-column tuples over 300 constants would
   share ~10k hash values, degrading every hash structure (and the
   hash-keyed relation trie) into long collision chains. The multiply
   spreads each id across the word; the xor-shift folds the high bits
   back down so the low bits (trie branch bits, table masks) are well
   distributed too. *)
let hash_ids ids =
  let n = Array.length ids in
  let h = ref (n + 0x9E3779B9) in
  for i = 0 to n - 1 do
    let x = (!h lxor Array.unsafe_get ids i) * 0x9E3779B1 in
    h := x lxor (x lsr 29)
  done;
  !h land max_int

let of_ids ids = { ids; h = hash_ids ids }

let equal_ids t ids =
  let la = Array.length t.ids in
  la = Array.length ids
  &&
  let rec eq i =
    i = la || (Array.unsafe_get t.ids i = Array.unsafe_get ids i && eq (i + 1))
  in
  eq 0
let make vs = of_ids (Array.map Value.Intern.id vs)
let of_list vs = of_ids (Array.of_list (List.map Value.Intern.id vs))
let to_list t = List.map Value.Intern.of_id (Array.to_list t.ids)
let arity t = Array.length t.ids
let ids t = t.ids

let id t i =
  if i < 0 || i >= Array.length t.ids then
    invalid_arg
      (Printf.sprintf "Tuple.get: index %d out of bounds (arity %d)" i
         (Array.length t.ids))
  else Array.unsafe_get t.ids i

let get t i = Value.Intern.of_id (id t i)

let compare a b =
  let la = Array.length a.ids and lb = Array.length b.ids in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i = la then 0
      else
        let c =
          Value.Intern.compare_ids
            (Array.unsafe_get a.ids i)
            (Array.unsafe_get b.ids i)
        in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b =
  a == b
  || a.h = b.h
     &&
     let la = Array.length a.ids in
     la = Array.length b.ids
     &&
     let rec eq i =
       i = la
       || Array.unsafe_get a.ids i = Array.unsafe_get b.ids i && eq (i + 1)
     in
     eq 0

let hash t = t.h
let project t cols = of_ids (Array.of_list (List.map (fun i -> id t i) cols))
let concat a b = of_ids (Array.append a.ids b.ids)
let values t = Array.map Value.Intern.of_id t.ids
let exists p t = Array.exists (fun i -> p (Value.Intern.of_id i)) t.ids
let rename t perm = of_ids (Array.map (fun i -> id t i) perm)

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (values t)

let to_string t = Format.asprintf "%a" pp t
