module SMap = Map.Make (String)

type rel = { name : string; arity : int; attrs : string array option }

let rel name arity =
  if arity < 0 then invalid_arg "Schema.rel: negative arity";
  { name; arity; attrs = None }

let rel_attrs name attrs =
  let a = Array.of_list attrs in
  { name; arity = Array.length a; attrs = Some a }

let attr_index r a =
  match r.attrs with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Schema.attr_index: relation %s declares no attribute names \
            (looking up %s)"
           r.name a)
  | Some attrs -> (
      let found = ref (-1) in
      Array.iteri (fun i x -> if x = a && !found < 0 then found := i) attrs;
      match !found with
      | -1 ->
          invalid_arg
            (Printf.sprintf "Schema.attr_index: relation %s has no attribute %s"
               r.name a)
      | i -> i)

type t = rel SMap.t

let empty = SMap.empty

let add r s =
  match SMap.find_opt r.name s with
  | Some prev when prev.arity <> r.arity ->
      invalid_arg
        (Printf.sprintf
           "Schema.add: relation %s redeclared with arity %d (was %d)" r.name
           r.arity prev.arity)
  | _ -> SMap.add r.name r s

let of_list rs = List.fold_left (fun s r -> add r s) empty rs
let find name s = SMap.find_opt name s
let mem = SMap.mem
let names s = List.map fst (SMap.bindings s)

let arity_of name s =
  match SMap.find_opt name s with
  | None -> invalid_arg ("Schema.arity_of: unknown relation " ^ name)
  | Some r -> r.arity

let fold f s acc = SMap.fold (fun _ r acc -> f r acc) s acc
let union a b = SMap.fold (fun _ r acc -> add r acc) b a

let pp ppf s =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf r ->
         Format.fprintf ppf "%s/%d" r.name r.arity))
    (List.map snd (SMap.bindings s))
