(** EXPLAIN for compiled {!Algebra} plans: render an operator tree with
    cold (structure, arity, stored cardinalities) and hot (measured row
    flow and wall time from an {!Algebra.profile}) annotations.

    Cold, a node line shows the operator, its own argument (join keys,
    projection columns, selection condition, scanned relation), the
    output arity when the instance's schema determines it, and for base
    scans the stored cardinality:

    {v
    project[1] arity=1
      join[1=0] arity=4
        scan[magic_T__bf] arity=1 rows=1
        scan[G] arity=2 rows=3
    v}

    Hot — after evaluating the plan under a profile — each executed
    node additionally reports [rows_out]/[rows_in] (summed across
    executions), [execs], the out/in selectivity, and self/total wall
    milliseconds. Operators the evaluator fuses away (projections run
    inside a join's probe loop, complements probed against a join's
    dedup set) carry no measurements of their own: their work is
    reported in the fusing parent's self time
    (see {!Algebra.profile}). *)

(** [text ?inst ?profile e] is the annotated tree, one node per line,
    children indented two spaces, in operand order. *)
val text : ?inst:Instance.t -> ?profile:Algebra.profile -> Algebra.expr -> string

(** [json ?inst ?profile e] is the same tree as JSON: per node ["op"],
    optional ["detail"], ["arity"], ["rows"] (stored cardinality, scans
    only), ["profile"] ([execs], [rows_in], [rows_out], [self_ns],
    [total_ns], optional [selectivity]), and ["children"]. *)
val json :
  ?inst:Instance.t -> ?profile:Algebra.profile -> Algebra.expr ->
  Observe.Json.t
