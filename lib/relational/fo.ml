type term = Var of string | Cst of Value.t

type formula =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of string list * formula
  | Forall of string list * formula

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

(* --- shared syntax collectors ------------------------------------------- *)

(* The free-variable and constant collectors are shared with the
   fixpoint-logic formulas (a structurally different type): each logic
   supplies its own traversal, the hashtable-backed dedup/ordering lives
   here once. *)

let collect_free_vars run =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let note bound x =
    if (not (List.mem x bound)) && not (Hashtbl.mem seen x) then (
      Hashtbl.add seen x ();
      out := x :: !out)
  in
  run note;
  List.rev !out

let collect_constants run =
  let module VSet = Set.Make (Value) in
  let acc = ref VSet.empty in
  run (fun v -> acc := VSet.add v !acc);
  VSet.elements !acc

let free_vars f =
  collect_free_vars (fun note ->
      let term bound = function Var x -> note bound x | Cst _ -> () in
      let rec go bound = function
        | True | False -> ()
        | Atom (_, ts) -> List.iter (term bound) ts
        | Eq (a, b) ->
            term bound a;
            term bound b
        | Not f -> go bound f
        | And (a, b) | Or (a, b) | Implies (a, b) ->
            go bound a;
            go bound b
        | Exists (xs, f) | Forall (xs, f) -> go (xs @ bound) f
      in
      go [] f)

let constants f =
  collect_constants (fun note ->
      let term = function Cst v -> note v | Var _ -> () in
      let rec go = function
        | True | False -> ()
        | Atom (_, ts) -> List.iter term ts
        | Eq (a, b) ->
            term a;
            term b
        | Not f -> go f
        | And (a, b) | Or (a, b) | Implies (a, b) ->
            go a;
            go b
        | Exists (_, f) | Forall (_, f) -> go f
      in
      go f)

type env = (string * Value.t) list

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Fo: unbound variable %s" x)

let term_value env = function Var x -> lookup env x | Cst v -> v

let default_dom inst f =
  let module VSet = Set.Make (Value) in
  VSet.elements
    (VSet.union
       (VSet.of_list (Instance.adom inst))
       (VSet.of_list (constants f)))

let check_covered what fv vars =
  match List.filter (fun x -> not (List.mem x vars)) fv with
  | [] -> ()
  | missing ->
      invalid_arg
        (Printf.sprintf "Fo.%s: free variable%s %s not in output list" what
           (if List.length missing = 1 then "" else "s")
           (String.concat ", " missing))

(* --- naive reference evaluator ------------------------------------------ *)

let holds ?dom inst env f =
  let dom = match dom with Some d -> d | None -> default_dom inst f in
  let rec go env = function
    | True -> true
    | False -> false
    | Atom (p, ts) ->
        Instance.mem_fact p
          (Tuple.of_list (List.map (term_value env) ts))
          inst
    | Eq (a, b) -> Value.equal (term_value env a) (term_value env b)
    | Not f -> not (go env f)
    | And (a, b) -> go env a && go env b
    | Or (a, b) -> go env a || go env b
    | Implies (a, b) -> (not (go env a)) || go env b
    | Exists (xs, f) -> quant_ex env xs f
    | Forall (xs, f) -> not (quant_ex env xs (Not f))
  and quant_ex env xs f =
    match xs with
    | [] -> go env f
    | x :: rest -> List.exists (fun v -> quant_ex ((x, v) :: env) rest f) dom
  in
  go env f

let eval_naive ?dom inst f vars =
  check_covered "eval" (free_vars f) vars;
  let dom = match dom with Some d -> d | None -> default_dom inst f in
  let rec enum env = function
    | [] ->
        if holds ~dom inst env f then
          [ Tuple.of_list (List.map (fun x -> lookup env x) vars) ]
        else []
    | x :: rest -> List.concat_map (fun v -> enum ((x, v) :: env) rest) dom
  in
  Relation.of_list (enum [] vars)

let sentence_naive ?dom inst f =
  (match free_vars f with
  | [] -> ()
  | missing ->
      invalid_arg
        (Printf.sprintf "Fo.sentence: free variable%s %s"
           (if List.length missing = 1 then "" else "s")
           (String.concat ", " missing)));
  holds ?dom inst [] f

(* --- printing ------------------------------------------------------------ *)

let pp_term ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Cst v -> Value.pp ppf v

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom (p, ts) ->
      Format.fprintf ppf "%s(%a)" p
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_term)
        ts
  | Eq (a, b) -> Format.fprintf ppf "%a = %a" pp_term a pp_term b
  | Not f -> Format.fprintf ppf "\xc2\xac%a" pp_paren f
  | And (a, b) ->
      Format.fprintf ppf "%a \xe2\x88\xa7 %a" pp_paren a pp_paren b
  | Or (a, b) -> Format.fprintf ppf "%a \xe2\x88\xa8 %a" pp_paren a pp_paren b
  | Implies (a, b) ->
      Format.fprintf ppf "%a \xe2\x86\x92 %a" pp_paren a pp_paren b
  | Exists (xs, f) ->
      Format.fprintf ppf "\xe2\x88\x83%a %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Format.pp_print_string)
        xs pp_paren f
  | Forall (xs, f) ->
      Format.fprintf ppf "\xe2\x88\x80%a %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Format.pp_print_string)
        xs pp_paren f

and pp_paren ppf f =
  match f with
  | True | False | Atom _ | Eq _ | Not _ -> pp ppf f
  | _ -> Format.fprintf ppf "(%a)" pp f

(* --- safe-range compilation to the algebra ------------------------------- *)

module A = Algebra

(* Negation-normal form: ¬ pushed to atoms/equalities/∃, → and ∀
   eliminated. After [nnf], [Not] wraps only [Atom], [Eq] or [Exists]. *)
let rec nnf f =
  match f with
  | True | False | Atom _ | Eq _ -> f
  | Not g -> nnf_not g
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Implies (a, b) -> Or (nnf_not a, nnf b)
  | Exists (xs, g) -> Exists (xs, nnf g)
  | Forall (xs, g) -> Not (Exists (xs, nnf_not g))

and nnf_not f =
  match f with
  | True -> False
  | False -> True
  | Atom _ | Eq _ -> Not f
  | Not g -> nnf g
  | And (a, b) -> Or (nnf_not a, nnf_not b)
  | Or (a, b) -> And (nnf_not a, nnf_not b)
  | Implies (a, b) -> And (nnf a, nnf_not b)
  | Exists (xs, g) -> Not (Exists (xs, nnf g))
  | Forall (xs, g) -> Exists (xs, nnf_not g)

(* Constant folding. Dropping a subformula may drop free variables; the
   compiler re-binds missing output variables by domain expansion, which
   coincides with the naive semantics for the dropped operand. *)
let rec simplify f =
  match f with
  | True | False | Atom _ -> f
  | Eq (Cst c, Cst d) -> if Value.equal c d then True else False
  | Eq _ -> f
  | Not g -> (
      match simplify g with True -> False | False -> True | g -> Not g)
  | And (a, b) -> (
      match (simplify a, simplify b) with
      | False, _ | _, False -> False
      | True, x | x, True -> x
      | a, b -> And (a, b))
  | Or (a, b) -> (
      match (simplify a, simplify b) with
      | True, _ | _, True -> True
      | False, x | x, False -> x
      | a, b -> Or (a, b))
  | Implies (a, b) -> (
      match (simplify a, simplify b) with
      | False, _ -> True
      | True, b -> b
      | _, True -> True
      | a, b -> Implies (a, b))
  | Exists (xs, g) -> (
      match simplify g with False -> False | g -> Exists (xs, g))
  | Forall (xs, g) -> (
      match simplify g with True -> True | g -> Forall (xs, g))

(* Compilation context. [dom] is a unary algebra expression denoting the
   quantification domain; [restrict] is set on the explicit-[?dom] path,
   where atom columns and constant generators must additionally be
   filtered against [dom] (under the default domain they are covered by
   construction: adom ∪ constants(f)). [fallbacks] counts the columns
   materialized by bounded active-domain expansion — the per-variable
   fallback of the range-restriction translation. *)
type cctx = {
  cdom : A.expr;
  restrict : bool;
  mutable fallbacks : int;
  mutable catoms : (string * int) list;
}

(* A compiled subformula: an algebra expression whose columns are named
   by [cols]. Invariant: [cols] lists (a permutation of a subset of) the
   subformula's free variables, without duplicates; a free variable may
   only be missing when the subformula's truth does not depend on it, in
   which case the consumer re-binds it over the domain. *)
type ce = { e : A.expr; cols : string list }

let nullary_true = A.Const (Relation.singleton (Tuple.of_ids [||]))

let unary_rel vs = Relation.of_list (List.map (fun v -> Tuple.of_list [ v ]) vs)

let idx cols x =
  let rec go i = function
    | [] -> invalid_arg ("Fo.compile: internal column lookup failed for " ^ x)
    | y :: rest -> if String.equal x y then i else go (i + 1) rest
  in
  go 0 cols

(* Bind one more output column by active-domain expansion. *)
let pad ctx ce x =
  ctx.fallbacks <- ctx.fallbacks + 1;
  { e = A.Product (ce.e, ctx.cdom); cols = ce.cols @ [ x ] }

let pad_to ctx ce target =
  List.fold_left
    (fun ce v -> if List.mem v ce.cols then ce else pad ctx ce v)
    ce target

let permute ce target =
  if ce.cols = target then ce
  else { e = A.Project (List.map (idx ce.cols) target, ce.e); cols = target }

let restrict_cols ctx e k =
  if not ctx.restrict then e
  else
    let rec go e i =
      if i = k then e else go (A.Semijoin ([ (i, 0) ], e, ctx.cdom)) (i + 1)
    in
    go e 0

let const_singleton ctx x c =
  let base = A.Const (Relation.singleton (Tuple.of_list [ c ])) in
  let e = if ctx.restrict then A.Semijoin ([ (0, 0) ], base, ctx.cdom) else base in
  { e; cols = [ x ] }

let compile_atom ctx p ts =
  ctx.catoms <- (p, List.length ts) :: ctx.catoms;
  let conds = ref [] in
  let seen = ref [] in
  List.iteri
    (fun i t ->
      match t with
      | Cst v -> conds := A.Col_eq_const (i, v) :: !conds
      | Var x -> (
          match List.assoc_opt x !seen with
          | Some j -> conds := A.Col_eq_col (j, i) :: !conds
          | None -> seen := !seen @ [ (x, i) ]))
    ts;
  let e = A.Rel p in
  let e =
    match List.rev !conds with
    | [] -> e
    | c :: cs -> A.Select (List.fold_left (fun a c -> A.And (a, c)) c cs, e)
  in
  let cols = List.map fst !seen in
  let positions = List.map snd !seen in
  (* skip identity projections: distinct variables, no constants *)
  let e =
    if positions = List.init (List.length ts) Fun.id then e
    else A.Project (positions, e)
  in
  { e = restrict_cols ctx e (List.length cols); cols }

let rec flatten_and = function
  | And (a, b) -> flatten_and a @ flatten_and b
  | f -> [ f ]

let rec flatten_or = function
  | Or (a, b) -> flatten_or a @ flatten_or b
  | f -> [ f ]

let rec compile0 ctx f : ce =
  match f with
  | True -> { e = nullary_true; cols = [] }
  | False -> { e = A.Const Relation.empty; cols = [] }
  | Atom (p, ts) -> compile_atom ctx p ts
  | Eq (a, b) -> compile_eq ctx a b
  | And _ -> compile_and ctx (flatten_and f)
  | Or _ ->
      let ces = List.map (compile0 ctx) (flatten_or f) in
      let target =
        List.fold_left
          (fun acc ce ->
            acc @ List.filter (fun v -> not (List.mem v acc)) ce.cols)
          [] ces
      in
      let aligned =
        List.map (fun ce -> permute (pad_to ctx ce target) target) ces
      in
      let e =
        match aligned with
        | [] -> A.Const Relation.empty
        | first :: rest ->
            List.fold_left (fun acc ce -> A.Union (acc, ce.e)) first.e rest
      in
      { e; cols = target }
  | Not g ->
      let cg = compile0 ctx g in
      let k = List.length cg.cols in
      if k = 0 then { e = A.Diff (nullary_true, cg.e); cols = [] }
      else (
        ctx.fallbacks <- ctx.fallbacks + k;
        { e = A.Complement (k, ctx.cdom, cg.e); cols = cg.cols })
  | Exists (xs, g) ->
      let cg = compile0 ctx g in
      let keep = List.filter (fun v -> not (List.mem v xs)) cg.cols in
      let e =
        if List.length keep = List.length cg.cols then cg.e
        else A.Project (List.map (idx cg.cols) keep, cg.e)
      in
      (* a quantified variable absent from the body still ranges over the
         domain: ∃x φ is false on an empty domain even when φ holds *)
      let absent = List.exists (fun x -> not (List.mem x cg.cols)) xs in
      let e = if absent then A.Semijoin ([], e, ctx.cdom) else e in
      { e; cols = keep }
  | Implies _ | Forall _ -> compile0 ctx (nnf f)

and compile_eq ctx a b =
  match (a, b) with
  | Cst c, Cst d ->
      if Value.equal c d then { e = nullary_true; cols = [] }
      else { e = A.Const Relation.empty; cols = [] }
  | Var x, Var y when String.equal x y ->
      ctx.fallbacks <- ctx.fallbacks + 1;
      { e = ctx.cdom; cols = [ x ] }
  | Var x, Var y ->
      ctx.fallbacks <- ctx.fallbacks + 1;
      { e = A.Project ([ 0; 0 ], ctx.cdom); cols = [ x; y ] }
  | Var x, Cst c | Cst c, Var x -> const_singleton ctx x c

(* Natural join: equijoin on the shared columns, then project away the
   right copy of each shared column. When the right operand adds no
   columns at all it is a pure filter on the accumulator, so the plan
   gets a semijoin instead of a join-then-project — the demand-driven
   engine relies on this to turn magic guards into semijoins against
   the (small) demand relations. Joining with the trivial nullary
   relation is the identity — the physical-equality check recognizes the
   [nullary_true] accumulator that seeds conjunctions. *)
and natural_join acc ce =
  if acc.e == nullary_true then ce
  else if ce.e == nullary_true then acc
  else
    let shared = List.filter (fun v -> List.mem v acc.cols) ce.cols in
    if shared = [] then
      { e = A.Product (acc.e, ce.e); cols = acc.cols @ ce.cols }
    else
      let pairs =
        List.map (fun v -> (idx acc.cols v, idx ce.cols v)) shared
      in
      let keep_right =
        List.filter (fun v -> not (List.mem v acc.cols)) ce.cols
      in
      if keep_right = [] then
        { e = A.Semijoin (pairs, acc.e, ce.e); cols = acc.cols }
      else
        let la = List.length acc.cols in
        let proj =
          List.init la Fun.id
          @ List.map (fun v -> la + idx ce.cols v) keep_right
        in
        {
          e = A.Project (proj, A.Join (pairs, acc.e, ce.e));
          cols = acc.cols @ keep_right;
        }

and compile_and ctx conjs =
  let positives = ref [] and eqs = ref [] and negs = ref [] in
  List.iter
    (fun g ->
      match g with
      | True -> ()
      | Eq (a, b) -> eqs := (a, b) :: !eqs
      | Not h -> negs := h :: !negs
      | g -> positives := g :: !positives)
    conjs;
  let negs = List.rev !negs in
  eqs := List.rev !eqs;
  (* join the positive conjuncts, greedily preferring the candidate
     sharing the most columns with the accumulator (connected joins
     before cartesian products) *)
  let acc =
    ref
      (match List.rev_map (compile0 ctx) !positives with
      | [] -> { e = nullary_true; cols = [] }
      | first :: rest ->
          let rest = ref rest and a = ref first in
          while !rest <> [] do
            let score ce =
              List.length (List.filter (fun v -> List.mem v !a.cols) ce.cols)
            in
            let best =
              List.fold_left
                (fun best ce ->
                  match best with
                  | Some b when score b >= score ce -> best
                  | _ -> Some ce)
                None !rest
            in
            let best = Option.get best in
            rest := List.filter (fun ce -> ce != best) !rest;
            a := natural_join !a best
          done;
          !a)
  in
  let bound x = List.mem x !acc.cols in
  let select c = acc := { !acc with e = A.Select (c, !acc.e) } in
  (* duplicate the column of bound variable [src] as a new column [dst] *)
  let copy_col src dst =
    acc :=
      {
        e =
          A.Project
            ( List.init (List.length !acc.cols) Fun.id @ [ idx !acc.cols src ],
              !acc.e );
        cols = !acc.cols @ [ dst ];
      }
  in
  (* equalities: selections when both sides are bound, column duplication
     when one is, constant generators / domain expansion otherwise *)
  let apply_eq (a, b) =
    match (a, b) with
    | Var x, Var y when String.equal x y ->
        bound x (* x = x: tautology once x is bound, retried otherwise *)
    | Var x, Var y when bound x && bound y ->
        select (A.Col_eq_col (idx !acc.cols x, idx !acc.cols y));
        true
    | Var x, Var y when bound x ->
        copy_col x y;
        true
    | Var x, Var y when bound y ->
        copy_col y x;
        true
    | Var _, Var _ -> false
    | (Var x, Cst c | Cst c, Var x) when bound x ->
        select (A.Col_eq_const (idx !acc.cols x, c));
        true
    | Var x, Cst c | Cst c, Var x ->
        acc := natural_join !acc (const_singleton ctx x c);
        true
    | Cst _, Cst _ -> assert false (* folded by simplify *)
  in
  let rec resolve_eqs () =
    if !eqs <> [] then begin
      let before = List.length !eqs in
      eqs := List.filter (fun eq -> not (apply_eq eq)) !eqs;
      if List.length !eqs = before then begin
        (* only unbound x = x / x = y equalities remain: ground one side *)
        (match List.hd !eqs with
        | Var x, _ | _, Var x -> acc := pad ctx !acc x
        | _ -> assert false);
        resolve_eqs ()
      end
      else resolve_eqs ()
    end
  in
  resolve_eqs ();
  (* negated conjuncts: selections when fully bound, hash antijoins once
     the accumulator binds every column of the negation. A negation
     sharing no column with the accumulator natural-joins the domain
     complement of its operand instead — probed and bulk-built, never a
     materialized acc × dom^k pad; a partially bound one pads only its
     missing columns. Deferring the not-yet-bound negations lets a
     complement join ground them for a plain antijoin. *)
  let negs = List.map (fun g -> (g, ref None)) negs in
  let compiled (g, memo) =
    match !memo with
    | Some cg -> cg
    | None ->
        let cg = compile0 ctx g in
        memo := Some cg;
        cg
  in
  let step ((g, _) as ng) =
    match g with
    | Eq (Var x, Var y) when String.equal x y ->
        (* ¬(x = x) is unsatisfiable *)
        acc := { !acc with e = A.Const Relation.empty };
        true
    | Eq (Var x, Var y) when bound x && bound y ->
        select (A.Not (A.Col_eq_col (idx !acc.cols x, idx !acc.cols y)));
        true
    | (Eq (Var x, Cst c) | Eq (Cst c, Var x)) when bound x ->
        select (A.Not (A.Col_eq_const (idx !acc.cols x, c)));
        true
    | Eq _ -> false
    | _ ->
        let cg = compiled ng in
        if List.for_all bound cg.cols then (
          let pairs =
            List.map (fun v -> (idx !acc.cols v, idx cg.cols v)) cg.cols
          in
          acc := { !acc with e = A.Antijoin (pairs, !acc.e, cg.e) };
          true)
        else false
  in
  let rec resolve pending =
    let pending = List.filter (fun ng -> not (step ng)) pending in
    match pending with
    | [] -> ()
    | ng :: rest ->
        let cg = compiled ng in
        let shared = List.filter bound cg.cols in
        (match (fst ng, shared) with
        | (Eq _, _ | _, _ :: _) ->
            (* partially bound (or a stuck equality): ground the missing
               columns over the domain, then antijoin / select *)
            let missing = List.filter (fun v -> not (bound v)) cg.cols in
            List.iter (fun v -> acc := pad ctx !acc v) missing;
            let pairs =
              List.map (fun v -> (idx !acc.cols v, idx cg.cols v)) cg.cols
            in
            acc := { !acc with e = A.Antijoin (pairs, !acc.e, cg.e) }
        | _, [] ->
            ctx.fallbacks <- ctx.fallbacks + List.length cg.cols;
            acc :=
              natural_join !acc
                {
                  e = A.Complement (List.length cg.cols, ctx.cdom, cg.e);
                  cols = cg.cols;
                });
        resolve rest
  in
  resolve negs;
  !acc

(* --- plans ---------------------------------------------------------------- *)

type plan = {
  pexpr : A.expr;
  patoms : (string * int) list;
  pfallback : int;
  pformula : formula;
  pvars : string list;
  pdom : Value.t list option;
}

let plan_expr p = p.pexpr
let plan_fallback_vars p = p.pfallback

let dedup_pairs ps =
  List.fold_left (fun acc p -> if List.mem p acc then acc else p :: acc) [] ps

let build_plan ?(trace = Observe.Trace.null) ?dom f vars =
  let cdom, restrict =
    match dom with
    | Some d -> (A.Const (unary_rel d), true)
    | None -> (
        match constants f with
        | [] -> (A.Adom, false)
        | cs -> (A.Union (A.Adom, A.Const (unary_rel cs)), false))
  in
  let ctx = { cdom; restrict; fallbacks = 0; catoms = [] } in
  let ce = compile0 ctx (simplify (nnf f)) in
  let distinct_vars =
    List.fold_left
      (fun acc v -> if List.mem v acc then acc else acc @ [ v ])
      [] vars
  in
  let ce = pad_to ctx ce distinct_vars in
  let pexpr =
    if ce.cols = vars then ce.e
    else A.Project (List.map (idx ce.cols) vars, ce.e)
  in
  Observe.Trace.incr trace "fo.plan.compiled";
  Observe.Trace.add trace "fo.plan.fallback_vars" ctx.fallbacks;
  {
    pexpr;
    patoms = dedup_pairs ctx.catoms;
    pfallback = ctx.fallbacks;
    pformula = f;
    pvars = vars;
    pdom = dom;
  }

(* Plan memo: keyed structurally on (formula, output columns, explicit
   domain). Process-global and mutex-guarded — parallel fixpoint workers
   compile through the same cache. *)
let plan_cache : (formula * string list * Value.t list option, plan) Hashtbl.t
    =
  Hashtbl.create 64

let plan_lock = Mutex.create ()
let plan_cache_cap = 512

let compile ?(trace = Observe.Trace.null) ?dom f vars =
  let key = (f, vars, dom) in
  let cached =
    Mutex.lock plan_lock;
    let c = Hashtbl.find_opt plan_cache key in
    Mutex.unlock plan_lock;
    c
  in
  match cached with
  | Some p -> p
  | None ->
      let p = build_plan ~trace ?dom f vars in
      Mutex.lock plan_lock;
      if Hashtbl.length plan_cache >= plan_cache_cap then
        Hashtbl.reset plan_cache;
      Hashtbl.replace plan_cache key p;
      Mutex.unlock plan_lock;
      p

let rec falsify bad f =
  match f with
  | Atom (p, ts) when List.mem (p, List.length ts) bad -> False
  | True | False | Atom _ | Eq _ -> f
  | Not g -> Not (falsify bad g)
  | And (a, b) -> And (falsify bad a, falsify bad b)
  | Or (a, b) -> Or (falsify bad a, falsify bad b)
  | Implies (a, b) -> Implies (falsify bad a, falsify bad b)
  | Exists (xs, g) -> Exists (xs, falsify bad g)
  | Forall (xs, g) -> Forall (xs, falsify bad g)

let run_plan ?(trace = Observe.Trace.null) ?profile inst plan =
  (* Plans are compiled without a schema; an atom whose arity disagrees
     with the instance's relation is uniformly false under the naive
     semantics (no tuple of the wrong arity is ever a member), so such
     atoms are replaced by [False] and the query recompiled. *)
  let bad =
    List.filter
      (fun (p, k) ->
        match Relation.arity (Instance.find p inst) with
        | Some a -> a <> k
        | None -> false)
      plan.patoms
  in
  if bad = [] then A.eval ~trace ?profile inst plan.pexpr
  else
    let p' =
      compile ~trace ?dom:plan.pdom (falsify bad plan.pformula) plan.pvars
    in
    A.eval ~trace ?profile inst p'.pexpr

let eval ?(trace = Observe.Trace.null) ?profile ?dom inst f vars =
  check_covered "eval" (free_vars f) vars;
  run_plan ~trace ?profile inst (compile ~trace ?dom f vars)

let sentence ?(trace = Observe.Trace.null) ?profile ?dom inst f =
  (match free_vars f with
  | [] -> ()
  | missing ->
      invalid_arg
        (Printf.sprintf "Fo.sentence: free variable%s %s"
           (if List.length missing = 1 then "" else "s")
           (String.concat ", " missing)));
  not
    (Relation.is_empty (run_plan ~trace ?profile inst (compile ~trace ?dom f [])))
