(** Fixpoint logics: FO + IFP (inflationary fixpoint) and FO + PFP
    (partial fixpoint), with the nondeterministic witness operator [W]
    of §5.2 of the paper ([14]).

    These are the logic-side counterparts of the rule languages:

    - FO + IFP = fixpoint queries = inflationary Datalog¬ (Theorem 4.2);
    - FO + PFP = while queries = Datalog¬¬;
    - FO + IFP + W ≡ N-Datalog¬∀ ≡ N-Datalog¬⊥ (ndb-ptime, Theorem 5.6);
    - FO + PFP + W ≡ N-Datalog¬¬ (ndb-pspace, Theorem 5.3).

    Syntax extends {!Relational.Fo}-style formulas with
    [[IFP_{R, x̄} φ](t̄)] / [[PFP_{R, x̄} φ](t̄)] — the relation variable
    [R] of arity [|x̄|] may occur in [φ]; the operator denotes the
    (inflationary / partial) fixpoint of [J ↦ J ∪ φ(J)] (resp.
    [J ↦ φ(J)]) applied to the tuple [t̄] — and with [W x̄ φ]: for each
    valuation of [φ]'s remaining free variables, {e one} satisfying
    valuation of [x̄] is chosen nondeterministically (none if
    unsatisfiable); [W x̄ φ] holds exactly of the selected
    valuations, so the witness variables stay free in the formula.

    {b Evaluation} compiles to {!Relational.Algebra} plans: each
    non-parameterized IFP/PFP subterm is iterated to its fixpoint
    relation with its body compiled once via {!Relational.Fo.compile}
    and executed per round ([fp.rounds] counts rounds); bodies whose
    recursive relation occurs only under ∧/∨/∃ iterate {e
    semi-naively} — per-occurrence delta derivatives, evaluated in
    parallel on the {!Parallel.Pool} when it is free. Formulas the
    lowering cannot handle — [W], parameterized fixpoints (body free
    variables beyond the column variables), a nested fixpoint reading an
    enclosing fixpoint's relation — fall back to the naive enumerators,
    which survive as [eval_naive] / [sentence_naive] reference oracles
    (the fallback ticks the [fp.fallback] counter). Relation names
    starting with ["fp#"] are reserved by the compiled path.

    The partial fixpoint is undefined when the stage sequence cycles
    without converging (the flip-flop); evaluation reports this as
    {!Undefined}. Witness choices are resolved by a seeded deterministic
    policy, and [outcomes] enumerates every choice function (exponential,
    capped). *)

open Relational

type term = Var of string | Cst of Value.t

type formula =
  | True
  | False
  | Atom of string * term list
      (** database relation or fixpoint-bound relation variable *)
  | Eq of term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of string list * formula
  | Forall of string list * formula
  | Ifp of fp * term list  (** [[IFP_{R,x̄} φ](t̄)] *)
  | Pfp of fp * term list  (** [[PFP_{R,x̄} φ](t̄)] *)
  | Witness of string list * formula  (** [W x̄ φ] *)

and fp = {
  rel : string;  (** bound relation variable *)
  vars : string list;  (** its column variables x̄ *)
  body : formula;
}

exception Undefined of string
(** a PFP subterm cycled without converging *)

exception Type_error of string

(** [free_vars f] — the fixpoint column variables [x̄] are bound inside
    fixpoint bodies; [W]'s variables stay free (see above). Shares
    {!Relational.Fo.collect_free_vars} with the FO layer. *)
val free_vars : formula -> string list

(** [constants f] lists the constants mentioned by [f], sorted. *)
val constants : formula -> Value.t list

(** A choice policy resolves witness selections: given the call-site id,
    the outer valuation, and the (non-empty, sorted) candidate tuples,
    pick one. *)
type policy = int -> Value.t list -> Tuple.t list -> Tuple.t

(** [seeded_policy seed] — deterministic pseudo-random pick. *)
val seeded_policy : int -> policy

(** [first_policy] — always the smallest candidate (deterministic
    skolemization). *)
val first_policy : policy

(** [eval ?policy ?trace inst f vars] evaluates [f] with output columns
    [vars] over the active domain of [inst] (plus [f]'s constants),
    through the compiled path where possible (see above). Without
    [Witness] subformulas the result is deterministic and [policy] is
    irrelevant (default {!first_policy}).
    @raise Undefined on diverging PFP
    @raise Type_error on arity mismatches
    @raise Invalid_argument listing {e all} free variables missing from
    [vars] *)
val eval :
  ?policy:policy ->
  ?trace:Observe.Trace.ctx ->
  Instance.t ->
  formula ->
  string list ->
  Relation.t

(** [eval_naive] — the pre-compilation active-domain enumerator, kept as
    the reference oracle for the compiled path. *)
val eval_naive :
  ?policy:policy -> Instance.t -> formula -> string list -> Relation.t

(** [sentence ?policy ?trace inst f] decides a closed formula.
    @raise Invalid_argument listing all free variables if [f] is open. *)
val sentence :
  ?policy:policy -> ?trace:Observe.Trace.ctx -> Instance.t -> formula -> bool

(** [sentence_naive] — reference oracle for {!sentence}. *)
val sentence_naive : ?policy:policy -> Instance.t -> formula -> bool

(** [outcomes ?max_outcomes inst f vars] enumerates the results of [eval]
    over {e all} choice functions, deduplicated (default cap 10_000
    policies explored — @raise Failure beyond). Without [W] this is a
    singleton. *)
val outcomes :
  ?max_outcomes:int -> Instance.t -> formula -> string list -> Relation.t list

(** Convenience constructors mirroring the paper's notation. *)
val ifp : rel:string -> vars:string list -> formula -> term list -> formula

val pfp : rel:string -> vars:string list -> formula -> term list -> formula
val atom : string -> string list -> formula

val pp : Format.formatter -> formula -> unit
