open Relational

type term = Var of string | Cst of Value.t

type formula =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of string list * formula
  | Forall of string list * formula
  | Ifp of fp * term list
  | Pfp of fp * term list
  | Witness of string list * formula

and fp = { rel : string; vars : string list; body : formula }

exception Undefined of string
exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* --- free variables / constants ------------------------------------------ *)

(* Both share Fo's hashtable-backed collectors: this module only supplies
   the traversal over its own (larger) formula type. *)

let free_vars f =
  Fo.collect_free_vars @@ fun note ->
  let term bound = function Var x -> note bound x | Cst _ -> () in
  let rec go bound = function
    | True | False -> ()
    | Atom (_, ts) -> List.iter (term bound) ts
    | Eq (a, b) ->
        term bound a;
        term bound b
    | Not f -> go bound f
    | And (a, b) | Or (a, b) | Implies (a, b) ->
        go bound a;
        go bound b
    | Exists (xs, f) | Forall (xs, f) -> go (xs @ bound) f
    | Ifp (fp, ts) | Pfp (fp, ts) ->
        (* the fixpoint's column variables are bound inside the body; the
           argument terms are free occurrences *)
        go (fp.vars @ bound) fp.body;
        List.iter (term bound) ts
    | Witness (_, f) ->
        (* witness variables remain free (the formula holds of the
           selected valuations) *)
        go bound f
  in
  go [] f

let constants f =
  Fo.collect_constants @@ fun note ->
  let term = function Cst v -> note v | Var _ -> () in
  let rec go = function
    | True | False -> ()
    | Atom (_, ts) -> List.iter term ts
    | Eq (a, b) ->
        term a;
        term b
    | Not f | Exists (_, f) | Forall (_, f) | Witness (_, f) -> go f
    | And (a, b) | Or (a, b) | Implies (a, b) ->
        go a;
        go b
    | Ifp (fp, ts) | Pfp (fp, ts) ->
        go fp.body;
        List.iter term ts
  in
  go f

(* --- witness policies ------------------------------------------------------ *)

type policy = int -> Value.t list -> Tuple.t list -> Tuple.t

let first_policy _site _key candidates = List.hd candidates

let seeded_policy seed site key candidates =
  let h =
    List.fold_left
      (fun acc v -> (acc * 31) + Value.hash v)
      ((seed * 131) + site)
      key
  in
  List.nth candidates (abs h mod List.length candidates)

(* --- naive evaluation (reference oracle) ----------------------------------- *)

(* Assign stable integer ids to Witness nodes (preorder, physical). *)
let number_witnesses f =
  let tbl = Hashtbl.create 8 in
  let counter = ref 0 in
  let rec go g =
    match g with
    | True | False | Eq _ | Atom _ -> ()
    | Not f | Exists (_, f) | Forall (_, f) -> go f
    | And (a, b) | Or (a, b) | Implies (a, b) ->
        go a;
        go b
    | Ifp (fp, _) | Pfp (fp, _) -> go fp.body
    | Witness (_, inner) ->
        if not (Hashtbl.mem tbl (Obj.repr g)) then (
          Hashtbl.add tbl (Obj.repr g) !counter;
          incr counter);
        go inner
  in
  go f;
  fun w -> try Hashtbl.find tbl (Obj.repr w) with Not_found -> -1

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> type_error "unbound variable %s" x

let term_value env = function Var x -> lookup env x | Cst v -> v

(* Build a [holds] closure over a fixed domain and witness-choice memo.
   All queries evaluated through one closure share the same choice
   function, as the W semantics requires. *)
let make_holds ~policy inst f dom =
  let witness_id = number_witnesses f in
  let choices : (int * Value.t list, Tuple.t option) Hashtbl.t =
    Hashtbl.create 32
  in
  let lookup_rel relenv p =
    match List.assoc_opt p relenv with
    | Some r -> r
    | None -> Instance.find p inst
  in
  let rec holds relenv env f =
    match f with
    | True -> true
    | False -> false
    | Atom (p, ts) ->
        let tup = Tuple.of_list (List.map (term_value env) ts) in
        Relation.mem tup (lookup_rel relenv p)
    | Eq (a, b) -> Value.equal (term_value env a) (term_value env b)
    | Not f -> not (holds relenv env f)
    | And (a, b) -> holds relenv env a && holds relenv env b
    | Or (a, b) -> holds relenv env a || holds relenv env b
    | Implies (a, b) -> (not (holds relenv env a)) || holds relenv env b
    | Exists (xs, f) -> exists_val relenv env xs f
    | Forall (xs, f) -> not (exists_val relenv env xs (Not f))
    | Ifp (fp, ts) -> check_fp relenv env fp ts (eval_ifp relenv env fp)
    | Pfp (fp, ts) -> check_fp relenv env fp ts (eval_pfp relenv env fp)
    | Witness (xs, g) as w -> (
        let params =
          List.filter (fun v -> not (List.mem v xs)) (free_vars g)
        in
        let key = List.map (lookup env) params in
        let site = witness_id w in
        let chosen =
          match Hashtbl.find_opt choices (site, key) with
          | Some c -> c
          | None ->
              let candidates =
                satisfying relenv env xs g |> List.sort_uniq Tuple.compare
              in
              let c =
                match candidates with
                | [] -> None
                | _ -> Some (policy site key candidates)
              in
              Hashtbl.add choices (site, key) c;
              c
        in
        match chosen with
        | None -> false
        | Some c ->
            let current = Tuple.of_list (List.map (lookup env) xs) in
            Tuple.equal current c)
  and check_fp _relenv env fp ts j =
    let tup = Tuple.of_list (List.map (term_value env) ts) in
    if Tuple.arity tup <> List.length fp.vars then
      type_error "fixpoint %s: %d arguments for arity %d" fp.rel
        (Tuple.arity tup) (List.length fp.vars)
    else Relation.mem tup j
  and exists_val relenv env xs f =
    match xs with
    | [] -> holds relenv env f
    | x :: rest ->
        List.exists (fun v -> exists_val relenv ((x, v) :: env) rest f) dom
  and satisfying relenv env xs g =
    let rec enum env' = function
      | [] ->
          if holds relenv env' g then
            [ Tuple.of_list (List.map (lookup env') xs) ]
          else []
      | x :: rest ->
          List.concat_map (fun v -> enum ((x, v) :: env') rest) dom
    in
    enum env xs
  and stage relenv env fp j =
    Relation.of_list (satisfying ((fp.rel, j) :: relenv) env fp.vars fp.body)
  and eval_ifp relenv env fp =
    let rec loop j =
      let next = Relation.union j (stage relenv env fp j) in
      if Relation.equal next j then j else loop next
    in
    loop Relation.empty
  and eval_pfp relenv env fp =
    let module RSet = Set.Make (Relation) in
    let rec loop j seen =
      let next = stage relenv env fp j in
      if Relation.equal next j then j
      else if RSet.mem next seen then
        raise
          (Undefined (Printf.sprintf "PFP %s cycles without converging" fp.rel))
      else loop next (RSet.add next seen)
    in
    loop Relation.empty RSet.empty
  in
  holds

let make_dom inst f =
  let module VSet = Set.Make (Value) in
  VSet.elements
    (VSet.union
       (VSet.of_list (Instance.adom inst))
       (VSet.of_list (constants f)))

let check_covered what f vars =
  match List.filter (fun x -> not (List.mem x vars)) (free_vars f) with
  | [] -> ()
  | missing ->
      invalid_arg
        (Printf.sprintf "Fp.%s: free variable%s %s not in output list" what
           (if List.length missing = 1 then "" else "s")
           (String.concat ", " missing))

let check_closed what f =
  match free_vars f with
  | [] -> ()
  | fv ->
      invalid_arg
        (Printf.sprintf "Fp.%s: free variable%s %s" what
           (if List.length fv = 1 then "" else "s")
           (String.concat ", " fv))

let eval_naive ?(policy = first_policy) inst f vars =
  check_covered "eval" f vars;
  let dom = make_dom inst f in
  let holds = make_holds ~policy inst f dom in
  let rec enum env = function
    | [] ->
        if holds [] env f then
          [ Tuple.of_list (List.map (fun x -> List.assoc x env) vars) ]
        else []
    | x :: rest -> List.concat_map (fun v -> enum ((x, v) :: env) rest) dom
  in
  Relation.of_list (enum [] vars)

let sentence_naive ?(policy = first_policy) inst f =
  check_closed "sentence" f;
  let dom = make_dom inst f in
  let holds = make_holds ~policy inst f dom in
  holds [] [] f

(* --- compiled evaluation ---------------------------------------------------- *)

(* The compiled path lowers a fixpoint-logic formula to a plain FO formula
   over a working instance: each (closed, non-parameterized) IFP/PFP
   subterm is iterated to its fixpoint relation — the body compiled once
   with {!Fo.compile} and executed per round — and replaced by an atom
   over a fresh relation holding the result. Anything the lowering cannot
   handle ([W], parameterized fixpoints, bodies referencing an enclosing
   fixpoint's relation) raises [Fallback] and the whole query reverts to
   the naive oracle above.

   Internal relations live in a reserved "fp#" namespace:
   - "fp#<n>"        the n-th fixpoint's result;
   - "fp#<n>@rec"    the bound relation variable during iteration (the
                     rename keeps a same-named database relation from
                     leaking through round 0, where the fixpoint relation
                     is empty and [Instance.set] drops the binding);
   - "fp#<n>@delta"  the previous round's new tuples (semi-naive);
   - "fp#dom"        a unary relation holding the whole formula's
                     constants, so the active domain every compiled
                     subquery sees equals [make_dom inst f] exactly. *)

exception Fallback

type lctx = {
  mutable work : Instance.t;
  trace : Observe.Trace.ctx;
  mutable next_id : int;
}

let lower_term = function Var x -> Fo.Var x | Cst v -> Fo.Cst v

let fo_mentions name f =
  let found = ref false in
  let rec go = function
    | Fo.True | Fo.False | Fo.Eq _ -> ()
    | Fo.Atom (p, _) -> if String.equal p name then found := true
    | Fo.Not f | Fo.Exists (_, f) | Fo.Forall (_, f) -> go f
    | Fo.And (a, b) | Fo.Or (a, b) | Fo.Implies (a, b) ->
        go a;
        go b
  in
  go f;
  !found

(* [rel] occurs only under ∧ / ∨ / ∃ — the fragment where the per-round
   novelty of the body is exactly covered by the per-occurrence delta
   derivatives (the semi-naive expansion distributes). ∀ and ¬ above an
   occurrence break that (a single new tuple can flip a universally
   quantified subformula), so such bodies iterate by full recompute. *)
let exist_positive rel f =
  let ok = ref true in
  let rec go safe = function
    | Fo.Atom (p, _) -> if String.equal p rel && not safe then ok := false
    | Fo.True | Fo.False | Fo.Eq _ -> ()
    | Fo.And (a, b) | Fo.Or (a, b) ->
        go safe a;
        go safe b
    | Fo.Exists (_, g) -> go safe g
    | Fo.Not g | Fo.Forall (_, g) -> go false g
    | Fo.Implies (a, b) ->
        go false a;
        go false b
  in
  go true f;
  !ok

let count_occurrences rel f =
  let n = ref 0 in
  let rec go = function
    | Fo.Atom (p, _) -> if String.equal p rel then incr n
    | Fo.True | Fo.False | Fo.Eq _ -> ()
    | Fo.Not g | Fo.Exists (_, g) | Fo.Forall (_, g) -> go g
    | Fo.And (a, b) | Fo.Or (a, b) | Fo.Implies (a, b) ->
        go a;
        go b
  in
  go f;
  !n

(* Replace the [i]-th occurrence (preorder, 0-based) of an atom over
   [rel] with the same atom over [del]. *)
let substitute_nth rel del i f =
  let k = ref 0 in
  let rec go = function
    | Fo.Atom (p, ts) when String.equal p rel ->
        let j = !k in
        incr k;
        Fo.Atom ((if j = i then del else p), ts)
    | (Fo.True | Fo.False | Fo.Eq _ | Fo.Atom _) as f -> f
    | Fo.Not g -> Fo.Not (go g)
    | Fo.And (a, b) ->
        let a = go a in
        Fo.And (a, go b)
    | Fo.Or (a, b) ->
        let a = go a in
        Fo.Or (a, go b)
    | Fo.Implies (a, b) ->
        let a = go a in
        Fo.Implies (a, go b)
    | Fo.Exists (xs, g) -> Fo.Exists (xs, go g)
    | Fo.Forall (xs, g) -> Fo.Forall (xs, go g)
  in
  go f

let rec or_branches = function
  | Fo.Or (a, b) -> or_branches a @ or_branches b
  | f -> [ f ]

(* Drop top-level disjuncts of a derivative that mention no delta atom:
   from round 2 on, their satisfactions were already produced — by round
   1's full body evaluation (delta-free branches) or by the derivative
   whose delta sits in that branch — and would only be diffed away. *)
let prune_derivative del d =
  match List.filter (fo_mentions del) (or_branches d) with
  | [] -> Fo.False
  | f :: rest -> List.fold_left (fun a b -> Fo.Or (a, b)) f rest

(* [Fo.run_plan] with its latency sampled into the [fp.plan] histogram —
   the per-derivative plan-run distribution the EXPLAIN/percentile
   tooling reads. Untraced runs skip the clock reads entirely. *)
let run_plan_timed ~trace inst p =
  if not (Observe.Trace.enabled trace) then Fo.run_plan ~trace inst p
  else begin
    let t0 = Observe.Trace.now () in
    let r = Fo.run_plan ~trace inst p in
    Observe.Trace.observe_s trace "fp.plan" (Observe.Trace.now () -. t0);
    r
  end

(* Evaluate one plan per derivative; with several derivatives and a free
   pool, spread them over the domains (workers get private trace
   contexts, merged — counters and histograms — at the barrier). *)
let eval_plans ~trace inst plans =
  match plans with
  | [] -> []
  | [ p ] -> [ run_plan_timed ~trace inst p ]
  | _ -> (
      match Parallel.Pool.acquire () with
      | None ->
          if Parallel.Pool.jobs () > 1 then
            Observe.Trace.incr trace "par.pool.fallbacks";
          List.map (run_plan_timed ~trace inst) plans
      | Some pool ->
          Fun.protect ~finally:(fun () -> Parallel.Pool.release pool)
          @@ fun () ->
          let arr = Array.of_list plans in
          let out = Array.make (Array.length arr) Relation.empty in
          let nw = Parallel.Pool.size pool in
          let traces =
            Array.init nw (fun w ->
                if w = 0 || not (Observe.Trace.enabled trace) then trace
                else Observe.Trace.make ())
          in
          Parallel.Pool.run pool (fun w ->
              let i = ref w in
              while !i < Array.length arr do
                out.(!i) <- run_plan_timed ~trace:traces.(w) inst arr.(!i);
                i := !i + nw
              done);
          for w = 1 to nw - 1 do
            Observe.Trace.merge_counters trace traces.(w)
          done;
          Array.to_list out)

let run_ifp ctx recname delname vars body =
  let trace = ctx.trace in
  let body_plan = Fo.compile ~trace body vars in
  if exist_positive recname body then begin
    (* semi-naive differential iteration: round 1 evaluates the full body
       against the empty fixpoint relation; later rounds evaluate one
       derivative per occurrence of the relation, each substituting the
       delta at that occurrence, and keep what round n hadn't derived *)
    let m = count_occurrences recname body in
    let dplans =
      List.init m (fun i ->
          prune_derivative delname (substitute_nth recname delname i body))
      |> List.sort_uniq compare
      |> List.map (fun d -> Fo.compile ~trace d vars)
    in
    Observe.Trace.incr trace "fp.rounds";
    let j = ref (Fo.run_plan ~trace ctx.work body_plan) in
    let delta = ref !j in
    while not (Relation.is_empty !delta) do
      Observe.Trace.incr trace "fp.rounds";
      let inst =
        Instance.set delname !delta (Instance.set recname !j ctx.work)
      in
      let derived =
        List.fold_left Relation.union Relation.empty
          (eval_plans ~trace inst dplans)
      in
      let d = Relation.diff derived !j in
      j := Relation.union !j d;
      delta := d
    done;
    !j
  end
  else
    let rec loop j =
      Observe.Trace.incr trace "fp.rounds";
      let next =
        Relation.union j
          (Fo.run_plan ~trace (Instance.set recname j ctx.work) body_plan)
      in
      if Relation.equal next j then j else loop next
    in
    loop Relation.empty

let run_pfp ctx recname rel vars body =
  let trace = ctx.trace in
  let plan = Fo.compile ~trace body vars in
  let module RSet = Set.Make (Relation) in
  let rec loop j seen =
    Observe.Trace.incr trace "fp.rounds";
    let next = Fo.run_plan ~trace (Instance.set recname j ctx.work) plan in
    if Relation.equal next j then j
    else if RSet.mem next seen then
      raise (Undefined (Printf.sprintf "PFP %s cycles without converging" rel))
    else loop next (RSet.add next seen)
  in
  loop Relation.empty RSet.empty

let rec lower ctx bound f =
  match f with
  | True -> Fo.True
  | False -> Fo.False
  | Atom (p, ts) ->
      let p =
        match List.assoc_opt p bound with Some r -> r | None -> p
      in
      Fo.Atom (p, List.map lower_term ts)
  | Eq (a, b) -> Fo.Eq (lower_term a, lower_term b)
  | Not f -> Fo.Not (lower ctx bound f)
  | And (a, b) -> Fo.And (lower ctx bound a, lower ctx bound b)
  | Or (a, b) -> Fo.Or (lower ctx bound a, lower ctx bound b)
  | Implies (a, b) -> Fo.Implies (lower ctx bound a, lower ctx bound b)
  | Exists (xs, f) -> Fo.Exists (xs, lower ctx bound f)
  | Forall (xs, f) -> Fo.Forall (xs, lower ctx bound f)
  | Witness _ -> raise Fallback
  | (Ifp (fp, ts) | Pfp (fp, ts)) as node ->
      if List.length ts <> List.length fp.vars then
        type_error "fixpoint %s: %d arguments for arity %d" fp.rel
          (List.length ts) (List.length fp.vars);
      (* a parameterized fixpoint (body free variables beyond the column
         variables) is a different relation per outer valuation *)
      if
        List.exists
          (fun x -> not (List.mem x fp.vars))
          (free_vars fp.body)
      then raise Fallback;
      let n = ctx.next_id in
      ctx.next_id <- n + 1;
      let recname = Printf.sprintf "fp#%d@rec" n in
      let delname = Printf.sprintf "fp#%d@delta" n in
      let body = lower ctx ((fp.rel, recname) :: bound) fp.body in
      (* a nested fixpoint whose body references an enclosing fixpoint's
         relation would need re-evaluation per enclosing round *)
      if
        List.exists
          (fun (r, rn) -> (not (String.equal r fp.rel)) && fo_mentions rn body)
          bound
      then raise Fallback;
      let j =
        match node with
        | Ifp _ -> run_ifp ctx recname delname fp.vars body
        | _ -> run_pfp ctx recname fp.rel fp.vars body
      in
      let resname = Printf.sprintf "fp#%d" n in
      ctx.work <- Instance.set resname j ctx.work;
      Fo.Atom (resname, List.map lower_term ts)

let reserved name =
  String.length name >= 3 && String.equal (String.sub name 0 3) "fp#"

let uses_reserved_names inst f =
  List.exists reserved (Instance.names inst)
  ||
  let found = ref false in
  let rec go = function
    | True | False | Eq _ -> ()
    | Atom (p, _) -> if reserved p then found := true
    | Not f | Exists (_, f) | Forall (_, f) | Witness (_, f) -> go f
    | And (a, b) | Or (a, b) | Implies (a, b) ->
        go a;
        go b
    | Ifp (fp, _) | Pfp (fp, _) ->
        if reserved fp.rel then found := true;
        go fp.body
  in
  go f;
  !found

let lower_query trace inst f =
  if uses_reserved_names inst f then raise Fallback;
  let work =
    match constants f with
    | [] -> inst
    | cs ->
        Instance.set "fp#dom"
          (Relation.of_list (List.map (fun v -> Tuple.of_list [ v ]) cs))
          inst
  in
  let ctx = { work; trace; next_id = 0 } in
  let lf = lower ctx [] f in
  (ctx.work, lf)

let eval ?(policy = first_policy) ?(trace = Observe.Trace.null) inst f vars =
  check_covered "eval" f vars;
  match lower_query trace inst f with
  | work, lf -> Fo.eval ~trace work lf vars
  | exception Fallback ->
      Observe.Trace.incr trace "fp.fallback";
      eval_naive ~policy inst f vars

let sentence ?(policy = first_policy) ?(trace = Observe.Trace.null) inst f =
  check_closed "sentence" f;
  match lower_query trace inst f with
  | work, lf -> Fo.sentence ~trace work lf
  | exception Fallback ->
      Observe.Trace.incr trace "fp.fallback";
      sentence_naive ~policy inst f

(* Enumerate all outcomes: DFS over the tree of witness decisions. A path
   is a list of chosen indices in decision order; choices beyond the path
   default to index 0, and the run records each decision's candidate
   count, from which the next path is computed (mixed-radix DFS). *)
let outcomes ?(max_outcomes = 10_000) inst f vars =
  let results = ref [] in
  let runs = ref 0 in
  let rec run prefix =
    incr runs;
    if !runs > max_outcomes then
      failwith "Fp.outcomes: too many choice functions";
    let remaining = ref prefix in
    let counts = ref [] in
    let policy _site _key candidates =
      let idx =
        match !remaining with
        | i :: rest ->
            remaining := rest;
            i
        | [] -> 0
      in
      counts := List.length candidates :: !counts;
      List.nth candidates (min idx (List.length candidates - 1))
    in
    let r = eval ~policy inst f vars in
    if not (List.exists (Relation.equal r) !results) then
      results := r :: !results;
    let counts = List.rev !counts in
    let digits =
      List.mapi
        (fun i _ -> try List.nth prefix i with _ -> 0)
        counts
    in
    (* next path: bump the last digit with headroom, truncate after it *)
    let rec last_bumpable i best =
      match i with
      | _ when i >= List.length counts -> best
      | _ ->
          let d = List.nth digits i and c = List.nth counts i in
          last_bumpable (i + 1) (if d + 1 < c then Some i else best)
    in
    match last_bumpable 0 None with
    | None -> ()
    | Some i ->
        let next =
          List.init (i + 1) (fun j ->
              if j = i then List.nth digits j + 1 else List.nth digits j)
        in
        run next
  in
  run [];
  List.rev !results

(* --- constructors / printing -------------------------------------------------- *)

let ifp ~rel ~vars body ts = Ifp ({ rel; vars; body }, ts)
let pfp ~rel ~vars body ts = Pfp ({ rel; vars; body }, ts)
let atom p xs = Atom (p, List.map (fun x -> Var x) xs)

let pp_term ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Cst v -> Value.pp ppf v

let pp_vars ppf xs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
    Format.pp_print_string ppf xs

let pp_terms ppf ts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_term ppf ts

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom (p, ts) -> Format.fprintf ppf "%s(%a)" p pp_terms ts
  | Eq (a, b) -> Format.fprintf ppf "%a = %a" pp_term a pp_term b
  | Not f -> Format.fprintf ppf "\xc2\xac(%a)" pp f
  | And (a, b) -> Format.fprintf ppf "(%a \xe2\x88\xa7 %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a \xe2\x88\xa8 %a)" pp a pp b
  | Implies (a, b) -> Format.fprintf ppf "(%a \xe2\x86\x92 %a)" pp a pp b
  | Exists (xs, f) -> Format.fprintf ppf "\xe2\x88\x83%a (%a)" pp_vars xs pp f
  | Forall (xs, f) -> Format.fprintf ppf "\xe2\x88\x80%a (%a)" pp_vars xs pp f
  | Ifp (fp, ts) ->
      Format.fprintf ppf "[IFP_{%s,%a} %a](%a)" fp.rel pp_vars fp.vars pp
        fp.body pp_terms ts
  | Pfp (fp, ts) ->
      Format.fprintf ppf "[PFP_{%s,%a} %a](%a)" fp.rel pp_vars fp.vars pp
        fp.body pp_terms ts
  | Witness (xs, f) -> Format.fprintf ppf "W%a (%a)" pp_vars xs pp f
