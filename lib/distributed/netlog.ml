open Relational
module Ast = Datalog.Ast
module Matcher = Datalog.Matcher

type location = Local | At_peer of string | At_var of string

type lrule = { location : location; rule : Ast.rule }

type network = {
  peers : string list;
  programs : (string * lrule list) list;
  stores : (string * Instance.t) list;
}

type schedule = Round_robin | Random_sched of int

type outcome = {
  stores : (string * Instance.t) list;
  rounds : int;
  messages : int;
  quiescent : bool;
}

exception Bad_network of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad_network s)) fmt

let check net =
  List.iter
    (fun (p, rules) ->
      if not (List.mem p net.peers) then bad "program installed at unknown peer %s" p;
      Ast.check_datalog_neg (List.map (fun r -> r.rule) rules);
      List.iter
        (fun r ->
          match r.location with
          | Local -> ()
          | At_peer q ->
              if not (List.mem q net.peers) then
                bad "rule at %s targets unknown peer %s" p q
          | At_var x ->
              if not (List.mem x (Ast.body_vars r.rule)) then
                bad "rule at %s: location variable %s not in body" p x)
        rules)
    net.programs;
  List.iter
    (fun (p, _) ->
      if not (List.mem p net.peers) then bad "store for unknown peer %s" p)
    net.stores

let run ?(schedule = Round_robin) ?(max_rounds = 10_000)
    ?(trace = Observe.Trace.null) net =
  check net;
  let tracing = Observe.Trace.enabled trace in
  (* each peer's store is a persistent indexed database: inbox ingestion
     and local derivations insert into it incrementally *)
  let stores : (string, Matcher.Db.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun p ->
      Hashtbl.replace stores p (Matcher.Db.of_instance ~trace Instance.empty))
    net.peers;
  List.iter
    (fun (p, i) -> Hashtbl.replace stores p (Matcher.Db.of_instance ~trace i))
    net.stores;
  let inbox : (string, (string * Tuple.t) Queue.t) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter (fun p -> Hashtbl.replace inbox p (Queue.create ())) net.peers;
  let messages = ref 0 in
  let rounds = ref 0 in
  let rng =
    match schedule with
    | Random_sched seed -> Some (Random.State.make [| seed |])
    | Round_robin -> None
  in
  let prepared =
    List.map
      (fun (p, rules) ->
        (p, List.map (fun r -> (r, Matcher.prepare r.rule)) rules))
      net.programs
  in
  let peer_order () =
    match rng with
    | None -> net.peers
    | Some rng ->
        let a = Array.of_list net.peers in
        for i = Array.length a - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let tmp = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- tmp
        done;
        Array.to_list a
  in
  (* activate one peer: ingest inbox, fire rules once; returns whether
     anything changed anywhere (locally or messages sent) *)
  let activate p =
    incr rounds;
    if tracing then Observe.Trace.incr trace "netlog.activations";
    let store = Hashtbl.find stores p in
    let changed = ref false in
    let q = Hashtbl.find inbox p in
    while not (Queue.is_empty q) do
      let pred, tup = Queue.pop q in
      if Matcher.Db.insert store pred tup then changed := true
    done;
    (match List.assoc_opt p prepared with
    | None -> ()
    | Some rules ->
        let plain = List.map (fun (r, _) -> r.rule) rules in
        let dom =
          Datalog.Eval_util.program_dom plain (Matcher.Db.instance store)
        in
        let db = store in
        let derived = ref [] in
        List.iter
          (fun (lr, plan) ->
            let substs = Matcher.run ~dom plan db in
            List.iter
              (fun subst ->
                let _, facts =
                  Matcher.instantiate_heads subst lr.rule.Ast.head
                in
                List.iter
                  (fun (pos, pred, tup) ->
                    if pos then
                      let dest =
                        match lr.location with
                        | Local -> p
                        | At_peer q -> q
                        | At_var x -> (
                            match List.assoc_opt x subst with
                            | Some (Value.Sym s) -> s
                            | Some v ->
                                bad "location variable %s bound to %s" x
                                  (Value.to_string v)
                            | None -> bad "location variable %s unbound" x)
                      in
                      derived := (dest, pred, tup) :: !derived)
                  facts)
              substs)
          rules;
        List.iter
          (fun (dest, pred, tup) ->
            if dest = p then (
              if Matcher.Db.insert store pred tup then changed := true)
            else if not (Matcher.Db.mem (Hashtbl.find stores dest) pred tup)
            then (
              (* best-effort duplicate suppression; re-sends are harmless *)
              Queue.add (pred, tup) (Hashtbl.find inbox dest);
              incr messages;
              if tracing then (
                Observe.Trace.incr trace "netlog.messages";
                Observe.Trace.incr trace ("netlog.sent." ^ p);
                Observe.Trace.incr trace ("netlog.recv." ^ dest));
              changed := true))
          !derived);
    !changed
  in
  let quiescent = ref false in
  (try
     while not !quiescent do
       if !rounds >= max_rounds then raise Exit;
       let any =
         List.fold_left
           (fun acc p ->
             if !rounds >= max_rounds then acc
             else
               let c = activate p in
               acc || c)
           false (peer_order ())
       in
       if not any then quiescent := true
     done
   with Exit -> ());
  {
    stores =
      List.map
        (fun p -> (p, Matcher.Db.instance (Hashtbl.find stores p)))
        net.peers;
    rounds = !rounds;
    messages = !messages;
    quiescent = !quiescent;
  }

let store outcome peer =
  match List.assoc_opt peer outcome.stores with
  | Some i -> i
  | None -> Instance.empty

let global outcome =
  List.fold_left
    (fun acc (peer, inst) ->
      Instance.fold
        (fun pred rel acc ->
          Instance.set (peer ^ "::" ^ pred) rel acc)
        inst acc)
    Instance.empty outcome.stores

let confluent ?schedules net =
  let schedules =
    match schedules with
    | Some s -> s
    | None ->
        Round_robin
        :: List.map (fun s -> Random_sched s) [ 1; 2; 3; 4; 5 ]
  in
  match List.map (fun s -> global (run ~schedule:s net)) schedules with
  | [] -> true
  | g :: gs -> List.for_all (Instance.equal g) gs
