open Relational
module Ast = Datalog.Ast
module Matcher = Datalog.Matcher

type location = Local | At_peer of string | At_var of string

type lrule = { location : location; rule : Ast.rule }

type network = {
  peers : string list;
  programs : (string * lrule list) list;
  stores : (string * Instance.t) list;
}

type schedule = Round_robin | Random_sched of int

type outcome = {
  stores : (string * Instance.t) list;
  rounds : int;
  messages : int;
  quiescent : bool;
}

exception Bad_network of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad_network s)) fmt

let check net =
  List.iter
    (fun (p, rules) ->
      if not (List.mem p net.peers) then bad "program installed at unknown peer %s" p;
      Ast.check_datalog_neg (List.map (fun r -> r.rule) rules);
      List.iter
        (fun r ->
          match r.location with
          | Local -> ()
          | At_peer q ->
              if not (List.mem q net.peers) then
                bad "rule at %s targets unknown peer %s" p q
          | At_var x ->
              if not (List.mem x (Ast.body_vars r.rule)) then
                bad "rule at %s: location variable %s not in body" p x)
        rules)
    net.programs;
  List.iter
    (fun (p, _) ->
      if not (List.mem p net.peers) then bad "store for unknown peer %s" p)
    net.stores

let run ?(schedule = Round_robin) ?(max_rounds = 10_000)
    ?(trace = Observe.Trace.null) net =
  check net;
  let tracing = Observe.Trace.enabled trace in
  (* each peer's store is a persistent indexed database: inbox ingestion
     and local derivations insert into it incrementally *)
  let stores : (string, Matcher.Db.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun p ->
      Hashtbl.replace stores p (Matcher.Db.of_instance ~trace Instance.empty))
    net.peers;
  List.iter
    (fun (p, i) -> Hashtbl.replace stores p (Matcher.Db.of_instance ~trace i))
    net.stores;
  let inbox : (string, (string * Tuple.t) Queue.t) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter (fun p -> Hashtbl.replace inbox p (Queue.create ())) net.peers;
  let messages = ref 0 in
  let rounds = ref 0 in
  let rng =
    match schedule with
    | Random_sched seed -> Some (Random.State.make [| seed |])
    | Round_robin -> None
  in
  let prepared =
    List.map
      (fun (p, rules) ->
        (p, List.map (fun r -> (r, Matcher.prepare r.rule)) rules))
      net.programs
  in
  let peer_order () =
    match rng with
    | None -> net.peers
    | Some rng ->
        let a = Array.of_list net.peers in
        for i = Array.length a - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let tmp = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- tmp
        done;
        Array.to_list a
  in
  (* activate one peer: ingest inbox, fire rules once; returns whether
     anything changed anywhere (locally or messages sent) *)
  let activate p =
    incr rounds;
    if tracing then Observe.Trace.incr trace "netlog.activations";
    let store = Hashtbl.find stores p in
    let changed = ref false in
    let q = Hashtbl.find inbox p in
    while not (Queue.is_empty q) do
      let pred, tup = Queue.pop q in
      if Matcher.Db.insert store pred tup then changed := true
    done;
    (match List.assoc_opt p prepared with
    | None -> ()
    | Some rules ->
        let plain = List.map (fun (r, _) -> r.rule) rules in
        let dom =
          Datalog.Eval_util.program_dom plain (Matcher.Db.instance store)
        in
        let db = store in
        let derived = ref [] in
        List.iter
          (fun (lr, plan) ->
            let substs = Matcher.run ~dom plan db in
            List.iter
              (fun subst ->
                let _, facts =
                  Matcher.instantiate_heads subst lr.rule.Ast.head
                in
                List.iter
                  (fun (pos, pred, tup) ->
                    if pos then
                      let dest =
                        match lr.location with
                        | Local -> p
                        | At_peer q -> q
                        | At_var x -> (
                            match List.assoc_opt x subst with
                            | Some (Value.Sym s) -> s
                            | Some v ->
                                bad "location variable %s bound to %s" x
                                  (Value.to_string v)
                            | None -> bad "location variable %s unbound" x)
                      in
                      derived := (dest, pred, tup) :: !derived)
                  facts)
              substs)
          rules;
        List.iter
          (fun (dest, pred, tup) ->
            if dest = p then (
              if Matcher.Db.insert store pred tup then changed := true)
            else if not (Matcher.Db.mem (Hashtbl.find stores dest) pred tup)
            then (
              (* best-effort duplicate suppression; re-sends are harmless *)
              Queue.add (pred, tup) (Hashtbl.find inbox dest);
              incr messages;
              if tracing then (
                Observe.Trace.incr trace "netlog.messages";
                Observe.Trace.incr trace ("netlog.sent." ^ p);
                Observe.Trace.incr trace ("netlog.recv." ^ dest));
              changed := true))
          !derived);
    !changed
  in
  let quiescent = ref false in
  (try
     while not !quiescent do
       if !rounds >= max_rounds then raise Exit;
       let any =
         List.fold_left
           (fun acc p ->
             if !rounds >= max_rounds then acc
             else
               let c = activate p in
               acc || c)
           false (peer_order ())
       in
       if not any then quiescent := true
     done
   with Exit -> ());
  {
    stores =
      List.map
        (fun p -> (p, Matcher.Db.instance (Hashtbl.find stores p)))
        net.peers;
    rounds = !rounds;
    messages = !messages;
    quiescent = !quiescent;
  }

(* ------------------------------------------------------------------ *)

(* Bulk-synchronous evaluation: the network as a sharded evaluator.

   For monotone (negation- and ∀-free) programs the CALM observation
   says the outcome is schedule-independent — so no per-activation
   scheduling is needed at all. [run_bulk] treats each peer as one shard
   of a partitioned fixpoint and runs supersteps with the same
   derive/exchange structure as the shard-owned semi-naive driver:
   every peer fires its rules against its own store, local facts are
   inserted locally, remote facts are posted into a [Parallel.Exchange]
   cell (per-edge duplicate suppression replaces the scheduled run's
   best-effort inbox check), and a second phase drains every inbox. No
   peer ever waits on another inside a phase — coordination-free in the
   CALM sense; the only synchronisation is the superstep barrier.

   When the global pool is free, the two phases of each superstep run on
   its domains ([Pool.run_phases]): peer [i] is handled by worker
   [i mod nw] in BOTH phases, so each store (and its trace context) has
   a single writer, and exchange cells follow the Exchange ownership
   discipline exactly. The final stores are identical at every job
   count: each superstep fires against the stores as of the superstep
   start, and inserts are set-operations. *)

let monotone net =
  List.for_all
    (fun (_, rules) ->
      List.for_all
        (fun r ->
          r.rule.Ast.forall = []
          && List.for_all
               (function Ast.BNeg _ -> false | _ -> true)
               r.rule.Ast.body)
        rules)
    net.programs

let run_bulk ?(max_supersteps = 10_000) ?(trace = Observe.Trace.null) net =
  check net;
  if not (monotone net) then
    bad
      "run_bulk: bulk-synchronous supersteps are order-insensitive only for \
       monotone (negation-free) programs; use run";
  let tracing = Observe.Trace.enabled trace in
  let pool = Parallel.Pool.acquire () in
  Fun.protect
    ~finally:(fun () -> Option.iter Parallel.Pool.release pool)
  @@ fun () ->
  let nw = match pool with Some p -> Parallel.Pool.size p | None -> 1 in
  let peers = Array.of_list net.peers in
  let npeers = Array.length peers in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i p -> Hashtbl.replace index p i) peers;
  (* worker-private trace contexts (worker 0 = the caller's): peer [i]
     always counts into context [i mod nw] *)
  let wctx =
    Array.init nw (fun w ->
        if w = 0 || not tracing then trace
        else Observe.Trace.make ~sinks:[] ())
  in
  let stores =
    Array.mapi
      (fun i p ->
        Matcher.Db.of_instance ~trace:wctx.(i mod nw)
          (Option.value (List.assoc_opt p net.stores) ~default:Instance.empty))
      peers
  in
  let prepared =
    Array.map
      (fun p ->
        match List.assoc_opt p net.programs with
        | None -> []
        | Some rules -> List.map (fun r -> (r, Matcher.prepare r.rule)) rules)
      peers
  in
  let ex = Parallel.Exchange.create npeers in
  let changed = Array.make nw false in
  let wmsgs = Array.make nw 0 in
  let supersteps = ref 0 in
  let derive w =
    let i = ref w in
    while !i < npeers do
      let self = !i in
      let p = peers.(self) in
      let store = stores.(self) in
      let wtr = wctx.(w) in
      (match prepared.(self) with
      | [] -> ()
      | rules ->
          let plain = List.map (fun (r, _) -> r.rule) rules in
          let dom =
            Datalog.Eval_util.program_dom plain (Matcher.Db.instance store)
          in
          let local = ref [] in
          List.iter
            (fun (lr, plan) ->
              let substs = Matcher.run ~dom plan store in
              List.iter
                (fun subst ->
                  let _, facts =
                    Matcher.instantiate_heads subst lr.rule.Ast.head
                  in
                  List.iter
                    (fun (pos, pred, tup) ->
                      if pos then
                        let dest =
                          match lr.location with
                          | Local -> p
                          | At_peer q -> q
                          | At_var x -> (
                              match List.assoc_opt x subst with
                              | Some (Value.Sym s) -> s
                              | Some v ->
                                  bad "location variable %s bound to %s" x
                                    (Value.to_string v)
                              | None -> bad "location variable %s unbound" x)
                        in
                        if dest = p then local := (pred, tup) :: !local
                        else
                          let j =
                            match Hashtbl.find_opt index dest with
                            | Some j -> j
                            | None -> bad "unknown destination peer %s" dest
                          in
                          if Parallel.Exchange.post ex ~src:self ~dst:j pred tup
                          then (
                            wmsgs.(w) <- wmsgs.(w) + 1;
                            if tracing then (
                              Observe.Trace.incr wtr "netlog.messages";
                              Observe.Trace.incr wtr ("netlog.sent." ^ p);
                              Observe.Trace.incr wtr ("netlog.recv." ^ dest))))
                    facts)
                substs)
            rules;
          List.iter
            (fun (pred, tup) ->
              if Matcher.Db.insert store pred tup then changed.(w) <- true)
            (List.rev !local));
      i := !i + nw
    done
  in
  let exchange w =
    let i = ref w in
    while !i < npeers do
      let self = !i in
      Parallel.Exchange.drain ex ~dst:self (fun ~src:_ ~pred ts ->
          List.iter
            (fun t ->
              if Matcher.Db.insert stores.(self) pred t then
                changed.(w) <- true)
            ts);
      i := !i + nw
    done
  in
  let quiescent = ref false in
  while (not !quiescent) && !supersteps < max_supersteps do
    incr supersteps;
    if tracing then Observe.Trace.incr trace "netlog.supersteps";
    Array.fill changed 0 nw false;
    (match pool with
    | Some pl -> Parallel.Pool.run_phases pl [| derive; exchange |]
    | None ->
        derive 0;
        exchange 0);
    if not (Array.exists Fun.id changed) then quiescent := true
  done;
  if tracing then
    for w = 1 to nw - 1 do
      Observe.Trace.merge_counters trace wctx.(w)
    done;
  {
    stores =
      Array.to_list
        (Array.mapi (fun i p -> (p, Matcher.Db.instance stores.(i))) peers);
    rounds = !supersteps;
    messages = Array.fold_left ( + ) 0 wmsgs;
    quiescent = !quiescent;
  }

let store outcome peer =
  match List.assoc_opt peer outcome.stores with
  | Some i -> i
  | None -> Instance.empty

let global outcome =
  List.fold_left
    (fun acc (peer, inst) ->
      Instance.fold
        (fun pred rel acc ->
          Instance.set (peer ^ "::" ^ pred) rel acc)
        inst acc)
    Instance.empty outcome.stores

let confluent ?schedules net =
  let schedules =
    match schedules with
    | Some s -> s
    | None ->
        Round_robin
        :: List.map (fun s -> Random_sched s) [ 1; 2; 3; 4; 5 ]
  in
  match List.map (fun s -> global (run ~schedule:s net)) schedules with
  | [] -> true
  | g :: gs -> List.for_all (Instance.equal g) gs
