(** Distributed Datalog with located facts — the "distributed data
    exchange" adoption area of the paper (§6: declarative networking,
    Dedalus/Bloom, Webdamlog [11]; the semantics there is
    "nondeterministic and based on forward chaining, similarly to active
    rules").

    A {e network} is a set of peers, each holding a local store and a set
    of rules. Rules are installed at a peer; bodies are evaluated against
    the local store only (communication is explicit); the head carries a
    {e location} — a constant peer, the local peer, or a variable bound by
    the body, in which case the derived fact is {e sent} to that peer
    (Webdamlog-style data routing).

    Evaluation is forward chaining with explicit messaging: a scheduler
    repeatedly activates one peer, which (1) ingests its pending messages
    and (2) fires its rules once (one parallel application of the
    immediate-consequence operator, inflationary). The run terminates when
    no messages are pending and no peer can derive anything new.
    Nondeterminism lives in the schedule.

    The CALM intuition the paper recounts (§6, [80, 81, 21–25]) is
    observable here: {e negation-free} (monotone) networks converge to
    the same global state under every schedule, while networks with
    negation can be schedule-dependent — experiment E13 measures exactly
    this.

    Simplification vs Webdamlog: peers exchange {e facts} only; rule
    delegation (shipping rules, which genuinely adds expressive power
    [11]) is out of scope and documented as such in DESIGN.md. *)

open Relational

(** Head location. *)
type location =
  | Local  (** stays at the installing peer *)
  | At_peer of string  (** sent to a named peer *)
  | At_var of string  (** sent to the peer named by this body variable *)

type lrule = {
  location : location;
  rule : Datalog.Ast.rule;  (** single positive head; Datalog¬ body, evaluated
                        against the installing peer's local store *)
}

type network = {
  peers : string list;
  programs : (string * lrule list) list;  (** rules installed per peer *)
  stores : (string * Instance.t) list;  (** initial local stores *)
}

type schedule =
  | Round_robin
  | Random_sched of int  (** seeded random peer permutation per round *)

type outcome = {
  stores : (string * Instance.t) list;  (** final local stores *)
  rounds : int;  (** peer activations *)
  messages : int;  (** facts delivered across peers *)
  quiescent : bool;  (** false iff the fuel ran out *)
}

exception Bad_network of string

(** [check net] validates: every program key and [At_peer] target is a
    known peer; rules are Datalog¬ with single positive heads; [At_var]
    variables occur in the rule body.
    @raise Bad_network / [Datalog.Ast.Check_error] otherwise. *)
val check : network -> unit

(** [run ?schedule ?max_rounds net] (defaults: [Round_robin], fuel
    10_000 activations). [trace] counts [netlog.activations],
    [netlog.messages], and the per-peer message volumes
    [netlog.sent.<peer>] / [netlog.recv.<peer>], plus the stores' [db.*]
    counters. *)
val run :
  ?schedule:schedule ->
  ?max_rounds:int ->
  ?trace:Observe.Trace.ctx ->
  network ->
  outcome

(** [run_bulk ?max_supersteps net] evaluates a {e monotone} network in
    bulk-synchronous supersteps — the network as a sharded evaluator,
    with peers as the shards. Each superstep has two phases with the
    same structure as the shard-owned parallel fixpoint: every peer
    fires its rules against its own store (derive), routing remote facts
    through a batched {!Parallel.Exchange} with per-edge duplicate
    suppression, then every peer drains its inboxes (exchange). There is
    no per-activation scheduling: by CALM, a monotone network converges
    to the same stores under every schedule, so none is needed —
    coordination-free execution. When the global {!Parallel.Pool} is
    free, the phases of each superstep run across its domains (peer [i]
    on worker [i mod jobs]); the final stores are identical at every job
    count.

    The outcome's [rounds] field counts supersteps and [messages] the
    facts shipped between peers (each fact crosses a given peer pair at
    most once). [trace] counts [netlog.supersteps], [netlog.messages]
    and the per-peer [netlog.sent.<peer>] / [netlog.recv.<peer>].

    @raise Bad_network if the network fails {!check} or any rule body
    contains negation (or ∀) — bulk supersteps are order-insensitive
    only for monotone programs; use {!run} for the general case. *)
val run_bulk :
  ?max_supersteps:int ->
  ?trace:Observe.Trace.ctx ->
  network ->
  outcome

(** [store outcome peer] is a peer's final local store. *)
val store : outcome -> string -> Instance.t

(** [global outcome] is the union of all stores with each predicate
    prefixed by its peer ([peer::pred]) — a convenient global snapshot
    for comparing runs. *)
val global : outcome -> Instance.t

(** [confluent ?schedules net] runs under several schedules (default:
    round-robin plus 5 seeded random ones) and reports whether all global
    outcomes coincide — the executable CALM check. *)
val confluent : ?schedules:schedule list -> network -> bool
