let json_of_value = function
  | Trace.Int n -> Json.Int n
  | Trace.Float f -> Json.Float f
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let json_of_fields fields =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) fields)

let ms t = t *. 1000.
let ns_ms n = float_of_int n /. 1e6

let json_of_dist d =
  Json.Obj
    [
      ("n", Json.Int d.Trace.n);
      ("p50_ns", Json.Int d.Trace.p50);
      ("p90_ns", Json.Int d.Trace.p90);
      ("p99_ns", Json.Int d.Trace.p99);
      ("max_ns", Json.Int d.Trace.max_ns);
      ("sum_ns", Json.Int d.Trace.sum_ns);
    ]

let jsonl_sink ~write =
  let line kvs = write (Json.to_string (Json.Obj kvs)) in
  {
    Trace.on_open =
      (fun sp fields ->
        line
          [
            ("type", Json.Str "span_open");
            ("id", Json.Int sp.Trace.sid);
            ("parent", Json.Int sp.Trace.parent);
            ("kind", Json.Str sp.Trace.kind);
            ("name", Json.Str sp.Trace.name);
            ("t_ms", Json.Float (ms sp.Trace.t0));
            ("fields", json_of_fields fields);
          ]);
    on_close =
      (fun sp dur fields ->
        line
          [
            ("type", Json.Str "span_close");
            ("id", Json.Int sp.Trace.sid);
            ("kind", Json.Str sp.Trace.kind);
            ("name", Json.Str sp.Trace.name);
            ("dur_ms", Json.Float (ms dur));
            ("fields", json_of_fields fields);
          ]);
    on_event =
      (fun sid name fields ->
        line
          [
            ("type", Json.Str "event");
            ("span", Json.Int sid);
            ("name", Json.Str name);
            ("fields", json_of_fields fields);
          ]);
    on_finish =
      (fun cs hs ->
        line
          [
            ("type", Json.Str "summary");
            ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) cs));
            ( "histograms",
              Json.Obj (List.map (fun (k, d) -> (k, json_of_dist d)) hs) );
          ]);
  }

(* --- JSONL validation (trace_check, golden tests) -------------------- *)

let span_keys = [ "id"; "kind"; "name" ]

let required_keys = function
  | "span_open" -> "parent" :: "t_ms" :: "fields" :: span_keys
  | "span_close" -> "dur_ms" :: "fields" :: span_keys
  | "event" -> [ "span"; "name"; "fields" ]
  | "summary" -> [ "counters" ]
  | _ -> []

let validate_line line =
  match Json.parse line with
  | Error msg -> Error (Printf.sprintf "invalid JSON: %s" msg)
  | Ok json -> (
      match Json.member "type" json with
      | Some (Json.Str ty) -> (
          match required_keys ty with
          | [] -> Error (Printf.sprintf "unknown line type %S" ty)
          | keys -> (
              match
                List.filter (fun k -> Json.member k json = None) keys
              with
              | [] -> Ok ty
              | missing ->
                  Error
                    (Printf.sprintf "%s line missing keys: %s" ty
                       (String.concat ", " missing))))
      | _ -> Error "line has no \"type\" string")

(* --- human-readable summary ------------------------------------------ *)

let pp_fields ppf fields =
  List.iter
    (fun (k, v) ->
      let s =
        match v with
        | Trace.Int n -> string_of_int n
        | Trace.Float f -> Printf.sprintf "%.2f" f
        | Trace.Str s -> s
        | Trace.Bool b -> string_of_bool b
      in
      Format.fprintf ppf " %s=%s" k s)
    fields

let pp_summary ppf ctx =
  Format.fprintf ppf "== run report ==@.";
  let retained = Trace.retained_spans ctx in
  if retained <> [] then (
    Format.fprintf ppf "spans:@.";
    List.iter
      (fun (sp, dur, fields) ->
        Format.fprintf ppf "  %-8s %-24s %10.2f ms%a@." sp.Trace.kind
          sp.Trace.name (ms dur) pp_fields fields)
      retained);
  let aggs = Trace.span_aggregates ctx in
  let hot =
    List.filter (fun (k, _, _) -> not (List.mem k [ "run"; "stratum"; "phase" ])) aggs
  in
  if hot <> [] then (
    Format.fprintf ppf "span totals:@.";
    List.iter
      (fun (kind, n, total) ->
        Format.fprintf ppf "  %-24s %8d spans %12.2f ms@." kind n (ms total))
      hot);
  let cs = Trace.counters ctx in
  if cs <> [] then (
    Format.fprintf ppf "counters:@.";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-40s %12d@." k v) cs);
  let hs = Trace.histograms ctx in
  if hs <> [] then (
    Format.fprintf ppf "histograms:@.";
    List.iter
      (fun (k, d) ->
        Format.fprintf ppf
          "  %-28s %8d samples  p50=%.2f ms p90=%.2f ms p99=%.2f ms max=%.2f \
           ms@."
          k d.Trace.n (ns_ms d.Trace.p50) (ns_ms d.Trace.p90)
          (ns_ms d.Trace.p99) (ns_ms d.Trace.max_ns))
      hs);
  (* derived ratios the acceptance criteria care about *)
  let c name = Trace.counter ctx name in
  let builds = c "db.index_builds" and hits = c "db.index_memo_hits" in
  if builds + hits > 0 then
    Format.fprintf ppf "index hit/build ratio: %d/%d (%.1f%% hits)@." hits
      builds
      (100. *. float_of_int hits /. float_of_int (builds + hits));
  let cand = c "matcher.candidates" and substs = c "matcher.substs" in
  if cand > 0 then
    Format.fprintf ppf "join selectivity: %d/%d (%.1f%% of scanned tuples)@."
      substs cand
      (100. *. float_of_int substs /. float_of_int cand)
