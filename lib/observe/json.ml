type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- encoding ------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_to_string f)
  | Str s -> escape_string b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- parsing -------------------------------------------------------- *)

exception Parse_fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* encode the BMP code point as UTF-8 *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else if code < 0x800 then (
                     Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
                   else (
                     Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char b
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () =
      match peek () with Some ('0' .. '9') -> true | _ -> false
    in
    if not (is_digit ()) then fail "expected digit";
    while is_digit () do advance () done;
    let is_float = ref false in
    if peek () = Some '.' then (
      is_float := true;
      advance ();
      if not (is_digit ()) then fail "expected fraction digit";
      while is_digit () do advance () done);
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if not (is_digit ()) then fail "expected exponent digit";
        while is_digit () do advance () done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos < n then Error (Printf.sprintf "trailing input at offset %d" !pos)
      else Ok v
  | exception Parse_fail msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
