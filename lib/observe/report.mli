(** Trace sinks and reports: the JSON-lines trace writer, its schema
    validator, and the human-readable [--stats] summary.

    {1 JSONL trace schema}

    One JSON object per line. Every line has a ["type"] key:

    - [span_open]: ["id"], ["parent"] (0 at the root), ["kind"],
      ["name"], ["t_ms"] (open time, monotonic wall-clock milliseconds
      since process start — see {!Trace.now}), ["fields"]
    - [span_close]: ["id"], ["kind"], ["name"], ["dur_ms"] (elapsed
      wall-clock ms), ["fields"]
    - [event]: ["span"] (enclosing span id), ["name"], ["fields"]
    - [summary]: ["counters"] (an object mapping counter name to value)
      and ["histograms"] (an object mapping histogram name to
      [{"n", "p50_ns", "p90_ns", "p99_ns", "max_ns", "sum_ns"}]);
      written once by [Trace.finish]

    ["fields"] is always present, possibly [{}]. *)

(** [jsonl_sink ~write] emits one schema line per callback via [write]
    (which receives the line without a trailing newline). *)
val jsonl_sink : write:(string -> unit) -> Trace.sink

(** [validate_line line] checks one trace line against the schema:
    valid JSON, a known ["type"], and that type's required keys.
    Returns the line type on success. *)
val validate_line : string -> (string, string) result

(** [pp_summary ppf ctx] prints the human-readable run report: retained
    spans (runs, strata, phases) with their close fields, per-kind span
    totals, all counters and latency histograms (both sorted by name, so
    the output is deterministic up to the times themselves), and the
    derived index hit/build and join selectivity ratios. *)
val pp_summary : Format.formatter -> Trace.ctx -> unit
