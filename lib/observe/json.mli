(** Minimal JSON encoder/parser for the observability layer.

    The library is deliberately dependency-free; this module covers
    exactly what the trace writer needs (objects, arrays, scalars) plus a
    parser used by tests and [trace_check] to validate emitted lines. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] is the compact (single-line) JSON rendering of [v].
    Strings are escaped per RFC 8259; non-ASCII bytes pass through
    unescaped (the output is UTF-8). *)
val to_string : t -> string

(** [parse s] parses one complete JSON value, rejecting trailing input.
    [\u] escapes are decoded to UTF-8 (BMP code points only). *)
val parse : string -> (t, string) result

(** [member k v] is the value of key [k] when [v] is an object. *)
val member : string -> t -> t option
