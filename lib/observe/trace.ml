type value = Int of int | Float of float | Str of string | Bool of bool
type fields = (string * value) list

let fint k v = (k, Int v)
let ffloat k v = (k, Float v)
let fstr k v = (k, Str v)
let fbool k v = (k, Bool v)

type span = {
  sid : int;
  parent : int;
  kind : string;
  name : string;
  t0 : float;
}

type sink = {
  on_open : span -> fields -> unit;
  on_close : span -> float -> fields -> unit;
  on_event : int -> string -> fields -> unit;
  on_finish : (string * int) list -> unit;
}

type agg = { mutable spans : int; mutable total : float }

type ctx = {
  enabled : bool;
  sinks : sink list;
  retain_kinds : string list;
  retain_cap : int;
  mutable next_sid : int;
  mutable stack : span list;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, unit) Hashtbl.t;
      (* names registered through [gauge_max]: merged with max, not sum *)
  span_aggs : (string, agg) Hashtbl.t;
  mutable retained : (span * float * fields) list;
  mutable retained_n : int;
}

(* Monotonic *wall* clock (clock_gettime(CLOCK_MONOTONIC) via bechamel's
   stub). [Sys.time] — the previous source — is process-CPU time: it
   freezes across I/O waits and, under parallel domains, sums the work
   of every worker, inflating wall durations by up to the domain count.
   Times are reported in seconds relative to a process-start epoch so
   downstream millisecond fields stay small. *)
let epoch = Monotonic_clock.now ()

let now () =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) epoch) /. 1e9

let default_retain = [ "run"; "stratum"; "phase" ]

let make ?(sinks = []) ?(retain = default_retain) ?(retain_cap = 1024) () =
  {
    enabled = true;
    sinks;
    retain_kinds = retain;
    retain_cap;
    next_sid = 1;
    stack = [];
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 8;
    span_aggs = Hashtbl.create 16;
    retained = [];
    retained_n = 0;
  }

let null =
  {
    enabled = false;
    sinks = [];
    retain_kinds = [];
    retain_cap = 0;
    next_sid = 1;
    stack = [];
    counters = Hashtbl.create 1;
    gauges = Hashtbl.create 1;
    span_aggs = Hashtbl.create 1;
    retained = [];
    retained_n = 0;
  }

let enabled ctx = ctx.enabled

(* --- counters -------------------------------------------------------- *)

let add ctx name n =
  if ctx.enabled then
    match Hashtbl.find_opt ctx.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add ctx.counters name (ref n)

let incr ctx name = add ctx name 1

let gauge_max ctx name v =
  if ctx.enabled then (
    if not (Hashtbl.mem ctx.gauges name) then Hashtbl.add ctx.gauges name ();
    match Hashtbl.find_opt ctx.counters name with
    | Some r -> if v > !r then r := v
    | None -> Hashtbl.add ctx.counters name (ref v))

let counter ctx name =
  match Hashtbl.find_opt ctx.counters name with Some r -> !r | None -> 0

let counters ctx =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) ctx.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Fold a worker context's counters into the coordinator's: additive
   counters sum, [gauge_max] gauges take the maximum (a per-round peak
   observed by one worker is still a peak, not a sum). Only counters
   travel — spans and sinks stay with the context that opened them. *)
let merge_counters dst src =
  if dst.enabled && src.enabled then
    List.iter
      (fun (name, v) ->
        if Hashtbl.mem src.gauges name || Hashtbl.mem dst.gauges name then
          gauge_max dst name v
        else add dst name v)
      (counters src)

(* --- spans ----------------------------------------------------------- *)

let open_span ctx ?(fields = []) ~kind name =
  if ctx.enabled then (
    let parent = match ctx.stack with s :: _ -> s.sid | [] -> 0 in
    let sid = ctx.next_sid in
    ctx.next_sid <- sid + 1;
    let sp = { sid; parent; kind; name; t0 = now () } in
    ctx.stack <- sp :: ctx.stack;
    List.iter (fun s -> s.on_open sp fields) ctx.sinks)

let close_span ctx ?(fields = []) () =
  if ctx.enabled then
    match ctx.stack with
    | [] -> () (* unbalanced close: ignore rather than fail the engine *)
    | sp :: rest ->
        ctx.stack <- rest;
        let dur = now () -. sp.t0 in
        (match Hashtbl.find_opt ctx.span_aggs sp.kind with
        | Some a ->
            a.spans <- a.spans + 1;
            a.total <- a.total +. dur
        | None -> Hashtbl.add ctx.span_aggs sp.kind { spans = 1; total = dur });
        if List.mem sp.kind ctx.retain_kinds && ctx.retained_n < ctx.retain_cap
        then (
          ctx.retained <- (sp, dur, fields) :: ctx.retained;
          ctx.retained_n <- ctx.retained_n + 1);
        List.iter (fun s -> s.on_close sp dur fields) ctx.sinks

let with_span ctx ?fields ~kind name f =
  if not ctx.enabled then f ()
  else (
    open_span ctx ?fields ~kind name;
    Fun.protect ~finally:(fun () -> close_span ctx ()) f)

let event ctx ?(fields = []) name =
  if ctx.enabled then (
    let sid = match ctx.stack with s :: _ -> s.sid | [] -> 0 in
    List.iter (fun s -> s.on_event sid name fields) ctx.sinks)

let finish ctx =
  if ctx.enabled then (
    (* close anything an exception left open, marking it aborted *)
    while ctx.stack <> [] do
      close_span ctx ~fields:[ fbool "aborted" true ] ()
    done;
    let cs = counters ctx in
    List.iter (fun s -> s.on_finish cs) ctx.sinks)

(* --- introspection (summary printing, tests) ------------------------- *)

let span_aggregates ctx =
  Hashtbl.fold (fun k a acc -> (k, a.spans, a.total) :: acc) ctx.span_aggs []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let retained_spans ctx = List.rev ctx.retained

(* --- stock sinks ----------------------------------------------------- *)

type recorded =
  | Opened of span * fields
  | Closed of span * float * fields
  | Evented of int * string * fields
  | Finished of (string * int) list

let memory_sink () =
  let log = ref [] in
  let sink =
    {
      on_open = (fun sp f -> log := Opened (sp, f) :: !log);
      on_close = (fun sp dur f -> log := Closed (sp, dur, f) :: !log);
      on_event = (fun sid name f -> log := Evented (sid, name, f) :: !log);
      on_finish = (fun cs -> log := Finished cs :: !log);
    }
  in
  (sink, fun () -> List.rev !log)
