type value = Int of int | Float of float | Str of string | Bool of bool
type fields = (string * value) list

let fint k v = (k, Int v)
let ffloat k v = (k, Float v)
let fstr k v = (k, Str v)
let fbool k v = (k, Bool v)

type span = {
  sid : int;
  parent : int;
  kind : string;
  name : string;
  t0 : float;
}

(* --- histograms ------------------------------------------------------ *)

(* Log-bucketed latency histograms over non-negative integers
   (nanoseconds by convention). Values below 16 get an exact bucket
   each; above, every power-of-two octave is split into 8 linear
   sub-buckets, bounding the relative quantization error at 12.5%.
   Bucket indexing is value-determined (no per-histogram state), so two
   histograms recorded by different domains merge by summing bucket
   counts — the property the parallel barrier merge relies on. *)

let hist_buckets = 16 + (59 * 8) (* msb of a 63-bit int reaches 62 *)

let bucket_of v =
  let v = if v < 0 then 0 else v in
  if v < 16 then v
  else
    let msb =
      let rec f i = if v lsr i <= 1 then i else f (i + 1) in
      f 4
    in
    16 + ((msb - 4) * 8) + ((v lsr (msb - 3)) land 7)

(* Inclusive lower bound of bucket [i] — the representative value
   percentile queries report. *)
let bucket_lo i =
  if i < 16 then i
  else
    let oct = (i - 16) / 8 and pos = (i - 16) mod 8 in
    (8 + pos) lsl (oct + 1)

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  h_counts : int array;
}

type dist = {
  n : int;
  p50 : int;
  p90 : int;
  p99 : int;
  max_ns : int;
  sum_ns : int;
}

let hist_new () =
  { h_count = 0; h_sum = 0; h_max = 0; h_counts = Array.make hist_buckets 0 }

let hist_record h v =
  let v = if v < 0 then 0 else v in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_of v in
  h.h_counts.(i) <- h.h_counts.(i) + 1

let hist_merge dst src =
  dst.h_count <- dst.h_count + src.h_count;
  dst.h_sum <- dst.h_sum + src.h_sum;
  if src.h_max > dst.h_max then dst.h_max <- src.h_max;
  Array.iteri
    (fun i c -> if c > 0 then dst.h_counts.(i) <- dst.h_counts.(i) + c)
    src.h_counts

let dist_of h =
  if h.h_count = 0 then
    { n = 0; p50 = 0; p90 = 0; p99 = 0; max_ns = 0; sum_ns = 0 }
  else
    let pct q =
      let rank =
        let r = int_of_float (ceil (q *. float_of_int h.h_count)) in
        if r < 1 then 1 else r
      in
      let rec go i cum =
        if i >= hist_buckets then h.h_max
        else
          let cum = cum + h.h_counts.(i) in
          if cum >= rank then min (bucket_lo i) h.h_max else go (i + 1) cum
      in
      go 0 0
    in
    {
      n = h.h_count;
      p50 = pct 0.50;
      p90 = pct 0.90;
      p99 = pct 0.99;
      max_ns = h.h_max;
      sum_ns = h.h_sum;
    }

type sink = {
  on_open : span -> fields -> unit;
  on_close : span -> float -> fields -> unit;
  on_event : int -> string -> fields -> unit;
  on_finish : (string * int) list -> (string * dist) list -> unit;
}

type agg = { mutable spans : int; mutable total : float }

type ctx = {
  enabled : bool;
  sinks : sink list;
  retain_kinds : string list;
  retain_cap : int;
  mutable next_sid : int;
  mutable stack : span list;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, unit) Hashtbl.t;
      (* names registered through [gauge_max]: merged with max, not sum *)
  hists : (string, hist) Hashtbl.t;
  span_aggs : (string, agg) Hashtbl.t;
  mutable retained : (span * float * fields) list;
  mutable retained_n : int;
}

(* Monotonic *wall* clock (clock_gettime(CLOCK_MONOTONIC) via bechamel's
   stub). [Sys.time] — the previous source — is process-CPU time: it
   freezes across I/O waits and, under parallel domains, sums the work
   of every worker, inflating wall durations by up to the domain count.
   Times are reported in seconds relative to a process-start epoch so
   downstream millisecond fields stay small. *)
let epoch = Monotonic_clock.now ()

let now () =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) epoch) /. 1e9

let default_retain = [ "run"; "stratum"; "phase" ]

let make ?(sinks = []) ?(retain = default_retain) ?(retain_cap = 1024) () =
  {
    enabled = true;
    sinks;
    retain_kinds = retain;
    retain_cap;
    next_sid = 1;
    stack = [];
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 16;
    span_aggs = Hashtbl.create 16;
    retained = [];
    retained_n = 0;
  }

let null =
  {
    enabled = false;
    sinks = [];
    retain_kinds = [];
    retain_cap = 0;
    next_sid = 1;
    stack = [];
    counters = Hashtbl.create 1;
    gauges = Hashtbl.create 1;
    hists = Hashtbl.create 1;
    span_aggs = Hashtbl.create 1;
    retained = [];
    retained_n = 0;
  }

let enabled ctx = ctx.enabled

(* --- counters -------------------------------------------------------- *)

let add ctx name n =
  if ctx.enabled then
    match Hashtbl.find_opt ctx.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add ctx.counters name (ref n)

let incr ctx name = add ctx name 1

let gauge_max ctx name v =
  if ctx.enabled then (
    if not (Hashtbl.mem ctx.gauges name) then Hashtbl.add ctx.gauges name ();
    match Hashtbl.find_opt ctx.counters name with
    | Some r -> if v > !r then r := v
    | None -> Hashtbl.add ctx.counters name (ref v))

let counter ctx name =
  match Hashtbl.find_opt ctx.counters name with Some r -> !r | None -> 0

let counters ctx =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) ctx.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let observe_ns ctx name v =
  if ctx.enabled then
    let h =
      match Hashtbl.find_opt ctx.hists name with
      | Some h -> h
      | None ->
          let h = hist_new () in
          Hashtbl.add ctx.hists name h;
          h
    in
    hist_record h v

let observe_s ctx name secs = observe_ns ctx name (int_of_float (secs *. 1e9))

let histogram ctx name = Option.map dist_of (Hashtbl.find_opt ctx.hists name)

let histograms ctx =
  Hashtbl.fold (fun k h acc -> (k, dist_of h) :: acc) ctx.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Fold a worker context's counters and histograms into the
   coordinator's: additive counters sum, [gauge_max] gauges take the
   maximum (a per-round peak observed by one worker is still a peak, not
   a sum), histograms merge bucket-wise (count and sum add, max maxes).
   Only metrics travel — spans and sinks stay with the context that
   opened them. *)
let merge_counters dst src =
  if dst.enabled && src.enabled then (
    List.iter
      (fun (name, v) ->
        if Hashtbl.mem src.gauges name || Hashtbl.mem dst.gauges name then
          gauge_max dst name v
        else add dst name v)
      (counters src);
    Hashtbl.iter
      (fun name h ->
        match Hashtbl.find_opt dst.hists name with
        | Some dh -> hist_merge dh h
        | None ->
            let dh = hist_new () in
            hist_merge dh h;
            Hashtbl.add dst.hists name dh)
      src.hists)

(* --- spans ----------------------------------------------------------- *)

let open_span ctx ?(fields = []) ~kind name =
  if ctx.enabled then (
    let parent = match ctx.stack with s :: _ -> s.sid | [] -> 0 in
    let sid = ctx.next_sid in
    ctx.next_sid <- sid + 1;
    let sp = { sid; parent; kind; name; t0 = now () } in
    ctx.stack <- sp :: ctx.stack;
    List.iter (fun s -> s.on_open sp fields) ctx.sinks)

let close_span ctx ?(fields = []) () =
  if ctx.enabled then
    match ctx.stack with
    | [] -> () (* unbalanced close: ignore rather than fail the engine *)
    | sp :: rest ->
        ctx.stack <- rest;
        let dur = now () -. sp.t0 in
        (match Hashtbl.find_opt ctx.span_aggs sp.kind with
        | Some a ->
            a.spans <- a.spans + 1;
            a.total <- a.total +. dur
        | None -> Hashtbl.add ctx.span_aggs sp.kind { spans = 1; total = dur });
        observe_s ctx ("span." ^ sp.kind) dur;
        if List.mem sp.kind ctx.retain_kinds && ctx.retained_n < ctx.retain_cap
        then (
          ctx.retained <- (sp, dur, fields) :: ctx.retained;
          ctx.retained_n <- ctx.retained_n + 1);
        List.iter (fun s -> s.on_close sp dur fields) ctx.sinks

let with_span ctx ?fields ~kind name f =
  if not ctx.enabled then f ()
  else (
    open_span ctx ?fields ~kind name;
    Fun.protect ~finally:(fun () -> close_span ctx ()) f)

let event ctx ?(fields = []) name =
  if ctx.enabled then (
    let sid = match ctx.stack with s :: _ -> s.sid | [] -> 0 in
    List.iter (fun s -> s.on_event sid name fields) ctx.sinks)

let finish ctx =
  if ctx.enabled then (
    (* close anything an exception left open, marking it aborted *)
    while ctx.stack <> [] do
      close_span ctx ~fields:[ fbool "aborted" true ] ()
    done;
    let cs = counters ctx and hs = histograms ctx in
    List.iter (fun s -> s.on_finish cs hs) ctx.sinks)

(* --- introspection (summary printing, tests) ------------------------- *)

let span_aggregates ctx =
  Hashtbl.fold (fun k a acc -> (k, a.spans, a.total) :: acc) ctx.span_aggs []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let retained_spans ctx = List.rev ctx.retained

(* --- stock sinks ----------------------------------------------------- *)

type recorded =
  | Opened of span * fields
  | Closed of span * float * fields
  | Evented of int * string * fields
  | Finished of (string * int) list * (string * dist) list

let memory_sink () =
  let log = ref [] in
  let sink =
    {
      on_open = (fun sp f -> log := Opened (sp, f) :: !log);
      on_close = (fun sp dur f -> log := Closed (sp, dur, f) :: !log);
      on_event = (fun sid name f -> log := Evented (sid, name, f) :: !log);
      on_finish = (fun cs hs -> log := Finished (cs, hs) :: !log);
    }
  in
  (sink, fun () -> List.rev !log)
