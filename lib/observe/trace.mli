(** Engine-wide tracing and metrics.

    A {!ctx} is threaded through the evaluation engines; when disabled
    (the shared {!null} context) every instrumentation call reduces to a
    single branch on a boolean, so the hot paths pay a negligible cost.
    When enabled, the context maintains:

    - {b hierarchical spans} ([run > stratum > round > rule], plus
      engine-specific kinds such as [phase] for the well-founded
      alternating fixpoint), timed with a monotonic {e wall} clock
      (see {!now});
    - {b counters and max-gauges} for hot-path internals (delta sizes,
      tuples derived vs. deduped, index builds vs. memo hits, per-rule
      firings, join selectivity);
    - {b pluggable sinks} receiving span open/close, events, and the
      final counter dump — see {!memory_sink} here and
      [Report.jsonl_sink] for the machine-readable trace writer.

    The instrumentation layer never raises and never changes engine
    results; an unbalanced [close_span] is ignored and [finish] closes
    any spans abandoned by an exception. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type fields = (string * value) list

(** Field constructors: [fint "delta" 12] etc. *)

val fint : string -> int -> string * value
val ffloat : string -> float -> string * value
val fstr : string -> string -> string * value
val fbool : string -> bool -> string * value

type span = {
  sid : int;  (** unique within a context, 1-based *)
  parent : int;  (** parent span id, 0 at the root *)
  kind : string;  (** hierarchy level: run, stratum, round, phase, ... *)
  name : string;
  t0 : float;  (** open time, seconds on the monotonic wall clock of {!now} *)
}

(** The trace clock: monotonic wall-clock seconds since process start
    ([clock_gettime(CLOCK_MONOTONIC)] against a fixed epoch). Unlike
    [Sys.time] — process-CPU time, which ignores I/O waits and sums the
    work of concurrent domains — this measures elapsed real time, so
    span durations stay meaningful under parallel evaluation. *)
val now : unit -> float

(** A snapshot of a latency histogram (see {!observe_ns}): sample count,
    percentile estimates, exact maximum and exact sum, all in
    nanoseconds. Percentiles are bucket lower bounds, so they
    underestimate by at most 12.5% (one log-bucket's width) and are
    monotone in the quantile. An empty histogram snapshots to all
    zeros. *)
type dist = {
  n : int;
  p50 : int;
  p90 : int;
  p99 : int;
  max_ns : int;
  sum_ns : int;
}

(** A sink receives the span/event stream. Close callbacks also receive
    the span duration (seconds) and the fields recorded at close time;
    [on_finish] receives the final sorted counter list and histogram
    snapshots. *)
type sink = {
  on_open : span -> fields -> unit;
  on_close : span -> float -> fields -> unit;
  on_event : int -> string -> fields -> unit;
  on_finish : (string * int) list -> (string * dist) list -> unit;
}

type ctx

(** The disabled context: all operations are no-ops costing one branch.
    Engines default their [?trace] argument to this. *)
val null : ctx

(** [make ()] is an enabled context. [retain] lists the span kinds whose
    closed spans are kept (with close fields) for the human-readable
    summary, capped at [retain_cap] spans; defaults to
    [["run"; "stratum"; "phase"]]. *)
val make :
  ?sinks:sink list -> ?retain:string list -> ?retain_cap:int -> unit -> ctx

val enabled : ctx -> bool

(** {1 Counters}

    [add ctx name n] accumulates into a named counter; [gauge_max]
    keeps the maximum instead. Counters and gauges share one namespace
    and are both reported by {!counters}. *)

val add : ctx -> string -> int -> unit
val incr : ctx -> string -> unit
val gauge_max : ctx -> string -> int -> unit

(** [counter ctx name] is the current value ([0] when absent). *)
val counter : ctx -> string -> int

(** All counters, sorted by name. *)
val counters : ctx -> (string * int) list

(** {1 Histograms}

    Log-bucketed latency histograms: values below 16 are exact, larger
    values land in one of 8 linear sub-buckets per power-of-two octave
    (≤ 12.5% relative error). Bucket boundaries depend only on the
    value, so histograms recorded independently (e.g. one per parallel
    domain) merge losslessly by summing bucket counts. *)

(** [observe_ns ctx name v] records one sample (nanoseconds; negative
    values clamp to 0) into the named histogram, creating it on first
    use. *)
val observe_ns : ctx -> string -> int -> unit

(** [observe_s ctx name secs] is {!observe_ns} after converting seconds
    to nanoseconds — the natural companion to {!now} deltas. *)
val observe_s : ctx -> string -> float -> unit

(** [histogram ctx name] snapshots one histogram ([None] when absent).
    Every closed span also feeds a histogram named [span.<kind>]
    automatically, so e.g. [histogram ctx "span.round"] is the round
    latency distribution. *)
val histogram : ctx -> string -> dist option

(** All histogram snapshots, sorted by name. *)
val histograms : ctx -> (string * dist) list

(** [merge_counters dst src] folds [src]'s counters and histograms into
    [dst]: additive counters sum, gauges recorded with {!gauge_max} (in
    either context) merge by maximum, histograms merge bucket-wise (so
    the merged count is the sum of per-context counts and percentiles
    reflect the pooled samples). Spans, events and sinks are not
    transferred. The parallel engines give each worker a private context
    and merge at the barrier, so workers never contend on one table.
    No-op if either context is disabled. *)
val merge_counters : ctx -> ctx -> unit

(** {1 Spans and events} *)

(** [open_span ctx ~kind name] pushes a child of the innermost open
    span. Pair with {!close_span}, whose [fields] carry the
    measurements known only at the end (e.g. a round's delta size). *)
val open_span : ctx -> ?fields:fields -> kind:string -> string -> unit

val close_span : ctx -> ?fields:fields -> unit -> unit

(** [with_span ctx ~kind name f] wraps [f] in a span, closing it even if
    [f] raises. *)
val with_span : ctx -> ?fields:fields -> kind:string -> string -> (unit -> 'a) -> 'a

(** [event ctx name] records a point event inside the innermost open
    span. *)
val event : ctx -> ?fields:fields -> string -> unit

(** [finish ctx] closes any spans left open (marked [aborted]) and
    delivers the final counter dump to every sink. Call once, after the
    traced computation. *)
val finish : ctx -> unit

(** {1 Introspection} *)

(** Per-kind aggregates over closed spans: [(kind, count, total_seconds)],
    sorted by kind. *)
val span_aggregates : ctx -> (string * int * float) list

(** Retained closed spans (see [retain] in {!make}) in close order:
    [(span, duration_seconds, close_fields)]. *)
val retained_spans : ctx -> (span * float * fields) list

(** {1 Stock sinks} *)

type recorded =
  | Opened of span * fields
  | Closed of span * float * fields
  | Evented of int * string * fields
  | Finished of (string * int) list * (string * dist) list

(** [memory_sink ()] is a sink plus an accessor returning everything it
    received, in order — the test harness's view of a run. *)
val memory_sink : unit -> sink * (unit -> recorded list)
