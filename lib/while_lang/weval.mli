(** Evaluator for the while / fixpoint languages.

    FO queries are evaluated with active-domain semantics over the current
    instance (extended with the formula's constants). Every query of the
    program is compiled {e once} to an {!Relational.Algebra} plan via
    {!Relational.Fo.compile} — default-domain plans are
    instance-independent, so the same plan runs on every loop iteration;
    loop conditions become nullary plans. [~naive:true] reverts to the
    pre-compilation enumerators ({!Relational.Fo.eval_naive}), kept as the
    reference oracle. [While] loops may diverge — evaluation takes fuel,
    counted in executed loop iterations. *)

open Relational

type outcome =
  | Completed of { instance : Instance.t; iterations : int }
  | Out_of_fuel of { instance : Instance.t; iterations : int }

(** [run ?fuel ?trace ?naive p inst] (default fuel 100_000 loop
    iterations, compiled evaluation; [trace] collects the [fo.plan.*] and
    algebra counters).
    @raise Invalid_argument via {!Wast.check} on ill-formed programs. *)
val run :
  ?fuel:int ->
  ?trace:Observe.Trace.ctx ->
  ?naive:bool ->
  Wast.program ->
  Instance.t ->
  outcome

(** [eval p inst] expects completion. @raise Failure on fuel
    exhaustion. *)
val eval :
  ?fuel:int ->
  ?trace:Observe.Trace.ctx ->
  ?naive:bool ->
  Wast.program ->
  Instance.t ->
  Instance.t

(** [answer p inst pred] projects one relation from the final instance. *)
val answer :
  ?fuel:int ->
  ?trace:Observe.Trace.ctx ->
  ?naive:bool ->
  Wast.program ->
  Instance.t ->
  string ->
  Relation.t
