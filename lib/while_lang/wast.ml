open Relational

type query = { formula : Fo.formula; vars : string list }

type stmt =
  | Assign of string * query
  | Cumulate of string * query
  | While_change of stmt list
  | While of Fo.formula * stmt list

type program = stmt list

let rec stmt_is_fixpoint = function
  | Assign _ -> false
  | Cumulate _ -> true
  | While_change body | While (_, body) -> List.for_all stmt_is_fixpoint body

let is_fixpoint p = List.for_all stmt_is_fixpoint p

let assigned_relations p =
  let rec go acc = function
    | Assign (r, _) | Cumulate (r, _) -> r :: acc
    | While_change body | While (_, body) -> List.fold_left go acc body
  in
  List.sort_uniq String.compare (List.fold_left go [] p)

let check p =
  let check_query r { formula; vars } =
    match
      List.filter (fun x -> not (List.mem x vars)) (Fo.free_vars formula)
    with
    | [] -> ()
    | missing ->
        invalid_arg
          (Printf.sprintf
             "While: free variable%s %s of the query assigned to %s %s not \
              output column%s"
             (if List.length missing = 1 then "" else "s")
             (String.concat ", " missing)
             r
             (if List.length missing = 1 then "is" else "are")
             (if List.length missing = 1 then "" else "s"))
  in
  let rec go = function
    | Assign (r, q) | Cumulate (r, q) -> check_query r q
    | While_change body -> List.iter go body
    | While (cond, body) ->
        (match Fo.free_vars cond with
        | [] -> ()
        | fv ->
            invalid_arg
              (Printf.sprintf "While: loop condition has free variable%s %s"
                 (if List.length fv = 1 then "" else "s")
                 (String.concat ", " fv)));
        List.iter go body
  in
  List.iter go p

let rec pp_stmt ppf = function
  | Assign (r, { formula; vars }) ->
      Format.fprintf ppf "%s(%s) := %a" r (String.concat ", " vars) Fo.pp
        formula
  | Cumulate (r, { formula; vars }) ->
      Format.fprintf ppf "%s(%s) += %a" r (String.concat ", " vars) Fo.pp
        formula
  | While_change body ->
      Format.fprintf ppf "@[<v 2>while change do@,%a@]@,od" pp_body body
  | While (cond, body) ->
      Format.fprintf ppf "@[<v 2>while %a do@,%a@]@,od" Fo.pp cond pp_body
        body

and pp_body ppf body =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@,")
    pp_stmt ppf body

let pp ppf p = Format.fprintf ppf "@[<v>%a@]" pp_body p
