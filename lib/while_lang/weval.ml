open Relational

type outcome =
  | Completed of { instance : Instance.t; iterations : int }
  | Out_of_fuel of { instance : Instance.t; iterations : int }

exception Fuel

(* A program with every query compiled to an algebra plan. Default-domain
   plans are instance-independent (the domain enters as an [Adom] leaf),
   so compiling once per program is sound across loop iterations. *)
type cstmt =
  | CAssign of string * Fo.plan
  | CCumulate of string * Fo.plan
  | CWhile_change of cstmt list
  | CWhile of Fo.plan * cstmt list  (** nullary sentence plan *)

let rec compile_stmt trace = function
  | Wast.Assign (r, { Wast.formula; vars }) ->
      CAssign (r, Fo.compile ~trace formula vars)
  | Wast.Cumulate (r, { Wast.formula; vars }) ->
      CCumulate (r, Fo.compile ~trace formula vars)
  | Wast.While_change body ->
      CWhile_change (List.map (compile_stmt trace) body)
  | Wast.While (cond, body) ->
      CWhile (Fo.compile ~trace cond [], List.map (compile_stmt trace) body)

let run ?(fuel = 100_000) ?(trace = Observe.Trace.null) ?(naive = false) p inst
    =
  Wast.check p;
  let iterations = ref 0 in
  let tick () =
    incr iterations;
    if !iterations > fuel then raise Fuel
  in
  let result =
    if naive then
      let eval_query inst { Wast.formula; vars } =
        Fo.eval_naive inst formula vars
      in
      let rec exec_stmt inst = function
        | Wast.Assign (r, q) -> Instance.set r (eval_query inst q) inst
        | Wast.Cumulate (r, q) ->
            Instance.set r
              (Relation.union (Instance.find r inst) (eval_query inst q))
              inst
        | Wast.While_change body ->
            let rec loop inst =
              tick ();
              let next = exec_body inst body in
              if Instance.equal next inst then inst else loop next
            in
            loop inst
        | Wast.While (cond, body) ->
            let rec loop inst =
              if Fo.sentence_naive inst cond then (
                tick ();
                loop (exec_body inst body))
              else inst
            in
            loop inst
      and exec_body inst body = List.fold_left exec_stmt inst body in
      fun () -> exec_body inst p
    else
      let cp = List.map (compile_stmt trace) p in
      let rec exec_stmt inst = function
        | CAssign (r, pl) ->
            Instance.set r (Fo.run_plan ~trace inst pl) inst
        | CCumulate (r, pl) ->
            Instance.set r
              (Relation.union (Instance.find r inst)
                 (Fo.run_plan ~trace inst pl))
              inst
        | CWhile_change body ->
            let rec loop inst =
              tick ();
              let next = exec_body inst body in
              if Instance.equal next inst then inst else loop next
            in
            loop inst
        | CWhile (cond, body) ->
            let rec loop inst =
              if not (Relation.is_empty (Fo.run_plan ~trace inst cond)) then (
                tick ();
                loop (exec_body inst body))
              else inst
            in
            loop inst
      and exec_body inst body = List.fold_left exec_stmt inst body in
      fun () -> exec_body inst cp
  in
  match result () with
  | result -> Completed { instance = result; iterations = !iterations }
  | exception Fuel -> Out_of_fuel { instance = inst; iterations = !iterations }

let eval ?fuel ?trace ?naive p inst =
  match run ?fuel ?trace ?naive p inst with
  | Completed { instance; _ } -> instance
  | Out_of_fuel { iterations; _ } ->
      failwith
        (Printf.sprintf "While program did not terminate within %d iterations"
           iterations)

let answer ?fuel ?trace ?naive p inst pred =
  Instance.find pred (eval ?fuel ?trace ?naive p inst)
