open Relational
module Ast = Datalog.Ast
module Matcher = Datalog.Matcher

type crule = {
  rule : Ast.rule;
  choices : (string list * string list) list;
}

exception Invalid_choice of string

let check p =
  Ast.check_datalog (List.map (fun c -> c.rule) p);
  List.iter
    (fun c ->
      let vars = Ast.rule_vars c.rule in
      List.iter
        (fun (xs, ys) ->
          List.iter
            (fun v ->
              if not (List.mem v vars) then
                raise
                  (Invalid_choice
                     (Printf.sprintf "choice variable %s not in rule" v)))
            (xs @ ys))
        c.choices)
    p

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let eval ~seed ?(trace = Observe.Trace.null) p inst =
  check p;
  let tracing = Observe.Trace.enabled trace in
  let rng = Random.State.make [| seed |] in
  let plain = List.map (fun c -> c.rule) p in
  let dom = Datalog.Eval_util.program_dom plain inst in
  let prepared =
    List.mapi (fun i c -> (i, c, Matcher.prepare c.rule)) p
  in
  (* committed FDs: (rule index, choice index, x̄ values) -> ȳ values *)
  let committed : (int * int * Value.t list, Value.t list) Hashtbl.t =
    Hashtbl.create 64
  in
  let compatible idx c subst =
    List.for_all
      (fun (ci, (xs, ys)) ->
        let key = List.map (fun x -> List.assoc x subst) xs in
        let want = List.map (fun y -> List.assoc y subst) ys in
        match Hashtbl.find_opt committed (idx, ci, key) with
        | None -> true
        | Some have -> have = want)
      (List.mapi (fun ci ch -> (ci, ch)) c.choices)
  in
  let commit idx c subst =
    List.iteri
      (fun ci (xs, ys) ->
        let key = List.map (fun x -> List.assoc x subst) xs in
        let want = List.map (fun y -> List.assoc y subst) ys in
        if not (Hashtbl.mem committed (idx, ci, key)) then
          Hashtbl.add committed (idx, ci, key) want)
      c.choices
  in
  (* one persistent database across rounds: each round matches against the
     round-start state, collects its additions separately, and absorbs them
     at the end so the indexes update incrementally *)
  let db = Matcher.Db.of_instance ~trace inst in
  let round_no = ref 0 in
  let rec loop () =
    if tracing then (
      Observe.Trace.open_span trace ~kind:"round" (string_of_int !round_no);
      Stdlib.incr round_no);
    let added = ref Instance.empty in
    let any = ref false in
    List.iter
      (fun (idx, c, plan) ->
        let substs = shuffle rng (Matcher.run ~dom plan db) in
        List.iter
          (fun subst ->
            if compatible idx c subst then (
              if tracing then Observe.Trace.incr trace "choice.commits";
              commit idx c subst;
              let _, facts = Matcher.instantiate_heads subst c.rule.Ast.head in
              List.iter
                (fun (pos, pr, t) ->
                  if
                    pos
                    && (not (Matcher.Db.mem db pr t))
                    && not (Instance.mem_fact pr t !added)
                  then (
                    added := Instance.add_fact pr t !added;
                    any := true))
                facts))
          substs)
      prepared;
    if tracing then (
      let d = Instance.total_facts !added in
      Observe.Trace.incr trace "fixpoint.rounds";
      Observe.Trace.gauge_max trace "fixpoint.delta_max" d;
      Observe.Trace.add trace "fixpoint.delta_total" d;
      Observe.Trace.close_span trace
        ~fields:[ Observe.Trace.fint "delta" d ]
        ());
    if !any then (
      Matcher.Db.absorb db !added;
      loop ())
    else Matcher.Db.instance db
  in
  loop ()

let answer ~seed ?trace p inst pred =
  Instance.find pred (eval ~seed ?trace p inst)

let respects_choices p result =
  List.for_all
    (fun c ->
      match c.rule.Ast.head with
      | [ Ast.HPos head ] ->
          let rel = Instance.find head.Ast.pred result in
          let positions vars =
            (* positions of the given variables among the head columns;
               choice variables not in the head are unchecked here *)
            List.filter_map
              (fun v ->
                let rec find i = function
                  | [] -> None
                  | Ast.Var x :: _ when x = v -> Some i
                  | _ :: rest -> find (i + 1) rest
                in
                find 0 head.Ast.args)
              vars
          in
          List.for_all
            (fun (xs, ys) ->
              let px = positions xs and py = positions ys in
              if List.length px <> List.length xs
                 || List.length py <> List.length ys
              then true (* choice over non-head variables: not checkable *)
              else
                let tbl = Hashtbl.create 16 in
                Relation.for_all
                  (fun t ->
                    let k = List.map (Tuple.get t) px in
                    let v = List.map (Tuple.get t) py in
                    match Hashtbl.find_opt tbl k with
                    | None ->
                        Hashtbl.add tbl k v;
                        true
                    | Some v' -> v = v')
                  rel)
            c.choices
      | _ -> true)
    p
