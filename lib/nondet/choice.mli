(** The choice operator of Krishnamurthy–Naqvi / LDL (§5.2 of the paper:
    "another way to introduce nondeterminism in rule-based languages",
    [90], included in LDL [99]; expressiveness studied in [52], which
    exhibits a choice language capturing exactly ndb-ptime).

    A rule may carry constraints [choice((X̄), (Ȳ))]: among the rule's
    firings, the chosen subset must satisfy the functional dependency
    [X̄ → Ȳ]. Operationally (the "dynamic choice" reading): evaluation is
    bottom-up; when a firing would violate a previously committed choice,
    it is discarded; which firing commits first is the nondeterministic
    choice, resolved here by a seeded shuffle.

    The classic example is the nondeterministic spanning tree:

    {v st(root, root).
   st(X, Y) :- st(W, X), e(X, Y), choice((Y), (X)). v}

    — every node acquires exactly one parent. *)

open Relational

type crule = {
  rule : Datalog.Ast.rule;  (** single positive head, positive body *)
  choices : (string list * string list) list;
      (** [(x̄, ȳ)] pairs: FD x̄ → ȳ over the rule's variables *)
}

exception Invalid_choice of string

(** [check p] validates: pure-Datalog rules (the fragment of [90]), and
    every choice variable occurs in the rule.
    @raise Invalid_choice / [Datalog.Ast.Check_error] on violations. *)
val check : crule list -> unit

(** [eval ~seed p inst] computes one choice-model bottom-up. Deterministic
    for a fixed seed. [trace] wraps each round in a ["round"] span (close
    field [delta]) and counts [choice.commits] along with the shared
    [fixpoint.*] counters. *)
val eval :
  seed:int -> ?trace:Observe.Trace.ctx -> crule list -> Instance.t -> Instance.t

(** [answer ~seed p inst pred]. *)
val answer :
  seed:int ->
  ?trace:Observe.Trace.ctx ->
  crule list ->
  Instance.t ->
  string ->
  Relation.t

(** [respects_choices p result]: every committed FD holds in the result's
    head relations — an invariant checkable after the fact (used by
    tests). The check is per-rule on the head relation restricted to the
    choice columns, which is sound when each head predicate is defined by
    a single choice rule. *)
val respects_choices : crule list -> Instance.t -> bool
