(** Nondeterministic evaluation of N-Datalog¬(¬) programs — §5.1,
    Definitions 5.1 and 5.2 of the paper.

    One {e immediate successor} of an instance [I] is obtained by firing a
    {e single} instantiation of a single rule whose body is true in [I] and
    whose instantiated head is consistent (no fact asserted and retracted
    by the same firing): retracted facts are deleted, asserted facts
    inserted. The {e effect} of a program is the binary relation pairing
    [I] with every [J] reachable by a maximal firing sequence — [J] has no
    immediate successor different from itself.

    The inconsistency symbol ⊥ (N-Datalog¬⊥, §5.2) is treated as a
    derivable pseudo-fact: a computation that fires a ⊥-headed rule is
    {e abandoned} and contributes nothing to the effect; a state with an
    applicable ⊥ instantiation is not terminal. ∀-quantified bodies
    (N-Datalog¬∀) are evaluated over the active domain.

    No-op firings (the successor equals the current instance) are skipped:
    every maximal sequence has a stutter-free counterpart with the same
    endpoint, so the effect relation is unchanged. *)

open Relational

(** What can follow from the current instance in one firing. *)
type successors = {
  changed : Instance.t list;  (** distinct successor instances ≠ current *)
  bottom_applicable : bool;
      (** some applicable instantiation derives ⊥ *)
}

(** [successors p inst] computes all one-step successors. The caller is
    responsible for having validated [p] against the intended fragment
    ({!Datalog.Ast.check_ndatalog} and friends). *)
val successors : Datalog.Ast.program -> Instance.t -> successors

(** [is_terminal p inst]: no immediate successor differs from [inst] and
    no ⊥ is derivable. *)
val is_terminal : Datalog.Ast.program -> Instance.t -> bool

type outcome =
  | Terminal of { instance : Instance.t; steps : int }
  | Abandoned of { steps : int }  (** a ⊥-headed rule fired *)
  | Out_of_fuel of { instance : Instance.t; steps : int }

(** [run ~seed p inst] performs a uniform random walk: at each state one
    applicable, state-changing (or ⊥) instantiation is chosen at random.
    Deterministic for a fixed [seed]. [max_steps] defaults to 100_000.
    [trace] counts [nondet.steps] and [nondet.candidates] (applicable
    firings summed over steps) and emits an [abandoned] event when a
    ⊥-headed rule fires. *)
val run :
  seed:int ->
  ?max_steps:int ->
  ?trace:Observe.Trace.ctx ->
  Datalog.Ast.program ->
  Instance.t ->
  outcome

(** [run_until_terminal ~seed ?attempts p inst] retries [run] on ⊥
    abandonment (fresh derived seeds), returning the first terminal
    instance; [None] if all [attempts] (default 100) were abandoned. *)
val run_until_terminal :
  seed:int ->
  ?attempts:int ->
  ?max_steps:int ->
  ?trace:Observe.Trace.ctx ->
  Datalog.Ast.program ->
  Instance.t ->
  Instance.t option
