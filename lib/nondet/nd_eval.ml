open Relational
module Ast = Datalog.Ast
module Matcher = Datalog.Matcher

type successors = {
  changed : Instance.t list;
  bottom_applicable : bool;
}

(* Apply one grounded head to the instance. The head is consistent
   (checked by the caller), so insertion/deletion order is irrelevant. *)
let apply_heads inst facts =
  List.fold_left
    (fun acc (pos, pred, tup) ->
      if pos then Instance.add_fact pred tup acc
      else Instance.remove_fact pred tup acc)
    inst facts

let head_consistent facts =
  not
    (List.exists
       (fun (pos, pred, tup) ->
         pos
         && List.exists
              (fun (pos', pred', tup') ->
                (not pos') && pred = pred' && Tuple.equal tup tup')
              facts)
       facts)

(* Enumerate all applicable firings as (bottom, grounded head facts),
   given pre-compiled plans and an indexed database. *)
let firings_db prepared dom db =
  List.concat_map
    (fun (rule, plan) ->
      let substs = Matcher.run ~dom plan db in
      List.filter_map
        (fun subst ->
          let bottom, facts = Matcher.instantiate_heads subst rule.Ast.head in
          if head_consistent facts then Some (bottom, facts) else None)
        substs)
    prepared

let firings p inst =
  let dom = Datalog.Eval_util.program_dom p inst in
  let db = Matcher.Db.of_instance inst in
  firings_db (List.map (fun r -> (r, Matcher.prepare r)) p) dom db

let successors p inst =
  let fs = firings p inst in
  let bottom_applicable = List.exists (fun (b, _) -> b) fs in
  let nexts =
    List.filter_map
      (fun (bottom, facts) ->
        if bottom then None
        else
          let next = apply_heads inst facts in
          if Instance.equal next inst then None else Some next)
      fs
  in
  let changed = List.sort_uniq Instance.compare nexts in
  { changed; bottom_applicable }

let is_terminal p inst =
  let { changed; bottom_applicable } = successors p inst in
  changed = [] && not bottom_applicable

type outcome =
  | Terminal of { instance : Instance.t; steps : int }
  | Abandoned of { steps : int }
  | Out_of_fuel of { instance : Instance.t; steps : int }

let run ~seed ?(max_steps = 100_000) ?(trace = Observe.Trace.null) p inst =
  let rng = Random.State.make [| seed |] in
  let tracing = Observe.Trace.enabled trace in
  (* plans are compiled once; the walk mutates one indexed database,
     applying only the chosen firing at each step *)
  let prepared = List.map (fun r -> (r, Matcher.prepare r)) p in
  let db = Matcher.Db.of_instance ~trace inst in
  let changes_state facts =
    List.exists
      (fun (pos, pred, tup) ->
        if pos then not (Matcher.Db.mem db pred tup)
        else Matcher.Db.mem db pred tup)
      facts
  in
  let rec go steps =
    if steps >= max_steps then
      Out_of_fuel { instance = Matcher.Db.instance db; steps }
    else
      let dom = Datalog.Eval_util.program_dom p (Matcher.Db.instance db) in
      (* candidate firings: state-changing or ⊥-deriving *)
      let candidates =
        List.filter_map
          (fun (bottom, facts) ->
            if bottom then Some None
            else if changes_state facts then Some (Some facts)
            else None)
          (firings_db prepared dom db)
      in
      if tracing then (
        Observe.Trace.incr trace "nondet.steps";
        Observe.Trace.add trace "nondet.candidates" (List.length candidates));
      match candidates with
      | [] -> Terminal { instance = Matcher.Db.instance db; steps }
      | _ -> (
          match List.nth candidates (Random.State.int rng (List.length candidates)) with
          | None ->
              if tracing then Observe.Trace.event trace "abandoned";
              Abandoned { steps = steps + 1 }
          | Some facts ->
              List.iter
                (fun (pos, pred, tup) ->
                  if pos then ignore (Matcher.Db.insert db pred tup)
                  else ignore (Matcher.Db.remove db pred tup))
                facts;
              go (steps + 1))
  in
  go 0

let run_until_terminal ~seed ?(attempts = 100) ?max_steps ?trace p inst =
  let rec try_ k =
    if k >= attempts then None
    else
      match run ~seed:(seed + (1_000_003 * k)) ?max_steps ?trace p inst with
      | Terminal { instance; _ } -> Some instance
      | Abandoned _ -> try_ (k + 1)
      | Out_of_fuel _ -> None
  in
  try_ 0
