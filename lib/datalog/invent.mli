(** Datalog¬new — value invention (§4.3).

    Syntax is Datalog¬ except that variables may occur only in the head of
    a rule; such variables are valuated with {e distinct fresh values
    outside the current active domain}, once per applicable body
    instantiation. The inflationary semantics is otherwise unchanged.
    Because re-firing a body instantiation at a later stage must not mint
    new values forever, each (rule, body-instantiation) pair fires exactly
    once — the standard reading under which the semantics is
    deterministic up to the choice of fresh values (and fully
    deterministic on invention-free answers).

    Theorem 4.6: Datalog¬new expresses all computable queries — the
    invented values supply the unbounded workspace a Turing machine needs
    (see {!Tm_compile} for the executable construction). Termination is
    therefore undecidable; [run] takes fuel. *)

open Relational

type outcome =
  | Fixpoint of {
      instance : Instance.t;
      stages : int;
      invented : int;  (** how many fresh values were created *)
    }
  | Out_of_fuel of { instance : Instance.t; stages : int; invented : int }

(** [run ?max_stages p inst] (default fuel 10_000 stages). [trace] wraps
    each stage in a ["round"] span (close field [delta] = facts inserted)
    and maintains [fixpoint.*], [rule_firings.*] and [invent.values] (the
    running number of fresh values minted).
    @raise Ast.Check_error if [p] is not Datalog¬new syntax. *)
val run :
  ?max_stages:int ->
  ?trace:Observe.Trace.ctx ->
  Ast.program ->
  Instance.t ->
  outcome

(** [eval p inst] expects a fixpoint; @raise Failure when fuel runs out. *)
val eval :
  ?max_stages:int ->
  ?trace:Observe.Trace.ctx ->
  Ast.program ->
  Instance.t ->
  Instance.t

(** [answer p inst pred] returns [pred]'s relation {e restricted to
    invention-free tuples} — the paper's safety restriction guaranteeing a
    deterministic query: programs whose answers never contain invented
    values define deterministic queries. Use [answer_exn] to additionally
    enforce the restriction. *)
val answer :
  ?max_stages:int ->
  ?trace:Observe.Trace.ctx ->
  Ast.program ->
  Instance.t ->
  string ->
  Relation.t

(** [answer_exn p inst pred] like [answer] but
    @raise Failure if the relation contains an invented value. *)
val answer_exn :
  ?max_stages:int -> Ast.program -> Instance.t -> string -> Relation.t
