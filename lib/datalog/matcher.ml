open Relational

(* Hashable interned-id vectors: the key type of every secondary index
   and of the matcher's dedup set. Equality is int-array comparison and
   hashing a short integer mix — no polymorphic hashing, no value
   structure walked on the hot path. *)
module IdKey = struct
  type t = int array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec eq i =
      i >= Array.length a
      || (Array.unsafe_get a i = Array.unsafe_get b i && eq (i + 1))
    in
    eq 0

  (* same avalanching mix as [Tuple.hash_ids]: index keys are dense
     small ids, so a weak polynomial hash would cluster every bucket *)
  let hash = Tuple.hash_ids
end

module KTbl = Hashtbl.Make (IdKey)
module IdTbl = KTbl

(* The one index-append: cons [t] onto the bucket keyed [k], creating
   the bucket on first use. Every secondary index in this file — main
   database indexes, their incremental maintenance on insert/absorb,
   shard delta indexes and the per-run delta index — appends through
   here. *)
let ix_append ix k t =
  KTbl.replace ix k (t :: (try KTbl.find ix k with Not_found -> []))

module Db = struct
  (* A mutable database view whose secondary indexes survive updates.
     Indexes are memoized per (predicate, constrained positions): a hash
     table from the interned-id vector at those positions to the matching
     tuples. [insert]/[absorb]/[remove] keep every memoized index in sync
     with the instance, so fixpoint engines create one Db per evaluation
     and feed it deltas instead of re-indexing the full instance at every
     stage. The all-tuples scan is the [positions = []] index, so it too
     is maintained incrementally. *)
  (* each memoized index stores its constrained positions both as the
     memo key (list) and as a flat array, so per-tuple key extraction is
     a single [Array.map] with no intermediate list *)
  type memset = unit KTbl.t

  type t = {
    mutable inst : Instance.t;
    pending : (string, Tuple.t list ref) Hashtbl.t;
        (* facts accepted by [absorb_new] but not yet folded into the
           persistent instance: during a fixpoint the memoized indexes
           and membership sets are the authoritative structures, so the
           trie is rebuilt lazily — one bulk build per predicate on the
           next read instead of a path copy per fact per round *)
    indexes :
      (string, (int list, int array * Tuple.t list KTbl.t) Hashtbl.t)
      Hashtbl.t;
    mems : (string, memset) Hashtbl.t;
        (* per-predicate flat hash membership sets, built lazily on first
           probe and maintained incrementally ever after: a fact check is
           O(1) array-hash probes, never a walk of the persistent trie
           (which goes cache-cold once relations outgrow the caches) *)
    trace : Observe.Trace.ctx;
  }

  let of_instance ?(trace = Observe.Trace.null) inst =
    {
      inst;
      pending = Hashtbl.create 4;
      indexes = Hashtbl.create 32;
      mems = Hashtbl.create 8;
      trace;
    }

  let trace db = db.trace

  (* A worker's view of the database: a shallow copy that shares every
     hash table (pending, memoized indexes, membership sets) but carries
     a private trace context, so parallel workers can count without
     contending on one counter table. The view is read-only by
     convention — the sharing means a lazy index/memset build through a
     view would race with its siblings, which is why the parallel
     engines [prewarm] every structure a plan can touch before fanning
     out. The mutable [inst] field is copied by value and does not track
     later coordinator-side flushes — a view must not be used through
     [instance] / [relation]. *)
  let with_trace db trace = { db with trace }

  let flush_pred db p =
    match Hashtbl.find_opt db.pending p with
    | None -> ()
    | Some lst ->
        Hashtbl.remove db.pending p;
        db.inst <-
          Instance.set p
            (Relation.union (Relation.of_distinct !lst) (Instance.find p db.inst))
            db.inst

  let flush db =
    if Hashtbl.length db.pending > 0 then
      List.iter (flush_pred db)
        (Hashtbl.fold (fun p _ acc -> p :: acc) db.pending [])

  let instance db =
    flush db;
    db.inst

  let relation db p =
    flush_pred db p;
    Instance.find p db.inst

  let memset db p =
    match Hashtbl.find_opt db.mems p with
    | Some tb -> tb
    | None ->
        let rel = relation db p in
        let tb = KTbl.create (max 64 (2 * Relation.cardinal rel)) in
        Relation.unordered_iter (fun t -> KTbl.replace tb (Tuple.ids t) ()) rel;
        Hashtbl.add db.mems p tb;
        tb

  let memset_mem = KTbl.mem
  let mem db p tup = KTbl.mem (memset db p) (Tuple.ids tup)

  let mems_add db p t =
    match Hashtbl.find_opt db.mems p with
    | Some tb -> KTbl.replace tb (Tuple.ids t) ()
    | None -> ()

  let mems_remove db p t =
    match Hashtbl.find_opt db.mems p with
    | Some tb -> KTbl.remove tb (Tuple.ids t)
    | None -> ()

  let pred_indexes db p =
    match Hashtbl.find_opt db.indexes p with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.add db.indexes p t;
        t

  let key_of parr t = Array.map (fun i -> Tuple.id t i) parr

  let index db p positions =
    let per_pred = pred_indexes db p in
    match Hashtbl.find_opt per_pred positions with
    | Some (_, ix) ->
        Observe.Trace.incr db.trace "db.index_memo_hits";
        ix
    | None ->
        Observe.Trace.incr db.trace "db.index_builds";
        let parr = Array.of_list positions in
        let ix = KTbl.create 64 in
        Relation.unordered_iter
          (fun t -> ix_append ix (key_of parr t) t)
          (relation db p);
        Hashtbl.add per_pred positions (parr, ix);
        ix

  let lookup_key db p positions key =
    match KTbl.find_opt (index db p positions) key with
    | Some ts -> ts
    | None -> []

  (* The compiled plans below probe indexes with statically-sorted
     positions; this convenience entry point only pays a sort when handed
     unsorted bindings. *)
  let rec bindings_sorted = function
    | [] | [ _ ] -> true
    | (i, _) :: ((j, _) :: _ as rest) -> i <= j && bindings_sorted rest

  let lookup db p bindings =
    let bindings =
      if bindings_sorted bindings then bindings
      else List.sort (fun (i, _) (j, _) -> Int.compare i j) bindings
    in
    lookup_key db p (List.map fst bindings)
      (Array.of_list (List.map (fun (_, v) -> Value.Intern.id v) bindings))

  let insert db p t =
    flush_pred db p;
    if Instance.mem_fact p t db.inst then (
      Observe.Trace.incr db.trace "db.insert_dups";
      false)
    else (
      Observe.Trace.incr db.trace "db.inserts";
      db.inst <- Instance.add_fact p t db.inst;
      mems_add db p t;
      (match Hashtbl.find_opt db.indexes p with
      | None -> ()
      | Some per_pred ->
          Hashtbl.iter
            (fun _ (parr, ix) -> ix_append ix (key_of parr t) t)
            per_pred);
      true)

  (* Deletion must purge the lazy [pending] buffer too: a fact accepted
     by [absorb_new] lives only in [pending]/mems/indexes until the next
     read flushes it into the trie, and leaving it queued would let that
     flush resurrect it after this remove. Purging directly (instead of
     flushing first) also keeps retraction from forcing a full per-pred
     trie rebuild on every call — the deletion hot path of the resident
     server. *)
  let remove db p t =
    let in_pending =
      match Hashtbl.find_opt db.pending p with
      | None -> false
      | Some lst ->
          if List.exists (Tuple.equal t) !lst then (
            lst := List.filter (fun u -> not (Tuple.equal u t)) !lst;
            true)
          else false
    in
    let in_inst = Instance.mem_fact p t db.inst in
    if not (in_pending || in_inst) then false
    else (
      if in_inst then db.inst <- Instance.remove_fact p t db.inst;
      mems_remove db p t;
      (match Hashtbl.find_opt db.indexes p with
      | None -> ()
      | Some per_pred ->
          Hashtbl.iter
            (fun _ (parr, ix) ->
              let k = key_of parr t in
              match KTbl.find_opt ix k with
              | None -> ()
              | Some bucket ->
                  KTbl.replace ix k
                    (List.filter (fun u -> not (Tuple.equal u t)) bucket))
            per_pred);
      true)

  let absorb db delta =
    Instance.fold
      (fun p rel () ->
        match Hashtbl.find_opt db.indexes p with
        | None ->
            (* no memoized index: bulk-union the new tuples *)
            let news =
              Relation.unordered_fold
                (fun t acc -> if mem db p t then acc else t :: acc)
                rel []
            in
            if news <> [] then (
              db.inst <-
                Instance.set p (Relation.add_all news (relation db p)) db.inst;
              List.iter (mems_add db p) news)
        | Some per_pred ->
            (* indexed predicate: one structural union for the relation
               (shared subtrees, no per-tuple instance churn), then append
               the genuinely new tuples to every memoized index *)
            let cur = relation db p in
            let grown = Relation.union rel cur in
            let added = Relation.cardinal grown - Relation.cardinal cur in
            let dups = Relation.cardinal rel - added in
            if added > 0 then Observe.Trace.add db.trace "db.inserts" added;
            if dups > 0 then Observe.Trace.add db.trace "db.insert_dups" dups;
            if added > 0 then (
              db.inst <- Instance.set p grown db.inst;
              Relation.unordered_iter
                (fun t ->
                  if dups = 0 || not (Relation.mem t cur) then (
                    mems_add db p t;
                    Hashtbl.iter
                      (fun _ (parr, ix) -> ix_append ix (key_of parr t) t)
                      per_pred))
                rel))
      delta ()

  (* Bulk insert of facts known to be fresh and pairwise distinct (the
     semi-naive delta, already deduplicated against the database by the
     firing loop): no membership checks, one traversal per structure. *)
  let absorb_new db p news =
    match news with
    | [] -> ()
    | _ ->
        Observe.Trace.add db.trace "db.inserts" (List.length news);
        (* defer the trie: facts queue up in [pending] and the relation
           is bulk-rebuilt on the next read; indexes and membership sets
           (below) stay current, which is all the join loop touches *)
        (match Hashtbl.find_opt db.pending p with
        | Some lst -> lst := List.rev_append news !lst
        | None -> Hashtbl.add db.pending p (ref news));
        (match Hashtbl.find_opt db.mems p with
        | Some tb -> List.iter (fun t -> KTbl.replace tb (Tuple.ids t) ()) news
        | None -> ());
        (match Hashtbl.find_opt db.indexes p with
        | None -> ()
        | Some per_pred ->
            Hashtbl.iter
              (fun _ (parr, ix) ->
                List.iter (fun t -> ix_append ix (key_of parr t) t) news)
              per_pred)
end

(* ------------------------------------------------------------------ *)

(* Shard-owned predicate state for the partitioned parallel fixpoint
   (Slog-style): every fact belongs to exactly one shard, decided by a
   hash of its first-column value id, and each worker domain holds the
   membership sets and per-round delta indexes for the facts it owns.
   Nothing here is shared — one [Shard.t] per worker, mutated only by
   its owner, so freshness checks need no locks and no global merge. *)
module Shard = struct
  type t = {
    shard : int;
    nshards : int;
    mems : (string, unit KTbl.t) Hashtbl.t;
        (* per-predicate membership over the owned partition: seeded
           from the database, extended with every accepted fresh fact —
           complete for owned-tuple freshness checks by construction
           (every fresh fact is routed through its owner) *)
    delta : (string, Tuple.t list) Hashtbl.t;
        (* this shard's slice of the current round's delta *)
    dixes : (string, (int list, Tuple.t list KTbl.t) Hashtbl.t) Hashtbl.t;
        (* (pred, positions) indexes over the delta slices, memoized for
           the round so rules sharing bound positions reuse one build *)
  }

  (* same avalanche story as [Tuple.hash_ids]: interned ids are dense
     small integers, so a plain [mod] would put consecutive vertices in
     consecutive shards — fine for balance, terrible as a hash contract.
     Mix first so ownership is uncorrelated with interning order. *)
  let owner ~nshards ids =
    if nshards = 1 || Array.length ids = 0 then 0
    else begin
      let x = Array.unsafe_get ids 0 in
      let x = (x lxor (x lsr 16)) * 0x45d9f3b in
      let x = (x lxor (x lsr 13)) land max_int in
      x mod nshards
    end

  let create ~nshards ~shard =
    if nshards < 1 || shard < 0 || shard >= nshards then
      invalid_arg "Matcher.Shard.create: shard out of range";
    {
      shard;
      nshards;
      mems = Hashtbl.create 8;
      delta = Hashtbl.create 8;
      dixes = Hashtbl.create 8;
    }

  let id sh = sh.shard
  let owns sh ids = owner ~nshards:sh.nshards ids = sh.shard

  let memset sh p =
    match Hashtbl.find_opt sh.mems p with
    | Some tb -> tb
    | None ->
        let tb = KTbl.create 256 in
        Hashtbl.add sh.mems p tb;
        tb

  let mem sh p ids = KTbl.mem (memset sh p) ids
  let add sh p t = KTbl.replace (memset sh p) (Tuple.ids t) ()

  let seed sh p rel =
    let tb = memset sh p in
    Relation.unordered_iter
      (fun t ->
        let ids = Tuple.ids t in
        if owner ~nshards:sh.nshards ids = sh.shard then KTbl.replace tb ids ())
      rel

  let total sh = Hashtbl.fold (fun _ tb n -> n + KTbl.length tb) sh.mems 0

  let set_delta sh p ts =
    Hashtbl.replace sh.delta p ts;
    Hashtbl.remove sh.dixes p

  let clear_delta sh =
    Hashtbl.reset sh.delta;
    Hashtbl.reset sh.dixes

  let delta sh p =
    match Hashtbl.find_opt sh.delta p with Some ts -> ts | None -> []

  let delta_index sh p positions =
    let per =
      match Hashtbl.find_opt sh.dixes p with
      | Some t -> t
      | None ->
          let t = Hashtbl.create 4 in
          Hashtbl.add sh.dixes p t;
          t
    in
    match Hashtbl.find_opt per positions with
    | Some ix -> ix
    | None ->
        let parr = Array.of_list positions in
        let ix = KTbl.create 64 in
        List.iter
          (fun t -> ix_append ix (Array.map (fun i -> Tuple.id t i) parr) t)
          (delta sh p);
        Hashtbl.add per positions ix;
        ix
end

(* ------------------------------------------------------------------ *)

(* Compiled plans: variables are mapped to integer slots at [prepare]
   time, and constants to interned ids, so the join loop unifies ids into
   one mutable [int array] (-1 = unbound) — every comparison on the hot
   path is a machine-integer compare. For every step the set of
   already-bound argument positions is known statically (the step order
   is fixed), so each atom carries a precomputed index key and the
   remaining positions carry their unification ops. *)

type cterm = CCst of int  (** interned constant id *) | CVar of int

type catom = { cpred : string; cargs : cterm array }

type unify_op =
  | UKey  (** position is part of the lookup key: already matched *)
  | UBind of int  (** first occurrence of an unbound variable: bind slot *)
  | UCheckSlot of int  (** repeated unbound variable within the atom *)

type cstep =
  | CAtom of {
      apred : string;
      arity : int;
      key_positions : int list;  (** statically-bound positions, ascending *)
      key_terms : cterm array;  (** aligned with [key_positions] *)
      unify : unify_op array;  (** one op per argument position *)
      binds : int array;  (** slots first bound by this step *)
    }
  | CDomain of int  (** enumerate the slot over the active domain *)

type cfilter =
  | FPos of catom
  | FNeg of catom
  | FEq of cterm * cterm
  | FNeq of cterm * cterm

type prepared = {
  rule : Ast.rule;
  nslots : int;
  csteps : cstep array;
  filters_after : cfilter list array;
      (** [filters_after.(i)] become fully bound once steps [0..i-1] ran;
          index 0 holds the ground filters checked before any step *)
  body_filters : cfilter list;
      (** the whole body, for re-evaluation under ∀-valuations *)
  forall_slots : int array;
  undecidable : bool;
      (** some non-∀ filter can never be fully bound (unsafe rule):
          no substitution is ever produced, matching the legacy matcher *)
  need_dom : bool;
  keep : (string * int) array;  (** output projection, name-sorted *)
  cheads : (bool * string * cterm array) list;
      (** compiled head templates (polarity, pred, args); ⊥ heads are
          omitted — the engines that use the fast firing path ignore them *)
  cbodies : (string * cterm array) array;
      (** compiled positive body atoms in original body order — the
          derivation enumeration ({!iter_derivations}) instantiates
          these alongside the heads *)
}

let atom_vars (a : Ast.atom) =
  List.filter_map
    (function Ast.Var x -> Some x | Ast.Cst _ -> None)
    a.Ast.args

let prepare (rule : Ast.rule) =
  let pos_atoms =
    List.filter_map (function Ast.BPos a -> Some a | _ -> None) rule.Ast.body
  in
  let ast_filters =
    List.filter (function Ast.BPos _ -> false | _ -> true) rule.Ast.body
  in
  (* greedy ordering: repeatedly pick the atom sharing the most variables
     with the already-bound set; tie-break on fewer new variables, then on
     original position (stable). *)
  let module SSet = Set.Make (String) in
  let rec order bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let score a =
          let vs = atom_vars a in
          let b = List.length (List.filter (fun v -> SSet.mem v bound) vs) in
          let fresh =
            List.length
              (List.sort_uniq String.compare
                 (List.filter (fun v -> not (SSet.mem v bound)) vs))
          in
          (b, -fresh)
        in
        let best =
          List.fold_left
            (fun best a ->
              match best with
              | None -> Some (a, score a)
              | Some (_, sb) when score a > sb -> Some (a, score a)
              | some -> some)
            None remaining
        in
        let a, _ = Option.get best in
        let remaining = List.filter (fun x -> x != a) remaining in
        let bound =
          List.fold_left (fun s v -> SSet.add v s) bound (atom_vars a)
        in
        order bound remaining (a :: acc)
  in
  let ordered_atoms = order SSet.empty pos_atoms [] in
  let bound_by_atoms = List.concat_map atom_vars ordered_atoms in
  (* body variables not bound by any positive atom range over the domain
     (paper: instantiations valuate into adom(P, K)); ∀-variables are
     handled separately, and head-only variables are never enumerated —
     they are either rejected by the safety checks or freshly invented
     (Datalog¬new). *)
  let needed =
    Ast.body_vars rule
    |> List.filter (fun v ->
           (not (List.mem v bound_by_atoms))
           && not (List.mem v rule.Ast.forall))
  in
  (* slot assignment: every variable of the rule gets a slot *)
  let all_vars =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun x ->
        if Hashtbl.mem seen x then false
        else (
          Hashtbl.add seen x ();
          true))
      (Ast.rule_vars rule @ Ast.body_vars rule @ rule.Ast.forall)
  in
  let nslots = List.length all_vars in
  let slot_tbl = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.replace slot_tbl x i) all_vars;
  let slot x = Hashtbl.find slot_tbl x in
  (* compile steps, tracking static boundness; [first_bound.(s)] is the
     1-based step index after which slot [s] is bound (0 = never) *)
  let bound = Array.make (max nslots 1) false in
  let first_bound = Array.make (max nslots 1) 0 in
  let step_no = ref 0 in
  let compile_atom (a : Ast.atom) =
    incr step_no;
    let args = Array.of_list a.Ast.args in
    let n = Array.length args in
    let keyspec = ref [] in
    let unify = Array.make n UKey in
    let binds = ref [] in
    Array.iteri
      (fun i t ->
        match t with
        | Ast.Cst v -> keyspec := (i, CCst (Value.Intern.id v)) :: !keyspec
        | Ast.Var x ->
            let s = slot x in
            if bound.(s) then keyspec := (i, CVar s) :: !keyspec
            else if List.mem s !binds then unify.(i) <- UCheckSlot s
            else (
              binds := s :: !binds;
              unify.(i) <- UBind s))
      args;
    List.iter
      (fun s ->
        bound.(s) <- true;
        first_bound.(s) <- !step_no)
      !binds;
    let spec = List.rev !keyspec in
    CAtom
      {
        apred = a.Ast.pred;
        arity = n;
        key_positions = List.map fst spec;
        key_terms = Array.of_list (List.map snd spec);
        unify;
        binds = Array.of_list (List.rev !binds);
      }
  in
  let atom_steps = List.map compile_atom ordered_atoms in
  let domain_steps =
    List.map
      (fun x ->
        incr step_no;
        let s = slot x in
        bound.(s) <- true;
        first_bound.(s) <- !step_no;
        CDomain s)
      needed
  in
  let csteps = Array.of_list (atom_steps @ domain_steps) in
  let nsteps = Array.length csteps in
  (* compile filters and schedule each at the earliest step after which
     all its variables are bound *)
  let cterm_of = function
    | Ast.Cst v -> CCst (Value.Intern.id v)
    | Ast.Var x -> CVar (slot x)
  in
  let catom_of (a : Ast.atom) =
    { cpred = a.Ast.pred; cargs = Array.of_list (List.map cterm_of a.Ast.args) }
  in
  let cfilter_of = function
    | Ast.BPos a -> FPos (catom_of a)
    | Ast.BNeg a -> FNeg (catom_of a)
    | Ast.BEq (s, t) -> FEq (cterm_of s, cterm_of t)
    | Ast.BNeq (s, t) -> FNeq (cterm_of s, cterm_of t)
  in
  let blit_var_slots l =
    let terms =
      match l with
      | Ast.BPos a | Ast.BNeg a -> a.Ast.args
      | Ast.BEq (s, t) | Ast.BNeq (s, t) -> [ s; t ]
    in
    List.filter_map
      (function Ast.Var x -> Some (slot x) | Ast.Cst _ -> None)
      terms
  in
  let filters_after = Array.make (nsteps + 1) [] in
  let undecidable = ref false in
  List.iter
    (fun f ->
      let slots = blit_var_slots f in
      if List.for_all (fun s -> first_bound.(s) > 0) slots then
        let at = List.fold_left (fun m s -> max m first_bound.(s)) 0 slots in
        filters_after.(at) <- filters_after.(at) @ [ cfilter_of f ]
      else if
        (* a filter over never-bound variables is decidable only under the
           ∀-valuations; otherwise it can never pass *)
        not
          (List.for_all
             (fun s ->
               first_bound.(s) > 0
               || List.exists (fun y -> slot y = s) rule.Ast.forall)
             slots)
      then undecidable := true)
    ast_filters;
  let keep =
    all_vars
    |> List.filter (fun x ->
           first_bound.(slot x) > 0 && not (List.mem x rule.Ast.forall))
    |> List.sort String.compare
    |> List.map (fun x -> (x, slot x))
    |> Array.of_list
  in
  let forall_slots = Array.of_list (List.map slot rule.Ast.forall) in
  let cheads =
    List.filter_map
      (function
        | Ast.HBottom -> None
        | Ast.HPos a ->
            Some
              (true, a.Ast.pred, Array.of_list (List.map cterm_of a.Ast.args))
        | Ast.HNeg a ->
            Some
              (false, a.Ast.pred, Array.of_list (List.map cterm_of a.Ast.args)))
      rule.Ast.head
  in
  let cbodies =
    Array.of_list
      (List.map
         (fun a ->
           let ca = catom_of a in
           (ca.cpred, ca.cargs))
         pos_atoms)
  in
  {
    rule;
    nslots;
    csteps;
    filters_after;
    body_filters = List.map cfilter_of rule.Ast.body;
    forall_slots;
    undecidable = !undecidable;
    need_dom =
      Array.length forall_slots > 0
      || Array.exists (function CDomain _ -> true | _ -> false) csteps;
    keep;
    cheads;
    cbodies;
  }

(* ------------------------------------------------------------------ *)

(* Association-list helpers retained for [satisfies] (the nondeterministic
   engines re-check applicability of a grounded rule). *)

let term_value subst = function
  | Ast.Cst v -> Some v
  | Ast.Var x -> List.assoc_opt x subst

let check_filter ?neg_db db subst = function
  | Ast.BNeg a ->
      let vs = atom_vars a in
      if List.for_all (fun v -> List.assoc_opt v subst <> None) vs then
        let ndb = Option.value neg_db ~default:db in
        let _, tup = Ast.ground_atom subst a in
        Some (not (Db.mem ndb a.Ast.pred tup))
      else None
  | Ast.BEq (s, t) -> (
      match (term_value subst s, term_value subst t) with
      | Some a, Some b -> Some (Value.equal a b)
      | _ -> None)
  | Ast.BNeq (s, t) -> (
      match (term_value subst s, term_value subst t) with
      | Some a, Some b -> Some (not (Value.equal a b))
      | _ -> None)
  | Ast.BPos a ->
      let vs = atom_vars a in
      if List.for_all (fun v -> List.assoc_opt v subst <> None) vs then
        let _, tup = Ast.ground_atom subst a in
        Some (Db.mem db a.Ast.pred tup)
      else None

(* Force every lazily-built structure a plan can touch — step indexes,
   membership sets for positive/negative filter probes (the ∀ check
   re-evaluates the whole body, so every body literal counts), and the
   head-dedup memsets — so that read-only workers sharing the database
   never trigger a concurrent build. Called by the parallel engines on
   the coordinator, between barriers. *)
let prewarm ?neg_db prepared db =
  let ndb = Option.value neg_db ~default:db in
  Array.iter
    (function
      | CAtom { apred; key_positions; _ } ->
          ignore (Db.index db apred key_positions : Tuple.t list KTbl.t)
      | CDomain _ -> ())
    prepared.csteps;
  let warm_filter = function
    | FPos ca -> ignore (Db.memset db ca.cpred : unit KTbl.t)
    | FNeg ca -> ignore (Db.memset ndb ca.cpred : unit KTbl.t)
    | FEq _ | FNeq _ -> ()
  in
  Array.iter (List.iter warm_filter) prepared.filters_after;
  List.iter warm_filter prepared.body_filters;
  List.iter
    (fun (_, p, _) -> ignore (Db.memset db p : unit KTbl.t))
    prepared.cheads

(* The join loop shared by {!run} and {!iter_firings}. [consume] is
   called once per (deduped) match with [tval] reading interned ids out
   of the live environment, and [vals] holding the projected id vector
   when dedup forced its construction. Returns the match count. *)
let exec ?delta ?delta_index ?dom ?neg_db prepared db ~consume =
  (if prepared.need_dom && dom = None then
     invalid_arg
       "Matcher.run: rule has domain-bound or \xe2\x88\x80 variables; supply ~dom");
  if prepared.undecidable then 0
  else
    let tr = Db.trace db in
    let tracing = Observe.Trace.enabled tr in
    (* the domain is only consulted by CDomain steps and ∀-rules, both of
       which imply [need_dom]; intern it once per run *)
    let dom_ids =
      if prepared.need_dom then
        List.map Value.Intern.id (Option.value dom ~default:[])
      else []
    in
    let ndb = Option.value neg_db ~default:db in
    (* resolve each step's index table once per call: probes then pay a
       single hash on the key ids, not repeated (pred, positions)
       table hops *)
    let resolve = function
      | CAtom { apred; key_positions; _ } ->
          Some (Db.index db apred key_positions)
      | CDomain _ -> None
    in
    let main_ix = Array.map resolve prepared.csteps in
    (* per-(pred, bound-positions) index over the delta tuples: delta
       candidates are looked up, not scanned; built straight from the
       list, with no intermediate relation or database. A caller holding
       the delta in shard-owned state supplies [delta_index] to reuse
       one memoized build across every rule sharing the positions. *)
    let delta_ix =
      match delta with
      | None -> [||]
      | Some (dpred, dtuples) ->
          Array.map
            (function
              | CAtom { apred; key_positions; _ } when apred = dpred ->
                  Some
                    (match delta_index with
                    | Some f -> f key_positions
                    | None ->
                        let parr = Array.of_list key_positions in
                        let ix = KTbl.create 64 in
                        List.iter
                          (fun t ->
                            ix_append ix
                              (Array.map (fun i -> Tuple.id t i) parr)
                              t)
                          dtuples;
                        ix)
              | _ -> None)
            prepared.csteps
    in
    (* the environment: one interned id per slot, -1 = unbound *)
    let env = Array.make (max prepared.nslots 1) (-1) in
    let tval = function
      | CCst id -> id
      | CVar s ->
          let v = Array.unsafe_get env s in
          assert (v >= 0);
          v
    in
    let check_cfilter = function
      | FPos ca -> Db.memset_mem (Db.memset db ca.cpred) (Array.map tval ca.cargs)
      | FNeg ca ->
          not (Db.memset_mem (Db.memset ndb ca.cpred) (Array.map tval ca.cargs))
      | FEq (s, t) -> tval s = tval t
      | FNeq (s, t) -> tval s <> tval t
    in
    let filters_ok k = List.for_all check_cfilter prepared.filters_after.(k) in
    (* ∀-rules: re-evaluate the whole body for every valuation of the
       ∀-variables over the domain (paper, §5.2) *)
    let check_forall () =
      let nf = Array.length prepared.forall_slots in
      let rec enum i =
        if i = nf then List.for_all check_cfilter prepared.body_filters
        else
          let s = prepared.forall_slots.(i) in
          List.for_all
            (fun vid ->
              env.(s) <- vid;
              enum (i + 1))
            dom_ids
      in
      enum 0
    in
    let nsteps = Array.length prepared.csteps in
    (* dedup: different derivations (delta passes, ∀-witnesses) can yield
       the same projected valuation — a hash set over the kept id vectors
       replaces the legacy terminal sort_uniq. *)
    let module Seen = Hashtbl.Make (IdKey) in
    (* Within one pass, distinct derivation paths always differ at some
       bound slot and [keep] covers every bound slot, so emits are already
       unique: the hash set is needed only when several delta passes can
       re-find the same valuation, or when a caller-supplied domain list
       might contain repeats. *)
    let npasses =
      match delta with
      | None -> 0
      | Some (pred, _) ->
          Array.fold_left
            (fun n s ->
              match s with
              | CAtom { apred; _ } when apred = pred -> n + 1
              | _ -> n)
            0 prepared.csteps
    in
    let dedup = npasses > 1 || prepared.need_dom in
    let seen = Seen.create (if dedup then 1024 else 1) in
    let nresults = ref 0 in
    let nkeep = Array.length prepared.keep in
    let emit () =
      if dedup then (
        let vals =
          Array.init nkeep (fun k ->
              let _, s = prepared.keep.(k) in
              let v = env.(s) in
              assert (v >= 0);
              v)
        in
        if not (Seen.mem seen vals) then (
          Seen.add seen vals ();
          incr nresults;
          consume ~tval ~vals:(Some vals)))
      else (
        incr nresults;
        consume ~tval ~vals:None)
    in
    let rec go delta_idx i =
      if i = nsteps then (
        if Array.length prepared.forall_slots > 0 then (
          if check_forall () then emit ())
        else emit ())
      else
        match prepared.csteps.(i) with
        | CDomain s ->
            List.iter
              (fun vid ->
                env.(s) <- vid;
                if filters_ok (i + 1) then go delta_idx (i + 1))
              dom_ids;
            env.(s) <- -1
        | CAtom { arity; key_terms; unify; binds; _ } ->
            let key = Array.map tval key_terms in
            let ix = if i = delta_idx then delta_ix.(i) else main_ix.(i) in
            let candidates =
              match ix with
              | None -> []
              | Some ix -> (
                  match KTbl.find_opt ix key with Some ts -> ts | None -> [])
            in
            if tracing then
              Observe.Trace.add tr "matcher.candidates"
                (List.length candidates);
            let n = Array.length unify in
            let rec unify_from tids j =
              j >= n
              ||
              match Array.unsafe_get unify j with
              | UKey -> unify_from tids (j + 1)
              | UBind s ->
                  Array.unsafe_set env s (Array.unsafe_get tids j);
                  unify_from tids (j + 1)
              | UCheckSlot s ->
                  Array.unsafe_get env s = Array.unsafe_get tids j
                  && unify_from tids (j + 1)
            in
            List.iter
              (fun tup ->
                if Tuple.arity tup = arity then (
                  if unify_from (Tuple.ids tup) 0 && filters_ok (i + 1) then
                    go delta_idx (i + 1);
                  Array.iter (fun s -> env.(s) <- -1) binds))
              candidates
    in
    let start delta_idx = if filters_ok 0 then go delta_idx 0 in
    (match delta with
    | None -> start (-1)
    | Some (pred, _) ->
        (* one pass per positive occurrence of [pred] *)
        Array.iteri
          (fun i step ->
            match step with
            | CAtom { apred; _ } when apred = pred -> start i
            | _ -> ())
          prepared.csteps);
    if tracing then (
      let n = !nresults in
      Observe.Trace.incr tr "matcher.runs";
      Observe.Trace.add tr "matcher.substs" n;
      Observe.Trace.gauge_max tr "matcher.substs_max" n);
    !nresults

let run ?delta ?dom ?neg_db prepared db =
  (* the public API takes the delta as a relation; the join loop wants
     the plain tuple list (order is irrelevant: results are sorted) *)
  let delta =
    Option.map
      (fun (p, rel) ->
        (p, Relation.unordered_fold (fun t l -> t :: l) rel []))
      delta
  in
  let nkeep = Array.length prepared.keep in
  let results = ref [] in
  let (_ : int) =
    exec ?delta ?dom ?neg_db prepared db ~consume:(fun ~tval ~vals ->
        let vals =
          match vals with
          | Some v -> v
          | None ->
              Array.init nkeep (fun k -> tval (CVar (snd prepared.keep.(k))))
        in
        results := vals :: !results)
  in
  (* explicit value-order sort (no polymorphic compare): the kept slots
     are name-sorted and identical across results, so ordering by the
     id vectors decoded through [Value.compare] reproduces the legacy
     [List.sort compare] over association lists byte for byte *)
  let cmp_vals a b =
    let n = Array.length a in
    let rec go i =
      if i = n then 0
      else
        let c =
          Value.Intern.compare_ids (Array.unsafe_get a i) (Array.unsafe_get b i)
        in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  List.map
    (fun vals ->
      List.init nkeep (fun k ->
          (fst prepared.keep.(k), Value.Intern.of_id vals.(k))))
    (List.sort cmp_vals !results)

let iter_firings ?delta ?delta_index ?dom ?neg_db prepared db f =
  (* one scratch id array per head template, reused across matches — the
     callback copies it only when it actually retains the fact *)
  let heads =
    List.map
      (fun (pos, pred, cargs) ->
        (pos, pred, cargs, Array.make (Array.length cargs) 0))
      prepared.cheads
  in
  exec ?delta ?delta_index ?dom ?neg_db prepared db ~consume:(fun ~tval ~vals:_ ->
      List.iter
        (fun (pos, pred, cargs, scratch) ->
          for i = 0 to Array.length cargs - 1 do
            Array.unsafe_set scratch i (tval (Array.unsafe_get cargs i))
          done;
          f ~pos pred scratch)
        heads)

let iter_derivations ?delta ?delta_index ?dom ?neg_db prepared db f =
  (* like [iter_firings], but each match also instantiates the rule's
     positive body atoms, so the callback sees the whole firing — head
     fact plus the body facts its annotation multiplies over. All id
     arrays (head and body sides) are scratch, reused across matches:
     callbacks copy what they retain. *)
  let heads =
    List.map
      (fun (pos, pred, cargs) ->
        (pos, pred, cargs, Array.make (Array.length cargs) 0))
      prepared.cheads
  in
  let bodies =
    Array.map
      (fun (pred, cargs) -> (pred, cargs, Array.make (Array.length cargs) 0))
      prepared.cbodies
  in
  let body_view = Array.map (fun (pred, _, scratch) -> (pred, scratch)) bodies in
  exec ?delta ?delta_index ?dom ?neg_db prepared db ~consume:(fun ~tval ~vals:_ ->
      Array.iter
        (fun (_, cargs, scratch) ->
          for i = 0 to Array.length cargs - 1 do
            Array.unsafe_set scratch i (tval (Array.unsafe_get cargs i))
          done)
        bodies;
      List.iter
        (fun (pos, pred, cargs, scratch) ->
          for i = 0 to Array.length cargs - 1 do
            Array.unsafe_set scratch i (tval (Array.unsafe_get cargs i))
          done;
          f ~pos pred scratch body_view)
        heads)

let satisfies db subst blits =
  List.for_all
    (fun l ->
      match check_filter db subst l with
      | Some b -> b
      | None -> raise (Ast.Check_error "Matcher.satisfies: unbound variable"))
    blits

let instantiate_heads subst heads =
  let bottom = ref false in
  let facts =
    List.filter_map
      (fun h ->
        match h with
        | Ast.HBottom ->
            bottom := true;
            None
        | Ast.HPos a ->
            let p, t = Ast.ground_atom subst a in
            Some (true, p, t)
        | Ast.HNeg a ->
            let p, t = Ast.ground_atom subst a in
            Some (false, p, t))
      heads
  in
  (!bottom, facts)
