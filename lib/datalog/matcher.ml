open Relational

module Db = struct
  (* A mutable database view whose secondary indexes survive updates.
     Indexes are memoized per (predicate, constrained positions): a hash
     table from the value vector at those positions to the matching
     tuples. [insert]/[absorb]/[remove] keep every memoized index in sync
     with the instance, so fixpoint engines create one Db per evaluation
     and feed it deltas instead of re-indexing the full instance at every
     stage. The all-tuples scan is the [positions = []] index, so it too
     is maintained incrementally. *)
  type t = {
    mutable inst : Instance.t;
    indexes :
      (string, (int list, (Value.t list, Tuple.t list) Hashtbl.t) Hashtbl.t)
      Hashtbl.t;
    trace : Observe.Trace.ctx;
  }

  let of_instance ?(trace = Observe.Trace.null) inst =
    { inst; indexes = Hashtbl.create 32; trace }

  let trace db = db.trace
  let instance db = db.inst
  let relation db p = Instance.find p db.inst
  let mem db p tup = Instance.mem_fact p tup db.inst

  let pred_indexes db p =
    match Hashtbl.find_opt db.indexes p with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.add db.indexes p t;
        t

  let key_of positions t = List.map (fun i -> Tuple.get t i) positions

  let index db p positions =
    let per_pred = pred_indexes db p in
    match Hashtbl.find_opt per_pred positions with
    | Some ix ->
        Observe.Trace.incr db.trace "db.index_memo_hits";
        ix
    | None ->
        Observe.Trace.incr db.trace "db.index_builds";
        let ix = Hashtbl.create 64 in
        Relation.iter
          (fun t ->
            let k = key_of positions t in
            Hashtbl.replace ix k
              (t :: (try Hashtbl.find ix k with Not_found -> [])))
          (relation db p);
        Hashtbl.add per_pred positions ix;
        ix

  let lookup_key db p positions key =
    match Hashtbl.find_opt (index db p positions) key with
    | Some ts -> ts
    | None -> []

  let lookup db p bindings =
    let bindings =
      match bindings with
      | [] | [ _ ] -> bindings
      | _ -> List.sort (fun (i, _) (j, _) -> Int.compare i j) bindings
    in
    lookup_key db p (List.map fst bindings) (List.map snd bindings)

  let insert db p t =
    if Instance.mem_fact p t db.inst then (
      Observe.Trace.incr db.trace "db.insert_dups";
      false)
    else (
      Observe.Trace.incr db.trace "db.inserts";
      db.inst <- Instance.add_fact p t db.inst;
      (match Hashtbl.find_opt db.indexes p with
      | None -> ()
      | Some per_pred ->
          Hashtbl.iter
            (fun positions ix ->
              let k = key_of positions t in
              Hashtbl.replace ix k
                (t :: (try Hashtbl.find ix k with Not_found -> [])))
            per_pred);
      true)

  let remove db p t =
    if not (Instance.mem_fact p t db.inst) then false
    else (
      db.inst <- Instance.remove_fact p t db.inst;
      (match Hashtbl.find_opt db.indexes p with
      | None -> ()
      | Some per_pred ->
          Hashtbl.iter
            (fun positions ix ->
              let k = key_of positions t in
              match Hashtbl.find_opt ix k with
              | None -> ()
              | Some bucket ->
                  Hashtbl.replace ix k
                    (List.filter (fun u -> not (Tuple.equal u t)) bucket))
            per_pred);
      true)

  let absorb db delta =
    Instance.fold
      (fun p rel () ->
        match Hashtbl.find_opt db.indexes p with
        | None ->
            (* no memoized index: bulk-union the new tuples *)
            let news =
              Relation.fold
                (fun t acc -> if mem db p t then acc else t :: acc)
                rel []
            in
            if news <> [] then
              db.inst <-
                Instance.set p (Relation.add_all news (relation db p)) db.inst
        | Some _ -> Relation.iter (fun t -> ignore (insert db p t)) rel)
      delta ()
end

(* ------------------------------------------------------------------ *)

(* Compiled plans: variables are mapped to integer slots at [prepare]
   time, so the join loop unifies into one mutable [Value.t option array]
   instead of consing association lists. For every step the set of
   already-bound argument positions is known statically (the step order is
   fixed), so each atom carries a precomputed index key and the remaining
   positions carry their unification ops. *)

type cterm = CCst of Value.t | CVar of int

type catom = { cpred : string; cargs : cterm array }

type unify_op =
  | UKey  (** position is part of the lookup key: already matched *)
  | UBind of int  (** first occurrence of an unbound variable: bind slot *)
  | UCheckSlot of int  (** repeated unbound variable within the atom *)

type cstep =
  | CAtom of {
      apred : string;
      arity : int;
      key_positions : int list;  (** statically-bound positions, ascending *)
      key_terms : cterm list;  (** aligned with [key_positions] *)
      unify : unify_op array;  (** one op per argument position *)
      binds : int array;  (** slots first bound by this step *)
    }
  | CDomain of int  (** enumerate the slot over the active domain *)

type cfilter =
  | FPos of catom
  | FNeg of catom
  | FEq of cterm * cterm
  | FNeq of cterm * cterm

type prepared = {
  rule : Ast.rule;
  nslots : int;
  csteps : cstep array;
  filters_after : cfilter list array;
      (** [filters_after.(i)] become fully bound once steps [0..i-1] ran;
          index 0 holds the ground filters checked before any step *)
  body_filters : cfilter list;
      (** the whole body, for re-evaluation under ∀-valuations *)
  forall_slots : int array;
  undecidable : bool;
      (** some non-∀ filter can never be fully bound (unsafe rule):
          no substitution is ever produced, matching the legacy matcher *)
  need_dom : bool;
  keep : (string * int) array;  (** output projection, name-sorted *)
}

let atom_vars (a : Ast.atom) =
  List.filter_map
    (function Ast.Var x -> Some x | Ast.Cst _ -> None)
    a.Ast.args

let prepare (rule : Ast.rule) =
  let pos_atoms =
    List.filter_map (function Ast.BPos a -> Some a | _ -> None) rule.Ast.body
  in
  let ast_filters =
    List.filter (function Ast.BPos _ -> false | _ -> true) rule.Ast.body
  in
  (* greedy ordering: repeatedly pick the atom sharing the most variables
     with the already-bound set; tie-break on fewer new variables, then on
     original position (stable). *)
  let module SSet = Set.Make (String) in
  let rec order bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let score a =
          let vs = atom_vars a in
          let b = List.length (List.filter (fun v -> SSet.mem v bound) vs) in
          let fresh =
            List.length
              (List.sort_uniq String.compare
                 (List.filter (fun v -> not (SSet.mem v bound)) vs))
          in
          (b, -fresh)
        in
        let best =
          List.fold_left
            (fun best a ->
              match best with
              | None -> Some (a, score a)
              | Some (_, sb) when score a > sb -> Some (a, score a)
              | some -> some)
            None remaining
        in
        let a, _ = Option.get best in
        let remaining = List.filter (fun x -> x != a) remaining in
        let bound =
          List.fold_left (fun s v -> SSet.add v s) bound (atom_vars a)
        in
        order bound remaining (a :: acc)
  in
  let ordered_atoms = order SSet.empty pos_atoms [] in
  let bound_by_atoms = List.concat_map atom_vars ordered_atoms in
  (* body variables not bound by any positive atom range over the domain
     (paper: instantiations valuate into adom(P, K)); ∀-variables are
     handled separately, and head-only variables are never enumerated —
     they are either rejected by the safety checks or freshly invented
     (Datalog¬new). *)
  let needed =
    Ast.body_vars rule
    |> List.filter (fun v ->
           (not (List.mem v bound_by_atoms))
           && not (List.mem v rule.Ast.forall))
  in
  (* slot assignment: every variable of the rule gets a slot *)
  let all_vars =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun x ->
        if Hashtbl.mem seen x then false
        else (
          Hashtbl.add seen x ();
          true))
      (Ast.rule_vars rule @ Ast.body_vars rule @ rule.Ast.forall)
  in
  let nslots = List.length all_vars in
  let slot_tbl = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.replace slot_tbl x i) all_vars;
  let slot x = Hashtbl.find slot_tbl x in
  (* compile steps, tracking static boundness; [first_bound.(s)] is the
     1-based step index after which slot [s] is bound (0 = never) *)
  let bound = Array.make (max nslots 1) false in
  let first_bound = Array.make (max nslots 1) 0 in
  let step_no = ref 0 in
  let compile_atom (a : Ast.atom) =
    incr step_no;
    let args = Array.of_list a.Ast.args in
    let n = Array.length args in
    let keyspec = ref [] in
    let unify = Array.make n UKey in
    let binds = ref [] in
    Array.iteri
      (fun i t ->
        match t with
        | Ast.Cst v -> keyspec := (i, CCst v) :: !keyspec
        | Ast.Var x ->
            let s = slot x in
            if bound.(s) then keyspec := (i, CVar s) :: !keyspec
            else if List.mem s !binds then unify.(i) <- UCheckSlot s
            else (
              binds := s :: !binds;
              unify.(i) <- UBind s))
      args;
    List.iter
      (fun s ->
        bound.(s) <- true;
        first_bound.(s) <- !step_no)
      !binds;
    let spec = List.rev !keyspec in
    CAtom
      {
        apred = a.Ast.pred;
        arity = n;
        key_positions = List.map fst spec;
        key_terms = List.map snd spec;
        unify;
        binds = Array.of_list (List.rev !binds);
      }
  in
  let atom_steps = List.map compile_atom ordered_atoms in
  let domain_steps =
    List.map
      (fun x ->
        incr step_no;
        let s = slot x in
        bound.(s) <- true;
        first_bound.(s) <- !step_no;
        CDomain s)
      needed
  in
  let csteps = Array.of_list (atom_steps @ domain_steps) in
  let nsteps = Array.length csteps in
  (* compile filters and schedule each at the earliest step after which
     all its variables are bound *)
  let cterm_of = function
    | Ast.Cst v -> CCst v
    | Ast.Var x -> CVar (slot x)
  in
  let catom_of (a : Ast.atom) =
    { cpred = a.Ast.pred; cargs = Array.of_list (List.map cterm_of a.Ast.args) }
  in
  let cfilter_of = function
    | Ast.BPos a -> FPos (catom_of a)
    | Ast.BNeg a -> FNeg (catom_of a)
    | Ast.BEq (s, t) -> FEq (cterm_of s, cterm_of t)
    | Ast.BNeq (s, t) -> FNeq (cterm_of s, cterm_of t)
  in
  let blit_var_slots l =
    let terms =
      match l with
      | Ast.BPos a | Ast.BNeg a -> a.Ast.args
      | Ast.BEq (s, t) | Ast.BNeq (s, t) -> [ s; t ]
    in
    List.filter_map
      (function Ast.Var x -> Some (slot x) | Ast.Cst _ -> None)
      terms
  in
  let filters_after = Array.make (nsteps + 1) [] in
  let undecidable = ref false in
  List.iter
    (fun f ->
      let slots = blit_var_slots f in
      if List.for_all (fun s -> first_bound.(s) > 0) slots then
        let at = List.fold_left (fun m s -> max m first_bound.(s)) 0 slots in
        filters_after.(at) <- filters_after.(at) @ [ cfilter_of f ]
      else if
        (* a filter over never-bound variables is decidable only under the
           ∀-valuations; otherwise it can never pass *)
        not
          (List.for_all
             (fun s ->
               first_bound.(s) > 0
               || List.exists (fun y -> slot y = s) rule.Ast.forall)
             slots)
      then undecidable := true)
    ast_filters;
  let keep =
    all_vars
    |> List.filter (fun x ->
           first_bound.(slot x) > 0 && not (List.mem x rule.Ast.forall))
    |> List.sort String.compare
    |> List.map (fun x -> (x, slot x))
    |> Array.of_list
  in
  let forall_slots = Array.of_list (List.map slot rule.Ast.forall) in
  {
    rule;
    nslots;
    csteps;
    filters_after;
    body_filters = List.map cfilter_of rule.Ast.body;
    forall_slots;
    undecidable = !undecidable;
    need_dom =
      Array.length forall_slots > 0
      || Array.exists (function CDomain _ -> true | _ -> false) csteps;
    keep;
  }

(* ------------------------------------------------------------------ *)

(* Association-list helpers retained for [satisfies] (the nondeterministic
   engines re-check applicability of a grounded rule). *)

let term_value subst = function
  | Ast.Cst v -> Some v
  | Ast.Var x -> List.assoc_opt x subst

let check_filter ?neg_db db subst = function
  | Ast.BNeg a ->
      let vs = atom_vars a in
      if List.for_all (fun v -> List.assoc_opt v subst <> None) vs then
        let ndb = Option.value neg_db ~default:db in
        let _, tup = Ast.ground_atom subst a in
        Some (not (Db.mem ndb a.Ast.pred tup))
      else None
  | Ast.BEq (s, t) -> (
      match (term_value subst s, term_value subst t) with
      | Some a, Some b -> Some (Value.equal a b)
      | _ -> None)
  | Ast.BNeq (s, t) -> (
      match (term_value subst s, term_value subst t) with
      | Some a, Some b -> Some (not (Value.equal a b))
      | _ -> None)
  | Ast.BPos a ->
      let vs = atom_vars a in
      if List.for_all (fun v -> List.assoc_opt v subst <> None) vs then
        let _, tup = Ast.ground_atom subst a in
        Some (Db.mem db a.Ast.pred tup)
      else None

let run ?delta ?dom ?neg_db prepared db =
  (if prepared.need_dom && dom = None then
     invalid_arg
       "Matcher.run: rule has domain-bound or \xe2\x88\x80 variables; supply ~dom");
  if prepared.undecidable then []
  else
    let tr = Db.trace db in
    let tracing = Observe.Trace.enabled tr in
    let dom = Option.value dom ~default:[] in
    let ndb = Option.value neg_db ~default:db in
    (* per-(pred, bound-positions) index over the delta relation: delta
       candidates are looked up, not scanned *)
    let ddb =
      match delta with
      | None -> None
      | Some (pred, rel) ->
          Some (Db.of_instance (Instance.set pred rel Instance.empty))
    in
    (* resolve each step's index table once per call: probes then pay a
       single hash on the key values, not repeated (pred, positions)
       table hops *)
    let resolve db' = function
      | CAtom { apred; key_positions; _ } -> Some (Db.index db' apred key_positions)
      | CDomain _ -> None
    in
    let main_ix = Array.map (resolve db) prepared.csteps in
    let delta_ix =
      match ddb with
      | None -> [||]
      | Some d ->
          let dpred = match delta with Some (p, _) -> p | None -> "" in
          Array.map
            (function
              | CAtom { apred; _ } as s when apred = dpred -> resolve d s
              | _ -> None)
            prepared.csteps
    in
    let env : Value.t option array = Array.make (max prepared.nslots 1) None in
    let tval = function
      | CCst v -> v
      | CVar s -> (
          match env.(s) with Some v -> v | None -> assert false)
    in
    let check_cfilter = function
      | FPos ca -> Db.mem db ca.cpred (Tuple.make (Array.map tval ca.cargs))
      | FNeg ca ->
          not (Db.mem ndb ca.cpred (Tuple.make (Array.map tval ca.cargs)))
      | FEq (s, t) -> Value.equal (tval s) (tval t)
      | FNeq (s, t) -> not (Value.equal (tval s) (tval t))
    in
    let filters_ok k = List.for_all check_cfilter prepared.filters_after.(k) in
    (* ∀-rules: re-evaluate the whole body for every valuation of the
       ∀-variables over the domain (paper, §5.2) *)
    let check_forall () =
      let nf = Array.length prepared.forall_slots in
      let rec enum i =
        if i = nf then List.for_all check_cfilter prepared.body_filters
        else
          let s = prepared.forall_slots.(i) in
          List.for_all
            (fun v ->
              env.(s) <- Some v;
              enum (i + 1))
            dom
      in
      enum 0
    in
    let nsteps = Array.length prepared.csteps in
    (* dedup: different derivations (delta passes, ∀-witnesses) can yield
       the same projected substitution — a hash set replaces the legacy
       terminal sort_uniq. Keys are the kept slot values with an
       explicitly combined per-value hash: the polymorphic [Hashtbl.hash]
       samples only a bounded prefix of the structure, so hashing an
       assoc list whole would drop the trailing bindings and collapse
       buckets. *)
    let module Seen = Hashtbl.Make (struct
      type t = Value.t array

      let equal a b =
        Array.length a = Array.length b
        &&
        let rec eq i =
          i >= Array.length a || (Value.equal a.(i) b.(i) && eq (i + 1))
        in
        eq 0

      let hash a =
        Array.fold_left (fun h v -> (h * 31) + Hashtbl.hash v) 17 a
    end) in
    (* Within one pass, distinct derivation paths always differ at some
       bound slot and [keep] covers every bound slot, so emits are already
       unique: the hash set is needed only when several delta passes can
       re-find the same valuation, or when a caller-supplied domain list
       might contain repeats. *)
    let npasses =
      match delta with
      | None -> 0
      | Some (pred, _) ->
          Array.fold_left
            (fun n s ->
              match s with
              | CAtom { apred; _ } when apred = pred -> n + 1
              | _ -> n)
            0 prepared.csteps
    in
    let dedup = npasses > 1 || prepared.need_dom in
    let seen = Seen.create (if dedup then 1024 else 1) in
    let results = ref [] in
    let nkeep = Array.length prepared.keep in
    let emit () =
      let vals =
        Array.init nkeep (fun k ->
            let _, s = prepared.keep.(k) in
            match env.(s) with Some v -> v | None -> assert false)
      in
      if (not dedup) || not (Seen.mem seen vals) then (
        if dedup then Seen.add seen vals ();
        let subst =
          List.init nkeep (fun k -> (fst prepared.keep.(k), vals.(k)))
        in
        results := subst :: !results)
    in
    let rec go delta_idx i =
      if i = nsteps then (
        if Array.length prepared.forall_slots > 0 then (
          if check_forall () then emit ())
        else emit ())
      else
        match prepared.csteps.(i) with
        | CDomain s ->
            List.iter
              (fun v ->
                env.(s) <- Some v;
                if filters_ok (i + 1) then go delta_idx (i + 1))
              dom;
            env.(s) <- None
        | CAtom { arity; key_terms; unify; binds; _ } ->
            let key = List.map tval key_terms in
            let ix =
              if i = delta_idx then delta_ix.(i) else main_ix.(i)
            in
            let candidates =
              match ix with
              | None -> []
              | Some ix -> (
                  match Hashtbl.find_opt ix key with
                  | Some ts -> ts
                  | None -> [])
            in
            if tracing then
              Observe.Trace.add tr "matcher.candidates"
                (List.length candidates);
            let n = Array.length unify in
            let rec unify_from tup j =
              j >= n
              ||
              match unify.(j) with
              | UKey -> unify_from tup (j + 1)
              | UBind s ->
                  env.(s) <- Some (Tuple.get tup j);
                  unify_from tup (j + 1)
              | UCheckSlot s -> (
                  match env.(s) with
                  | Some w ->
                      Value.equal w (Tuple.get tup j) && unify_from tup (j + 1)
                  | None -> assert false)
            in
            List.iter
              (fun tup ->
                if Tuple.arity tup = arity then (
                  if unify_from tup 0 && filters_ok (i + 1) then
                    go delta_idx (i + 1);
                  Array.iter (fun s -> env.(s) <- None) binds))
              candidates
    in
    let start delta_idx = if filters_ok 0 then go delta_idx 0 in
    (match delta with
    | None -> start (-1)
    | Some (pred, _) ->
        (* one pass per positive occurrence of [pred] *)
        Array.iteri
          (fun i step ->
            match step with
            | CAtom { apred; _ } when apred = pred -> start i
            | _ -> ())
          prepared.csteps);
    if tracing then (
      let n = List.length !results in
      Observe.Trace.incr tr "matcher.runs";
      Observe.Trace.add tr "matcher.substs" n;
      Observe.Trace.gauge_max tr "matcher.substs_max" n);
    List.sort compare !results

let satisfies db subst blits =
  List.for_all
    (fun l ->
      match check_filter db subst l with
      | Some b -> b
      | None -> raise (Ast.Check_error "Matcher.satisfies: unbound variable"))
    blits

let instantiate_heads subst heads =
  let bottom = ref false in
  let facts =
    List.filter_map
      (fun h ->
        match h with
        | Ast.HBottom ->
            bottom := true;
            None
        | Ast.HPos a ->
            let p, t = Ast.ground_atom subst a in
            Some (true, p, t)
        | Ast.HNeg a ->
            let p, t = Ast.ground_atom subst a in
            Some (false, p, t))
      heads
  in
  (!bottom, facts)
