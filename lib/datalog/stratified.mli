(** Stratified Datalog¬ evaluation (§3.2).

    Evaluates the strata of a stratifiable program in order, each to its
    (semi-naive) fixpoint; within a stratum, negation refers only to edb
    predicates and fully-computed earlier strata, so each stratum is a
    monotone fixpoint computation. This realizes the "read the program so
    the portion defining R comes before the negation of R is used"
    semantics of the paper. *)

open Relational

exception Not_stratifiable of string

type result = {
  instance : Instance.t;  (** edb ∪ idb at the end of the last stratum *)
  strata : int;  (** number of strata evaluated *)
  stages : int;  (** total Γ applications across strata *)
}

(** [eval p inst] evaluates [p] under stratified semantics. [trace]
    wraps each non-empty stratum in a ["stratum"] span (close fields
    [stages], [facts]) containing its round spans.
    @raise Not_stratifiable if [p] has recursion through negation.
    @raise Ast.Check_error if [p] is not Datalog¬ syntax. *)
val eval : ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> result

val answer :
  ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> string -> Relation.t
