(** Stratified Datalog¬ evaluation (§3.2).

    Evaluates the strata of a stratifiable program in order, each to its
    (semi-naive) fixpoint; within a stratum, negation refers only to edb
    predicates and fully-computed earlier strata, so each stratum is a
    monotone fixpoint computation. This realizes the "read the program so
    the portion defining R comes before the negation of R is used"
    semantics of the paper. *)

open Relational

exception Not_stratifiable of string

type result = {
  instance : Instance.t;  (** edb ∪ idb at the end of the last stratum *)
  strata : int;  (** number of strata evaluated *)
  stages : int;  (** total Γ applications across strata *)
}

(** [eval p inst] evaluates [p] under stratified semantics. [trace]
    wraps each non-empty stratum in a ["stratum"] span (close fields
    [stages], [facts]) containing its round spans.

    When parallel evaluation is on ([Parallel.Pool.jobs () > 1]), a
    stratum whose rules split across several SCCs of the dependency
    graph is layered into waves along the component DAG and the
    independent groups of each wave are evaluated on separate domains
    (counter [par.waves]); cross-SCC edges within a stratum are positive
    and acyclic, so the merged result is the stratum's least fixpoint
    and the final instance is identical to a sequential run. The
    [stages] tally may differ (each group counts its own rounds).
    @raise Not_stratifiable if [p] has recursion through negation.
    @raise Ast.Check_error if [p] is not Datalog¬ syntax. *)
val eval : ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> result

val answer :
  ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> string -> Relation.t
