open Relational

(* Demand-driven compilation: the magic-rewritten program is lowered,
   rule by rule, to Algebra plans through the same safe-range compiler
   ({!Fo.compile}) the fixpoint logic uses. The rewriting puts every
   rule's magic guard first in the body, and [Fo.compile_and] seeds its
   join accumulator with the first conjunct — so the compiled plans
   start from the (small) demand relation and radiate outward through
   semijoins and index probes, never touching the part of the database
   the query cannot reach. Plans depend only on (program, predicate,
   adornment): the query's constants live in the magic seed fact alone,
   so one compilation serves every query with the same binding
   pattern. *)

(* Reserved relation name for the per-round delta of a semi-naive pass;
   '$' cannot appear in a user predicate. *)
let delta_rel = "demand$delta"

(* How one head position is filled from a plan's output tuple. *)
type slot = Slot of int | Fixed of int

type rule_plan = {
  head_pred : string;
  head : slot array;
  full : Fo.plan;  (** body in rewriting order — guard first *)
  deltas : (string * Fo.plan) list;
      (** per idb body occurrence: that atom renamed to [delta_rel] and
          moved first, so the round's delta seeds the join *)
}

type compiled = {
  rules : rule_plan list;
  query_pred : string;
  seed_pred : string;
}

let term_of_arg = function
  | Ast.Var x -> Fo.Var x
  | Ast.Cst v -> Fo.Cst v

let formula_of_atom (a : Ast.atom) =
  Fo.Atom (a.Ast.pred, List.map term_of_arg a.Ast.args)

let distinct_vars args =
  let seen = Hashtbl.create 4 in
  List.filter_map
    (function
      | Ast.Cst _ -> None
      | Ast.Var x ->
          if Hashtbl.mem seen x then None
          else (
            Hashtbl.add seen x ();
            Some x))
    args

let compile_rule ~trace idb (r : Ast.rule) =
  let head =
    match r.Ast.head with
    | [ Ast.HPos h ] -> h
    | _ -> assert false (* pure Datalog: checked by Magic.rewrite *)
  in
  let atoms =
    List.map
      (function Ast.BPos a -> a | _ -> assert false (* pure Datalog *))
      r.Ast.body
  in
  let hvars = distinct_vars head.Ast.args in
  let slot_of x =
    let rec go i = function
      | [] -> assert false (* safety: head vars are body-bound *)
      | y :: rest -> if String.equal x y then i else go (i + 1) rest
    in
    go 0 hvars
  in
  let head_slots =
    Array.of_list
      (List.map
         (function
           | Ast.Var x -> Slot (slot_of x)
           | Ast.Cst v -> Fixed (Value.Intern.id v))
         head.Ast.args)
  in
  let compile_body body =
    Fo.compile ~trace (Fo.conj (List.map formula_of_atom body)) hvars
  in
  let deltas =
    List.concat
      (List.mapi
         (fun i (a : Ast.atom) ->
           if List.mem a.Ast.pred idb then
             let renamed = Ast.atom delta_rel a.Ast.args in
             let rest = List.filteri (fun j _ -> j <> i) atoms in
             [ (a.Ast.pred, compile_body (renamed :: rest)) ]
           else [])
         atoms)
  in
  { head_pred = head.Ast.pred; head = head_slots; full = compile_body atoms; deltas }

let compile_program ~trace p (query : Ast.atom) =
  let rw = Magic.rewrite p query in
  let idb = Ast.idb rw.Magic.program in
  {
    rules = List.map (compile_rule ~trace idb) rw.Magic.program;
    query_pred = rw.Magic.query_pred;
    seed_pred = fst rw.Magic.seed;
  }

(* --- semi-naive fixpoint over compiled plans ----------------------------- *)

let solve ~trace ?profile compiled inst =
  let tracing = Observe.Trace.enabled trace in
  let cur = ref inst in
  (* id-keyed membership sets, built lazily per head predicate at first
     emission (adorned and magic relations start empty, so this is
     usually a no-op seed) *)
  let mems : (string, unit Matcher.IdTbl.t) Hashtbl.t = Hashtbl.create 16 in
  let memset p =
    match Hashtbl.find_opt mems p with
    | Some m -> m
    | None ->
        let m = Matcher.IdTbl.create 64 in
        Relation.unordered_iter
          (fun t -> Matcher.IdTbl.replace m (Tuple.ids t) ())
          (Instance.find p !cur);
        Hashtbl.add mems p m;
        m
  in
  let fresh : (string, Tuple.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let fresh_total = ref 0 in
  let emit rp t =
    let ids =
      Array.map (function Slot i -> Tuple.id t i | Fixed id -> id) rp.head
    in
    let m = memset rp.head_pred in
    if not (Matcher.IdTbl.mem m ids) then (
      Matcher.IdTbl.replace m ids ();
      (match Hashtbl.find_opt fresh rp.head_pred with
      | Some l -> l := Tuple.of_ids ids :: !l
      | None -> Hashtbl.add fresh rp.head_pred (ref [ Tuple.of_ids ids ]));
      incr fresh_total)
  in
  let take_fresh () =
    let per = Hashtbl.fold (fun p l acc -> (p, List.rev !l) :: acc) fresh [] in
    Hashtbl.reset fresh;
    fresh_total := 0;
    List.sort (fun (a, _) (b, _) -> String.compare a b) per
  in
  let rounds = ref 1 in
  let derived = ref 0 in
  (* round 0: every rule in full *)
  List.iter
    (fun rp ->
      Relation.unordered_iter (emit rp)
        (Fo.run_plan ~trace ?profile !cur rp.full))
    compiled.rules;
  let rec loop delta =
    let n = List.fold_left (fun n (_, ts) -> n + List.length ts) 0 delta in
    derived := !derived + n;
    if n > 0 then (
      (* absorb first: non-delta occurrences must see the whole round *)
      List.iter (fun (p, ts) -> cur := Instance.add_all p ts !cur) delta;
      List.iter
        (fun (p, ts) ->
          let dinst = Instance.set delta_rel (Relation.of_distinct ts) !cur in
          List.iter
            (fun rp ->
              List.iter
                (fun (dp, plan) ->
                  if String.equal dp p then
                    Relation.unordered_iter (emit rp)
                      (Fo.run_plan ~trace ?profile dinst plan))
                rp.deltas)
            compiled.rules)
        delta;
      incr rounds;
      loop (take_fresh ()))
  in
  loop (take_fresh ());
  if tracing then (
    Observe.Trace.add trace "demand.rounds" !rounds;
    Observe.Trace.add trace "demand.tuples_derived" !derived);
  !cur

(* --- query shape --------------------------------------------------------- *)

let adorn (query : Ast.atom) =
  String.concat ""
    (List.map
       (function Ast.Cst _ -> "b" | Ast.Var _ -> "f")
       query.Ast.args)

(* (position, interned id) at each constant position of the query — the
   demand pattern's bound values. *)
let bound_ids (query : Ast.atom) =
  Array.of_list
    (List.concat
       (List.mapi
          (fun i -> function
            | Ast.Cst v -> [ (i, Value.Intern.id v) ]
            | Ast.Var _ -> [])
          query.Ast.args))

let matches_bound bound t =
  Array.for_all (fun (i, id) -> Tuple.id t i = id) bound

(* Positions the query constrains beyond the demand pattern: repeated
   variables must be pairwise equal (T(X, X) is the diagonal of T). *)
let repeat_groups (query : Ast.atom) =
  let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iteri
    (fun i -> function
      | Ast.Cst _ -> ()
      | Ast.Var x -> (
          match Hashtbl.find_opt groups x with
          | Some ps -> ps := i :: !ps
          | None -> Hashtbl.add groups x (ref [ i ])))
    query.Ast.args;
  Hashtbl.fold
    (fun _ ps acc ->
      match !ps with _ :: _ :: _ -> Array.of_list !ps :: acc | _ -> acc)
    groups []

let restrict_repeats groups rel =
  if groups = [] then rel
  else
    Relation.filter
      (fun t ->
        List.for_all
          (fun ps ->
            let v = Tuple.id t ps.(0) in
            Array.for_all (fun p -> Tuple.id t p = v) ps)
          groups)
      rel

(* --- subsumptive demand cache -------------------------------------------- *)

module Cache = struct
  type entry = {
    e_ad : string;
    e_bound : (int * int) array;
    e_answers : Relation.t;
    mutable e_used : int;
  }

  type plans_slot = { ps : compiled; mutable ps_used : int }

  type t = {
    plan_cap : int;
    answer_cap : int;
    plans : (Ast.program * string * string, plans_slot) Hashtbl.t;
    answers : (string, entry list ref) Hashtbl.t;
    mutable n_answers : int;
    mutable tick : int;
    mutable stamp : (Ast.program * Instance.t) option;
    lock : Mutex.t;
  }

  let create ?(plan_cap = 256) ?(answer_cap = 512) () =
    if plan_cap < 1 || answer_cap < 1 then
      invalid_arg "Demand.Cache.create: caps must be >= 1";
    {
      plan_cap;
      answer_cap;
      plans = Hashtbl.create 16;
      answers = Hashtbl.create 16;
      n_answers = 0;
      tick = 0;
      stamp = None;
      lock = Mutex.create ();
    }

  let tick c =
    c.tick <- c.tick + 1;
    c.tick

  (* Answers were computed against the stamped (program, instance);
     serve from the cache only while both still apply, flushing
     conservatively otherwise. Plans are instance-independent and keyed
     by program, so they survive the flush. *)
  let validate c p inst =
    (match c.stamp with
    | Some (p0, i0) when i0 == inst && (p0 == p || p0 = p) -> ()
    | _ ->
        Hashtbl.reset c.answers;
        c.n_answers <- 0);
    c.stamp <- Some (p, inst)

  (* A cached pattern subsumes the query iff each of its bound positions
     is bound in the query to the same value — its answer relation then
     contains every tuple the (more specific) query demands. *)
  let find_subsumed c pred ad bound =
    match Hashtbl.find_opt c.answers pred with
    | None -> None
    | Some entries ->
        let k = String.length ad in
        let qb = Array.make (max k 1) min_int in
        Array.iter (fun (i, id) -> qb.(i) <- id) bound;
        List.find_opt
          (fun e ->
            String.length e.e_ad = k
            && Array.for_all (fun (i, id) -> qb.(i) = id) e.e_bound)
          !entries

  let evict_lru ~trace c =
    let victim = ref None in
    Hashtbl.iter
      (fun pred entries ->
        List.iter
          (fun e ->
            match !victim with
            | Some (_, v) when v.e_used <= e.e_used -> ()
            | _ -> victim := Some (pred, e))
          !entries)
      c.answers;
    match !victim with
    | None -> ()
    | Some (pred, v) ->
        let entries = Hashtbl.find c.answers pred in
        entries := List.filter (fun e -> e != v) !entries;
        if !entries = [] then Hashtbl.remove c.answers pred;
        c.n_answers <- c.n_answers - 1;
        Observe.Trace.incr trace "demand.evictions"

  let store ~trace c pred ad bound answers =
    let entries =
      match Hashtbl.find_opt c.answers pred with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.add c.answers pred l;
          l
    in
    let same e = e.e_ad = ad && e.e_bound = bound in
    if List.exists same !entries then
      entries :=
        List.map
          (fun e ->
            if same e then
              { e with e_answers = answers; e_used = tick c }
            else e)
          !entries
    else (
      if c.n_answers >= c.answer_cap then evict_lru ~trace c;
      entries :=
        { e_ad = ad; e_bound = bound; e_answers = answers; e_used = tick c }
        :: !entries;
      c.n_answers <- c.n_answers + 1)

  let evict_plan_lru ~trace c =
    let victim = ref None in
    Hashtbl.iter
      (fun key slot ->
        match !victim with
        | Some (_, v) when v.ps_used <= slot.ps_used -> ()
        | _ -> victim := Some (key, slot))
      c.plans;
    match !victim with
    | None -> ()
    | Some (key, _) ->
        Hashtbl.remove c.plans key;
        Observe.Trace.incr trace "demand.evictions"

  let plans_for ~trace c p pred ad query =
    let key = (p, pred, ad) in
    match Hashtbl.find_opt c.plans key with
    | Some slot ->
        slot.ps_used <- tick c;
        Observe.Trace.incr trace "demand.plan.hits";
        slot.ps
    | None ->
        let compiled = compile_program ~trace p query in
        Observe.Trace.add trace "demand.plan.compiled"
          (List.length compiled.rules);
        if Hashtbl.length c.plans >= c.plan_cap then evict_plan_lru ~trace c;
        Hashtbl.add c.plans key { ps = compiled; ps_used = tick c };
        compiled
end

(* --- plan inspection (EXPLAIN) ------------------------------------------- *)

type plan_info = { pi_head : string; pi_role : string; pi_plan : Fo.plan }

let plans ?(trace = Observe.Trace.null) ?cache p (query : Ast.atom) =
  let c = match cache with Some c -> c | None -> Cache.create () in
  let ad = adorn query in
  Mutex.lock c.Cache.lock;
  let compiled =
    match Cache.plans_for ~trace c p query.Ast.pred ad query with
    | compiled ->
        Mutex.unlock c.Cache.lock;
        compiled
    | exception e ->
        Mutex.unlock c.Cache.lock;
        raise e
  in
  List.concat_map
    (fun rp ->
      { pi_head = rp.head_pred; pi_role = "full"; pi_plan = rp.full }
      :: List.map
           (fun (dp, plan) ->
             { pi_head = rp.head_pred; pi_role = "delta:" ^ dp; pi_plan = plan })
           rp.deltas)
    compiled.rules

let answer ?(trace = Observe.Trace.null) ?cache ?profile p inst
    (query : Ast.atom) =
  let c = match cache with Some c -> c | None -> Cache.create () in
  let ad = adorn query in
  let bound = bound_ids query in
  let groups = repeat_groups query in
  Mutex.lock c.Cache.lock;
  match
    Cache.validate c p inst;
    Cache.find_subsumed c query.Ast.pred ad bound
  with
  | Some entry ->
      entry.Cache.e_used <- Cache.tick c;
      Mutex.unlock c.Cache.lock;
      Observe.Trace.incr trace "demand.cache.hits";
      (* the cached pattern may be strictly more general: re-apply the
         query's constants, then its repeated-variable constraints *)
      restrict_repeats groups
        (if Array.length bound = 0 then entry.Cache.e_answers
         else Relation.filter (matches_bound bound) entry.Cache.e_answers)
  | None ->
      Observe.Trace.incr trace "demand.cache.misses";
      let compiled =
        match Cache.plans_for ~trace c p query.Ast.pred ad query with
        | compiled ->
            Mutex.unlock c.Cache.lock;
            compiled
        | exception e ->
            Mutex.unlock c.Cache.lock;
            raise e
      in
      let seed =
        Tuple.of_list
          (List.filter_map
             (function Ast.Cst v -> Some v | Ast.Var _ -> None)
             query.Ast.args)
      in
      let start = Instance.add_fact compiled.seed_pred seed inst in
      let final = solve ~trace ?profile compiled start in
      (* cache the full demand pattern (constants only); the
         repeated-variable refinement is per-query, not per-pattern *)
      let pattern =
        let rel = Instance.find compiled.query_pred final in
        if Array.length bound = 0 then rel
        else Relation.filter (matches_bound bound) rel
      in
      Mutex.lock c.Cache.lock;
      Cache.store ~trace c query.Ast.pred ad bound pattern;
      Mutex.unlock c.Cache.lock;
      restrict_repeats groups pattern
