open Relational

(* Counting-based incremental maintenance — the Count semiring applied
   to the server's write path. Invariant between batches: for every
   fact [f] of the materialization,

     count(f) = (1 if f is in the base instance)
              + #{ (rule, body valuation) firings deriving f from the
                   current materialization }

   and count(f) > 0 (the fixpoint keeps only supported facts).

   Insertion maintains the invariant by enumerating exactly the NEW
   firings (those with a fresh fact in the body — delta passes over the
   propagation deltas). Retraction decrements base support, cascades
   zero-support deletions in waves, and then runs a well-foundedness
   verification: counts alone under-delete when facts support each
   other in cycles (dense transitive closure is all cycles), so the
   forward support closure of every fact that lost support is checked
   by a confirmation least fixpoint over one-step derivations (the DRed
   guard plans, reused); unconfirmed facts are unfounded and deleted
   through the same cascade. Facts outside the closure provably keep a
   derivation from the surviving base — any fact that lost one would
   have lost a firing and be inside — so the verification never visits
   the untouched part of the database. That locality is the advantage
   over DRed, whose over-deletion cone grows with the view, not with
   the damage. *)

type t = {
  rules : (Ast.rule * Matcher.prepared * string list) list;
      (* rule, plan, distinct positive body predicates *)
  guards : (string * Matcher.prepared) list;
  counts : (string, int Matcher.IdTbl.t) Hashtbl.t;
}

(* pure Datalog plans never consult the domain (cf. Server.Engine) *)
let no_dom : Value.t list = []

let create prepared dprep =
  let rules =
    List.map
      (fun (rule, plan) ->
        let dps =
          List.sort_uniq String.compare
            (List.filter_map
               (function Ast.BPos a -> Some a.Ast.pred | _ -> None)
               rule.Ast.body)
        in
        (rule, plan, dps))
      (Eval_util.rules prepared)
  in
  { rules; guards = Eval_util.dred_guards dprep; counts = Hashtbl.create 8 }

let tbl_of t p =
  match Hashtbl.find_opt t.counts p with
  | Some tb -> tb
  | None ->
      let tb = Matcher.IdTbl.create 64 in
      Hashtbl.add t.counts p tb;
      tb

let get t p ids =
  match Hashtbl.find_opt t.counts p with
  | None -> 0
  | Some tb -> (
      match Matcher.IdTbl.find_opt tb ids with Some c -> c | None -> 0)

let count t p tup = get t p (Tuple.ids tup)

(* [ids] may be matcher scratch, so the stored key is always a copy *)
let bump t p ids d =
  let tb = tbl_of t p in
  match Matcher.IdTbl.find_opt tb ids with
  | Some c -> Matcher.IdTbl.replace tb (Array.copy ids) (c + d)
  | None -> Matcher.IdTbl.add tb (Array.copy ids) d

let dec t p ids =
  let tb = tbl_of t p in
  match Matcher.IdTbl.find_opt tb ids with
  | None -> 0
  | Some c ->
      let c' = c - 1 in
      Matcher.IdTbl.replace tb (Array.copy ids) c';
      c'

let remove_entry t p ids =
  match Hashtbl.find_opt t.counts p with
  | None -> ()
  | Some tb -> Matcher.IdTbl.remove tb ids

let init t ~edb db =
  Hashtbl.reset t.counts;
  Instance.fold
    (fun p rel () ->
      let tb = tbl_of t p in
      Relation.unordered_iter
        (fun tup -> Matcher.IdTbl.replace tb (Tuple.ids tup) 1)
        rel)
    edb ();
  List.iter
    (fun (_rule, plan, _) ->
      ignore
        (Matcher.iter_derivations ~dom:no_dom plan db
           (fun ~pos p ids _bodies -> if pos then bump t p ids 1)
          : int))
    t.rules

(* Enumerate the firings with at least one body occurrence among
   [facts] (a per-pred assoc of tuples assumed present in [db] or
   supplied as the delta): one delta pass per (rule, predicate), with a
   per-rule seen set keyed on the flattened body valuation — in pure
   Datalog the body valuation determines the firing, so the flattened
   body ids are a complete key — dropping the duplicates a firing
   touching several delta predicates would get. *)
let iter_firings_using t db facts f =
  List.iter
    (fun (_rule, plan, dps) ->
      let active = List.filter (fun p -> List.mem_assoc p facts) dps in
      let seen =
        match active with
        | [] | [ _ ] -> None (* single pass cannot duplicate *)
        | _ -> Some (Matcher.IdTbl.create 256)
      in
      List.iter
        (fun pred ->
          match List.assoc_opt pred facts with
          | None | Some [] -> ()
          | Some dts ->
              ignore
                (Matcher.iter_derivations ~delta:(pred, dts) ~dom:no_dom plan
                   db
                   (fun ~pos p ids bodies ->
                     if pos then
                       match seen with
                       | None -> f p ids bodies
                       | Some seen ->
                           let key =
                             Array.concat
                               (Array.to_list (Array.map snd bodies))
                           in
                           if not (Matcher.IdTbl.mem seen key) then (
                             Matcher.IdTbl.add seen key ();
                             f p ids bodies))
                  : int))
        active)
    t.rules

let on_assert t ~edb_added ~news db =
  List.iter (fun (p, tup) -> bump t p (Tuple.ids tup) 1) edb_added;
  match List.filter (fun (_, ts) -> ts <> []) news with
  | [] -> ()
  | news -> iter_firings_using t db news (fun p ids _ -> bump t p ids 1)

type stats = {
  deleted : int;
  touched : int;
  closure : int;
  confirmed : int;
  unfounded : int;
  waves : int;
}

(* per-pred fact accumulator with O(1) membership *)
type acc = (string, Tuple.t list ref * unit Matcher.IdTbl.t) Hashtbl.t

let mk_acc () : acc = Hashtbl.create 8

let acc_add (acc : acc) p tup =
  let lst, seen =
    match Hashtbl.find_opt acc p with
    | Some s -> s
    | None ->
        let s = (ref [], Matcher.IdTbl.create 64) in
        Hashtbl.add acc p s;
        s
  in
  let ids = Tuple.ids tup in
  if not (Matcher.IdTbl.mem seen ids) then (
    Matcher.IdTbl.add seen ids ();
    lst := tup :: !lst)

let acc_mem (acc : acc) p ids =
  match Hashtbl.find_opt acc p with
  | None -> false
  | Some (_, seen) -> Matcher.IdTbl.mem seen ids

let acc_list (acc : acc) =
  Hashtbl.fold (fun p (lst, _) a -> (p, !lst) :: a) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let acc_total (acc : acc) =
  Hashtbl.fold (fun _ (lst, _) n -> n + List.length !lst) acc 0

let retract ?(trace = Observe.Trace.null) t ~edb db deletions =
  let tracing = Observe.Trace.enabled trace in
  let deleted = ref 0 and waves = ref 0 in
  let touched_total = ref 0
  and closure_total = ref 0
  and confirmed_total = ref 0
  and unfounded_total = ref 0 in
  let alive p ids = Matcher.Db.memset_mem (Matcher.Db.memset db p) ids in
  (* cascade: delete [wave], decrementing the heads of every firing the
     wave supported — enumerated BEFORE the wave leaves the database, so
     a firing is accounted exactly once, at the wave containing the
     first of its body facts to go. Heads dropping to zero form the
     next wave; heads surviving are recorded in [touched] for the
     verification. *)
  let rec cascade touched wave =
    if acc_total wave > 0 then (
      incr waves;
      let wl = acc_list wave in
      let next = mk_acc () in
      iter_firings_using t db wl (fun p ids _bodies ->
          if (not (acc_mem wave p ids)) && alive p ids then
            let c = dec t p ids in
            if c <= 0 then acc_add next p (Tuple.of_ids (Array.copy ids))
            else acc_add touched p (Tuple.of_ids (Array.copy ids)));
      List.iter
        (fun (p, ts) ->
          List.iter
            (fun tup ->
              if Matcher.Db.remove db p tup then incr deleted;
              remove_entry t p (Tuple.ids tup))
            ts)
        wl;
      cascade touched next)
  in
  (* verification round: forward support closure of the touched facts,
     then a confirmation least fixpoint over their one-step derivations
     (guard plans). Confirmed ⟺ derivable from the surviving base given
     the facts outside the closure (which provably kept a derivation).
     Returns the unfounded facts. *)
  let verify touched_list =
    let dset = mk_acc () in
    List.iter
      (fun (p, ts) -> List.iter (fun tup -> acc_add dset p tup) ts)
      touched_list;
    let rec close frontier =
      if List.exists (fun (_, ts) -> ts <> []) frontier then (
        let next = mk_acc () in
        iter_firings_using t db frontier (fun p ids _ ->
            if alive p ids && not (acc_mem dset p ids) then (
              let tup = Tuple.of_ids (Array.copy ids) in
              acc_add dset p tup;
              acc_add next p tup));
        close (acc_list next))
    in
    close touched_list;
    let dlist = acc_list dset in
    let nd = acc_total dset in
    closure_total := !closure_total + nd;
    (* D-fact index *)
    let didx : (string, int Matcher.IdTbl.t) Hashtbl.t = Hashtbl.create 8 in
    let dpred = Array.make nd "" in
    let dtup = Array.make nd (Tuple.of_ids [||]) in
    let k = ref 0 in
    List.iter
      (fun (p, ts) ->
        let tb =
          match Hashtbl.find_opt didx p with
          | Some tb -> tb
          | None ->
              let tb = Matcher.IdTbl.create 64 in
              Hashtbl.add didx p tb;
              tb
        in
        List.iter
          (fun tup ->
            dpred.(!k) <- p;
            dtup.(!k) <- tup;
            Matcher.IdTbl.replace tb (Tuple.ids tup) !k;
            incr k)
          ts)
      dlist;
    let d_of p ids =
      match Hashtbl.find_opt didx p with
      | None -> None
      | Some tb -> Matcher.IdTbl.find_opt tb ids
    in
    (* one-step derivations of every closure fact, from the current db:
       guard plan P(t̄) :- dred$P(t̄), body with the closure facts as the
       synthetic delta. Only the closure bodies matter — bodies outside
       are trusted. *)
    let cands = ref [] in
    List.iter
      (fun (hp, gplan) ->
        match List.assoc_opt hp dlist with
        | None | Some [] -> ()
        | Some dts ->
            let gpred = Eval_util.dred_guard_pred hp in
            ignore
              (Matcher.iter_derivations ~delta:(gpred, dts) ~dom:no_dom gplan
                 db
                 (fun ~pos p ids bodies ->
                   if pos then
                     match d_of p ids with
                     | None -> ()
                     | Some h ->
                         let dbodies = ref [] in
                         Array.iter
                           (fun (bp, bids) ->
                             if not (String.equal bp gpred) then
                               match d_of bp bids with
                               | Some b -> dbodies := b :: !dbodies
                               | None -> ())
                           bodies;
                         cands := (h, !dbodies) :: !cands)
                : int))
      t.guards;
    let cands = Array.of_list !cands in
    let nf = Array.length cands in
    let pending = Array.make nf 0 in
    let occurs = Array.make nd [] in
    let confirmed = Array.make nd false in
    let queue = Queue.create () in
    let confirm i =
      if not confirmed.(i) then (
        confirmed.(i) <- true;
        Queue.add i queue)
    in
    Array.iteri
      (fun f (h, dbodies) ->
        pending.(f) <- List.length dbodies;
        List.iter (fun b -> occurs.(b) <- f :: occurs.(b)) dbodies;
        if dbodies = [] then confirm h)
      cands;
    for i = 0 to nd - 1 do
      if Instance.mem_fact dpred.(i) dtup.(i) edb then confirm i
    done;
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      List.iter
        (fun f ->
          pending.(f) <- pending.(f) - 1;
          if pending.(f) = 0 then confirm (fst cands.(f)))
        occurs.(i)
    done;
    let unfounded = mk_acc () in
    for i = 0 to nd - 1 do
      if confirmed.(i) then incr confirmed_total
      else acc_add unfounded dpred.(i) dtup.(i)
    done;
    unfounded
  in
  (* retraction entry: withdraw base support, then alternate cascade
     and verification until the confirmation fixpoint grounds every
     surviving touched fact (each extra round deletes at least one
     fact, so this terminates; in practice the second verification of a
     round-trip confirms everything) *)
  let wave0 = mk_acc () in
  let touched0 = mk_acc () in
  List.iter
    (fun (p, ts) ->
      List.iter
        (fun tup ->
          if alive p (Tuple.ids tup) then
            let c = dec t p (Tuple.ids tup) in
            if c <= 0 then acc_add wave0 p tup else acc_add touched0 p tup)
        ts)
    deletions;
  let rec rounds touched wave =
    cascade touched wave;
    (* facts that lost support and survived the cascade *)
    let touched_list =
      acc_list touched
      |> List.map (fun (p, ts) ->
             (p, List.filter (fun tup -> alive p (Tuple.ids tup)) ts))
      |> List.filter (fun (_, ts) -> ts <> [])
    in
    let n = List.fold_left (fun n (_, ts) -> n + List.length ts) 0 touched_list in
    touched_total := !touched_total + n;
    if touched_list <> [] then (
      let unfounded = verify touched_list in
      if acc_total unfounded > 0 then (
        unfounded_total := !unfounded_total + acc_total unfounded;
        rounds (mk_acc ()) unfounded))
  in
  rounds touched0 wave0;
  if tracing then (
    Observe.Trace.incr trace "counting.batches";
    Observe.Trace.add trace "counting.deleted" !deleted;
    Observe.Trace.add trace "counting.touched" !touched_total;
    Observe.Trace.add trace "counting.closure" !closure_total;
    Observe.Trace.add trace "counting.unfounded" !unfounded_total;
    Observe.Trace.gauge_max trace "counting.waves" !waves);
  {
    deleted = !deleted;
    touched = !touched_total;
    closure = !closure_total;
    confirmed = !confirmed_total;
    unfounded = !unfounded_total;
    waves = !waves;
  }

let audit t ~edb db =
  let oracle = { t with counts = Hashtbl.create 8 } in
  init oracle ~edb db;
  let mism = ref [] in
  Instance.fold
    (fun p rel () ->
      Relation.unordered_iter
        (fun tup ->
          let s = count t p tup and a = count oracle p tup in
          if s <> a then mism := (p, tup, s, a) :: !mism)
        rel)
    (Matcher.Db.instance db) ();
  Hashtbl.iter
    (fun p tb ->
      Matcher.IdTbl.iter
        (fun ids c ->
          if c <> 0 && not (Matcher.Db.memset_mem (Matcher.Db.memset db p) ids)
          then mism := (p, Tuple.of_ids (Array.copy ids), c, 0) :: !mism)
        tb)
    t.counts;
  !mism
