open Relational

exception Unsupported of string

(* The shipped semirings are all positive (a ⊕ b = 0 ⟹ a = b = 0, no
   zero divisors), so the support of the annotated fixpoint IS the
   Boolean fixpoint: phase one runs the untouched set engines, phase
   two iterates annotations over the fixed universe. Nothing outside
   positive Datalog annotates — negation needs additive inverses no
   semiring here has. *)
let check_positive tag p =
  try Ast.check_datalog p
  with Ast.Check_error msg ->
    raise
      (Unsupported
         (Printf.sprintf
            "--annot %s needs the positive Datalog fragment: %s"
            (Semiring.name_of tag) msg))

type stats = {
  universe : int;
  derivations : int;
  rounds : int;
  forced : int;
  infinite : int;
  stages : int;
}

type t = {
  sr : Semiring.t;
  instance : Instance.t;
  stats : stats;
  maps : (string, Annotated.map) Hashtbl.t;
}

(* The materialized derivation graph: the universe as a fact array
   (index ↔ (pred, tuple)) and every (rule, body valuation) firing as
   (head index, body index array). One [iter_derivations] sweep per
   rule against the closed database enumerates each firing exactly
   once — no delta, no dedup set, scratch arrays resolved to indexes
   on the spot. *)
type graph = {
  nfacts : int;
  fact_pred : string array;
  fact_tup : Tuple.t array;
  firings : (int * int array) array;
}

let build_graph prepared ~dom instance =
  let nfacts = Instance.total_facts instance in
  let fact_pred = Array.make nfacts "" in
  let fact_tup = Array.make nfacts (Tuple.of_ids [||]) in
  let index : (string, int Matcher.IdTbl.t) Hashtbl.t = Hashtbl.create 8 in
  let next = ref 0 in
  Instance.fold
    (fun p rel () ->
      let tb = Matcher.IdTbl.create (max 16 (2 * Relation.cardinal rel)) in
      Hashtbl.replace index p tb;
      Relation.unordered_iter
        (fun t ->
          let i = !next in
          incr next;
          fact_pred.(i) <- p;
          fact_tup.(i) <- t;
          Matcher.IdTbl.replace tb (Tuple.ids t) i)
        rel)
    instance ();
  let idx_of p ids =
    match Hashtbl.find_opt index p with
    | None -> None
    | Some tb -> Matcher.IdTbl.find_opt tb ids
  in
  let db = Matcher.Db.of_instance instance in
  let firings = ref [] in
  List.iter
    (fun (_rule, plan) ->
      ignore
        (Matcher.iter_derivations ~dom plan db
           (fun ~pos pred head_ids bodies ->
             (* the database is closed under the rules, so every head
                (and a fortiori every body fact) resolves *)
             if pos then
               match idx_of pred head_ids with
               | None -> ()
               | Some h ->
                   let body =
                     Array.map
                       (fun (bp, bids) ->
                         match idx_of bp bids with
                         | Some b -> b
                         | None -> raise Not_found)
                       bodies
                   in
                   firings := (h, body) :: !firings)
          : int))
    (Eval_util.rules prepared);
  { nfacts; fact_pred; fact_tup; firings = Array.of_list !firings }

(* Exact counting, no iteration: Kahn's scheme over the derivation
   graph. A firing completes when all its body facts are determined; a
   fact is determined when every firing deriving it has completed (its
   count is then the EDB contribution plus the sum of the completed
   firings' products — each a finite number of derivation trees). The
   facts never determined are exactly those on or downstream of a
   support cycle: such a fact admits derivation-tree pumping, so its
   count is ω by definition, not an iteration artifact. *)
let eval_count sr g base =
  let nf = Array.length g.firings in
  let value = Array.copy base in
  let pending_heads = Array.make g.nfacts 0 in
  let pending_bodies = Array.make nf 0 in
  let occurs = Array.make g.nfacts [] in
  Array.iteri
    (fun f (h, body) ->
      pending_heads.(h) <- pending_heads.(h) + 1;
      pending_bodies.(f) <- Array.length body;
      Array.iter (fun b -> occurs.(b) <- f :: occurs.(b)) body)
    g.firings;
  let queue = Queue.create () in
  let complete f =
    let h, body = g.firings.(f) in
    let prod =
      Array.fold_left
        (fun acc b -> sr.Semiring.times acc value.(b))
        sr.Semiring.one body
    in
    value.(h) <- sr.Semiring.plus value.(h) prod;
    pending_heads.(h) <- pending_heads.(h) - 1;
    if pending_heads.(h) = 0 then Queue.add h queue
  in
  (* body-less firings (program facts) complete immediately *)
  Array.iteri
    (fun f (_, body) -> if Array.length body = 0 then complete f)
    g.firings;
  Array.iteri (fun i p -> if p = 0 then Queue.add i queue) pending_heads;
  let determined = Array.make g.nfacts false in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    if not determined.(i) then (
      determined.(i) <- true;
      List.iter
        (fun f ->
          pending_bodies.(f) <- pending_bodies.(f) - 1;
          if pending_bodies.(f) = 0 then complete f)
        occurs.(i))
  done;
  let infinite = ref 0 in
  Array.iteri
    (fun i d ->
      if not d then (
        value.(i) <- Semiring.top Semiring.Count;
        incr infinite))
    determined;
  (value, !infinite)

(* Kleene iteration for the idempotent instances: Jacobi rounds
   v'(h) = base(h) ⊕ ⊕_firings ⊗ v(body) until a round changes
   nothing. Without divergence this stabilizes within [nfacts] rounds
   (MinPlus is Bellman–Ford; Why's truncated polynomials form a finite
   domain). The stabilization check: run up to [3·nfacts + 4] rounds
   and force any fact that still changed after round [nfacts] to
   {!Semiring.top} — for MinPlus those are exactly the facts fed by a
   negative-weight cycle (−∞); for Why a truncation chain still in
   motion collapses to the "bounds exceeded" polynomial. *)
let eval_kleene sr g base =
  let value = Array.copy base in
  let last_changed = Array.make g.nfacts 0 in
  let max_rounds = (3 * g.nfacts) + 4 in
  let round = ref 0 in
  let dirty = ref true in
  while !dirty && !round < max_rounds do
    incr round;
    dirty := false;
    let nv = Array.copy base in
    Array.iter
      (fun (h, body) ->
        let prod =
          Array.fold_left
            (fun acc b -> sr.Semiring.times acc value.(b))
            sr.Semiring.one body
        in
        nv.(h) <- sr.Semiring.plus nv.(h) prod)
      g.firings;
    for i = 0 to g.nfacts - 1 do
      if not (Semiring.equal_v nv.(i) value.(i)) then (
        dirty := true;
        last_changed.(i) <- !round;
        value.(i) <- nv.(i))
    done
  done;
  let forced = ref 0 in
  if !dirty then
    Array.iteri
      (fun i r ->
        if r > g.nfacts then (
          value.(i) <- Semiring.top sr.Semiring.tag;
          incr forced))
      last_changed;
  (value, !round, !forced)

let run ?(trace = Observe.Trace.null) tag program edb =
  check_positive tag program;
  let sr = Semiring.get tag in
  let dom = Eval_util.program_dom program edb in
  let prepared = Eval_util.prepare program in
  (* phase one: the Boolean support, on the ordinary (possibly
     parallel) engines *)
  let instance, stages =
    Eval_util.seminaive_fixpoint ~trace prepared
      ~delta_preds:(Ast.idb program) ~dom edb
  in
  let tracing = Observe.Trace.enabled trace in
  (* phase two is sequential: annotations do not cross the sharded
     exchange, the explicit non-Boolean fallback *)
  if tag <> Semiring.Bool && Parallel.Pool.jobs () > 1 then
    Observe.Trace.incr trace "annot.par.fallbacks";
  let g, (value, rounds, forced, infinite) =
    if tag = Semiring.Bool then
      (* the set semantics IS the Boolean instance: no graph, no rounds *)
      let g =
        {
          nfacts = Instance.total_facts instance;
          fact_pred = [||];
          fact_tup = [||];
          firings = [||];
        }
      in
      (g, ([||], 0, 0, 0))
    else
      let g = build_graph prepared ~dom instance in
      let base =
        Array.init g.nfacts (fun i ->
            let p = g.fact_pred.(i) in
            let t = g.fact_tup.(i) in
            if Instance.mem_fact p t edb then Semiring.of_edb tag ~pred:p t
            else sr.Semiring.zero)
      in
      match tag with
      | Semiring.Count ->
          let value, infinite = eval_count sr g base in
          (g, (value, 0, 0, infinite))
      | _ ->
          let value, rounds, forced = eval_kleene sr g base in
          (g, (value, rounds, forced, 0))
  in
  let maps : (string, Annotated.map) Hashtbl.t = Hashtbl.create 8 in
  (* Bool builds no side-cars at all — the support IS the annotation,
     so [annotation]/[annotated_rel] read membership directly and the
     --annot bool path stays byte-for-byte the plain engine run *)
  if tag <> Semiring.Bool then
    for i = 0 to g.nfacts - 1 do
      let p = g.fact_pred.(i) in
      let m =
        match Hashtbl.find_opt maps p with
        | Some m -> m
        | None ->
            let m = Annotated.create_map () in
            Hashtbl.add maps p m;
            m
      in
      Annotated.set m (Tuple.ids g.fact_tup.(i)) value.(i)
    done;
  let stats =
    {
      universe = Instance.total_facts instance;
      derivations = Array.length g.firings;
      rounds;
      forced;
      infinite;
      stages;
    }
  in
  if tracing then (
    Observe.Trace.add trace "annot.universe" stats.universe;
    Observe.Trace.add trace "annot.derivations" stats.derivations;
    Observe.Trace.add trace "annot.rounds" stats.rounds;
    Observe.Trace.add trace "annot.forced" stats.forced;
    Observe.Trace.add trace "annot.infinite" stats.infinite);
  { sr; instance; stats; maps }

let annotation r p tup =
  match Hashtbl.find_opt r.maps p with
  | Some m -> Annotated.find r.sr m (Tuple.ids tup)
  | None ->
      (* no side-car: Bool (membership is the annotation), or a
         predicate with no support facts under any other semiring *)
      if Instance.mem_fact p tup r.instance then r.sr.Semiring.one
      else r.sr.Semiring.zero

let annotated_rel r p =
  let rel = Instance.find p r.instance in
  match Hashtbl.find_opt r.maps p with
  (* mapless: every fact present in [rel] is annotated [one] — exact for
     Bool, and vacuous otherwise ([rel] is empty when no map was built) *)
  | None -> Annotated.of_relation r.sr rel (fun _ -> r.sr.Semiring.one)
  | Some ann -> { Annotated.rel; ann }
