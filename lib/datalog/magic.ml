open Relational

type rewritten = {
  program : Ast.program;
  seed : string * Tuple.t;
  query_pred : string;
}

let adorned_name pred adornment = Printf.sprintf "%s__%s" pred adornment
let magic_name pred adornment = Printf.sprintf "m__%s__%s" pred adornment

(* Adornment of an atom given the set of bound variables: 'b' for constant
   or bound-variable positions, 'f' otherwise. *)
let adorn bound (a : Ast.atom) =
  String.concat ""
    (List.map
       (function
         | Ast.Cst _ -> "b"
         | Ast.Var x -> if List.mem x bound then "b" else "f")
       a.Ast.args)

let bound_args adornment (a : Ast.atom) =
  List.filteri (fun i _ -> adornment.[i] = 'b') a.Ast.args

let atom_vars (a : Ast.atom) =
  List.filter_map
    (function Ast.Var x -> Some x | Ast.Cst _ -> None)
    a.Ast.args

let rewrite p (query : Ast.atom) =
  Ast.check_datalog p;
  let idb = Ast.idb p in
  if not (List.mem query.Ast.pred idb) then
    raise
      (Ast.Check_error
         (Printf.sprintf "Magic.rewrite: %s is not an idb predicate"
            query.Ast.pred));
  let query_adornment = adorn [] query in
  let out_rules = ref [] in
  let done_adornments = Hashtbl.create 16 in
  let queue = Queue.create () in
  Queue.add (query.Ast.pred, query_adornment) queue;
  Hashtbl.add done_adornments (query.Ast.pred, query_adornment) ();
  let request pred adornment =
    if not (Hashtbl.mem done_adornments (pred, adornment)) then (
      Hashtbl.add done_adornments (pred, adornment) ();
      Queue.add (pred, adornment) queue)
  in
  while not (Queue.is_empty queue) do
    let pred, adornment = Queue.pop queue in
    let magic_atom_of (a : Ast.atom) ad =
      Ast.atom (magic_name a.Ast.pred ad) (bound_args ad a)
    in
    List.iter
      (fun (r : Ast.rule) ->
        match r.Ast.head with
        | [ Ast.HPos head ] when head.Ast.pred = pred ->
            (* variables bound on entry: those at 'b' head positions *)
            let bound0 =
              List.concat
                (List.filteri
                   (fun i _ -> adornment.[i] = 'b')
                   (List.map
                      (function Ast.Var x -> [ x ] | Ast.Cst _ -> [])
                      head.Ast.args))
            in
            let head_magic = magic_atom_of head adornment in
            (* left-to-right SIPS over the body *)
            let _, rev_body =
              List.fold_left
                (fun (bound, acc) lit ->
                  match lit with
                  | Ast.BPos a when List.mem a.Ast.pred idb ->
                      let beta = adorn bound a in
                      request a.Ast.pred beta;
                      (* magic rule for this subgoal *)
                      out_rules :=
                        Ast.rule (magic_atom_of a beta)
                          (Ast.BPos head_magic :: List.rev acc)
                        :: !out_rules;
                      let a' =
                        Ast.atom (adorned_name a.Ast.pred beta) a.Ast.args
                      in
                      (bound @ atom_vars a, Ast.BPos a' :: acc)
                  | Ast.BPos a -> (bound @ atom_vars a, Ast.BPos a :: acc)
                  | other -> (bound, other :: acc))
                (bound0, []) r.Ast.body
            in
            (* guarded, adorned rule *)
            out_rules :=
              Ast.rule
                (Ast.atom (adorned_name pred adornment) head.Ast.args)
                (Ast.BPos head_magic :: List.rev rev_body)
              :: !out_rules
        | _ -> ())
      p
  done;
  let seed_pred = magic_name query.Ast.pred query_adornment in
  let seed_args =
    List.map
      (function
        | Ast.Cst v -> v
        | Ast.Var _ -> assert false (* bound positions are constants *))
      (bound_args query_adornment query)
  in
  {
    program = List.rev !out_rules;
    seed = (seed_pred, Tuple.of_list seed_args);
    query_pred = adorned_name query.Ast.pred query_adornment;
  }

(* Keep only the tuples of the (full-arity) answer relation that match
   the query atom: equal constants at constant positions, and equal
   values wherever the query repeats a variable — T(X, X) selects the
   diagonal, not all of T. *)
let restrict_to_query (query : Ast.atom) rel =
  let args = Array.of_list query.Ast.args in
  let consts = ref [] and groups : (string, int list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  Array.iteri
    (fun i arg ->
      match arg with
      | Ast.Cst c -> consts := (i, c) :: !consts
      | Ast.Var x -> (
          match Hashtbl.find_opt groups x with
          | Some ps -> ps := i :: !ps
          | None -> Hashtbl.add groups x (ref [ i ])))
    args;
  let consts = !consts in
  let repeats =
    Hashtbl.fold
      (fun _ ps acc -> match !ps with _ :: _ :: _ -> !ps :: acc | _ -> acc)
      groups []
  in
  if consts = [] && repeats = [] then rel
  else
    Relation.filter
      (fun t ->
        List.for_all (fun (i, c) -> Value.equal c (Tuple.get t i)) consts
        && List.for_all
             (function
               | p0 :: ps ->
                   let v = Tuple.get t p0 in
                   List.for_all (fun p -> Value.equal v (Tuple.get t p)) ps
               | [] -> true)
             repeats)
      rel

(* --- query sessions ------------------------------------------------------ *)

(* A session holds the evaluation state across queries: one persistent
   [Matcher.Db] accumulating magic and adorned facts, plus memoized
   rewrites keyed by (predicate, adornment) — the rewritten program
   depends only on the binding pattern, never on the query's constants
   (those live in the seed fact alone). Reuse across queries is sound:
   adorned facts are genuine facts of their predicate (guards only
   restrict which instantiations fire), so earlier queries leave behind
   a valid partial fixpoint that later fixpoints extend incrementally —
   a repeat or overlapping query re-derives nothing it already holds. *)
type session = {
  sprogram : Ast.program;
  db : Matcher.Db.t;
  strace : Observe.Trace.ctx;
  dom : Value.t list;
  rewrites : (string * string, rewritten * Eval_util.prepared) Hashtbl.t;
}

let session ?(trace = Observe.Trace.null) p inst =
  Ast.check_datalog p;
  {
    sprogram = p;
    db = Matcher.Db.of_instance ~trace inst;
    strace = trace;
    dom = Eval_util.program_dom p inst;
    rewrites = Hashtbl.create 8;
  }

let ask s (query : Ast.atom) =
  let tracing = Observe.Trace.enabled s.strace in
  if tracing then Observe.Trace.incr s.strace "magic.queries";
  let ad = adorn [] query in
  let key = (query.Ast.pred, ad) in
  let rw, prepared =
    match Hashtbl.find_opt s.rewrites key with
    | Some cached ->
        if tracing then Observe.Trace.incr s.strace "magic.rewrite_memo_hits";
        cached
    | None ->
        let rw = rewrite s.sprogram query in
        if tracing then (
          Observe.Trace.add s.strace "magic.rewritten_rules"
            (List.length rw.program);
          Observe.Trace.event s.strace "magic.rewrite"
            ~fields:
              [
                Observe.Trace.fstr "query_pred" rw.query_pred;
                Observe.Trace.fint "rules" (List.length rw.program);
              ]);
        let cached = (rw, Eval_util.prepare rw.program) in
        Hashtbl.add s.rewrites key cached;
        cached
  in
  (* the seed carries this query's constants; the memoized program is
     constant-free *)
  let seed_tup =
    Tuple.of_list
      (List.map
         (function Ast.Cst v -> v | Ast.Var _ -> assert false)
         (bound_args ad query))
  in
  ignore (Matcher.Db.insert s.db (fst rw.seed) seed_tup);
  let res, _stages =
    Eval_util.seminaive_fixpoint_db ~trace:s.strace prepared
      ~delta_preds:(Ast.idb rw.program) ~dom:s.dom s.db
  in
  let answers = restrict_to_query query (Instance.find rw.query_pred res) in
  if tracing then
    Observe.Trace.add s.strace "magic.answer_tuples" (Relation.cardinal answers);
  answers

let answer ?(trace = Observe.Trace.null) p inst (query : Ast.atom) =
  ask (session ~trace p inst) query
