open Relational

type rewritten = {
  program : Ast.program;
  seed : string * Tuple.t;
  query_pred : string;
}

let adorned_name pred adornment = Printf.sprintf "%s__%s" pred adornment
let magic_name pred adornment = Printf.sprintf "m__%s__%s" pred adornment

(* Adornment of an atom given the set of bound variables: 'b' for constant
   or bound-variable positions, 'f' otherwise. *)
let adorn bound (a : Ast.atom) =
  String.concat ""
    (List.map
       (function
         | Ast.Cst _ -> "b"
         | Ast.Var x -> if List.mem x bound then "b" else "f")
       a.Ast.args)

let bound_args adornment (a : Ast.atom) =
  List.filteri (fun i _ -> adornment.[i] = 'b') a.Ast.args

let atom_vars (a : Ast.atom) =
  List.filter_map
    (function Ast.Var x -> Some x | Ast.Cst _ -> None)
    a.Ast.args

let rewrite p (query : Ast.atom) =
  Ast.check_datalog p;
  let idb = Ast.idb p in
  if not (List.mem query.Ast.pred idb) then
    raise
      (Ast.Check_error
         (Printf.sprintf "Magic.rewrite: %s is not an idb predicate"
            query.Ast.pred));
  let query_adornment = adorn [] query in
  let out_rules = ref [] in
  let done_adornments = Hashtbl.create 16 in
  let queue = Queue.create () in
  Queue.add (query.Ast.pred, query_adornment) queue;
  Hashtbl.add done_adornments (query.Ast.pred, query_adornment) ();
  let request pred adornment =
    if not (Hashtbl.mem done_adornments (pred, adornment)) then (
      Hashtbl.add done_adornments (pred, adornment) ();
      Queue.add (pred, adornment) queue)
  in
  while not (Queue.is_empty queue) do
    let pred, adornment = Queue.pop queue in
    let magic_atom_of (a : Ast.atom) ad =
      Ast.atom (magic_name a.Ast.pred ad) (bound_args ad a)
    in
    List.iter
      (fun (r : Ast.rule) ->
        match r.Ast.head with
        | [ Ast.HPos head ] when head.Ast.pred = pred ->
            (* variables bound on entry: those at 'b' head positions *)
            let bound0 =
              List.concat
                (List.filteri
                   (fun i _ -> adornment.[i] = 'b')
                   (List.map
                      (function Ast.Var x -> [ x ] | Ast.Cst _ -> [])
                      head.Ast.args))
            in
            let head_magic = magic_atom_of head adornment in
            (* left-to-right SIPS over the body *)
            let _, rev_body =
              List.fold_left
                (fun (bound, acc) lit ->
                  match lit with
                  | Ast.BPos a when List.mem a.Ast.pred idb ->
                      let beta = adorn bound a in
                      request a.Ast.pred beta;
                      (* magic rule for this subgoal *)
                      out_rules :=
                        Ast.rule (magic_atom_of a beta)
                          (Ast.BPos head_magic :: List.rev acc)
                        :: !out_rules;
                      let a' =
                        Ast.atom (adorned_name a.Ast.pred beta) a.Ast.args
                      in
                      (bound @ atom_vars a, Ast.BPos a' :: acc)
                  | Ast.BPos a -> (bound @ atom_vars a, Ast.BPos a :: acc)
                  | other -> (bound, other :: acc))
                (bound0, []) r.Ast.body
            in
            (* guarded, adorned rule *)
            out_rules :=
              Ast.rule
                (Ast.atom (adorned_name pred adornment) head.Ast.args)
                (Ast.BPos head_magic :: List.rev rev_body)
              :: !out_rules
        | _ -> ())
      p
  done;
  let seed_pred = magic_name query.Ast.pred query_adornment in
  let seed_args =
    List.map
      (function
        | Ast.Cst v -> v
        | Ast.Var _ -> assert false (* bound positions are constants *))
      (bound_args query_adornment query)
  in
  {
    program = List.rev !out_rules;
    seed = (seed_pred, Tuple.of_list seed_args);
    query_pred = adorned_name query.Ast.pred query_adornment;
  }

let answer ?(trace = Observe.Trace.null) p inst (query : Ast.atom) =
  let { program; seed = seed_pred, seed_tup; query_pred } = rewrite p query in
  if Observe.Trace.enabled trace then (
    Observe.Trace.add trace "magic.rewritten_rules" (List.length program);
    Observe.Trace.event trace "magic.rewrite"
      ~fields:
        [
          Observe.Trace.fstr "query_pred" query_pred;
          Observe.Trace.fint "rules" (List.length program);
        ]);
  let inst = Instance.add_fact seed_pred seed_tup inst in
  let res = Seminaive.eval ~trace program inst in
  let rel = Instance.find query_pred res.Seminaive.instance in
  (* keep only tuples matching the query's constants *)
  Relation.filter
    (fun t ->
      List.for_all2
        (fun arg v ->
          match arg with
          | Ast.Cst c -> Value.equal c v
          | Ast.Var _ -> true)
        query.Ast.args (Tuple.to_list t))
    rel
