(** Semiring-annotated evaluation of positive Datalog programs
    ("Revisiting Semiring Provenance for Datalog", arXiv 2202.10766).

    The annotated fixpoint is computed in two phases. Phase one runs the
    untouched Boolean engines: for the positive semirings shipped here a
    fact's annotation is non-zero exactly when the fact is in the set
    fixpoint, so the support is the ordinary semi-naive result (parallel
    and all). Phase two materializes the derivation graph once — every
    (rule, body valuation) firing over the fixed universe, via
    {!Matcher.iter_derivations} — and iterates annotations over it:

    - [Bool]: every support fact is [true]; no iteration.
    - [Count]: exact, non-iterative. Facts whose every deriving firing
      completes are evaluated in one topological (Kahn) pass; the rest —
      facts on or downstream of a support cycle, which have infinitely
      many derivation trees — are ω.
    - [MinPlus], [Why]: Kleene iteration with a stabilization bound;
      facts still changing past the bound (a negative-weight cycle, a
      pathological truncation chain) are forced to {!Semiring.top} —
      the absorption check that makes the non-Boolean fixpoints
      terminate.

    The annotation phase is sequential by design: when the session runs
    with jobs > 1, phase one still parallelizes but phase two counts
    [annot.par.fallbacks] — the explicit fallback at the sharded
    exchange boundary. *)

open Relational

exception Unsupported of string
(** Raised when the program leaves the positive fragment (negation,
    retraction heads, ⊥, ∀) — those have no K-relation semantics for
    the semirings shipped here. *)

type stats = {
  universe : int;  (** facts in the support (the Boolean fixpoint) *)
  derivations : int;  (** firings in the materialized derivation graph *)
  rounds : int;  (** annotation iteration rounds (0 = non-iterative) *)
  forced : int;  (** facts forced to {!Semiring.top} by stabilization *)
  infinite : int;  (** Count: facts with infinitely many derivations *)
  stages : int;  (** Boolean fixpoint stages (phase one) *)
}

type t = {
  sr : Semiring.t;
  instance : Instance.t;  (** the support — the ordinary fixpoint *)
  stats : stats;
  maps : (string, Annotated.map) Hashtbl.t;
      (** per-predicate annotation side-cars over the support; empty
          under [Bool], where membership in the support is the
          annotation and no side-car is materialized *)
}

(** [run tag program edb] evaluates [program] on [edb] under the [tag]
    semiring. Counters (when tracing): [annot.universe],
    [annot.derivations], [annot.rounds], [annot.forced],
    [annot.infinite], [annot.par.fallbacks].
    @raise Unsupported outside positive Datalog. *)
val run :
  ?trace:Observe.Trace.ctx -> Semiring.tag -> Ast.program -> Instance.t -> t

(** [annotation r pred tup] is the fact's annotation ([zero] when the
    fact is not in the support). *)
val annotation : t -> string -> Tuple.t -> Semiring.v

(** [annotated_rel r pred] is the support relation of [pred] with its
    annotation map — the {!Annotated.rel} view used by printers. *)
val annotated_rel : t -> string -> Annotated.rel
