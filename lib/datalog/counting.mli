(** Counting-based incremental maintenance: the Count-semiring
    application of the annotated core to the resident server's write
    path. Each materialized fact carries its {e support count} — the
    number of current rule firings deriving it, plus one when it is
    asserted in the base instance. Retraction then deletes exactly the
    facts whose support reaches zero, cascading in waves, instead of
    over-deleting a whole derivation cone and re-deriving the
    survivors (DRed).

    Counts alone under-delete in the presence of support cycles (two
    transitive-closure facts can keep each other's counts positive
    after every external support is gone), so a retraction batch ends
    with a well-foundedness verification: the forward support closure
    of the facts that lost support is checked by a confirmation least
    fixpoint over one-step derivations (reusing the DRed guard plans);
    facts the fixpoint cannot confirm are unfounded and are deleted
    through the same cascade. Facts outside the closure are provably
    still derivable, so on workloads where deletions touch a small
    region the verification never visits the rest of the database —
    the cost model DRed's cone cannot offer. *)

open Relational

type t

(** [create prepared dprep] compiles the maintenance state for a pure
    Datalog program (plans plus the reused DRed guard plans). Counts
    start empty — call {!init} once the fixpoint is materialized. *)
val create : Eval_util.prepared -> Eval_util.dred_prepared -> t

(** [init t ~edb db] computes every support count with one full
    derivation sweep over the materialized database. *)
val init : t -> edb:Instance.t -> Matcher.Db.t -> unit

(** [count t p tup] is the fact's support count (0 when absent). *)
val count : t -> string -> Tuple.t -> int

(** [on_assert t ~edb_added ~news db] maintains counts after an
    insertion batch has been propagated: [edb_added] lists the facts
    newly added to the base instance (+1 support each, whether fresh
    or already derived), [news] the facts newly added to the
    materialization (the propagation deltas, round by round). The new
    firings — those with at least one [news] fact in their body — are
    enumerated with delta passes against the final database. *)
val on_assert :
  t ->
  edb_added:(string * Tuple.t) list ->
  news:(string * Tuple.t list) list ->
  Matcher.Db.t ->
  unit

type stats = {
  deleted : int;  (** facts removed from the materialization *)
  touched : int;  (** facts that lost support but survived *)
  closure : int;  (** size of the verified support closure *)
  confirmed : int;  (** closure facts the verification kept *)
  unfounded : int;  (** closure facts deleted as cycle-only supported *)
  waves : int;  (** cascade waves processed *)
}

(** [retract t ~edb db deletions] maintains the materialization after
    the caller removed [deletions] from the base instance ([edb] is
    the base {e after} removal): decrement the retracted facts'
    base-support, cascade zero-support deletions, then verify
    well-foundedness of the touched region and delete what the
    confirmation fixpoint cannot ground. The result equals recomputing
    the fixpoint from the post-retraction base (the property suite
    checks byte-identity against exactly that oracle). Counters (when
    tracing): [counting.batches], [counting.deleted],
    [counting.touched], [counting.closure], [counting.unfounded],
    [counting.waves]. *)
val retract :
  ?trace:Observe.Trace.ctx ->
  t ->
  edb:Instance.t ->
  Matcher.Db.t ->
  (string * Tuple.t list) list ->
  stats

(** [audit t ~edb db] recomputes every count from scratch and returns
    the mismatches as [(pred, tuple, stored, actual)] — empty when the
    incremental state is exact (the test suite's invariant). *)
val audit :
  t -> edb:Instance.t -> Matcher.Db.t -> (string * Tuple.t * int * int) list
