(** Magic-sets rewriting for positive Datalog with a query (§6's
    "intervening Datalog research": the classic optimization developed in
    the deductive-database era; see also the leapfrog/worst-case-optimal
    line the paper cites for LogicBlox).

    Given a program and a query atom with some constant arguments, the
    rewriting specializes the program so that bottom-up evaluation only
    derives facts relevant to the query, simulating top-down (SLD-style)
    goal direction. We implement generalized magic sets with the standard
    left-to-right sideways-information-passing strategy:

    - predicates are {e adorned} with bound/free patterns ([b]/[f]);
    - each adorned idb predicate [p^a] gets a {e magic} predicate
      [m_p^a] holding the relevant bindings;
    - original rules are specialized per adornment and guarded by their
      magic predicate; magic rules propagate bindings through bodies.

    Benchmark E8 measures the speedup over full semi-naive evaluation on
    point-reachability queries. *)

open Relational

type rewritten = {
  program : Ast.program;  (** the rewritten (still pure Datalog) program *)
  seed : string * Tuple.t;  (** the magic seed fact *)
  query_pred : string;
      (** adorned name answering the query; same arity as the original *)
}

(** [rewrite p query] builds the magic program for [query], an atom whose
    constant arguments are the bound positions. An all-free query is
    rewritten too (its magic guard is the 0-ary seed, so the rewriting is
    a no-op up to reachability of rules from the query).
    @raise Ast.Check_error if [p] is not pure Datalog or [query]'s
    predicate is not an idb predicate of [p]. *)
val rewrite : Ast.program -> Ast.atom -> rewritten

(** [answer p inst query] evaluates [query] via magic rewriting +
    semi-naive evaluation and returns the tuples of the query's predicate
    matching the query's constants (full original arity, so the result is
    directly comparable with unrewritten evaluation). [trace] records the
    counter [magic.rewritten_rules] and a [magic.rewrite] event before
    receiving the semi-naive run's spans and counters. *)
val answer :
  ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> Ast.atom -> Relation.t
