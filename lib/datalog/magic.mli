(** Magic-sets rewriting for positive Datalog with a query (§6's
    "intervening Datalog research": the classic optimization developed in
    the deductive-database era; see also the leapfrog/worst-case-optimal
    line the paper cites for LogicBlox).

    Given a program and a query atom with some constant arguments, the
    rewriting specializes the program so that bottom-up evaluation only
    derives facts relevant to the query, simulating top-down (SLD-style)
    goal direction. We implement generalized magic sets with the standard
    left-to-right sideways-information-passing strategy:

    - predicates are {e adorned} with bound/free patterns ([b]/[f]);
    - each adorned idb predicate [p^a] gets a {e magic} predicate
      [m_p^a] holding the relevant bindings;
    - original rules are specialized per adornment and guarded by their
      magic predicate; magic rules propagate bindings through bodies.

    Benchmark E8 measures the speedup over full semi-naive evaluation on
    point-reachability queries. *)

open Relational

type rewritten = {
  program : Ast.program;  (** the rewritten (still pure Datalog) program *)
  seed : string * Tuple.t;  (** the magic seed fact *)
  query_pred : string;
      (** adorned name answering the query; same arity as the original *)
}

(** [rewrite p query] builds the magic program for [query], an atom whose
    constant arguments are the bound positions. An all-free query is
    rewritten too (its magic guard is the 0-ary seed, so the rewriting is
    a no-op up to reachability of rules from the query).
    @raise Ast.Check_error if [p] is not pure Datalog or [query]'s
    predicate is not an idb predicate of [p]. *)
val rewrite : Ast.program -> Ast.atom -> rewritten

(** A query session: one persistent {!Matcher.Db} plus rewrites memoized
    per (predicate, adornment). Each {!ask} inserts the query's seed and
    resumes semi-naive evaluation on the shared database, so indexes and
    previously derived magic/adorned facts are reused across queries —
    a repeat or overlapping query re-derives nothing it already holds. *)
type session

(** [session p inst] opens a query session over program [p] and instance
    [inst]. [trace] receives, per {!ask}: the counters [magic.queries],
    [magic.rewrite_memo_hits], [magic.rewritten_rules] and
    [magic.answer_tuples], a [magic.rewrite] event on each fresh
    rewrite, and the semi-naive run's spans and counters.
    @raise Ast.Check_error if [p] is not pure Datalog. *)
val session :
  ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> session

(** [ask s query] answers [query] within session [s]: the tuples of the
    query's predicate matching the query's constants and repeated
    variables (full original arity, so the result is directly comparable
    with unrewritten evaluation).
    @raise Ast.Check_error if [query]'s predicate is not idb. *)
val ask : session -> Ast.atom -> Relation.t

(** [answer p inst query] is [ask (session p inst) query] — a one-shot
    session. *)
val answer :
  ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> Ast.atom -> Relation.t
