(** A production-system / active-rule layer over the forward-chaining
    semantics (§5's OPS5 discussion and §7's adoption story).

    Production systems (OPS5, KEE) run a {e recognize–act} cycle: match all
    rules against working memory, pick one instantiation by a
    {e conflict-resolution strategy}, apply its actions (assert/retract),
    repeat. This is precisely N-Datalog¬¬ evaluation with a pluggable
    choice function — the paper's point that forward chaining naturally
    hosts production systems and active databases. Rules reuse the
    {!Ast.rule} type: positive heads assert, negative heads retract.

    Strategies:
    - {!First}: first rule in program order, first instantiation (PROLOG-ish
      determinism);
    - {!Random}: uniform among applicable instantiations (seeded);
    - {!Recency}: prefer instantiations matching the most recently asserted
      facts (OPS5's LEX flavour, approximated by fact age);
    - {!Specificity}: prefer rules with more body literals (OPS5's MEA
      tie-breaker). *)

open Relational

type strategy = First | Random of int | Recency | Specificity

type fired = {
  rule_index : int;  (** index into the program *)
  asserted : (string * Tuple.t) list;
  retracted : (string * Tuple.t) list;
}

type result = {
  memory : Instance.t;  (** final working memory *)
  cycles : int;
  trace : fired list;  (** firings, oldest first *)
}

(** [run ?strategy ?max_cycles p inst] executes the recognize–act cycle
    until no rule changes working memory (default strategy [First], fuel
    10_000 cycles). [trace] receives the counters [production.cycles] and
    [production.candidates] (conflict-set sizes summed over cycles) plus
    the working memory's [db.*] / [matcher.*] counters.
    @raise Ast.Check_error if [p] is not N-Datalog¬¬ syntax.
    @raise Failure on fuel exhaustion. *)
val run :
  ?strategy:strategy ->
  ?max_cycles:int ->
  ?trace:Observe.Trace.ctx ->
  Ast.program ->
  Instance.t ->
  result

(** [refraction] note: a fired (rule, instantiation) pair is not fired
    again unless its matched facts were retracted and re-asserted —
    standard production-system refraction, preventing trivial loops on
    assert-only rules. Exposed for documentation; always on. *)
val refraction : bool
