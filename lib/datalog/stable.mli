(** Stable model semantics for Datalog¬ (§3.3's discussion of the roots of
    the well-founded semantics; Gelfond–Lifschitz).

    A total instance [M ⊇ I] is a {e stable model} of [P] on [I] iff the
    least fixpoint of the reduct [P^M] (negatives evaluated against [M],
    then discarded) equals [M]. The well-founded model approximates every
    stable model: true facts belong to all of them, false facts to none —
    so enumeration only needs to branch on the well-founded {e unknown}
    facts, which is how [models] works (exponential only in the number of
    unknowns). A program whose well-founded model is total has exactly
    that one stable model. *)

open Relational

(** [is_stable p inst m] checks the Gelfond–Lifschitz fixpoint condition.
    [m] must contain the input facts.
    @raise Ast.Check_error if [p] is not Datalog¬ syntax. *)
val is_stable : Ast.program -> Instance.t -> Instance.t -> bool

(** [models ?limit p inst] enumerates stable models (at most [limit],
    default unlimited), branching on the well-founded unknowns. [trace]
    receives the well-founded run's spans plus the counters
    [stable.unknowns], [stable.candidates_checked] and
    [stable.models_found]; the inner Gelfond–Lifschitz fixpoints of the
    candidate checks are not span-traced (there can be [2^unknowns]).
    @raise Failure if there are more than 20 unknown facts (the search
    would explode; the limit guards accidental blowups). *)
val models :
  ?limit:int ->
  ?trace:Observe.Trace.ctx ->
  Ast.program ->
  Instance.t ->
  Instance.t list

(** [count p inst] is [List.length (models p inst)]. *)
val count : Ast.program -> Instance.t -> int
