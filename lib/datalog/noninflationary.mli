(** Datalog¬¬ — negations in rule heads, interpreted as retractions
    (§4.2).

    The immediate-consequence operator fires all rules in parallel; facts
    derived positively are inserted and facts derived negatively are
    deleted. When the same fact is derived both positively and negatively
    in one firing, the {e conflict policy} decides (the paper's §4.2
    enumerates all four, and notes the choice yields equivalent
    languages):

    - {!Pos_priority}: insertion wins — the paper's chosen semantics;
    - {!Neg_priority}: deletion wins;
    - {!Noop}: the fact keeps its previous status;
    - {!Error}: the result is undefined (reported as {!Contradiction}).

    Termination is not guaranteed (the paper's flip-flop program
    oscillates forever); the engine detects cycles and reports
    {!Diverged}. Input (edb) relations may appear in heads: Datalog¬¬ can
    express updates. Expressiveness: exactly the {e while} queries
    (db-pspace on ordered databases, Theorem 4.8). *)

open Relational

type policy = Pos_priority | Neg_priority | Noop | Error

type outcome =
  | Fixpoint of { instance : Instance.t; stages : int }
  | Diverged of {
      entered : int;  (** stage at which the repeating state first occurred *)
      period : int;  (** cycle length ≥ 1 *)
      states : Instance.t list;  (** the repeating cycle of instances *)
    }
  | Contradiction of {
      stage : int;
      pred : string;
      tuple : Tuple.t;  (** witness fact derived both ways under {!Error} *)
    }

(** [run ?policy ?max_stages p inst] iterates the operator from [inst].
    Cycle detection is exact (all visited instances are retained), bounded
    by [max_stages] (default 10_000; exceeding it raises [Failure] —
    with exact detection this indicates a genuinely growing state).
    [trace] wraps each operator application in a ["round"] span whose
    [delta] close field is the {e symmetric-difference} size (the state
    can shrink), and emits a [diverged] or [contradiction] event on those
    outcomes.
    @raise Ast.Check_error if [p] is not Datalog¬¬ syntax. *)
val run :
  ?policy:policy ->
  ?max_stages:int ->
  ?trace:Observe.Trace.ctx ->
  Ast.program ->
  Instance.t ->
  outcome

(** [eval p inst] expects termination.
    @raise Failure on divergence or contradiction. *)
val eval :
  ?policy:policy ->
  ?trace:Observe.Trace.ctx ->
  Ast.program ->
  Instance.t ->
  Instance.t

val answer :
  ?policy:policy ->
  ?trace:Observe.Trace.ctx ->
  Ast.program ->
  Instance.t ->
  string ->
  Relation.t

(** [step ?policy p inst] applies the operator once — the building block
    is exposed for the production-rule layer and for tests. Returns
    [Error (pred, tuple)] on contradiction under {!Error}. *)
val step :
  ?policy:policy ->
  Ast.program ->
  Instance.t ->
  (Instance.t, string * Tuple.t) Stdlib.result
