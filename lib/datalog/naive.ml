open Relational

type result = { instance : Instance.t; stages : int }

let eval ?(trace = Observe.Trace.null) p inst =
  Ast.check_datalog p;
  let dom = Eval_util.program_dom p inst in
  let prepared = Eval_util.prepare p in
  let instance, stages = Eval_util.naive_fixpoint ~trace prepared ~dom inst in
  { instance; stages }

let answer ?trace p inst pred = Instance.find pred (eval ?trace p inst).instance
