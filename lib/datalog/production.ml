open Relational

type strategy = First | Random of int | Recency | Specificity

type fired = {
  rule_index : int;
  asserted : (string * Tuple.t) list;
  retracted : (string * Tuple.t) list;
}

type result = { memory : Instance.t; cycles : int; trace : fired list }

let refraction = true

type candidate = {
  idx : int;
  rule : Ast.rule;
  subst : Ast.subst;
  adds : (string * Tuple.t) list;
  dels : (string * Tuple.t) list;
  matched : (string * Tuple.t) list;  (* positive body facts *)
  specificity : int;
}

let head_consistent adds dels =
  not
    (List.exists
       (fun (p, t) ->
         List.exists (fun (p', t') -> p = p' && Tuple.equal t t') dels)
       adds)

let candidates prepared dom db =
  List.concat_map
    (fun (idx, rule, plan) ->
      let substs = Matcher.run ~dom plan db in
      List.filter_map
        (fun subst ->
          let bottom, facts = Matcher.instantiate_heads subst rule.Ast.head in
          if bottom then None
          else
            let adds =
              List.filter_map
                (fun (pos, p, t) -> if pos then Some (p, t) else None)
                facts
            and dels =
              List.filter_map
                (fun (pos, p, t) -> if pos then None else Some (p, t))
                facts
            in
            if not (head_consistent adds dels) then None
            else
              let changes =
                List.exists (fun (p, t) -> not (Matcher.Db.mem db p t)) adds
                || List.exists (fun (p, t) -> Matcher.Db.mem db p t) dels
              in
              if not changes then None
              else
                let matched =
                  List.filter_map
                    (function
                      | Ast.BPos a -> Some (Ast.ground_atom subst a)
                      | _ -> None)
                    rule.Ast.body
                in
                Some
                  {
                    idx;
                    rule;
                    subst;
                    adds;
                    dels;
                    matched;
                    specificity = List.length rule.Ast.body;
                  })
        substs)
    prepared

let run ?(strategy = First) ?(max_cycles = 10_000)
    ?(trace = Observe.Trace.null) p inst =
  Ast.check_ndatalog p;
  let tracing = Observe.Trace.enabled trace in
  let dom = Eval_util.program_dom p inst in
  let prepared =
    List.mapi (fun i r -> (i, r, Matcher.prepare r)) p
  in
  let ages : (string * Tuple.t, int) Hashtbl.t = Hashtbl.create 64 in
  Instance.fold
    (fun pred r () ->
      Relation.iter (fun t -> Hashtbl.replace ages (pred, t) 0) r)
    inst ();
  let fired_memo : (int * Ast.subst * int, unit) Hashtbl.t =
    Hashtbl.create 256
  in
  let fact_age (p, t) = try Hashtbl.find ages (p, t) with Not_found -> 0 in
  let memo_key c =
    let epoch =
      List.fold_left (fun acc f -> max acc (fact_age f)) 0 c.matched
    in
    (c.idx, List.sort compare c.subst, epoch)
  in
  let rng =
    match strategy with
    | Random seed -> Some (Random.State.make [| seed |])
    | _ -> None
  in
  let choose cs =
    match strategy with
    | First -> List.nth_opt cs 0
    | Random _ ->
        let rng = Option.get rng in
        if cs = [] then None
        else Some (List.nth cs (Random.State.int rng (List.length cs)))
    | Recency ->
        List.fold_left
          (fun best c ->
            let rec_of c =
              List.fold_left (fun acc f -> max acc (fact_age f)) (-1) c.matched
            in
            match best with
            | None -> Some c
            | Some b -> if rec_of c > rec_of b then Some c else best)
          None cs
    | Specificity ->
        List.fold_left
          (fun best c ->
            match best with
            | None -> Some c
            | Some b -> if c.specificity > b.specificity then Some c else best)
          None cs
  in
  (* one persistent working memory for the whole run; each firing applies
     its retractions and assertions to the indexed database in place *)
  let db = Matcher.Db.of_instance ~trace inst in
  let rec cycle n fired_log =
    if n >= max_cycles then
      failwith
        (Printf.sprintf "Production.run: no quiescence within %d cycles"
           max_cycles)
    else
      let cs =
        candidates prepared dom db
        |> List.filter (fun c -> not (Hashtbl.mem fired_memo (memo_key c)))
      in
      if tracing then (
        Observe.Trace.incr trace "production.cycles";
        Observe.Trace.add trace "production.candidates" (List.length cs));
      match choose cs with
      | None ->
          {
            memory = Matcher.Db.instance db;
            cycles = n;
            trace = List.rev fired_log;
          }
      | Some c ->
          Hashtbl.replace fired_memo (memo_key c) ();
          List.iter (fun (pr, t) -> ignore (Matcher.Db.remove db pr t)) c.dels;
          List.iter (fun (pr, t) -> ignore (Matcher.Db.insert db pr t)) c.adds;
          List.iter (fun f -> Hashtbl.replace ages f (n + 1)) c.adds;
          cycle (n + 1)
            ({ rule_index = c.idx; asserted = c.adds; retracted = c.dels }
             :: fired_log)
  in
  cycle 0 []
