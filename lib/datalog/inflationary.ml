open Relational

type strategy = Naive_loop | Delta_loop

type result = { instance : Instance.t; stages : int }

let eval ?(strategy = Delta_loop) ?(trace = Observe.Trace.null) p inst =
  Ast.check_datalog_neg p;
  let dom = Eval_util.program_dom p inst in
  let prepared = Eval_util.prepare p in
  let instance, stages =
    match strategy with
    | Naive_loop -> Eval_util.naive_fixpoint ~trace prepared ~dom inst
    | Delta_loop ->
        Eval_util.seminaive_fixpoint ~trace prepared ~delta_preds:(Ast.idb p)
          ~dom inst
  in
  { instance; stages }

let trace p inst =
  Ast.check_datalog_neg p;
  let dom = Eval_util.program_dom p inst in
  let prepared = Eval_util.prepare p in
  Eval_util.stage_trace prepared ~dom inst

let answer ?strategy ?trace p inst pred =
  Instance.find pred (eval ?strategy ?trace p inst).instance
