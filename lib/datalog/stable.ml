open Relational

(* GL(M): semi-naive least fixpoint with negatives checked against the
   fixed candidate M (one persistent database per application). *)
let gl_prepared prepared delta_preds dom inst context =
  let neg_db = Matcher.Db.of_instance context in
  fst (Eval_util.seminaive_fixpoint ~neg_db prepared ~delta_preds ~dom inst)

let gl p inst context =
  Ast.check_datalog_neg p;
  let dom = Eval_util.program_dom p inst in
  let prepared = Eval_util.prepare p in
  gl_prepared prepared (Ast.idb p) dom inst context

let is_stable p inst m = Instance.equal (gl p inst m) m

let models ?limit ?(trace = Observe.Trace.null) p inst =
  let wf = Wellfounded.eval ~trace p inst in
  let unknowns =
    Instance.fold
      (fun pred r acc ->
        Relation.fold (fun t acc -> (pred, t) :: acc) r acc)
      (Wellfounded.unknown wf) []
  in
  if List.length unknowns > 20 then
    failwith
      (Printf.sprintf "Stable.models: %d unknown facts, search too large"
         (List.length unknowns));
  (* prepare once: the candidate enumeration applies GL up to 2^unknowns
     times over the same program and domain *)
  Ast.check_datalog_neg p;
  let dom = Eval_util.program_dom p inst in
  let prepared = Eval_util.prepare p in
  let delta_preds = Ast.idb p in
  let tracing = Observe.Trace.enabled trace in
  if tracing then
    Observe.Trace.add trace "stable.unknowns" (List.length unknowns);
  (* Each candidate check is one GL fixpoint; up to 2^unknowns of them run
     here, so candidates are counted but their inner fixpoints are not
     span-traced (the counters still accumulate via the shared ctx only if
     threaded — deliberately not, to keep traces bounded). *)
  let stable_candidate m =
    if tracing then Observe.Trace.incr trace "stable.candidates_checked";
    Instance.equal (gl_prepared prepared delta_preds dom inst m) m
  in
  let out = ref [] in
  let n = ref 0 in
  let reached_limit () =
    match limit with Some l -> !n >= l | None -> false
  in
  let rec branch candidate = function
    | [] ->
        if (not (reached_limit ())) && stable_candidate candidate then (
          if tracing then Observe.Trace.incr trace "stable.models_found";
          out := candidate :: !out;
          incr n)
    | (pred, t) :: rest ->
        if not (reached_limit ()) then (
          branch candidate rest;
          branch (Instance.add_fact pred t candidate) rest)
  in
  branch wf.Wellfounded.true_facts unknowns;
  List.rev !out

let count p inst = List.length (models p inst)
