(** Semi-positive Datalog¬ (§4.5): negation applied to edb predicates
    only.

    A semi-positive program is a single stratum, so evaluation is one
    monotone (semi-naive) fixpoint. Theorem 4.7: on ordered databases with
    explicit [min]/[max] constants, semi-positive Datalog¬ expresses
    exactly db-ptime — exercised by experiment E7. *)

open Relational

exception Not_semipositive of string

type result = { instance : Instance.t; stages : int }

(** [eval p inst] evaluates a semi-positive program.
    @raise Not_semipositive if some idb predicate is negated.
    @raise Ast.Check_error if [p] is not Datalog¬ syntax. *)
val eval : ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> result

val answer :
  ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> string -> Relation.t
