open Relational

type func = Count | Sum of string | Min of string | Max of string

type agg_rule = {
  pred : string;
  group_by : string list;
  func : func;
  body : Ast.blit list;
}

type layer = { rules : Ast.program; aggregates : agg_rule list }

exception Agg_error of string

let agg_error fmt = Format.kasprintf (fun s -> raise (Agg_error s)) fmt

let eval_agg db dom (a : agg_rule) =
  (* collect satisfying substitutions of the body *)
  let probe_vars =
    a.group_by
    @ (match a.func with
      | Count -> []
      | Sum x | Min x | Max x -> [ x ])
  in
  let probe =
    {
      Ast.head =
        [ Ast.HPos (Ast.atom "agg__" (List.map (fun x -> Ast.var x) probe_vars)) ];
      body = a.body;
      forall = [];
    }
  in
  Ast.check_safe probe;
  let substs = Matcher.run ~dom (Matcher.prepare probe) db in
  let groups : (Value.t list, Value.t list list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun subst ->
      let get x =
        match List.assoc_opt x subst with
        | Some v -> v
        | None -> agg_error "aggregate variable %s not bound by the body" x
      in
      let key = List.map get a.group_by in
      let payload =
        match a.func with
        | Count -> []
        | Sum x | Min x | Max x -> [ get x ]
      in
      Hashtbl.replace groups key
        (payload :: (try Hashtbl.find groups key with Not_found -> [])))
    substs;
  Hashtbl.fold
    (fun key payloads acc ->
      let result =
        match a.func with
        | Count -> Value.Int (List.length payloads)
        | Sum _ ->
            Value.Int
              (List.fold_left
                 (fun s p ->
                   match p with
                   | [ Value.Int n ] ->
                       let s' = s + n in
                       (* native [+] wraps silently; two's-complement
                          overflow iff operands of equal sign yield a
                          result of the opposite sign *)
                       if s >= 0 = (n >= 0) && s' >= 0 <> (s >= 0) then
                         agg_error "sum overflow: %d + %d exceeds the native \
                                    integer range"
                           s n
                       else s'
                   | [ v ] ->
                       agg_error "sum over non-integer value %s"
                         (Value.to_string v)
                   | _ -> assert false)
                 0 payloads)
        | Min _ ->
            List.fold_left
              (fun best p ->
                match (best, p) with
                | None, [ v ] -> Some v
                | Some b, [ v ] ->
                    Some (if Value.compare v b < 0 then v else b)
                | _ -> best)
              None payloads
            |> Option.get
        | Max _ ->
            List.fold_left
              (fun best p ->
                match (best, p) with
                | None, [ v ] -> Some v
                | Some b, [ v ] ->
                    Some (if Value.compare v b > 0 then v else b)
                | _ -> best)
              None payloads
            |> Option.get
      in
      (a.pred, Tuple.of_list (key @ [ result ])) :: acc)
    groups []

let eval ?(trace = Observe.Trace.null) layers inst =
  let tracing = Observe.Trace.enabled trace in
  List.fold_left
    (fun current { rules; aggregates } ->
      let current =
        match rules with
        | [] -> current
        | _ ->
            (* each layer's rule set must stratify internally *)
            (Stratified.eval ~trace rules current).Stratified.instance
      in
      let dom =
        Eval_util.program_dom
          (rules
          @ List.map
              (fun a -> { Ast.head = [ Ast.HPos (Ast.atom a.pred []) ];
                          body = a.body; forall = [] })
              aggregates)
          current
      in
      (* one indexed view shared by every aggregate of the layer *)
      let db = Matcher.Db.of_instance ~trace current in
      let agg_facts = List.concat_map (eval_agg db dom) aggregates in
      if tracing then (
        Observe.Trace.add trace "aggregate.rules" (List.length aggregates);
        Observe.Trace.add trace "aggregate.facts" (List.length agg_facts));
      List.fold_left
        (fun acc (pred, tup) -> Instance.add_fact pred tup acc)
        current agg_facts)
    inst layers

let answer ?trace layers inst pred = Instance.find pred (eval ?trace layers inst)
