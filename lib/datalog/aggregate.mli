(** Stratified aggregation — the extension every practical engine the
    paper surveys carries (§6: LogiQL "supports sophisticated analytics",
    BigDatalog "relies on Datalog extended with aggregates" [110, 118]).

    An aggregate rule

    {v p(x̄, agg<e>) :- body v}

    groups the body's satisfying valuations by the head's group-by
    variables [x̄] and combines the aggregated column [e] with one of
    count / sum / min / max; [count] may aggregate [*] (all rows).
    Aggregation here is {e stratified}: a program is a list of layers,
    each layer being ordinary Datalog¬ rules evaluated to fixpoint
    followed by aggregate rules computed once over the completed layer —
    the standard semantics that keeps aggregation monotone-free and
    deterministic (recursion {e through} aggregation, as in [118]'s
    monotonic min/max fixpoints, is out of scope and documented in
    DESIGN.md).

    Sum/count produce integer values; min/max work on any column under
    {!Relational.Value.compare}. Empty groups simply produce no fact (as
    in SQL's GROUP BY). *)

open Relational

type func =
  | Count  (** number of satisfying valuations per group *)
  | Sum of string  (** sum of an integer variable *)
  | Min of string
  | Max of string

type agg_rule = {
  pred : string;  (** head predicate *)
  group_by : string list;  (** head columns before the aggregate *)
  func : func;
  body : Ast.blit list;  (** Datalog¬ body literals *)
}

type layer = {
  rules : Ast.program;  (** recursive Datalog¬ rules, run to fixpoint *)
  aggregates : agg_rule list;  (** computed once over the finished layer *)
}

exception Agg_error of string

(** [eval layers inst] evaluates the layers in order. [trace] receives
    the stratified runs' spans plus the counters [aggregate.rules]
    (aggregate rules evaluated) and [aggregate.facts] (facts produced).
    @raise Agg_error on non-integer input to [Sum], or aggregate
    variables not bound by the body.
    @raise Ast.Check_error via the underlying engine on malformed rules. *)
val eval : ?trace:Observe.Trace.ctx -> layer list -> Instance.t -> Instance.t

(** [answer layers inst pred]. *)
val answer :
  ?trace:Observe.Trace.ctx -> layer list -> Instance.t -> string -> Relation.t
