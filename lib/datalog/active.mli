(** An active-database rule engine: event–condition–action (ECA) rules
    over the relational substrate, in the spirit of the systems the paper
    credits as early adopters of forward chaining (§7; [117] Widom–Ceri,
    and the Datalog-based analysis of active-rule semantics in [104]
    Picouet–Vianu).

    An ECA rule fires when a triggering {e event} (insertion or deletion
    matching a pattern) occurs, its {e condition} (a conjunction of
    literals, evaluated with the event's bindings) holds, and then
    executes its {e actions} (insertions/deletions). Two standard
    {e coupling modes} are supported:

    - {!Immediate}: the rule's actions run right after the triggering
      update, before the rest of the transaction (depth-first cascade);
    - {!Deferred}: triggered instances are queued and run at commit,
      repeatedly until quiescence.

    Infinite cascades are possible (as in real active databases); a step
    budget bounds execution. *)

open Relational

type event =
  | On_insert of Ast.atom  (** fires when a matching tuple is inserted *)
  | On_delete of Ast.atom  (** fires when a matching tuple is deleted *)

type action =
  | Insert of Ast.atom
  | Delete of Ast.atom

type mode = Immediate | Deferred

type rule = {
  name : string;
  event : event;
  condition : Ast.blit list;
      (** extra condition literals; may bind further variables *)
  actions : action list;
  mode : mode;
}

(** A primitive update. *)
type update = Ins of string * Tuple.t | Del of string * Tuple.t

type log_entry = {
  rule_name : string option;  (** [None] for the transaction's own updates *)
  update : update;
  applied : bool;  (** no-op updates (already present/absent) are logged
                       with [applied = false] and do not trigger rules *)
}

type result = {
  instance : Instance.t;
  log : log_entry list;  (** chronological *)
  steps : int;
}

exception Cascade_limit of int

(** [run ?max_steps rules inst transaction] executes the transaction's
    updates in order with immediate rules cascading depth-first, then
    processes deferred rules to quiescence (default budget 10_000 applied
    updates). Only updates that actually change the database trigger
    rules.
    [trace] receives the counters [active.updates_applied],
    [active.updates_noop] and [active.triggers.<rule>] (condition matches
    per rule) plus the database's [db.*] counters.
    @raise Cascade_limit when the budget is exhausted.
    @raise Ast.Check_error on malformed patterns/conditions (unbound
    action variables). *)
val run :
  ?max_steps:int ->
  ?trace:Observe.Trace.ctx ->
  rule list ->
  Instance.t ->
  update list ->
  result
