(** Semi-naive bottom-up evaluation of pure Datalog.

    The classic delta optimization: after the first stage, a rule can only
    produce a new fact if at least one of its idb body atoms matches a fact
    derived in the previous stage, so each rule is re-evaluated once per
    positive idb occurrence with that occurrence restricted to the last
    delta. Produces exactly the minimum model (property-tested against
    {!Naive}); benchmark E2 measures the speedup. *)

open Relational

type result = {
  instance : Instance.t;  (** the minimum model: edb ∪ idb facts *)
  stages : int;  (** delta iterations until the delta is empty *)
}

(** [eval p inst] runs [p] on [inst]. [trace] receives round spans and
    the [fixpoint.*] / [db.*] / [matcher.*] / [rule_firings.*] counters
    (see {!Eval_util.seminaive_fixpoint}).
    @raise Ast.Check_error if [p] is not pure Datalog. *)
val eval : ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> result

val answer :
  ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> string -> Relation.t
