(** Well-founded semantics for Datalog¬ via the alternating fixpoint
    (§3.3; Van Gelder's formulation).

    The Gelfond–Lifschitz-style operator [A(J)] computes the least fixpoint
    of the program with every negative literal [¬R(u)] evaluated against
    the {e fixed} context [J] (and positives against the growing result).
    [A] is antimonotone, so [A∘A] is monotone; iterating

    {v U_0 = I,   U_{k+1} = A(A(U_k)) v}

    converges to the least fixpoint [T] of [A²] — the {b true} facts —
    while [A(T)] is the greatest fixpoint — the {b true-or-unknown}
    facts. Everything else (within the Herbrand base over [adom(P, I)])
    is {b false}. The well-founded model is total iff [T = A(T)].

    Theorem (§3.3, [62]): the true-facts (2-valued) interpretation has
    exactly the power of the fixpoint queries — equivalently, of
    inflationary Datalog¬ — and is computable in ptime. *)

open Relational

type truth = True | False | Unknown

type result = {
  true_facts : Instance.t;  (** lfp(A²), including the input facts *)
  possible : Instance.t;  (** gfp(A²) = A(lfp): true-or-unknown *)
  rounds : int;  (** alternating-fixpoint rounds until convergence *)
}

(** [eval p inst] computes the well-founded model of [p] on [inst].
    [trace] wraps each application of [A] in a ["phase"] span named
    [over.<k>] / [under.<k>] (close field [facts]) and counts alternating
    rounds in [wf.rounds].
    @raise Ast.Check_error if [p] is not Datalog¬ syntax. *)
val eval : ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> result

(** [truth_of res pred tup] classifies one fact. Facts outside the
    Herbrand base are simply [False]. *)
val truth_of : result -> string -> Tuple.t -> truth

(** [unknown res] is the instance of unknown facts ([possible] minus
    [true_facts]). *)
val unknown : result -> Instance.t

(** [is_total res]: no unknown facts — e.g. the case for all stratifiable
    programs, where the well-founded model coincides with the stratified
    one. *)
val is_total : result -> bool

(** [answer p inst pred] is [pred]'s relation in the 2-valued (true facts)
    reading. *)
val answer :
  ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> string -> Relation.t

(** [alternating_sequence p inst] exposes the sequence of (under, over)
    approximation pairs for inspection — benchmark E4 reports its
    length. *)
val alternating_sequence :
  ?trace:Observe.Trace.ctx ->
  Ast.program ->
  Instance.t ->
  (Instance.t * Instance.t) list
