open Relational

type outcome =
  | Fixpoint of { instance : Instance.t; stages : int; invented : int }
  | Out_of_fuel of { instance : Instance.t; stages : int; invented : int }

(* A canonical key identifying one body instantiation of one rule, used to
   guarantee single firing. *)
let firing_key rule_idx subst =
  (rule_idx, List.sort compare subst)

let run ?(max_stages = 10_000) ?(trace = Observe.Trace.null) p inst =
  Ast.check_invent p;
  let tracing = Observe.Trace.enabled trace in
  let gen = Value.Gen.create () in
  let prepared =
    List.mapi
      (fun i r ->
        (i, r, Matcher.prepare r, Ast.head_only_vars r, Eval_util.rule_label i r))
      p
  in
  let fired = Hashtbl.create 256 in
  let module VSet = Set.Make (Value) in
  (* one persistent database for the whole run; the active domain grows
     incrementally as facts (and invented values) are added *)
  let db = Matcher.Db.of_instance ~trace inst in
  let domset =
    ref
      (VSet.union
         (VSet.of_list (Ast.adom p))
         (VSet.of_list (Instance.adom inst)))
  in
  let rec loop stages =
    if stages >= max_stages then
      Out_of_fuel
        {
          instance = Matcher.Db.instance db;
          stages;
          invented = Value.Gen.count gen;
        }
    else
      let dom = VSet.elements !domset in
      let additions = ref [] in
      if tracing then
        Observe.Trace.open_span trace ~kind:"round" (string_of_int stages);
      (* collect firings for every rule against the stage-start state
         before applying any of them: parallel-stage semantics *)
      List.iter
        (fun (i, rule, plan, new_vars, label) ->
          let substs = Matcher.run ~dom plan db in
          if tracing then
            Observe.Trace.add trace
              ("rule_firings." ^ label)
              (List.length substs);
          List.iter
            (fun subst ->
              let key = firing_key i subst in
              if not (Hashtbl.mem fired key) then (
                Hashtbl.add fired key ();
                let subst =
                  List.fold_left
                    (fun s x -> (x, Value.Gen.fresh gen) :: s)
                    subst new_vars
                in
                let _, facts =
                  Matcher.instantiate_heads subst rule.Ast.head
                in
                additions := facts @ !additions))
            substs)
        prepared;
      let changed = ref false in
      let inserted = ref 0 in
      List.iter
        (fun (pos, pr, t) ->
          if pos && Matcher.Db.insert db pr t then (
            changed := true;
            Stdlib.incr inserted;
            Array.iter
              (fun v -> domset := VSet.add v !domset)
              (Tuple.values t)))
        !additions;
      if tracing then (
        Observe.Trace.incr trace "fixpoint.rounds";
        Observe.Trace.gauge_max trace "fixpoint.delta_max" !inserted;
        Observe.Trace.add trace "fixpoint.delta_total" !inserted;
        Observe.Trace.add trace "invent.values"
          (Value.Gen.count gen - Observe.Trace.counter trace "invent.values");
        Observe.Trace.close_span trace
          ~fields:[ Observe.Trace.fint "delta" !inserted ]
          ());
      if not !changed then
        Fixpoint
          {
            instance = Matcher.Db.instance db;
            stages;
            invented = Value.Gen.count gen;
          }
      else loop (stages + 1)
  in
  loop 0

let eval ?max_stages ?trace p inst =
  match run ?max_stages ?trace p inst with
  | Fixpoint { instance; _ } -> instance
  | Out_of_fuel { stages; _ } ->
      failwith
        (Printf.sprintf
           "Datalog\xc2\xacnew: no fixpoint within %d stages (the language is \
            Turing-complete; supply more fuel if the program terminates)"
           stages)

let answer ?max_stages ?trace p inst pred =
  let r = Instance.find pred (eval ?max_stages ?trace p inst) in
  Relation.filter (fun t -> not (Tuple.exists Value.is_invented t)) r

let answer_exn ?max_stages p inst pred =
  let r = Instance.find pred (eval ?max_stages p inst) in
  if Relation.exists (fun t -> Tuple.exists Value.is_invented t) r then
    failwith
      (Printf.sprintf
         "Datalog\xc2\xacnew: answer relation %s contains invented values" pred)
  else r
