(** Shared engine plumbing: one parallel firing of a rule set (the
    immediate-consequence operator's "new facts" half), domains, and
    common bookkeeping. *)

open Relational

(** [program_dom p inst] is [adom(P, K)]: constants of the program plus the
    active domain of the instance. Computed once per evaluation — for the
    invention-free languages the domain never grows during the run. *)
val program_dom : Ast.program -> Instance.t -> Value.t list

(** A prepared program: matcher plans per rule, in program order. *)
type prepared

val prepare : Ast.program -> prepared
val rules : prepared -> (Ast.rule * Matcher.prepared) list

(** [rule_label i rule] is the stable counter label ["r<i>:<heads>"] used
    for per-rule firing counters ([rule_firings.<label>]); [i] is the
    rule's position in the program. *)
val rule_label : int -> Ast.rule -> string

(** [consequences prepared inst ~dom] computes all head facts produced by
    firing every rule with every applicable instantiation against [inst]
    (positive heads only — engines handling retraction use
    {!consequences_signed}). The result contains only the derived facts,
    not [inst]. *)
val consequences :
  prepared -> Instance.t -> dom:Value.t list -> Instance.t

(** [consequences_db prepared db ~dom] is {!consequences} against an
    existing (persistent, index-carrying) database view. [neg_db]
    redirects negative-literal checks, as in {!Matcher.run}. *)
val consequences_db :
  ?neg_db:Matcher.Db.t ->
  prepared ->
  Matcher.Db.t ->
  dom:Value.t list ->
  Instance.t

(** [consequences_signed_db] is {!consequences_signed} against an
    existing database view. *)
val consequences_signed_db :
  prepared -> Matcher.Db.t -> dom:Value.t list -> Instance.t * Instance.t

(** [consequences_signed prepared inst ~dom] returns
    [(asserted, retracted)] instances: facts from positive and negative
    head literals respectively. A ⊥ head raises [Invalid_argument] (the
    deterministic engines reject it at check time). *)
val consequences_signed :
  prepared -> Instance.t -> dom:Value.t list -> Instance.t * Instance.t

(** [seminaive_fixpoint prepared ~delta_preds ~dom inst] computes the
    inflationary fixpoint of the rule set from [inst] using delta
    iteration: stage 1 evaluates every rule in full; stage [k+1]
    re-evaluates only rules with a positive body occurrence of a
    [delta_preds] predicate, restricted to the facts newly derived at
    stage [k]. Negative literals are checked against the instance of the
    previous stage, which equals the current one within a stage —
    this is exact for (a) one stratum of a stratified program (negated
    predicates are fixed) and (b) inflationary Datalog¬ (facts never
    retract, so a body satisfied now but not before must use a delta
    fact). Returns the fixpoint and the number of stages (applications of
    the immediate-consequence operator, i.e. the paper's "stages").

    One {!Matcher.Db} is created for the whole run and fed each stage's
    delta via {!Matcher.Db.absorb} — indexes persist across rounds.

    [neg_db]: check negative literals against this fixed database instead
    of the growing one — makes the fixpoint the Gelfond–Lifschitz
    operator A(J) used by the well-founded and stable-model engines.

    [trace]: when enabled, each application of Γ is wrapped in a ["round"]
    span whose close field [delta] is the number of facts it produced
    (round [0] is the initial full evaluation), and the counters
    [fixpoint.rounds], [fixpoint.delta_max], [fixpoint.delta_total],
    [fixpoint.tuples_derived], [fixpoint.tuples_deduped] and
    [rule_firings.<label>] are maintained.

    When the global {!Parallel.Pool} is available (jobs > 1 and not held
    by an enclosing fixpoint), each round's firing work runs on the
    pool's domains under the strategy selected by {!set_par_strategy}:

    - {!Sharded} (default): every worker owns a hash-partitioned shard
      of each head predicate ({!Matcher.Shard}); it derives from its own
      delta slices, dedups owned facts locally, and routes foreign facts
      through a batched {!Parallel.Exchange} drained in a second phase
      of the same fan-out — there is no global merge. Counters:
      [par.domains] (gauge), [par.tasks], [par.exchange_ms]
      (critical-path drain time), [par.exchanged_tuples] (cross-shard
      traffic) and [par.shard_skew] (gauge; [100] = balanced,
      [100 * domains] = one shard owns every fresh fact).
    - {!Merge}: the earlier barrier-merge driver — per rule on round 0,
      per (rule, delta-pred, delta-slice) afterwards, worker-private
      buffers folded into one accumulator at the barrier; its merge cost
      is [par.merge_ms].

    Both preserve the round structure, so the returned instance and
    stage count are identical to a sequential run (and the printed
    instance byte-identical); worker-side counters are folded in at the
    end, and their totals may legitimately differ from a sequential run
    (e.g. two workers deriving a fact the routing then dedups). When
    jobs > 1 but the pool is held by an enclosing fixpoint, the run
    degrades to sequential and counts [par.pool.fallbacks] (see also
    {!Parallel.Pool.fallback_count}). *)
val seminaive_fixpoint :
  ?trace:Observe.Trace.ctx ->
  ?neg_db:Matcher.Db.t ->
  prepared ->
  delta_preds:string list ->
  dom:Value.t list ->
  Instance.t ->
  Instance.t * int

(** [seminaive_fixpoint_db] is {!seminaive_fixpoint} against an existing
    {!Matcher.Db} — the db keeps its indexes and membership sets, and
    the fixpoint's derived facts are absorbed into it, so a long-lived
    caller (a {!Magic} query session) pays index construction once and
    each later fixpoint re-derives nothing it already holds. *)
val seminaive_fixpoint_db :
  ?trace:Observe.Trace.ctx ->
  ?neg_db:Matcher.Db.t ->
  prepared ->
  delta_preds:string list ->
  dom:Value.t list ->
  Matcher.Db.t ->
  Instance.t * int

(** {1 Incremental view maintenance}

    The write path of the resident server ({!module:Server.Engine}): a
    long-lived {!Matcher.Db} holds the materialized fixpoint and is
    updated in place, never recomputed. *)

(** [seminaive_increment_db prepared ~delta_preds ~dom db delta] resumes
    the semi-naive loop on an already-materialized [db] with [delta] as
    the round-0 delta: the facts are absorbed and the delta-restricted
    rules iterate to the new fixpoint. [delta] facts must be fresh (not
    in [db]) and pairwise distinct — the caller checks with
    {!Matcher.Db.mem}. Cost is proportional to the consequences of the
    delta, not to the database. Returns the new instance and the number
    of propagation stages.

    [on_delta] observes each propagation round's fresh facts (the
    caller-supplied delta included) just before they are absorbed into
    [db] — the counting-maintenance sweep of {!module:Server.Engine}
    uses this to enumerate the new firings each round creates. *)
val seminaive_increment_db :
  ?trace:Observe.Trace.ctx ->
  ?neg_db:Matcher.Db.t ->
  ?on_delta:((string * Tuple.t list) list -> unit) ->
  prepared ->
  delta_preds:string list ->
  dom:Value.t list ->
  Matcher.Db.t ->
  (string * Tuple.t list) list ->
  Instance.t * int

(** Compiled artifacts for {!dred}: delta tables over every positive
    body predicate plus one guard plan per rule ([P(t̄) :- dred$P(t̄),
    body] — the synthetic atom is fed through the delta mechanism, so no
    [dred$] relation ever exists). Build once per program, reuse across
    retraction batches. Only single-positive-head rules (pure Datalog)
    participate. *)
type dred_prepared

val prepare_dred : prepared -> dred_prepared

(** [dred_guard_pred p] is the synthetic guard-atom predicate for head
    predicate [p] (["dred$" ^ p]); {!dred_guards} lists the guard plans
    per head predicate. Exposed for the counting-maintenance path,
    which reuses the guard plans to enumerate one-step derivations of
    suspect facts during its well-foundedness verification. *)
val dred_guard_pred : string -> string

val dred_guards : dred_prepared -> (string * Matcher.prepared) list

type dred_stats = {
  overdeleted : int;  (** facts removed in the over-deletion phase *)
  rederived : int;  (** of those, facts restored by re-derivation *)
  cone_rounds : int;  (** frontier expansions of the deletion cone *)
}

(** [dred dprep ~edb ~dom db deletions] retracts [deletions] from the
    materialized fixpoint [db] by delete-and-rederive: (1) over-delete
    the derived cone of the retracted facts (computed against the intact
    database, so derivations using several deleted facts are found);
    (2) remove it; (3) seed re-derivation with cone facts still present
    in the base instance [edb] and cone facts one guard plan rederives
    from the surviving database; (4) propagate the seed with the
    semi-naive increment loop. The result equals recomputing the
    fixpoint from scratch on the post-retraction EDB. [edb] is the base
    (asserted) instance {e after} the retraction. Facts absent from [db]
    are ignored. Counters (when tracing): [dred.batches],
    [dred.overdeleted], [dred.rederived], [dred.cone_rounds] (gauge). *)
val dred :
  ?trace:Observe.Trace.ctx ->
  dred_prepared ->
  edb:Instance.t ->
  dom:Value.t list ->
  Matcher.Db.t ->
  (string * Tuple.t list) list ->
  dred_stats

(** The parallel execution strategy of {!seminaive_fixpoint} (see
    there). Process-global, like the pool itself. *)
type par_strategy =
  | Sharded  (** shard-owned state + batched exchange (default) *)
  | Merge  (** shared state + sequential barrier merge (kept for
               comparison; bench e20) *)

val set_par_strategy : par_strategy -> unit
val par_strategy : unit -> par_strategy

(** [naive_fixpoint prepared ~dom inst] is the same fixpoint computed by
    full re-evaluation at every stage — the reference strategy. [trace]
    records the same ["round"] spans and [fixpoint.*] counters as
    {!seminaive_fixpoint}. *)
val naive_fixpoint :
  ?trace:Observe.Trace.ctx ->
  prepared ->
  dom:Value.t list ->
  Instance.t ->
  Instance.t * int

(** [stage_trace prepared ~dom inst] returns the full stage sequence
    [K ⊆ Γ(K) ⊆ Γ²(K) ⊆ ...] up to and including the fixpoint — stage
    numbers are meaningful to programs like Example 4.1's [closer]. *)
val stage_trace :
  prepared -> dom:Value.t list -> Instance.t -> Instance.t list

(** Result bookkeeping common to all engines. *)
type stats = {
  stages : int;  (** number of applications of the consequence operator *)
  facts_inferred : int;  (** facts in the final idb *)
}

(** [restrict_idb program inst] keeps only the idb relations of the
    program — the paper's image/answer of [P] on [I]. *)
val restrict_idb : Ast.program -> Instance.t -> Instance.t
