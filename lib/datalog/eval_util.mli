(** Shared engine plumbing: one parallel firing of a rule set (the
    immediate-consequence operator's "new facts" half), domains, and
    common bookkeeping. *)

open Relational

(** [program_dom p inst] is [adom(P, K)]: constants of the program plus the
    active domain of the instance. Computed once per evaluation — for the
    invention-free languages the domain never grows during the run. *)
val program_dom : Ast.program -> Instance.t -> Value.t list

(** A prepared program: matcher plans per rule, in program order. *)
type prepared

val prepare : Ast.program -> prepared
val rules : prepared -> (Ast.rule * Matcher.prepared) list

(** [rule_label i rule] is the stable counter label ["r<i>:<heads>"] used
    for per-rule firing counters ([rule_firings.<label>]); [i] is the
    rule's position in the program. *)
val rule_label : int -> Ast.rule -> string

(** [consequences prepared inst ~dom] computes all head facts produced by
    firing every rule with every applicable instantiation against [inst]
    (positive heads only — engines handling retraction use
    {!consequences_signed}). The result contains only the derived facts,
    not [inst]. *)
val consequences :
  prepared -> Instance.t -> dom:Value.t list -> Instance.t

(** [consequences_db prepared db ~dom] is {!consequences} against an
    existing (persistent, index-carrying) database view. [neg_db]
    redirects negative-literal checks, as in {!Matcher.run}. *)
val consequences_db :
  ?neg_db:Matcher.Db.t ->
  prepared ->
  Matcher.Db.t ->
  dom:Value.t list ->
  Instance.t

(** [consequences_signed_db] is {!consequences_signed} against an
    existing database view. *)
val consequences_signed_db :
  prepared -> Matcher.Db.t -> dom:Value.t list -> Instance.t * Instance.t

(** [consequences_signed prepared inst ~dom] returns
    [(asserted, retracted)] instances: facts from positive and negative
    head literals respectively. A ⊥ head raises [Invalid_argument] (the
    deterministic engines reject it at check time). *)
val consequences_signed :
  prepared -> Instance.t -> dom:Value.t list -> Instance.t * Instance.t

(** [seminaive_fixpoint prepared ~delta_preds ~dom inst] computes the
    inflationary fixpoint of the rule set from [inst] using delta
    iteration: stage 1 evaluates every rule in full; stage [k+1]
    re-evaluates only rules with a positive body occurrence of a
    [delta_preds] predicate, restricted to the facts newly derived at
    stage [k]. Negative literals are checked against the instance of the
    previous stage, which equals the current one within a stage —
    this is exact for (a) one stratum of a stratified program (negated
    predicates are fixed) and (b) inflationary Datalog¬ (facts never
    retract, so a body satisfied now but not before must use a delta
    fact). Returns the fixpoint and the number of stages (applications of
    the immediate-consequence operator, i.e. the paper's "stages").

    One {!Matcher.Db} is created for the whole run and fed each stage's
    delta via {!Matcher.Db.absorb} — indexes persist across rounds.

    [neg_db]: check negative literals against this fixed database instead
    of the growing one — makes the fixpoint the Gelfond–Lifschitz
    operator A(J) used by the well-founded and stable-model engines.

    [trace]: when enabled, each application of Γ is wrapped in a ["round"]
    span whose close field [delta] is the number of facts it produced
    (round [0] is the initial full evaluation), and the counters
    [fixpoint.rounds], [fixpoint.delta_max], [fixpoint.delta_total],
    [fixpoint.tuples_derived], [fixpoint.tuples_deduped] and
    [rule_firings.<label>] are maintained.

    When the global {!Parallel.Pool} is available (jobs > 1 and not held
    by an enclosing fixpoint), each round's firing work is partitioned
    across the pool's domains — per rule on round 0, per (rule,
    delta-pred, delta-slice) afterwards — with worker-private buffers
    merged and deduplicated at the round barrier. The round structure is
    preserved, so the returned instance and stage count are identical to
    a sequential run; the counters [par.domains] (gauge), [par.tasks]
    and [par.merge_ms] record the parallel execution, and worker-side
    counters are folded in at the end (their totals may legitimately
    differ from a sequential run, e.g. when two workers both derive a
    fact the merge then dedups). *)
val seminaive_fixpoint :
  ?trace:Observe.Trace.ctx ->
  ?neg_db:Matcher.Db.t ->
  prepared ->
  delta_preds:string list ->
  dom:Value.t list ->
  Instance.t ->
  Instance.t * int

(** [seminaive_fixpoint_db] is {!seminaive_fixpoint} against an existing
    {!Matcher.Db} — the db keeps its indexes and membership sets, and
    the fixpoint's derived facts are absorbed into it, so a long-lived
    caller (a {!Magic} query session) pays index construction once and
    each later fixpoint re-derives nothing it already holds. *)
val seminaive_fixpoint_db :
  ?trace:Observe.Trace.ctx ->
  ?neg_db:Matcher.Db.t ->
  prepared ->
  delta_preds:string list ->
  dom:Value.t list ->
  Matcher.Db.t ->
  Instance.t * int

(** [naive_fixpoint prepared ~dom inst] is the same fixpoint computed by
    full re-evaluation at every stage — the reference strategy. [trace]
    records the same ["round"] spans and [fixpoint.*] counters as
    {!seminaive_fixpoint}. *)
val naive_fixpoint :
  ?trace:Observe.Trace.ctx ->
  prepared ->
  dom:Value.t list ->
  Instance.t ->
  Instance.t * int

(** [stage_trace prepared ~dom inst] returns the full stage sequence
    [K ⊆ Γ(K) ⊆ Γ²(K) ⊆ ...] up to and including the fixpoint — stage
    numbers are meaningful to programs like Example 4.1's [closer]. *)
val stage_trace :
  prepared -> dom:Value.t list -> Instance.t -> Instance.t list

(** Result bookkeeping common to all engines. *)
type stats = {
  stages : int;  (** number of applications of the consequence operator *)
  facts_inferred : int;  (** facts in the final idb *)
}

(** [restrict_idb program inst] keeps only the idb relations of the
    program — the paper's image/answer of [P] on [I]. *)
val restrict_idb : Ast.program -> Instance.t -> Instance.t
