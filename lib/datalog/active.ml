open Relational

type event = On_insert of Ast.atom | On_delete of Ast.atom
type action = Insert of Ast.atom | Delete of Ast.atom
type mode = Immediate | Deferred

type rule = {
  name : string;
  event : event;
  condition : Ast.blit list;
  actions : action list;
  mode : mode;
}

type update = Ins of string * Tuple.t | Del of string * Tuple.t

type log_entry = {
  rule_name : string option;
  update : update;
  applied : bool;
}

type result = { instance : Instance.t; log : log_entry list; steps : int }

exception Cascade_limit of int

(* unify an event pattern against a concrete tuple *)
let match_event pattern (pred, tup) =
  let a = match pattern with On_insert a | On_delete a -> a in
  if a.Ast.pred <> pred || List.length a.Ast.args <> Tuple.arity tup then None
  else
    let rec go subst i = function
      | [] -> Some subst
      | Ast.Cst v :: rest ->
          if Value.equal v (Tuple.get tup i) then go subst (i + 1) rest
          else None
      | Ast.Var x :: rest -> (
          let v = Tuple.get tup i in
          match List.assoc_opt x subst with
          | Some w -> if Value.equal v w then go subst (i + 1) rest else None
          | None -> go ((x, v) :: subst) (i + 1) rest)
    in
    go [] 0 a.Ast.args

let subst_term subst = function
  | Ast.Var x as t -> (
      match List.assoc_opt x subst with
      | Some v -> Ast.Cst v
      | None -> t)
  | t -> t

let subst_atom subst a =
  { a with Ast.args = List.map (subst_term subst) a.Ast.args }

let subst_blit subst = function
  | Ast.BPos a -> Ast.BPos (subst_atom subst a)
  | Ast.BNeg a -> Ast.BNeg (subst_atom subst a)
  | Ast.BEq (s, t) -> Ast.BEq (subst_term subst s, subst_term subst t)
  | Ast.BNeq (s, t) -> Ast.BNeq (subst_term subst s, subst_term subst t)

(* evaluate a condition (with the event substitution already applied)
   against the current database, returning all extensions *)
let condition_matches db dom blits =
  let rule =
    { Ast.head = [ Ast.HPos (Ast.atom "trig__" []) ]; body = blits; forall = [] }
  in
  let plan = Matcher.prepare rule in
  Matcher.run ~dom plan db

let run ?(max_steps = 10_000) ?(trace = Observe.Trace.null) rules inst
    transaction =
  let log = ref [] in
  let steps = ref 0 in
  let tracing = Observe.Trace.enabled trace in
  (* one persistent database for the whole transaction: inserts and
     deletes maintain the memoized indexes in place *)
  let state = Matcher.Db.of_instance ~trace inst in
  (* deferred queue of (rule, grounded actions) *)
  let deferred : (string * update list) Queue.t = Queue.create () in
  let dom () =
    (* active domain of the current state plus rule constants *)
    let module VSet = Set.Make (Value) in
    let consts =
      List.concat_map
        (fun r ->
          let atoms =
            (match r.event with On_insert a | On_delete a -> [ a ])
            @ List.filter_map
                (function
                  | Ast.BPos a | Ast.BNeg a -> Some a
                  | _ -> None)
                r.condition
          in
          List.concat_map
            (fun a ->
              List.filter_map
                (function Ast.Cst v -> Some v | Ast.Var _ -> None)
                a.Ast.args)
            atoms)
        rules
    in
    VSet.elements
      (VSet.union
         (VSet.of_list (Instance.adom (Matcher.Db.instance state)))
         (VSet.of_list consts))
  in
  let ground_actions rule_name subst actions =
    List.map
      (fun act ->
        match act with
        | Insert a ->
            let p, t = Ast.ground_atom subst a in
            Ins (p, t)
        | Delete a ->
            let p, t = Ast.ground_atom subst a in
            Del (p, t))
      actions
    |> fun us -> (rule_name, us)
  in
  (* apply one update; if it changes the state, trigger matching rules *)
  let rec apply_update rule_name u =
    let changed =
      match u with
      | Ins (p, t) -> Matcher.Db.insert state p t
      | Del (p, t) -> Matcher.Db.remove state p t
    in
    log := { rule_name; update = u; applied = changed } :: !log;
    if tracing then
      Observe.Trace.incr trace
        (if changed then "active.updates_applied" else "active.updates_noop");
    if changed then (
      incr steps;
      if !steps > max_steps then raise (Cascade_limit max_steps);
      trigger u)
  and trigger u =
    List.iter
      (fun r ->
        let relevant =
          match (r.event, u) with
          | On_insert _, Ins (p, t) | On_delete _, Del (p, t) ->
              match_event r.event (p, t)
          | _ -> None
        in
        match relevant with
        | None -> ()
        | Some ev_subst ->
            let cond = List.map (subst_blit ev_subst) r.condition in
            let extensions = condition_matches state (dom ()) cond in
            if tracing then
              Observe.Trace.add trace
                ("active.triggers." ^ r.name)
                (List.length extensions);
            List.iter
              (fun ext ->
                let full = ext @ ev_subst in
                let name, updates = ground_actions (Some r.name) full r.actions in
                match r.mode with
                | Immediate ->
                    List.iter (apply_update name) updates
                | Deferred ->
                    Queue.add
                      ((match name with Some n -> n | None -> r.name), updates)
                      deferred)
              extensions)
      rules
  in
  (* 1. the transaction's own updates, with immediate cascading *)
  List.iter (fun u -> apply_update None u) transaction;
  (* 2. deferred processing until quiescence *)
  while not (Queue.is_empty deferred) do
    let name, updates = Queue.pop deferred in
    List.iter (fun u -> apply_update (Some name) u) updates
  done;
  { instance = Matcher.Db.instance state; log = List.rev !log; steps = !steps }
