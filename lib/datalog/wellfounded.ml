open Relational

type truth = True | False | Unknown

type result = {
  true_facts : Instance.t;
  possible : Instance.t;
  rounds : int;
}

(* A(J): least fixpoint of the rules with negatives checked against the
   fixed context J, positives against the growing instance, starting from
   the input. Semi-naive iteration is sound here because within one A
   computation the negation context never changes — so each A(J) runs as
   a delta fixpoint over one persistent database. *)
let gl_operator ?(trace = Observe.Trace.null) prepared delta_preds dom inst
    context =
  let neg_db = Matcher.Db.of_instance context in
  fst
    (Eval_util.seminaive_fixpoint ~trace ~neg_db prepared ~delta_preds ~dom
       inst)

let sequence ?(trace = Observe.Trace.null) p inst =
  Ast.check_datalog_neg p;
  let dom = Eval_util.program_dom p inst in
  let prepared = Eval_util.prepare p in
  let tracing = Observe.Trace.enabled trace in
  (* One alternating round = two applications of A: the first refines the
     overestimate, the second the underestimate. Each is a "phase" span. *)
  let a phase round context =
    if tracing then
      Observe.Trace.open_span trace ~kind:"phase"
        (Printf.sprintf "%s.%d" phase round);
    let r = gl_operator ~trace prepared (Ast.idb p) dom inst context in
    if tracing then
      Observe.Trace.close_span trace
        ~fields:[ Observe.Trace.fint "facts" (Instance.total_facts r) ]
        ();
    r
  in
  let rec loop under acc round =
    let over = a "over" round under in
    let under' = a "under" round over in
    if tracing then Observe.Trace.incr trace "wf.rounds";
    let acc = (under', over) :: acc in
    if Instance.equal under' under then List.rev acc
    else loop under' acc (round + 1)
  in
  loop inst [] 1

let alternating_sequence = sequence

let eval ?trace p inst =
  let seq = sequence ?trace p inst in
  let true_facts, possible = List.nth seq (List.length seq - 1) in
  { true_facts; possible; rounds = List.length seq }

let truth_of res pred tup =
  if Instance.mem_fact pred tup res.true_facts then True
  else if Instance.mem_fact pred tup res.possible then Unknown
  else False

let unknown res = Instance.diff res.possible res.true_facts
let is_total res = Instance.equal res.true_facts res.possible

let answer ?trace p inst pred =
  Instance.find pred (eval ?trace p inst).true_facts
