open Relational

type truth = True | False | Unknown

type result = {
  true_facts : Instance.t;
  possible : Instance.t;
  rounds : int;
}

(* A(J): least fixpoint of the rules with negatives checked against the
   fixed context J, positives against the growing instance, starting from
   the input. Semi-naive iteration is sound here because within one A
   computation the negation context never changes — so each A(J) runs as
   a delta fixpoint over one persistent database. *)
let gl_operator prepared delta_preds dom inst context =
  let neg_db = Matcher.Db.of_instance context in
  fst (Eval_util.seminaive_fixpoint ~neg_db prepared ~delta_preds ~dom inst)

let sequence p inst =
  Ast.check_datalog_neg p;
  let dom = Eval_util.program_dom p inst in
  let prepared = Eval_util.prepare p in
  let a = gl_operator prepared (Ast.idb p) dom inst in
  let rec loop under acc =
    let over = a under in
    let under' = a over in
    let acc = (under', over) :: acc in
    if Instance.equal under' under then List.rev acc
    else loop under' acc
  in
  loop inst []

let alternating_sequence = sequence

let eval p inst =
  let seq = sequence p inst in
  let true_facts, possible = List.nth seq (List.length seq - 1) in
  { true_facts; possible; rounds = List.length seq }

let truth_of res pred tup =
  if Instance.mem_fact pred tup res.true_facts then True
  else if Instance.mem_fact pred tup res.possible then Unknown
  else False

let unknown res = Instance.diff res.possible res.true_facts
let is_total res = Instance.equal res.true_facts res.possible
let answer p inst pred = Instance.find pred (eval p inst).true_facts
