(** Naive bottom-up evaluation of pure Datalog (§3.1).

    Computes the minimum model of [Σ_P] extending the input by iterating
    the immediate-consequence operator from the input until fixpoint,
    re-deriving everything at every stage. The reference engine — slow but
    obviously correct; {!Seminaive} must agree with it (tested by
    property). *)

open Relational

type result = {
  instance : Instance.t;  (** the minimum model: edb ∪ idb facts *)
  stages : int;  (** fixpoint stages (applications of Γ_P) *)
}

(** [eval p inst] runs [p] on [inst]. [trace] receives one round span per
    Γ application and the [fixpoint.*] counters.
    @raise Ast.Check_error if [p] is not pure Datalog (negation,
    multi-heads, ⊥, ∀ or arity inconsistencies). *)
val eval : ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> result

(** [answer p inst pred] is the relation computed for [pred]. *)
val answer :
  ?trace:Observe.Trace.ctx -> Ast.program -> Instance.t -> string -> Relation.t
