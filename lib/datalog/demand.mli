(** Demand-driven compilation: magic sets lowered to Algebra plans, with
    a subsumptive demand cache (§6's goal-directed line meeting the
    compiled-kernel line).

    {!Magic.rewrite} adorns the program left-to-right and guards every
    rule with its magic predicate; this module lowers each rewritten
    rule through the safe-range compiler {!Fo.compile} — the same plan
    compiler the fixpoint logic uses — keeping the guard first so the
    compiled join radiates out from the (small) demand relation: magic
    guards become semijoins, bound-position constants become packed-key
    index probes. A semi-naive fixpoint then runs the plans, one delta
    derivative per idb body occurrence, until quiescence.

    Plans depend only on (program, predicate, adornment) — the query's
    constants live in the magic seed fact alone — and are memoized in
    the {!Cache}. On top, answered demand patterns
    (predicate, adornment, bound values) are recorded with their answer
    relations: a query whose demand is {e subsumed} by a cached pattern
    (every cached bound position bound to the same value) is served by
    filtering the cached answers, without touching the fixpoint.

    Counters ([trace]): [demand.plan.compiled] / [demand.plan.hits]
    (plan memo), [demand.cache.hits] / [demand.cache.misses] (answer
    cache), [demand.evictions] (either table), [demand.rounds] and
    [demand.tuples_derived] (fixpoint work on a miss). Benchmark E18
    measures the speedup over full materialization (E8's magic-set
    measurement, re-based onto compiled plans). *)

open Relational

(** A bounded memo of compiled plans and answered demand patterns.
    Both tables evict least-recently-used entries at their cap
    ([demand.evictions] counts both), so a long-lived process — the
    future [serve] mode — can keep one cache hot without unbounded
    growth. Answers are flushed whenever the (program, instance) pair
    changes (physical instance equality); plans are instance-independent
    and keyed by program, so they survive the flush. Thread-safe. *)
module Cache : sig
  type t

  (** [create ()] — [plan_cap] bounds compiled plan sets per
      (program, predicate, adornment) (default 256), [answer_cap] the
      recorded demand patterns (default 512).
      @raise Invalid_argument if either cap is < 1. *)
  val create : ?plan_cap:int -> ?answer_cap:int -> unit -> t
end

(** [answer p inst query] evaluates [query] demand-driven and returns
    the tuples of the query's predicate matching the query's constants
    and repeated variables — byte-identical to filtering the full
    semi-naive fixpoint, and to {!Magic.answer}. [cache] (default: a
    fresh cache) carries plans and answered patterns across calls.
    [profile] is threaded into every plan execution
    ({!Fo.run_plan}), so one profile accumulates per-operator row and
    time statistics across all of the query's rule plans — pair it with
    {!plans} to render an annotated EXPLAIN tree.
    @raise Ast.Check_error if [p] is not pure Datalog or the query's
    predicate is not idb. *)
val answer :
  ?trace:Observe.Trace.ctx ->
  ?cache:Cache.t ->
  ?profile:Algebra.profile ->
  Ast.program ->
  Instance.t ->
  Ast.atom ->
  Relation.t

(** One compiled plan of the magic-rewritten program: [pi_head] is the
    rewritten rule's head predicate — adorned ([T__bf]) or magic
    ([magic_T__bf]) — and [pi_role] is ["full"] (the whole body, run in
    round 0) or ["delta:<pred>"] (the semi-naive derivative seeded by
    that predicate's round delta). *)
type plan_info = { pi_head : string; pi_role : string; pi_plan : Fo.plan }

(** [plans p query] lists the compiled rule plans for [query]'s
    (program, predicate, adornment), in rewriting order. With the same
    [cache] as a preceding {!answer} call this returns the {e same}
    (memoized) plans that call executed, so a profile recorded there
    annotates these plan trees (profiles key on physical identity). *)
val plans :
  ?trace:Observe.Trace.ctx ->
  ?cache:Cache.t ->
  Ast.program ->
  Ast.atom ->
  plan_info list
