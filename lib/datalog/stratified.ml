open Relational

exception Not_stratifiable of string

type result = { instance : Instance.t; strata : int; stages : int }

let eval ?(trace = Observe.Trace.null) p inst =
  match Stratify.stratify p with
  | Error msg -> raise (Not_stratifiable msg)
  | Ok { strata; _ } ->
      (* adom(P, K) is shared by all strata: no stratum can invent
         values, so the domain is fixed up front. *)
      let dom = Eval_util.program_dom p inst in
      let tracing = Observe.Trace.enabled trace in
      let instance, stages, _ =
        List.fold_left
          (fun (current, stages, i) stratum ->
            match stratum with
            | [] -> (current, stages, i + 1)
            | _ ->
                if tracing then
                  Observe.Trace.open_span trace ~kind:"stratum"
                    (string_of_int i)
                    ~fields:
                      [ Observe.Trace.fint "rules" (List.length stratum) ];
                let prepared = Eval_util.prepare stratum in
                let next, s =
                  Eval_util.seminaive_fixpoint ~trace prepared
                    ~delta_preds:(Ast.idb stratum) ~dom current
                in
                if tracing then
                  Observe.Trace.close_span trace
                    ~fields:
                      [
                        Observe.Trace.fint "stages" s;
                        Observe.Trace.fint "facts"
                          (Instance.total_facts next);
                      ]
                    ();
                (next, stages + s, i + 1))
          (inst, 0, 0) strata
      in
      { instance; strata = List.length strata; stages }

let answer ?trace p inst pred = Instance.find pred (eval ?trace p inst).instance
