open Relational

exception Not_stratifiable of string

type result = { instance : Instance.t; strata : int; stages : int }

(* Stratified rules are single-headed (checked by Stratify). *)
let head_pred r =
  match r.Ast.head with
  | [ h ] -> (
      match Ast.atom_of_hlit h with
      | Some a -> a.Ast.pred
      | None -> assert false)
  | _ -> assert false

(* --- SCC waves ------------------------------------------------------- *)

(* Within one stratum, rules from different SCCs of the dependency graph
   never feed each other except acyclically (a cycle is one SCC, and
   cross-SCC edges inside a stratum are positive — a negative edge would
   have pushed the head into a later stratum). The least fixpoint of the
   stratum therefore decomposes along the component DAG: group the
   stratum's rules by head component, layer the groups into waves
   (every group's dependencies live in strictly earlier waves or earlier
   strata), and evaluate the groups of one wave independently — each
   from the same input instance — merging their answers at the wave
   boundary. Groups of one wave share no derived predicate, so the merge
   is a disjoint union and the result is the stratum's fixpoint exactly.

   [waves stratum] returns the groups in deterministic order: waves
   lowest first, groups within a wave by component index (a topological
   position, fixed by the program text, not by scheduling). *)
let waves comp_of edges stratum =
  let groups : (int, Ast.rule list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let c = try Hashtbl.find comp_of (head_pred r) with Not_found -> -1 in
      match Hashtbl.find_opt groups c with
      | Some l -> l := r :: !l
      | None -> Hashtbl.add groups c (ref [ r ]))
    stratum;
  if Hashtbl.length groups <= 1 then None
  else
    let gids =
      List.sort Int.compare (Hashtbl.fold (fun c _ acc -> c :: acc) groups [])
    in
    (* cross-component dependencies restricted to this stratum's groups *)
    let deps : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun { Depgraph.src; dst; _ } ->
        match (Hashtbl.find_opt comp_of src, Hashtbl.find_opt comp_of dst) with
        | Some cs, Some cd
          when cs <> cd && Hashtbl.mem groups cs && Hashtbl.mem groups cd -> (
            match Hashtbl.find_opt deps cd with
            | Some l -> if not (List.mem cs !l) then l := cs :: !l
            | None -> Hashtbl.add deps cd (ref [ cs ]))
        | _ -> ())
      edges;
    (* longest-path layering over the component DAG: components arrive
       in topological order (Depgraph.sccs is dependencies-first), so
       each group's dependencies are already placed *)
    let wave_of : (int, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun g ->
        let w =
          match Hashtbl.find_opt deps g with
          | None -> 0
          | Some ds ->
              List.fold_left
                (fun acc d ->
                  match Hashtbl.find_opt wave_of d with
                  | Some wd -> max acc (wd + 1)
                  | None -> acc)
                0 !ds
        in
        Hashtbl.add wave_of g w)
      gids;
    let nwaves = 1 + List.fold_left (fun a g -> max a (Hashtbl.find wave_of g)) 0 gids in
    let buckets = Array.make nwaves [] in
    List.iter
      (fun g ->
        let w = Hashtbl.find wave_of g in
        buckets.(w) <- List.rev !(Hashtbl.find groups g) :: buckets.(w))
      (List.rev gids);
    let ws = Array.to_list buckets in
    (* a chain of singleton waves has no independence to exploit: stay
       on the joint path, whose trace output matches a sequential run *)
    if List.for_all (fun w -> List.length w = 1) ws then None else Some ws

(* Evaluate one wave's groups from the same input instance and merge
   their (disjoint) derived predicates in group order. With more than
   one group and the global pool free, groups run on separate domains:
   each worker builds a private Db over the shared persistent input —
   nested fixpoints find the pool busy and stay sequential. *)
let eval_wave ~trace ~dom current groups =
  match groups with
  | [ rules ] ->
      let prepared = Eval_util.prepare rules in
      Eval_util.seminaive_fixpoint ~trace prepared
        ~delta_preds:(Ast.idb rules) ~dom current
  | _ ->
      let tracing = Observe.Trace.enabled trace in
      let arr = Array.of_list groups in
      let n = Array.length arr in
      let ctxs =
        Array.init n (fun _ ->
            if tracing then Observe.Trace.make ~sinks:[] ()
            else Observe.Trace.null)
      in
      let outs = Array.make n None in
      let work i =
        let rules = arr.(i) in
        let prepared = Eval_util.prepare rules in
        outs.(i) <-
          Some
            (Eval_util.seminaive_fixpoint ~trace:ctxs.(i) prepared
               ~delta_preds:(Ast.idb rules) ~dom current)
      in
      (match Parallel.Pool.acquire () with
      | Some pool ->
          Fun.protect
            ~finally:(fun () -> Parallel.Pool.release pool)
            (fun () ->
              let nw = Parallel.Pool.size pool in
              Parallel.Pool.run pool (fun w ->
                  let i = ref w in
                  while !i < n do
                    work !i;
                    i := !i + nw
                  done))
      | None ->
          if Parallel.Pool.jobs () > 1 then
            Observe.Trace.incr trace "par.pool.fallbacks";
          for i = 0 to n - 1 do
            work i
          done);
      let next, stages =
        Array.to_list (Array.mapi (fun i o -> (arr.(i), Option.get o)) outs)
        |> List.fold_left
             (fun (acc, st) (rules, (out, s)) ->
               ( Instance.union acc (Instance.restrict (Ast.idb rules) out),
                 st + s ))
             (current, 0)
      in
      if tracing then
        Array.iter (fun c -> Observe.Trace.merge_counters trace c) ctxs;
      (next, stages)

let eval ?(trace = Observe.Trace.null) p inst =
  match Stratify.stratify p with
  | Error msg -> raise (Not_stratifiable msg)
  | Ok { strata; _ } ->
      (* adom(P, K) is shared by all strata: no stratum can invent
         values, so the domain is fixed up front. *)
      let dom = Eval_util.program_dom p inst in
      let tracing = Observe.Trace.enabled trace in
      (* SCC machinery for wave scheduling, consulted only when parallel
         evaluation is on; the joint per-stratum path is untouched at
         jobs = 1 so sequential runs are bit-for-bit what they were *)
      let wave_plan =
        if Parallel.Pool.jobs () > 1 then (
          let comp_of : (string, int) Hashtbl.t = Hashtbl.create 32 in
          List.iteri
            (fun i comp -> List.iter (fun q -> Hashtbl.add comp_of q i) comp)
            (Depgraph.sccs p);
          let edges = Depgraph.edges p in
          fun stratum -> waves comp_of edges stratum)
        else fun _ -> None
      in
      let instance, stages, _ =
        List.fold_left
          (fun (current, stages, i) stratum ->
            match stratum with
            | [] -> (current, stages, i + 1)
            | _ ->
                if tracing then
                  Observe.Trace.open_span trace ~kind:"stratum"
                    (string_of_int i)
                    ~fields:
                      [ Observe.Trace.fint "rules" (List.length stratum) ];
                let next, s =
                  match wave_plan stratum with
                  | Some ws ->
                      if tracing then
                        Observe.Trace.add trace "par.waves" (List.length ws);
                      List.fold_left
                        (fun (cur, st) groups ->
                          let cur', s = eval_wave ~trace ~dom cur groups in
                          (cur', st + s))
                        (current, 0) ws
                  | None ->
                      let prepared = Eval_util.prepare stratum in
                      Eval_util.seminaive_fixpoint ~trace prepared
                        ~delta_preds:(Ast.idb stratum) ~dom current
                in
                if tracing then
                  Observe.Trace.close_span trace
                    ~fields:
                      [
                        Observe.Trace.fint "stages" s;
                        Observe.Trace.fint "facts"
                          (Instance.total_facts next);
                      ]
                    ();
                (next, stages + s, i + 1))
          (inst, 0, 0) strata
      in
      { instance; strata = List.length strata; stages }

let answer ?trace p inst pred = Instance.find pred (eval ?trace p inst).instance
