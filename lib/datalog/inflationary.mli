(** Inflationary (forward chaining) Datalog¬ — §4.1 of the paper.

    Rules are fired in parallel with all applicable instantiations, and the
    inferred facts are {e added} to the instance; a negative literal [¬A]
    is true iff [A] has not been inferred {e so far}. The sequence
    [K ⊆ Γ_P(K) ⊆ Γ²_P(K) ⊆ ...] reaches its fixpoint [Γ^ω_P(K)] in
    polynomially many stages. Theorem 4.2: this language expresses exactly
    the fixpoint queries. *)

open Relational

type strategy =
  | Naive_loop  (** recompute all consequences each stage *)
  | Delta_loop
      (** semi-naive deltas — exact for inflationary semantics because
          facts never retract (see {!Eval_util.seminaive_fixpoint}) *)

type result = {
  instance : Instance.t;  (** [Γ^ω_P(I)], the full instance *)
  stages : int;  (** stages that inferred new facts *)
}

(** [eval ?strategy p inst] (default {!Delta_loop}). [trace] receives the
    round spans and [fixpoint.*] counters of the chosen strategy.
    @raise Ast.Check_error if [p] is not Datalog¬ syntax. *)
val eval :
  ?strategy:strategy ->
  ?trace:Observe.Trace.ctx ->
  Ast.program ->
  Instance.t ->
  result

(** [trace p inst] returns the stage sequence
    [[K; Γ(K); Γ²(K); ...; Γ^ω(K)]] — stage numbers carry meaning for
    programs like Example 4.1's [closer]. *)
val trace : Ast.program -> Instance.t -> Instance.t list

val answer :
  ?strategy:strategy ->
  ?trace:Observe.Trace.ctx ->
  Ast.program ->
  Instance.t ->
  string ->
  Relation.t
