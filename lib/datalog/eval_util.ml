open Relational

let program_dom p inst =
  let module VSet = Set.Make (Value) in
  VSet.elements
    (VSet.union
       (VSet.of_list (Ast.adom p))
       (VSet.of_list (Instance.adom inst)))

type prepared = (Ast.rule * Matcher.prepared) list

let prepare p = List.map (fun r -> (r, Matcher.prepare r)) p
let rules p = p

(* Stable per-rule counter label: position in the prepared program plus
   the head predicate(s) — "r3:T". Firing counters are reported as
   "rule_firings.<label>". *)
let rule_label i (rule : Ast.rule) =
  let heads =
    String.concat "+"
      (List.sort_uniq String.compare
         (List.filter_map
            (fun h -> Option.map (fun a -> a.Ast.pred) (Ast.atom_of_hlit h))
            rule.Ast.head))
  in
  Printf.sprintf "r%d:%s" i heads

let count_firings db label substs =
  let tr = Matcher.Db.trace db in
  if Observe.Trace.enabled tr then
    Observe.Trace.add tr ("rule_firings." ^ label) (List.length substs)

let fire_rule ?delta ?neg_db ?label db dom (rule, plan) k =
  let substs = Matcher.run ?delta ~dom ?neg_db plan db in
  (match label with Some l -> count_firings db l substs | None -> ());
  List.iter
    (fun subst ->
      let _bottom, facts = Matcher.instantiate_heads subst rule.Ast.head in
      List.iter (fun f -> k f) facts)
    substs

let consequences_db ?neg_db prepared db ~dom =
  let out = ref Instance.empty in
  List.iteri
    (fun i ((rule, _) as rp) ->
      fire_rule ?neg_db ~label:(rule_label i rule) db dom rp
        (fun (pos, pred, tup) ->
          if pos then out := Instance.add_fact pred tup !out
          else
            invalid_arg
              "Eval_util.consequences: negative head (use consequences_signed)"))
    prepared;
  !out

let consequences prepared inst ~dom =
  consequences_db prepared (Matcher.Db.of_instance inst) ~dom

let consequences_signed_db prepared db ~dom =
  let pos = ref Instance.empty and neg = ref Instance.empty in
  List.iteri
    (fun i ((rule, _) as rp) ->
      fire_rule ~label:(rule_label i rule) db dom rp (fun (p, pred, tup) ->
          if p then pos := Instance.add_fact pred tup !pos
          else neg := Instance.add_fact pred tup !neg))
    prepared;
  (!pos, !neg)

let consequences_signed prepared inst ~dom =
  consequences_signed_db prepared (Matcher.Db.of_instance inst) ~dom

let seminaive_fixpoint ?(trace = Observe.Trace.null) ?neg_db prepared
    ~delta_preds ~dom inst =
  (* One Db for the whole fixpoint: each stage feeds its delta back with
     [Db.absorb], so join indexes are built once and extended
     incrementally instead of being rebuilt from the full instance. *)
  let db = Matcher.Db.of_instance ~trace inst in
  let tracing = Observe.Trace.enabled trace in
  (* per-rule delta predicates, computed once *)
  let with_dps =
    List.mapi
      (fun i (rule, plan) ->
        let dps =
          List.sort_uniq String.compare
            (List.filter_map
               (function
                 | Ast.BPos a when List.mem a.Ast.pred delta_preds ->
                     Some a.Ast.pred
                 | _ -> None)
               rule.Ast.body)
        in
        (rule, plan, dps, rule_label i rule))
      prepared
  in
  let collect_fresh rule substs acc =
    List.fold_left
      (fun acc subst ->
        let _, facts = Matcher.instantiate_heads subst rule.Ast.head in
        List.fold_left
          (fun acc (pos, p, t) ->
            if pos then
              if Matcher.Db.mem db p t then (
                if tracing then
                  Observe.Trace.incr trace "fixpoint.tuples_deduped";
                acc)
              else (
                if tracing then
                  Observe.Trace.incr trace "fixpoint.tuples_derived";
                Instance.add_fact p t acc)
            else acc)
          acc facts)
      acc substs
  in
  (* Each application of Γ is one "round" span; its close records the
     delta it produced (round 0 = the initial full evaluation). *)
  let round_no = ref 0 in
  let open_round () =
    if tracing then (
      Observe.Trace.open_span trace ~kind:"round" (string_of_int !round_no);
      Stdlib.incr round_no)
  in
  let close_round delta =
    if tracing then (
      let d = Instance.total_facts delta in
      Observe.Trace.incr trace "fixpoint.rounds";
      Observe.Trace.gauge_max trace "fixpoint.delta_max" d;
      Observe.Trace.add trace "fixpoint.delta_total" d;
      Observe.Trace.close_span trace
        ~fields:[ Observe.Trace.fint "delta" d ]
        ())
  in
  (* stage 1: full evaluation; the facts not already present form Δ⁰ *)
  open_round ();
  let delta0 =
    List.fold_left
      (fun acc (rule, plan, _, label) ->
        let substs = Matcher.run ?neg_db ~dom plan db in
        if tracing then count_firings db label substs;
        collect_fresh rule substs acc)
      Instance.empty with_dps
  in
  close_round delta0;
  (* [stages] counts the applications of Γ that inferred new facts, to
     agree with the naive engine's count. *)
  let rec loop delta stages =
    if Instance.total_facts delta = 0 then (Matcher.Db.instance db, stages)
    else (
      open_round ();
      Matcher.Db.absorb db delta;
      let fresh =
        List.fold_left
          (fun acc (rule, plan, dps, label) ->
            List.fold_left
              (fun acc pred ->
                let drel = Instance.find pred delta in
                if Relation.is_empty drel then acc
                else
                  let substs =
                    Matcher.run ~delta:(pred, drel) ?neg_db ~dom plan db
                  in
                  if tracing then count_firings db label substs;
                  collect_fresh rule substs acc)
              acc dps)
          Instance.empty with_dps
      in
      close_round fresh;
      loop fresh (stages + 1))
  in
  loop delta0 0

let naive_fixpoint ?(trace = Observe.Trace.null) prepared ~dom inst =
  let tracing = Observe.Trace.enabled trace in
  let rec loop current stages =
    if tracing then
      Observe.Trace.open_span trace ~kind:"round" (string_of_int stages);
    let db = Matcher.Db.of_instance ~trace current in
    let derived = consequences_db prepared db ~dom in
    let next = Instance.union current derived in
    if tracing then (
      let d = Instance.total_facts next - Instance.total_facts current in
      Observe.Trace.incr trace "fixpoint.rounds";
      Observe.Trace.gauge_max trace "fixpoint.delta_max" d;
      Observe.Trace.add trace "fixpoint.delta_total" d;
      Observe.Trace.close_span trace
        ~fields:[ Observe.Trace.fint "delta" d ]
        ());
    if Instance.equal next current then (current, stages)
    else loop next (stages + 1)
  in
  loop inst 0

let stage_trace prepared ~dom inst =
  let db = Matcher.Db.of_instance inst in
  let rec loop acc =
    let current = Matcher.Db.instance db in
    let derived = consequences_db prepared db ~dom in
    if Instance.subset derived current then List.rev (current :: acc)
    else (
      Matcher.Db.absorb db derived;
      loop (current :: acc))
  in
  loop []

type stats = { stages : int; facts_inferred : int }

let restrict_idb program inst = Instance.restrict (Ast.idb program) inst
