open Relational

let program_dom p inst =
  let module VSet = Set.Make (Value) in
  VSet.elements
    (VSet.union
       (VSet.of_list (Ast.adom p))
       (VSet.of_list (Instance.adom inst)))

type prepared = (Ast.rule * Matcher.prepared) list

let prepare p = List.map (fun r -> (r, Matcher.prepare r)) p
let rules p = p

let fire_rule ?delta ?neg_db db dom (rule, plan) k =
  let substs = Matcher.run ?delta ~dom ?neg_db plan db in
  List.iter
    (fun subst ->
      let _bottom, facts = Matcher.instantiate_heads subst rule.Ast.head in
      List.iter (fun f -> k f) facts)
    substs

let consequences_db ?neg_db prepared db ~dom =
  let out = ref Instance.empty in
  List.iter
    (fun rp ->
      fire_rule ?neg_db db dom rp (fun (pos, pred, tup) ->
          if pos then out := Instance.add_fact pred tup !out
          else
            invalid_arg
              "Eval_util.consequences: negative head (use consequences_signed)"))
    prepared;
  !out

let consequences prepared inst ~dom =
  consequences_db prepared (Matcher.Db.of_instance inst) ~dom

let consequences_signed_db prepared db ~dom =
  let pos = ref Instance.empty and neg = ref Instance.empty in
  List.iter
    (fun rp ->
      fire_rule db dom rp (fun (p, pred, tup) ->
          if p then pos := Instance.add_fact pred tup !pos
          else neg := Instance.add_fact pred tup !neg))
    prepared;
  (!pos, !neg)

let consequences_signed prepared inst ~dom =
  consequences_signed_db prepared (Matcher.Db.of_instance inst) ~dom

let seminaive_fixpoint ?neg_db prepared ~delta_preds ~dom inst =
  (* One Db for the whole fixpoint: each stage feeds its delta back with
     [Db.absorb], so join indexes are built once and extended
     incrementally instead of being rebuilt from the full instance. *)
  let db = Matcher.Db.of_instance inst in
  (* per-rule delta predicates, computed once *)
  let with_dps =
    List.map
      (fun (rule, plan) ->
        let dps =
          List.sort_uniq String.compare
            (List.filter_map
               (function
                 | Ast.BPos a when List.mem a.Ast.pred delta_preds ->
                     Some a.Ast.pred
                 | _ -> None)
               rule.Ast.body)
        in
        (rule, plan, dps))
      prepared
  in
  let collect_fresh rule substs acc =
    List.fold_left
      (fun acc subst ->
        let _, facts = Matcher.instantiate_heads subst rule.Ast.head in
        List.fold_left
          (fun acc (pos, p, t) ->
            if pos && not (Matcher.Db.mem db p t) then
              Instance.add_fact p t acc
            else acc)
          acc facts)
      acc substs
  in
  (* stage 1: full evaluation; the facts not already present form Δ⁰ *)
  let delta0 =
    List.fold_left
      (fun acc (rule, plan, _) ->
        collect_fresh rule (Matcher.run ?neg_db ~dom plan db) acc)
      Instance.empty with_dps
  in
  (* [stages] counts the applications of Γ that inferred new facts, to
     agree with the naive engine's count. *)
  let rec loop delta stages =
    if Instance.total_facts delta = 0 then (Matcher.Db.instance db, stages)
    else (
      Matcher.Db.absorb db delta;
      let fresh =
        List.fold_left
          (fun acc (rule, plan, dps) ->
            List.fold_left
              (fun acc pred ->
                let drel = Instance.find pred delta in
                if Relation.is_empty drel then acc
                else
                  collect_fresh rule
                    (Matcher.run ~delta:(pred, drel) ?neg_db ~dom plan db)
                    acc)
              acc dps)
          Instance.empty with_dps
      in
      loop fresh (stages + 1))
  in
  loop delta0 0

let naive_fixpoint prepared ~dom inst =
  let rec loop current stages =
    let derived = consequences prepared current ~dom in
    let next = Instance.union current derived in
    if Instance.equal next current then (current, stages)
    else loop next (stages + 1)
  in
  loop inst 0

let stage_trace prepared ~dom inst =
  let db = Matcher.Db.of_instance inst in
  let rec loop acc =
    let current = Matcher.Db.instance db in
    let derived = consequences_db prepared db ~dom in
    if Instance.subset derived current then List.rev (current :: acc)
    else (
      Matcher.Db.absorb db derived;
      loop (current :: acc))
  in
  loop []

type stats = { stages : int; facts_inferred : int }

let restrict_idb program inst = Instance.restrict (Ast.idb program) inst
