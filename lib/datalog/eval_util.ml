open Relational

let program_dom p inst =
  let module VSet = Set.Make (Value) in
  VSet.elements
    (VSet.union
       (VSet.of_list (Ast.adom p))
       (VSet.of_list (Instance.adom inst)))

type prepared = (Ast.rule * Matcher.prepared) list

let prepare p = List.map (fun r -> (r, Matcher.prepare r)) p
let rules p = p

(* Stable per-rule counter label: position in the prepared program plus
   the head predicate(s) — "r3:T". Firing counters are reported as
   "rule_firings.<label>". *)
let rule_label i (rule : Ast.rule) =
  let heads =
    String.concat "+"
      (List.sort_uniq String.compare
         (List.filter_map
            (fun h -> Option.map (fun a -> a.Ast.pred) (Ast.atom_of_hlit h))
            rule.Ast.head))
  in
  Printf.sprintf "r%d:%s" i heads

let count_firings db label n =
  let tr = Matcher.Db.trace db in
  if Observe.Trace.enabled tr then
    Observe.Trace.add tr ("rule_firings." ^ label) n

(* Rules reaching this path have passed the safety checks, so every head
   variable is body-bound and the interned firing fast path applies:
   matches ground the compiled head templates directly, with no
   substitution lists and no value decode/re-intern round trip. *)
let fire_rule ?delta ?neg_db ?label db dom (_rule, plan) k =
  let n =
    Matcher.iter_firings ?delta ~dom ?neg_db plan db (fun ~pos pred ids ->
        k (pos, pred, Tuple.of_ids (Array.copy ids)))
  in
  match label with Some l -> count_firings db l n | None -> ()

let consequences_db ?neg_db prepared db ~dom =
  let out = ref Instance.empty in
  List.iteri
    (fun i ((rule, _) as rp) ->
      fire_rule ?neg_db ~label:(rule_label i rule) db dom rp
        (fun (pos, pred, tup) ->
          if pos then out := Instance.add_fact pred tup !out
          else
            invalid_arg
              "Eval_util.consequences: negative head (use consequences_signed)"))
    prepared;
  !out

let consequences prepared inst ~dom =
  consequences_db prepared (Matcher.Db.of_instance inst) ~dom

let consequences_signed_db prepared db ~dom =
  let pos = ref Instance.empty and neg = ref Instance.empty in
  List.iteri
    (fun i ((rule, _) as rp) ->
      fire_rule ~label:(rule_label i rule) db dom rp (fun (p, pred, tup) ->
          if p then pos := Instance.add_fact pred tup !pos
          else neg := Instance.add_fact pred tup !neg))
    prepared;
  (!pos, !neg)

let consequences_signed prepared inst ~dom =
  consequences_signed_db prepared (Matcher.Db.of_instance inst) ~dom

(* Per-rule delta predicates, computed once per fixpoint: the positive
   body predicates that belong to [delta_preds], i.e. the occurrences a
   semi-naive pass can restrict to the previous round's delta. *)
let with_delta_preds prepared delta_preds =
  List.mapi
    (fun i (rule, plan) ->
      let dps =
        List.sort_uniq String.compare
          (List.filter_map
             (function
               | Ast.BPos a when List.mem a.Ast.pred delta_preds ->
                   Some a.Ast.pred
               | _ -> None)
             rule.Ast.body)
      in
      (rule, plan, dps, rule_label i rule))
    prepared

(* Round-fresh accumulator state: per-predicate list of new facts plus a
   flat hash set for within-round dedup. The delta never takes the shape
   of a persistent relation — building one costs a path copy per fact,
   and nothing downstream (indexing, absorbing) needs more than the
   list. The same shape serves as the global accumulator of both
   fixpoint paths and as the worker-private buffers of the parallel
   one. *)
type fresh_tbl = (string, Tuple.t list ref * unit Matcher.IdTbl.t) Hashtbl.t

let pred_state (tbl : fresh_tbl) p =
  match Hashtbl.find_opt tbl p with
  | Some s -> s
  | None ->
      let s = (ref [], Matcher.IdTbl.create 256) in
      Hashtbl.add tbl p s;
      s

(* drain an accumulator into an assoc list (pred-name order, so round
   processing stays deterministic) and reset it for the next round *)
let take_fresh (tbl : fresh_tbl) =
  let per =
    Hashtbl.fold (fun p (lst, _) acc -> (p, List.rev !lst) :: acc) tbl []
  in
  Hashtbl.reset tbl;
  List.sort (fun (a, _) (b, _) -> String.compare a b) per

let total_fresh delta =
  List.fold_left (fun n (_, ts) -> n + List.length ts) 0 delta

(* One Db for the whole fixpoint: each stage feeds its delta back with
   [Db.absorb], so join indexes are built once and extended
   incrementally instead of being rebuilt from the full instance. The db
   is a parameter so long-lived callers (Magic sessions) can thread the
   same database through many fixpoints.

   [initial] skips the round-0 full evaluation and starts the delta loop
   from the given fresh facts (not yet in [db], pairwise distinct) — the
   incremental-insertion entry point of the resident server. *)
let seminaive_seq ~trace ?neg_db ?initial ?on_delta ~with_dps ~dom db =
  let tracing = Observe.Trace.enabled trace in
  let fresh_tbl : fresh_tbl = Hashtbl.create 4 in
  let pred_state p = pred_state fresh_tbl p in
  let take_fresh () = take_fresh fresh_tbl in
  (* one firing pass for a rule: fresh positive consequences accumulate
     into the round accumulator (a set, so the unspecified enumeration
     order of [iter_firings] cannot leak) *)
  let fire_fresh ?delta plan label =
    (* per-predicate cache: consecutive firings of the same head
       predicate (the common case) touch no string-keyed table at all *)
    let cur_p = ref "" in
    let cur_mem = ref None in
    let cur_state = ref None in
    let have = ref false in
    let n =
      Matcher.iter_firings ?delta ?neg_db ~dom plan db (fun ~pos p ids ->
          if pos then (
            if not (!have && String.equal !cur_p p) then (
              have := true;
              cur_p := p;
              cur_mem := Some (Matcher.Db.memset db p);
              cur_state := Some (pred_state p));
            if Matcher.Db.memset_mem (Option.get !cur_mem) ids then (
              if tracing then Observe.Trace.incr trace "fixpoint.tuples_deduped")
            else (
              if tracing then Observe.Trace.incr trace "fixpoint.tuples_derived";
              let lst, seen = Option.get !cur_state in
              if not (Matcher.IdTbl.mem seen ids) then (
                let t = Tuple.of_ids (Array.copy ids) in
                Matcher.IdTbl.replace seen (Tuple.ids t) ();
                lst := t :: !lst))))
    in
    if tracing then count_firings db label n
  in
  (* Each application of Γ is one "round" span; its close records the
     delta it produced (round 0 = the initial full evaluation). *)
  let round_no = ref 0 in
  let open_round () =
    if tracing then (
      Observe.Trace.open_span trace ~kind:"round" (string_of_int !round_no);
      Stdlib.incr round_no)
  in
  let close_round d =
    if tracing then (
      Observe.Trace.incr trace "fixpoint.rounds";
      Observe.Trace.gauge_max trace "fixpoint.delta_max" d;
      Observe.Trace.add trace "fixpoint.delta_total" d;
      Observe.Trace.close_span trace
        ~fields:[ Observe.Trace.fint "delta" d ]
        ())
  in
  (* stage 1: full evaluation (unless a caller-supplied delta replaces
     it); the facts not already present form Δ⁰ *)
  let delta0 =
    match initial with
    | Some d -> d
    | None ->
        open_round ();
        List.iter (fun (_rule, plan, _, label) -> fire_fresh plan label) with_dps;
        let d = take_fresh () in
        close_round (total_fresh d);
        d
  in
  (* [stages] counts the applications of Γ that inferred new facts, to
     agree with the naive engine's count. *)
  let rec loop delta stages =
    if total_fresh delta = 0 then (Matcher.Db.instance db, stages)
    else (
      open_round ();
      (* observers (the counting-maintenance sweep) see each round's
         delta just before it is absorbed, i.e. exactly the facts that
         are new this round *)
      (match on_delta with Some f -> f delta | None -> ());
      List.iter (fun (p, ts) -> Matcher.Db.absorb_new db p ts) delta;
      List.iter
        (fun (_rule, plan, dps, label) ->
          List.iter
            (fun pred ->
              match List.assoc_opt pred delta with
              | None | Some [] -> ()
              | Some dts -> fire_fresh ~delta:(pred, dts) plan label)
            dps)
        with_dps;
      let fresh = take_fresh () in
      close_round (total_fresh fresh);
      loop fresh (stages + 1))
  in
  loop delta0 0

(* Parallel semi-naive rounds. The round structure (and hence the least
   fixpoint, stage count and every instance-visible result) is the same
   as [seminaive_seq]: workers only split the *firing* work inside one
   application of Γ. Each round:

   - the coordinator absorbs the previous delta and cuts the work into
     tasks — one per rule on round 0, one per (rule, delta-pred,
     delta-slice) afterwards, so a two-rule program still spreads a
     large delta over every domain;
   - workers fire tasks against read-only views of the shared database
     ([Matcher.prewarm] ran every lazy build up front), deduplicate
     against the frozen membership sets, and push fresh facts into
     worker-private accumulators;
   - at the barrier the coordinator folds the private buffers into the
     round accumulator in worker order, dropping cross-worker
     duplicates with one flat hash set per predicate.

   Correctness of slicing: a semi-naive pass is a union over matches
   with the delta atom ranging over the delta list and every other atom
   over the full (already absorbed) database, so a union over slices of
   the delta list is the same set of matches; duplicates across slices
   collapse in the merge. Derivation-order effects cannot leak: all
   accumulators are sets, and relations are persistent tries whose
   printed form is sorted. Trace *counters* are still merged from the
   workers (sums, gauges by max), but their values can differ from a
   sequential run — two workers may both derive a fact that the merge
   then dedups — which is why determinism is asserted on instances, not
   counters. *)
let seminaive_par ~trace ?neg_db ~pool ~with_dps ~dom db =
  let tracing = Observe.Trace.enabled trace in
  let nw = Parallel.Pool.size pool in
  (* force every lazy structure the plans can touch; after this, workers
     only read the shared hash tables *)
  List.iter (fun (_rule, plan, _, _) -> Matcher.prewarm ?neg_db plan db) with_dps;
  let wctx =
    Array.init nw (fun _ ->
        if tracing then Observe.Trace.make ~sinks:[] () else Observe.Trace.null)
  in
  let wdb = Array.init nw (fun w -> Matcher.Db.with_trace db wctx.(w)) in
  let wacc : fresh_tbl array = Array.init nw (fun _ -> Hashtbl.create 8) in
  let fresh_tbl : fresh_tbl = Hashtbl.create 4 in
  let merge_s = ref 0.0 in
  (* one firing task on worker [w]: like the sequential [fire_fresh] but
     accumulating into the worker's private buffer and counting into the
     worker's private context *)
  let fire_task w (plan, label, delta) =
    let vdb = wdb.(w) in
    let wtr = wctx.(w) in
    let t0 = if tracing then Observe.Trace.now () else 0. in
    let acc = wacc.(w) in
    let cur_p = ref "" in
    let cur_mem = ref None in
    let cur_state = ref None in
    let have = ref false in
    let n =
      Matcher.iter_firings ?delta ?neg_db ~dom plan vdb (fun ~pos p ids ->
          if pos then (
            if not (!have && String.equal !cur_p p) then (
              have := true;
              cur_p := p;
              cur_mem := Some (Matcher.Db.memset vdb p);
              cur_state := Some (pred_state acc p));
            if Matcher.Db.memset_mem (Option.get !cur_mem) ids then (
              if tracing then Observe.Trace.incr wtr "fixpoint.tuples_deduped")
            else (
              if tracing then Observe.Trace.incr wtr "fixpoint.tuples_derived";
              let lst, seen = Option.get !cur_state in
              if not (Matcher.IdTbl.mem seen ids) then (
                let t = Tuple.of_ids (Array.copy ids) in
                Matcher.IdTbl.replace seen (Tuple.ids t) ();
                lst := t :: !lst))))
    in
    if tracing then (
      Observe.Trace.add wtr ("rule_firings." ^ label) n;
      (* per-task latency, recorded in the worker's private context; the
         barrier merge pools the workers' histograms, so the reported
         par.task distribution spans every domain *)
      Observe.Trace.observe_s wtr "par.task" (Observe.Trace.now () -. t0))
  in
  (* barrier: fold worker buffers into the round accumulator (worker
     order), dropping facts another worker also derived *)
  let merge_round () =
    let t0 = Observe.Trace.now () in
    Array.iter
      (fun acc ->
        if Hashtbl.length acc > 0 then (
          List.iter
            (fun (p, ts) ->
              let glst, gseen = pred_state fresh_tbl p in
              List.iter
                (fun t ->
                  let ids = Tuple.ids t in
                  if not (Matcher.IdTbl.mem gseen ids) then (
                    Matcher.IdTbl.replace gseen ids ();
                    glst := t :: !glst))
                ts)
            (take_fresh acc)))
      wacc;
    merge_s := !merge_s +. (Observe.Trace.now () -. t0)
  in
  let run_tasks tasks =
    let ntasks = Array.length tasks in
    if tracing then Observe.Trace.add trace "par.tasks" ntasks;
    Parallel.Pool.run pool (fun w ->
        let i = ref w in
        while !i < ntasks do
          fire_task w tasks.(!i);
          i := !i + nw
        done);
    merge_round ()
  in
  (* cut one delta list into at most [4 * nw] contiguous slices of at
     least 64 tuples, so small deltas stay one task while large ones
     feed (and load-balance across) every worker *)
  let slices dts =
    let arr = Array.of_list dts in
    let len = Array.length arr in
    let nslices = max 1 (min (4 * nw) (len / 64)) in
    let chunk = (len + nslices - 1) / nslices in
    List.init nslices (fun s ->
        let lo = s * chunk in
        let hi = min len (lo + chunk) in
        Array.to_list (Array.sub arr lo (hi - lo)))
  in
  let round_no = ref 0 in
  let open_round () =
    if tracing then (
      Observe.Trace.open_span trace ~kind:"round" (string_of_int !round_no);
      Stdlib.incr round_no)
  in
  let close_round d =
    if tracing then (
      Observe.Trace.incr trace "fixpoint.rounds";
      Observe.Trace.gauge_max trace "fixpoint.delta_max" d;
      Observe.Trace.add trace "fixpoint.delta_total" d;
      Observe.Trace.close_span trace
        ~fields:[ Observe.Trace.fint "delta" d ]
        ())
  in
  (* stage 1: full evaluation, one task per rule *)
  open_round ();
  run_tasks
    (Array.of_list
       (List.map (fun (_rule, plan, _, label) -> (plan, label, None)) with_dps));
  let delta0 = take_fresh fresh_tbl in
  close_round (total_fresh delta0);
  let rec loop delta stages =
    if total_fresh delta = 0 then (Matcher.Db.instance db, stages)
    else (
      open_round ();
      List.iter (fun (p, ts) -> Matcher.Db.absorb_new db p ts) delta;
      let sliced =
        List.map (fun (p, ts) -> (p, slices ts)) delta
      in
      let tasks =
        List.concat_map
          (fun (_rule, plan, dps, label) ->
            List.concat_map
              (fun pred ->
                match List.assoc_opt pred sliced with
                | None -> []
                | Some sl ->
                    List.map (fun s -> (plan, label, Some (pred, s))) sl)
              dps)
          with_dps
      in
      run_tasks (Array.of_list tasks);
      let fresh = take_fresh fresh_tbl in
      close_round (total_fresh fresh);
      loop fresh (stages + 1))
  in
  let result = loop delta0 0 in
  if tracing then (
    Observe.Trace.gauge_max trace "par.domains" nw;
    Observe.Trace.add trace "par.merge_ms"
      (int_of_float (!merge_s *. 1000.));
    Array.iter (fun c -> Observe.Trace.merge_counters trace c) wctx);
  result

(* Shard-owned semi-naive rounds (Slog-style hash partitioning). Where
   [seminaive_par] shares one dedup state and pays a sequential global
   merge at every barrier, here each worker domain OWNS a disjoint shard
   of every head predicate — ownership decided by [Matcher.Shard.owner]
   on the first-column id — and freshness is decided locally:

   - seed: every worker folds its partition of the head-predicate
     relations into per-shard membership sets (one parallel pass);
   - derive: worker [w] fires each rule restricted to its OWN delta
     slices (the previous round's owned-fresh facts — ownership IS the
     slicing, no repartitioning) against the shared read-only database.
     A derived fact it owns is deduped against its shard set and kept; a
     fact owned elsewhere is pre-filtered against the frozen global
     membership set and posted to the owner's outbox
     ([Parallel.Exchange], per-edge duplicate suppression);
   - exchange (second phase of the same [Pool.run_phases] fan-out): each
     owner drains its inboxes in deterministic source order, dedups
     against its shard set, and appends the survivors to its fresh list;
   - between rounds the coordinator absorbs every shard's fresh list
     into the shared database (pred order, then worker order) and
     installs each list as that shard's next delta slice.

   The per-round delta SET equals the sequential one (every candidate is
   routed to exactly one owner whose membership set is complete for its
   partition), so the round structure, stage count and final instance
   are identical to [seminaive_seq] — and the instance prints sorted, so
   the output is byte-identical. What changed is the cost model: the
   global merge ([par.merge_ms]) is gone, replaced by the exchange of
   only the cross-shard tuples ([par.exchange_ms] critical-path time,
   [par.exchanged_tuples] volume, [par.shard_skew] balance — 100 means
   perfectly balanced, [100 * nw] means one shard owns everything). *)
let seminaive_shard ~trace ?neg_db ~pool ~with_dps ~dom db =
  let tracing = Observe.Trace.enabled trace in
  let nw = Parallel.Pool.size pool in
  List.iter (fun (_rule, plan, _, _) -> Matcher.prewarm ?neg_db plan db) with_dps;
  (* predicates whose freshness the fixpoint decides — every positive
     compiled head (negative heads are ignored on this path, as in the
     sequential driver) *)
  let head_preds =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (rule, _, _, _) ->
           List.filter_map
             (fun h -> Option.map (fun a -> a.Ast.pred) (Ast.atom_of_hlit h))
             rule.Ast.head)
         with_dps)
  in
  (* coordinator-side snapshots before fanning out: [relation]/[memset]
     flush the pending buffer, which workers must never trigger *)
  let head_rels = List.map (fun p -> (p, Matcher.Db.relation db p)) head_preds in
  let gmems = List.map (fun p -> (p, Matcher.Db.memset db p)) head_preds in
  let shards =
    Array.init nw (fun w -> Matcher.Shard.create ~nshards:nw ~shard:w)
  in
  Parallel.Pool.run pool (fun w ->
      List.iter (fun (p, rel) -> Matcher.Shard.seed shards.(w) p rel) head_rels);
  let wctx =
    Array.init nw (fun _ ->
        if tracing then Observe.Trace.make ~sinks:[] () else Observe.Trace.null)
  in
  let wdb = Array.init nw (fun w -> Matcher.Db.with_trace db wctx.(w)) in
  let wfresh : (string, Tuple.t list ref) Hashtbl.t array =
    Array.init nw (fun _ -> Hashtbl.create 8)
  in
  let ex = Parallel.Exchange.create nw in
  let exch_s = Array.make nw 0.0 in
  let exchange_s = ref 0.0 in
  let push_fresh w p t =
    match Hashtbl.find_opt wfresh.(w) p with
    | Some l -> l := t :: !l
    | None -> Hashtbl.add wfresh.(w) p (ref [ t ])
  in
  (* one firing task on worker [w]: derive, route by owner *)
  let fire w (plan, label, dpred) =
    let vdb = wdb.(w) in
    let wtr = wctx.(w) in
    let sh = shards.(w) in
    let t0 = if tracing then Observe.Trace.now () else 0. in
    let delta, delta_index =
      match dpred with
      | None -> (None, None)
      | Some p ->
          ( Some (p, Matcher.Shard.delta sh p),
            Some (fun positions -> Matcher.Shard.delta_index sh p positions) )
    in
    let cur_p = ref "" in
    let cur_mem = ref None in
    let have = ref false in
    let n =
      Matcher.iter_firings ?delta ?delta_index ?neg_db ~dom plan vdb
        (fun ~pos p ids ->
          if pos then (
            if not (!have && String.equal !cur_p p) then (
              have := true;
              cur_p := p;
              cur_mem := Some (List.assoc p gmems));
            let o = Matcher.Shard.owner ~nshards:nw ids in
            if o = w then
              if Matcher.Shard.mem sh p ids then (
                if tracing then Observe.Trace.incr wtr "fixpoint.tuples_deduped")
              else (
                if tracing then
                  Observe.Trace.incr wtr "fixpoint.tuples_derived";
                let t = Tuple.of_ids (Array.copy ids) in
                Matcher.Shard.add sh p t;
                push_fresh w p t)
            else if Matcher.Db.memset_mem (Option.get !cur_mem) ids then (
              if tracing then Observe.Trace.incr wtr "fixpoint.tuples_deduped")
            else if
              Parallel.Exchange.post ex ~src:w ~dst:o p
                (Tuple.of_ids (Array.copy ids))
            then (if tracing then Observe.Trace.incr wtr "par.posts")))
    in
    if tracing then (
      Observe.Trace.add wtr ("rule_firings." ^ label) n;
      Observe.Trace.incr wtr "par.tasks";
      Observe.Trace.observe_s wtr "par.task" (Observe.Trace.now () -. t0))
  in
  (* round 0: full evaluation, rules round-robin over workers *)
  let rules0 =
    Array.of_list
      (List.map (fun (_rule, plan, _, label) -> (plan, label, None)) with_dps)
  in
  let derive_full w =
    let i = ref w in
    while !i < Array.length rules0 do
      fire w rules0.(!i);
      i := !i + nw
    done
  in
  (* later rounds: worker [w] fires every (rule, delta-pred) whose OWN
     slice is non-empty — the ownership partition is the task split *)
  let derive_delta w =
    let sh = shards.(w) in
    List.iter
      (fun (_rule, plan, dps, label) ->
        List.iter
          (fun p ->
            match Matcher.Shard.delta sh p with
            | [] -> ()
            | _ -> fire w (plan, label, Some p))
          dps)
      with_dps
  in
  let exchange w =
    let t0 = Observe.Trace.now () in
    let sh = shards.(w) in
    let wtr = wctx.(w) in
    Parallel.Exchange.drain ex ~dst:w (fun ~src:_ ~pred ts ->
        List.iter
          (fun t ->
            let ids = Tuple.ids t in
            if Matcher.Shard.mem sh pred ids then (
              if tracing then Observe.Trace.incr wtr "fixpoint.tuples_deduped")
            else (
              if tracing then Observe.Trace.incr wtr "fixpoint.tuples_derived";
              Matcher.Shard.add sh pred t;
              push_fresh w pred t))
          ts);
    exch_s.(w) <- Observe.Trace.now () -. t0
  in
  let run_round derive =
    Parallel.Pool.run_phases pool [| derive; exchange |];
    (* exchange cost on the critical path: the slowest worker's drain *)
    exchange_s := !exchange_s +. Array.fold_left Float.max 0.0 exch_s;
    Array.fill exch_s 0 nw 0.0
  in
  (* drain the workers' fresh buffers into per-worker sorted assoc lists
     (round processing stays deterministic), and record the balance *)
  let collect_round () =
    let per_w =
      Array.map
        (fun tbl ->
          let l = Hashtbl.fold (fun p lst acc -> (p, List.rev !lst) :: acc) tbl [] in
          Hashtbl.reset tbl;
          List.sort (fun (a, _) (b, _) -> String.compare a b) l)
        wfresh
    in
    let wtot = Array.map total_fresh per_w in
    let total = Array.fold_left ( + ) 0 wtot in
    if tracing && total > 0 && nw > 1 then (
      let mx = Array.fold_left max 0 wtot in
      Observe.Trace.gauge_max trace "par.shard_skew" (100 * nw * mx / total));
    (per_w, total)
  in
  (* between rounds, on the coordinator: feed every shard's fresh facts
     to the shared database (disjoint by ownership, fresh by the shard
     dedup — exactly [absorb_new]'s contract) and install the lists as
     the next round's delta slices *)
  let absorb_and_install per_w =
    let preds =
      List.sort_uniq String.compare
        (Array.to_list per_w |> List.concat_map (List.map fst))
    in
    List.iter
      (fun p ->
        Array.iter
          (fun fr ->
            match List.assoc_opt p fr with
            | None | Some [] -> ()
            | Some ts -> Matcher.Db.absorb_new db p ts)
          per_w)
      preds;
    Array.iteri
      (fun w fr ->
        Matcher.Shard.clear_delta shards.(w);
        List.iter (fun (p, ts) -> Matcher.Shard.set_delta shards.(w) p ts) fr)
      per_w
  in
  let round_no = ref 0 in
  let open_round () =
    if tracing then (
      Observe.Trace.open_span trace ~kind:"round" (string_of_int !round_no);
      Stdlib.incr round_no)
  in
  let close_round d =
    if tracing then (
      Observe.Trace.incr trace "fixpoint.rounds";
      Observe.Trace.gauge_max trace "fixpoint.delta_max" d;
      Observe.Trace.add trace "fixpoint.delta_total" d;
      Observe.Trace.close_span trace
        ~fields:[ Observe.Trace.fint "delta" d ]
        ())
  in
  open_round ();
  run_round derive_full;
  let per_w0, total0 = collect_round () in
  close_round total0;
  let rec loop per_w total stages =
    if total = 0 then (Matcher.Db.instance db, stages)
    else (
      open_round ();
      absorb_and_install per_w;
      run_round derive_delta;
      let per_w', total' = collect_round () in
      close_round total';
      loop per_w' total' (stages + 1))
  in
  let result = loop per_w0 total0 0 in
  if tracing then (
    Observe.Trace.gauge_max trace "par.domains" nw;
    Observe.Trace.add trace "par.exchange_ms"
      (int_of_float (!exchange_s *. 1000.));
    Observe.Trace.add trace "par.exchanged_tuples"
      (Parallel.Exchange.total_posted ex);
    Array.iter (fun c -> Observe.Trace.merge_counters trace c) wctx);
  result

(* Which parallel driver [seminaive_fixpoint_db] dispatches to. Sharded
   is the default; the barrier-merge driver is kept for comparison
   (bench e20 measures exchange vs merge on the same workload). *)
type par_strategy = Sharded | Merge

let strategy = ref Sharded
let set_par_strategy s = strategy := s
let par_strategy () = !strategy

let seminaive_fixpoint_db ?(trace = Observe.Trace.null) ?neg_db prepared
    ~delta_preds ~dom db =
  let with_dps = with_delta_preds prepared delta_preds in
  match Parallel.Pool.acquire () with
  | Some pool ->
      Fun.protect
        ~finally:(fun () -> Parallel.Pool.release pool)
        (fun () ->
          match !strategy with
          | Sharded -> seminaive_shard ~trace ?neg_db ~pool ~with_dps ~dom db
          | Merge -> seminaive_par ~trace ?neg_db ~pool ~with_dps ~dom db)
  | None ->
      (* jobs > 1 but the pool is held by an enclosing fixpoint: count
         the degradation instead of hiding it *)
      if Parallel.Pool.jobs () > 1 then
        Observe.Trace.incr trace "par.pool.fallbacks";
      seminaive_seq ~trace ?neg_db ~with_dps ~dom db

let seminaive_fixpoint ?(trace = Observe.Trace.null) ?neg_db prepared
    ~delta_preds ~dom inst =
  seminaive_fixpoint_db ~trace ?neg_db prepared ~delta_preds ~dom
    (Matcher.Db.of_instance ~trace inst)

(* ------------------------------------------------------------------ *)
(* Incremental view maintenance over a long-lived materialized Db: the
   write path of the resident server. Insertion is the semi-naive delta
   loop started from the fresh facts; deletion is DRed
   (delete-and-rederive). *)

let seminaive_increment_db ?(trace = Observe.Trace.null) ?neg_db ?on_delta
    prepared ~delta_preds ~dom db delta =
  match List.filter (fun (_, ts) -> ts <> []) delta with
  | [] -> (Matcher.Db.instance db, 0)
  | delta ->
      let with_dps = with_delta_preds prepared delta_preds in
      seminaive_seq ~trace ?neg_db ~initial:delta ?on_delta ~with_dps ~dom db

(* DRed needs two compiled artifacts beyond the ordinary plans: the
   delta-pred table over every positive body predicate (the cone and the
   propagation loop restrict to arbitrary deleted predicates, not just
   idb ones), and one "guard" plan per rule —

     P(t̄) :- dred$P(t̄), body

   — whose synthetic first atom ranges over the deleted facts of the
   rule's own head. Firing it with [~delta:(dred$P, D_P)] enumerates
   exactly the one-step rederivations of deleted facts from the
   surviving database, without materializing any dred$ relation (the
   delta mechanism feeds the atom directly). Built once per program and
   reused across every retraction batch. *)
type dred_prepared = {
  dr_with_dps : (Ast.rule * Matcher.prepared * string list * string) list;
  dr_guards : (string * Matcher.prepared) list;
}

let dred_guard_pred p = "dred$" ^ p

let prepare_dred prepared =
  let body_preds =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (rule, _) ->
           List.filter_map
             (function Ast.BPos a -> Some a.Ast.pred | _ -> None)
             rule.Ast.body)
         prepared)
  in
  let guards =
    List.filter_map
      (fun (rule, _) ->
        match rule.Ast.head with
        | [ Ast.HPos h ] ->
            let guard =
              Ast.BPos (Ast.atom (dred_guard_pred h.Ast.pred) h.Ast.args)
            in
            Some
              ( h.Ast.pred,
                Matcher.prepare { rule with Ast.body = guard :: rule.Ast.body }
              )
        | _ -> None)
      prepared
  in
  { dr_with_dps = with_delta_preds prepared body_preds; dr_guards = guards }

let dred_guards dprep = dprep.dr_guards

type dred_stats = { overdeleted : int; rederived : int; cone_rounds : int }

(* Delete-and-rederive, four phases:

   1. Over-delete cone: starting from the retracted facts, iterate the
      delta-restricted rules against the STILL-INTACT database (so a
      derivation using two deleted facts is found too), collecting every
      present head fact reachable from a deleted fact.
   2. Delete the whole cone from the db (indexes, membership sets and
      the pending buffer stay in sync via [Db.remove]).
   3. Re-derivation seed: cone facts still present in the base EDB
      (retraction only withdrew their *derived* support), plus every
      cone fact one guard plan rederives from the surviving database.
   4. Propagate the seed with the ordinary semi-naive increment loop —
      each rederived fact can restore the support of further cone facts.

   A fact outside the cone keeps all its derivations (none used a
   deleted fact), and induction on minimal derivation height shows every
   cone fact still derivable from the surviving EDB is restored by
   phases 3–4 — so the result equals recomputing the fixpoint from the
   post-retraction EDB (the property suite checks byte-identity against
   exactly that oracle). *)
let dred ?(trace = Observe.Trace.null) dprep ~edb ~dom db deletions =
  (* distinct retracted facts actually present in the materialization *)
  let deletions =
    let tmp : fresh_tbl = Hashtbl.create 4 in
    List.iter
      (fun (p, ts) ->
        List.iter
          (fun t ->
            if Matcher.Db.mem db p t then (
              let lst, seen = pred_state tmp p in
              if not (Matcher.IdTbl.mem seen (Tuple.ids t)) then (
                Matcher.IdTbl.replace seen (Tuple.ids t) ();
                lst := t :: !lst)))
          ts)
      deletions;
    take_fresh tmp
  in
  if deletions = [] then { overdeleted = 0; rederived = 0; cone_rounds = 0 }
  else (
    let tracing = Observe.Trace.enabled trace in
    (* phase 1: the over-deletion cone, frontier by frontier *)
    let seen : (string, unit Matcher.IdTbl.t) Hashtbl.t = Hashtbl.create 8 in
    let seen_of p =
      match Hashtbl.find_opt seen p with
      | Some tb -> tb
      | None ->
          let tb = Matcher.IdTbl.create 64 in
          Hashtbl.add seen p tb;
          tb
    in
    let cone : (string, Tuple.t list ref) Hashtbl.t = Hashtbl.create 8 in
    let add_cone p ts =
      match Hashtbl.find_opt cone p with
      | Some l -> l := List.rev_append ts !l
      | None -> Hashtbl.add cone p (ref ts)
    in
    List.iter
      (fun (p, ts) ->
        List.iter
          (fun t -> Matcher.IdTbl.replace (seen_of p) (Tuple.ids t) ())
          ts;
        add_cone p ts)
      deletions;
    let cone_rounds = ref 0 in
    let fresh : fresh_tbl = Hashtbl.create 4 in
    let frontier = ref deletions in
    while !frontier <> [] do
      Stdlib.incr cone_rounds;
      List.iter
        (fun (_rule, plan, dps, _label) ->
          List.iter
            (fun pred ->
              match List.assoc_opt pred !frontier with
              | None | Some [] -> ()
              | Some dts ->
                  ignore
                    (Matcher.iter_firings ~delta:(pred, dts) ~dom plan db
                       (fun ~pos p ids ->
                         if
                           pos
                           && Matcher.Db.memset_mem (Matcher.Db.memset db p)
                                ids
                           && not (Matcher.IdTbl.mem (seen_of p) ids)
                         then (
                           let t = Tuple.of_ids (Array.copy ids) in
                           Matcher.IdTbl.replace (seen_of p) (Tuple.ids t) ();
                           let lst, _ = pred_state fresh p in
                           lst := t :: !lst)))
            )
            dps)
        dprep.dr_with_dps;
      let next = take_fresh fresh in
      List.iter (fun (p, ts) -> add_cone p ts) next;
      frontier := next
    done;
    (* phase 2: delete the cone *)
    let cone_preds =
      List.sort String.compare (Hashtbl.fold (fun p _ acc -> p :: acc) cone [])
    in
    let overdeleted = ref 0 in
    List.iter
      (fun p ->
        List.iter
          (fun t -> if Matcher.Db.remove db p t then Stdlib.incr overdeleted)
          !(Hashtbl.find cone p))
      cone_preds;
    (* phase 3: re-derivation seed *)
    let r0 : fresh_tbl = Hashtbl.create 4 in
    let add_r0 p t =
      let lst, rseen = pred_state r0 p in
      let ids = Tuple.ids t in
      if not (Matcher.IdTbl.mem rseen ids) then (
        Matcher.IdTbl.replace rseen ids ();
        lst := t :: !lst)
    in
    List.iter
      (fun p ->
        List.iter
          (fun t -> if Instance.mem_fact p t edb then add_r0 p t)
          !(Hashtbl.find cone p))
      cone_preds;
    List.iter
      (fun (hp, gplan) ->
        match Hashtbl.find_opt cone hp with
        | None -> ()
        | Some lst ->
            ignore
              (Matcher.iter_firings
                 ~delta:(dred_guard_pred hp, !lst)
                 ~dom gplan db
                 (fun ~pos p ids ->
                   if
                     pos
                     && not
                          (Matcher.Db.memset_mem (Matcher.Db.memset db p) ids)
                   then add_r0 p (Tuple.of_ids (Array.copy ids)))))
      dprep.dr_guards;
    (* phase 4: propagate the survivors *)
    let seed = take_fresh r0 in
    let before = Instance.total_facts (Matcher.Db.instance db) in
    if total_fresh seed > 0 then
      ignore
        (seminaive_seq ~trace ~initial:seed ~with_dps:dprep.dr_with_dps ~dom
           db);
    let rederived = Instance.total_facts (Matcher.Db.instance db) - before in
    if tracing then (
      Observe.Trace.incr trace "dred.batches";
      Observe.Trace.add trace "dred.overdeleted" !overdeleted;
      Observe.Trace.add trace "dred.rederived" rederived;
      Observe.Trace.gauge_max trace "dred.cone_rounds" !cone_rounds);
    { overdeleted = !overdeleted; rederived; cone_rounds = !cone_rounds })

let naive_fixpoint ?(trace = Observe.Trace.null) prepared ~dom inst =
  let tracing = Observe.Trace.enabled trace in
  let rec loop current stages =
    if tracing then
      Observe.Trace.open_span trace ~kind:"round" (string_of_int stages);
    let db = Matcher.Db.of_instance ~trace current in
    let derived = consequences_db prepared db ~dom in
    let next = Instance.union current derived in
    if tracing then (
      let d = Instance.total_facts next - Instance.total_facts current in
      Observe.Trace.incr trace "fixpoint.rounds";
      Observe.Trace.gauge_max trace "fixpoint.delta_max" d;
      Observe.Trace.add trace "fixpoint.delta_total" d;
      Observe.Trace.close_span trace
        ~fields:[ Observe.Trace.fint "delta" d ]
        ());
    if Instance.equal next current then (current, stages)
    else loop next (stages + 1)
  in
  loop inst 0

let stage_trace prepared ~dom inst =
  let db = Matcher.Db.of_instance inst in
  let rec loop acc =
    let current = Matcher.Db.instance db in
    let derived = consequences_db prepared db ~dom in
    if Instance.subset derived current then List.rev (current :: acc)
    else (
      Matcher.Db.absorb db derived;
      loop (current :: acc))
  in
  loop []

type stats = { stages : int; facts_inferred : int }

let restrict_idb program inst = Instance.restrict (Ast.idb program) inst
