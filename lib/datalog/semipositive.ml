open Relational

exception Not_semipositive of string

type result = { instance : Instance.t; stages : int }

let eval ?(trace = Observe.Trace.null) p inst =
  Ast.check_datalog_neg p;
  if not (Stratify.is_semipositive p) then
    raise
      (Not_semipositive
         "program negates an idb predicate; semi-positive Datalog\xc2\xac \
          only negates edb predicates");
  let dom = Eval_util.program_dom p inst in
  let prepared = Eval_util.prepare p in
  let instance, stages =
    Eval_util.seminaive_fixpoint ~trace prepared ~delta_preds:(Ast.idb p) ~dom
      inst
  in
  { instance; stages }

let answer ?trace p inst pred = Instance.find pred (eval ?trace p inst).instance
