(** Rule instantiation: enumerating the valuations that satisfy a rule body
    against a database.

    This is the shared workhorse of every engine in the family. At
    {!prepare} time each rule is compiled to a slot-based plan: variables
    are mapped to integer slots, atoms are ordered greedily most-bound
    first, and for every step the set of already-bound argument positions
    is known statically. The inner join loop then unifies tuples into a
    mutable environment array — no association lists on the hot path.

    An instantiation of a rule w.r.t. K (paper, §4.1) maps each variable
    into [adom(P, K)]; because our rules are range-restricted (safety
    checks in {!Ast}), enumerating joins over the stored relations produces
    exactly those valuations without materializing the domain. *)

open Relational

(** Hash tables keyed by interned-id vectors — the representation facts
    travel in on the fast firing path. Exposed so fixpoint engines can
    deduplicate deltas with the same flat hashing the matcher uses. *)
module IdTbl : Hashtbl.S with type key = int array

(** A mutable database view with memoized secondary indexes that are
    maintained incrementally: create one [Db] per evaluation (not per
    stage) and feed it new facts with {!Db.insert} or {!Db.absorb} —
    every cached index is updated in place instead of being rebuilt. *)
module Db : sig
  type t

  (** [of_instance ?trace inst] wraps [inst]. The [trace] context (default
      {!Observe.Trace.null}) receives the database's hot-path counters:
      [db.index_builds] / [db.index_memo_hits] (secondary-index
      construction vs. memo reuse), [db.inserts] / [db.insert_dups], and
      the matcher counters of every {!run} against this database. *)
  val of_instance : ?trace:Observe.Trace.ctx -> Instance.t -> t

  (** The trace context the database reports to. *)
  val trace : t -> Observe.Trace.ctx

  (** [with_trace db ctx] is a {e view} of [db] reporting to [ctx]: it
      shares every memoized structure (indexes, membership sets, pending
      buffer) with [db] but counts into its own context. The parallel
      engines hand one view per worker so counters never contend. A view
      is read-only by convention: callers must {!prewarm} every
      structure their plans touch before sharing views across domains,
      must not mutate through a view, and must not use it through
      {!instance}/{!relation} (the underlying-instance pointer is frozen
      at view-creation time). *)
  val with_trace : t -> Observe.Trace.ctx -> t

  (** [instance db] is the current underlying instance (a persistent
      snapshot; later mutations of [db] do not affect it). *)
  val instance : t -> Instance.t

  (** [relation db p] is the relation bound to predicate [p]. *)
  val relation : t -> string -> Relation.t

  (** [lookup db p bindings] returns the tuples of [p] agreeing with
      [bindings], a list of (position, value) constraints. Builds (and
      caches) a hash index on the constrained positions. *)
  val lookup : t -> string -> (int * Value.t) list -> Tuple.t list

  (** [mem db p tup] tests a ground fact. *)
  val mem : t -> string -> Tuple.t -> bool

  (** A per-predicate flat hash membership set: O(1) probes on interned id
      vectors, built lazily on first use and then maintained incrementally
      by {!insert}/{!remove}/{!absorb}. Unlike walking the persistent
      relation trie, probes stay cache-friendly however large the relation
      grows — fixpoint engines use this for their freshness checks. *)
  type memset

  (** [memset db p] is the membership set of predicate [p] (building it,
      once, if needed). The handle stays valid across updates to [db]. *)
  val memset : t -> string -> memset

  (** [memset_mem m ids] tests the fact with argument ids [ids]. *)
  val memset_mem : memset -> int array -> bool

  (** [insert db p tup] adds a fact, updating every memoized index of
      [p]. Returns [true] iff the fact was new. *)
  val insert : t -> string -> Tuple.t -> bool

  (** [remove db p tup] deletes a fact, updating every memoized index of
      [p] {e and} the lazy pending buffer — a fact queued by
      {!absorb_new} but not yet flushed into the persistent trie is
      purged too, so no later read can resurrect it. Returns [true] iff
      the fact was present. *)
  val remove : t -> string -> Tuple.t -> bool

  (** [absorb db delta] inserts every fact of [delta] into [db],
      maintaining all memoized indexes incrementally. *)
  val absorb : t -> Instance.t -> unit

  (** [absorb_new db p news] bulk-inserts facts of [p] that the caller
      guarantees fresh (not in [db]) and pairwise distinct — the
      semi-naive delta contract. Skips every membership check. *)
  val absorb_new : t -> string -> Tuple.t list -> unit
end

(** Shard-owned predicate state for the hash-partitioned parallel
    fixpoint: every fact is owned by exactly one of [nshards] shards,
    decided by an avalanche hash of its first-column value id, and each
    worker domain holds one [Shard.t] — membership sets over its owned
    partition plus memoized (pred, positions) indexes over its per-round
    delta slices. A shard is mutated only by its owning worker, so
    freshness checks are local: no locks, no global dedup merge. *)
module Shard : sig
  type t

  (** [owner ~nshards ids] is the shard owning the fact with argument
      ids [ids] — a mixed hash of [ids.(0)] modulo [nshards] (arity-0
      facts live on shard 0). Deterministic across workers and runs for
      a fixed interning. *)
  val owner : nshards:int -> int array -> int

  (** [create ~nshards ~shard] is the empty state of shard [shard].
      @raise Invalid_argument unless [0 <= shard < nshards]. *)
  val create : nshards:int -> shard:int -> t

  val id : t -> int

  (** [owns sh ids] is [owner ~nshards ids = id sh]. *)
  val owns : t -> int array -> bool

  (** [mem sh p ids] tests membership of an owned fact. Complete for
      facts of predicates this shard was {!seed}ed with and kept
      up to date through {!add}. *)
  val mem : t -> string -> int array -> bool

  (** [add sh p t] records an owned fact (the caller has established
      ownership and freshness). *)
  val add : t -> string -> Tuple.t -> unit

  (** [seed sh p rel] folds this shard's partition of [rel] into its
      membership set for [p] — the per-fixpoint initialisation, run by
      every worker over the same head-predicate relations. *)
  val seed : t -> string -> Relation.t -> unit

  (** [total sh] is the number of owned facts across predicates. *)
  val total : t -> int

  (** [set_delta sh p ts] installs this shard's slice of the round's
      delta for [p], invalidating memoized indexes over the previous
      slice; {!clear_delta} drops every slice between rounds. *)
  val set_delta : t -> string -> Tuple.t list -> unit

  val clear_delta : t -> unit

  (** [delta sh p] is the installed slice ([[]] when none). *)
  val delta : t -> string -> Tuple.t list

  (** [delta_index sh p positions] is the hash index of [delta sh p] on
      [positions], built once per (pred, positions) per round and shared
      by every rule probing the same bound positions — pass it to
      {!iter_firings} as [delta_index]. *)
  val delta_index : t -> string -> int list -> Tuple.t list IdTbl.t
end

(** A rule compiled to a slot-based join plan (atom ordering, index keys,
    unification ops and filter schedule all precomputed). *)
type prepared

(** [prepare rule] plans and compiles the body join. *)
val prepare : Ast.rule -> prepared

(** [run prepared db] enumerates all satisfying substitutions for the body.
    Each substitution binds every body variable (and hence every head
    variable of a safe rule).

    [delta]: when [Some (pred, rel)], restricts one positive occurrence of
    [pred] at a time to range over [rel] instead of its full relation, and
    unions the results — the semi-naive evaluation primitive. The delta
    relation is indexed per (pred, bound-positions) exactly like the main
    database, so delta candidates are looked up rather than scanned. If
    the body has no positive occurrence of [pred] the result is empty.

    [dom]: the active domain [adom(P, K)]. Variables not bound by a
    positive atom (the paper allows head variables bound only by negative
    literals, cf. Example 4.4) range over [dom], as do ∀-quantified
    variables.

    [neg_db]: when supplied, negative literals are checked against this
    database instead of [db] — the Gelfond–Lifschitz transform primitive
    used by the well-founded engine (positives grow in [db] while the
    negation context stays fixed).

    When the database's trace context is enabled, each call updates the
    counters [matcher.runs], [matcher.candidates] (index-bucket tuples
    scanned), [matcher.substs] (substitutions produced — the ratio is the
    join selectivity) and the gauge [matcher.substs_max].

    @raise Invalid_argument if the rule needs a domain (it has
    non-positively-bound or ∀ variables) and [dom] was not supplied. *)
val run :
  ?delta:string * Relation.t ->
  ?dom:Value.t list ->
  ?neg_db:Db.t ->
  prepared ->
  Db.t ->
  Ast.subst list

(** [iter_firings prepared db f] enumerates the same matches as {!run}
    (same [delta]/[dom]/[neg_db] semantics, same dedup, same trace
    counters) but stays on the interned fast path end to end: instead of
    decoding substitutions, each match instantiates the rule's compiled
    head templates directly and calls [f ~pos pred ids] per head fact
    ([pos] = polarity; ⊥ heads are skipped). [ids] is a scratch array
    reused across calls — probe it with {!Relation.mem_ids} and copy it
    ([Tuple.of_ids (Array.copy ids)]) before retaining. Enumeration
    order is unspecified — callers must be order-insensitive (fixpoint
    engines accumulate into sets). The delta is a plain tuple list (the
    representation the fixpoint engines already hold); it is indexed per
    (pred, bound-positions) exactly like {!run}'s — unless [delta_index]
    is supplied, in which case it resolves the index for each set of
    bound positions (the sharded fixpoint passes
    {!Shard.delta_index}, so rules sharing positions reuse one build;
    the function must index exactly the tuples of [delta]). Returns the
    number of matches. *)
val iter_firings :
  ?delta:string * Tuple.t list ->
  ?delta_index:(int list -> Tuple.t list IdTbl.t) ->
  ?dom:Value.t list ->
  ?neg_db:Db.t ->
  prepared ->
  Db.t ->
  (pos:bool -> string -> int array -> unit) ->
  int

(** [iter_derivations prepared db f] enumerates the same matches as
    {!iter_firings} but exposes the whole firing: for every match and
    every head template it calls [f ~pos pred head_ids bodies] where
    [bodies] lists the rule's positive body atoms — in original body
    order — instantiated under the match as [(pred, ids)] pairs. This
    is the primitive the semiring-annotated engines iterate: a firing's
    annotation is the ⊗-product of its body facts' annotations, ⊕-added
    into the head fact. Every id array (head and body sides) is scratch
    reused across matches — copy before retaining. Dedup semantics
    follow {!run}: within one call a (rule, body valuation) pair is
    reported once per delta pass set, so callers summing over multiple
    calls (e.g. per-delta-predicate passes) must dedup firings across
    calls themselves. Returns the number of matches. *)
val iter_derivations :
  ?delta:string * Tuple.t list ->
  ?delta_index:(int list -> Tuple.t list IdTbl.t) ->
  ?dom:Value.t list ->
  ?neg_db:Db.t ->
  prepared ->
  Db.t ->
  (pos:bool -> string -> int array -> (string * int array) array -> unit) ->
  int

(** [prewarm prepared db] forces every lazily-built structure the plan
    can touch — step indexes, membership sets for filter probes and head
    dedup — so that subsequent read-only uses of [db] (directly or
    through {!Db.with_trace} views) trigger no builds. The parallel
    engines call this between barriers, before fanning work out to
    domains; [neg_db] follows the same convention as {!iter_firings}. *)
val prewarm : ?neg_db:Db.t -> prepared -> Db.t -> unit

(** [satisfies db subst blits] checks body literals under a full
    substitution (quantifier-free). Used by the nondeterministic engines
    to re-check applicability.
    @raise Ast.Check_error on unbound variables. *)
val satisfies : Db.t -> Ast.subst -> Ast.blit list -> bool

(** [instantiate_heads subst heads] grounds head literals into
    [(polarity, pred, tuple)] triples where polarity [true] asserts and
    [false] retracts; ⊥ is returned as the [bottom] flag.
    Result: [(bottom, facts)]. *)
val instantiate_heads :
  Ast.subst -> Ast.hlit list -> bool * (bool * string * Tuple.t) list
