open Relational

type policy = Pos_priority | Neg_priority | Noop | Error

type outcome =
  | Fixpoint of { instance : Instance.t; stages : int }
  | Diverged of { entered : int; period : int; states : Instance.t list }
  | Contradiction of { stage : int; pred : string; tuple : Tuple.t }

let apply_policy policy current pos neg =
  match policy with
  | Pos_priority ->
      (* delete (neg \ pos), insert pos *)
      Ok (Instance.union (Instance.diff current (Instance.diff neg pos)) pos)
  | Neg_priority ->
      Ok (Instance.diff (Instance.union current (Instance.diff pos neg)) neg)
  | Noop ->
      (* facts derived both ways keep their previous status *)
      let conflict =
        Instance.fold
          (fun p r acc ->
            Relation.fold
              (fun t acc ->
                if Instance.mem_fact p t neg then Instance.add_fact p t acc
                else acc)
              r acc)
          pos Instance.empty
      in
      let pos' = Instance.diff pos conflict
      and neg' = Instance.diff neg conflict in
      Ok (Instance.diff (Instance.union current pos') neg')
  | Error -> (
      let witness = ref None in
      Instance.fold
        (fun p r () ->
          Relation.iter
            (fun t ->
              if !witness = None && Instance.mem_fact p t neg then
                witness := Some (p, t))
            r)
        pos ();
      match !witness with
      | Some (p, t) -> Stdlib.Error (p, t)
      | None -> Ok (Instance.diff (Instance.union current pos) neg))

let prepared_step policy prepared dom current =
  let pos, neg = Eval_util.consequences_signed prepared current ~dom in
  apply_policy policy current pos neg

let step ?(policy = Pos_priority) p inst =
  Ast.check_datalog_negneg p;
  let dom = Eval_util.program_dom p inst in
  prepared_step policy (Eval_util.prepare p) dom inst

let run ?(policy = Pos_priority) ?(max_stages = 10_000)
    ?(trace = Observe.Trace.null) p inst =
  Ast.check_datalog_negneg p;
  let dom = Eval_util.program_dom p inst in
  let prepared = Eval_util.prepare p in
  let tracing = Observe.Trace.enabled trace in
  let module IMap = Map.Make (struct
    type t = Instance.t

    let compare = Instance.compare
  end) in
  let traced_step current stage =
    if tracing then (
      Observe.Trace.open_span trace ~kind:"round" (string_of_int stage);
      let r = prepared_step policy prepared dom current in
      Observe.Trace.incr trace "fixpoint.rounds";
      (match r with
      | Ok next ->
          (* non-inflationary: the state can shrink, so the "delta" is the
             symmetric difference with the previous state *)
          let d =
            Instance.total_facts (Instance.diff next current)
            + Instance.total_facts (Instance.diff current next)
          in
          Observe.Trace.gauge_max trace "fixpoint.delta_max" d;
          Observe.Trace.add trace "fixpoint.delta_total" d;
          Observe.Trace.close_span trace
            ~fields:[ Observe.Trace.fint "delta" d ]
            ()
      | Stdlib.Error (pred, _) ->
          Observe.Trace.close_span trace
            ~fields:[ Observe.Trace.fstr "contradiction" pred ]
            ());
      r)
    else prepared_step policy prepared dom current
  in
  let rec loop current seen history stage =
    if stage > max_stages then
      failwith
        (Printf.sprintf
           "Noninflationary.run: no fixpoint or cycle within %d stages"
           max_stages)
    else
      match traced_step current stage with
      | Stdlib.Error (pred, tuple) ->
          if tracing then
            Observe.Trace.event trace "contradiction"
              ~fields:
                [
                  Observe.Trace.fint "stage" stage;
                  Observe.Trace.fstr "pred" pred;
                ];
          Contradiction { stage; pred; tuple }
      | Ok next ->
          if Instance.equal next current then
            Fixpoint { instance = current; stages = stage }
          else (
            match IMap.find_opt next seen with
            | Some entered ->
                let cycle =
                  List.rev history
                  |> List.filteri (fun i _ -> i >= entered)
                in
                let period = stage + 1 - entered in
                if tracing then
                  Observe.Trace.event trace "diverged"
                    ~fields:
                      [
                        Observe.Trace.fint "entered" entered;
                        Observe.Trace.fint "period" period;
                      ];
                Diverged { entered; period; states = cycle }
            | None ->
                loop next
                  (IMap.add next (stage + 1) seen)
                  (next :: history) (stage + 1))
  in
  loop inst (IMap.singleton inst 0) [ inst ] 0

let eval ?policy ?trace p inst =
  match run ?policy ?trace p inst with
  | Fixpoint { instance; _ } -> instance
  | Diverged { period; _ } ->
      failwith
        (Printf.sprintf
           "Datalog\xc2\xac\xc2\xac program diverges (cycle of period %d)" period)
  | Contradiction { pred; _ } ->
      failwith
        (Printf.sprintf
           "Datalog\xc2\xac\xc2\xac program derived a contradiction on %s" pred)

let answer ?policy ?trace p inst pred =
  Instance.find pred (eval ?policy ?trace p inst)
