(** The resident evaluation engine: one long-lived materialized fixpoint
    maintained incrementally across assert/retract batches, plus the
    demand-side caches, independent of any transport. The socket daemon
    ({!Daemon}) wraps it in a protocol; the bench harness drives it
    directly.

    State held for the life of the process:

    - a {!Matcher.Db} containing the full materialization (EDB plus
      every derived fact) with its memoized indexes and membership sets;
    - the base instance (the asserted facts — the EDB — as distinct from
      what is derived), which is what retraction and the
      recompute-from-scratch oracle are defined against;
    - compiled rule plans, delta tables and DRed guard plans
      ({!Eval_util.prepare} / {!Eval_util.prepare_dred}), built once;
    - a {!Demand.Cache} and a lazily (re)built {!Magic.session} for the
      two demand-driven query paths, invalidated on every update. *)

open Relational
open Datalog

type t

(** Which evaluation path a {!query} takes. [Materialized] (the default)
    filters the maintained fixpoint through the db's memoized indexes —
    O(answer). [Demand] and [Magic] answer from the base facts through
    the demand compiler / magic-sets session, exercising the cached
    query paths against the same engine state. *)
type via = Materialized | Demand | Magic

(** Which incremental-deletion algorithm maintains the materialization.
    [Dred] (the default) over-deletes the derivation cone and
    re-derives survivors. [Counting] keeps a support count per fact
    ({!Datalog.Counting}): retraction deletes exactly the facts whose
    count reaches zero, plus a well-foundedness verification localized
    to the facts that lost support — on workloads where deletions touch
    a small region it never visits the rest of the database. Both
    produce the same materialization (recompute-oracle tested). *)
type maintenance = Dred | Counting

(** [create ?trace ?maintenance program edb] checks [program] is pure
    Datalog, materializes its fixpoint over [edb] and returns the
    resident state.
    @raise Ast.Check_error unless the program is pure Datalog (single
    positive heads, positive bodies). *)
val create :
  ?trace:Observe.Trace.ctx ->
  ?maintenance:maintenance ->
  Ast.program ->
  Instance.t ->
  t

val maintenance : t -> maintenance

(** [assert_facts t batch] adds the facts of [batch] to the base
    instance and propagates the genuinely new ones through the
    semi-naive increment loop. Returns [(added, derived, stages)]:
    facts new to the base instance, additional facts derived from them,
    and propagation stages. Idempotent on duplicates. *)
val assert_facts : t -> Instance.t -> int * int * int

(** [retract_facts t batch] withdraws the facts of [batch] from the base
    instance and maintains the materialization with the engine's
    {!maintenance} algorithm. Returns [(removed, deleted, kept)]: facts
    removed from the base instance, and — under [Dred] — the facts
    over-deleted and re-derived; under [Counting] — the facts actually
    deleted and the facts the well-foundedness verification confirmed.
    Facts not in the base instance are ignored (a derived fact cannot
    be retracted — withdraw its support instead). *)
val retract_facts : t -> Instance.t -> int * int * int

(** [audit_counts t] is {!Datalog.Counting.audit} on the engine's
    counting state — the count mismatches against a from-scratch
    recount, always empty when maintenance is exact (and trivially
    empty under [Dred]). Test hook. *)
val audit_counts : t -> (string * Tuple.t * int * int) list

(** [query t ?via atom] answers a point query: the tuples of [atom]'s
    predicate matching its constants and repeated variables.
    @raise Ast.Check_error when [via] is [Demand] or [Magic] and the
    predicate is not idb.
    @raise Invalid_argument if [atom]'s arity differs from the stored
    relation's. *)
val query : t -> ?via:via -> Ast.atom -> Relation.t

(** The current full materialization (base facts plus derived). *)
val instance : t -> Instance.t

(** The current base instance (asserted facts only). *)
val edb : t -> Instance.t

val program : t -> Ast.program
