let request_line ~socket line =
  match
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect s (Unix.ADDR_UNIX socket);
        let ic = Unix.in_channel_of_descr s in
        let oc = Unix.out_channel_of_descr s in
        output_string oc line;
        output_char oc '\n';
        flush oc;
        input_line ic)
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot reach server at %s: %s" socket
           (Unix.error_message e))
  | exception End_of_file -> Error "connection closed before response"
  | resp -> Protocol.parse_response resp

let request ~socket req = request_line ~socket (Protocol.encode_request req)
