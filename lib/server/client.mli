(** Socket-side client for the {!Daemon} protocol: one connection per
    call, one request line out, one response line back. *)

(** [request ~socket req] connects to the Unix-domain socket, sends
    [req] and returns the parsed success object, or [Error] for
    connection failures, malformed responses and server-side
    [{"ok":false}] errors. *)
val request :
  socket:string -> Protocol.request -> (Observe.Json.t, string) result

(** [request_line ~socket line] sends a raw request line verbatim —
    the malformed-request test path. *)
val request_line : socket:string -> string -> (Observe.Json.t, string) result
