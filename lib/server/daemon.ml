open Relational
open Datalog

let op_name = function
  | Protocol.Assert _ -> "assert"
  | Protocol.Retract _ -> "retract"
  | Protocol.Query _ -> "query"
  | Protocol.Stats -> "stats"
  | Protocol.Shutdown -> "shutdown"

let via_of_string = function
  | "materialized" -> Engine.Materialized
  | "demand" -> Engine.Demand
  | "magic" -> Engine.Magic
  | v ->
      failwith
        (Printf.sprintf
           "unknown via %S (expected materialized, demand or magic)" v)

let stats_response trace =
  let counters =
    List.map (fun (k, v) -> (k, Observe.Json.Int v)) (Observe.Trace.counters trace)
  in
  let histograms =
    List.map
      (fun (k, d) ->
        ( k,
          Observe.Json.Obj
            [
              ("n", Observe.Json.Int d.Observe.Trace.n);
              ("p50_ns", Observe.Json.Int d.Observe.Trace.p50);
              ("p99_ns", Observe.Json.Int d.Observe.Trace.p99);
              ("max_ns", Observe.Json.Int d.Observe.Trace.max_ns);
            ] ))
      (Observe.Trace.histograms trace)
  in
  Protocol.ok_response
    [
      ("counters", Observe.Json.Obj counters);
      ("histograms", Observe.Json.Obj histograms);
    ]

(* one request -> one response line; [false] after [shutdown]. Anything
   a bad request can raise becomes a protocol-level error — the resident
   process must survive its clients. *)
let handle ?(trace = Observe.Trace.null) engine line =
  let tracing = Observe.Trace.enabled trace in
  if tracing then Observe.Trace.incr trace "serve.requests";
  match Protocol.parse_request line with
  | Error e ->
      if tracing then Observe.Trace.incr trace "serve.errors";
      (Protocol.error_response e, true)
  | Ok req -> (
      let op = op_name req in
      let t0 = if tracing then Observe.Trace.now () else 0. in
      let result =
        try
          Ok
            (match req with
            | Protocol.Assert facts ->
                let added, derived, stages =
                  Engine.assert_facts engine (Instance.parse_facts facts)
                in
                ( Protocol.ok_response
                    [
                      ("added", Observe.Json.Int added);
                      ("derived", Observe.Json.Int derived);
                      ("stages", Observe.Json.Int stages);
                    ],
                  true )
            | Protocol.Retract facts ->
                let removed, overdeleted, rederived =
                  Engine.retract_facts engine (Instance.parse_facts facts)
                in
                ( Protocol.ok_response
                    [
                      ("removed", Observe.Json.Int removed);
                      ("overdeleted", Observe.Json.Int overdeleted);
                      ("rederived", Observe.Json.Int rederived);
                    ],
                  true )
            | Protocol.Query { atom; via } ->
                let q = Parser.parse_atom atom in
                let via = via_of_string via in
                let rel = Engine.query engine ~via q in
                let facts =
                  List.rev
                    (Relation.fold
                       (fun t acc ->
                         Observe.Json.Str
                           (Format.asprintf "%a" Pretty.pp_fact (q.Ast.pred, t))
                         :: acc)
                       rel [])
                in
                ( Protocol.ok_response
                    [
                      ("count", Observe.Json.Int (Relation.cardinal rel));
                      ("facts", Observe.Json.List facts);
                    ],
                  true )
            | Protocol.Stats -> (stats_response trace, true)
            | Protocol.Shutdown ->
                (Protocol.ok_response [ ("stopping", Observe.Json.Bool true) ], false))
        with
        | Failure msg -> Error msg
        | Invalid_argument msg -> Error msg
        | Ast.Check_error msg -> Error msg
        | Aggregate.Agg_error msg -> Error msg
        | Parser.Parse_error (l, msg) ->
            Error (Printf.sprintf "parse error at line %d: %s" l msg)
        | Lexer.Lex_error (l, msg) ->
            Error (Printf.sprintf "lex error at line %d: %s" l msg)
      in
      if tracing then (
        Observe.Trace.incr trace ("serve.op." ^ op);
        if op <> "shutdown" then
          Observe.Trace.observe_s trace ("serve." ^ op)
            (Observe.Trace.now () -. t0));
      match result with
      | Ok r -> r
      | Error msg ->
          if tracing then Observe.Trace.incr trace "serve.errors";
          (Protocol.error_response msg, true))

let serve ?(trace = Observe.Trace.null) ~socket engine =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  if Sys.file_exists socket then (
    try Unix.unlink socket with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX socket);
      Unix.listen sock 16;
      Printf.printf "listening on %s\n%!" socket;
      let stop = ref false in
      while not !stop do
        let conn, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr conn in
        let oc = Unix.out_channel_of_descr conn in
        (try
           let connected = ref true in
           while !connected do
             match input_line ic with
             | exception End_of_file -> connected := false
             | line when String.trim line = "" -> ()
             | line ->
                 let resp, keep = handle ~trace engine line in
                 output_string oc resp;
                 output_char oc '\n';
                 flush oc;
                 if not keep then (
                   connected := false;
                   stop := true)
           done
         with Sys_error _ | Unix.Unix_error _ -> ());
        close_out_noerr oc;
        close_in_noerr ic
      done)
