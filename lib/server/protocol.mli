(** The wire protocol: one JSON object per line, both directions.

    Requests:
    {v
    {"op":"assert","facts":"G(a, b). G(b, c)."}
    {"op":"retract","facts":"G(a, b)."}
    {"op":"query","atom":"T(a, Y)","via":"materialized"}   // via optional
    {"op":"stats"}
    {"op":"shutdown"}
    v}

    Every response carries ["ok"]: [true] with op-specific fields
    (assert: [added]/[derived]/[stages]; retract:
    [removed]/[overdeleted]/[rederived]; query: [count]/[facts], each
    fact pre-rendered as ["T(a, b)."]; stats: [counters]/[histograms]),
    or [false] with an ["error"] message — a malformed or failing
    request never kills the resident process. *)

type request =
  | Assert of string  (** facts source text, {!Relational.Instance.parse_facts} syntax *)
  | Retract of string
  | Query of { atom : string; via : string }
      (** [via] is ["materialized"] (default), ["demand"] or ["magic"] *)
  | Stats
  | Shutdown

val encode_request : request -> string

(** [parse_request line] decodes one request line. [Error] explains what
    is malformed (unparsable JSON, missing/unknown [op], missing
    payload). *)
val parse_request : string -> (request, string) result

(** [ok_response fields] is the success line [{"ok":true, ...fields}]. *)
val ok_response : (string * Observe.Json.t) list -> string

(** [error_response msg] is [{"ok":false,"error":msg}]. *)
val error_response : string -> string

(** [parse_response line] returns the whole response object on
    [{"ok":true}], the ["error"] field as [Error] on [{"ok":false}]. *)
val parse_response : string -> (Observe.Json.t, string) result
