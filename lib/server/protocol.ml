open Observe

type request =
  | Assert of string
  | Retract of string
  | Query of { atom : string; via : string }
  | Stats
  | Shutdown

let encode_request = function
  | Assert facts ->
      Json.to_string (Obj [ ("op", Str "assert"); ("facts", Str facts) ])
  | Retract facts ->
      Json.to_string (Obj [ ("op", Str "retract"); ("facts", Str facts) ])
  | Query { atom; via } ->
      Json.to_string
        (Obj [ ("op", Str "query"); ("atom", Str atom); ("via", Str via) ])
  | Stats -> Json.to_string (Obj [ ("op", Str "stats") ])
  | Shutdown -> Json.to_string (Obj [ ("op", Str "shutdown") ])

let str_field name j k =
  match Json.member name j with
  | Some (Str s) -> k s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let parse_request line =
  match Json.parse line with
  | Error e -> Error ("malformed request: " ^ e)
  | Ok j -> (
      match Json.member "op" j with
      | Some (Str "assert") -> str_field "facts" j (fun f -> Ok (Assert f))
      | Some (Str "retract") -> str_field "facts" j (fun f -> Ok (Retract f))
      | Some (Str "query") ->
          str_field "atom" j (fun atom ->
              match Json.member "via" j with
              | None -> Ok (Query { atom; via = "materialized" })
              | Some (Str via) -> Ok (Query { atom; via })
              | Some _ -> Error "field \"via\" must be a string")
      | Some (Str "stats") -> Ok Stats
      | Some (Str "shutdown") -> Ok Shutdown
      | Some (Str op) -> Error (Printf.sprintf "unknown op %S" op)
      | Some _ -> Error "field \"op\" must be a string"
      | None -> Error "missing field \"op\"")

let ok_response fields = Json.to_string (Obj (("ok", Bool true) :: fields))

let error_response msg =
  Json.to_string (Obj [ ("ok", Bool false); ("error", Str msg) ])

let parse_response line =
  match Json.parse line with
  | Error e -> Error ("malformed response: " ^ e)
  | Ok j -> (
      match Json.member "ok" j with
      | Some (Bool true) -> Ok j
      | Some (Bool false) -> (
          match Json.member "error" j with
          | Some (Str e) -> Error e
          | _ -> Error "server error (no message)")
      | _ -> Error "malformed response: missing \"ok\"")
