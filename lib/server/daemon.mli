(** The resident process: a single-threaded accept loop on a Unix-domain
    socket, dispatching line-JSON requests ({!Protocol}) to an
    {!Engine}. Requests are served in arrival order — updates are
    serialized by construction, so the engine needs no locking.

    Observability ([trace], when enabled): counters [serve.requests],
    [serve.errors] and [serve.op.<assert|retract|query|stats|shutdown>],
    plus one latency histogram per command
    ([serve.<assert|retract|query|stats>], nanoseconds — p50/p99 are
    exposed through the [stats] op and the CLI [--stats] summary), on
    top of whatever the engine itself records ([fixpoint.*], [dred.*],
    [db.*], [demand.*], [magic.*]).

    Failures of a single request — unparsable JSON, syntax errors in
    facts or atoms, arity mismatches, [Ast.Check_error],
    [Invalid_argument] (e.g. {!Relational.Schema} lookups) — are mapped
    to [{"ok":false,"error":...}] responses; the process stays up. *)

(** [serve ?trace ~socket engine] binds [socket] (unlinking any stale
    file first), prints one ["listening on <socket>"] line to stdout,
    and serves until a [shutdown] request arrives. The socket file is
    removed on exit. *)
val serve : ?trace:Observe.Trace.ctx -> socket:string -> Engine.t -> unit

(** [handle ?trace engine line] processes one request line and returns
    [(response_line, keep_going)] — exposed for tests and in-process
    drivers; [serve] is this in a loop. *)
val handle : ?trace:Observe.Trace.ctx -> Engine.t -> string -> string * bool
