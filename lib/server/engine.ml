open Relational
open Datalog

type via = Materialized | Demand | Magic
type maintenance = Dred | Counting

type t = {
  program : Ast.program;
  prepared : Eval_util.prepared;
  dred : Eval_util.dred_prepared;
  db : Matcher.Db.t;
  mutable edb : Instance.t;
  delta_preds : string list;
  trace : Observe.Trace.ctx;
  cache : Demand.Cache.t;
  mutable magic : Magic.session option;
  counting : Counting.t option;
      (* Some = counting maintenance: support counts ride along every
         update and retraction deletes exactly the zero-support facts *)
}

(* The engine is restricted to pure Datalog, so no plan ever consults
   the active domain ([need_dom] is false for every range-restricted
   positive rule) and updates can pass an empty one — recomputing
   [program_dom] per request would cost a scan of the whole database and
   defeat incrementality. *)
let no_dom : Value.t list = []

let create ?(trace = Observe.Trace.null) ?(maintenance = Dred) program edb =
  Ast.check_datalog program;
  let prepared = Eval_util.prepare program in
  let db = Matcher.Db.of_instance ~trace edb in
  let dom = Eval_util.program_dom program edb in
  ignore
    (Eval_util.seminaive_fixpoint_db ~trace prepared
       ~delta_preds:(Ast.idb program) ~dom db);
  let dred = Eval_util.prepare_dred prepared in
  let counting =
    match maintenance with
    | Dred -> None
    | Counting ->
        let c = Counting.create prepared dred in
        Counting.init c ~edb db;
        Some c
  in
  {
    program;
    prepared;
    dred;
    db;
    edb;
    delta_preds =
      List.sort_uniq String.compare
        (Ast.idb program @ Ast.body_preds program);
    trace;
    cache = Demand.Cache.create ();
    magic = None;
    counting;
  }

let maintenance t = match t.counting with None -> Dred | Some _ -> Counting

let program t = t.program
let edb t = t.edb
let instance t = Matcher.Db.instance t.db
let total t = Instance.total_facts (instance t)

(* Updates must leave the engine consistent even when a batch is
   rejected, so arity mismatches are detected against the stored
   relations before any mutation. *)
let validate_arities t batch =
  Instance.fold
    (fun p rel () ->
      match (Relation.arity rel, Relation.arity (Matcher.Db.relation t.db p)) with
      | Some a, Some b when a <> b ->
          invalid_arg
            (Printf.sprintf "%s has arity %d, batch fact has arity %d" p b a)
      | _ -> ())
    batch ()

(* every update invalidates the magic session (it is bound to a fixed
   base instance); the demand cache survives — its recorded answers key
   on the physical instance and flush by themselves *)
let invalidate t = t.magic <- None

let assert_facts t batch =
  validate_arities t batch;
  let added = ref 0 in
  let edb_added = ref [] in
  let delta =
    Instance.fold
      (fun p rel acc ->
        let news =
          Relation.fold
            (fun tup acc ->
              if not (Instance.mem_fact p tup t.edb) then (
                t.edb <- Instance.add_fact p tup t.edb;
                edb_added := (p, tup) :: !edb_added;
                incr added);
              if Matcher.Db.mem t.db p tup then acc else tup :: acc)
            rel []
        in
        match news with [] -> acc | _ -> (p, List.rev news) :: acc)
      batch []
  in
  let fresh = List.fold_left (fun n (_, ts) -> n + List.length ts) 0 delta in
  let before = total t in
  (* under counting maintenance, observe each propagation round's fresh
     facts so the new firings can be counted against the final db *)
  let rounds : (string * Tuple.t list) list list ref = ref [] in
  let on_delta =
    match t.counting with
    | None -> None
    | Some _ -> Some (fun d -> rounds := d :: !rounds)
  in
  let stages =
    match delta with
    | [] -> 0
    | _ ->
        snd
          (Eval_util.seminaive_increment_db ~trace:t.trace ?on_delta t.prepared
             ~delta_preds:t.delta_preds ~dom:no_dom t.db delta)
  in
  (match t.counting with
  | None -> ()
  | Some c ->
      (* merge the per-round deltas per predicate: rounds are disjoint
         (each round's facts are fresh), and the firing enumeration
         expects one binding per predicate *)
      let merged : (string, Tuple.t list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (List.iter (fun (p, ts) ->
             match Hashtbl.find_opt merged p with
             | Some l -> l := List.rev_append ts !l
             | None -> Hashtbl.add merged p (ref ts)))
        !rounds;
      let news = Hashtbl.fold (fun p l acc -> (p, !l) :: acc) merged [] in
      Counting.on_assert c ~edb_added:!edb_added ~news t.db);
  let derived = total t - before - fresh in
  invalidate t;
  (!added, derived, stages)

let retract_facts t batch =
  validate_arities t batch;
  let removed = ref 0 in
  let deletions =
    Instance.fold
      (fun p rel acc ->
        let ds =
          Relation.fold
            (fun tup acc ->
              if Instance.mem_fact p tup t.edb then (
                t.edb <- Instance.remove_fact p tup t.edb;
                incr removed;
                tup :: acc)
              else acc)
            rel []
        in
        match ds with [] -> acc | _ -> (p, ds) :: acc)
      batch []
  in
  let a, b =
    match t.counting with
    | Some c ->
        let s = Counting.retract ~trace:t.trace c ~edb:t.edb t.db deletions in
        (s.Counting.deleted, s.Counting.confirmed)
    | None ->
        let { Eval_util.overdeleted; rederived; cone_rounds = _ } =
          Eval_util.dred ~trace:t.trace t.dred ~edb:t.edb ~dom:no_dom t.db
            deletions
        in
        (overdeleted, rederived)
  in
  invalidate t;
  (!removed, a, b)

let audit_counts t =
  match t.counting with
  | None -> []
  | Some c -> Counting.audit c ~edb:t.edb t.db

(* Materialized point lookup: constants probe a memoized hash index on
   their positions; repeated variables filter the candidates. This is
   the same answer set as the demand paths — by construction of the
   magic rewriting, all three agree with filtering the full fixpoint. *)
let query_materialized t (q : Ast.atom) =
  let rel = Matcher.Db.relation t.db q.Ast.pred in
  if Relation.is_empty rel then Relation.empty
  else (
    (match Relation.arity rel with
    | Some a when a <> List.length q.Ast.args ->
        invalid_arg
          (Printf.sprintf "query %s: arity %d, stored relation has arity %d"
             q.Ast.pred (List.length q.Ast.args) a)
    | _ -> ());
    let bindings =
      List.mapi (fun i a -> (i, a)) q.Ast.args
      |> List.filter_map (function
           | i, Ast.Cst v -> Some (i, v)
           | _, Ast.Var _ -> None)
    in
    let cands = Matcher.Db.lookup t.db q.Ast.pred bindings in
    (* positions sharing one variable must carry equal ids *)
    let var_groups =
      let tbl : (string, int list ref) Hashtbl.t = Hashtbl.create 4 in
      List.iteri
        (fun i -> function
          | Ast.Var x -> (
              match Hashtbl.find_opt tbl x with
              | Some l -> l := i :: !l
              | None -> Hashtbl.add tbl x (ref [ i ]))
          | Ast.Cst _ -> ())
        q.Ast.args;
      Hashtbl.fold
        (fun _ l acc -> match !l with _ :: _ :: _ -> !l :: acc | _ -> acc)
        tbl []
    in
    let matches tup =
      List.for_all
        (function
          | p0 :: rest ->
              List.for_all (fun p -> Tuple.id tup p = Tuple.id tup p0) rest
          | [] -> true)
        var_groups
    in
    Relation.of_list
      (if var_groups = [] then cands else List.filter matches cands))

let magic_session t =
  match t.magic with
  | Some s -> s
  | None ->
      let s = Magic.session ~trace:t.trace t.program t.edb in
      t.magic <- Some s;
      s

let query t ?(via = Materialized) q =
  match via with
  | Materialized -> query_materialized t q
  | Demand -> Demand.answer ~trace:t.trace ~cache:t.cache t.program t.edb q
  | Magic -> Magic.ask (magic_session t) q
