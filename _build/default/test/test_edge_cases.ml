(* Edge cases and failure injection across the stack. *)
open Relational
open Helpers

(* --- empty inputs ---------------------------------------------------------- *)

let test_engines_on_empty_instance () =
  let p = tc_program in
  check_rel "naive" Relation.empty (Datalog.Naive.answer p Instance.empty "T");
  check_rel "seminaive" Relation.empty
    (Datalog.Seminaive.answer p Instance.empty "T");
  check_rel "inflationary" Relation.empty
    (Datalog.Inflationary.answer p Instance.empty "T");
  let wf = Datalog.Wellfounded.eval p Instance.empty in
  Alcotest.(check bool) "wf total on empty" true
    (Datalog.Wellfounded.is_total wf)

let test_empty_program () =
  let inst = facts "G(a,b)." in
  (* an empty program maps the input to itself *)
  Alcotest.check instance "identity"
    inst
    (Datalog.Inflationary.eval [] inst).Datalog.Inflationary.instance

let test_fact_only_program () =
  let p = prog "G(x, y). P(z)." in
  let res = Datalog.Seminaive.eval p Instance.empty in
  Alcotest.(check int) "two facts materialized" 2
    (Instance.total_facts res.Datalog.Seminaive.instance)

(* --- constants in programs --------------------------------------------------- *)

let test_program_constants_join_domain () =
  (* the rule's constant is in adom(P, K) even if absent from the input *)
  let p = prog "special(X) :- !blocked(X), X = marker." in
  (* X bound only via equality with a constant — nondeterministic syntax,
     so run under the ND evaluator deterministically *)
  Datalog.Ast.check_ndatalog p;
  let out = Nondet.Enumerate.terminals p (facts "seed(s).") in
  Alcotest.(check int) "one outcome" 1 (List.length out);
  Alcotest.(check bool) "marker derived" true
    (Instance.mem_fact "special" (t [ v "marker" ]) (List.hd out))

let test_wellfounded_with_constants () =
  let p = prog "p(a) :- !q(a). q(a) :- !p(a)." in
  let res = Datalog.Wellfounded.eval p Instance.empty in
  Alcotest.(check int) "both unknown" 2
    (Instance.total_facts (Datalog.Wellfounded.unknown res))

(* --- zero-ary relations --------------------------------------------------------- *)

let test_zero_ary_relations () =
  let p = prog "go() :- trigger(). done2() :- go()." in
  let inst = facts "trigger()." in
  let res = Datalog.Seminaive.eval p inst in
  Alcotest.(check bool) "done2 derived" true
    (Instance.mem_fact "done2" (t []) res.Datalog.Seminaive.instance)

(* --- pretty printer on odd values ---------------------------------------------- *)

let test_pretty_quoted_symbols () =
  (* constants that are not lowercase identifiers must round-trip *)
  let r =
    Datalog.Ast.fact
      (Datalog.Ast.atom "p"
         [
           Datalog.Ast.cst (Value.Sym "Upper");
           Datalog.Ast.cst (Value.Sym "has space");
           Datalog.Ast.cst (Value.Str "a\"b");
           Datalog.Ast.int (-5);
         ])
  in
  let printed = Datalog.Pretty.rule_to_string r in
  let reparsed = Datalog.Parser.parse_rule printed in
  Alcotest.(check bool) "quoted roundtrip" true (r = reparsed)

let test_pretty_lowercase_variable () =
  (* programmatic ASTs may use lowercase variables; they print as ?x *)
  let r =
    Datalog.Ast.rule
      (Datalog.Ast.atom "p" [ Datalog.Ast.var "x" ])
      [ Datalog.Ast.BPos (Datalog.Ast.atom "q" [ Datalog.Ast.var "x" ]) ]
  in
  let printed = Datalog.Pretty.rule_to_string r in
  Alcotest.(check string) "uses ?x" "p(?x) :- q(?x)." printed;
  Alcotest.(check bool) "roundtrip" true
    (Datalog.Parser.parse_rule printed = r)

(* --- divergence fuel ------------------------------------------------------------- *)

let test_invent_fuel_message () =
  let p = prog "next(X, N) :- start(X). next(N, M) :- next(X, N)." in
  match Datalog.Invent.eval ~max_stages:5 p (facts "start(a).") with
  | exception Failure msg ->
      Alcotest.(check bool) "mentions fuel" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected failure"

let test_noninflationary_max_stages () =
  (* a program that keeps growing (no cycle, no fixpoint within fuel):
     impossible without invention — instead check the cycle detector's
     fuel guard with a tiny budget on a long-running program *)
  let p = prog "T(X,Y) :- G(X,Y). T(X,Y) :- G(X,Z), T(Z,Y)." in
  let inst = Graph_gen.chain 30 in
  match Datalog.Noninflationary.run ~max_stages:3 p inst with
  | exception Failure _ -> ()
  | Datalog.Noninflationary.Fixpoint _ ->
      Alcotest.fail "3 stages cannot close a 30-chain"
  | _ -> Alcotest.fail "unexpected outcome"

(* --- stage counting -------------------------------------------------------------- *)

let test_stage_counts_agree () =
  List.iter
    (fun (name, inst) ->
      let n = (Datalog.Naive.eval tc_program inst).Datalog.Naive.stages in
      let s = (Datalog.Seminaive.eval tc_program inst).Datalog.Seminaive.stages in
      Alcotest.(check int) (name ^ " stages") n s)
    [ ("chain", Graph_gen.chain 7); ("cycle", Graph_gen.cycle 5) ]

let test_trace_length_matches_stages () =
  let inst = Graph_gen.chain 6 in
  let res = Datalog.Inflationary.eval tc_program inst in
  let trace = Datalog.Inflationary.trace tc_program inst in
  (* trace includes stage 0 (the input) and the final fixpoint stage *)
  Alcotest.(check int) "trace length"
    (res.Datalog.Inflationary.stages + 1)
    (List.length trace)

(* --- order on mixed-type domains --------------------------------------------------- *)

let test_order_mixed_types () =
  let inst = facts "P(3). P(\"str\"). P(zed). P(1)." in
  let o = Order.adjoin inst in
  Alcotest.(check bool) "valid" true (Order.is_ordered o);
  (* ints sort before strings before symbols *)
  Alcotest.(check bool) "first is 1" true
    (Instance.mem_fact "first" (t [ i 1 ]) o);
  Alcotest.(check bool) "last is zed" true
    (Instance.mem_fact "last" (t [ v "zed" ]) o)

let suite =
  [
    Alcotest.test_case "engines on empty instance" `Quick
      test_engines_on_empty_instance;
    Alcotest.test_case "empty program is identity" `Quick test_empty_program;
    Alcotest.test_case "fact-only programs" `Quick test_fact_only_program;
    Alcotest.test_case "program constants join adom" `Quick
      test_program_constants_join_domain;
    Alcotest.test_case "well-founded with constants" `Quick
      test_wellfounded_with_constants;
    Alcotest.test_case "zero-ary relations" `Quick test_zero_ary_relations;
    Alcotest.test_case "pretty: quoted symbols roundtrip" `Quick
      test_pretty_quoted_symbols;
    Alcotest.test_case "pretty: lowercase variables as ?x" `Quick
      test_pretty_lowercase_variable;
    Alcotest.test_case "invent fuel failure" `Quick test_invent_fuel_message;
    Alcotest.test_case "noninflationary fuel guard" `Quick
      test_noninflationary_max_stages;
    Alcotest.test_case "naive/semi-naive stage counts" `Quick
      test_stage_counts_agree;
    Alcotest.test_case "trace length = stages + 1" `Quick
      test_trace_length_matches_stages;
    Alcotest.test_case "order over mixed value types" `Quick
      test_order_mixed_types;
  ]
