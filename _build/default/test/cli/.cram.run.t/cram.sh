  $ cat > tc.dl <<'EOF'
  > T(X, Y) :- G(X, Y).
  > T(X, Y) :- G(X, Z), T(Z, Y).
  > EOF
  $ cat > g.facts <<'EOF'
  > G(a, b). G(b, c).
  > EOF
  $ datalog-unchained run -s seminaive tc.dl -f g.facts -a T
  $ datalog-unchained run -s naive tc.dl -f g.facts -a T
  $ cat > win.dl <<'EOF'
  > win(X) :- moves(X, Y), !win(Y).
  > EOF
  $ cat > moves.facts <<'EOF'
  > moves(b,c). moves(c,a). moves(a,b). moves(a,d).
  > moves(d,e). moves(d,f). moves(f,g).
  > EOF
  $ datalog-unchained run -s wellfounded win.dl -f moves.facts -a win
  $ cat > comp.dl <<'EOF'
  > T(X, Y) :- G(X, Y).
  > T(X, Y) :- G(X, Z), T(Z, Y).
  > CT(X, Y) :- !T(X, Y).
  > EOF
  $ datalog-unchained stratify comp.dl
  $ datalog-unchained stratify win.dl
  $ datalog-unchained check -l datalog tc.dl
  $ datalog-unchained check -l datalog comp.dl
  $ datalog-unchained check -l datalog-neg comp.dl
  $ cat > flip.dl <<'EOF'
  > T(0) :- T(1).
  > !T(1) :- T(1).
  > T(1) :- T(0).
  > !T(0) :- T(0).
  > EOF
  $ cat > t0.facts <<'EOF'
  > T(0).
  > EOF
  $ datalog-unchained run -s noninflationary flip.dl -f t0.facts
  $ cat > orient.dl <<'EOF'
  > !G(X, Y) :- G(X, Y), G(Y, X).
  > EOF
  $ cat > cyc.facts <<'EOF'
  > G(a, b). G(b, a).
  > EOF
  $ datalog-unchained nondet -m enumerate orient.dl -f cyc.facts
  $ datalog-unchained nondet -m cert orient.dl -f cyc.facts
  $ cat > query.dl <<'EOF'
  > T(X, Y) :- G(X, Y).
  > T(X, Y) :- T(X, Z), G(Z, Y).
  > ?- T(a, Y).
  > EOF
  $ datalog-unchained query query.dl -f g.facts
  $ datalog-unchained deps comp.dl
  $ cat > parity.dl <<'EOF'
  > odd(X) :- first(X).
  > even(X) :- odd(Y), succ(Y, X).
  > odd(X) :- even(Y), succ(Y, X).
  > is_even() :- last(X), even(X).
  > EOF
  $ cat > four.facts <<'EOF'
  > P(e1). P(e2). P(e3). P(e4).
  > EOF
  $ datalog-unchained run --ordered parity.dl -f four.facts -a is_even
  $ cat > broken.dl <<'EOF'
  > p(X :- q(X).
  > EOF
  $ datalog-unchained run broken.dl
