(* While/fixpoint language: evaluator, FO compilation, and the Theorem 4.2
   loop compilation (Examples 4.3/4.4 generalized). *)
open Relational
open Helpers
open While_lang

(* Example 4.4: good = nodes not reachable from a cycle.
   while change do good += forall y (G(y,x) -> good(y)) *)
let good_query =
  {
    Wast.formula =
      Fo.Forall
        ( [ "y" ],
          Fo.Implies (Fo.Atom ("G", [ Fo.Var "y"; Fo.Var "x" ]), Fo.Atom ("good", [ Fo.Var "y" ])) );
    vars = [ "x" ];
  }

let good_program = [ Wast.While_change [ Wast.Cumulate ("good", good_query) ] ]

(* Reference: nodes x such that no cycle reaches x. *)
let reference_good inst =
  let edges = Instance.find "G" inst in
  let tc = Graph_gen.reference_tc edges in
  let nodes = Relation.values edges in
  let on_cycle v = Relation.mem (t [ v; v ]) tc in
  let reachable_from_cycle x =
    List.exists
      (fun c -> on_cycle c && (Relation.mem (t [ c; x ]) tc || Value.equal c x))
      nodes
  in
  Relation.of_list
    (List.filter_map
       (fun x -> if reachable_from_cycle x then None else Some (t [ x ]))
       nodes)

let graphs =
  [
    ("chain", Graph_gen.chain 5);
    ("cycle", Graph_gen.cycle 4);
    ("cycle+tail", facts "G(a,b). G(b,a). G(b,c). G(c,d). G(e,d).");
    ("tree", Graph_gen.binary_tree 3);
    ("random", Graph_gen.random ~seed:7 8 14);
  ]

let test_while_good_reference () =
  List.iter
    (fun (name, inst) ->
      let got = Weval.answer good_program inst "good" in
      let expected = reference_good inst in
      check_rel (Printf.sprintf "good on %s" name) expected got)
    graphs

let test_while_change_terminates () =
  let inst = Graph_gen.chain 10 in
  match Weval.run good_program inst with
  | Weval.Completed { iterations; _ } ->
      Alcotest.(check bool) "bounded iterations" true (iterations <= 12)
  | _ -> Alcotest.fail "expected completion"

let test_while_divergence_detected () =
  (* while true do R := ¬R — flip-flops forever *)
  let p =
    [
      Wast.While
        ( Fo.True,
          [
            Wast.Assign
              ( "R",
                {
                  Wast.formula = Fo.Not (Fo.Atom ("R", [ Fo.Var "x" ]));
                  vars = [ "x" ];
                } );
          ] );
    ]
  in
  let inst = facts "S(a). S(b)." in
  match Weval.run ~fuel:50 p inst with
  | Weval.Out_of_fuel _ -> ()
  | Weval.Completed _ -> Alcotest.fail "expected divergence"

let test_while_assign_vs_cumulate () =
  (* destructive := replaces, += accumulates *)
  let q1 = { Wast.formula = Fo.Atom ("A", [ Fo.Var "x" ]); vars = [ "x" ] } in
  let q2 = { Wast.formula = Fo.Atom ("B", [ Fo.Var "x" ]); vars = [ "x" ] } in
  let inst = facts "A(a). B(b)." in
  let replaced =
    Weval.answer [ Wast.Assign ("R", q1); Wast.Assign ("R", q2) ] inst "R"
  in
  check_rel "replace" (unary [ "b" ]) replaced;
  let accumulated =
    Weval.answer [ Wast.Cumulate ("R", q1); Wast.Cumulate ("R", q2) ] inst "R"
  in
  check_rel "accumulate" (unary [ "a"; "b" ]) accumulated

let test_fixpoint_classification () =
  Alcotest.(check bool) "good program is fixpoint" true
    (Wast.is_fixpoint good_program);
  Alcotest.(check bool) "assign makes it while" false
    (Wast.is_fixpoint
       [ Wast.Assign ("R", { Wast.formula = Fo.True; vars = [] }) ])

(* --- FO compilation ---------------------------------------------------- *)

let sources = [ ("G", 2); ("P", 1) ]

let fo_cases =
  [
    ( "difference",
      Fo.And
        ( Fo.Atom ("P", [ Fo.Var "x" ]),
          Fo.Not (Fo.Exists ([ "y" ], Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "y" ])))
        ),
      [ "x" ] );
    ( "universal",
      Fo.Forall
        ( [ "y" ],
          Fo.Implies
            ( Fo.Atom ("G", [ Fo.Var "y"; Fo.Var "x" ]),
              Fo.Atom ("P", [ Fo.Var "y" ]) ) ),
      [ "x" ] );
    ("equality", Fo.Eq (Fo.Var "x", Fo.Var "y"), [ "x"; "y" ]);
    ( "disjunction",
      Fo.Or (Fo.Atom ("P", [ Fo.Var "x" ]), Fo.Exists ([ "y" ], Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "y" ]))),
      [ "x" ] );
  ]

let fo_instance = facts "G(a,b). G(b,c). G(c,c). P(a). P(c)."

let test_fo_compile_matches_eval () =
  List.iter
    (fun (name, f, vars) ->
      let direct = Fo.eval fo_instance f vars in
      let compiled = Fo_compile.answer ~sources f vars fo_instance in
      check_rel (Printf.sprintf "FO compile: %s" name) direct compiled)
    fo_cases

let test_fo_compile_is_stratifiable () =
  List.iter
    (fun (_, f, vars) ->
      let { Fo_compile.rules; _ } = Fo_compile.compile ~sources f vars in
      Alcotest.(check bool) "stratifiable" true
        (Datalog.Stratify.is_stratifiable rules))
    fo_cases

(* --- Theorem 4.2: fixpoint loop -> inflationary Datalog¬ --------------- *)

let test_loop_compile_stamped_good () =
  List.iter
    (fun (name, inst) ->
      let got =
        Compile.run_loop ~sources:[ ("G", 2) ] ~rel:"good" good_query inst
      in
      let expected = Weval.answer good_program inst "good" in
      check_rel (Printf.sprintf "compiled good on %s" name) expected got)
    graphs

let test_loop_compile_mode_detection () =
  let { Compile.mode; _ } =
    Compile.fixpoint_loop ~sources:[ ("G", 2) ] ~rel:"good" good_query
  in
  Alcotest.(check bool) "good loop uses stamps" true (mode = Compile.Stamped)

let test_loop_compile_monotone_tc () =
  (* while change do T += G(x,y) ∨ ∃z (G(x,z) ∧ T(z,y)) — monotone *)
  let q =
    {
      Wast.formula =
        Fo.Or
          ( Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "y" ]),
            Fo.Exists
              ( [ "z" ],
                Fo.And
                  ( Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "z" ]),
                    Fo.Atom ("T", [ Fo.Var "z"; Fo.Var "y" ]) ) ) );
      vars = [ "x"; "y" ];
    }
  in
  let { Compile.mode; _ } =
    Compile.fixpoint_loop ~sources:[ ("G", 2) ] ~rel:"T" q
  in
  Alcotest.(check bool) "TC loop is monotone" true (mode = Compile.Monotone);
  List.iter
    (fun (name, inst) ->
      let got = Compile.run_loop ~sources:[ ("G", 2) ] ~rel:"T" q inst in
      let expected = Graph_gen.reference_tc (Instance.find "G" inst) in
      check_rel (Printf.sprintf "compiled TC on %s" name) expected got)
    graphs

let test_loop_compile_rejects_mixed () =
  (* R occurs both positively and under negation *)
  let q =
    {
      Wast.formula =
        Fo.And
          ( Fo.Atom ("R", [ Fo.Var "x" ]),
            Fo.Not (Fo.Atom ("R", [ Fo.Var "x" ])) );
      vars = [ "x" ];
    }
  in
  match Compile.fixpoint_loop ~sources:[ ("G", 2) ] ~rel:"R" q with
  | exception Compile.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let suite =
  [
    Alcotest.test_case "good/bad loop matches reference (Ex 4.4)" `Quick
      test_while_good_reference;
    Alcotest.test_case "while-change terminates" `Quick
      test_while_change_terminates;
    Alcotest.test_case "divergent while detected" `Quick
      test_while_divergence_detected;
    Alcotest.test_case ":= replaces, += accumulates" `Quick
      test_while_assign_vs_cumulate;
    Alcotest.test_case "fixpoint classification" `Quick
      test_fixpoint_classification;
    Alcotest.test_case "FO compile matches direct eval" `Quick
      test_fo_compile_matches_eval;
    Alcotest.test_case "FO compile output is stratifiable" `Quick
      test_fo_compile_is_stratifiable;
    Alcotest.test_case "loop compile: stamped good (Ex 4.4)" `Quick
      test_loop_compile_stamped_good;
    Alcotest.test_case "loop compile: mode detection" `Quick
      test_loop_compile_mode_detection;
    Alcotest.test_case "loop compile: monotone TC" `Quick
      test_loop_compile_monotone_tc;
    Alcotest.test_case "loop compile: mixed polarity rejected" `Quick
      test_loop_compile_rejects_mixed;
  ]
