(* Dependency graphs and stratification. *)
open Helpers
module Depgraph = Datalog.Depgraph
module Stratify = Datalog.Stratify

let comp_tc =
  prog
    {|
    T(X, Y) :- G(X, Y).
    T(X, Y) :- G(X, Z), T(Z, Y).
    CT(X, Y) :- !T(X, Y).
  |}

let test_edges () =
  let es = Depgraph.edges comp_tc in
  let has src dst negative =
    List.exists
      (fun e ->
        e.Depgraph.src = src && e.Depgraph.dst = dst
        && e.Depgraph.negative = negative)
      es
  in
  Alcotest.(check bool) "G->T" true (has "G" "T" false);
  Alcotest.(check bool) "T->T" true (has "T" "T" false);
  Alcotest.(check bool) "T-¬->CT" true (has "T" "CT" true);
  Alcotest.(check int) "edge count" 3 (List.length es)

let test_sccs_topological () =
  let comps = Depgraph.sccs comp_tc in
  (* dependencies first: G before T before CT *)
  let pos name =
    let rec go i = function
      | [] -> -1
      | c :: rest -> if List.mem name c then i else go (i + 1) rest
    in
    go 0 comps
  in
  Alcotest.(check bool) "G before T" true (pos "G" < pos "T");
  Alcotest.(check bool) "T before CT" true (pos "T" < pos "CT")

let test_mutual_recursion_one_component () =
  let p = prog "p(X) :- q(X). q(X) :- p(X). r(X) :- p(X)." in
  Alcotest.(check bool) "p,q together" true (Depgraph.recursive_with p "p" "q");
  Alcotest.(check bool) "r separate" false (Depgraph.recursive_with p "p" "r")

let test_stratification_levels () =
  match Stratify.stratify comp_tc with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check int) "two strata" 2 (Stratify.num_strata s);
      Alcotest.(check (list int))
        "levels: CT=1, G=0, T=0"
        [ 1; 0; 0 ]
        (List.map snd s.Stratify.stratum_of)

let test_deep_stratification () =
  (* a chain of alternating negations: each negation bumps the stratum *)
  let p =
    prog
      {|
      p1(X) :- e(X).
      p2(X) :- e(X), !p1(X).
      p3(X) :- e(X), !p2(X).
      p4(X) :- e(X), !p3(X).
    |}
  in
  match Stratify.stratify p with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check int) "four strata" 4 (Stratify.num_strata s);
      Alcotest.(check int) "p4 at level 3" 3
        (List.assoc "p4" s.Stratify.stratum_of)

let test_positive_recursion_same_stratum () =
  let p =
    prog
      {|
      odd(X) :- e(X), !even_base(X).
      even_base(X) :- z(X).
      p(X) :- q(X), odd(X).
      q(X) :- p(X).
    |}
  in
  match Stratify.stratify p with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check int) "p and q same stratum" 0
        (compare
           (List.assoc "p" s.Stratify.stratum_of)
           (List.assoc "q" s.Stratify.stratum_of))

let test_unstratifiable_witness () =
  let win = prog "win(X) :- moves(X, Y), !win(Y)." in
  (match Depgraph.negative_in_cycle win with
  | Some e ->
      Alcotest.(check string) "witness src" "win" e.Depgraph.src;
      Alcotest.(check string) "witness dst" "win" e.Depgraph.dst
  | None -> Alcotest.fail "expected a witness");
  Alcotest.(check bool) "not stratifiable" false
    (Stratify.is_stratifiable win);
  (* mutual negative recursion through an intermediary *)
  let p = prog "p(X) :- e(X), !q(X). q(X) :- r(X). r(X) :- p(X)." in
  Alcotest.(check bool) "negative cycle via chain" false
    (Stratify.is_stratifiable p)

let test_semipositive () =
  Alcotest.(check bool) "negation on edb only" true
    (Stratify.is_semipositive
       (prog "T(X,Y) :- G(X,Y), !blocked(X). T(X,Y) :- T(X,Z), G(Z,Y)."));
  Alcotest.(check bool) "negation on idb" false
    (Stratify.is_semipositive comp_tc)

let test_dot_output () =
  let dot = Format.asprintf "%a" Depgraph.pp_dot comp_tc in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "dashed negative edge" true
    (contains "style=dashed" dot)

let suite =
  [
    Alcotest.test_case "dependency edges" `Quick test_edges;
    Alcotest.test_case "SCCs in topological order" `Quick
      test_sccs_topological;
    Alcotest.test_case "mutual recursion in one SCC" `Quick
      test_mutual_recursion_one_component;
    Alcotest.test_case "stratification levels" `Quick
      test_stratification_levels;
    Alcotest.test_case "deep stratification" `Quick test_deep_stratification;
    Alcotest.test_case "positive recursion shares a stratum" `Quick
      test_positive_recursion_same_stratum;
    Alcotest.test_case "unstratifiable witnesses" `Quick
      test_unstratifiable_witness;
    Alcotest.test_case "semi-positive classification" `Quick test_semipositive;
    Alcotest.test_case "dot output" `Quick test_dot_output;
  ]
