(* Production-rule layer: recognize-act cycle, strategies, refraction. *)
open Relational
open Helpers
module P = Datalog.Production

let rules =
  prog
    {|
      reserved(Item, Cust), !stock(Item) :- order(Cust, Item), stock(Item).
      shipped(Item, Cust), !reserved(Item, Cust) :-
        reserved(Item, Cust), carrier_ready.
      backorder(Cust, Item) :-
        order(Cust, Item), !stock(Item),
        !reserved(Item, Cust), !shipped(Item, Cust).
    |}

let memory =
  facts
    {|
      order(alice, widget). order(bob, widget).
      stock(widget). carrier_ready().
    |}

let shipped res = Instance.find "shipped" res.P.memory
let backordered res = Instance.find "backorder" res.P.memory

let test_first_match_deterministic () =
  let r1 = P.run ~strategy:P.First rules memory in
  let r2 = P.run ~strategy:P.First rules memory in
  Alcotest.check instance "deterministic" r1.P.memory r2.P.memory;
  Alcotest.(check int) "one shipment" 1 (Relation.cardinal (shipped r1));
  Alcotest.(check int) "one backorder" 1 (Relation.cardinal (backordered r1))

let test_random_seeded () =
  let r1 = P.run ~strategy:(P.Random 1) rules memory in
  let r2 = P.run ~strategy:(P.Random 1) rules memory in
  Alcotest.check instance "same seed same run" r1.P.memory r2.P.memory;
  Alcotest.(check int) "one shipment" 1 (Relation.cardinal (shipped r1))

let test_all_strategies_quiesce_consistently () =
  List.iter
    (fun s ->
      let r = P.run ~strategy:s rules memory in
      Alcotest.(check int) "one shipment" 1 (Relation.cardinal (shipped r));
      Alcotest.(check int) "one backorder" 1
        (Relation.cardinal (backordered r));
      Alcotest.(check int) "stock exhausted" 0
        (Relation.cardinal (Instance.find "stock" r.P.memory)))
    [ P.First; P.Random 7; P.Recency; P.Specificity ]

let test_trace_records_firings () =
  let r = P.run rules memory in
  Alcotest.(check int) "cycles = trace length" r.P.cycles
    (List.length r.P.trace);
  (* the first firing must be the reservation rule (only applicable one) *)
  match r.P.trace with
  | f :: _ ->
      Alcotest.(check int) "rule 0 first" 0 f.P.rule_index;
      Alcotest.(check int) "one assert" 1 (List.length f.P.asserted);
      Alcotest.(check int) "one retract" 1 (List.length f.P.retracted)
  | [] -> Alcotest.fail "empty trace"

let test_refraction_stops_assert_only_rules () =
  (* without refraction this rule would fire forever under no-op
     skipping... actually the no-change filter already stops it; refraction
     matters when a rule's firing keeps re-enabling itself indirectly. *)
  let p = prog "mark(X) :- e(X)." in
  let r = P.run p (facts "e(a). e(b).") in
  Alcotest.(check int) "two cycles" 2 r.P.cycles

let test_retract_reassert_refires () =
  (* toggle: consuming a trigger fact re-asserted by another rule refires
     thanks to epoch-based refraction *)
  let p =
    prog
      {|
      !pulse(), count(X) :- pulse(), next(X), !count(X).
      pulse() :- count(X), !pulse(), !done2().
      done2() :- count(a), count(b).
    |}
  in
  (* not a precise protocol — just check quiescence without failure *)
  let r = P.run ~max_cycles:100 p (facts "pulse(). next(a). next(b).") in
  Alcotest.(check bool) "quiesced" true (r.P.cycles <= 100)

let test_fuel_exhaustion () =
  (* two rules that keep toggling a fact never quiesce *)
  let p = prog "on() , !off() :- off(). off(), !on() :- on()." in
  match P.run ~max_cycles:20 p (facts "on().") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let suite =
  [
    Alcotest.test_case "first-match deterministic" `Quick
      test_first_match_deterministic;
    Alcotest.test_case "random strategy seeded" `Quick test_random_seeded;
    Alcotest.test_case "all strategies quiesce consistently" `Quick
      test_all_strategies_quiesce_consistently;
    Alcotest.test_case "trace records firings" `Quick
      test_trace_records_firings;
    Alcotest.test_case "assert-only rules stop" `Quick
      test_refraction_stops_assert_only_rules;
    Alcotest.test_case "retract/re-assert refires" `Quick
      test_retract_reassert_refires;
    Alcotest.test_case "fuel exhaustion detected" `Quick test_fuel_exhaustion;
  ]
