(* Smoke tests exercising every engine on the paper's own examples. These
   run first; the deeper per-module suites live in their own files. *)
open Relational
open Helpers

let tc_edges = pairs [ ("a", "b"); ("b", "c") ]
let tc_input = Instance.of_list [] |> Instance.set "G" tc_edges

let expected_tc =
  pairs [ ("a", "b"); ("b", "c"); ("a", "c") ]

let test_naive_tc () =
  check_rel "naive TC" expected_tc (Datalog.Naive.answer tc_program tc_input "T")

let test_seminaive_tc () =
  check_rel "semi-naive TC" expected_tc
    (Datalog.Seminaive.answer tc_program tc_input "T")

(* §3.2: complement of transitive closure, stratified. *)
let comp_tc_program =
  prog
    {|
    T(X, Y) :- G(X, Y).
    T(X, Y) :- G(X, Z), T(Z, Y).
    CT(X, Y) :- !T(X, Y).
  |}

let test_stratified_complement () =
  (* adom = {a, b, c}; CT = adom^2 \ T *)
  let all =
    pairs
      [ ("a","a");("a","b");("a","c");("b","a");("b","b");("b","c");
        ("c","a");("c","b");("c","c") ]
  in
  let expected = Relation.diff all expected_tc in
  check_rel "stratified CT" expected
    (Datalog.Stratified.answer comp_tc_program tc_input "CT")

let test_unstratifiable_rejected () =
  let p = prog {| win(X) :- moves(X, Y), !win(Y). |} in
  Alcotest.check_raises "win program is not stratifiable"
    (Datalog.Stratified.Not_stratifiable
       "not stratifiable: win depends negatively on win inside a recursive \
        component")
    (fun () -> ignore (Datalog.Stratified.eval p (Graph_gen.paper_game ())))

(* Example 3.2: the win game under well-founded semantics. *)
let win_program = prog {| win(X) :- moves(X, Y), !win(Y). |}

let test_wellfounded_win () =
  let res = Datalog.Wellfounded.eval win_program (Graph_gen.paper_game ()) in
  let tr p = Datalog.Wellfounded.truth_of res "win" (t [ v p ]) in
  Alcotest.(check bool) "not total" false (Datalog.Wellfounded.is_total res);
  List.iter
    (fun (s, expected) ->
      let got = tr s in
      if got <> expected then
        Alcotest.failf "win(%s): wrong truth value" s)
    [
      ("d", Datalog.Wellfounded.True);
      ("f", Datalog.Wellfounded.True);
      ("e", Datalog.Wellfounded.False);
      ("g", Datalog.Wellfounded.False);
      ("a", Datalog.Wellfounded.Unknown);
      ("b", Datalog.Wellfounded.Unknown);
      ("c", Datalog.Wellfounded.Unknown);
    ]

(* Example 4.1: closer. *)
let closer_program =
  prog
    {|
    T(X, Y) :- G(X, Y).
    T(X, Y) :- T(X, Z), G(Z, Y).
    closer(X, Y, X2, Y2) :- T(X, Y), !T(X2, Y2).
  |}

let test_inflationary_closer () =
  (* chain a -> b -> c: d(a,b) = d(b,c) = 1, d(a,c) = 2; all other pairs
     infinite. Working the stage semantics through (closer(x,y,x',y') is
     derived at stage n+1 iff d(x,y) <= n < d(x',y')), the program derives
     closer(x,y,x',y') iff d(x,y) is finite and d(x,y) < d(x',y') — the
     strict comparison matching the paper's own reasoning ("the distance
     between x and y is less than that between x' and y'"), though its
     display equation writes <=. *)
  let res = Datalog.Inflationary.eval closer_program tc_input in
  let closer = Instance.find "closer" res.Datalog.Inflationary.instance in
  let d = function
    | "a", "b" | "b", "c" -> 1
    | "a", "c" -> 2
    | _ -> max_int
  in
  let names = [ "a"; "b"; "c" ] in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          List.iter
            (fun x' ->
              List.iter
                (fun y' ->
                  let expected =
                    d (x, y) < d (x', y') && d (x, y) <> max_int
                  in
                  let got =
                    Relation.mem (t [ v x; v y; v x'; v y' ]) closer
                  in
                  if expected <> got then
                    Alcotest.failf "closer(%s,%s,%s,%s): expected %b got %b" x
                      y x' y' expected got)
                names)
            names)
        names)
    names

(* Example 4.3: inflationary complement-of-TC with the delay technique. *)
let delayed_ct_program =
  prog
    {|
    T(X, Y) :- G(X, Y).
    T(X, Y) :- G(X, Z), T(Z, Y).
    old_T(X, Y) :- T(X, Y).
    old_T_except_final(X, Y) :- T(X, Y), T(X2, Z2), T(Z2, Y2), !T(X2, Y2).
    CT(X, Y) :- !T(X, Y), old_T(X2, Y2), !old_T_except_final(X2, Y2).
  |}

let test_inflationary_delayed_complement () =
  let stratified = Datalog.Stratified.answer comp_tc_program tc_input "CT" in
  let inflationary =
    Datalog.Inflationary.answer delayed_ct_program tc_input "CT"
  in
  check_rel "Example 4.3 complement agrees with stratified" stratified
    inflationary

(* §4.2: the flip-flop program diverges. *)
let test_flipflop_diverges () =
  let p =
    prog
      {|
    T(0) :- T(1).
    !T(1) :- T(1).
    T(1) :- T(0).
    !T(0) :- T(0).
  |}
  in
  let inst = Instance.of_list [ ("T", [ [ i 0 ] ]) ] in
  match Datalog.Noninflationary.run p inst with
  | Datalog.Noninflationary.Diverged { period; _ } ->
      Alcotest.(check int) "flip-flop period" 2 period
  | _ -> Alcotest.fail "expected divergence"

(* Datalog¬new: mint one witness per input fact. *)
let test_invent_fresh_values () =
  let p = prog {| tagged(X, N) :- item(X). |} in
  let inst = Instance.of_list [ ("item", [ [ v "a" ]; [ v "b" ] ]) ] in
  match Datalog.Invent.run p inst with
  | Datalog.Invent.Fixpoint { instance; invented; _ } ->
      let tagged = Instance.find "tagged" instance in
      Alcotest.(check int) "two tags" 2 (Relation.cardinal tagged);
      Alcotest.(check int) "two invented values" 2 invented;
      Alcotest.(check bool) "tags are invented" true
        (Relation.for_all (fun t -> Value.is_invented (Tuple.get t 1)) tagged)
  | _ -> Alcotest.fail "expected fixpoint"

let suite =
  [
    Alcotest.test_case "naive TC" `Quick test_naive_tc;
    Alcotest.test_case "semi-naive TC" `Quick test_seminaive_tc;
    Alcotest.test_case "stratified complement" `Quick
      test_stratified_complement;
    Alcotest.test_case "unstratifiable rejected" `Quick
      test_unstratifiable_rejected;
    Alcotest.test_case "well-founded win game (Ex 3.2)" `Quick
      test_wellfounded_win;
    Alcotest.test_case "inflationary closer (Ex 4.1)" `Quick
      test_inflationary_closer;
    Alcotest.test_case "inflationary delayed complement (Ex 4.3)" `Quick
      test_inflationary_delayed_complement;
    Alcotest.test_case "flip-flop diverges (§4.2)" `Quick
      test_flipflop_diverges;
    Alcotest.test_case "value invention mints fresh values" `Quick
      test_invent_fresh_values;
  ]
