(* Turing machine substrate and the Theorem 4.6 compilation. *)

let test_unary_increment_direct () =
  match Turing.Tm.run Turing.Tm.unary_increment [ "1"; "1"; "1" ] with
  | Turing.Tm.Accepted { final; _ } ->
      let tape = List.map snd final.Turing.Tm.tape in
      Alcotest.(check (list string)) "tape" [ "1"; "1"; "1"; "1" ] tape
  | _ -> Alcotest.fail "expected acceptance"

let test_parity_direct () =
  let run input =
    match Turing.Tm.run Turing.Tm.parity input with
    | Turing.Tm.Accepted _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "even # of 1s accepted" true (run [ "1"; "0"; "1" ]);
  Alcotest.(check bool) "odd # of 1s rejected" false (run [ "1"; "0"; "0" ]);
  Alcotest.(check bool) "empty accepted" true (run [])

let test_binary_increment_direct () =
  match Turing.Tm.run Turing.Tm.binary_increment [ "1"; "0"; "1" ] with
  | Turing.Tm.Accepted { final; _ } ->
      let tape =
        Turing.Tm.tape_to_list final ~lo:0 ~hi:2 "_"
      in
      Alcotest.(check (list string)) "101 + 1 = 110" [ "1"; "1"; "0" ] tape
  | _ -> Alcotest.fail "expected acceptance"

let test_palindrome_direct () =
  let accepts input =
    match Turing.Tm.run Turing.Tm.palindrome input with
    | Turing.Tm.Accepted _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "0110" true (accepts [ "0"; "1"; "1"; "0" ]);
  Alcotest.(check bool) "010" true (accepts [ "0"; "1"; "0" ]);
  Alcotest.(check bool) "011" false (accepts [ "0"; "1"; "1" ]);
  Alcotest.(check bool) "empty" true (accepts [])

(* The Theorem 4.6 construction: the compiled Datalog¬new program agrees
   with the reference interpreter. *)
let test_compiled_unary_increment () =
  Alcotest.(check bool) "simulation agrees" true
    (Turing.Tm_compile.agrees_with_reference Turing.Tm.unary_increment
       [ "1"; "1" ])

let test_compiled_parity () =
  List.iter
    (fun input ->
      Alcotest.(check bool)
        (Printf.sprintf "parity on [%s]" (String.concat "" input))
        true
        (Turing.Tm_compile.agrees_with_reference Turing.Tm.parity input))
    [ [ "1"; "1" ]; [ "1"; "0" ]; [ "0" ]; [ "1"; "1"; "1"; "1" ] ]

let test_compiled_binary_increment () =
  Alcotest.(check bool) "binary increment agrees" true
    (Turing.Tm_compile.agrees_with_reference Turing.Tm.binary_increment
       [ "1"; "1" ])

let test_compiled_steps_match () =
  (* steps recorded by the simulation equal the interpreter's count *)
  let input = [ "1"; "1"; "1" ] in
  let sim = Turing.Tm_compile.simulate Turing.Tm.unary_increment input in
  match Turing.Tm.run Turing.Tm.unary_increment input with
  | Turing.Tm.Accepted { steps; _ } ->
      Alcotest.(check int) "step count" steps sim.Turing.Tm_compile.steps;
      Alcotest.(check bool) "invents at least one value per step" true
        (sim.Turing.Tm_compile.invented >= steps)
  | _ -> Alcotest.fail "expected acceptance"

let test_compiled_program_is_invent_fragment () =
  (* the compiled program passes the Datalog¬new checks and would be
     rejected as plain Datalog¬ (head-only variables) *)
  let p = Turing.Tm_compile.compile Turing.Tm.parity in
  Datalog.Ast.check_invent p;
  Alcotest.check_raises "not plain Datalog¬"
    (Datalog.Ast.Check_error
       "rule with head trans1: head variable T2 does not occur in the body")
    (fun () -> Datalog.Ast.check_datalog_neg p)

let suite =
  [
    Alcotest.test_case "unary increment (interpreter)" `Quick
      test_unary_increment_direct;
    Alcotest.test_case "parity (interpreter)" `Quick test_parity_direct;
    Alcotest.test_case "binary increment (interpreter)" `Quick
      test_binary_increment_direct;
    Alcotest.test_case "palindrome (interpreter)" `Quick
      test_palindrome_direct;
    Alcotest.test_case "compiled unary increment (Thm 4.6)" `Quick
      test_compiled_unary_increment;
    Alcotest.test_case "compiled parity (Thm 4.6)" `Quick
      test_compiled_parity;
    Alcotest.test_case "compiled binary increment (Thm 4.6)" `Quick
      test_compiled_binary_increment;
    Alcotest.test_case "compiled step count matches" `Quick
      test_compiled_steps_match;
    Alcotest.test_case "compiled program is Datalog¬new" `Quick
      test_compiled_program_is_invent_fragment;
  ]
