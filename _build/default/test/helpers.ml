(* Shared test helpers. *)
open Relational

let value = Alcotest.testable Value.pp Value.equal
let relation = Alcotest.testable Relation.pp Relation.equal

let instance =
  Alcotest.testable
    (fun ppf i -> Format.fprintf ppf "@[<v>%a@]" Instance.pp i)
    Instance.equal

let tuple = Alcotest.testable Tuple.pp Tuple.equal

let v = Value.sym
let i n = Value.Int n

let t vs = Tuple.of_list vs
let rel rows = Relation.of_rows rows

(* Parse a program from text, failing the test with location info. *)
let prog src =
  try Datalog.Parser.parse_program src with
  | Datalog.Parser.Parse_error (line, msg) ->
      Alcotest.failf "parse error line %d: %s" line msg
  | Datalog.Lexer.Lex_error (line, msg) ->
      Alcotest.failf "lex error line %d: %s" line msg

let facts src =
  try Instance.parse_facts src with Failure msg -> Alcotest.fail msg

(* Binary relation of sym pairs. *)
let pairs ps = Relation.of_rows (List.map (fun (a, b) -> [ v a; v b ]) ps)

let unary xs = Relation.of_rows (List.map (fun a -> [ v a ]) xs)

let tc_program =
  prog {|
    T(X, Y) :- G(X, Y).
    T(X, Y) :- G(X, Z), T(Z, Y).
  |}

let check_rel msg expected actual = Alcotest.check relation msg expected actual
