(* Deeper per-engine behaviour: well-founded corner cases, stable models,
   Datalog¬¬ conflict policies, value invention, magic sets,
   semi-positive programs, ordered databases. *)
open Relational
open Helpers
module WF = Datalog.Wellfounded
module NI = Datalog.Noninflationary

let win = prog "win(X) :- moves(X, Y), !win(Y)."

(* --- well-founded -------------------------------------------------------- *)

let test_wf_cycle_all_unknown () =
  let res = WF.eval win (Graph_gen.cycle ~name:"moves" 3) in
  Alcotest.(check int) "no true wins" 0
    (Relation.cardinal (Instance.find "win" res.WF.true_facts));
  Alcotest.(check int) "three unknowns" 3
    (Instance.total_facts (WF.unknown res))

let test_wf_chain_alternates () =
  (* on a chain v0 -> ... -> v(n-1), the last position is lost; truth
     alternates back from it: total model *)
  let n = 6 in
  let res = WF.eval win (Graph_gen.game_chain n) in
  Alcotest.(check bool) "total" true (WF.is_total res);
  List.iteri
    (fun i expected ->
      let tr =
        WF.truth_of res "win" (t [ Graph_gen.vertex i ])
      in
      let got = tr = WF.True in
      if got <> expected then Alcotest.failf "win(n%d) wrong" i)
    (* v5 is stuck (lost); winning alternates walking back from it *)
    [ true; false; true; false; true; false ]

let test_wf_negation_on_edb () =
  let p = prog "p(X) :- e(X), !blocked(X)." in
  let inst = facts "e(a). e(b). blocked(b)." in
  let res = WF.eval p inst in
  Alcotest.(check bool) "total" true (WF.is_total res);
  check_rel "p" (unary [ "a" ]) (Instance.find "p" res.WF.true_facts)

let test_wf_equals_stratified_on_stratifiable () =
  let p =
    prog
      {|
      T(X, Y) :- G(X, Y).
      T(X, Y) :- G(X, Z), T(Z, Y).
      CT(X, Y) :- !T(X, Y).
      isolated(X) :- node(X), !touched(X).
      touched(X) :- G(X, Y).
      touched(Y) :- G(X, Y).
      node(X) :- G(X, Y).
      node(Y) :- G(X, Y).
    |}
  in
  List.iter
    (fun seed ->
      let inst = Graph_gen.random ~seed 9 14 in
      let s = Datalog.Stratified.eval p inst in
      let w = WF.eval p inst in
      Alcotest.(check bool) "total" true (WF.is_total w);
      Alcotest.check instance "stratified = wf true facts"
        s.Datalog.Stratified.instance w.WF.true_facts)
    [ 1; 2; 3; 4; 5 ]

let test_wf_alternating_sequence_monotone () =
  let seq = WF.alternating_sequence win (Graph_gen.paper_game ()) in
  let rec check_mono = function
    | (u1, o1) :: ((u2, o2) :: _ as rest) ->
        Alcotest.(check bool) "under grows" true (Instance.subset u1 u2);
        Alcotest.(check bool) "over shrinks" true (Instance.subset o2 o1);
        check_mono rest
    | _ -> ()
  in
  check_mono seq;
  (* under ⊆ over at every step *)
  List.iter
    (fun (u, o) ->
      Alcotest.(check bool) "under ⊆ over" true (Instance.subset u o))
    seq

(* --- stable models -------------------------------------------------------- *)

let test_stable_of_stratifiable_is_unique () =
  let p = prog "p(X) :- e(X), !q(X). q(X) :- r(X)." in
  let inst = facts "e(a). e(b). r(a)." in
  let models = Datalog.Stable.models p inst in
  Alcotest.(check int) "exactly one" 1 (List.length models);
  let m = List.hd models in
  check_rel "p = {b}" (unary [ "b" ]) (Instance.find "p" m)

let test_stable_two_cycle () =
  (* p :- !q. q :- !p. — two stable models *)
  let p = prog "p(X) :- e(X), !q(X). q(X) :- e(X), !p(X)." in
  let inst = facts "e(a)." in
  let models = Datalog.Stable.models p inst in
  Alcotest.(check int) "two models" 2 (List.length models);
  List.iter
    (fun m -> Alcotest.(check bool) "stable check" true
        (Datalog.Stable.is_stable p inst m))
    models

let test_stable_none () =
  (* p :- !p. — no stable model *)
  let p = prog "p(X) :- e(X), !p(X)." in
  let inst = facts "e(a)." in
  Alcotest.(check int) "no models" 0 (Datalog.Stable.count p inst);
  (* but well-founded assigns unknown *)
  let res = WF.eval p inst in
  Alcotest.(check int) "one unknown" 1 (Instance.total_facts (WF.unknown res))

let test_stable_true_facts_in_all_models () =
  (* the paper's game contains the odd cycle a -> b -> c -> a, so it has
     no stable model at all (odd negative cycles kill stability) *)
  let inst = Graph_gen.paper_game () in
  Alcotest.(check int) "odd cycle: no stable model" 0
    (Datalog.Stable.count win inst);
  (* on a chain the well-founded model is total and is the unique stable
     model; wf-true facts belong to it *)
  let chain = Graph_gen.game_chain 5 in
  let wf = WF.eval win chain in
  (match Datalog.Stable.models win chain with
  | [ m ] ->
      Alcotest.(check bool) "wf-true ⊆ stable" true
        (Instance.subset wf.WF.true_facts m);
      Alcotest.check instance "total wf = stable" wf.WF.true_facts m
  | ms -> Alcotest.failf "expected one stable model, got %d" (List.length ms))

(* --- Datalog¬¬ conflict policies ------------------------------------------ *)

(* one stage derives both p(a) and ¬p(a) *)
let conflict_prog = prog "p(a) :- e(a). !p(a) :- e(a)."
let conflict_inst = facts "e(a)."

let test_policy_pos_priority () =
  match NI.run ~policy:NI.Pos_priority conflict_prog conflict_inst with
  | NI.Fixpoint { instance; _ } ->
      Alcotest.(check bool) "p(a) kept" true
        (Instance.mem_fact "p" (t [ v "a" ]) instance)
  | _ -> Alcotest.fail "expected fixpoint"

let test_policy_neg_priority () =
  match NI.run ~policy:NI.Neg_priority conflict_prog conflict_inst with
  | NI.Fixpoint { instance; _ } ->
      Alcotest.(check bool) "p(a) absent" false
        (Instance.mem_fact "p" (t [ v "a" ]) instance)
  | _ -> Alcotest.fail "expected fixpoint"

let test_policy_noop () =
  (* with noop, p(a) keeps its prior status: absent stays absent *)
  (match NI.run ~policy:NI.Noop conflict_prog conflict_inst with
  | NI.Fixpoint { instance; _ } ->
      Alcotest.(check bool) "absent stays absent" false
        (Instance.mem_fact "p" (t [ v "a" ]) instance)
  | _ -> Alcotest.fail "expected fixpoint");
  match
    NI.run ~policy:NI.Noop conflict_prog (facts "e(a). p(a).")
  with
  | NI.Fixpoint { instance; _ } ->
      Alcotest.(check bool) "present stays present" true
        (Instance.mem_fact "p" (t [ v "a" ]) instance)
  | _ -> Alcotest.fail "expected fixpoint"

let test_policy_error () =
  match NI.run ~policy:NI.Error conflict_prog conflict_inst with
  | NI.Contradiction { pred; _ } -> Alcotest.(check string) "on p" "p" pred
  | _ -> Alcotest.fail "expected contradiction"

let test_negneg_updates_edb () =
  (* input relations in heads: delete all edges out of a *)
  let p = prog "!G(a, Y) :- G(a, Y)." in
  let inst = facts "G(a,b). G(a,c). G(b,c)." in
  let final = NI.eval p inst in
  check_rel "only b->c survives" (pairs [ ("b", "c") ])
    (Instance.find "G" final)

let test_negneg_subsumes_inflationary () =
  (* a Datalog¬ program run under Datalog¬¬ gives the same result *)
  let p =
    prog
      {|
      T(X, Y) :- G(X, Y).
      T(X, Y) :- G(X, Z), T(Z, Y).
    |}
  in
  let inst = Graph_gen.random ~seed:13 8 12 in
  let infl = Datalog.Inflationary.eval p inst in
  let negneg = NI.eval p inst in
  Alcotest.check instance "agree" infl.Datalog.Inflationary.instance negneg

let test_divergence_cycle_states () =
  let flip =
    prog "T(0) :- T(1). !T(1) :- T(1). T(1) :- T(0). !T(0) :- T(0)."
  in
  match NI.run flip (Instance.of_list [ ("T", [ [ i 0 ] ]) ]) with
  | NI.Diverged { period; states; _ } ->
      Alcotest.(check int) "period 2" 2 period;
      Alcotest.(check int) "two cycle states" 2 (List.length states)
  | _ -> Alcotest.fail "expected divergence"

(* --- value invention ------------------------------------------------------ *)

let test_invent_chain_growth () =
  (* each stage invents a successor until fuel: check fuel stops it *)
  let p = prog "next(X, N) :- start(X). next(N, M) :- next(X, N)." in
  (match Datalog.Invent.run ~max_stages:10 p (facts "start(a).") with
  | Datalog.Invent.Out_of_fuel { invented; _ } ->
      Alcotest.(check bool) "kept inventing" true (invented >= 9)
  | Datalog.Invent.Fixpoint _ -> Alcotest.fail "expected fuel exhaustion")

let test_invent_single_firing_per_instantiation () =
  let p = prog "tag(X, N) :- item(X)." in
  match Datalog.Invent.run p (facts "item(a). item(b). item(c).") with
  | Datalog.Invent.Fixpoint { invented; instance; _ } ->
      Alcotest.(check int) "three inventions" 3 invented;
      Alcotest.(check int) "three tags" 3
        (Relation.cardinal (Instance.find "tag" instance))
  | _ -> Alcotest.fail "expected fixpoint"

let test_invent_answer_safety () =
  let p = prog "tag(X, N) :- item(X). shadow(X) :- tag(X, N)." in
  let inst = facts "item(a)." in
  (* answer filters invented tuples; shadow is invention-free *)
  check_rel "shadow safe" (unary [ "a" ])
    (Datalog.Invent.answer p inst "shadow");
  check_rel "tag filtered to nothing" Relation.empty
    (Datalog.Invent.answer p inst "tag");
  match Datalog.Invent.answer_exn p inst "tag" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected safety failure"

(* --- magic sets ------------------------------------------------------------ *)

let magic_tc =
  prog
    {|
    T(X, Y) :- G(X, Y).
    T(X, Y) :- T(X, Z), G(Z, Y).
  |}

let test_magic_matches_full () =
  List.iter
    (fun seed ->
      let inst = Graph_gen.random ~seed 12 25 in
      let query = Datalog.Ast.atom "T" [ Datalog.Ast.sym "n0"; Datalog.Ast.var "Y" ] in
      let full =
        Relation.filter
          (fun t -> Value.equal (Tuple.get t 0) (v "n0"))
          (Datalog.Seminaive.answer magic_tc inst "T")
      in
      let magic = Datalog.Magic.answer magic_tc inst query in
      check_rel (Printf.sprintf "seed %d" seed) full magic)
    [ 1; 2; 3; 4; 5; 6 ]

let test_magic_bound_second_arg () =
  let inst = Graph_gen.chain 10 in
  let query = Datalog.Ast.atom "T" [ Datalog.Ast.var "X"; Datalog.Ast.sym "n9" ] in
  let full =
    Relation.filter
      (fun t -> Value.equal (Tuple.get t 1) (v "n9"))
      (Datalog.Seminaive.answer magic_tc inst "T")
  in
  check_rel "ancestors of n9" full (Datalog.Magic.answer magic_tc inst query)

let test_magic_ground_query () =
  let inst = Graph_gen.chain 6 in
  let yes = Datalog.Ast.atom "T" [ Datalog.Ast.sym "n0"; Datalog.Ast.sym "n5" ] in
  let no = Datalog.Ast.atom "T" [ Datalog.Ast.sym "n5"; Datalog.Ast.sym "n0" ] in
  Alcotest.(check bool) "reachable" false
    (Relation.is_empty (Datalog.Magic.answer magic_tc inst yes));
  Alcotest.(check bool) "unreachable" true
    (Relation.is_empty (Datalog.Magic.answer magic_tc inst no))

let test_magic_all_free_query () =
  let inst = Graph_gen.chain 5 in
  let query = Datalog.Ast.atom "T" [ Datalog.Ast.var "X"; Datalog.Ast.var "Y" ] in
  check_rel "all-free = full"
    (Datalog.Seminaive.answer magic_tc inst "T")
    (Datalog.Magic.answer magic_tc inst query)

let test_magic_rejects_edb_query () =
  match
    Datalog.Magic.rewrite magic_tc (Datalog.Ast.atom "G" [ Datalog.Ast.var "X"; Datalog.Ast.var "Y" ])
  with
  | exception Datalog.Ast.Check_error _ -> ()
  | _ -> Alcotest.fail "expected Check_error"

(* --- semi-positive and order ----------------------------------------------- *)

let test_semipositive_accepts_rejects () =
  let ok = prog "p(X) :- e(X), !blocked(X)." in
  ignore (Datalog.Semipositive.eval ok (facts "e(a). blocked(a)."));
  let bad = prog "p(X) :- e(X), !q(X). q(X) :- e(X)." in
  match Datalog.Semipositive.eval bad (facts "e(a).") with
  | exception Datalog.Semipositive.Not_semipositive _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_evenness_with_order () =
  let parity =
    prog
      {|
      odd(X) :- first(X).
      even(X) :- odd(Y), succ(Y, X).
      odd(X) :- even(Y), succ(Y, X).
      is_even() :- last(X), even(X).
    |}
  in
  List.iter
    (fun n ->
      let inst =
        Instance.of_list
          [ ("P", List.init n (fun k -> [ Value.Sym (Printf.sprintf "e%d" k) ])) ]
      in
      let ordered = Order.adjoin ~include_lt:false inst in
      let says =
        not (Relation.is_empty (Datalog.Seminaive.answer parity ordered "is_even"))
      in
      Alcotest.(check bool) (Printf.sprintf "n=%d" n) (n mod 2 = 0) says)
    [ 1; 2; 3; 4; 5; 9; 10 ]

let test_min_max_needed_for_semipositive () =
  (* Theorem 4.7's technicality: first/last cannot be computed by a
     semi-positive program from lt alone — computing "no predecessor"
     needs negation over a derived predicate. We exhibit the stratified
     program that does it, and check it is NOT semi-positive. *)
  let p =
    prog
      {|
      has_pred(X) :- lt(Y, X).
      is_first(X) :- elem(X), !has_pred(X).
    |}
  in
  Alcotest.(check bool) "needs a derived negation" false
    (Datalog.Stratify.is_semipositive p)

let suite =
  [
    Alcotest.test_case "wf: cycle all unknown" `Quick test_wf_cycle_all_unknown;
    Alcotest.test_case "wf: chain alternates, total" `Quick
      test_wf_chain_alternates;
    Alcotest.test_case "wf: edb negation" `Quick test_wf_negation_on_edb;
    Alcotest.test_case "wf = stratified on stratifiable programs" `Quick
      test_wf_equals_stratified_on_stratifiable;
    Alcotest.test_case "wf: alternating sequence monotone" `Quick
      test_wf_alternating_sequence_monotone;
    Alcotest.test_case "stable: stratifiable => unique" `Quick
      test_stable_of_stratifiable_is_unique;
    Alcotest.test_case "stable: two-cycle has two models" `Quick
      test_stable_two_cycle;
    Alcotest.test_case "stable: p :- !p has none" `Quick test_stable_none;
    Alcotest.test_case "stable: wf-true in every model" `Quick
      test_stable_true_facts_in_all_models;
    Alcotest.test_case "¬¬ policy: positive priority" `Quick
      test_policy_pos_priority;
    Alcotest.test_case "¬¬ policy: negative priority" `Quick
      test_policy_neg_priority;
    Alcotest.test_case "¬¬ policy: no-op" `Quick test_policy_noop;
    Alcotest.test_case "¬¬ policy: contradiction" `Quick test_policy_error;
    Alcotest.test_case "¬¬ updates edb relations" `Quick
      test_negneg_updates_edb;
    Alcotest.test_case "¬¬ subsumes inflationary" `Quick
      test_negneg_subsumes_inflationary;
    Alcotest.test_case "¬¬ divergence cycle states" `Quick
      test_divergence_cycle_states;
    Alcotest.test_case "invent: unbounded growth hits fuel" `Quick
      test_invent_chain_growth;
    Alcotest.test_case "invent: one firing per instantiation" `Quick
      test_invent_single_firing_per_instantiation;
    Alcotest.test_case "invent: answer safety" `Quick test_invent_answer_safety;
    Alcotest.test_case "magic = full on random graphs" `Quick
      test_magic_matches_full;
    Alcotest.test_case "magic: bound second argument" `Quick
      test_magic_bound_second_arg;
    Alcotest.test_case "magic: ground queries" `Quick test_magic_ground_query;
    Alcotest.test_case "magic: all-free query" `Quick test_magic_all_free_query;
    Alcotest.test_case "magic: edb query rejected" `Quick
      test_magic_rejects_edb_query;
    Alcotest.test_case "semi-positive accept/reject" `Quick
      test_semipositive_accepts_rejects;
    Alcotest.test_case "evenness with order (Thm 4.7)" `Quick
      test_evenness_with_order;
    Alcotest.test_case "min/max technicality (Thm 4.7)" `Quick
      test_min_max_needed_for_semipositive;
  ]
