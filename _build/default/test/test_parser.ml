(* Lexer, parser, pretty-printer. *)
open Relational
open Helpers
module Ast = Datalog.Ast

let parse_rule s =
  try Datalog.Parser.parse_rule s with
  | Datalog.Parser.Parse_error (l, m) -> Alcotest.failf "line %d: %s" l m

let test_basic_rule () =
  let r = parse_rule "T(X, Y) :- G(X, Z), T(Z, Y)." in
  (match r.Ast.head with
  | [ Ast.HPos a ] ->
      Alcotest.(check string) "head pred" "T" a.Ast.pred;
      Alcotest.(check int) "head arity" 2 (List.length a.Ast.args)
  | _ -> Alcotest.fail "expected single positive head");
  Alcotest.(check int) "body size" 2 (List.length r.Ast.body)

let test_variables_vs_constants () =
  let r = parse_rule "p(X, x, 'Q', \"s\", 42, ?low) :- q(X, ?low)." in
  match r.Ast.head with
  | [ Ast.HPos a ] ->
      let expected =
        [
          Ast.Var "X";
          Ast.Cst (Value.Sym "x");
          Ast.Cst (Value.Sym "Q");
          Ast.Cst (Value.Str "s");
          Ast.Cst (Value.Int 42);
          Ast.Var "low";
        ]
      in
      Alcotest.(check bool) "terms" true (a.Ast.args = expected)
  | _ -> Alcotest.fail "bad head"

let test_negation_forms () =
  let r1 = parse_rule "p(X) :- q(X), !r(X)." in
  let r2 = parse_rule "p(X) :- q(X), not r(X)." in
  Alcotest.(check bool) "! and not equivalent" true (r1 = r2)

let test_head_negation_and_multi () =
  let r = parse_rule "!G(X, Y), mark(X) :- G(X, Y), G(Y, X)." in
  Alcotest.(check int) "two heads" 2 (List.length r.Ast.head);
  match r.Ast.head with
  | [ Ast.HNeg _; Ast.HPos _ ] -> ()
  | _ -> Alcotest.fail "expected retraction then assertion"

let test_bottom () =
  let r = parse_rule "bottom :- p(X), !q(X)." in
  Alcotest.(check bool) "bottom head" true (r.Ast.head = [ Ast.HBottom ])

let test_equality_literals () =
  let r = parse_rule "p(X, Y) :- q(X), q(Y), X != Y, X = X." in
  let eqs =
    List.filter
      (function Ast.BEq _ | Ast.BNeq _ -> true | _ -> false)
      r.Ast.body
  in
  Alcotest.(check int) "two (in)equalities" 2 (List.length eqs)

let test_forall_rule () =
  let r = parse_rule "ans(X) :- forall Y : p(X), !q(X, Y)." in
  Alcotest.(check (list string)) "forall vars" [ "Y" ] r.Ast.forall

let test_zero_ary () =
  let r = parse_rule "delay :- p(X)." in
  (match r.Ast.head with
  | [ Ast.HPos a ] -> Alcotest.(check int) "0-ary" 0 (List.length a.Ast.args)
  | _ -> Alcotest.fail "bad head");
  let r2 = parse_rule "done()." in
  Alcotest.(check int) "fact rule" 0 (List.length r2.Ast.body)

let test_facts_and_arrow_variants () =
  let p1 = prog "G(a, b). T(X,Y) :- G(X,Y)." in
  let p2 = prog "G(a, b). T(X,Y) <- G(X,Y)." in
  Alcotest.(check bool) ":- and <- equivalent" true (p1 = p2)

let test_comments () =
  let p =
    prog
      {|
        % line comment
        // another
        /* block /* nested */ still comment */
        p(a).
      |}
  in
  Alcotest.(check int) "one rule" 1 (List.length p)

let test_queries () =
  let { Datalog.Parser.program; queries } =
    Datalog.Parser.parse "T(X,Y) :- G(X,Y). ?- T(a, X)."
  in
  Alcotest.(check int) "one rule" 1 (List.length program);
  match queries with
  | [ q ] -> Alcotest.(check string) "query pred" "T" q.Ast.pred
  | _ -> Alcotest.fail "expected one query"

let test_parse_errors () =
  List.iter
    (fun src ->
      match Datalog.Parser.parse_program src with
      | exception Datalog.Parser.Parse_error _ -> ()
      | exception Datalog.Lexer.Lex_error _ -> ()
      | _ -> Alcotest.failf "expected error for %S" src)
    [
      "p(X :- q(X).";
      ":- q(X).";
      "p(X) q(X).";
      "p(X) :- q(X)";  (* missing dot *)
      "p('unterminated) :- q(X).";
      "p(\"unterminated) :- q(X).";
    ]

(* `p(X) :- .` is accepted as an empty body — drop it from the error list
   by testing it separately. *)
let test_empty_body_after_arrow () =
  let r = parse_rule "p(a) :- ." in
  Alcotest.(check int) "no body" 0 (List.length r.Ast.body)

let test_lexer_errors_have_lines () =
  match Datalog.Parser.parse_program "p(a).\nq(#)." with
  | exception Datalog.Lexer.Lex_error (2, _) -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected lex error on line 2"

(* round-trip: parse (pretty p) = p for a corpus of programs *)
let corpus =
  [
    "T(X, Y) :- G(X, Y).";
    "T(X, Y) :- G(X, Z), T(Z, Y).";
    "CT(X, Y) :- !T(X, Y).";
    "win(X) :- moves(X, Y), !win(Y).";
    "!G(X, Y) :- G(X, Y), G(Y, X).";
    "p(X, Y), !q(X) :- r(X), s(Y), X != Y.";
    "bottom :- p(X), !done().";
    "ans(X) :- forall Y, Z : p(X), !q(X, Y), !r(X, Z).";
    "p(42, \"str\", 'Sym', c).";
    "delay().";
  ]

let test_pretty_roundtrip () =
  List.iter
    (fun src ->
      let p = prog src in
      let printed = Datalog.Pretty.program_to_string p in
      let reparsed =
        try Datalog.Parser.parse_program printed
        with e ->
          Alcotest.failf "reparse of %S failed: %s" printed
            (Printexc.to_string e)
      in
      if p <> reparsed then
        Alcotest.failf "roundtrip mismatch: %S -> %S" src printed)
    corpus

let suite =
  [
    Alcotest.test_case "basic rule" `Quick test_basic_rule;
    Alcotest.test_case "variables vs constants" `Quick
      test_variables_vs_constants;
    Alcotest.test_case "negation forms" `Quick test_negation_forms;
    Alcotest.test_case "head negation / multi-head" `Quick
      test_head_negation_and_multi;
    Alcotest.test_case "bottom" `Quick test_bottom;
    Alcotest.test_case "(in)equality literals" `Quick test_equality_literals;
    Alcotest.test_case "forall rules" `Quick test_forall_rule;
    Alcotest.test_case "zero-ary atoms and facts" `Quick test_zero_ary;
    Alcotest.test_case "arrow variants" `Quick test_facts_and_arrow_variants;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "?- query directives" `Quick test_queries;
    Alcotest.test_case "parse errors raised" `Quick test_parse_errors;
    Alcotest.test_case "empty body after arrow" `Quick
      test_empty_body_after_arrow;
    Alcotest.test_case "lex errors carry line numbers" `Quick
      test_lexer_errors_have_lines;
    Alcotest.test_case "pretty/parse roundtrip corpus" `Quick
      test_pretty_roundtrip;
  ]
