(* Nondeterministic languages: Definition 5.2 semantics, effect
   enumeration, ⊥/∀ constructs, poss/cert, Examples 5.4/5.5. *)
open Relational
open Helpers
module Nd = Nondet.Nd_eval
module En = Nondet.Enumerate
module Pc = Nondet.Posscert

let orientation = prog "!G(X, Y) :- G(X, Y), G(Y, X)."

let test_successors_one_firing () =
  let inst = Graph_gen.two_cycles 1 in
  let { Nd.changed; bottom_applicable } = Nd.successors orientation inst in
  (* exactly two choices: delete a0->b0 or b0->a0 *)
  Alcotest.(check int) "two successors" 2 (List.length changed);
  Alcotest.(check bool) "no bottom" false bottom_applicable;
  List.iter
    (fun j ->
      Alcotest.(check int) "one edge deleted" 1
        (Relation.cardinal (Instance.find "G" j)))
    changed

let test_terminal_detection () =
  Alcotest.(check bool) "2-cycle not terminal" false
    (Nd.is_terminal orientation (Graph_gen.two_cycles 1));
  Alcotest.(check bool) "acyclic graph terminal" true
    (Nd.is_terminal orientation (Graph_gen.chain 4))

let test_random_walks_land_in_effect () =
  let inst = Graph_gen.two_cycles 3 in
  let terminals = En.terminals orientation inst in
  List.iter
    (fun seed ->
      match Nd.run ~seed orientation inst with
      | Nd.Terminal { instance; steps } ->
          Alcotest.(check int) "three firings" 3 steps;
          Alcotest.(check bool) "walk result in effect" true
            (List.exists (Instance.equal instance) terminals)
      | _ -> Alcotest.fail "expected terminal")
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_effect_counts () =
  List.iter
    (fun k ->
      let stats = En.effect orientation (Graph_gen.two_cycles k) in
      Alcotest.(check int)
        (Printf.sprintf "2^%d orientations" k)
        (1 lsl k)
        (List.length stats.En.terminals))
    [ 0; 1; 2; 3; 4 ]

let test_effect_budget () =
  match En.effect ~max_states:10 orientation (Graph_gen.two_cycles 6) with
  | exception En.Too_many_states 10 -> ()
  | _ -> Alcotest.fail "expected budget exhaustion"

(* multi-literal heads fire atomically *)
let test_multi_head_atomic () =
  let p = prog "chosen(X), !candidate(X) :- candidate(X)." in
  let inst = facts "candidate(a). candidate(b)." in
  let terminals = En.terminals p inst in
  (* every run moves BOTH candidates into chosen (one at a time); single
     terminal state *)
  Alcotest.(check int) "one terminal" 1 (List.length terminals);
  let j = List.hd terminals in
  check_rel "all chosen" (unary [ "a"; "b" ]) (Instance.find "chosen" j);
  check_rel "none left" Relation.empty (Instance.find "candidate" j)

(* pick-one: nondeterministic choice of a single element *)
let test_pick_one () =
  let p =
    prog "picked(X), done() :- candidate(X), !done()."
  in
  let inst = facts "candidate(a). candidate(b). candidate(c)." in
  let terminals = En.terminals p inst in
  Alcotest.(check int) "three possible picks" 3 (List.length terminals);
  List.iter
    (fun j ->
      Alcotest.(check int) "exactly one picked" 1
        (Relation.cardinal (Instance.find "picked" j)))
    terminals

(* inconsistent heads are not fireable (condition (ii) of Def 5.1) *)
let test_inconsistent_head_skipped () =
  let p = prog "p(X), !p(X) :- e(X)." in
  let inst = facts "e(a)." in
  Alcotest.(check bool) "terminal immediately" true (Nd.is_terminal p inst)

(* Example 5.4 / 5.5: P − π_A(Q) *)
let p_minus_proj_inst = facts "P(a). P(b). P(c). Q(a, x). Q(c, y)."
let expected_diff = unary [ "b" ]

let test_example_55_bottom () =
  let p =
    prog
      {|
      PROJ(X) :- !done_with_proj(), Q(X, Y).
      done_with_proj().
      bottom :- done_with_proj(), Q(X, Y), !PROJ(X).
      answer(X) :- done_with_proj(), P(X), !PROJ(X).
    |}
  in
  Datalog.Ast.check_ndatalog_bottom p;
  let stats = En.effect p p_minus_proj_inst in
  (* all surviving terminal states agree on answer = P - π(Q) *)
  Alcotest.(check bool) "some survivor" true (stats.En.terminals <> []);
  List.iter
    (fun j -> check_rel "answer" expected_diff (Instance.find "answer" j))
    stats.En.terminals;
  Alcotest.(check bool) "some branches were abandoned" true
    (stats.En.abandoned_branches > 0)

let test_example_55_forall () =
  let p = prog "answer(X) :- forall Y : P(X), !Q(X, Y)." in
  Datalog.Ast.check_ndatalog_forall p;
  let terminals = En.terminals p p_minus_proj_inst in
  Alcotest.(check int) "deterministic" 1 (List.length terminals);
  check_rel "answer" expected_diff
    (Instance.find "answer" (List.hd terminals))

(* the ⊥ random walk abandons and retries *)
let test_run_until_terminal () =
  let p =
    prog
      {|
      PROJ(X) :- !done_with_proj(), Q(X, Y).
      done_with_proj().
      bottom :- done_with_proj(), Q(X, Y), !PROJ(X).
      answer(X) :- done_with_proj(), P(X), !PROJ(X).
    |}
  in
  match Nd.run_until_terminal ~seed:5 p p_minus_proj_inst with
  | Some j -> check_rel "answer" expected_diff (Instance.find "answer" j)
  | None -> Alcotest.fail "no terminal found in 100 attempts"

(* --- poss / cert ----------------------------------------------------------- *)

let test_poss_cert_orientation () =
  let inst = Graph_gen.two_cycles 2 in
  let poss = Pc.poss orientation inst in
  let cert = Pc.cert orientation inst in
  Alcotest.(check int) "poss keeps all edges" 4
    (Relation.cardinal (Instance.find "G" poss));
  Alcotest.(check int) "cert keeps none" 0
    (Relation.cardinal (Instance.find "G" cert));
  Alcotest.(check bool) "cert ⊆ poss" true (Instance.subset cert poss)

let test_poss_cert_deterministic_program () =
  (* on a deterministic program poss = cert = the unique result *)
  let p = prog "p(X), !e(X) :- e(X)." in
  let inst = facts "e(a). e(b)." in
  let poss = Pc.poss p inst and cert = Pc.cert p inst in
  Alcotest.check instance "poss = cert" poss cert;
  check_rel "all moved" (unary [ "a"; "b" ]) (Instance.find "p" poss)

let test_constructs_flavors () =
  let neg_ok = prog "p(X) :- e(X), !q(X)." in
  Nondet.Constructs.check Nondet.Constructs.Neg neg_ok;
  (match Nondet.Constructs.check Nondet.Constructs.Neg (prog "!p(X) :- p(X).") with
  | exception Datalog.Ast.Check_error _ -> ()
  | _ -> Alcotest.fail "neg flavor must reject retraction");
  Nondet.Constructs.check Nondet.Constructs.Negneg (prog "!p(X) :- p(X).");
  Nondet.Constructs.check Nondet.Constructs.Bottom (prog "bottom :- p(X).");
  Nondet.Constructs.check Nondet.Constructs.Forall
    (prog "a(X) :- forall Y : p(X), !q(X, Y).")

let suite =
  [
    Alcotest.test_case "one firing at a time" `Quick
      test_successors_one_firing;
    Alcotest.test_case "terminal detection" `Quick test_terminal_detection;
    Alcotest.test_case "random walks land in effect" `Quick
      test_random_walks_land_in_effect;
    Alcotest.test_case "effect counts (2^k)" `Quick test_effect_counts;
    Alcotest.test_case "state budget enforced" `Quick test_effect_budget;
    Alcotest.test_case "multi-literal heads atomic" `Quick
      test_multi_head_atomic;
    Alcotest.test_case "nondeterministic pick-one" `Quick test_pick_one;
    Alcotest.test_case "inconsistent heads skipped" `Quick
      test_inconsistent_head_skipped;
    Alcotest.test_case "Example 5.5: N-Datalog¬⊥" `Quick test_example_55_bottom;
    Alcotest.test_case "Example 5.5: N-Datalog¬∀" `Quick test_example_55_forall;
    Alcotest.test_case "run_until_terminal retries ⊥" `Quick
      test_run_until_terminal;
    Alcotest.test_case "poss/cert on orientations" `Quick
      test_poss_cert_orientation;
    Alcotest.test_case "poss = cert when deterministic" `Quick
      test_poss_cert_deterministic_program;
    Alcotest.test_case "flavor checks" `Quick test_constructs_flavors;
  ]
