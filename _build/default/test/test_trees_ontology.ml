(* Monadic Datalog over trees (§6 data extraction) and Datalog± with the
   chase (§6 ontologies). *)
open Relational
open Helpers
module Tree = Trees.Tree
module Chase = Ontology.Chase

(* --- trees ----------------------------------------------------------------- *)

let doc =
  Tree.parse
    "html(body(list(item(price, title), item(price), note), footer))"

let test_tree_parse_roundtrip () =
  Alcotest.(check string)
    "roundtrip"
    "html(body(list(item(price, title), item(price), note), footer))"
    (Tree.to_string doc);
  Alcotest.(check int) "size" 10 (Tree.size doc)

let test_tree_parse_errors () =
  List.iter
    (fun s ->
      match Tree.parse s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "expected failure for %S" s)
    [ ""; "a(b"; "a(b,)"; "a)b"; "a b" ]

let test_encoding_shape () =
  let inst = Tree.to_instance doc in
  Alcotest.(check int) "one root" 1
    (Relation.cardinal (Instance.find "root" inst));
  (* leaves: price, title, price, note, footer *)
  Alcotest.(check int) "five leaves" 5
    (Relation.cardinal (Instance.find "leaf" inst));
  (* firstchild is functional *)
  let fc = Instance.find "firstchild" inst in
  let srcs =
    Relation.fold (fun t acc -> Tuple.get t 0 :: acc) fc []
  in
  Alcotest.(check int) "firstchild functional"
    (List.length srcs)
    (List.length (List.sort_uniq Value.compare srcs))

(* the Lixto-style wrapper: select the prices of items that have a title *)
let wrapper =
  prog
    {|
    item_node(X) :- label_item(X).
    has_title(X) :- item_node(X), child(X, T), label_title(T).
    selected(P) :- has_title(X), child(X, P), label_price(P).
  |}

let test_monadic_wrapper () =
  Alcotest.(check bool) "wrapper is monadic" true (Tree.is_monadic wrapper);
  let selected = Tree.select wrapper doc "selected" in
  (* exactly one item has a title; its price is node n4 *)
  Alcotest.(check int) "one price" 1 (List.length selected);
  Alcotest.(check string) "it is a price" "price" (snd (List.hd selected))

let test_nonmonadic_detected () =
  Alcotest.(check bool) "child-copy is not monadic" false
    (Tree.is_monadic (prog "both(X, Y) :- child(X, Y)."))

let test_descendant_query () =
  (* descendants of list nodes that are leaves *)
  let p =
    prog
      {|
      under_list(Y) :- label_list(X), child(X, Y).
      under_list(Y) :- under_list(X), child(X, Y).
      sel(Y) :- under_list(Y), leaf(Y).
    |}
  in
  let selected = Tree.select p doc "sel" in
  Alcotest.(check int) "4 leaf descendants" 4 (List.length selected)

let test_stratified_tree_query () =
  (* items WITHOUT a title — negation over a derived monadic predicate *)
  let p =
    prog
      {|
      has_title(X) :- label_item(X), child(X, T), label_title(T).
      untitled(X) :- label_item(X), !has_title(X).
    |}
  in
  let selected = Tree.select p doc "untitled" in
  Alcotest.(check int) "one untitled item" 1 (List.length selected)

let test_random_tree_encoding () =
  let t = Tree.random ~seed:5 ~depth:4 ~width:3 ~labels:[ "a"; "b"; "c" ] in
  let inst = Tree.to_instance t in
  Alcotest.(check int) "lab matches size" (Tree.size t)
    (Relation.cardinal (Instance.find "lab" inst))

(* --- Datalog± / chase -------------------------------------------------------- *)

let tgd src = Datalog.Parser.parse_rule src

(* every employee works in some department, which has some manager *)
(* every employee works in some department; departments have managers;
   a manager works in their own department and is an employee. The last
   two rules close the existential loop, so the restricted chase
   terminates even though the tgds are cyclic (not weakly acyclic) —
   weak acyclicity is sufficient, not necessary. *)
let onto =
  [
    tgd "worksIn(E, D) :- emp(E).";
    tgd "hasManager(D, M) :- worksIn(E, D).";
    tgd "worksIn(M, D) :- hasManager(D, M).";
    tgd "emp(M) :- hasManager(D, M).";
  ]

let test_classification () =
  Chase.check onto;
  Alcotest.(check bool) "linear" true (Chase.is_linear onto);
  Alcotest.(check bool) "guarded (linear => guarded)" true
    (Chase.is_guarded onto);
  Alcotest.(check bool) "not weakly acyclic (emp cycle)" false
    (Chase.weakly_acyclic onto);
  let acyclic = [ tgd "worksIn(E, D) :- emp(E)." ] in
  Alcotest.(check bool) "single tgd weakly acyclic" true
    (Chase.weakly_acyclic acyclic);
  let nonguarded =
    [ tgd "r(X, Y, Z) :- p(X, Y), q(Y, Z), s(Z, W)." ]
  in
  (* the body has variables X,Y,Z,W; no single atom contains them all *)
  Alcotest.(check bool) "non-guarded detected" false
    (Chase.is_guarded nonguarded)

let test_chase_terminates_despite_cycle () =
  (* the restricted chase terminates here: the manager null created for a
     department satisfies later triggers *)
  let inst = facts "emp(alice)." in
  match Chase.chase onto inst with
  | Chase.Terminated { instance; nulls; _ } ->
      Alcotest.(check bool) "created nulls" true (nulls >= 2);
      (* alice works somewhere; that department has a manager; the manager
         is an employee; the manager works somewhere (their own dept is
         satisfied by... must also chase, but restricted chase reuses) *)
      Alcotest.(check bool) "worksIn nonempty" true
        (not (Relation.is_empty (Instance.find "worksIn" instance)))
  | Chase.Out_of_fuel _ -> Alcotest.fail "restricted chase should terminate"

let test_bcq_and_certain_answers () =
  let inst = facts "emp(alice). emp(bob)." in
  (* BCQ: does alice work in a department with a manager? *)
  let q =
    [
      Datalog.Parser.parse_atom "worksIn(alice, D)";
      Datalog.Parser.parse_atom "hasManager(D, M)";
    ]
  in
  Alcotest.(check bool) "bcq holds" true (Chase.bcq onto inst q);
  (* certain answers: which constants certainly work somewhere? the
     employees; their departments are nulls so don't appear *)
  let ca =
    Chase.certain_answers onto inst
      {
        Chase.body = [ Datalog.Parser.parse_atom "worksIn(E, D)" ];
        answer = [ "E" ];
      }
  in
  check_rel "certain workers" (unary [ "alice"; "bob" ]) ca;
  let ca_depts =
    Chase.certain_answers onto inst
      {
        Chase.body = [ Datalog.Parser.parse_atom "worksIn(E, D)" ];
        answer = [ "D" ];
      }
  in
  check_rel "departments are nulls: no certain answers" Relation.empty
    ca_depts

let test_chase_multi_atom_head () =
  (* ∃-head with two atoms sharing the null *)
  let tgds = [ tgd "parent(X, P), person(P) :- person(X)." ] in
  let inst = facts "person(adam)." in
  match Chase.chase ~max_steps:6 tgds inst with
  | Chase.Out_of_fuel { instance; steps; _ } ->
      (* genuinely infinite chase (ancestors forever): fuel stops it *)
      Alcotest.(check int) "fuel consumed" 6 steps;
      Alcotest.(check bool) "parents materialized" true
        (Relation.cardinal (Instance.find "parent" instance) >= 5)
  | Chase.Terminated _ ->
      Alcotest.fail "ancestor chase should be infinite"

let test_chase_restricted_no_new_when_satisfied () =
  (* if the head is already satisfied, no null is created *)
  let tgds = [ tgd "worksIn(E, D) :- emp(E)." ] in
  let inst = facts "emp(alice). worksIn(alice, sales)." in
  match Chase.chase tgds inst with
  | Chase.Terminated { nulls; steps; _ } ->
      Alcotest.(check int) "no nulls" 0 nulls;
      Alcotest.(check int) "no steps" 0 steps
  | _ -> Alcotest.fail "expected termination"

let test_chase_rejects_negation () =
  match Chase.check [ tgd "p(X, Y) :- q(X), !r(X)." ] with
  | exception Datalog.Ast.Check_error _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let suite =
  [
    Alcotest.test_case "tree parse/print" `Quick test_tree_parse_roundtrip;
    Alcotest.test_case "tree parse errors" `Quick test_tree_parse_errors;
    Alcotest.test_case "tree encoding shape" `Quick test_encoding_shape;
    Alcotest.test_case "monadic wrapper (Lixto-style)" `Quick
      test_monadic_wrapper;
    Alcotest.test_case "non-monadic detected" `Quick test_nonmonadic_detected;
    Alcotest.test_case "descendant query" `Quick test_descendant_query;
    Alcotest.test_case "stratified tree query" `Quick
      test_stratified_tree_query;
    Alcotest.test_case "random tree encoding" `Quick test_random_tree_encoding;
    Alcotest.test_case "Datalog± class recognition" `Quick test_classification;
    Alcotest.test_case "restricted chase terminates on cycle" `Quick
      test_chase_terminates_despite_cycle;
    Alcotest.test_case "BCQ and certain answers" `Quick
      test_bcq_and_certain_answers;
    Alcotest.test_case "multi-atom heads / infinite chase" `Quick
      test_chase_multi_atom_head;
    Alcotest.test_case "restricted chase skips satisfied heads" `Quick
      test_chase_restricted_no_new_when_satisfied;
    Alcotest.test_case "tgds reject negation" `Quick
      test_chase_rejects_negation;
  ]
