(* AST structural queries and fragment validation. *)
open Helpers
module Ast = Datalog.Ast

let tc = tc_program

let comp_tc =
  prog
    {|
    T(X, Y) :- G(X, Y).
    T(X, Y) :- G(X, Z), T(Z, Y).
    CT(X, Y) :- !T(X, Y).
  |}

let test_idb_edb () =
  Alcotest.(check (list string)) "idb" [ "CT"; "T" ] (Ast.idb comp_tc);
  Alcotest.(check (list string)) "edb" [ "G" ] (Ast.edb comp_tc);
  Alcotest.(check (list string)) "preds" [ "CT"; "G"; "T" ] (Ast.preds comp_tc)

let test_adom () =
  let p = prog "p(a, X) :- q(X, 3), r(\"s\")." in
  Alcotest.(check int) "three constants" 3 (List.length (Ast.adom p))

let test_rule_vars () =
  let r = Datalog.Parser.parse_rule "p(X, Y) :- q(X, Z), !r(Z, W)." in
  Alcotest.(check (list string)) "rule vars" [ "X"; "Y"; "Z"; "W" ]
    (Ast.rule_vars r);
  Alcotest.(check (list string)) "body vars" [ "X"; "Z"; "W" ]
    (Ast.body_vars r);
  Alcotest.(check (list string)) "positively bound" [ "X"; "Z" ]
    (List.sort compare (Ast.positive_body_vars r))

let test_head_only_vars () =
  let r = Datalog.Parser.parse_rule "tag(X, N) :- item(X)." in
  Alcotest.(check (list string)) "invented" [ "N" ] (Ast.head_only_vars r)

let test_eq_binding_propagates () =
  let r = Datalog.Parser.parse_rule "p(Y) :- q(X), Y = X." in
  Alcotest.(check (list string)) "Y bound through equality" [ "X"; "Y" ]
    (List.sort compare (Ast.positive_body_vars r))

let test_infer_schema_conflict () =
  let p = prog "p(X) :- q(X). p(X, Y) :- q(X), q(Y)." in
  Alcotest.check_raises "arity conflict"
    (Ast.Check_error "predicate p used with arities 1 and 2") (fun () ->
      ignore (Ast.infer_schema p))

let expect_check_error f =
  match f () with
  | () -> Alcotest.fail "expected Check_error"
  | exception Ast.Check_error _ -> ()

let test_check_datalog () =
  Ast.check_datalog tc;
  expect_check_error (fun () -> Ast.check_datalog comp_tc);
  (* unsafe head variable *)
  expect_check_error (fun () ->
      Ast.check_datalog (prog "p(X, Y) :- q(X)."));
  (* equality literals are nondeterministic-only *)
  expect_check_error (fun () ->
      Ast.check_datalog (prog "p(X) :- q(X), X = X."))

let test_check_datalog_neg () =
  Ast.check_datalog_neg comp_tc;
  (* the paper's Example 4.4 rule: variable bound only negatively is fine *)
  Ast.check_datalog_neg (prog "good(X) :- delay, !bad(X).");
  (* head negation is Datalog¬¬ *)
  expect_check_error (fun () ->
      Ast.check_datalog_neg (prog "!p(X) :- q(X)."));
  (* multi-head is nondeterministic *)
  expect_check_error (fun () ->
      Ast.check_datalog_neg (prog "p(X), r(X) :- q(X)."))

let test_check_negneg () =
  Ast.check_datalog_negneg (prog "!p(X) :- q(X).");
  expect_check_error (fun () ->
      Ast.check_datalog_negneg (prog "bottom :- q(X)."))

let test_check_invent () =
  Ast.check_invent (prog "tag(X, N) :- item(X).");
  expect_check_error (fun () -> Ast.check_invent (prog "!p(X) :- q(X)."))

let test_check_ndatalog () =
  Ast.check_ndatalog (prog "p(X), !q(X) :- r(X), X != X.");
  (* Definition 5.1: head variables must be positively bound *)
  expect_check_error (fun () ->
      Ast.check_ndatalog (prog "p(X) :- !q(X)."));
  expect_check_error (fun () ->
      Ast.check_ndatalog (prog "bottom :- q(X)."));
  Ast.check_ndatalog_bottom (prog "bottom :- q(X).");
  expect_check_error (fun () ->
      Ast.check_ndatalog_pos_heads (prog "!p(X) :- p(X)."))

let test_check_forall () =
  Ast.check_ndatalog_forall
    (prog "ans(X) :- forall Y : p(X), !q(X, Y).");
  (* forall vars may not occur in heads *)
  expect_check_error (fun () ->
      Ast.check_ndatalog_forall
        (prog "ans(X, Y) :- forall Y : p(X), !q(X, Y)."));
  (* forall is exclusive to N-Datalog¬∀ *)
  expect_check_error (fun () ->
      Ast.check_datalog_neg (prog "ans(X) :- forall Y : p(X), !q(X, Y)."))

let test_is_datalog_neg_syntax () =
  Alcotest.(check bool) "comp_tc yes" true (Ast.is_datalog_neg_syntax comp_tc);
  Alcotest.(check bool) "head negation no" false
    (Ast.is_datalog_neg_syntax (prog "!p(X) :- q(X)."));
  Alcotest.(check bool) "equality no" false
    (Ast.is_datalog_neg_syntax (prog "p(X) :- q(X), X = X."))

let test_ground_atom () =
  let a = Ast.atom "p" [ Ast.var "X"; Ast.sym "c" ] in
  let pred, tup = Ast.ground_atom [ ("X", v "a") ] a in
  Alcotest.(check string) "pred" "p" pred;
  Alcotest.check tuple "grounded" (t [ v "a"; v "c" ]) tup;
  expect_check_error (fun () -> ignore (Ast.ground_atom [] a))

let suite =
  [
    Alcotest.test_case "idb/edb split" `Quick test_idb_edb;
    Alcotest.test_case "program constants" `Quick test_adom;
    Alcotest.test_case "rule variable classification" `Quick test_rule_vars;
    Alcotest.test_case "head-only (invented) variables" `Quick
      test_head_only_vars;
    Alcotest.test_case "equality binding propagation" `Quick
      test_eq_binding_propagates;
    Alcotest.test_case "schema inference conflicts" `Quick
      test_infer_schema_conflict;
    Alcotest.test_case "check: pure Datalog" `Quick test_check_datalog;
    Alcotest.test_case "check: Datalog¬ (paper safety)" `Quick
      test_check_datalog_neg;
    Alcotest.test_case "check: Datalog¬¬" `Quick test_check_negneg;
    Alcotest.test_case "check: Datalog¬new" `Quick test_check_invent;
    Alcotest.test_case "check: N-Datalog variants" `Quick test_check_ndatalog;
    Alcotest.test_case "check: ∀ rules" `Quick test_check_forall;
    Alcotest.test_case "syntax classification" `Quick
      test_is_datalog_neg_syntax;
    Alcotest.test_case "atom grounding" `Quick test_ground_atom;
  ]
