(* The choice operator (§5.2) and the active-database ECA engine (§7). *)
open Relational
open Helpers
module Choice = Nondet.Choice
module Active = Datalog.Active

(* --- choice ---------------------------------------------------------------- *)

let spanning_tree_rules =
  [
    { Choice.rule = Datalog.Parser.parse_rule "st(root, root)."; choices = [] };
    {
      Choice.rule =
        Datalog.Parser.parse_rule "st(X, Y) :- st(W, X), e(X, Y).";
      choices = [ ([ "Y" ], [ "X" ]) ];
    };
  ]

let graph_inst edges =
  Instance.union (facts "seed(root).")
    (Instance.of_list
       [ ("e", List.map (fun (a, b) -> [ v a; v b ]) edges) ])

let test_spanning_tree () =
  (* a connected graph rooted at `root`: the choice rule assigns each
     reachable node exactly one parent *)
  (* no edge back into the root: the bootstrap st(root, root) must stay
     the root's only "parent" for the relation-level FD check to apply *)
  let inst =
    graph_inst
      [
        ("root", "a"); ("root", "b"); ("a", "c"); ("b", "c");
        ("c", "d"); ("a", "d"); ("b", "a");
      ]
  in
  List.iter
    (fun seed ->
      let result = Choice.eval ~seed spanning_tree_rules inst in
      let st = Instance.find "st" result in
      (* each node (except the root bootstrap) has exactly one parent *)
      let children = Hashtbl.create 8 in
      Relation.iter
        (fun t ->
          let parent = Tuple.get t 0 and child = Tuple.get t 1 in
          if not (Value.equal child (v "root") && Value.equal parent (v "root"))
          then
            Hashtbl.replace children child
              (parent :: (try Hashtbl.find children child with Not_found -> [])))
        st;
      Hashtbl.iter
        (fun child parents ->
          if List.length parents <> 1 then
            Alcotest.failf "node %s has %d parents (seed %d)"
              (Value.to_string child) (List.length parents) seed)
        children;
      (* every node is reached *)
      Alcotest.(check int)
        (Printf.sprintf "all 4 nodes reached (seed %d)" seed)
        4 (Hashtbl.length children);
      Alcotest.(check bool) "FD holds" true
        (Choice.respects_choices spanning_tree_rules result))
    [ 0; 1; 2; 3; 4 ]

let test_choice_deterministic_per_seed () =
  let inst = graph_inst [ ("root", "a"); ("root", "b"); ("a", "b") ] in
  Alcotest.check instance "same seed"
    (Choice.eval ~seed:7 spanning_tree_rules inst)
    (Choice.eval ~seed:7 spanning_tree_rules inst)

let test_choice_varies_across_seeds () =
  (* on a diamond, different seeds should eventually give different trees *)
  let inst =
    graph_inst [ ("root", "a"); ("root", "b"); ("a", "c"); ("b", "c") ]
  in
  let distinct =
    List.sort_uniq Instance.compare
      (List.map
         (fun s -> Choice.eval ~seed:s spanning_tree_rules inst)
         [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ])
  in
  Alcotest.(check bool) "at least two distinct trees" true
    (List.length distinct >= 2)

let test_choice_without_constraints_is_datalog () =
  let rules =
    [
      { Choice.rule = Datalog.Parser.parse_rule "T(X,Y) :- G(X,Y)."; choices = [] };
      {
        Choice.rule = Datalog.Parser.parse_rule "T(X,Y) :- G(X,Z), T(Z,Y).";
        choices = [];
      };
    ]
  in
  let inst = Graph_gen.chain 6 in
  check_rel "plain datalog"
    (Graph_gen.reference_tc (Instance.find "G" inst))
    (Choice.answer ~seed:3 rules inst "T")

let test_choice_validation () =
  (match
     Choice.check
       [
         {
           Choice.rule = Datalog.Parser.parse_rule "p(X) :- q(X).";
           choices = [ ([ "Z" ], [ "X" ]) ];
         };
       ]
   with
  | exception Choice.Invalid_choice _ -> ()
  | _ -> Alcotest.fail "expected Invalid_choice");
  match
    Choice.check
      [
        {
          Choice.rule = Datalog.Parser.parse_rule "p(X) :- q(X), !r(X).";
          choices = [];
        };
      ]
  with
  | exception Datalog.Ast.Check_error _ -> ()
  | _ -> Alcotest.fail "negation rejected in the choice fragment"

(* --- active rules ------------------------------------------------------------ *)

let atom = Datalog.Parser.parse_atom

(* cascade delete: removing a department removes its employees; removing
   an employee removes their assignments *)
let cascade_rules =
  [
    {
      Active.name = "dept-cascade";
      event = Active.On_delete (atom "dept(D)");
      condition = [ Datalog.Ast.BPos (atom "emp(E, D)") ];
      actions = [ Active.Delete (atom "emp(E, D)") ];
      mode = Active.Immediate;
    };
    {
      Active.name = "emp-cascade";
      event = Active.On_delete (atom "emp(E, D)");
      condition = [ Datalog.Ast.BPos (atom "assigned(E, T)") ];
      actions = [ Active.Delete (atom "assigned(E, T)") ];
      mode = Active.Immediate;
    };
  ]

let company =
  facts
    {|
      dept(sales). dept(eng).
      emp(alice, sales). emp(bob, sales). emp(carol, eng).
      assigned(alice, t1). assigned(bob, t2). assigned(carol, t3).
    |}

let test_cascade_delete () =
  let res =
    Active.run cascade_rules company
      [ Active.Del ("dept", t [ v "sales" ]) ]
  in
  let i = res.Active.instance in
  Alcotest.(check int) "depts" 1 (Relation.cardinal (Instance.find "dept" i));
  check_rel "only carol left"
    (pairs [ ("carol", "eng") ])
    (Instance.find "emp" i);
  check_rel "only t3 left"
    (pairs [ ("carol", "t3") ])
    (Instance.find "assigned" i);
  (* 1 transaction delete + 2 emp + 2 assignments = 5 applied updates *)
  Alcotest.(check int) "applied updates" 5 res.Active.steps

let test_noop_updates_dont_trigger () =
  let res =
    Active.run cascade_rules company
      [ Active.Del ("dept", t [ v "marketing" ]) ]
  in
  Alcotest.(check int) "nothing applied" 0 res.Active.steps;
  Alcotest.check instance "unchanged" company res.Active.instance;
  match res.Active.log with
  | [ { applied = false; _ } ] -> ()
  | _ -> Alcotest.fail "expected a single no-op log entry"

(* audit log via insert trigger, deferred mode *)
let audit_rules mode =
  [
    {
      Active.name = "audit";
      event = Active.On_insert (atom "emp(E, D)");
      condition = [];
      actions = [ Active.Insert (atom "audit(E)") ];
      mode;
    };
  ]

let test_insert_trigger_immediate_and_deferred () =
  List.iter
    (fun mode ->
      let res =
        Active.run (audit_rules mode) company
          [
            Active.Ins ("emp", t [ v "dave"; v "eng" ]);
            Active.Ins ("emp", t [ v "erin"; v "eng" ]);
          ]
      in
      check_rel "audited"
        (unary [ "dave"; "erin" ])
        (Instance.find "audit" res.Active.instance))
    [ Active.Immediate; Active.Deferred ]

let test_condition_filters () =
  (* only audit managers *)
  let rules =
    [
      {
        Active.name = "audit-mgr";
        event = Active.On_insert (atom "emp(E, D)");
        condition = [ Datalog.Ast.BPos (atom "manager(E)") ];
        actions = [ Active.Insert (atom "audit(E)") ];
        mode = Active.Immediate;
      };
    ]
  in
  let inst = Instance.union company (facts "manager(dave).") in
  let res =
    Active.run rules inst
      [
        Active.Ins ("emp", t [ v "dave"; v "eng" ]);
        Active.Ins ("emp", t [ v "erin"; v "eng" ]);
      ]
  in
  check_rel "only dave audited" (unary [ "dave" ])
    (Instance.find "audit" res.Active.instance)

let test_cascade_limit () =
  (* ping-pong: inserting ping deletes pong and vice versa, forever *)
  let rules =
    [
      {
        Active.name = "ping";
        event = Active.On_insert (atom "ping(X)");
        condition = [];
        actions =
          [ Active.Delete (atom "ping(X)"); Active.Insert (atom "pong(X)") ];
        mode = Active.Immediate;
      };
      {
        Active.name = "pong";
        event = Active.On_insert (atom "pong(X)");
        condition = [];
        actions =
          [ Active.Delete (atom "pong(X)"); Active.Insert (atom "ping(X)") ];
        mode = Active.Immediate;
      };
    ]
  in
  match
    Active.run ~max_steps:50 rules Instance.empty
      [ Active.Ins ("ping", t [ v "a" ]) ]
  with
  | exception Active.Cascade_limit 50 -> ()
  | _ -> Alcotest.fail "expected cascade limit"

let test_deferred_runs_after_transaction () =
  (* deferred constraint repair: after the transaction, every order for a
     discontinued product is removed *)
  let rules =
    [
      {
        Active.name = "repair";
        event = Active.On_insert (atom "discontinued(P)");
        condition = [ Datalog.Ast.BPos (atom "order2(C, P)") ];
        actions = [ Active.Delete (atom "order2(C, P)") ];
        mode = Active.Deferred;
      };
    ]
  in
  let inst = facts "order2(alice, widget). order2(bob, widget)." in
  let res =
    Active.run rules inst
      [
        Active.Ins ("discontinued", t [ v "widget" ]);
        (* this later order is visible to the deferred rule because the
           condition is evaluated at fire time (commit) *)
        Active.Ins ("order2", t [ v "carol"; v "widget" ]);
      ]
  in
  (* deferred evaluation happens at commit: all three orders known when
     the rule's condition ran?  No: condition extensions are computed when
     the event fires — order matters, and that is the documented coupling
     semantics.  alice and bob are removed; carol's insert came after. *)
  check_rel "repair at commit"
    (pairs [ ("carol", "widget") ])
    (Instance.find "order2" res.Active.instance)

let suite =
  [
    Alcotest.test_case "choice: spanning tree" `Quick test_spanning_tree;
    Alcotest.test_case "choice: deterministic per seed" `Quick
      test_choice_deterministic_per_seed;
    Alcotest.test_case "choice: varies across seeds" `Quick
      test_choice_varies_across_seeds;
    Alcotest.test_case "choice: no constraints = Datalog" `Quick
      test_choice_without_constraints_is_datalog;
    Alcotest.test_case "choice: validation" `Quick test_choice_validation;
    Alcotest.test_case "active: cascade delete" `Quick test_cascade_delete;
    Alcotest.test_case "active: no-ops don't trigger" `Quick
      test_noop_updates_dont_trigger;
    Alcotest.test_case "active: insert triggers (both modes)" `Quick
      test_insert_trigger_immediate_and_deferred;
    Alcotest.test_case "active: conditions filter" `Quick
      test_condition_filters;
    Alcotest.test_case "active: cascade limit" `Quick test_cascade_limit;
    Alcotest.test_case "active: deferred coupling" `Quick
      test_deferred_runs_after_transaction;
  ]
