(* Property tests for the §6 subsystems: trees, chase, distributed. *)
open Relational
open Helpers
module Q = QCheck

let count = 60

let prop name arb f = QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name arb f)

(* --- trees ------------------------------------------------------------- *)

let tree_arb =
  Q.make
    ~print:(fun t -> Trees.Tree.to_string t)
    Q.Gen.(
      let* seed = 0 -- 100_000 in
      let* depth = 1 -- 4 in
      let* width = 1 -- 3 in
      return
        (Trees.Tree.random ~seed ~depth ~width
           ~labels:[ "a"; "b"; "c"; "item" ]))

let prop_tree_print_parse =
  prop "tree print/parse roundtrip" tree_arb (fun t ->
      Trees.Tree.parse (Trees.Tree.to_string t) = t)

let prop_tree_encoding_consistent =
  prop "tree encoding: ids, labels, child counts" tree_arb (fun t ->
      let inst = Trees.Tree.to_instance t in
      let n = Trees.Tree.size t in
      Relation.cardinal (Instance.find "lab" inst) = n
      && Relation.cardinal (Instance.find "child" inst) = n - 1
      && Relation.cardinal (Instance.find "root" inst) = 1
      && List.length (Trees.Tree.node_ids t) = n)

let prop_tree_select_subset =
  prop "tree selection returns item nodes only" tree_arb (fun t ->
      let p = prog "sel(X) :- label_item(X)." in
      let selected = Trees.Tree.select p t "sel" in
      List.for_all (fun (_, l) -> l = "item") selected
      &&
      let items =
        List.filter (fun (_, l) -> l = "item") (Trees.Tree.node_ids t)
      in
      List.length selected = List.length items)

(* tree reachability (descendant query) agrees with a direct OCaml fold *)
let prop_tree_descendants =
  prop "descendant query = direct traversal" tree_arb (fun t ->
      let p =
        prog
          {|
          desc(Y) :- root(X), child(X, Y).
          desc(Y) :- desc(X), child(X, Y).
        |}
      in
      let selected = Trees.Tree.select p t "desc" in
      (* every node except the root is a descendant of the root *)
      List.length selected = Trees.Tree.size t - 1)

(* --- chase --------------------------------------------------------------- *)

let emp_arb =
  Q.make
    ~print:(fun n -> Printf.sprintf "%d employees" n)
    Q.Gen.(1 -- 10)

let onto =
  List.map Datalog.Parser.parse_rule
    [
      "worksIn(E, D) :- emp(E).";
      "hasManager(D, M) :- worksIn(E, D).";
      "worksIn(M, D) :- hasManager(D, M).";
      "emp(M) :- hasManager(D, M).";
    ]

let emp_inst n =
  Instance.of_list
    [ ("emp", List.init n (fun i -> [ Value.Sym (Printf.sprintf "e%d" i) ])) ]

let prop_chase_satisfies_tgds =
  prop "chased instance satisfies every tgd" emp_arb (fun n ->
      match Ontology.Chase.chase onto (emp_inst n) with
      | Ontology.Chase.Terminated { instance; _ } ->
          (* no tgd has an unsatisfied trigger: one more chase does
             nothing *)
          (match Ontology.Chase.chase onto instance with
          | Ontology.Chase.Terminated { steps; _ } -> steps = 0
          | _ -> false)
      | _ -> false)

let prop_chase_preserves_input =
  prop "chase only adds facts" emp_arb (fun n ->
      match Ontology.Chase.chase onto (emp_inst n) with
      | Ontology.Chase.Terminated { instance; _ } ->
          Instance.subset (emp_inst n) instance
      | _ -> false)

let prop_certain_answers_null_free =
  prop "certain answers are null-free and monotone" emp_arb (fun n ->
      let q =
        {
          Ontology.Chase.body = [ Datalog.Parser.parse_atom "emp(E)" ];
          answer = [ "E" ];
        }
      in
      let ca = Ontology.Chase.certain_answers onto (emp_inst n) q in
      Relation.for_all
        (fun t -> not (Tuple.exists Value.is_invented t))
        ca
      && Relation.cardinal ca >= n)

(* --- distributed ------------------------------------------------------------ *)

let dist_arb =
  Q.make
    ~print:(fun (k, n, _) -> Printf.sprintf "k=%d n=%d" k n)
    Q.Gen.(
      let* k = 1 -- 4 in
      let* n = 2 -- 10 in
      let* seed = 0 -- 1000 in
      return (k, n, seed))

let tc_net k n =
  let module N = Distributed.Netlog in
  let chain = Graph_gen.chain n in
  let edges = Relation.to_list (Instance.find "G" chain) in
  let parts = Array.make k [] in
  List.iteri (fun i e -> parts.(i mod k) <- e :: parts.(i mod k)) edges;
  let worker i = Printf.sprintf "w%d" i in
  {
    N.peers = "coord" :: List.init k worker;
    programs =
      ( "coord",
        [ { N.location = N.Local;
            rule = Datalog.Parser.parse_rule "reach(X,Y) :- reach(X,Z), reach(Z,Y)." } ] )
      :: List.init k (fun i ->
             ( worker i,
               [ { N.location = N.At_peer "coord";
                   rule = Datalog.Parser.parse_rule "reach(X,Y) :- edge(X,Y)." } ] ));
    stores =
      List.init k (fun i ->
          (worker i, Instance.set "edge" (Relation.of_list parts.(i)) Instance.empty));
  }

let prop_distributed_tc_correct =
  prop "distributed TC = local TC under random schedules" dist_arb
    (fun (k, n, seed) ->
      let module N = Distributed.Netlog in
      let net = tc_net k n in
      let out = N.run ~schedule:(N.Random_sched seed) net in
      out.N.quiescent
      &&
      let reach = Instance.find "reach" (N.store out "coord") in
      let expected =
        Graph_gen.reference_tc (Instance.find "G" (Graph_gen.chain n))
      in
      Relation.equal reach expected)

(* --- aggregation --------------------------------------------------------------- *)

let agg_arb =
  Q.make
    ~print:(fun (i, _) -> Instance.to_string i)
    Q.Gen.(
      let* n = 1 -- 12 in
      let* seed = 0 -- 1000 in
      let rng = Random.State.make [| seed |] in
      let rows =
        List.init n (fun i ->
            [
              Value.Sym (Printf.sprintf "c%d" (Random.State.int rng 4));
              Value.Int i;
              Value.Int (1 + Random.State.int rng 9);
            ])
      in
      return (Instance.of_list [ ("fact", rows) ], rows))

let prop_agg_count_sum_consistent =
  prop "count and sum agree with a direct fold" agg_arb (fun (inst, rows) ->
      let body =
        (Datalog.Parser.parse_rule "agg__p :- fact(C, I, N).").Datalog.Ast.body
      in
      let layers f pred =
        [ { Datalog.Aggregate.rules = [];
            aggregates =
              [ { Datalog.Aggregate.pred; group_by = [ "C" ]; func = f; body } ] } ]
      in
      let counts = Datalog.Aggregate.answer (layers Datalog.Aggregate.Count "cnt") inst "cnt" in
      let sums =
        Datalog.Aggregate.answer (layers (Datalog.Aggregate.Sum "N") "sm") inst "sm"
      in
      let expect f0 merge =
        List.fold_left
          (fun acc row ->
            match row with
            | [ c; _; n ] ->
                let cur = try List.assoc c acc with Not_found -> f0 in
                (c, merge cur n) :: List.remove_assoc c acc
            | _ -> acc)
          [] rows
      in
      let expected_counts = expect 0 (fun acc _ -> acc + 1) in
      let expected_sums =
        expect 0 (fun acc n -> match n with Value.Int k -> acc + k | _ -> acc)
      in
      List.for_all
        (fun (c, k) -> Relation.mem (t [ c; Value.Int k ]) counts)
        expected_counts
      && List.for_all
           (fun (c, k) -> Relation.mem (t [ c; Value.Int k ]) sums)
           expected_sums)

let suite =
  [
    prop_tree_print_parse;
    prop_tree_encoding_consistent;
    prop_tree_select_subset;
    prop_tree_descendants;
    prop_chase_satisfies_tgds;
    prop_chase_preserves_input;
    prop_certain_answers_null_free;
    prop_distributed_tc_correct;
    prop_agg_count_sum_consistent;
  ]
