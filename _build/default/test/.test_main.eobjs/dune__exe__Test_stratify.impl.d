test/test_stratify.ml: Alcotest Datalog Format Helpers List String
