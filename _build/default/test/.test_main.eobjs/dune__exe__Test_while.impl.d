test/test_while.ml: Alcotest Compile Datalog Fo Fo_compile Graph_gen Helpers Instance List Printf Relation Relational Value Wast Weval While_lang
