test/test_distributed.ml: Alcotest Datalog Distributed Graph_gen Helpers Instance List Relation Relational
