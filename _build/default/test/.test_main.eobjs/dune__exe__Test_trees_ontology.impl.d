test/test_trees_ontology.ml: Alcotest Datalog Helpers Instance List Ontology Relation Relational Trees Tuple Value
