test/test_nondet.ml: Alcotest Datalog Graph_gen Helpers Instance List Nondet Printf Relation Relational
