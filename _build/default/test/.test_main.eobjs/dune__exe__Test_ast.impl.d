test/test_ast.ml: Alcotest Datalog Helpers List
