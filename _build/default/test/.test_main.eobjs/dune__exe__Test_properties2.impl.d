test/test_properties2.ml: Array Datalog Distributed Graph_gen Helpers Instance List Ontology Printf QCheck QCheck_alcotest Random Relation Relational Trees Tuple Value
