test/test_parser.ml: Alcotest Datalog Helpers List Printexc Relational Value
