test/test_production.ml: Alcotest Datalog Helpers Instance List Relation Relational
