test/test_choice_active.ml: Alcotest Datalog Graph_gen Hashtbl Helpers Instance List Nondet Printf Relation Relational Tuple Value
