test/test_fp_logic.ml: Alcotest Datalog Fixpoint_logic Graph_gen Helpers Instance List Printf Relation Relational Value
