test/test_turing.ml: Alcotest Datalog List Printf String Turing
