test/test_aggregate.ml: Alcotest Datalog Graph_gen Helpers Relation Relational
