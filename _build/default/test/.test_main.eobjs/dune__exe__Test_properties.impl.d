test/test_properties.ml: Datalog Fo Format Graph_gen Helpers Instance List Nondet Printf QCheck QCheck_alcotest Relation Relational String Tuple Value While_lang
