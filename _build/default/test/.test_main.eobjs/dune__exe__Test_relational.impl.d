test/test_relational.ml: Alcotest Array Graph_gen Helpers Instance List Order Relation Relational Schema String Tuple Value
