test/test_engines_smoke.ml: Alcotest Datalog Graph_gen Helpers Instance List Relation Relational Tuple Value
