test/helpers.ml: Alcotest Datalog Format Instance List Relation Relational Tuple Value
