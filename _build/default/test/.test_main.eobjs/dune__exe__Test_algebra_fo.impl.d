test/test_algebra_fo.ml: Alcotest Algebra Fo Helpers Instance Relation Relational Schema Tuple
