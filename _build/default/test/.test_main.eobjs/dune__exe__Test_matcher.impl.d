test/test_matcher.ml: Alcotest Datalog Helpers Instance List Relation Relational
