test/test_edge_cases.ml: Alcotest Datalog Graph_gen Helpers Instance List Nondet Order Relation Relational String Value
