test/test_engines_deep.ml: Alcotest Datalog Graph_gen Helpers Instance List Order Printf Relation Relational Tuple Value
