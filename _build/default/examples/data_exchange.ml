(* Peer-to-peer data exchange (§6 of the paper: Webdamlog, Orchestra —
   "Datalog variants used to exchange data among peers on the Web", with
   forward-chaining, nondeterministic semantics "similarly to active
   rules").

   Three peers share photo albums: alice publishes photos and routes each
   to the friend it is shared with (variable location — the destination
   peer is data); bob republishes everything he receives to the family
   archive; the archive indexes by owner. A negation-free network, so by
   the CALM observation the final state is the same under every activation
   schedule — which the example checks.

   Run with: dune exec examples/data_exchange.exe *)
open Relational
module N = Distributed.Netlog

let lrule ?(location = N.Local) src =
  { N.location; rule = Datalog.Parser.parse_rule src }

let network =
  {
    N.peers = [ "alice"; "bob"; "archive" ];
    programs =
      [
        ( "alice",
          [
            (* route each shared photo to the peer it is shared with *)
            lrule ~location:(N.At_var "F") "photo(alice, P) :- shares(F, P).";
          ] );
        ( "bob",
          [
            lrule ~location:(N.At_peer "archive")
              "photo(O, P) :- photo(O, P).";
          ] );
        ( "archive",
          [ lrule "by_owner(O, P) :- photo(O, P)." ] );
      ];
    stores =
      [
        ( "alice",
          Instance.parse_facts
            "shares(bob, beach). shares(bob, sunset). shares(archive, id)."
        );
        ("bob", Instance.parse_facts "photo(bob, dog).");
      ];
  }

let () =
  let out = N.run network in
  Format.printf "after %d activations, %d messages:@.@." out.N.rounds
    out.N.messages;
  List.iter
    (fun peer ->
      Format.printf "--- %s ---@.%a@.@." peer Instance.pp (N.store out peer))
    [ "alice"; "bob"; "archive" ];
  (* bob received alice's shared photos and forwarded them *)
  let archive = Instance.find "by_owner" (N.store out "archive") in
  assert (
    Relation.mem (Tuple.of_list [ Value.sym "alice"; Value.sym "beach" ]) archive);
  assert (
    Relation.mem (Tuple.of_list [ Value.sym "bob"; Value.sym "dog" ]) archive);
  (* CALM: the network is negation-free, so every schedule agrees *)
  Format.printf "confluent under all schedules (CALM, monotone): %b@."
    (N.confluent network)
