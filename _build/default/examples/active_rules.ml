(* An active-database / production-system scenario (§7: the adoption of
   forward chaining in practice), built on the Datalog¬¬ update semantics
   and the production-rule layer.

   Working memory holds orders, stock, and shipments. Rules:
   - an order for an in-stock item reserves it (retract stock, assert
     reservation);
   - a reservation with a ready carrier ships (retract reservation, assert
     shipped);
   - an order for an out-of-stock item is backordered.

   The recognize-act cycle fires one rule instantiation at a time under a
   conflict-resolution strategy — OPS5's execution model, which the paper
   notes was an early practical adopter of forward chaining.

   Run with: dune exec examples/active_rules.exe *)
open Relational

let rules =
  Datalog.Parser.parse_program
    {|
      reserved(Item, Cust), !stock(Item) :- order(Cust, Item), stock(Item).
      shipped(Item, Cust), !reserved(Item, Cust) :-
        reserved(Item, Cust), carrier_ready.
      backorder(Cust, Item) :-
        order(Cust, Item), !stock(Item),
        !reserved(Item, Cust), !shipped(Item, Cust).
    |}

let memory =
  Instance.parse_facts
    {|
      order(alice, widget).
      order(bob, widget).
      order(carol, gizmo).
      stock(widget).
      carrier_ready().
    |}

let show_strategy name strategy =
  let res = Datalog.Production.run ~strategy rules memory in
  Format.printf "--- strategy: %s (%d cycles) ---@." name
    res.Datalog.Production.cycles;
  List.iter
    (fun pred ->
      let r = Instance.find pred res.Datalog.Production.memory in
      if not (Relation.is_empty r) then
        Format.printf "  %s: %a@." pred Relation.pp r)
    [ "shipped"; "backorder"; "stock"; "reserved" ];
  res

let () =
  Format.printf "working memory:@.%a@.@." Instance.pp memory;
  (* only one widget in stock: exactly one of alice/bob ships, the other
     is backordered; carol's gizmo was never stocked. *)
  let r1 = show_strategy "first-match" Datalog.Production.First in
  let r2 = show_strategy "random(3)" (Datalog.Production.Random 3) in
  let _ = show_strategy "recency" Datalog.Production.Recency in
  let _ = show_strategy "specificity" Datalog.Production.Specificity in

  let shipped r =
    Relation.cardinal (Instance.find "shipped" r.Datalog.Production.memory)
  in
  Format.printf "@.one widget, one shipment under every strategy: %b@."
    (shipped r1 = 1 && shipped r2 = 1);

  (* The same rules under the exhaustive nondeterministic semantics show
     every serialization: who gets the widget differs per terminal
     instance. *)
  let outcomes = Nondet.Enumerate.terminals rules memory in
  Format.printf "nondeterministic outcomes: %d@." (List.length outcomes);
  List.iteri
    (fun i j ->
      Format.printf "  outcome %d ships: %a@." (i + 1) Relation.pp
        (Instance.find "shipped" j))
    outcomes
