(* §5.1 of the paper: graph orientation with N-Datalog¬¬.

     !G(X, Y) :- G(X, Y), G(Y, X).

   Under deterministic semantics this deletes both directions of every
   2-cycle; under the nondeterministic one-firing-at-a-time semantics it
   picks ONE direction per 2-cycle — an orientation. With k disjoint
   2-cycles the effect relation has exactly 2^k terminal instances.

   Run with: dune exec examples/orientation.exe *)
open Relational

let program = Datalog.Parser.parse_program "!G(X, Y) :- G(X, Y), G(Y, X)."

let () =
  let k = 3 in
  let inst = Graph_gen.two_cycles k in
  Format.printf "input: %d two-cycles (%d edges)@.@." k
    (Relation.cardinal (Instance.find "G" inst));

  (* One random orientation *)
  (match Nondet.Nd_eval.run ~seed:7 program inst with
  | Nondet.Nd_eval.Terminal { instance; steps } ->
      Format.printf "random walk (%d firings) chose:@.%a@.@." steps
        Instance.pp instance
  | _ -> assert false);

  (* All of them *)
  let stats = Nondet.Enumerate.effect program inst in
  Format.printf "effect relation: %d terminal instances (expected 2^%d = %d)@."
    (List.length stats.Nondet.Enumerate.terminals)
    k (1 lsl k);

  (* poss keeps every edge (each survives in some orientation); cert keeps
     none of the cycle edges (none survives in all) — Definition 5.10. *)
  let poss = Nondet.Posscert.poss program inst in
  let cert = Nondet.Posscert.cert program inst in
  Format.printf "|poss(G)| = %d, |cert(G)| = %d@."
    (Relation.cardinal (Instance.find "G" poss))
    (Relation.cardinal (Instance.find "G" cert));

  (* Compare with the deterministic Datalog¬¬ reading: both directions die *)
  let det = Datalog.Noninflationary.eval program inst in
  Format.printf "deterministic Datalog\xc2\xac\xc2\xac removes all: |G| = %d@."
    (Relation.cardinal (Instance.find "G" det))
