(* Web data extraction with monadic Datalog over trees (§6 of the paper:
   the Lixto project — "Monadic Datalog captures exactly Monadic Second
   Order logic over trees", giving wrappers expressiveness plus
   efficiency).

   A product-listing "page" is a labelled tree; the wrapper selects the
   prices of in-stock products inside the results list, skipping the
   sponsored block — pure monadic Datalog over the firstchild/nextsibling
   encoding, evaluated by the stock stratified engine.

   Run with: dune exec examples/web_extraction.exe *)
module Tree = Trees.Tree

let page =
  Tree.parse
    {|html(
        body(
          sponsored(product(price, instock)),
          results(
            product(title, price, instock),
            product(title, price),
            product(title, price, instock)),
          footer))|}

let wrapper =
  Datalog.Parser.parse_program
    {|
      % nodes inside the results list (descendants)
      in_results(X) :- label_results(R), child(R, X).
      in_results(X) :- in_results(Y), child(Y, X).

      % in-stock products in the results
      good_product(X) :- label_product(X), in_results(X),
                         child(X, S), label_instock(S).

      % their prices
      wanted(P) :- good_product(X), child(X, P), label_price(P).
    |}

let () =
  Format.printf "page (%d nodes):@.  %s@.@." (Tree.size page)
    (Tree.to_string page);
  assert (Tree.is_monadic wrapper);
  Format.printf "wrapper is monadic Datalog: yes@.@.";
  let selected = Tree.select wrapper page "wanted" in
  Format.printf "extracted %d price nodes:@." (List.length selected);
  List.iter
    (fun (id, label) -> Format.printf "  %s (%s)@." id label)
    selected;
  (* the sponsored price and the out-of-stock product's price are skipped *)
  assert (List.length selected = 2);

  (* the negation variant: products WITHOUT stock information *)
  let missing_stock =
    Datalog.Parser.parse_program
      {|
      has_stock(X) :- label_product(X), child(X, S), label_instock(S).
      missing(X) :- label_product(X), !has_stock(X).
    |}
  in
  let missing = Tree.select missing_stock page "missing" in
  Format.printf "@.products missing stock info: %d@." (List.length missing);
  assert (List.length missing = 1)
