(* Quickstart: parse a Datalog program from text, evaluate it semi-naively,
   inspect the answer.

   Run with: dune exec examples/quickstart.exe *)
open Relational

let () =
  (* The paper's first program (§3.1): transitive closure. *)
  let program =
    Datalog.Parser.parse_program
      {|
        T(X, Y) :- G(X, Y).
        T(X, Y) :- G(X, Z), T(Z, Y).
      |}
  in
  (* Facts can come from text too (Instance.parse_facts), or be built
     programmatically: *)
  let edges =
    Instance.parse_facts "G(a, b). G(b, c). G(c, d). G(d, b)."
  in
  let result = Datalog.Seminaive.eval program edges in
  Format.printf "Transitive closure (%d stages):@."
    result.Datalog.Seminaive.stages;
  Relation.iter
    (fun t -> Format.printf "  %a@." Datalog.Pretty.pp_fact ("T", t))
    (Instance.find "T" result.Datalog.Seminaive.instance);

  (* The same program under every deterministic semantics agrees on pure
     Datalog — Figure 1's base level. *)
  let naive = Datalog.Naive.answer program edges "T" in
  let seminaive = Datalog.Seminaive.answer program edges "T" in
  let inflationary = Datalog.Inflationary.answer program edges "T" in
  assert (Relation.equal naive seminaive);
  assert (Relation.equal naive inflationary);
  Format.printf "naive = semi-naive = inflationary: %d facts@."
    (Relation.cardinal naive)
