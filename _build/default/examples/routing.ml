(* Declarative networking (§6 of the paper: "Datalog for networking" —
   recursive reasoning about reachability and policy is what made Datalog
   attractive for distributed protocols).

   A small autonomous-system topology: links, per-node export policies,
   and a white-list of trusted transit nodes. Stratified Datalog¬
   computes:
   - multi-hop reachability along policy-compliant links,
   - the nodes cut off from the destination (negation over recursion),
   - safe routes whose every transit node is trusted.

   Run with: dune exec examples/routing.exe *)
open Relational

let program =
  Datalog.Parser.parse_program
    {|
      % a link is usable if its source exports routes
      usable(X, Y) :- link(X, Y), exports(X).

      % reachability over usable links
      route(X, Y) :- usable(X, Y).
      route(X, Y) :- usable(X, Z), route(Z, Y).

      % nodes with no route to the destination
      node(X) :- link(X, Y).
      node(Y) :- link(X, Y).
      is_dst(dst).
      cutoff(X) :- node(X), !route(X, dst), !is_dst(X).

      % safe routes: transit only through trusted nodes
      safe(X, Y) :- usable(X, Y).
      safe(X, Y) :- usable(X, Z), trusted(Z), safe(Z, Y).
    |}

let topology =
  Instance.parse_facts
    {|
      link(src, a). link(a, b). link(b, dst).
      link(src, c). link(c, dst).
      link(d, dst).
      exports(src). exports(a). exports(b). exports(c).
      % d exports nothing: its link is unusable
      trusted(a). trusted(b).
      % c is untrusted transit
    |}

let () =
  let res = Datalog.Stratified.eval program topology in
  let inst = res.Datalog.Stratified.instance in
  let routes_to name rel =
    Relation.iter
      (fun t ->
        if Value.equal (Tuple.get t 1) (Value.sym "dst") then
          Format.printf "  %s -> dst@." (Value.to_string (Tuple.get t 0)))
      (Instance.find rel inst);
    ignore name
  in
  Format.printf "topology:@.%a@.@." Instance.pp topology;
  Format.printf "routes to dst:@.";
  routes_to "route" "route";
  Format.printf "@.cut off from dst (negation over recursion, stratum 2):@.";
  Format.printf "  %a@." Relation.pp (Instance.find "cutoff" inst);
  Format.printf "@.safe routes to dst (trusted transit only):@.";
  routes_to "safe" "safe";
  let mem rel a b =
    Relation.mem (Tuple.of_list [ Value.sym a; Value.sym b ]) (Instance.find rel inst)
  in
  (* src reaches dst both ways; the c-path is a route, and src->dst is
     still safe via a-b; but c itself is fine as an endpoint — only
     *transit* through untrusted nodes is banned *)
  assert (mem "route" "src" "dst");
  assert (mem "safe" "src" "dst");
  assert (
    Relation.equal (Instance.find "cutoff" inst)
      (Relation.of_rows [ [ Value.sym "d" ] ]));
  Format.printf "@.d is cut off (it exports nothing).@."
