(* Example 4.1 of the paper: the closer program under inflationary
   semantics, with its stage-by-stage trace.

   closer(x, y, x', y') is derived at stage n+1 whenever T(x,y) has been
   inferred by stage n (d(x,y) <= n) while T(x',y') has not (d(x',y') > n):
   the stage counter is what compares the distances.

   Run with: dune exec examples/closer.exe *)
open Relational

let program =
  Datalog.Parser.parse_program
    {|
      T(X, Y) :- G(X, Y).
      T(X, Y) :- T(X, Z), G(Z, Y).
      closer(X, Y, X2, Y2) :- T(X, Y), !T(X2, Y2).
    |}

let () =
  let edges = Graph_gen.chain 5 in
  Format.printf "input: chain n0 -> n1 -> n2 -> n3 -> n4@.@.";
  let trace = Datalog.Inflationary.trace program edges in
  List.iteri
    (fun stage inst ->
      Format.printf "stage %d: |T| = %d, |closer| = %d@." stage
        (Relation.cardinal (Instance.find "T" inst))
        (Relation.cardinal (Instance.find "closer" inst)))
    trace;
  let final = List.nth trace (List.length trace - 1) in
  let closer = Instance.find "closer" final in
  let v i = Value.sym (Printf.sprintf "n%d" i) in
  let is_closer (a, b) (c, d) =
    Relation.mem (Tuple.of_list [ v a; v b; v c; v d ]) closer
  in
  Format.printf "@.closer((n0,n1), (n0,n3)) = %b  (1 < 3)@."
    (is_closer (0, 1) (0, 3));
  Format.printf "closer((n0,n3), (n0,n1)) = %b  (3 > 1)@."
    (is_closer (0, 3) (0, 1));
  Format.printf "closer((n0,n2), (n3,n1)) = %b  (2 < infinity)@."
    (is_closer (0, 2) (3, 1))
