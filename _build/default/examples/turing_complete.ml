(* Theorem 4.6 made executable: Datalog¬new expresses all computable
   queries. A Turing machine is compiled into a Datalog¬new program whose
   invented values materialize time points and fresh tape cells — the
   unbounded workspace that breaks the polynomial space barrier of the
   invention-free languages.

   Run with: dune exec examples/turing_complete.exe *)

let show m input =
  let sim = Turing.Tm_compile.simulate m input in
  Format.printf "%s on [%s]:@." m.Turing.Tm.name (String.concat "" input);
  Format.printf "  accepted=%b rejected=%b steps=%d@."
    sim.Turing.Tm_compile.accepted sim.Turing.Tm_compile.rejected
    sim.Turing.Tm_compile.steps;
  Format.printf "  invented values=%d inflationary stages=%d@."
    sim.Turing.Tm_compile.invented sim.Turing.Tm_compile.stages;
  if sim.Turing.Tm_compile.accepted then
    Format.printf "  final tape: %s@."
      (String.concat ""
         (List.map snd sim.Turing.Tm_compile.final_tape));
  (* sanity: the reference interpreter agrees *)
  assert (Turing.Tm_compile.agrees_with_reference m input);
  Format.printf "  (agrees with the direct TM interpreter)@.@."

let () =
  let program = Turing.Tm_compile.compile Turing.Tm.binary_increment in
  Format.printf
    "compiled binary-increment machine: %d Datalog\xc2\xacnew rules@.@."
    (List.length program);
  (* a glimpse of the generated rules *)
  List.iteri
    (fun i r ->
      if i < 6 then
        Format.printf "  %s@." (Datalog.Pretty.rule_to_string r))
    program;
  Format.printf "  ...@.@.";

  show Turing.Tm.unary_increment [ "1"; "1"; "1" ];
  show Turing.Tm.binary_increment [ "1"; "0"; "1"; "1" ];
  show Turing.Tm.parity [ "1"; "0"; "1" ];
  show Turing.Tm.palindrome [ "0"; "1"; "1"; "0" ]
