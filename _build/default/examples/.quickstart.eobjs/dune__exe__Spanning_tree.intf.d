examples/spanning_tree.mli:
