examples/data_exchange.ml: Datalog Distributed Format Instance List Relation Relational Tuple Value
