examples/orientation.ml: Datalog Format Graph_gen Instance List Nondet Relation Relational
