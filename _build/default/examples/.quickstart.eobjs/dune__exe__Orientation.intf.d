examples/orientation.mli:
