examples/game_win.ml: Datalog Format Graph_gen Instance List Relation Relational Tuple Value
