examples/routing.mli:
