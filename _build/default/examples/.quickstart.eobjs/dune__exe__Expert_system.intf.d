examples/expert_system.mli:
