examples/turing_complete.ml: Datalog Format List String Turing
