examples/routing.ml: Datalog Format Instance Relation Relational Tuple Value
