examples/active_rules.ml: Datalog Format Instance List Nondet Relation Relational
