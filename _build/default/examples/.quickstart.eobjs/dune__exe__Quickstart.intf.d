examples/quickstart.mli:
