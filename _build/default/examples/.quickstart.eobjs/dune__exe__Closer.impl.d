examples/closer.ml: Datalog Format Graph_gen Instance List Printf Relation Relational Tuple Value
