examples/quickstart.ml: Datalog Format Instance Relation Relational
