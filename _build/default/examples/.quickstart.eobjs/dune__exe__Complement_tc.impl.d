examples/complement_tc.ml: Datalog Format Graph_gen Instance Relation Relational
