examples/ontology_reasoning.mli:
