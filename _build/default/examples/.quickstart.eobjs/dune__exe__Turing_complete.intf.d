examples/turing_complete.mli:
