examples/game_win.mli:
