examples/ontology_reasoning.ml: Datalog Format Instance List Ontology Relation Relational
