examples/closer.mli:
