examples/spanning_tree.ml: Datalog Fixpoint_logic Format Instance List Nondet Relation Relational Tuple Value
