examples/active_rules.mli:
