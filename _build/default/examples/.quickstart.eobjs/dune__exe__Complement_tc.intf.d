examples/complement_tc.mli:
