examples/data_exchange.mli:
