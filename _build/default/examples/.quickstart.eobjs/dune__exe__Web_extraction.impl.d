examples/web_extraction.ml: Datalog Format List Trees
