examples/web_extraction.mli:
