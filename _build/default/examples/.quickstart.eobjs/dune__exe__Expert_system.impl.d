examples/expert_system.ml: Datalog Format Instance List Nondet Relational String Tuple
