(* Example 3.2 of the paper: the win/move game under well-founded
   semantics, on the exact instance K from the paper.

   A player loses when stuck. win(x) holds if some move from x leads to a
   position where the opponent loses:

     win(X) :- moves(X, Y), !win(Y).

   The program is not stratifiable (win depends negatively on itself); the
   well-founded semantics assigns three truth values.

   Run with: dune exec examples/game_win.exe *)
open Relational

let () =
  let program = Datalog.Parser.parse_program "win(X) :- moves(X, Y), !win(Y)." in
  let k = Graph_gen.paper_game () in
  Format.printf "moves:@.%a@.@." Instance.pp k;

  (match Datalog.Stratify.stratify program with
  | Error msg -> Format.printf "stratified semantics: %s@.@." msg
  | Ok _ -> assert false);

  let res = Datalog.Wellfounded.eval program k in
  Format.printf "well-founded model (%d alternating rounds):@."
    res.Datalog.Wellfounded.rounds;
  List.iter
    (fun s ->
      let tr =
        Datalog.Wellfounded.truth_of res "win" (Tuple.of_list [ Value.sym s ])
      in
      Format.printf "  win(%s) = %s@." s
        (match tr with
        | Datalog.Wellfounded.True -> "true"
        | Datalog.Wellfounded.False -> "false"
        | Datalog.Wellfounded.Unknown -> "unknown"))
    [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ];

  (* The 3-valued model matches the paper: winning strategies exist from d
     and f; e and g are lost; the a-b-c cycle is drawn (unknown). *)
  Format.printf "@.stable models (branching on the unknowns):@.";
  let models = Datalog.Stable.models program k in
  Format.printf "  %d stable model(s)@." (List.length models);
  List.iter
    (fun m ->
      Format.printf "  win = %a@." Relation.pp (Instance.find "win" m))
    models
