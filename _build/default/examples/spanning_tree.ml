(* The choice operator (§5.2): LDL's classic nondeterministic spanning
   tree. choice((Y), (X)) on the recursive rule forces each node Y to
   commit to a single parent X — different seeds yield different trees.

   Also shows the witness operator W of FO+IFP+W ([14], §5.2) computing a
   nondeterministically-rooted reachable set.

   Run with: dune exec examples/spanning_tree.exe *)
open Relational
module Fp = Fixpoint_logic.Fp

let rules =
  [
    { Nondet.Choice.rule = Datalog.Parser.parse_rule "st(root, root)."; choices = [] };
    {
      Nondet.Choice.rule =
        Datalog.Parser.parse_rule "st(X, Y) :- st(W, X), e(X, Y).";
      choices = [ ([ "Y" ], [ "X" ]) ];
    };
  ]

let graph =
  Instance.parse_facts
    {|
      e(root, a). e(root, b).
      e(a, c). e(b, c). e(c, d). e(a, d).
    |}

let () =
  Format.printf "graph:@.%a@.@." Instance.pp graph;
  List.iter
    (fun seed ->
      let st = Nondet.Choice.answer ~seed rules graph "st" in
      Format.printf "seed %d spanning tree:@." seed;
      Relation.iter
        (fun t ->
          let p = Tuple.get t 0 and c = Tuple.get t 1 in
          if not (Value.equal p c) then
            Format.printf "  %s -> %s@." (Value.to_string p)
              (Value.to_string c))
        st;
      assert (Nondet.Choice.respects_choices rules (Instance.set "st" st Instance.empty)))
    [ 0; 1; 2 ];

  (* FO+IFP+W: choose a root among the candidates, then close under e *)
  Format.printf "@.FO+IFP+W: reachable set from a nondeterministic root@.";
  let f =
    Fp.ifp ~rel:"S" ~vars:[ "x" ]
      (Fp.Or
         ( Fp.Witness ([ "x" ], Fp.Atom ("cand", [ Fp.Var "x" ])),
           Fp.Exists
             ( [ "z" ],
               Fp.And
                 ( Fp.Atom ("S", [ Fp.Var "z" ]),
                   Fp.Atom ("e", [ Fp.Var "z"; Fp.Var "x" ]) ) ) ))
      [ Fp.Var "u" ]
  in
  let inst = Instance.union graph (Instance.parse_facts "cand(a). cand(b).") in
  List.iter
    (fun r ->
      Format.printf "  outcome: %a@." Relation.pp r)
    (Fp.outcomes inst f [ "u" ])
