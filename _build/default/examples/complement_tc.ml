(* The complement of transitive closure, three ways (§3.2 and Example 4.3):

   1. stratified Datalog¬ — compute T, then negate;
   2. inflationary Datalog¬ with the paper's delay technique (the verbatim
      program of Example 4.3, detecting the fixpoint of T from inside);
   3. well-founded semantics (total here, since the program stratifies).

   All three agree — the convergence the paper celebrates in Theorem 4.2.

   Run with: dune exec examples/complement_tc.exe *)
open Relational

let stratified_program =
  Datalog.Parser.parse_program
    {|
      T(X, Y) :- G(X, Y).
      T(X, Y) :- G(X, Z), T(Z, Y).
      CT(X, Y) :- !T(X, Y).
    |}

(* Example 4.3, verbatim: old_T trails T by one stage;
   old_T_except_final refuses to fire once T has reached its fixpoint;
   the CT rule waits for the one stage where they differ. *)
let inflationary_program =
  Datalog.Parser.parse_program
    {|
      T(X, Y) :- G(X, Y).
      T(X, Y) :- G(X, Z), T(Z, Y).
      old_T(X, Y) :- T(X, Y).
      old_T_except_final(X, Y) :- T(X, Y), T(X2, Z2), T(Z2, Y2), !T(X2, Y2).
      CT(X, Y) :- !T(X, Y), old_T(X2, Y2), !old_T_except_final(X2, Y2).
    |}

let () =
  let edges = Graph_gen.random ~seed:17 6 9 in
  Format.printf "random graph: %d edges on 6 vertices@.@."
    (Relation.cardinal (Instance.find "G" edges));

  let ct_strat = Datalog.Stratified.answer stratified_program edges "CT" in
  let ct_infl = Datalog.Inflationary.answer inflationary_program edges "CT" in
  let ct_wf = Datalog.Wellfounded.answer stratified_program edges "CT" in

  Format.printf "|CT| stratified    = %d@." (Relation.cardinal ct_strat);
  Format.printf "|CT| inflationary  = %d  (Example 4.3 delay technique)@."
    (Relation.cardinal ct_infl);
  Format.printf "|CT| well-founded  = %d@." (Relation.cardinal ct_wf);
  assert (Relation.equal ct_strat ct_infl);
  assert (Relation.equal ct_strat ct_wf);
  Format.printf "@.all three semantics agree.@.";

  (* the well-founded model of a stratifiable program is total *)
  let wf = Datalog.Wellfounded.eval stratified_program edges in
  assert (Datalog.Wellfounded.is_total wf);
  Format.printf "@.well-founded model is total (no unknowns), as stratified \
                 programs guarantee.@."
