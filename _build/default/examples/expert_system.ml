(* The classic OPS5 demonstration: monkey and bananas, as a production
   system over working memory (§5 of the paper: "nondeterminism has long
   been present in expert systems and production systems"; OPS5 [39, 59]).

   The monkey must push the box under the bananas, climb it, and grab.
   Each rule retracts the old state and asserts the new one — pure
   forward chaining with working-memory updates (N-Datalog¬¬ rule syntax
   driving the recognize-act cycle).

   Run with: dune exec examples/expert_system.exe *)
open Relational

let rules =
  Datalog.Parser.parse_program
    {|
      % walk to the box if not already there
      monkey_at(B), !monkey_at(M) :-
        monkey_at(M), box_at(B), M != B, !on_box().

      % push the box under the bananas
      box_at(T), monkey_at(T), !box_at(B), !monkey_at(B) :-
        monkey_at(B), box_at(B), bananas_at(T), B != T, !on_box().

      % climb when the box is under the bananas
      on_box() :-
        monkey_at(P), box_at(P), bananas_at(P), !on_box().

      % grab!
      has_bananas() :-
        on_box(), monkey_at(P), bananas_at(P), !has_bananas().
    |}

let world =
  Instance.parse_facts
    {|
      monkey_at(door).
      box_at(window).
      bananas_at(center).
    |}

let () =
  Format.printf "initial world:@.%a@.@." Instance.pp world;
  let res = Datalog.Production.run ~strategy:Datalog.Production.First rules world in
  Format.printf "plan found in %d recognize-act cycles:@."
    res.Datalog.Production.cycles;
  List.iteri
    (fun i fired ->
      Format.printf "  %d. rule %d: +%s -%s@." (i + 1)
        fired.Datalog.Production.rule_index
        (String.concat ","
           (List.map (fun (p, _) -> p) fired.Datalog.Production.asserted))
        (String.concat ","
           (List.map (fun (p, _) -> p) fired.Datalog.Production.retracted)))
    res.Datalog.Production.trace;
  Format.printf "@.final world:@.%a@.@." Instance.pp
    res.Datalog.Production.memory;
  assert (
    Instance.mem_fact "has_bananas" (Tuple.of_list []) res.Datalog.Production.memory);
  Format.printf "the monkey has the bananas.@.@.";

  (* the same rules under exhaustive nondeterministic semantics: every
     serialization reaches the same goal here (the plan is forced) *)
  let outcomes = Nondet.Enumerate.terminals rules world in
  Format.printf "nondeterministic endings: %d; all with bananas: %b@."
    (List.length outcomes)
    (List.for_all
       (fun j -> Instance.mem_fact "has_bananas" (Tuple.of_list []) j)
       outcomes)
