(* Ontological query answering with Datalog± and the chase (§6 of the
   paper: the Calì–Gottlob–Lukasiewicz family, "an elegant unifying
   formalism that subsumes well-known description logics"; Vadalog builds
   on the warded fragment).

   A tiny enterprise ontology: every employee works in some department
   (unknown which — an existential); departments have managers; managers
   are employees. The restricted chase materializes labelled nulls for the
   unknowns; certain answers are the null-free ones.

   Run with: dune exec examples/ontology_reasoning.exe *)
open Relational
module Chase = Ontology.Chase

let tgd = Datalog.Parser.parse_rule

let onto =
  [
    tgd "worksIn(E, D) :- emp(E).";
    tgd "hasManager(D, M) :- worksIn(E, D).";
    (* managers work in their own department — this closes the
       existential loop so the restricted chase terminates *)
    tgd "worksIn(M, D) :- hasManager(D, M).";
    tgd "emp(M) :- hasManager(D, M).";
    tgd "supervises(M, E) :- worksIn(E, D), hasManager(D, M).";
  ]

let data = Instance.parse_facts "emp(alice). emp(bob). worksIn(bob, eng)."

let () =
  Format.printf "ontology (%d tgds): linear=%b guarded=%b weakly-acyclic=%b@.@."
    (List.length onto) (Chase.is_linear onto)
    (Chase.is_guarded onto)
    (Chase.weakly_acyclic onto);

  (match Chase.chase onto data with
  | Chase.Terminated { instance; steps; nulls } ->
      Format.printf
        "restricted chase terminated: %d trigger applications, %d nulls@.@."
        steps nulls;
      Format.printf "chased instance:@.%a@.@." Instance.pp instance
  | Chase.Out_of_fuel _ -> assert false);

  (* Boolean conjunctive query: is somebody supervised by a manager who is
     themselves an employee? *)
  let q =
    [
      Datalog.Parser.parse_atom "supervises(M, alice)";
      Datalog.Parser.parse_atom "emp(M)";
    ]
  in
  Format.printf "BCQ: does some employee-manager supervise alice? %b@."
    (Chase.bcq onto data q);

  (* certain answers: who certainly works somewhere? *)
  let workers =
    Chase.certain_answers onto data
      { Chase.body = [ Datalog.Parser.parse_atom "worksIn(E, D)" ]; answer = [ "E" ] }
  in
  Format.printf "certainly employed: %a@." Relation.pp workers;
  (* bob's department is known; alice's is a null *)
  let depts =
    Chase.certain_answers onto data
      { Chase.body = [ Datalog.Parser.parse_atom "worksIn(E, D)" ]; answer = [ "E"; "D" ] }
  in
  Format.printf "certain (employee, department) pairs: %a@." Relation.pp depts
