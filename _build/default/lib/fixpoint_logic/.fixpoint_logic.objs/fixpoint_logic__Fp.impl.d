lib/fixpoint_logic/fp.ml: Format Hashtbl Instance List Obj Printf Relation Relational Set Tuple Value
