lib/fixpoint_logic/fp.mli: Format Instance Relation Relational Tuple Value
