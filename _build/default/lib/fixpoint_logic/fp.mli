(** Fixpoint logics: FO + IFP (inflationary fixpoint) and FO + PFP
    (partial fixpoint), with the nondeterministic witness operator [W]
    of §5.2 of the paper ([14]).

    These are the logic-side counterparts of the rule languages:

    - FO + IFP = fixpoint queries = inflationary Datalog¬ (Theorem 4.2);
    - FO + PFP = while queries = Datalog¬¬;
    - FO + IFP + W ≡ N-Datalog¬∀ ≡ N-Datalog¬⊥ (ndb-ptime, Theorem 5.6);
    - FO + PFP + W ≡ N-Datalog¬¬ (ndb-pspace, Theorem 5.3).

    Syntax extends {!Relational.Fo}-style formulas with
    [[IFP_{R, x̄} φ](t̄)] / [[PFP_{R, x̄} φ](t̄)] — the relation variable
    [R] of arity [|x̄|] may occur in [φ]; the operator denotes the
    (inflationary / partial) fixpoint of [J ↦ J ∪ φ(J)] (resp.
    [J ↦ φ(J)]) applied to the tuple [t̄] — and with [W x̄ φ]: for each
    valuation of [φ]'s remaining free variables, {e one} satisfying
    valuation of [x̄] is chosen nondeterministically (none if
    unsatisfiable); [W x̄ φ] holds exactly of the selected
    valuations, so the witness variables stay free in the formula.

    The partial fixpoint is undefined when the stage sequence cycles
    without converging (the flip-flop); evaluation reports this as
    {!Undefined}. Witness choices are resolved by a seeded deterministic
    policy, and [outcomes] enumerates every choice function (exponential,
    capped). *)

open Relational

type term = Var of string | Cst of Value.t

type formula =
  | True
  | False
  | Atom of string * term list
      (** database relation or fixpoint-bound relation variable *)
  | Eq of term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of string list * formula
  | Forall of string list * formula
  | Ifp of fp * term list  (** [[IFP_{R,x̄} φ](t̄)] *)
  | Pfp of fp * term list  (** [[PFP_{R,x̄} φ](t̄)] *)
  | Witness of string list * formula  (** [W x̄ φ] *)

and fp = {
  rel : string;  (** bound relation variable *)
  vars : string list;  (** its column variables x̄ *)
  body : formula;
}

exception Undefined of string
(** a PFP subterm cycled without converging *)

exception Type_error of string

(** [free_vars f] — the fixpoint column variables [x̄] are bound inside
    fixpoint bodies; [W]'s variables stay free (see above). *)
val free_vars : formula -> string list

(** A choice policy resolves witness selections: given the call-site id,
    the outer valuation, and the (non-empty, sorted) candidate tuples,
    pick one. *)
type policy = int -> Value.t list -> Tuple.t list -> Tuple.t

(** [seeded_policy seed] — deterministic pseudo-random pick. *)
val seeded_policy : int -> policy

(** [first_policy] — always the smallest candidate (deterministic
    skolemization). *)
val first_policy : policy

(** [eval ?policy inst f vars] evaluates [f] with output columns [vars]
    over the active domain of [inst] (plus [f]'s constants). Without
    [Witness] subformulas the result is deterministic and [policy] is
    irrelevant (default {!first_policy}).
    @raise Undefined on diverging PFP
    @raise Type_error on arity mismatches
    @raise Invalid_argument if [vars] misses a free variable *)
val eval :
  ?policy:policy -> Instance.t -> formula -> string list -> Relation.t

(** [sentence ?policy inst f] decides a closed formula. *)
val sentence : ?policy:policy -> Instance.t -> formula -> bool

(** [outcomes ?max_outcomes inst f vars] enumerates the results of [eval]
    over {e all} choice functions, deduplicated (default cap 10_000
    policies explored — @raise Failure beyond). Without [W] this is a
    singleton. *)
val outcomes :
  ?max_outcomes:int -> Instance.t -> formula -> string list -> Relation.t list

(** Convenience constructors mirroring the paper's notation. *)
val ifp : rel:string -> vars:string list -> formula -> term list -> formula

val pfp : rel:string -> vars:string list -> formula -> term list -> formula
val atom : string -> string list -> formula

val pp : Format.formatter -> formula -> unit
